#pragma once
// Monte-Carlo corroboration of the Section V model.
//
// The paper states it built "models to corroborate our equations" without
// showing them; this is that corroboration. We simulate the renewal
// process directly — draw exponential failure times, run segments of
// N + T_ov, pay T_r per failure, roll back to the last checkpoint — and
// compare the sample mean completion time with the closed form.

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"
#include "failure/distributions.hpp"

namespace vdc::model {

struct McConfig {
  double lambda = 9.26e-5;
  SimTime total_work = days(2);
  SimTime interval = hours(1);   // N; <= 0 means no checkpointing
  SimTime overhead = 0.0;        // T_ov
  SimTime repair = 0.0;          // T_r
  std::size_t trials = 10000;
};

/// One sampled completion time (wall clock including failures).
SimTime sample_completion_time(const McConfig& config, Rng& rng);

/// Run `config.trials` independent trials.
RunningStats simulate_completion_times(const McConfig& config, Rng rng);

/// One sampled completion time under an arbitrary renewal failure process
/// (interarrival gaps drawn from `ttf`). For ExponentialTtf this matches
/// sample_completion_time; for Weibull it probes the paper's own caveat
/// that the Poisson assumption "may not hold" (the bathtub curve).
/// `config.lambda` is ignored; the distribution supplies the failure law.
SimTime sample_completion_time_ttf(const McConfig& config,
                                   failure::TtfDistribution& ttf, Rng& rng);

/// Trials under an arbitrary TTF distribution.
RunningStats simulate_completion_times_ttf(const McConfig& config,
                                           failure::TtfDistribution& ttf,
                                           Rng rng);

}  // namespace vdc::model
