#pragma once
// Section V analytical model: expected time-to-completion under Poisson
// failures, with and without checkpointing.
//
// Notation follows the paper:
//   T      fault-free execution length
//   lambda failure rate (1 / MTBF)
//   N      checkpoint interval (compute time between checkpoints)
//   T_ov   overhead added per checkpoint
//   T_r    repair time paid per failure
//
// The paper's printed formulas contain typos that cancel in Eq. (1) and do
// not cancel in Eq. (3); see paper_literal below and EXPERIMENTS.md. The
// primary entry points here implement the *corrected* model:
//
//   E[T_nochk]   = (e^{lambda T} - 1) / lambda                     (Eq. 1)
//   E[T_chk]     = (T/N) (e^{lambda N} - 1) / lambda               (Eq. 3)
//   E[T_chk;ov]  = (T/N) [ (e^{lambda S} - 1)/lambda
//                          + (e^{lambda S} - 1) T_r ],  S = N+T_ov
//
// each of which follows from the classic restart argument: a segment that
// must complete S seconds of work without a failure takes expected time
// (e^{lambda S} - 1)/lambda including retries, plus T_r per failed try.

#include "common/assert.hpp"
#include "common/units.hpp"

namespace vdc::model {

/// Expected number of failed attempts before a failure-free span of
/// length `span` is achieved: e^{lambda*span} - 1 (geometric argument).
double expected_failures(double lambda, SimTime span);

/// E[T_fail | T_fail < limit] for an exponential with rate lambda:
/// [1 - (lambda*limit + 1) e^{-lambda*limit}] / (lambda (1 - e^{-lambda*limit})).
double expected_ttf_truncated(double lambda, SimTime limit);

/// Eq. (1): expected completion time with no checkpointing.
double expected_time_no_checkpoint(double lambda, SimTime total_work);

/// Eq. (3) corrected: expected completion with free checkpoints every N.
double expected_time_checkpoint(double lambda, SimTime total_work,
                                SimTime interval);

/// Full model: checkpoint overhead T_ov per interval and repair time T_r
/// per failure.
double expected_time_checkpoint_overhead(double lambda, SimTime total_work,
                                         SimTime interval, SimTime overhead,
                                         SimTime repair);

/// Ratio of expected completion to the fault-free time (the Fig. 5 y-axis).
double expected_time_ratio(double lambda, SimTime total_work,
                           SimTime interval, SimTime overhead,
                           SimTime repair);

struct OptimalInterval {
  SimTime interval = 0.0;      // argmin over N
  double ratio = 0.0;          // E[T]/T at the optimum
};

/// Minimise the expected-time ratio over the checkpoint interval via
/// golden-section search on log(N) in [lo, hi].
OptimalInterval optimal_interval(double lambda, SimTime total_work,
                                 SimTime overhead, SimTime repair,
                                 SimTime lo = 1.0, SimTime hi = 0.0);

/// Young's classic first-order approximation N* ~= sqrt(2 T_ov / lambda),
/// used as a sanity cross-check on the search.
SimTime young_interval(double lambda, SimTime overhead);

// --- paper-literal renditions ----------------------------------------------
// The formulas exactly as printed, kept so tests can document which typos
// cancel and which do not.
namespace paper_literal {

/// Eq. (1) as printed: E[F] = (e^{lT}-1)/(1-e^{-lT}) times a conditional
/// expectation printed without its (1-e^{-lT}) denominator, plus T.
/// Algebraically identical to the corrected Eq. (1) — the typos cancel.
double eq1(double lambda, SimTime total_work);

/// Eq. (3) as printed: the per-segment factor uses e^{lambda T} where the
/// derivation requires e^{lambda N}. NOT equal to the corrected form
/// unless N == T; tests pin down the discrepancy.
double eq3(double lambda, SimTime total_work, SimTime interval);

}  // namespace paper_literal

}  // namespace vdc::model
