#pragma once
// Overhead submodels: what T_ov and T_r actually are for each scheme.
//
// Section V-B derives per-scheme overheads from "the amount of data and
// speed of data transmission for each operation":
//
//   disk-full  : base + stream all checkpoints through the single NAS
//                front-end + write them on the NAS array. Synchronous —
//                execution resumes only when the data is durable.
//   diskless   : base + peer exchange (every node sends AND receives its
//                share concurrently over its own full-duplex NIC, so the
//                network step is ~n times faster than the NAS fan-in) +
//                the in-memory XOR. With copy-on-write forks the exchange
//                and XOR overlap execution, so only `base` suspends the
//                guests; the rest is checkpoint *latency* (Plank's
//                overhead-vs-latency distinction, paper Section II-B.2).
//
// The cluster shape follows Figure 4: n nodes, v VMs each, RAID groups of
// k = n-1 data members with parity on the remaining node, rotated.

#include <cstdint>

#include "cluster/heartbeat_config.hpp"
#include "common/units.hpp"

namespace vdc::model {

struct ClusterShape {
  std::uint32_t nodes = 4;
  std::uint32_t vms_per_node = 3;
  Bytes vm_image = gib(4);

  std::uint64_t total_vms() const {
    return static_cast<std::uint64_t>(nodes) * vms_per_node;
  }
  Bytes total_bytes() const { return total_vms() * vm_image; }
  /// Data members per RAID group in the Fig. 4 layout.
  std::uint32_t group_size() const { return nodes - 1; }
};

struct HardwareProfile {
  Rate nic = gbit_per_s(10);
  Rate nas_frontend = gbit_per_s(10);
  Rate nas_disk_write = mib_per_s(400);
  Rate nas_disk_read = mib_per_s(500);
  Rate xor_rate = gib_per_s(4);
  /// Guest suspend + device quiesce cost; the paper's 40 ms figure.
  SimTime base_overhead = 0.040;
  /// Heartbeat timing: the model's detection term derives from the same
  /// config the simulator's wire-true detector runs on, so the two can't
  /// drift apart (defaults work out to 0.5 s).
  cluster::HeartbeatConfig heartbeat{};
  SimTime resume_time = 5.0;  // restore image into a fresh VM + resume

  /// Expected failure-to-detection latency charged per repair.
  SimTime detection_time() const {
    return heartbeat.expected_detection_latency();
  }
};

struct CheckpointCosts {
  SimTime overhead = 0.0;  // execution suspended per checkpoint (T_ov)
  SimTime latency = 0.0;   // checkpoint usable after this long
  SimTime repair = 0.0;    // per-failure recovery cost (T_r)
};

/// Traditional checkpointing to shared storage (the paper's baseline).
CheckpointCosts diskfull_costs(const ClusterShape& shape,
                               const HardwareProfile& hw);

/// DVDC. `overlap_exchange` selects the copy-on-write variant where the
/// exchange+XOR happen while guests execute (overhead = base only);
/// without it the whole path is synchronous (overhead = latency).
CheckpointCosts diskless_costs(const ClusterShape& shape,
                               const HardwareProfile& hw,
                               bool overlap_exchange = true);

/// Figure 5 scenario: "MTBF 3 h (lambda = 9.26e-5/s), execution 2 days,
/// base overhead 40 ms, 4 physical machines, 12 virtual machines".
struct Fig5Scenario {
  double lambda = 9.26e-5;
  SimTime total_work = days(2);
  ClusterShape shape{4, 3, gib(4)};
  HardwareProfile hw{};
};

Fig5Scenario fig5_scenario();

}  // namespace vdc::model
