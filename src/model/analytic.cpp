#include "model/analytic.hpp"

#include <cmath>

namespace vdc::model {

namespace {
void check_params(double lambda, SimTime work) {
  VDC_REQUIRE(lambda > 0.0, "failure rate must be positive");
  VDC_REQUIRE(work > 0.0, "work length must be positive");
}
}  // namespace

double expected_failures(double lambda, SimTime span) {
  VDC_REQUIRE(lambda > 0.0 && span >= 0.0, "invalid parameters");
  return std::expm1(lambda * span);
}

double expected_ttf_truncated(double lambda, SimTime limit) {
  VDC_REQUIRE(lambda > 0.0 && limit > 0.0, "invalid parameters");
  const double x = lambda * limit;
  const double em = std::exp(-x);
  return (1.0 - (x + 1.0) * em) / (lambda * (1.0 - em));
}

double expected_time_no_checkpoint(double lambda, SimTime total_work) {
  check_params(lambda, total_work);
  return std::expm1(lambda * total_work) / lambda;
}

double expected_time_checkpoint(double lambda, SimTime total_work,
                                SimTime interval) {
  check_params(lambda, total_work);
  VDC_REQUIRE(interval > 0.0, "interval must be positive");
  const double segments = total_work / interval;
  return segments * std::expm1(lambda * interval) / lambda;
}

double expected_time_checkpoint_overhead(double lambda, SimTime total_work,
                                         SimTime interval, SimTime overhead,
                                         SimTime repair) {
  check_params(lambda, total_work);
  VDC_REQUIRE(interval > 0.0, "interval must be positive");
  VDC_REQUIRE(overhead >= 0.0 && repair >= 0.0,
              "overhead and repair must be non-negative");
  const double segment = interval + overhead;
  const double retries = std::expm1(lambda * segment);  // E[F] per segment
  const double per_segment = retries / lambda + retries * repair;
  return (total_work / interval) * per_segment;
}

double expected_time_ratio(double lambda, SimTime total_work,
                           SimTime interval, SimTime overhead,
                           SimTime repair) {
  return expected_time_checkpoint_overhead(lambda, total_work, interval,
                                           overhead, repair) /
         total_work;
}

OptimalInterval optimal_interval(double lambda, SimTime total_work,
                                 SimTime overhead, SimTime repair,
                                 SimTime lo, SimTime hi) {
  check_params(lambda, total_work);
  if (hi <= 0.0) hi = total_work;
  VDC_REQUIRE(lo > 0.0 && hi > lo, "invalid search bracket");

  const auto f = [&](double log_n) {
    return expected_time_ratio(lambda, total_work, std::exp(log_n), overhead,
                               repair);
  };

  // Golden-section search on log(N): the ratio is unimodal in N.
  const double phi = (std::sqrt(5.0) - 1.0) / 2.0;
  double a = std::log(lo), b = std::log(hi);
  double c = b - phi * (b - a);
  double d = a + phi * (b - a);
  double fc = f(c), fd = f(d);
  for (int iter = 0; iter < 200 && (b - a) > 1e-10; ++iter) {
    if (fc < fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - phi * (b - a);
      fc = f(c);
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + phi * (b - a);
      fd = f(d);
    }
  }
  OptimalInterval result;
  result.interval = std::exp((a + b) / 2.0);
  result.ratio = expected_time_ratio(lambda, total_work, result.interval,
                                     overhead, repair);
  return result;
}

SimTime young_interval(double lambda, SimTime overhead) {
  VDC_REQUIRE(lambda > 0.0 && overhead > 0.0, "invalid parameters");
  return std::sqrt(2.0 * overhead / lambda);
}

namespace paper_literal {

double eq1(double lambda, SimTime total_work) {
  check_params(lambda, total_work);
  const double x = lambda * total_work;
  // E[F] as printed: (e^{lT} - 1) / (1 - e^{-lT})  [= e^{lT}]
  const double ef = std::expm1(x) / (1.0 - std::exp(-x));
  // E[T_fail | T_fail < T] as printed (denominator (1-e^{-lT}) missing):
  const double cond = (1.0 - (x + 1.0) * std::exp(-x)) / lambda;
  return ef * cond + total_work;
}

double eq3(double lambda, SimTime total_work, SimTime interval) {
  check_params(lambda, total_work);
  VDC_REQUIRE(interval > 0.0, "interval must be positive");
  const double x = lambda * total_work;  // the printed formula uses T here
  const double ef = std::expm1(x) / (1.0 - std::exp(-x));
  const double cond = (1.0 - (x + 1.0) * std::exp(-x)) / lambda;
  return (ef * cond + interval) * (total_work / interval);
}

}  // namespace paper_literal

}  // namespace vdc::model
