#include "model/overhead.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace vdc::model {

CheckpointCosts diskfull_costs(const ClusterShape& shape,
                               const HardwareProfile& hw) {
  VDC_REQUIRE(shape.nodes >= 1, "need at least one node");
  const double total = static_cast<double>(shape.total_bytes());

  // All streams fan into the NAS front-end; the aggregate NIC egress can
  // only help if it is smaller than the front-end link.
  const double ingest_rate =
      std::min(hw.nas_frontend, static_cast<double>(shape.nodes) * hw.nic);
  const double stream_time = total / ingest_rate;
  const double write_time = total / hw.nas_disk_write;

  CheckpointCosts costs;
  costs.overhead = hw.base_overhead + stream_time + write_time;
  costs.latency = costs.overhead;  // durable == usable, all synchronous

  // Recovery: detect, read the lost VM's image off the array, stream it to
  // the replacement node, resume. (Surviving VMs roll back from their own
  // local copies.)
  const double image = static_cast<double>(shape.vm_image);
  costs.repair = hw.detection_time() + image / hw.nas_disk_read +
                 image / std::min(hw.nas_frontend, hw.nic) + hw.resume_time;
  return costs;
}

CheckpointCosts diskless_costs(const ClusterShape& shape,
                               const HardwareProfile& hw,
                               bool overlap_exchange) {
  VDC_REQUIRE(shape.nodes >= 2, "DVDC needs at least two nodes");
  const double image = static_cast<double>(shape.vm_image);
  const double per_node = static_cast<double>(shape.vms_per_node) * image;

  // Peer exchange: each node ships its v checkpoints to parity holders and
  // simultaneously receives the v checkpoint streams it holds parity for
  // (g*k == n*v implies send == receive). Full duplex NICs: one NIC-time.
  const double exchange_time = per_node / hw.nic;
  // Each node XORs the bytes it received into its parity blocks.
  const double xor_time = per_node / hw.xor_rate;

  CheckpointCosts costs;
  costs.latency = hw.base_overhead + exchange_time + xor_time;
  costs.overhead = overlap_exchange ? hw.base_overhead : costs.latency;

  // Recovery: detect; the k surviving group members of each lost VM stream
  // their checkpoints to the reconstruction node (fan-in over one NIC),
  // which XORs them with the parity block and resumes the VM.
  const double k = static_cast<double>(shape.group_size());
  costs.repair = hw.detection_time() + k * image / hw.nic +
                 k * image / hw.xor_rate + hw.resume_time;
  return costs;
}

Fig5Scenario fig5_scenario() { return Fig5Scenario{}; }

}  // namespace vdc::model
