#pragma once
// Mean time to data loss (MTTDL) for checkpoint RAID groups.
//
// A group of k data blocks + m parity blocks spans k+m nodes. Data
// survives while no more than m of those nodes are simultaneously down;
// each failed node is rebuilt (recovery + re-protection) in MTTR. The
// classic birth-death chain over "how many of the stripe's nodes are
// currently down" gives the expected time to absorb at m+1 — the standard
// RAID reliability calculus (Patterson/Gibson/Katz), applied to the
// paper's VM-image stripes. Both the closed-form chain solution and a
// Monte-Carlo renewal simulation are provided; tests check they agree.

#include <cstdint>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"

namespace vdc::model {

struct StripeReliability {
  std::uint32_t width = 4;     // k + m nodes carrying the stripe
  std::uint32_t tolerance = 1; // m: simultaneous losses survived
  SimTime node_mtbf = hours(1000);
  SimTime mttr = minutes(1);   // failure -> stripe fully re-protected
};

/// Exact expected time to data loss for the birth-death chain: states
/// 0..m track concurrently-failed stripe nodes; failure rate from state i
/// is (width-i)/mtbf, repair rate is i/mttr (parallel rebuilds); state
/// m+1 absorbs.
SimTime mttdl(const StripeReliability& config);

/// Cluster-level MTTDL when `groups` independent stripes are exposed:
/// any stripe's loss is the cluster's loss (series system).
SimTime cluster_mttdl(const StripeReliability& config, std::size_t groups);

/// Monte-Carlo validation: simulate the chain directly.
RunningStats simulate_mttdl(const StripeReliability& config,
                            std::size_t trials, Rng rng);

}  // namespace vdc::model
