#include "model/montecarlo.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace vdc::model {

SimTime sample_completion_time(const McConfig& config, Rng& rng) {
  VDC_REQUIRE(config.lambda > 0.0, "lambda must be positive");
  VDC_REQUIRE(config.total_work > 0.0, "total work must be positive");

  const bool checkpointing = config.interval > 0.0;
  const SimTime segment_work =
      checkpointing ? std::min(config.interval, config.total_work)
                    : config.total_work;

  SimTime clock = 0.0;
  SimTime done = 0.0;  // committed (checkpointed) work
  SimTime ttf = rng.exponential(config.lambda);

  while (done < config.total_work) {
    const SimTime work = std::min(segment_work, config.total_work - done);
    // A segment occupies work + overhead seconds of exposure; only a
    // failure-free pass commits.
    const SimTime exposure =
        work + (checkpointing ? config.overhead : 0.0);
    if (ttf >= exposure) {
      clock += exposure;
      ttf -= exposure;
      done += work;
    } else {
      clock += ttf + config.repair;
      ttf = rng.exponential(config.lambda);
      // Roll back to the last checkpoint: the partial segment is lost.
    }
  }
  return clock;
}

RunningStats simulate_completion_times(const McConfig& config, Rng rng) {
  VDC_REQUIRE(config.trials > 0, "need at least one trial");
  RunningStats stats;
  for (std::size_t i = 0; i < config.trials; ++i)
    stats.add(sample_completion_time(config, rng));
  return stats;
}

SimTime sample_completion_time_ttf(const McConfig& config,
                                   failure::TtfDistribution& ttf,
                                   Rng& rng) {
  VDC_REQUIRE(config.total_work > 0.0, "total work must be positive");
  const bool checkpointing = config.interval > 0.0;
  const SimTime segment_work =
      checkpointing ? std::min(config.interval, config.total_work)
                    : config.total_work;

  // A renewal failure process on the wall clock: gaps are iid from `ttf`
  // and restart after each failure (the failed component is replaced).
  SimTime clock = 0.0;
  SimTime done = 0.0;
  SimTime next_failure = ttf.sample(rng);

  while (done < config.total_work) {
    const SimTime work = std::min(segment_work, config.total_work - done);
    const SimTime exposure =
        work + (checkpointing ? config.overhead : 0.0);
    if (clock + exposure <= next_failure) {
      clock += exposure;
      done += work;
    } else {
      clock = next_failure + config.repair;
      next_failure = clock + ttf.sample(rng);
      // Roll back: the partial segment is lost.
    }
  }
  return clock;
}

RunningStats simulate_completion_times_ttf(const McConfig& config,
                                           failure::TtfDistribution& ttf,
                                           Rng rng) {
  VDC_REQUIRE(config.trials > 0, "need at least one trial");
  RunningStats stats;
  for (std::size_t i = 0; i < config.trials; ++i)
    stats.add(sample_completion_time_ttf(config, ttf, rng));
  return stats;
}

}  // namespace vdc::model
