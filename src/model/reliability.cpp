#include "model/reliability.hpp"

#include <vector>

#include "common/assert.hpp"

namespace vdc::model {

namespace {
void check(const StripeReliability& config) {
  VDC_REQUIRE(config.width >= 2, "stripe needs at least two nodes");
  VDC_REQUIRE(config.tolerance >= 1 && config.tolerance < config.width,
              "tolerance must be in [1, width)");
  VDC_REQUIRE(config.node_mtbf > 0 && config.mttr > 0,
              "MTBF and MTTR must be positive");
}
}  // namespace

SimTime mttdl(const StripeReliability& config) {
  check(config);
  const std::size_t m = config.tolerance;
  // T_i = expected time to absorption from i failed nodes, i = 0..m.
  //   (l_i + u_i) T_i - l_i T_{i+1} - u_i T_{i-1} = 1,  T_{m+1} = 0.
  // Solve the (m+1)x(m+1) tridiagonal system by Gaussian elimination.
  const auto lambda = [&](std::size_t i) {
    return static_cast<double>(config.width - i) / config.node_mtbf;
  };
  const auto mu = [&](std::size_t i) {
    return static_cast<double>(i) / config.mttr;
  };

  const std::size_t n = m + 1;
  std::vector<std::vector<double>> a(n, std::vector<double>(n, 0.0));
  std::vector<double> b(n, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    a[i][i] = lambda(i) + mu(i);
    if (i + 1 < n) a[i][i + 1] = -lambda(i);
    if (i > 0) a[i][i - 1] = -mu(i);
  }
  // Forward elimination (the system is diagonally dominant).
  for (std::size_t col = 0; col + 1 < n; ++col) {
    const double f = a[col + 1][col] / a[col][col];
    for (std::size_t c = col; c < n; ++c) a[col + 1][c] -= f * a[col][c];
    b[col + 1] -= f * b[col];
  }
  // Back substitution.
  std::vector<double> t(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double rhs = b[i];
    if (i + 1 < n) rhs -= a[i][i + 1] * t[i + 1];
    t[i] = rhs / a[i][i];
  }
  return t[0];
}

SimTime cluster_mttdl(const StripeReliability& config, std::size_t groups) {
  VDC_REQUIRE(groups >= 1, "need at least one group");
  // Stripes are treated as independent series components (they share
  // nodes, so this is the standard slightly-pessimistic approximation):
  // loss rates add.
  return mttdl(config) / static_cast<double>(groups);
}

RunningStats simulate_mttdl(const StripeReliability& config,
                            std::size_t trials, Rng rng) {
  check(config);
  VDC_REQUIRE(trials > 0, "need at least one trial");
  RunningStats stats;
  for (std::size_t trial = 0; trial < trials; ++trial) {
    SimTime t = 0.0;
    std::size_t down = 0;
    while (down <= config.tolerance) {
      const double fail_rate =
          static_cast<double>(config.width - down) / config.node_mtbf;
      const double repair_rate = static_cast<double>(down) / config.mttr;
      const double total = fail_rate + repair_rate;
      t += rng.exponential(total);
      if (rng.uniform() < fail_rate / total)
        ++down;
      else
        --down;
    }
    stats.add(t);
  }
  return stats;
}

}  // namespace vdc::model
