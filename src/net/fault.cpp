#include "net/fault.hpp"

#include <algorithm>
#include <vector>

#include "common/assert.hpp"
#include "common/crc32.hpp"

namespace vdc::net {

bool crc_catches_flip(std::span<const std::byte> frame, std::uint32_t crc,
                      std::uint64_t bit) {
  if (frame.empty()) return false;
  std::vector<std::byte> flipped(frame.begin(), frame.end());
  const std::uint64_t b = bit % (flipped.size() * 8);
  flipped[b / 8] ^= std::byte{1} << (b % 8);
  return crc32(flipped) != crc;
}

void LinkFaultInjector::set_host_fault(HostId host, LinkFault fault) {
  VDC_REQUIRE(fault.drop >= 0.0 && fault.drop <= 1.0,
              "drop probability must be in [0, 1]");
  VDC_REQUIRE(fault.corrupt >= 0.0 && fault.corrupt <= 1.0,
              "corrupt probability must be in [0, 1]");
  VDC_REQUIRE(fault.extra_latency >= 0.0 && fault.jitter >= 0.0,
              "latency terms must be non-negative");
  VDC_REQUIRE(fault.rate_factor > 0.0, "rate factor must be positive");
  enabled_ = true;
  host_faults_[host] = fault;
}

void LinkFaultInjector::clear_host_fault(HostId host) {
  host_faults_.erase(host);
}

const LinkFault* LinkFaultInjector::host_fault(HostId host) const {
  const auto it = host_faults_.find(host);
  return it == host_faults_.end() ? nullptr : &it->second;
}

void LinkFaultInjector::set_link_fault(HostId src, HostId dst,
                                       LinkFault fault) {
  VDC_REQUIRE(src != dst, "a link needs two distinct endpoints");
  VDC_REQUIRE(fault.drop >= 0.0 && fault.drop <= 1.0,
              "drop probability must be in [0, 1]");
  VDC_REQUIRE(fault.corrupt >= 0.0 && fault.corrupt <= 1.0,
              "corrupt probability must be in [0, 1]");
  VDC_REQUIRE(fault.extra_latency >= 0.0 && fault.jitter >= 0.0,
              "latency terms must be non-negative");
  enabled_ = true;
  link_faults_[link_key(src, dst)] = fault;
}

void LinkFaultInjector::clear_link_fault(HostId src, HostId dst) {
  link_faults_.erase(link_key(src, dst));
}

void LinkFaultInjector::set_partition_group(HostId host,
                                            std::uint32_t group) {
  enabled_ = true;
  if (group == 0)
    groups_.erase(host);
  else
    groups_[host] = group;
}

std::uint32_t LinkFaultInjector::partition_group(HostId host) const {
  const auto it = groups_.find(host);
  return it == groups_.end() ? 0 : it->second;
}

void LinkFaultInjector::heal(HostId host) {
  host_faults_.erase(host);
  groups_.erase(host);
  for (auto it = link_faults_.begin(); it != link_faults_.end();) {
    const HostId src = static_cast<HostId>(it->first >> 32);
    const HostId dst = static_cast<HostId>(it->first & 0xffffffffu);
    if (src == host || dst == host)
      it = link_faults_.erase(it);
    else
      ++it;
  }
}

void LinkFaultInjector::heal_all() {
  host_faults_.clear();
  link_faults_.clear();
  groups_.clear();
}

bool LinkFaultInjector::partitioned(HostId src, HostId dst) const {
  return partition_group(src) != partition_group(dst);
}

LinkFault LinkFaultInjector::effective(HostId src, HostId dst) const {
  // Independent loss processes compose as p = 1 - (1-a)(1-b); latencies
  // accumulate along the path; the strongest jitter dominates.
  LinkFault out;
  const auto fold = [&out](const LinkFault& f) {
    out.drop = 1.0 - (1.0 - out.drop) * (1.0 - f.drop);
    out.corrupt = 1.0 - (1.0 - out.corrupt) * (1.0 - f.corrupt);
    out.extra_latency += f.extra_latency;
    out.jitter = std::max(out.jitter, f.jitter);
    out.cut = out.cut || f.cut;
  };
  if (const auto it = host_faults_.find(src); it != host_faults_.end())
    fold(it->second);
  if (const auto it = host_faults_.find(dst); it != host_faults_.end())
    fold(it->second);
  if (const auto it = link_faults_.find(link_key(src, dst));
      it != link_faults_.end())
    fold(it->second);
  if (partitioned(src, dst)) out.cut = true;
  return out;
}

Judgement LinkFaultInjector::judge(HostId src, HostId dst) {
  Judgement verdict;
  const LinkFault fault = effective(src, dst);
  if (fault.clean()) return verdict;
  auto& metrics = telemetry_.metrics();
  if (fault.cut) {
    // A severed path: the frame burns its wire time and vanishes.
    verdict.outcome = Delivery::kDropped;
    metrics.add("net.drops", 1.0);
    return verdict;
  }
  verdict.extra_latency = fault.extra_latency;
  if (fault.jitter > 0.0) verdict.extra_latency += rng_.uniform(0.0, fault.jitter);
  if (fault.drop > 0.0 && rng_.chance(fault.drop)) {
    verdict.outcome = Delivery::kDropped;
    metrics.add("net.drops", 1.0);
    return verdict;
  }
  if (fault.corrupt > 0.0 && rng_.chance(fault.corrupt)) {
    verdict.outcome = Delivery::kCorrupted;
    verdict.corrupt_bit = rng_.next();
  }
  return verdict;
}

}  // namespace vdc::net
