#pragma once
// Link/NIC fault plane: the unreliable-fabric model.
//
// A LinkFaultInjector holds per-host (NIC) and per-directed-link fault
// state — drop probability, in-transit payload corruption, extra latency
// and jitter, degraded rate, hard cuts — plus partition groups that sever
// whole sets of hosts from each other. Directed link overrides compose on
// top of the endpoint NIC faults, so one direction of a link can go "gray"
// while the reverse stays clean.
//
// The Fabric consults the plane once per judged frame (a chunk of a
// ChunkedStream, or a heartbeat): judge() decides whether the payload
// arrives intact, corrupted, or not at all, and how much extra head
// latency it suffers. The verdict for a corrupted frame names a bit to
// flip; the *receiver* then flips that bit in its frame descriptor and
// rejects the frame because its CRC32 actually mismatches — integrity is
// checked, not assumed.
//
// The injector owns its own Rng, so configuring faults never perturbs the
// simulation's primary random streams, and while no fault has ever been
// configured the plane reports disabled and consumes no randomness at
// all — the zero-fault equivalence guarantee.

#include <cstddef>
#include <cstdint>
#include <span>
#include <unordered_map>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "telemetry/telemetry.hpp"

namespace vdc::net {

using HostId = std::uint32_t;

/// Fault state of one NIC or one directed link.
struct LinkFault {
  double drop = 0.0;            ///< per-frame drop probability
  double corrupt = 0.0;         ///< per-frame bit-flip probability
  SimTime extra_latency = 0.0;  ///< added head latency per frame
  SimTime jitter = 0.0;         ///< extra uniform latency in [0, jitter)
  /// NIC capacity scale; applied by Fabric::set_host_rate_factor when a
  /// host-level fault is installed (links have no capacity of their own).
  double rate_factor = 1.0;
  bool cut = false;             ///< hard partition: nothing gets through

  bool clean() const {
    return drop == 0.0 && corrupt == 0.0 && extra_latency == 0.0 &&
           jitter == 0.0 && !cut;
  }
};

/// What happened to a judged frame on the wire.
enum class Delivery { kDelivered, kCorrupted, kDropped };

/// judge() verdict: outcome, extra head latency, and — for corrupted
/// frames — which bit the wire flipped (receivers reduce it modulo their
/// frame size).
struct Judgement {
  Delivery outcome = Delivery::kDelivered;
  SimTime extra_latency = 0.0;
  std::uint64_t corrupt_bit = 0;
};

/// Receive-side integrity check for a judged-corrupt frame: copy `frame`,
/// flip `bit` (mod the frame's bit length), recompute CRC32 and compare
/// against `crc`. Returns true when the checksum catches the flip — which
/// CRC32 guarantees for any single-bit error, but the arithmetic is done,
/// not assumed.
bool crc_catches_flip(std::span<const std::byte> frame, std::uint32_t crc,
                      std::uint64_t bit);

class LinkFaultInjector {
 public:
  LinkFaultInjector(telemetry::Telemetry& telemetry, Rng rng)
      : telemetry_(telemetry), rng_(rng) {}

  /// Sticky: true once any fault or partition has ever been configured
  /// (healing does not reset it). While false, the Fabric's judged path
  /// is event-for-event identical to the plain transfer path.
  bool enabled() const { return enabled_; }

  /// Re-seed the plane's private random stream (fuzz regimes).
  void reseed(std::uint64_t seed) { rng_.reseed(seed); }

  /// NIC-level fault: applies to every frame entering or leaving `host`.
  void set_host_fault(HostId host, LinkFault fault);
  void clear_host_fault(HostId host);
  const LinkFault* host_fault(HostId host) const;

  /// Directed src -> dst override, composed on top of the NIC faults.
  void set_link_fault(HostId src, HostId dst, LinkFault fault);
  void clear_link_fault(HostId src, HostId dst);

  /// Hosts in different partition groups cannot exchange frames. Group 0
  /// is the default, fully-connected group.
  void set_partition_group(HostId host, std::uint32_t group);
  std::uint32_t partition_group(HostId host) const;

  /// Clear every fault and partition touching `host`.
  void heal(HostId host);
  /// Clear all faults and partitions (the plane stays enabled).
  void heal_all();

  bool partitioned(HostId src, HostId dst) const;

  /// Combined fault state for a src -> dst frame: drop/corrupt
  /// probabilities compose independently across src NIC, dst NIC and the
  /// directed link; latencies add; jitter takes the max; any cut cuts.
  LinkFault effective(HostId src, HostId dst) const;

  /// Decide the fate of one frame. Consumes randomness only when a fault
  /// actually covers this path. Dropped frames bump `net.drops`.
  Judgement judge(HostId src, HostId dst);

 private:
  static std::uint64_t link_key(HostId src, HostId dst) {
    return (static_cast<std::uint64_t>(src) << 32) | dst;
  }

  telemetry::Telemetry& telemetry_;
  Rng rng_;
  bool enabled_ = false;
  std::unordered_map<HostId, LinkFault> host_faults_;
  std::unordered_map<std::uint64_t, LinkFault> link_faults_;
  std::unordered_map<HostId, std::uint32_t> groups_;
};

}  // namespace vdc::net
