#pragma once
// Flow-level network model with max-min fair bandwidth sharing.
//
// The model is fluid: a flow is a number of bytes moving along a path of
// capacitated ports (NIC TX, NIC RX, a shared NAS uplink, a disk array...).
// Whenever a flow starts or finishes, every active flow's progress is
// settled at its current rate and rates are recomputed with the classic
// water-filling algorithm:
//
//   repeat:
//     for each port p: share(p) = residual_capacity(p) / unfixed_flows(p)
//     pick the port with the smallest share; freeze all its unfixed flows
//     at that rate; charge every port they traverse.
//
// The result is the max-min fair allocation: every flow is bottlenecked at
// some saturated port. This captures exactly the phenomenon the paper's
// Section V-B argues about — N checkpoint streams fanning into one NAS port
// each get capacity/N, while peer-to-peer exchange spreads the same bytes
// over many ports.

#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/assert.hpp"
#include "common/units.hpp"
#include "simkit/simulator.hpp"

namespace vdc::net {

using PortId = std::uint32_t;
using FlowId = std::uint64_t;
constexpr FlowId kInvalidFlow = 0;

class FlowNetwork {
 public:
  using Callback = std::function<void()>;

  explicit FlowNetwork(simkit::Simulator& sim) : sim_(sim) {}
  FlowNetwork(const FlowNetwork&) = delete;
  FlowNetwork& operator=(const FlowNetwork&) = delete;

  /// Create a capacitated port (bytes/sec). Capacity must be positive.
  PortId add_port(Rate capacity, std::string name = {});

  /// Change a port's capacity (e.g. degrade a failing link). Re-solves.
  void set_capacity(PortId port, Rate capacity);

  Rate capacity(PortId port) const;
  const std::string& port_name(PortId port) const;

  /// Start a flow of `bytes` along `path` (in traversal order). `latency`
  /// is a fixed head latency before the first byte moves. `on_complete`
  /// fires when the last byte is delivered. A zero-byte flow completes
  /// after just the latency.
  FlowId start_flow(std::vector<PortId> path, Bytes bytes,
                    Callback on_complete, SimTime latency = 0.0);

  /// Abort a flow (e.g. its endpoint failed). The completion callback is
  /// dropped. Returns true if the flow was active or still in latency.
  bool cancel_flow(FlowId id);

  /// Number of flows currently transferring (excludes latency stage).
  std::size_t active_flows() const { return flows_.size(); }

  /// Flows still waiting out their head latency.
  std::size_t pending_flows() const { return pending_latency_.size(); }

  /// Invoked whenever the flow population changes (start, latency
  /// activation, completion, cancel). The Fabric uses it to keep the
  /// `net.active_flows` gauge current.
  void set_count_hook(std::function<void()> hook) {
    count_hook_ = std::move(hook);
  }

  /// Current max-min rate of a flow (0 if unknown/inactive).
  Rate flow_rate(FlowId id) const;

  simkit::Simulator& sim() { return sim_; }

  /// Total bytes ever delivered through a port.
  double port_bytes(PortId port) const;

 private:
  struct Port {
    Rate cap;
    std::string name;
    double bytes_through = 0.0;
  };
  struct Flow {
    std::vector<PortId> path;
    double remaining;  // bytes still to move
    Rate rate = 0.0;
    Callback on_complete;
  };

  void settle_progress();
  void resolve_rates();
  void schedule_next_completion();
  void on_timer();
  void activate(FlowId id, Flow flow);
  void notify_count();

  simkit::Simulator& sim_;
  std::vector<Port> ports_;
  std::unordered_map<FlowId, Flow> flows_;
  // Flows waiting out their head latency (cancellable via pending_latency_).
  std::unordered_map<FlowId, simkit::EventId> pending_latency_;
  FlowId next_flow_id_ = 1;
  SimTime last_settle_ = 0.0;
  simkit::EventId timer_ = simkit::kInvalidEvent;
  std::function<void()> count_hook_;
};

}  // namespace vdc::net
