#pragma once
// Flow-level network model with max-min fair bandwidth sharing.
//
// The model is fluid: a flow is a number of bytes moving along a path of
// capacitated ports (NIC TX, NIC RX, a shared NAS uplink, a disk array...).
// Whenever a flow starts or finishes, every active flow's progress is
// settled at its current rate and rates are recomputed with the classic
// water-filling algorithm:
//
//   repeat:
//     for each port p: share(p) = residual_capacity(p) / unfixed_flows(p)
//     pick the port with the smallest share; freeze all its unfixed flows
//     at that rate; charge every port they traverse.
//
// The result is the max-min fair allocation: every flow is bottlenecked at
// some saturated port. This captures exactly the phenomenon the paper's
// Section V-B argues about — N checkpoint streams fanning into one NAS port
// each get capacity/N, while peer-to-peer exchange spreads the same bytes
// over many ports.
//
// Max-min fairness decomposes over connected components of the bipartite
// flow/port graph: flows that share no port (even transitively) cannot
// influence each other's rates. The solver exploits that — every flow
// start/finish/cancel and capacity change marks the ports it touches
// dirty, and resolve_rates() re-solves only the connected components those
// ports belong to, leaving every other flow's rate untouched. Each
// component is solved by a pure function of (component flows, port
// capacities), so the incremental path is bit-for-bit identical to a full
// from-scratch solve (oracle_rates(), asserted by
// tests/flow_solver_equivalence_test.cpp). Completion timers are kept in a
// lazy min-heap keyed by predicted finish time, so a flow change costs
// O(component), not O(active flows) — the difference between 100-node and
// 10k-node runs.

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/assert.hpp"
#include "common/stats.hpp"
#include "common/units.hpp"
#include "simkit/simulator.hpp"

namespace vdc::net {

using PortId = std::uint32_t;
using FlowId = std::uint64_t;
constexpr FlowId kInvalidFlow = 0;

class FlowNetwork {
 public:
  using Callback = std::function<void()>;

  /// The VDC_FULL_SOLVER=1 env var forces the full solver at construction
  /// (the equivalence oracle as the live path).
  explicit FlowNetwork(simkit::Simulator& sim);
  FlowNetwork(const FlowNetwork&) = delete;
  FlowNetwork& operator=(const FlowNetwork&) = delete;

  /// Create a capacitated port (bytes/sec). Capacity must be positive.
  PortId add_port(Rate capacity, std::string name = {});

  /// Change a port's capacity (e.g. degrade a failing link). Re-solves
  /// the port's connected component.
  void set_capacity(PortId port, Rate capacity);

  Rate capacity(PortId port) const;
  const std::string& port_name(PortId port) const;

  /// Start a flow of `bytes` along `path` (in traversal order). `latency`
  /// is a fixed head latency before the first byte moves. `on_complete`
  /// fires when the last byte is delivered. A zero-byte flow completes
  /// after just the latency.
  FlowId start_flow(std::vector<PortId> path, Bytes bytes,
                    Callback on_complete, SimTime latency = 0.0);

  /// Abort a flow (e.g. its endpoint failed). The completion callback is
  /// dropped. Returns true if the flow was active or still in latency.
  bool cancel_flow(FlowId id);

  /// Number of flows currently transferring (excludes latency stage).
  std::size_t active_flows() const { return flows_.size(); }

  /// Flows still waiting out their head latency.
  std::size_t pending_flows() const { return pending_latency_.size(); }

  /// Invoked whenever the flow population changes (start, latency
  /// activation, completion, cancel). The Fabric uses it to keep the
  /// `net.active_flows` gauge current.
  void set_count_hook(std::function<void()> hook) {
    count_hook_ = std::move(hook);
  }

  /// Current max-min rate of a flow (0 if unknown/inactive).
  Rate flow_rate(FlowId id) const;

  simkit::Simulator& sim() { return sim_; }

  /// Total bytes ever delivered through a port (Kahan-compensated; long
  /// 10k-node runs don't drift).
  double port_bytes(PortId port) const;

  // --- solver introspection --------------------------------------------------
  /// Toggle the incremental component solver (on by default). Off = every
  /// resolve recomputes all components from scratch; rates are identical
  /// either way.
  void set_incremental_solver(bool on) { incremental_ = on; }
  bool incremental_solver() const { return incremental_; }

  /// Full from-scratch max-min solve of the current flow population,
  /// computed on the side (the equivalence oracle). Builds its own
  /// adjacency, so it cross-checks the incremental bookkeeping too.
  /// Returns (flow, rate) sorted by flow id.
  std::vector<std::pair<FlowId, Rate>> oracle_rates() const;

  /// Component solves performed / flows whose rate was recomputed —
  /// the incremental solver's work counters (for benches and tests).
  std::uint64_t solver_solves() const { return solver_solves_; }
  std::uint64_t solver_flows_solved() const { return solver_flows_solved_; }

 private:
  struct Port {
    Rate cap;
    std::string name;
    KahanSum bytes_through;
    /// Active flows crossing this port (the solver's adjacency).
    std::unordered_set<FlowId> flows;
  };
  struct Flow {
    std::vector<PortId> path;
    double remaining;  // bytes still to move
    Rate rate = 0.0;
    Callback on_complete;
    /// Bumped whenever the rate is re-solved; stale completion-heap
    /// entries (older stamp) are skipped.
    std::uint64_t stamp = 0;
  };
  /// Lazy completion-heap entry: predicted absolute finish time under the
  /// rate current at stamp time.
  struct Completion {
    SimTime at;
    FlowId id;
    std::uint64_t stamp;
    bool operator>(const Completion& o) const {
      if (at != o.at) return at > o.at;
      return id > o.id;
    }
  };

  void settle_progress();
  /// Re-solve the components marked dirty (or everything, when the
  /// incremental solver is off).
  void resolve_rates();
  /// All flows connected to `seed` through shared ports, ascending.
  std::vector<FlowId> collect_component(FlowId seed,
                                        std::unordered_set<FlowId>& seen,
                                        std::unordered_set<PortId>& ports_seen)
      const;
  /// Pure water-filling over one connected component: rates aligned with
  /// `ids` (which must be sorted ascending). Reads flows_/ports_ only.
  std::vector<Rate> solve_component(const std::vector<FlowId>& ids) const;
  /// Write solved rates back and refresh the flows' completion entries.
  void apply_rates(const std::vector<FlowId>& ids,
                   const std::vector<Rate>& rates);
  void mark_dirty(const std::vector<PortId>& path);
  void schedule_next_completion();
  void on_timer();
  void activate(FlowId id, Flow flow);
  void notify_count();

  simkit::Simulator& sim_;
  std::vector<Port> ports_;
  std::unordered_map<FlowId, Flow> flows_;
  // Flows waiting out their head latency (cancellable via pending_latency_).
  std::unordered_map<FlowId, simkit::EventId> pending_latency_;
  FlowId next_flow_id_ = 1;
  SimTime last_settle_ = 0.0;
  simkit::EventId timer_ = simkit::kInvalidEvent;
  std::function<void()> count_hook_;

  bool incremental_ = true;
  std::unordered_set<PortId> dirty_ports_;
  std::priority_queue<Completion, std::vector<Completion>,
                      std::greater<>> completions_;
  std::uint64_t solver_solves_ = 0;
  std::uint64_t solver_flows_solved_ = 0;
};

}  // namespace vdc::net
