#include "net/chunked_stream.hpp"

#include <cstdlib>
#include <utility>

#include "common/assert.hpp"

namespace vdc::net {

std::size_t ChunkPolicy::chunk_count(Bytes total) const {
  if (!enabled() || total == 0) return 1;
  return static_cast<std::size_t>((total + chunk_bytes - 1) / chunk_bytes);
}

Bytes ChunkPolicy::chunk_size(Bytes total, std::size_t index) const {
  const std::size_t n = chunk_count(total);
  VDC_ASSERT(index < n);
  if (n == 1) return total;
  if (index + 1 < n) return chunk_bytes;
  return total - chunk_bytes * static_cast<Bytes>(n - 1);  // tail
}

ChunkPolicy ChunkPolicy::env_override(ChunkPolicy base) {
  if (const char* env = std::getenv("VDC_CHUNK_BYTES")) {
    const long long v = std::atoll(env);
    if (v >= 0) base.chunk_bytes = static_cast<Bytes>(v);
  }
  if (const char* env = std::getenv("VDC_PIPELINE_DEPTH")) {
    const long long v = std::atoll(env);
    if (v > 0) base.pipeline_depth = static_cast<std::size_t>(v);
  }
  return base;
}

ChunkedStream::ChunkedStream(Fabric& fabric, HostId src, HostId dst,
                             Bytes total, ChunkPolicy policy,
                             ChunkCallback on_chunk, DoneCallback on_done,
                             bool paced)
    : fabric_(fabric),
      src_(src),
      dst_(dst),
      total_(total),
      policy_(policy),
      on_chunk_(std::move(on_chunk)),
      on_done_(std::move(on_done)),
      paced_(paced) {
  VDC_REQUIRE(policy.pipeline_depth >= 1, "pipeline depth must be >= 1");
  chunks_total_ = policy_.chunk_count(total_);
  released_ = paced_ ? 0 : chunks_total_;
}

std::shared_ptr<ChunkedStream> ChunkedStream::start(
    Fabric& fabric, HostId src, HostId dst, Bytes total, ChunkPolicy policy,
    ChunkCallback on_chunk, DoneCallback on_done, bool paced) {
  auto stream = std::shared_ptr<ChunkedStream>(
      new ChunkedStream(fabric, src, dst, total, policy, std::move(on_chunk),
                        std::move(on_done), paced));
  stream->pump();
  return stream;
}

void ChunkedStream::release_to(std::size_t target) {
  if (cancelled_) return;
  if (target > chunks_total_) target = chunks_total_;
  if (target <= released_) return;
  released_ = target;
  pump();
}

void ChunkedStream::pump() {
  while (!cancelled_ && next_launch_ < released_ &&
         inflight_.size() < policy_.pipeline_depth) {
    const std::size_t idx = next_launch_++;
    const Bytes bytes = policy_.chunk_size(total_, idx);
    fabric_.note_chunk_started();
    // The flow callback holds the stream alive until delivery or cancel.
    auto self = shared_from_this();
    const FlowId fid = fabric_.transfer(
        src_, dst_, bytes, [self, idx] { self->on_chunk_complete(idx); });
    inflight_.emplace(idx, fid);
  }
}

void ChunkedStream::on_chunk_complete(std::size_t index) {
  if (cancelled_) return;
  inflight_.erase(index);
  fabric_.note_chunk_finished();
  ++delivered_;
  const Chunk chunk{index, policy_.chunk_size(total_, index),
                    delivered_ == chunks_total_};
  // Keep the pipe full before handing the chunk to the consumer (whose
  // callback may itself queue work or cancel us).
  pump();
  if (on_chunk_) on_chunk_(chunk);
  if (delivered_ == chunks_total_ && !cancelled_) {
    auto done = std::move(on_done_);
    on_done_ = nullptr;
    on_chunk_ = nullptr;  // break consumer reference cycles at completion
    if (done) done();
  }
}

void ChunkedStream::cancel() {
  if (cancelled_ || done()) return;
  cancelled_ = true;
  for (const auto& [idx, fid] : inflight_) {
    fabric_.cancel(fid);
    fabric_.note_chunk_finished();
  }
  inflight_.clear();
  on_chunk_ = nullptr;
  on_done_ = nullptr;
}

}  // namespace vdc::net
