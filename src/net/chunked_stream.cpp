#include "net/chunked_stream.hpp"

#include <utility>

#include "common/assert.hpp"
#include "common/crc32.hpp"
#include "common/env.hpp"
#include "common/log.hpp"

namespace vdc::net {

std::size_t ChunkPolicy::chunk_count(Bytes total) const {
  if (!enabled() || total == 0) return 1;
  return static_cast<std::size_t>((total + chunk_bytes - 1) / chunk_bytes);
}

Bytes ChunkPolicy::chunk_size(Bytes total, std::size_t index) const {
  const std::size_t n = chunk_count(total);
  VDC_ASSERT(index < n);
  if (n == 1) return total;
  if (index + 1 < n) return chunk_bytes;
  return total - chunk_bytes * static_cast<Bytes>(n - 1);  // tail
}

ChunkPolicy ChunkPolicy::env_override(ChunkPolicy base) {
  // Strict parses via env::int_knob: the whole string must be a number.
  // atoll-style silent zero for garbage would turn a typo into "disable
  // chunking", so malformed values are rejected with a warning and the
  // configured policy stands.
  if (const auto v = env::int_knob("VDC_CHUNK_BYTES"))
    base.chunk_bytes = static_cast<Bytes>(*v);
  if (const auto v = env::int_knob("VDC_PIPELINE_DEPTH")) {
    if (*v == 0)
      VDC_WARN("net", "ignoring VDC_PIPELINE_DEPTH=0: depth must be >= 1");
    else
      base.pipeline_depth = static_cast<std::size_t>(*v);
  }
  return base;
}

ChunkedStream::ChunkedStream(Fabric& fabric, HostId src, HostId dst,
                             Bytes total, ChunkPolicy policy,
                             ChunkCallback on_chunk, DoneCallback on_done,
                             bool paced)
    : fabric_(fabric),
      src_(src),
      dst_(dst),
      total_(total),
      policy_(policy),
      on_chunk_(std::move(on_chunk)),
      on_done_(std::move(on_done)),
      paced_(paced) {
  VDC_REQUIRE(policy.pipeline_depth >= 1, "pipeline depth must be >= 1");
  chunks_total_ = policy_.chunk_count(total_);
  released_ = paced_ ? 0 : chunks_total_;
  started_at_ = fabric_.network().sim().now();
}

std::shared_ptr<ChunkedStream> ChunkedStream::start(
    Fabric& fabric, HostId src, HostId dst, Bytes total, ChunkPolicy policy,
    ChunkCallback on_chunk, DoneCallback on_done, bool paced) {
  auto stream = std::shared_ptr<ChunkedStream>(
      new ChunkedStream(fabric, src, dst, total, policy, std::move(on_chunk),
                        std::move(on_done), paced));
  stream->pump();
  return stream;
}

void ChunkedStream::release_to(std::size_t target) {
  if (cancelled_) return;
  if (target > chunks_total_) target = chunks_total_;
  if (target <= released_) return;
  released_ = target;
  pump();
}

void ChunkedStream::pump() {
  while (!cancelled_ && !failed_ && next_launch_ < released_ &&
         inflight_.size() < policy_.pipeline_depth) {
    launch(next_launch_++);
  }
}

void ChunkedStream::launch(std::size_t index) {
  if (cancelled_ || failed_) return;
  const Bytes bytes = policy_.chunk_size(total_, index);
  fabric_.note_chunk_started();
  // The flow callback holds the stream alive until delivery or cancel.
  auto self = shared_from_this();
  const FlowId fid = fabric_.transfer_judged(
      src_, dst_, bytes, [self, index](const Judgement& verdict) {
        self->on_chunk_outcome(index, verdict);
      });
  inflight_.emplace(index, fid);
}

std::array<std::byte, 28> ChunkedStream::frame_descriptor(
    std::size_t index) const {
  std::array<std::byte, 28> frame{};
  const auto put = [&frame](std::size_t off, std::uint64_t v,
                            std::size_t width) {
    for (std::size_t i = 0; i < width; ++i)
      frame[off + i] = static_cast<std::byte>((v >> (8 * i)) & 0xff);
  };
  put(0, src_, 4);
  put(4, dst_, 4);
  put(8, index, 8);
  put(16, policy_.chunk_size(total_, index), 8);
  put(24, stream_tag_, 4);
  return frame;
}

void ChunkedStream::on_chunk_outcome(std::size_t index,
                                     const Judgement& verdict) {
  if (cancelled_ || failed_) return;
  inflight_.erase(index);
  fabric_.note_chunk_finished();
  if (verdict.outcome == Delivery::kDelivered) {
    deliver(index);
    return;
  }

  auto& metrics = fabric_.telemetry().metrics();
  if (verdict.outcome == Delivery::kCorrupted) {
    // Receive-side integrity: the chunk descriptor's CRC32 catches the
    // in-flight bit flip, so the chunk is rejected, never consumed.
    const auto frame = frame_descriptor(index);
    const std::uint32_t crc = crc32(frame);
    VDC_ASSERT(crc_catches_flip(frame, crc, verdict.corrupt_bit));
    metrics.add("net.corrupt_frames", 1.0);
  }
  // (net.drops is counted by the fault plane at judge time.)

  const std::size_t tried = ++attempts_[index];  // failed sends so far
  if (tried + 1 > policy_.max_attempts) {
    fail("chunk " + std::to_string(index) + " exhausted " +
         std::to_string(policy_.max_attempts) + " attempts");
    return;
  }
  if (policy_.transfer_deadline > 0.0 &&
      sim().now() - started_at_ >= policy_.transfer_deadline) {
    fail("transfer deadline exceeded");
    return;
  }
  // Retransmit. A corrupted chunk is NAKed by the receiver and goes again
  // immediately; a dropped chunk waits out the sender's timeout, doubled
  // per failed attempt.
  SimTime delay = 0.0;
  if (verdict.outcome == Delivery::kDropped) {
    delay = policy_.retransmit_timeout;
    for (std::size_t i = 1; i < tried; ++i) delay *= policy_.retransmit_backoff;
  }
  metrics.add("net.retransmits", 1.0);
  auto self = shared_from_this();
  retry_timers_[index] = sim().after(delay, [self, index] {
    self->retry_timers_.erase(index);
    self->launch(index);
  });
}

void ChunkedStream::deliver(std::size_t index) {
  ++delivered_;
  const Chunk chunk{index, policy_.chunk_size(total_, index),
                    delivered_ == chunks_total_};
  // Keep the pipe full before handing the chunk to the consumer (whose
  // callback may itself queue work or cancel us).
  pump();
  if (on_chunk_) on_chunk_(chunk);
  if (delivered_ == chunks_total_ && !cancelled_) {
    auto done = std::move(on_done_);
    on_done_ = nullptr;
    on_chunk_ = nullptr;  // break consumer reference cycles at completion
    on_fail_ = nullptr;
    if (done) done();
  }
}

void ChunkedStream::fail(std::string reason) {
  failed_ = true;
  for (const auto& [idx, fid] : inflight_) {
    fabric_.cancel(fid);
    fabric_.note_chunk_finished();
  }
  inflight_.clear();
  for (const auto& [idx, ev] : retry_timers_) sim().cancel(ev);
  retry_timers_.clear();
  on_chunk_ = nullptr;
  on_done_ = nullptr;
  auto on_fail = std::move(on_fail_);
  on_fail_ = nullptr;
  if (on_fail) on_fail(reason);
}

void ChunkedStream::cancel() {
  if (cancelled_ || failed_ || done()) return;
  cancelled_ = true;
  for (const auto& [idx, fid] : inflight_) {
    fabric_.cancel(fid);
    fabric_.note_chunk_finished();
  }
  inflight_.clear();
  for (const auto& [idx, ev] : retry_timers_) sim().cancel(ev);
  retry_timers_.clear();
  on_chunk_ = nullptr;
  on_done_ = nullptr;
  on_fail_ = nullptr;
}

}  // namespace vdc::net
