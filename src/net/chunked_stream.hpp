#pragma once
// Chunked, pipelined logical transfers over the Fabric.
//
// A ChunkedStream splits one logical transfer into `chunk_bytes` segments
// and keeps at most `pipeline_depth` of them in flight at a time. Each
// delivered chunk fires a callback, so a receiver can start consuming
// (folding parity, decoding a stripe) while later chunks are still on the
// wire — the fold-on-arrival overlap that removes the "wait for the whole
// stream, then decode" barrier from the epoch exchange and from recovery.
//
// With chunk_bytes == 0 (the default policy) the stream degenerates to a
// single chunk and is event-for-event identical to a plain
// Fabric::transfer, so chunking is strictly opt-in.
//
// A paced stream (see `start` with paced == true) launches nothing until
// the consumer grants chunks via release_to(); recovery uses this to gate
// forwards of rebuilt data on the decode frontier.
//
// Cancellation tears down the in-flight chunk flows and drops every
// callback, composing with DvdcCoordinator::abort and
// RecoveryManager::abort (and through it CheckpointBackend::abort_recovery).

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>

#include "net/fabric.hpp"

namespace vdc::net {

/// How to slice logical transfers. Shared by the protocol and recovery
/// configs; env-overridable via VDC_CHUNK_BYTES / VDC_PIPELINE_DEPTH.
struct ChunkPolicy {
  /// Segment size; 0 disables chunking (one chunk == the whole transfer).
  Bytes chunk_bytes = 0;
  /// Max chunk flows in flight per stream (>= 1).
  std::size_t pipeline_depth = 4;

  bool enabled() const { return chunk_bytes > 0; }
  std::size_t chunk_count(Bytes total) const;
  Bytes chunk_size(Bytes total, std::size_t index) const;

  /// `base` with VDC_CHUNK_BYTES / VDC_PIPELINE_DEPTH applied on top.
  static ChunkPolicy env_override(ChunkPolicy base);
};

class ChunkedStream : public std::enable_shared_from_this<ChunkedStream> {
 public:
  struct Chunk {
    std::size_t index = 0;  // 0-based position in the logical transfer
    Bytes bytes = 0;
    bool last = false;      // true on the final *delivered* chunk
  };
  using ChunkCallback = std::function<void(const Chunk&)>;
  using DoneCallback = std::function<void()>;

  /// Start streaming `total` bytes src -> dst. `on_chunk` fires once per
  /// delivered chunk; `on_done` fires after the last chunk's `on_chunk`.
  /// With `paced` the stream launches nothing until release_to() grants
  /// chunks. The returned handle is only needed for cancel()/release_to();
  /// the stream keeps itself alive until it completes or is cancelled.
  static std::shared_ptr<ChunkedStream> start(Fabric& fabric, HostId src,
                                              HostId dst, Bytes total,
                                              ChunkPolicy policy,
                                              ChunkCallback on_chunk,
                                              DoneCallback on_done = {},
                                              bool paced = false);

  /// Grant chunks [0, target) for launching (paced streams). Idempotent:
  /// a target at or below the current grant is a no-op.
  void release_to(std::size_t target);
  void release_all() { release_to(chunks_total_); }

  /// Cancel in-flight chunk flows, stop launching, drop all callbacks.
  void cancel();

  bool done() const { return delivered_ == chunks_total_; }
  bool cancelled() const { return cancelled_; }
  std::size_t chunks_total() const { return chunks_total_; }
  std::size_t chunks_delivered() const { return delivered_; }

 private:
  ChunkedStream(Fabric& fabric, HostId src, HostId dst, Bytes total,
                ChunkPolicy policy, ChunkCallback on_chunk,
                DoneCallback on_done, bool paced);

  void pump();
  void on_chunk_complete(std::size_t index);

  Fabric& fabric_;
  HostId src_;
  HostId dst_;
  Bytes total_;
  ChunkPolicy policy_;
  ChunkCallback on_chunk_;
  DoneCallback on_done_;
  bool paced_;

  std::size_t chunks_total_ = 0;
  std::size_t next_launch_ = 0;   // first chunk not yet on the wire
  std::size_t released_ = 0;      // pacing grant (== chunks_total_ unpaced)
  std::size_t delivered_ = 0;
  bool cancelled_ = false;
  std::unordered_map<std::size_t, FlowId> inflight_;  // chunk index -> flow
};

}  // namespace vdc::net
