#pragma once
// Chunked, pipelined logical transfers over the Fabric.
//
// A ChunkedStream splits one logical transfer into `chunk_bytes` segments
// and keeps at most `pipeline_depth` of them in flight at a time. Each
// delivered chunk fires a callback, so a receiver can start consuming
// (folding parity, decoding a stripe) while later chunks are still on the
// wire — the fold-on-arrival overlap that removes the "wait for the whole
// stream, then decode" barrier from the epoch exchange and from recovery.
//
// With chunk_bytes == 0 (the default policy) the stream degenerates to a
// single chunk and is event-for-event identical to a plain
// Fabric::transfer, so chunking is strictly opt-in.
//
// A paced stream (see `start` with paced == true) launches nothing until
// the consumer grants chunks via release_to(); recovery uses this to gate
// forwards of rebuilt data on the decode frontier.
//
// Reliable delivery: every chunk is a judged frame against the Fabric's
// fault plane. A delivered chunk's descriptor CRC is verified on receive;
// a corrupted chunk is rejected (real CRC32 mismatch) and retransmitted
// immediately, a dropped chunk is retransmitted after an exponentially
// backed-off timeout, and a chunk that exhausts its attempt budget — or a
// transfer that exhausts its deadline — fails the stream through
// set_on_fail instead of hanging. With the fault plane disabled all of
// this is inert and the stream is event-for-event identical to before.
//
// Cancellation tears down the in-flight chunk flows and drops every
// callback, composing with DvdcCoordinator::abort and
// RecoveryManager::abort (and through it CheckpointBackend::abort_recovery).

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>

#include "net/fabric.hpp"

namespace vdc::net {

/// How to slice logical transfers. Shared by the protocol and recovery
/// configs; env-overridable via VDC_CHUNK_BYTES / VDC_PIPELINE_DEPTH.
struct ChunkPolicy {
  /// Segment size; 0 disables chunking (one chunk == the whole transfer).
  Bytes chunk_bytes = 0;
  /// Max chunk flows in flight per stream (>= 1).
  std::size_t pipeline_depth = 4;

  // --- reliable delivery (consulted only when the Fabric's fault plane
  // is active; inert otherwise) ---
  /// Sender timeout before the first retransmission of a dropped chunk.
  SimTime retransmit_timeout = 0.05;
  /// Timeout multiplier per further attempt (exponential backoff).
  double retransmit_backoff = 2.0;
  /// Send attempts per chunk (first try + retransmissions) before the
  /// stream fails.
  std::size_t max_attempts = 8;
  /// Whole-transfer deadline; 0 = unbounded. Checked whenever a chunk
  /// would be retransmitted, so a stream never hangs on a dead link.
  SimTime transfer_deadline = 30.0;

  bool enabled() const { return chunk_bytes > 0; }
  std::size_t chunk_count(Bytes total) const;
  Bytes chunk_size(Bytes total, std::size_t index) const;

  /// `base` with VDC_CHUNK_BYTES / VDC_PIPELINE_DEPTH applied on top.
  static ChunkPolicy env_override(ChunkPolicy base);
};

/// Stream content tags, carried in every chunk's wire descriptor so a
/// receiver can tell full-checkpoint payloads from parity-delta frames
/// before consuming a chunk. Values are the frame magics as fourcc.
constexpr std::uint32_t kFullStreamTag = 0x31434456u;   // "VDC1"
constexpr std::uint32_t kDeltaStreamTag = 0x31444456u;  // "VDD1"

class ChunkedStream : public std::enable_shared_from_this<ChunkedStream> {
 public:
  struct Chunk {
    std::size_t index = 0;  // 0-based position in the logical transfer
    Bytes bytes = 0;
    bool last = false;      // true on the final *delivered* chunk
  };
  using ChunkCallback = std::function<void(const Chunk&)>;
  using DoneCallback = std::function<void()>;
  using FailCallback = std::function<void(const std::string&)>;

  /// Start streaming `total` bytes src -> dst. `on_chunk` fires once per
  /// delivered chunk; `on_done` fires after the last chunk's `on_chunk`.
  /// With `paced` the stream launches nothing until release_to() grants
  /// chunks. The returned handle is only needed for cancel()/release_to();
  /// the stream keeps itself alive until it completes or is cancelled.
  static std::shared_ptr<ChunkedStream> start(Fabric& fabric, HostId src,
                                              HostId dst, Bytes total,
                                              ChunkPolicy policy,
                                              ChunkCallback on_chunk,
                                              DoneCallback on_done = {},
                                              bool paced = false);

  /// Grant chunks [0, target) for launching (paced streams). Idempotent:
  /// a target at or below the current grant is a no-op.
  void release_to(std::size_t target);
  void release_all() { release_to(chunks_total_); }

  /// Reliable-delivery failure: a chunk exhausted its retransmission
  /// attempts or the transfer blew its deadline (only reachable with the
  /// fault plane active). In-flight flows are torn down and every other
  /// callback dropped before `on_fail` fires, exactly once.
  void set_on_fail(FailCallback on_fail) { on_fail_ = std::move(on_fail); }

  /// Tag the stream's content type (kFullStreamTag / kDeltaStreamTag).
  /// Folded into every chunk descriptor, so the receive-side CRC also
  /// rejects a chunk mis-attributed to the wrong stream kind.
  void set_stream_tag(std::uint32_t tag) { stream_tag_ = tag; }
  std::uint32_t stream_tag() const { return stream_tag_; }

  /// Cancel in-flight chunk flows, stop launching, drop all callbacks.
  void cancel();

  bool done() const { return delivered_ == chunks_total_; }
  bool cancelled() const { return cancelled_; }
  bool failed() const { return failed_; }
  std::size_t chunks_total() const { return chunks_total_; }
  std::size_t chunks_delivered() const { return delivered_; }

 private:
  ChunkedStream(Fabric& fabric, HostId src, HostId dst, Bytes total,
                ChunkPolicy policy, ChunkCallback on_chunk,
                DoneCallback on_done, bool paced);

  simkit::Simulator& sim() { return fabric_.network().sim(); }
  void pump();
  void launch(std::size_t index);
  void on_chunk_outcome(std::size_t index, const Judgement& verdict);
  void deliver(std::size_t index);
  void fail(std::string reason);
  /// The per-chunk wire descriptor the receive-side CRC covers:
  /// {src, dst, index, size, stream tag}.
  std::array<std::byte, 28> frame_descriptor(std::size_t index) const;

  Fabric& fabric_;
  HostId src_;
  HostId dst_;
  Bytes total_;
  ChunkPolicy policy_;
  ChunkCallback on_chunk_;
  DoneCallback on_done_;
  FailCallback on_fail_;
  bool paced_;

  std::size_t chunks_total_ = 0;
  std::size_t next_launch_ = 0;   // first chunk not yet on the wire
  std::size_t released_ = 0;      // pacing grant (== chunks_total_ unpaced)
  std::size_t delivered_ = 0;
  bool cancelled_ = false;
  bool failed_ = false;
  std::uint32_t stream_tag_ = kFullStreamTag;
  SimTime started_at_ = 0.0;
  std::unordered_map<std::size_t, FlowId> inflight_;  // chunk index -> flow
  // Reliability state; touched only when a chunk misbehaves.
  std::unordered_map<std::size_t, std::size_t> attempts_;
  std::unordered_map<std::size_t, simkit::EventId> retry_timers_;
};

}  // namespace vdc::net
