#include "net/flow_network.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <utility>

#include "common/env.hpp"

namespace vdc::net {

namespace {
// A flow whose remaining volume drops below this is considered delivered.
// One byte of slack at double precision; avoids infinite zeno re-scheduling.
constexpr double kDoneEpsilon = 0.5;

// Anti-starvation floor for the water-filling shares. A port whose
// residual was clamped to zero by accumulated drift (or whose tiny
// capacity underflows when divided across its flows) would otherwise hand
// its remaining flows an exact-zero rate, tripping the "active flow with
// zero rate" invariant and freezing those flows forever. Flooring the
// share keeps every flow finite-time-completable; the slack this adds per
// port is at most flows * floor, negligible against any real capacity.
constexpr double kShareFloorFraction = 1e-9;
constexpr double kAbsoluteRateFloor = 1e-300;  // survives denormal caps

double floored_share(double residual, std::uint32_t unfixed, double cap) {
  const double share = residual / unfixed;
  const double floor = std::max(cap * kShareFloorFraction,
                                kAbsoluteRateFloor);
  return std::max(share, floor);
}
}  // namespace

FlowNetwork::FlowNetwork(simkit::Simulator& sim) : sim_(sim) {
  // Validated knob: garbage ("yes", "2", ...) warns and keeps the default
  // instead of silently running the incremental solver.
  if (const auto full = env::bool_knob("VDC_FULL_SOLVER"))
    incremental_ = !*full;
}

PortId FlowNetwork::add_port(Rate capacity, std::string name) {
  VDC_REQUIRE(capacity > 0.0, "port capacity must be positive");
  Port port;
  port.cap = capacity;
  port.name = std::move(name);
  ports_.push_back(std::move(port));
  return static_cast<PortId>(ports_.size() - 1);
}

void FlowNetwork::set_capacity(PortId port, Rate capacity) {
  VDC_REQUIRE(capacity > 0.0, "port capacity must be positive");
  VDC_ASSERT(port < ports_.size());
  settle_progress();
  ports_[port].cap = capacity;
  dirty_ports_.insert(port);
  resolve_rates();
  schedule_next_completion();
}

Rate FlowNetwork::capacity(PortId port) const {
  VDC_ASSERT(port < ports_.size());
  return ports_[port].cap;
}

const std::string& FlowNetwork::port_name(PortId port) const {
  VDC_ASSERT(port < ports_.size());
  return ports_[port].name;
}

double FlowNetwork::port_bytes(PortId port) const {
  VDC_ASSERT(port < ports_.size());
  return ports_[port].bytes_through.value();
}

FlowId FlowNetwork::start_flow(std::vector<PortId> path, Bytes bytes,
                               Callback on_complete, SimTime latency) {
  for (PortId p : path) VDC_ASSERT(p < ports_.size());
  VDC_ASSERT(latency >= 0.0);
  const FlowId id = next_flow_id_++;
  Flow flow{std::move(path), static_cast<double>(bytes),
            0.0, std::move(on_complete), 0};

  if (latency > 0.0) {
    auto ev = sim_.after(latency, [this, id, flow = std::move(flow)]() mutable {
      pending_latency_.erase(id);
      activate(id, std::move(flow));
    });
    pending_latency_.emplace(id, ev);
    notify_count();
  } else {
    activate(id, std::move(flow));
  }
  return id;
}

void FlowNetwork::activate(FlowId id, Flow flow) {
  if (flow.remaining < kDoneEpsilon) {
    // Zero-length transfer: complete as its own event to keep callback
    // ordering uniform with real transfers.
    if (flow.on_complete)
      sim_.after(0.0, std::move(flow.on_complete));
    notify_count();
    return;
  }
  settle_progress();
  mark_dirty(flow.path);
  for (PortId p : flow.path) ports_[p].flows.insert(id);
  flows_.emplace(id, std::move(flow));
  resolve_rates();
  schedule_next_completion();
  notify_count();
}

bool FlowNetwork::cancel_flow(FlowId id) {
  if (auto it = pending_latency_.find(id); it != pending_latency_.end()) {
    sim_.cancel(it->second);
    pending_latency_.erase(it);
    notify_count();
    return true;
  }
  auto it = flows_.find(id);
  if (it == flows_.end()) return false;
  settle_progress();
  mark_dirty(it->second.path);
  for (PortId p : it->second.path) ports_[p].flows.erase(id);
  flows_.erase(it);
  resolve_rates();
  schedule_next_completion();
  notify_count();
  return true;
}

void FlowNetwork::notify_count() {
  if (count_hook_) count_hook_();
}

Rate FlowNetwork::flow_rate(FlowId id) const {
  auto it = flows_.find(id);
  return it == flows_.end() ? 0.0 : it->second.rate;
}

void FlowNetwork::settle_progress() {
  const SimTime now = sim_.now();
  const double dt = now - last_settle_;
  last_settle_ = now;
  if (dt <= 0.0 || flows_.empty()) return;
  for (auto& [id, flow] : flows_) {
    const double moved = std::min(flow.remaining, flow.rate * dt);
    flow.remaining -= moved;
    for (PortId p : flow.path) ports_[p].bytes_through.add(moved);
  }
}

void FlowNetwork::mark_dirty(const std::vector<PortId>& path) {
  for (PortId p : path) dirty_ports_.insert(p);
}

std::vector<FlowId> FlowNetwork::collect_component(
    FlowId seed, std::unordered_set<FlowId>& seen,
    std::unordered_set<PortId>& ports_seen) const {
  std::vector<FlowId> component;
  std::vector<FlowId> stack{seed};
  seen.insert(seed);
  while (!stack.empty()) {
    const FlowId id = stack.back();
    stack.pop_back();
    component.push_back(id);
    for (PortId p : flows_.at(id).path) {
      if (!ports_seen.insert(p).second) continue;
      for (FlowId other : ports_[p].flows)
        if (seen.insert(other).second) stack.push_back(other);
    }
  }
  std::sort(component.begin(), component.end());
  return component;
}

std::vector<Rate> FlowNetwork::solve_component(
    const std::vector<FlowId>& ids) const {
  // Water-filling max-min fair allocation over one connected component.
  // Pure: reads flow paths and port capacities only. Flow ids ascending
  // and component ports ascending make every float op order-determined,
  // which is what lets the incremental path match a full solve bitwise.
  std::vector<PortId> cports;
  for (FlowId id : ids)
    for (PortId p : flows_.at(id).path) cports.push_back(p);
  std::sort(cports.begin(), cports.end());
  cports.erase(std::unique(cports.begin(), cports.end()), cports.end());
  const auto local = [&](PortId p) {
    return static_cast<std::size_t>(
        std::lower_bound(cports.begin(), cports.end(), p) - cports.begin());
  };

  std::vector<double> residual(cports.size());
  std::vector<std::uint32_t> unfixed(cports.size(), 0);
  for (std::size_t i = 0; i < cports.size(); ++i)
    residual[i] = ports_[cports[i]].cap;
  for (FlowId id : ids)
    for (PortId p : flows_.at(id).path) ++unfixed[local(p)];

  std::vector<char> fixed(ids.size(), 0);
  std::vector<Rate> rates(ids.size(), 0.0);
  std::size_t remaining_flows = ids.size();
  while (remaining_flows > 0) {
    // Find the port giving the smallest fair share among loaded ports.
    double best_share = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < cports.size(); ++i) {
      if (unfixed[i] == 0) continue;
      const double share =
          floored_share(residual[i], unfixed[i], ports_[cports[i]].cap);
      best_share = std::min(best_share, share);
    }
    VDC_ASSERT(std::isfinite(best_share));
    VDC_ASSERT_MSG(best_share > 0.0, "water-filling share underflowed");

    // Freeze every unfixed flow crossing a port that is saturated at
    // best_share (within numerical tolerance).
    bool froze_any = false;
    for (std::size_t fi = 0; fi < ids.size(); ++fi) {
      if (fixed[fi]) continue;
      const Flow& f = flows_.at(ids[fi]);
      bool bottlenecked = false;
      for (PortId p : f.path) {
        const std::size_t i = local(p);
        const double share =
            floored_share(residual[i], unfixed[i], ports_[cports[i]].cap);
        if (share <= best_share * (1.0 + 1e-12)) {
          bottlenecked = true;
          break;
        }
      }
      if (!bottlenecked) continue;
      rates[fi] = best_share;
      fixed[fi] = 1;
      froze_any = true;
      --remaining_flows;
      for (PortId p : f.path) {
        const std::size_t i = local(p);
        residual[i] -= best_share;
        if (residual[i] < 0.0) residual[i] = 0.0;
        --unfixed[i];
      }
    }
    VDC_ASSERT_MSG(froze_any, "water-filling failed to make progress");
  }
  return rates;
}

void FlowNetwork::apply_rates(const std::vector<FlowId>& ids,
                              const std::vector<Rate>& rates) {
  ++solver_solves_;
  solver_flows_solved_ += ids.size();
  const SimTime now = sim_.now();
  for (std::size_t i = 0; i < ids.size(); ++i) {
    Flow& f = flows_.at(ids[i]);
    f.rate = rates[i];
    VDC_ASSERT_MSG(f.rate > 0.0, "active flow with zero rate");
    ++f.stamp;
    completions_.push(Completion{now + f.remaining / f.rate, ids[i], f.stamp});
  }
}

void FlowNetwork::resolve_rates() {
  if (!incremental_) {
    // Full solve: decompose the whole population into components and
    // re-solve each from scratch (the oracle as the live path).
    dirty_ports_.clear();
    if (flows_.empty()) return;
    std::vector<FlowId> ids;
    ids.reserve(flows_.size());
    for (auto& [id, f] : flows_) ids.push_back(id);
    std::sort(ids.begin(), ids.end());
    std::unordered_set<FlowId> seen;
    std::unordered_set<PortId> ports_seen;
    for (FlowId id : ids) {
      if (seen.count(id)) continue;
      const auto component = collect_component(id, seen, ports_seen);
      apply_rates(component, solve_component(component));
    }
    return;
  }

  if (dirty_ports_.empty()) return;
  // Re-solve only the connected components the dirty ports belong to.
  std::vector<PortId> dirty(dirty_ports_.begin(), dirty_ports_.end());
  std::sort(dirty.begin(), dirty.end());
  dirty_ports_.clear();
  std::unordered_set<FlowId> seen;
  std::unordered_set<PortId> ports_seen;
  for (PortId p : dirty) {
    // collect_component owns ports_seen: a port already absorbed into an
    // earlier component (or flowless) is skipped, but an untouched dirty
    // port must stay unmarked so the BFS enumerates its flows.
    if (ports_seen.count(p) != 0) continue;
    std::vector<FlowId> on_port(ports_[p].flows.begin(),
                                ports_[p].flows.end());
    std::sort(on_port.begin(), on_port.end());
    for (FlowId f : on_port) {
      if (seen.count(f)) continue;
      const auto component = collect_component(f, seen, ports_seen);
      apply_rates(component, solve_component(component));
    }
  }
}

std::vector<std::pair<FlowId, Rate>> FlowNetwork::oracle_rates() const {
  // Build the adjacency from the flow table alone (deliberately NOT from
  // Port::flows, so broken incremental bookkeeping can't fool the check).
  std::map<PortId, std::vector<FlowId>> on_port;
  std::vector<FlowId> ids;
  ids.reserve(flows_.size());
  for (auto& [id, f] : flows_) {
    ids.push_back(id);
    for (PortId p : f.path) on_port[p].push_back(id);
  }
  std::sort(ids.begin(), ids.end());

  std::unordered_set<FlowId> seen;
  std::unordered_set<PortId> ports_seen;
  std::vector<std::pair<FlowId, Rate>> out;
  out.reserve(ids.size());
  for (FlowId seed : ids) {
    if (seen.count(seed)) continue;
    // Component BFS over the side adjacency.
    std::vector<FlowId> component;
    std::vector<FlowId> stack{seed};
    seen.insert(seed);
    while (!stack.empty()) {
      const FlowId id = stack.back();
      stack.pop_back();
      component.push_back(id);
      for (PortId p : flows_.at(id).path) {
        if (!ports_seen.insert(p).second) continue;
        for (FlowId other : on_port[p])
          if (seen.insert(other).second) stack.push_back(other);
      }
    }
    std::sort(component.begin(), component.end());
    const auto rates = solve_component(component);
    for (std::size_t i = 0; i < component.size(); ++i)
      out.emplace_back(component[i], rates[i]);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void FlowNetwork::schedule_next_completion() {
  if (timer_ != simkit::kInvalidEvent) {
    sim_.cancel(timer_);
    timer_ = simkit::kInvalidEvent;
  }
  // Drop stale completion entries (finished/cancelled flows, superseded
  // rates) off the top.
  while (!completions_.empty()) {
    const Completion& top = completions_.top();
    auto it = flows_.find(top.id);
    if (it == flows_.end() || it->second.stamp != top.stamp) {
      completions_.pop();
      continue;
    }
    break;
  }
  if (completions_.empty()) {
    VDC_ASSERT_MSG(flows_.empty(), "active flow without a completion entry");
    return;
  }
  const SimTime dt = std::max(0.0, completions_.top().at - sim_.now());
  timer_ = sim_.after(dt, [this] { on_timer(); });
}

void FlowNetwork::on_timer() {
  timer_ = simkit::kInvalidEvent;
  settle_progress();
  const SimTime now = sim_.now();

  // Collect finished flows in deterministic (FlowId) order. The second
  // clause retires flows whose residual is so small that no representable
  // time step can move it (sub-ulp leftovers from the predicted-finish
  // arithmetic).
  std::vector<FlowId> done;
  for (auto& [id, f] : flows_)
    if (f.remaining < kDoneEpsilon || now + f.remaining / f.rate <= now)
      done.push_back(id);
  std::sort(done.begin(), done.end());

  std::vector<Callback> callbacks;
  callbacks.reserve(done.size());
  for (FlowId id : done) {
    auto it = flows_.find(id);
    mark_dirty(it->second.path);
    for (PortId p : it->second.path) ports_[p].flows.erase(id);
    if (it->second.on_complete)
      callbacks.push_back(std::move(it->second.on_complete));
    flows_.erase(it);
  }

  resolve_rates();

  // Re-arm surviving flows whose predicted finish has come due (an early
  // prediction by a float ulp): refresh their entry at the new now.
  while (!completions_.empty() && completions_.top().at <= now) {
    const Completion c = completions_.top();
    completions_.pop();
    auto it = flows_.find(c.id);
    if (it == flows_.end() || it->second.stamp != c.stamp) continue;
    Flow& f = it->second;
    ++f.stamp;
    double at = now + f.remaining / f.rate;
    if (at <= now)
      at = std::nextafter(now, std::numeric_limits<double>::infinity());
    completions_.push(Completion{at, c.id, f.stamp});
  }

  schedule_next_completion();
  if (!done.empty()) notify_count();

  // Run completions after the network state is consistent, so callbacks
  // may immediately start new flows.
  for (auto& cb : callbacks) cb();
}

}  // namespace vdc::net
