#include "net/flow_network.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

namespace vdc::net {

namespace {
// A flow whose remaining volume drops below this is considered delivered.
// One byte of slack at double precision; avoids infinite zeno re-scheduling.
constexpr double kDoneEpsilon = 0.5;

// Anti-starvation floor for the water-filling shares. A port whose
// residual was clamped to zero by accumulated drift (or whose tiny
// capacity underflows when divided across its flows) would otherwise hand
// its remaining flows an exact-zero rate, tripping the "active flow with
// zero rate" invariant and freezing those flows forever. Flooring the
// share keeps every flow finite-time-completable; the slack this adds per
// port is at most flows * floor, negligible against any real capacity.
constexpr double kShareFloorFraction = 1e-9;
constexpr double kAbsoluteRateFloor = 1e-300;  // survives denormal caps

double floored_share(double residual, std::uint32_t unfixed, double cap) {
  const double share = residual / unfixed;
  const double floor = std::max(cap * kShareFloorFraction,
                                kAbsoluteRateFloor);
  return std::max(share, floor);
}
}  // namespace

PortId FlowNetwork::add_port(Rate capacity, std::string name) {
  VDC_REQUIRE(capacity > 0.0, "port capacity must be positive");
  ports_.push_back(Port{capacity, std::move(name)});
  return static_cast<PortId>(ports_.size() - 1);
}

void FlowNetwork::set_capacity(PortId port, Rate capacity) {
  VDC_REQUIRE(capacity > 0.0, "port capacity must be positive");
  VDC_ASSERT(port < ports_.size());
  settle_progress();
  ports_[port].cap = capacity;
  resolve_rates();
  schedule_next_completion();
}

Rate FlowNetwork::capacity(PortId port) const {
  VDC_ASSERT(port < ports_.size());
  return ports_[port].cap;
}

const std::string& FlowNetwork::port_name(PortId port) const {
  VDC_ASSERT(port < ports_.size());
  return ports_[port].name;
}

double FlowNetwork::port_bytes(PortId port) const {
  VDC_ASSERT(port < ports_.size());
  return ports_[port].bytes_through;
}

FlowId FlowNetwork::start_flow(std::vector<PortId> path, Bytes bytes,
                               Callback on_complete, SimTime latency) {
  for (PortId p : path) VDC_ASSERT(p < ports_.size());
  VDC_ASSERT(latency >= 0.0);
  const FlowId id = next_flow_id_++;
  Flow flow{std::move(path), static_cast<double>(bytes),
            0.0, std::move(on_complete)};

  if (latency > 0.0) {
    auto ev = sim_.after(latency, [this, id, flow = std::move(flow)]() mutable {
      pending_latency_.erase(id);
      activate(id, std::move(flow));
    });
    pending_latency_.emplace(id, ev);
    notify_count();
  } else {
    activate(id, std::move(flow));
  }
  return id;
}

void FlowNetwork::activate(FlowId id, Flow flow) {
  if (flow.remaining < kDoneEpsilon) {
    // Zero-length transfer: complete as its own event to keep callback
    // ordering uniform with real transfers.
    if (flow.on_complete)
      sim_.after(0.0, std::move(flow.on_complete));
    notify_count();
    return;
  }
  settle_progress();
  flows_.emplace(id, std::move(flow));
  resolve_rates();
  schedule_next_completion();
  notify_count();
}

bool FlowNetwork::cancel_flow(FlowId id) {
  if (auto it = pending_latency_.find(id); it != pending_latency_.end()) {
    sim_.cancel(it->second);
    pending_latency_.erase(it);
    notify_count();
    return true;
  }
  auto it = flows_.find(id);
  if (it == flows_.end()) return false;
  settle_progress();
  flows_.erase(it);
  resolve_rates();
  schedule_next_completion();
  notify_count();
  return true;
}

void FlowNetwork::notify_count() {
  if (count_hook_) count_hook_();
}

Rate FlowNetwork::flow_rate(FlowId id) const {
  auto it = flows_.find(id);
  return it == flows_.end() ? 0.0 : it->second.rate;
}

void FlowNetwork::settle_progress() {
  const SimTime now = sim_.now();
  const double dt = now - last_settle_;
  last_settle_ = now;
  if (dt <= 0.0) return;
  for (auto& [id, flow] : flows_) {
    const double moved = std::min(flow.remaining, flow.rate * dt);
    flow.remaining -= moved;
    for (PortId p : flow.path) ports_[p].bytes_through += moved;
  }
}

void FlowNetwork::resolve_rates() {
  // Water-filling max-min fair allocation.
  if (flows_.empty()) return;

  std::vector<double> residual(ports_.size());
  std::vector<std::uint32_t> unfixed_on_port(ports_.size(), 0);
  for (std::size_t p = 0; p < ports_.size(); ++p) residual[p] = ports_[p].cap;

  // Deterministic iteration order: sort flow ids.
  std::vector<FlowId> ids;
  ids.reserve(flows_.size());
  for (auto& [id, f] : flows_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());

  std::unordered_map<FlowId, bool> fixed;
  fixed.reserve(ids.size());
  for (FlowId id : ids) {
    fixed[id] = false;
    for (PortId p : flows_[id].path) ++unfixed_on_port[p];
  }

  std::size_t remaining_flows = ids.size();
  while (remaining_flows > 0) {
    // Find the port giving the smallest fair share among loaded ports.
    double best_share = std::numeric_limits<double>::infinity();
    for (std::size_t p = 0; p < ports_.size(); ++p) {
      if (unfixed_on_port[p] == 0) continue;
      const double share =
          floored_share(residual[p], unfixed_on_port[p], ports_[p].cap);
      best_share = std::min(best_share, share);
    }
    VDC_ASSERT(std::isfinite(best_share));
    VDC_ASSERT_MSG(best_share > 0.0, "water-filling share underflowed");

    // Freeze every unfixed flow crossing a port that is saturated at
    // best_share (within numerical tolerance).
    bool froze_any = false;
    for (FlowId id : ids) {
      if (fixed[id]) continue;
      bool bottlenecked = false;
      for (PortId p : flows_[id].path) {
        const double share =
            floored_share(residual[p], unfixed_on_port[p], ports_[p].cap);
        if (share <= best_share * (1.0 + 1e-12)) {
          bottlenecked = true;
          break;
        }
      }
      if (!bottlenecked) continue;
      Flow& f = flows_[id];
      f.rate = best_share;
      fixed[id] = true;
      froze_any = true;
      --remaining_flows;
      for (PortId p : f.path) {
        residual[p] -= best_share;
        if (residual[p] < 0.0) residual[p] = 0.0;
        --unfixed_on_port[p];
      }
    }
    VDC_ASSERT_MSG(froze_any, "water-filling failed to make progress");
  }
}

void FlowNetwork::schedule_next_completion() {
  if (timer_ != simkit::kInvalidEvent) {
    sim_.cancel(timer_);
    timer_ = simkit::kInvalidEvent;
  }
  if (flows_.empty()) return;

  double next_dt = std::numeric_limits<double>::infinity();
  for (auto& [id, f] : flows_) {
    VDC_ASSERT_MSG(f.rate > 0.0, "active flow with zero rate");
    next_dt = std::min(next_dt, f.remaining / f.rate);
  }
  VDC_ASSERT(std::isfinite(next_dt));
  timer_ = sim_.after(next_dt, [this] { on_timer(); });
}

void FlowNetwork::on_timer() {
  timer_ = simkit::kInvalidEvent;
  settle_progress();

  // Collect finished flows in deterministic (FlowId) order.
  std::vector<FlowId> done;
  for (auto& [id, f] : flows_)
    if (f.remaining < kDoneEpsilon) done.push_back(id);
  std::sort(done.begin(), done.end());

  std::vector<Callback> callbacks;
  callbacks.reserve(done.size());
  for (FlowId id : done) {
    auto it = flows_.find(id);
    if (it->second.on_complete)
      callbacks.push_back(std::move(it->second.on_complete));
    flows_.erase(it);
  }

  resolve_rates();
  schedule_next_completion();
  if (!done.empty()) notify_count();

  // Run completions after the network state is consistent, so callbacks
  // may immediately start new flows.
  for (auto& cb : callbacks) cb();
}

}  // namespace vdc::net
