#pragma once
// Host-level convenience layer over FlowNetwork.
//
// A Fabric is a set of hosts connected through a non-blocking switch: each
// host contributes a full-duplex NIC modelled as a TX port and an RX port.
// Additional shared ports (a NAS front-end link, a disk array) can be
// created and spliced into transfer paths, which is how the single-NAS
// bottleneck of baseline disk-full checkpointing is expressed.

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/fault.hpp"
#include "net/flow_network.hpp"

namespace vdc::net {

using RackId = std::uint32_t;

class Fabric {
 public:
  /// `link_latency` is the one-way propagation/setup latency applied to
  /// every transfer (the paper's LAN context: tens of microseconds).
  Fabric(simkit::Simulator& sim, SimTime link_latency = 50e-6)
      : network_(sim),
        telemetry_(sim.telemetry()),
        link_latency_(link_latency) {
    // Keep the `net.active_flows` gauge honest: re-publish it on every
    // flow start, completion and cancel (latency-stage flows count too),
    // so it returns to 0 at quiescence and its peak is the true
    // concurrency high-water mark.
    network_.set_count_hook([this] {
      telemetry_.metrics().set(
          "net.active_flows",
          static_cast<double>(network_.active_flows() +
                              network_.pending_flows()));
    });
  }

  /// Add a host with a full-duplex NIC of the given speed. `rack` places
  /// the host behind that rack's uplink (see set_rack_uplink); hosts in
  /// the same rack talk switch-locally.
  HostId add_host(Rate nic_rate, const std::string& name = {},
                  RackId rack = 0);

  /// Add a standalone shared port (e.g. the NAS uplink).
  PortId add_shared_port(Rate rate, const std::string& name = {});

  /// Give `rack` an oversubscribed full-duplex uplink to the core switch:
  /// all traffic between different racks traverses the source rack's
  /// uplink and the destination rack's downlink. Racks without an uplink
  /// reach the core unconstrained (the default flat-switch model).
  void set_rack_uplink(RackId rack, Rate rate);

  std::size_t host_count() const { return tx_.size(); }

  /// Host-to-host transfer through the switch.
  FlowId transfer(HostId src, HostId dst, Bytes bytes,
                  FlowNetwork::Callback on_complete);

  /// Host-to-shared-port transfer (e.g. checkpoint stream to the NAS).
  /// The path is src TX -> shared port (the shared port is the sink).
  FlowId transfer_to_port(HostId src, PortId sink, Bytes bytes,
                          FlowNetwork::Callback on_complete);

  /// Shared-port-to-host transfer (e.g. restart image read from the NAS).
  FlowId transfer_from_port(PortId source, HostId dst, Bytes bytes,
                            FlowNetwork::Callback on_complete);

  /// Judged host-to-host transfer for the reliable-delivery layer. With
  /// the fault plane disabled (or never created) this is exactly
  /// transfer(): same flow, same path, same latency, and the callback
  /// fires with a default (kDelivered) verdict at completion. With faults
  /// active the verdict is drawn at launch and handed to the callback at
  /// completion — a dropped or corrupted frame still burns its wire time,
  /// which is what the sender's retransmission timer has to ride out.
  using JudgedCallback = std::function<void(const Judgement&)>;
  FlowId transfer_judged(HostId src, HostId dst, Bytes bytes,
                         JudgedCallback on_complete);

  /// Lazily-created fault plane (it owns a private deterministic Rng, so
  /// merely creating it perturbs nothing). It reports enabled() only once
  /// a fault has been configured; until then the judged path stays inert.
  LinkFaultInjector& faults();
  bool faults_active() const { return faults_ && faults_->enabled(); }

  /// Scale a host's NIC (tx + rx) capacity relative to its original rate;
  /// factor 1 restores it. The degraded-rate leg of the fault plane.
  void set_host_rate_factor(HostId host, double factor);

  bool cancel(FlowId id) { return network_.cancel_flow(id); }

  PortId tx_port(HostId h) const { return tx_.at(h); }
  PortId rx_port(HostId h) const { return rx_.at(h); }
  RackId host_rack(HostId h) const { return rack_.at(h); }

  FlowNetwork& network() { return network_; }
  const FlowNetwork& network() const { return network_; }
  SimTime link_latency() const { return link_latency_; }
  telemetry::Telemetry& telemetry() { return telemetry_; }

  /// ChunkedStream accounting: `net.chunks` counter plus the
  /// `stream.inflight` gauge (chunk flows currently on the wire).
  void note_chunk_started();
  void note_chunk_finished();
  std::size_t stream_chunks_inflight() const { return stream_inflight_; }

 private:
  struct RackUplink {
    PortId up;
    PortId down;
  };

  /// Per-transfer accounting: `net.transfers` / `net.bytes` counters
  /// (labelled by kind). The `net.active_flows` gauge is maintained by
  /// the FlowNetwork count hook, not here.
  void account(const char* kind, Bytes bytes);

  std::vector<PortId> host_path(HostId src, HostId dst) const;

  FlowNetwork network_;
  telemetry::Telemetry& telemetry_;
  SimTime link_latency_;
  std::size_t stream_inflight_ = 0;
  std::vector<PortId> tx_;
  std::vector<PortId> rx_;
  std::vector<RackId> rack_;
  std::vector<Rate> nic_rate_;
  std::unordered_map<RackId, RackUplink> uplinks_;
  std::unique_ptr<LinkFaultInjector> faults_;
};

}  // namespace vdc::net
