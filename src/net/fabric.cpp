#include "net/fabric.hpp"

namespace vdc::net {

void Fabric::account(const char* kind, Bytes bytes) {
  auto& metrics = telemetry_.metrics();
  const telemetry::Labels labels{{"kind", kind}};
  metrics.add("net.transfers", 1.0, labels);
  metrics.add("net.bytes", static_cast<double>(bytes), labels);
}

void Fabric::note_chunk_started() {
  auto& metrics = telemetry_.metrics();
  metrics.add("net.chunks", 1.0);
  metrics.set("stream.inflight", static_cast<double>(++stream_inflight_));
}

void Fabric::note_chunk_finished() {
  VDC_ASSERT(stream_inflight_ > 0);
  telemetry_.metrics().set("stream.inflight",
                           static_cast<double>(--stream_inflight_));
}

HostId Fabric::add_host(Rate nic_rate, const std::string& name,
                        RackId rack) {
  const auto id = static_cast<HostId>(tx_.size());
  tx_.push_back(network_.add_port(nic_rate, name + "/tx"));
  rx_.push_back(network_.add_port(nic_rate, name + "/rx"));
  rack_.push_back(rack);
  nic_rate_.push_back(nic_rate);
  return id;
}

LinkFaultInjector& Fabric::faults() {
  if (!faults_) {
    faults_ = std::make_unique<LinkFaultInjector>(
        telemetry_, Rng(0xfab51c0de5ull));
  }
  return *faults_;
}

void Fabric::set_host_rate_factor(HostId host, double factor) {
  VDC_ASSERT(host < tx_.size());
  VDC_REQUIRE(factor > 0.0, "rate factor must be positive");
  const Rate rate = nic_rate_[host] * factor;
  network_.set_capacity(tx_[host], rate);
  network_.set_capacity(rx_[host], rate);
}

void Fabric::set_rack_uplink(RackId rack, Rate rate) {
  VDC_REQUIRE(!uplinks_.count(rack), "rack uplink already configured");
  RackUplink uplink;
  uplink.up = network_.add_port(rate, "rack" + std::to_string(rack) + "/up");
  uplink.down =
      network_.add_port(rate, "rack" + std::to_string(rack) + "/down");
  uplinks_.emplace(rack, uplink);
}

PortId Fabric::add_shared_port(Rate rate, const std::string& name) {
  return network_.add_port(rate, name);
}

std::vector<PortId> Fabric::host_path(HostId src, HostId dst) const {
  std::vector<PortId> path{tx_[src]};
  if (rack_[src] != rack_[dst]) {
    // Cross-rack: traverse the oversubscribed core where configured.
    if (auto it = uplinks_.find(rack_[src]); it != uplinks_.end())
      path.push_back(it->second.up);
    if (auto it = uplinks_.find(rack_[dst]); it != uplinks_.end())
      path.push_back(it->second.down);
  }
  path.push_back(rx_[dst]);
  return path;
}

FlowId Fabric::transfer(HostId src, HostId dst, Bytes bytes,
                        FlowNetwork::Callback on_complete) {
  VDC_ASSERT(src < tx_.size() && dst < rx_.size());
  VDC_ASSERT_MSG(src != dst, "loopback transfers don't traverse the fabric");
  account("host", bytes);
  return network_.start_flow(host_path(src, dst), bytes,
                             std::move(on_complete), link_latency_);
}

FlowId Fabric::transfer_judged(HostId src, HostId dst, Bytes bytes,
                               JudgedCallback on_complete) {
  if (!faults_active()) {
    return transfer(src, dst, bytes,
                    [cb = std::move(on_complete)] { cb(Judgement{}); });
  }
  VDC_ASSERT(src < tx_.size() && dst < rx_.size());
  VDC_ASSERT_MSG(src != dst, "loopback transfers don't traverse the fabric");
  const Judgement verdict = faults_->judge(src, dst);
  account("host", bytes);
  return network_.start_flow(
      host_path(src, dst), bytes,
      [cb = std::move(on_complete), verdict] { cb(verdict); },
      link_latency_ + verdict.extra_latency);
}

FlowId Fabric::transfer_to_port(HostId src, PortId sink, Bytes bytes,
                                FlowNetwork::Callback on_complete) {
  VDC_ASSERT(src < tx_.size());
  account("to_port", bytes);
  return network_.start_flow({tx_[src], sink}, bytes, std::move(on_complete),
                             link_latency_);
}

FlowId Fabric::transfer_from_port(PortId source, HostId dst, Bytes bytes,
                                  FlowNetwork::Callback on_complete) {
  VDC_ASSERT(dst < rx_.size());
  account("from_port", bytes);
  return network_.start_flow({source, rx_[dst]}, bytes,
                             std::move(on_complete), link_latency_);
}

}  // namespace vdc::net
