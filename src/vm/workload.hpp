#pragma once
// Synthetic guest workloads: processes that dirty VM memory over time.
//
// The paper's incremental/COW analysis (Sections II-B and IV-C) hinges on
// "how fast and how many pages get dirtied". These models span the regimes
// that matter: uniformly random writes (worst case for incremental
// checkpointing), a hot/cold working set (the common case that makes
// increments small), a sequential scanner (streaming codes), and an idle
// guest. Each write mutates real bytes so checkpoint/parity content is
// exercised, not just counted.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "vm/memory_image.hpp"

namespace vdc::vm {

class Workload {
 public:
  virtual ~Workload() = default;

  /// Advance the guest by `dt` of virtual time, performing writes on
  /// `image` using `rng` for any randomness.
  virtual void advance(MemoryImage& image, SimTime dt, Rng& rng) = 0;

  /// Expected page-write rate (writes per second) for sizing/analysis.
  virtual double write_rate() const = 0;

  virtual std::string name() const = 0;
};

/// Writes land on uniformly random pages at a fixed rate.
class UniformWorkload final : public Workload {
 public:
  explicit UniformWorkload(double writes_per_sec);
  void advance(MemoryImage& image, SimTime dt, Rng& rng) override;
  double write_rate() const override { return rate_; }
  std::string name() const override { return "uniform"; }

 private:
  double rate_;
  double carry_ = 0.0;
};

/// A fraction of pages is "hot" and attracts most writes — the locality
/// regime where incremental checkpoints shine.
class HotColdWorkload final : public Workload {
 public:
  /// `hot_fraction` of the address space receives `hot_probability` of the
  /// writes (e.g. 0.1 of pages get 0.9 of writes).
  HotColdWorkload(double writes_per_sec, double hot_fraction,
                  double hot_probability);
  void advance(MemoryImage& image, SimTime dt, Rng& rng) override;
  double write_rate() const override { return rate_; }
  std::string name() const override { return "hot-cold"; }
  double hot_fraction() const { return hot_fraction_; }

 private:
  double rate_;
  double hot_fraction_;
  double hot_probability_;
  double carry_ = 0.0;
};

/// Streams through memory page by page (e.g. a large matrix sweep).
class SequentialWorkload final : public Workload {
 public:
  explicit SequentialWorkload(double writes_per_sec);
  void advance(MemoryImage& image, SimTime dt, Rng& rng) override;
  double write_rate() const override { return rate_; }
  std::string name() const override { return "sequential"; }

 private:
  double rate_;
  double carry_ = 0.0;
  PageIndex cursor_ = 0;
};

/// Zipf-distributed page popularity: page rank r is written with
/// probability proportional to 1/r^s. The skewed-but-heavy-tailed regime
/// between hot/cold and uniform.
class ZipfWorkload final : public Workload {
 public:
  ZipfWorkload(double writes_per_sec, double exponent);
  void advance(MemoryImage& image, SimTime dt, Rng& rng) override;
  double write_rate() const override { return rate_; }
  std::string name() const override { return "zipf"; }
  double exponent() const { return exponent_; }

 private:
  PageIndex sample_page(std::size_t pages, Rng& rng);

  double rate_;
  double exponent_;
  double carry_ = 0.0;
  // Cached CDF for the page count seen last (images don't resize).
  std::vector<double> cdf_;
};

/// Alternates between two write rates with a fixed period — a bursty
/// guest (compute phase vs. write-back phase). The regime where adaptive
/// checkpointing beats a fixed interval.
class PhasedWorkload final : public Workload {
 public:
  /// Phase A at `rate_a` for `phase_length` of virtual time, then phase B
  /// at `rate_b`, repeating.
  PhasedWorkload(double rate_a, double rate_b, SimTime phase_length);
  void advance(MemoryImage& image, SimTime dt, Rng& rng) override;
  double write_rate() const override { return (rate_a_ + rate_b_) / 2.0; }
  std::string name() const override { return "phased"; }
  /// Rate in effect right now.
  double current_rate() const { return in_a_ ? rate_a_ : rate_b_; }

 private:
  double rate_a_;
  double rate_b_;
  SimTime phase_length_;
  bool in_a_ = true;
  SimTime into_phase_ = 0.0;
  double carry_ = 0.0;
};

/// A guest that writes nothing (control case).
class IdleWorkload final : public Workload {
 public:
  void advance(MemoryImage&, SimTime, Rng&) override {}
  double write_rate() const override { return 0.0; }
  std::string name() const override { return "idle"; }
};

}  // namespace vdc::vm
