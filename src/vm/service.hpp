#pragma once
// Request service model for a guest: a FIFO queue drained by a fixed
// number of servers with deterministic per-request service time.
//
// This is deliberately *not* a workload: serving a request must never
// dirty guest memory, because the serving plane has to be able to run on
// top of a checkpointed job without perturbing what each epoch ships over
// the wire (the traffic on/off bit-identity test relies on it). The
// guest's memory churn stays the business of its vm::Workload; this class
// only models the queueing delay a client request sees at the guest.

#include <cstdint>
#include <deque>
#include <functional>
#include <unordered_map>

#include "common/units.hpp"
#include "simkit/simulator.hpp"

namespace vdc::vm {

class GuestService {
 public:
  struct Config {
    /// Parallel servers (vCPU worker threads) draining the queue.
    std::uint32_t concurrency = 4;
    /// Deterministic per-request service time.
    SimTime service_time = milliseconds(1);
    /// Queued (not yet in service) requests beyond this are shed.
    std::size_t queue_limit = 4096;
  };

  using Done = std::function<void(std::uint64_t token)>;

  GuestService(simkit::Simulator& sim, Config config);
  ~GuestService() { fail(); }
  GuestService(const GuestService&) = delete;
  GuestService& operator=(const GuestService&) = delete;

  /// Enqueue a request. Returns false (and drops it) when the queue is
  /// full — the client sees a timeout and retries.
  bool submit(std::uint64_t token, Done done);

  /// The guest died (or rolled back): every queued and in-service request
  /// vanishes; their Done callbacks never fire.
  void fail();

  std::size_t queued() const { return queue_.size(); }
  std::size_t in_service() const { return inflight_.size(); }
  std::uint64_t shed() const { return shed_; }

 private:
  struct Pending {
    std::uint64_t token;
    Done done;
  };

  void start(Pending request);

  simkit::Simulator& sim_;
  Config config_;
  std::deque<Pending> queue_;
  std::unordered_map<simkit::EventId, std::uint64_t> inflight_;
  std::uint64_t shed_ = 0;
};

}  // namespace vdc::vm
