#pragma once
// Virtual machines and the per-node hypervisor.
//
// The hypervisor exposes exactly the narrow interface the paper relies on
// (Section IV-A): pause/resume of guests, full snapshots, copy-on-write
// forks, and the dirty-page log — all "below the kernel", i.e. without any
// cooperation from the (synthetic) guest workload.

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "vm/memory_image.hpp"
#include "vm/workload.hpp"

namespace vdc::vm {

using VmId = std::uint32_t;

enum class VmState { Running, Paused, Failed };

class VirtualMachine {
 public:
  VirtualMachine(VmId id, std::string name, Bytes page_size,
                 std::size_t page_count, std::unique_ptr<Workload> workload);

  VmId id() const { return id_; }
  const std::string& name() const { return name_; }
  VmState state() const { return state_; }

  MemoryImage& image() { return image_; }
  const MemoryImage& image() const { return image_; }
  Workload& workload() { return *workload_; }

  void pause();
  void resume();
  void mark_failed() { state_ = VmState::Failed; }

  /// Advance the guest's execution by `dt` (no-op unless Running).
  void advance(SimTime dt, Rng& rng);

  /// Virtual CPU time accumulated while Running (the "progress bar").
  SimTime cpu_time() const { return cpu_time_; }

 private:
  VmId id_;
  std::string name_;
  VmState state_ = VmState::Running;
  MemoryImage image_;
  std::unique_ptr<Workload> workload_;
  SimTime cpu_time_ = 0.0;
};

/// One hypervisor instance per physical node. Owns the guests placed there.
class Hypervisor {
 public:
  explicit Hypervisor(Rng rng) : rng_(rng) {}

  /// Fraction of pages left zero when booting fresh guests (freshly
  /// booted OSes touch only part of their RAM).
  void set_boot_zero_fraction(double fraction) {
    boot_zero_fraction_ = fraction;
  }
  Hypervisor(const Hypervisor&) = delete;
  Hypervisor& operator=(const Hypervisor&) = delete;

  /// Boot a fresh VM on this node; its image is filled with deterministic
  /// pseudo-random content (a synthetic booted-guest footprint).
  VirtualMachine& create_vm(VmId id, std::string name, Bytes page_size,
                            std::size_t page_count,
                            std::unique_ptr<Workload> workload);

  /// Adopt an existing VM (live-migration arrival / recovery re-placement).
  VirtualMachine& adopt(std::unique_ptr<VirtualMachine> machine);

  /// Remove a VM from this node and hand it to the caller (migration exit).
  std::unique_ptr<VirtualMachine> evict(VmId id);

  void destroy_vm(VmId id);

  bool hosts(VmId id) const { return vms_.count(id) != 0; }
  VirtualMachine& get(VmId id);
  const VirtualMachine& get(VmId id) const;

  std::size_t vm_count() const { return vms_.size(); }
  /// Ids of hosted VMs in ascending order.
  std::vector<VmId> vm_ids() const;

  void pause_all();
  void resume_all();

  /// Advance every running guest by `dt` of virtual time.
  void advance_all(SimTime dt);

  /// Advance one guest by `dt` (used while it is mid-migration).
  void advance_vm(VmId id, SimTime dt) { get(id).advance(dt, rng_); }

  /// Full (stop-the-world) snapshot of a guest's memory.
  std::vector<std::byte> snapshot(VmId id) const;

  /// Copy-on-write fork of a guest (guest keeps running).
  std::unique_ptr<CowSnapshot> fork(VmId id);

 private:
  Rng rng_;
  double boot_zero_fraction_ = 0.0;
  std::map<VmId, std::unique_ptr<VirtualMachine>> vms_;
};

}  // namespace vdc::vm
