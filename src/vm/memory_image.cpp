#include "vm/memory_image.hpp"

#include <algorithm>
#include <cstring>

namespace vdc::vm {

MemoryImage::MemoryImage(Bytes page_size, std::size_t page_count)
    : page_size_(page_size),
      page_count_(page_count),
      data_(page_size * page_count),
      dirty_(page_count, 0) {
  VDC_REQUIRE(page_size > 0, "page size must be positive");
  VDC_REQUIRE(page_count > 0, "image needs at least one page");
}

std::span<const std::byte> MemoryImage::page(PageIndex i) const {
  VDC_ASSERT(i < page_count_);
  return {data_.data() + i * page_size_, page_size_};
}

void MemoryImage::preserve_for_snapshot(PageIndex i) {
  if (snapshot_ == nullptr) return;
  auto& preserved = snapshot_->preserved_;
  if (preserved.count(i)) return;
  auto view = page(i);
  preserved.emplace(i, std::vector<std::byte>(view.begin(), view.end()));
}

void MemoryImage::write(PageIndex i, std::size_t offset,
                        std::span<const std::byte> bytes) {
  VDC_ASSERT(i < page_count_);
  VDC_ASSERT(offset + bytes.size() <= page_size_);
  preserve_for_snapshot(i);
  std::memcpy(data_.data() + i * page_size_ + offset, bytes.data(),
              bytes.size());
  const auto lo = static_cast<std::uint32_t>(offset);
  const auto hi = static_cast<std::uint32_t>(offset + bytes.size());
  if (!dirty_[i]) {
    dirty_[i] = 1;
    ++dirty_count_;
    extents_[i] = {lo, hi};
  } else if (auto it = extents_.find(i); it != extents_.end()) {
    it->second.first = std::min(it->second.first, lo);
    it->second.second = std::max(it->second.second, hi);
  }
  // else: already fully dirty (no extent entry) — stays full page.
}

void MemoryImage::write_page(PageIndex i, std::span<const std::byte> bytes) {
  VDC_ASSERT(bytes.size() == page_size_);
  write(i, 0, bytes);
}

void MemoryImage::fill_random(Rng& rng, double zero_fraction) {
  VDC_REQUIRE(zero_fraction >= 0.0 && zero_fraction <= 1.0,
              "zero fraction must be in [0, 1]");
  for (PageIndex p = 0; p < page_count_; ++p) {
    std::byte* page = data_.data() + p * page_size_;
    if (rng.chance(zero_fraction)) {
      std::memset(page, 0, page_size_);
      continue;
    }
    // Fill with 64-bit chunks of PRNG output; deterministic given the rng.
    std::size_t off = 0;
    while (off + 8 <= page_size_) {
      const std::uint64_t v = rng.next();
      std::memcpy(page + off, &v, 8);
      off += 8;
    }
    for (; off < page_size_; ++off)
      page[off] = static_cast<std::byte>(rng.next() & 0xff);
  }
  mark_all_dirty();
}

bool MemoryImage::is_dirty(PageIndex i) const {
  VDC_ASSERT(i < page_count_);
  return dirty_[i] != 0;
}

std::vector<PageIndex> MemoryImage::dirty_pages() const {
  std::vector<PageIndex> out;
  out.reserve(dirty_count_);
  for (PageIndex i = 0; i < page_count_; ++i)
    if (dirty_[i]) out.push_back(i);
  return out;
}

std::pair<std::size_t, std::size_t> MemoryImage::dirty_extent(
    PageIndex i) const {
  VDC_ASSERT(i < page_count_);
  if (auto it = extents_.find(i); it != extents_.end())
    return {it->second.first, it->second.second};
  return {0, page_size_};
}

void MemoryImage::clear_dirty() {
  std::fill(dirty_.begin(), dirty_.end(), 0);
  extents_.clear();
  dirty_count_ = 0;
  ++dirty_generation_;
}

void MemoryImage::mark_all_dirty() {
  std::fill(dirty_.begin(), dirty_.end(), 1);
  extents_.clear();
  dirty_count_ = page_count_;
}

void MemoryImage::mark_dirty(PageIndex i) {
  VDC_ASSERT(i < page_count_);
  extents_.erase(i);
  if (!dirty_[i]) {
    dirty_[i] = 1;
    ++dirty_count_;
  }
}

std::unique_ptr<CowSnapshot> MemoryImage::fork_cow() {
  VDC_REQUIRE(snapshot_ == nullptr,
              "only one COW snapshot may be active per image");
  auto snap = std::unique_ptr<CowSnapshot>(new CowSnapshot(*this));
  snapshot_ = snap.get();
  return snap;
}

void MemoryImage::restore(std::span<const std::byte> flat) {
  VDC_REQUIRE(flat.size() == data_.size(),
              "restore image size mismatch");
  // A restore rewrites everything: preserve all pages for any active
  // snapshot, then copy.
  if (snapshot_ != nullptr)
    for (PageIndex i = 0; i < page_count_; ++i) preserve_for_snapshot(i);
  std::memcpy(data_.data(), flat.data(), flat.size());
  mark_all_dirty();
}

void MemoryImage::restore_range(std::size_t offset,
                                std::span<const std::byte> bytes) {
  VDC_REQUIRE(offset + bytes.size() <= data_.size(),
              "restore range out of bounds");
  if (bytes.empty()) return;
  const PageIndex first = offset / page_size_;
  const PageIndex last = (offset + bytes.size() - 1) / page_size_;
  for (PageIndex i = first; i <= last; ++i) {
    preserve_for_snapshot(i);
    mark_dirty(i);
  }
  std::memcpy(data_.data() + offset, bytes.data(), bytes.size());
}

CowSnapshot::~CowSnapshot() {
  if (owner_ != nullptr) {
    VDC_ASSERT(owner_->snapshot_ == this);
    owner_->snapshot_ = nullptr;
  }
}

std::span<const std::byte> CowSnapshot::page(PageIndex i) const {
  VDC_ASSERT_MSG(owner_ != nullptr, "snapshot outlived its image");
  auto it = preserved_.find(i);
  if (it != preserved_.end()) return {it->second.data(), it->second.size()};
  return owner_->page(i);
}

std::size_t CowSnapshot::page_count() const {
  VDC_ASSERT(owner_ != nullptr);
  return owner_->page_count();
}

Bytes CowSnapshot::page_size() const {
  VDC_ASSERT(owner_ != nullptr);
  return owner_->page_size();
}

std::vector<std::byte> CowSnapshot::materialize() const {
  VDC_ASSERT(owner_ != nullptr);
  std::vector<std::byte> out;
  out.reserve(page_count() * page_size());
  for (PageIndex i = 0; i < page_count(); ++i) {
    auto view = page(i);
    out.insert(out.end(), view.begin(), view.end());
  }
  return out;
}

}  // namespace vdc::vm
