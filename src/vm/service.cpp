#include "vm/service.hpp"

#include <utility>

#include "common/assert.hpp"

namespace vdc::vm {

GuestService::GuestService(simkit::Simulator& sim, Config config)
    : sim_(sim), config_(config) {
  VDC_REQUIRE(config_.concurrency > 0, "GuestService needs >= 1 server");
  VDC_REQUIRE(config_.service_time >= 0.0,
              "GuestService: negative service time");
}

bool GuestService::submit(std::uint64_t token, Done done) {
  if (inflight_.size() < config_.concurrency) {
    start(Pending{token, std::move(done)});
    return true;
  }
  if (queue_.size() >= config_.queue_limit) {
    ++shed_;
    return false;
  }
  queue_.push_back(Pending{token, std::move(done)});
  return true;
}

void GuestService::start(Pending request) {
  const std::uint64_t token = request.token;
  // The completion event owns the callback; fail() cancels the event and
  // the callback dies with it.
  const simkit::EventId ev = sim_.after(
      config_.service_time, [this, done = std::move(request.done), token] {
        // Erase before invoking: the callback may submit follow-on work.
        for (auto it = inflight_.begin(); it != inflight_.end(); ++it) {
          if (it->second == token) {
            inflight_.erase(it);
            break;
          }
        }
        if (!queue_.empty()) {
          Pending next = std::move(queue_.front());
          queue_.pop_front();
          start(std::move(next));
        }
        done(token);
      });
  inflight_.emplace(ev, token);
}

void GuestService::fail() {
  for (const auto& [ev, token] : inflight_) sim_.cancel(ev);
  inflight_.clear();
  queue_.clear();
}

}  // namespace vdc::vm
