#include "vm/machine.hpp"

#include <utility>

#include "common/assert.hpp"

namespace vdc::vm {

VirtualMachine::VirtualMachine(VmId id, std::string name, Bytes page_size,
                               std::size_t page_count,
                               std::unique_ptr<Workload> workload)
    : id_(id),
      name_(std::move(name)),
      image_(page_size, page_count),
      workload_(std::move(workload)) {
  VDC_REQUIRE(workload_ != nullptr, "VM needs a workload");
}

void VirtualMachine::pause() {
  VDC_ASSERT_MSG(state_ != VmState::Failed, "cannot pause a failed VM");
  state_ = VmState::Paused;
}

void VirtualMachine::resume() {
  VDC_ASSERT_MSG(state_ != VmState::Failed, "cannot resume a failed VM");
  state_ = VmState::Running;
}

void VirtualMachine::advance(SimTime dt, Rng& rng) {
  if (state_ != VmState::Running) return;
  workload_->advance(image_, dt, rng);
  cpu_time_ += dt;
}

VirtualMachine& Hypervisor::create_vm(VmId id, std::string name,
                                      Bytes page_size, std::size_t page_count,
                                      std::unique_ptr<Workload> workload) {
  VDC_REQUIRE(!vms_.count(id), "VM id already hosted here");
  auto machine = std::make_unique<VirtualMachine>(
      id, std::move(name), page_size, page_count, std::move(workload));
  Rng boot_rng = rng_.fork();
  machine->image().fill_random(boot_rng, boot_zero_fraction_);
  machine->image().clear_dirty();
  auto [it, inserted] = vms_.emplace(id, std::move(machine));
  VDC_ASSERT(inserted);
  return *it->second;
}

VirtualMachine& Hypervisor::adopt(std::unique_ptr<VirtualMachine> machine) {
  VDC_ASSERT(machine != nullptr);
  const VmId id = machine->id();
  VDC_REQUIRE(!vms_.count(id), "VM id already hosted here");
  auto [it, inserted] = vms_.emplace(id, std::move(machine));
  VDC_ASSERT(inserted);
  return *it->second;
}

std::unique_ptr<VirtualMachine> Hypervisor::evict(VmId id) {
  auto it = vms_.find(id);
  VDC_REQUIRE(it != vms_.end(), "evict: VM not hosted here");
  auto machine = std::move(it->second);
  vms_.erase(it);
  return machine;
}

void Hypervisor::destroy_vm(VmId id) {
  VDC_REQUIRE(vms_.erase(id) != 0, "destroy: VM not hosted here");
}

VirtualMachine& Hypervisor::get(VmId id) {
  auto it = vms_.find(id);
  VDC_REQUIRE(it != vms_.end(), "VM not hosted here");
  return *it->second;
}

const VirtualMachine& Hypervisor::get(VmId id) const {
  auto it = vms_.find(id);
  VDC_REQUIRE(it != vms_.end(), "VM not hosted here");
  return *it->second;
}

std::vector<VmId> Hypervisor::vm_ids() const {
  std::vector<VmId> ids;
  ids.reserve(vms_.size());
  for (const auto& [id, machine] : vms_) ids.push_back(id);
  return ids;  // std::map iterates in ascending key order
}

void Hypervisor::pause_all() {
  for (auto& [id, machine] : vms_)
    if (machine->state() == VmState::Running) machine->pause();
}

void Hypervisor::resume_all() {
  for (auto& [id, machine] : vms_)
    if (machine->state() == VmState::Paused) machine->resume();
}

void Hypervisor::advance_all(SimTime dt) {
  for (auto& [id, machine] : vms_) machine->advance(dt, rng_);
}

std::vector<std::byte> Hypervisor::snapshot(VmId id) const {
  return get(id).image().flatten();
}

std::unique_ptr<CowSnapshot> Hypervisor::fork(VmId id) {
  return get(id).image().fork_cow();
}

}  // namespace vdc::vm
