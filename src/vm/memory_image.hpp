#pragma once
// Page-granular VM memory image.
//
// This is the unit of checkpointing and parity: real bytes, organised in
// pages, with a dirty bitmap maintained on every write (the hypervisor's
// shadow-page-table dirty log) and an optional copy-on-write snapshot used
// by forked checkpointing (the VM keeps running while the checkpoint reads
// a frozen view).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/assert.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"

namespace vdc::vm {

using PageIndex = std::size_t;

class MemoryImage;

/// A frozen copy-on-write view of an image at fork time. Reading a page
/// returns the bytes as they were when the snapshot was taken, regardless
/// of writes the live image performed since. Keep it alive only as long as
/// needed: each post-fork first-write to a page costs one page copy.
class CowSnapshot {
 public:
  ~CowSnapshot();
  CowSnapshot(const CowSnapshot&) = delete;
  CowSnapshot& operator=(const CowSnapshot&) = delete;

  /// Frozen contents of page `i`.
  std::span<const std::byte> page(PageIndex i) const;

  std::size_t page_count() const;
  Bytes page_size() const;

  /// Pages that had to be copied because the live VM dirtied them while
  /// this snapshot was alive (the "2I during checkpointing" cost in Plank's
  /// forked variant).
  std::size_t preserved_page_count() const { return preserved_.size(); }

  /// Materialise the full frozen image as a flat byte vector.
  std::vector<std::byte> materialize() const;

 private:
  friend class MemoryImage;
  explicit CowSnapshot(MemoryImage& owner) : owner_(&owner) {}

  MemoryImage* owner_;  // null once detached
  std::unordered_map<PageIndex, std::vector<std::byte>> preserved_;
};

class MemoryImage {
 public:
  MemoryImage(Bytes page_size, std::size_t page_count);

  Bytes page_size() const { return page_size_; }
  std::size_t page_count() const { return page_count_; }
  Bytes size_bytes() const { return page_size_ * page_count_; }

  /// Read-only view of a page's current contents.
  std::span<const std::byte> page(PageIndex i) const;

  /// Write `bytes` into page `i` at `offset`; marks the page dirty and
  /// preserves the old contents in the active COW snapshot if any.
  void write(PageIndex i, std::size_t offset, std::span<const std::byte> bytes);

  /// Overwrite a whole page (restore path).
  void write_page(PageIndex i, std::span<const std::byte> bytes);

  /// Fill every page with deterministic pseudo-random content. With
  /// `zero_fraction` > 0, that fraction of pages (chosen pseudo-randomly)
  /// stays zero — the untouched-page sparsity of a freshly booted guest.
  void fill_random(Rng& rng, double zero_fraction = 0.0);

  // --- dirty log -----------------------------------------------------------
  bool is_dirty(PageIndex i) const;
  std::size_t dirty_count() const { return dirty_count_; }
  /// Byte extent [first, second) of page `i` touched by write() since the
  /// last clear_dirty(). Pages dirtied wholesale (mark_dirty, mark_all_dirty,
  /// restore, fill_random) report the full page, so the extent is always a
  /// safe over-approximation of the bytes that may differ from the last
  /// clear. Meaningful only while the page is dirty; returns the full page
  /// otherwise.
  std::pair<std::size_t, std::size_t> dirty_extent(PageIndex i) const;
  /// Sorted list of dirty page indices.
  std::vector<PageIndex> dirty_pages() const;
  /// Clear the dirty log (checkpoint epoch boundary). Bumps the dirty
  /// generation: each clear consumes the log, and a consumer that cached
  /// state derived from a previous clear can detect that someone else has
  /// consumed the log since (and fall back to a full scan).
  void clear_dirty();
  /// Mark every page dirty (after restore, the first checkpoint is full).
  void mark_all_dirty();
  /// Re-mark a single page dirty (aborted capture returns its pages).
  void mark_dirty(PageIndex i);
  /// Incremented on every clear_dirty(); starts at 0 for a fresh image.
  std::uint64_t dirty_generation() const { return dirty_generation_; }

  // --- copy-on-write fork ---------------------------------------------------
  /// Take a COW snapshot. Only one may be alive at a time.
  std::unique_ptr<CowSnapshot> fork_cow();
  bool has_active_snapshot() const { return snapshot_ != nullptr; }

  /// Flat copy of the whole image.
  std::vector<std::byte> flatten() const { return data_; }

  /// Zero-copy read-only view of the whole image.
  std::span<const std::byte> bytes() const { return data_; }

  /// Replace the entire contents (restore from a reconstructed checkpoint).
  void restore(std::span<const std::byte> flat);

  /// Overwrite [offset, offset + bytes.size()) of the flat image (restore
  /// from scatter-gather checkpoint spans). Touched pages are marked fully
  /// dirty, matching restore().
  void restore_range(std::size_t offset, std::span<const std::byte> bytes);

 private:
  friend class CowSnapshot;
  void preserve_for_snapshot(PageIndex i);

  Bytes page_size_;
  std::size_t page_count_;
  std::vector<std::byte> data_;
  std::vector<std::uint8_t> dirty_;
  // Sub-page write extents: present entry = union of write() ranges since the
  // page became dirty; ABSENT entry for a dirty page = full page (the
  // wholesale-dirty paths erase entries instead of widening them).
  std::unordered_map<PageIndex, std::pair<std::uint32_t, std::uint32_t>>
      extents_;
  std::size_t dirty_count_ = 0;
  std::uint64_t dirty_generation_ = 0;
  CowSnapshot* snapshot_ = nullptr;
};

}  // namespace vdc::vm
