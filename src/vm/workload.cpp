#include "vm/workload.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace vdc::vm {

namespace {

// Each page write mutates a small run of bytes at a random offset: enough
// to change checkpoint content without the cost of rewriting whole pages.
constexpr std::size_t kWriteSpan = 64;

void mutate_page(MemoryImage& image, PageIndex page, Rng& rng) {
  std::byte buf[kWriteSpan];
  for (auto& b : buf) b = static_cast<std::byte>(rng.next() & 0xff);
  const std::size_t span =
      std::min<std::size_t>(kWriteSpan, image.page_size());
  const std::size_t max_off = image.page_size() - span;
  const std::size_t off = max_off ? rng.uniform_u64(max_off + 1) : 0;
  image.write(page, off, {buf, span});
}

// Convert a continuous rate into an integer number of writes for this
// step, carrying the fractional remainder so long-run rates are exact.
std::uint64_t writes_this_step(double rate, SimTime dt, double& carry) {
  VDC_ASSERT(dt >= 0.0);
  const double want = rate * dt + carry;
  const double whole = std::floor(want);
  carry = want - whole;
  return static_cast<std::uint64_t>(whole);
}

}  // namespace

UniformWorkload::UniformWorkload(double writes_per_sec)
    : rate_(writes_per_sec) {
  VDC_REQUIRE(writes_per_sec >= 0.0, "write rate must be non-negative");
}

void UniformWorkload::advance(MemoryImage& image, SimTime dt, Rng& rng) {
  const auto n = writes_this_step(rate_, dt, carry_);
  for (std::uint64_t i = 0; i < n; ++i)
    mutate_page(image, rng.uniform_u64(image.page_count()), rng);
}

HotColdWorkload::HotColdWorkload(double writes_per_sec, double hot_fraction,
                                 double hot_probability)
    : rate_(writes_per_sec),
      hot_fraction_(hot_fraction),
      hot_probability_(hot_probability) {
  VDC_REQUIRE(writes_per_sec >= 0.0, "write rate must be non-negative");
  VDC_REQUIRE(hot_fraction > 0.0 && hot_fraction <= 1.0,
              "hot fraction must be in (0, 1]");
  VDC_REQUIRE(hot_probability >= 0.0 && hot_probability <= 1.0,
              "hot probability must be in [0, 1]");
}

void HotColdWorkload::advance(MemoryImage& image, SimTime dt, Rng& rng) {
  const auto n = writes_this_step(rate_, dt, carry_);
  const auto hot_pages = std::max<std::size_t>(
      1, static_cast<std::size_t>(
             std::floor(hot_fraction_ * image.page_count())));
  for (std::uint64_t i = 0; i < n; ++i) {
    PageIndex page;
    if (rng.chance(hot_probability_)) {
      page = rng.uniform_u64(hot_pages);  // hot set = first pages
    } else {
      page = rng.uniform_u64(image.page_count());
    }
    mutate_page(image, page, rng);
  }
}

SequentialWorkload::SequentialWorkload(double writes_per_sec)
    : rate_(writes_per_sec) {
  VDC_REQUIRE(writes_per_sec >= 0.0, "write rate must be non-negative");
}

void SequentialWorkload::advance(MemoryImage& image, SimTime dt, Rng& rng) {
  const auto n = writes_this_step(rate_, dt, carry_);
  for (std::uint64_t i = 0; i < n; ++i) {
    mutate_page(image, cursor_, rng);
    cursor_ = (cursor_ + 1) % image.page_count();
  }
}

ZipfWorkload::ZipfWorkload(double writes_per_sec, double exponent)
    : rate_(writes_per_sec), exponent_(exponent) {
  VDC_REQUIRE(writes_per_sec >= 0.0, "write rate must be non-negative");
  VDC_REQUIRE(exponent > 0.0, "Zipf exponent must be positive");
}

vm::PageIndex ZipfWorkload::sample_page(std::size_t pages, Rng& rng) {
  if (cdf_.size() != pages) {
    cdf_.resize(pages);
    double sum = 0.0;
    for (std::size_t r = 0; r < pages; ++r) {
      sum += 1.0 / std::pow(static_cast<double>(r + 1), exponent_);
      cdf_[r] = sum;
    }
    for (auto& c : cdf_) c /= sum;
  }
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<PageIndex>(it - cdf_.begin());
}

void ZipfWorkload::advance(MemoryImage& image, SimTime dt, Rng& rng) {
  const auto n = writes_this_step(rate_, dt, carry_);
  for (std::uint64_t i = 0; i < n; ++i)
    mutate_page(image, sample_page(image.page_count(), rng), rng);
}

PhasedWorkload::PhasedWorkload(double rate_a, double rate_b,
                               SimTime phase_length)
    : rate_a_(rate_a), rate_b_(rate_b), phase_length_(phase_length) {
  VDC_REQUIRE(rate_a >= 0.0 && rate_b >= 0.0,
              "write rates must be non-negative");
  VDC_REQUIRE(phase_length > 0.0, "phase length must be positive");
}

void PhasedWorkload::advance(MemoryImage& image, SimTime dt, Rng& rng) {
  // Walk through phase boundaries, issuing writes at each phase's rate.
  while (dt > 0.0) {
    const SimTime left = phase_length_ - into_phase_;
    const SimTime step = std::min(dt, left);
    const double rate = in_a_ ? rate_a_ : rate_b_;
    const auto n = writes_this_step(rate, step, carry_);
    for (std::uint64_t i = 0; i < n; ++i)
      mutate_page(image, rng.uniform_u64(image.page_count()), rng);
    into_phase_ += step;
    dt -= step;
    if (into_phase_ >= phase_length_ - 1e-12) {
      into_phase_ = 0.0;
      in_a_ = !in_a_;
    }
  }
}

}  // namespace vdc::vm
