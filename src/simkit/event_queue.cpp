#include "simkit/event_queue.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "common/assert.hpp"
#include "common/env.hpp"

namespace vdc::simkit {

namespace {

// Bucket width fitted to the current population: a few times the median
// inter-event gap near-uniformly sampled across the contents, so the
// average bucket holds O(1) events of the current "year". The median (not
// the mean) keeps one far-future outlier — a lone watchdog timer — from
// stretching every bucket.
double estimate_width(const std::vector<QueueEntry>& entries) {
  if (entries.size() < 2) return 1.0;
  constexpr std::size_t kSample = 64;
  const std::size_t stride =
      std::max<std::size_t>(1, entries.size() / kSample);
  std::vector<double> times;
  times.reserve(kSample + 1);
  for (std::size_t i = 0; i < entries.size(); i += stride)
    times.push_back(entries[i].t);
  std::sort(times.begin(), times.end());
  std::vector<double> gaps;
  gaps.reserve(times.size());
  for (std::size_t i = 1; i < times.size(); ++i)
    if (times[i] > times[i - 1]) gaps.push_back(times[i] - times[i - 1]);
  if (gaps.empty()) return 1.0;  // all sampled times equal
  std::nth_element(gaps.begin(), gaps.begin() + gaps.size() / 2, gaps.end());
  // A sampled gap spans ~stride adjacent events; scale back down, then
  // take ~1.5 true gaps per bucket: wide enough that the runner-up cache
  // usually has a promotion to offer, narrow enough that a pop's window
  // scan stays at a couple of entries (empirically the sweet spot for the
  // stationary timer populations this queue serves).
  const double width = 1.5 * gaps[gaps.size() / 2] / stride;
  return (std::isfinite(width) && width > 0.0) ? width : 1.0;
}

}  // namespace

void CalendarQueue::reset(std::size_t nbuckets, double width,
                          SimTime cursor) {
  VDC_ASSERT(nbuckets >= 1 && width > 0.0);
  VDC_ASSERT((nbuckets & (nbuckets - 1)) == 0);  // mask_ needs a power of 2
  buckets_.assign(nbuckets, {});
  width_ = width;
  inv_width_ = 1.0 / width;
  mask_ = nbuckets - 1;
  span_ = width * static_cast<double>(nbuckets);
  size_ = 0;
  cursor_ = cursor;
  cached_ = false;
  second_ = false;
}

std::size_t CalendarQueue::bucket_of(SimTime t) const {
  return static_cast<std::size_t>(slot_of(t) & mask_);
}

void CalendarQueue::push(QueueEntry e) {
  if (size_ >= 2 * buckets_.size()) rebuild(2 * buckets_.size());
  auto& bucket = buckets_[bucket_of(e.t)];
  bucket.push_back(e);
  ++size_;
  if (e.t < cursor_) cursor_ = e.t;
  if (cached_ && entry_before(e, cached_entry_)) {
    // The new entry is the minimum; it sits at the back of its bucket.
    // The displaced minimum becomes the runner-up if it shares the new
    // minimum's window (otherwise the runner-up invariant breaks).
    if (slot_of(e.t) == slot_of(cached_entry_.t)) {
      second_entry_ = cached_entry_;
      second_pos_ = cached_pos_;
      second_ = true;
    } else {
      second_ = false;
    }
    cached_entry_ = e;
    cached_bucket_ = bucket_of(e.t);
    cached_pos_ = bucket.size() - 1;
  } else if (cached_ && second_ && entry_before(e, second_entry_)) {
    // min <= e < runner-up and windows are monotone in time, so e is in
    // the minimum's window: it is the new runner-up.
    second_entry_ = e;
    second_pos_ = bucket.size() - 1;
  }
}

const QueueEntry* CalendarQueue::peek() {
  if (size_ == 0) return nullptr;
  if (!cached_) find_min();
  return &cached_entry_;
}

void CalendarQueue::pop() {
  VDC_ASSERT(size_ > 0);
  if (!cached_) find_min();
  auto& bucket = buckets_[cached_bucket_];
  VDC_ASSERT(cached_pos_ < bucket.size());
  const std::size_t old_back = bucket.size() - 1;
  bucket[cached_pos_] = bucket.back();
  bucket.pop_back();
  --size_;
  cursor_ = cached_entry_.t;
  if (second_) {
    // The popped window is still non-empty, so its runner-up is the next
    // global minimum — promote it instead of rescanning. The swap-remove
    // may have moved it from the back into the popped slot.
    cached_entry_ = second_entry_;
    if (second_pos_ != old_back) cached_pos_ = second_pos_;
    second_ = false;
  } else {
    cached_ = false;
  }
  // Shrink with a 2x hysteresis margin below the grow trigger so a
  // population hovering at a power of two does not thrash rebuilds.
  if (buckets_.size() > kMinBuckets && size_ < buckets_.size() / 4)
    rebuild(buckets_.size() / 2);
}

void CalendarQueue::find_min() {
  VDC_ASSERT(size_ > 0);
  const std::size_t n = buckets_.size();
  const std::uint64_t cs = slot_of(cursor_);

  // Walk one wheel revolution starting at the cursor's slot: the first
  // window holding any event holds the global minimum, because every
  // stored entry's time is >= cursor_ and windows tile time in order.
  for (std::size_t k = 0; k < n; ++k) {
    const std::uint64_t target = cs + k;
    const auto& bucket = buckets_[static_cast<std::size_t>(target & mask_)];
    bool found = false;
    bool second = false;
    for (std::size_t i = 0; i < bucket.size(); ++i) {
      if (slot_of(bucket[i].t) != target) continue;
      if (!found || entry_before(bucket[i], cached_entry_)) {
        if (found) {  // displaced minimum becomes the runner-up
          second_entry_ = cached_entry_;
          second_pos_ = cached_pos_;
          second = true;
        }
        found = true;
        cached_entry_ = bucket[i];
        cached_pos_ = i;
      } else if (!second || entry_before(bucket[i], second_entry_)) {
        second_entry_ = bucket[i];
        second_pos_ = i;
        second = true;
      }
    }
    if (found) {
      cached_ = true;
      second_ = second;
      cached_bucket_ = static_cast<std::size_t>(target & mask_);
      return;
    }
  }

  // Nothing within a revolution of the cursor (sparse far-future events):
  // direct search, then jump the cursor so later peeks are cheap again.
  bool found = false;
  for (std::size_t b = 0; b < n; ++b) {
    for (std::size_t i = 0; i < buckets_[b].size(); ++i) {
      if (!found || entry_before(buckets_[b][i], cached_entry_)) {
        found = true;
        cached_entry_ = buckets_[b][i];
        cached_bucket_ = b;
        cached_pos_ = i;
      }
    }
  }
  VDC_ASSERT(found);
  cached_ = true;
  second_ = false;  // the runner-up invariant is per-window; none here
  cursor_ = cached_entry_.t;
}

void CalendarQueue::rebuild(std::size_t nbuckets) {
  std::vector<QueueEntry> all;
  all.reserve(size_);
  for (auto& bucket : buckets_)
    all.insert(all.end(), bucket.begin(), bucket.end());
  const SimTime cursor = cursor_;
  reset(std::max(nbuckets, kMinBuckets), estimate_width(all), cursor);
  for (const QueueEntry& e : all) {
    buckets_[bucket_of(e.t)].push_back(e);
    if (e.t < cursor_) cursor_ = e.t;
  }
  size_ = all.size();
}

void CalendarQueue::assign(std::vector<QueueEntry> entries) {
  SimTime cursor = entries.empty() ? 0.0 : entries.front().t;
  for (const QueueEntry& e : entries) cursor = std::min(cursor, e.t);
  std::size_t nbuckets = kMinBuckets;
  while (nbuckets * 2 < entries.size()) nbuckets *= 2;
  reset(nbuckets, estimate_width(entries), cursor);
  for (const QueueEntry& e : entries)
    buckets_[bucket_of(e.t)].push_back(e);
  size_ = entries.size();
}

std::unique_ptr<EventQueue> make_event_queue(QueueKind kind) {
  switch (kind) {
    case QueueKind::Calendar:
      return std::make_unique<CalendarQueue>();
    case QueueKind::BinaryHeap:
      break;
  }
  return std::make_unique<BinaryHeapQueue>();
}

QueueKind default_queue_kind() {
  // Validated knob: a misspelling ("calender") warns and keeps the heap
  // instead of silently running the wrong queue.
  if (const auto kind = env::enum_knob("VDC_EVENT_QUEUE", {"heap", "calendar"}))
    if (*kind == "calendar") return QueueKind::Calendar;
  return QueueKind::BinaryHeap;
}

}  // namespace vdc::simkit
