#include "simkit/resource.hpp"

#include <utility>

namespace vdc::simkit {

Resource::Resource(Simulator& sim, std::uint32_t capacity)
    : sim_(sim), capacity_(capacity) {
  VDC_REQUIRE(capacity > 0, "Resource capacity must be positive");
}

void Resource::account() {
  busy_accum_ += static_cast<double>(in_use_) * (sim_.now() - last_change_);
  last_change_ = sim_.now();
}

void Resource::grant(Callback cb) {
  account();
  ++in_use_;
  // Run as a fresh event so acquire() never re-enters caller code directly.
  sim_.after(0.0, std::move(cb));
}

void Resource::acquire(Callback granted) {
  VDC_ASSERT(granted != nullptr);
  if (in_use_ < capacity_) {
    grant(std::move(granted));
  } else {
    waiting_.push_back(std::move(granted));
  }
}

void Resource::release() {
  VDC_ASSERT_MSG(in_use_ > 0, "release() without matching acquire()");
  account();
  --in_use_;
  if (!waiting_.empty()) {
    Callback next = std::move(waiting_.front());
    waiting_.pop_front();
    grant(std::move(next));
  }
}

void Resource::serve(SimTime service_time, Callback done) {
  VDC_ASSERT(service_time >= 0.0);
  acquire([this, service_time, done = std::move(done)]() mutable {
    sim_.after(service_time, [this, done = std::move(done)]() mutable {
      release();
      if (done) done();
    });
  });
}

double Resource::busy_time() const {
  return busy_accum_ +
         static_cast<double>(in_use_) * (sim_.now() - last_change_);
}

}  // namespace vdc::simkit
