#pragma once
// FCFS resources over the event engine.
//
// Resource models a server with integer capacity (CPU slots, a disk head,
// the coordinator): requests beyond capacity queue in arrival order. The
// `serve` convenience holds one slot for a service time and then invokes a
// completion callback — the building block for disk writes and CPU-bound
// parity work.

#include <cstdint>
#include <deque>
#include <functional>

#include "common/units.hpp"
#include "simkit/simulator.hpp"

namespace vdc::simkit {

class Resource {
 public:
  using Callback = std::function<void()>;

  /// A resource with `capacity` concurrent slots attached to `sim`.
  Resource(Simulator& sim, std::uint32_t capacity);

  /// Request a slot; `granted` runs (as a scheduled event at the current
  /// time) once a slot is available. Caller must later call release().
  void acquire(Callback granted);

  /// Release one slot, admitting the next waiter if any.
  void release();

  /// Acquire a slot, hold it for `service_time`, release, then run `done`.
  void serve(SimTime service_time, Callback done);

  std::uint32_t capacity() const { return capacity_; }
  std::uint32_t in_use() const { return in_use_; }
  std::size_t queue_length() const { return waiting_.size(); }

  /// Total busy time integrated over all slots (for utilisation metrics).
  double busy_time() const;

 private:
  void grant(Callback cb);
  void account();

  Simulator& sim_;
  std::uint32_t capacity_;
  std::uint32_t in_use_ = 0;
  std::deque<Callback> waiting_;
  // Utilisation accounting.
  double busy_accum_ = 0.0;
  SimTime last_change_ = 0.0;
};

}  // namespace vdc::simkit
