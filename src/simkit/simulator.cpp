#include "simkit/simulator.hpp"

#include <cmath>
#include <utility>

namespace vdc::simkit {

EventId Simulator::at(SimTime t, Callback cb) {
  VDC_ASSERT_MSG(std::isfinite(t), "event time must be finite");
  VDC_ASSERT_MSG(t >= now_ - 1e-12, "cannot schedule events in the past");
  VDC_ASSERT(cb != nullptr);
  const EventId id = next_id_++;
  heap_.push(HeapItem{std::max(t, now_), id});
  callbacks_.emplace(id, std::move(cb));
  return id;
}

bool Simulator::cancel(EventId id) {
  // The heap entry stays behind as a tombstone and is skipped on pop.
  return callbacks_.erase(id) != 0;
}

bool Simulator::step() {
  while (!heap_.empty()) {
    const HeapItem item = heap_.top();
    heap_.pop();
    auto it = callbacks_.find(item.id);
    if (it == callbacks_.end()) continue;  // cancelled
    Callback cb = std::move(it->second);
    callbacks_.erase(it);
    VDC_ASSERT(item.t >= now_ - 1e-12);
    now_ = std::max(now_, item.t);
    ++executed_;
    cb();
    return true;
  }
  return false;
}

void Simulator::run(std::uint64_t max_events) {
  for (std::uint64_t i = 0; i < max_events; ++i) {
    if (!step()) return;
  }
}

void Simulator::run_until(SimTime t) {
  VDC_ASSERT(t >= now_);
  while (!heap_.empty()) {
    // Skip tombstones at the head so we don't stop early on cancelled events.
    if (!callbacks_.count(heap_.top().id)) {
      heap_.pop();
      continue;
    }
    if (heap_.top().t > t) break;
    step();
  }
  now_ = t;
}

}  // namespace vdc::simkit
