#include "simkit/simulator.hpp"

#include <cmath>
#include <utility>

namespace vdc::simkit {

namespace {
// Below this many queue entries, tombstones are too cheap to chase.
constexpr std::size_t kCompactMinEntries = 1024;
}  // namespace

EventId Simulator::at(SimTime t, Callback cb) {
  VDC_ASSERT_MSG(std::isfinite(t), "event time must be finite");
  VDC_ASSERT_MSG(t >= now_ - 1e-12, "cannot schedule events in the past");
  VDC_ASSERT(cb != nullptr);
  const EventId id = next_id_++;
  const SimTime when = std::max(t, now_);
  queue_->push(QueueEntry{when, id});
  callbacks_.emplace(id, Pending{when, std::move(cb)});
  if (queue_->size() > queue_peak_) queue_peak_ = queue_->size();
  return id;
}

bool Simulator::cancel(EventId id) {
  // The queue entry stays behind as a tombstone and is skipped on pop —
  // unless tombstones come to dominate, in which case the queue is
  // compacted down to the live events.
  if (callbacks_.erase(id) == 0) return false;
  ++cancelled_;
  maybe_compact();
  return true;
}

void Simulator::maybe_compact() {
  if (queue_->size() < kCompactMinEntries) return;
  if (callbacks_.size() * 2 >= queue_->size()) return;
  std::vector<QueueEntry> live;
  live.reserve(callbacks_.size());
  for (const auto& [id, pending] : callbacks_)
    live.push_back(QueueEntry{pending.t, id});
  queue_->assign(std::move(live));
  ++compactions_;
}

bool Simulator::step() {
  while (const QueueEntry* top = queue_->peek()) {
    const QueueEntry item = *top;
    queue_->pop();
    auto it = callbacks_.find(item.id);
    if (it == callbacks_.end()) continue;  // cancelled
    Callback cb = std::move(it->second.cb);
    callbacks_.erase(it);
    VDC_ASSERT(item.t >= now_ - 1e-12);
    now_ = std::max(now_, item.t);
    ++executed_;
    cb();
    return true;
  }
  return false;
}

void Simulator::run(std::uint64_t max_events) {
  for (std::uint64_t i = 0; i < max_events; ++i) {
    if (!step()) break;
  }
  publish_metrics();
}

void Simulator::run_until(SimTime t) {
  VDC_ASSERT(t >= now_);
  while (const QueueEntry* top = queue_->peek()) {
    // Skip tombstones at the head so we don't stop early on cancelled events.
    if (!callbacks_.count(top->id)) {
      queue_->pop();
      continue;
    }
    if (top->t > t) break;
    step();
  }
  now_ = t;
  publish_metrics();
}

void Simulator::publish_metrics() {
  auto& metrics = telemetry_.metrics();
  metrics.set("sim.events.cancelled", static_cast<double>(cancelled_));
  metrics.set("sim.queue.peak", static_cast<double>(queue_peak_));
  metrics.set("sim.queue.compactions", static_cast<double>(compactions_));
}

}  // namespace vdc::simkit
