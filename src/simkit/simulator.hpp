#pragma once
// Deterministic discrete-event simulation core.
//
// The simulator owns a virtual clock and an event queue. Events scheduled
// for the same instant fire in schedule order (FIFO), which — together with
// the seeded Rng — makes every run bit-reproducible. All higher-level
// substrates (network flows, disks, failures, the DVDC protocol) are built
// as callbacks over this engine.
//
// The pending-event queue is pluggable (SimulatorConfig::queue or env
// VDC_EVENT_QUEUE): the binary heap is the reference, the calendar queue
// is the O(1)-amortized implementation for 10k-node runs. Both pop the
// exact same (time, id) order. Cancelled events leave tombstones in the
// queue; when tombstones outnumber live events the queue is compacted in
// place, so cancel-heavy timer workloads (heartbeats, retransmits) no
// longer grow it unboundedly.

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/assert.hpp"
#include "common/units.hpp"
#include "simkit/event_queue.hpp"
#include "telemetry/telemetry.hpp"

namespace vdc::simkit {

struct SimulatorConfig {
  /// Pending-event queue implementation. Defaults to the VDC_EVENT_QUEUE
  /// env var ("heap" | "calendar"), binary heap when unset.
  QueueKind queue = default_queue_kind();
};

class Simulator {
 public:
  using Callback = std::function<void()>;

  explicit Simulator(SimulatorConfig config = {})
      : queue_(make_event_queue(config.queue)), telemetry_(&now_) {}
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time in seconds.
  SimTime now() const { return now_; }

  /// The simulation's telemetry context: every substrate built over this
  /// engine (network, storage, protocol, recovery) records its metrics and
  /// spans here, stamped with simulated time.
  telemetry::Telemetry& telemetry() { return telemetry_; }
  const telemetry::Telemetry& telemetry() const { return telemetry_; }

  /// Schedule `cb` at absolute time `t` (>= now). Returns a cancellable id.
  EventId at(SimTime t, Callback cb);

  /// Schedule `cb` after `dt` seconds (dt >= 0).
  EventId after(SimTime dt, Callback cb) { return at(now_ + dt, std::move(cb)); }

  /// Cancel a pending event. Returns true if it was still pending.
  bool cancel(EventId id);

  /// True if `id` refers to a still-pending event.
  bool pending(EventId id) const { return callbacks_.count(id) != 0; }

  /// Number of pending events.
  std::size_t pending_count() const { return callbacks_.size(); }

  /// Execute the next event, if any. Returns false when the queue is empty.
  bool step();

  /// Run until the event queue drains or `max_events` have fired.
  void run(std::uint64_t max_events = ~0ull);

  /// Run all events with time <= t, then advance the clock to exactly t.
  void run_until(SimTime t);

  /// Total events executed so far (for determinism checks and budgets).
  std::uint64_t executed() const { return executed_; }

  /// Events cancelled so far (mirrored to `sim.events.cancelled`).
  std::uint64_t cancelled() const { return cancelled_; }

  /// High-water mark of queue entries, tombstones included (mirrored to
  /// `sim.queue.peak`).
  std::size_t queue_peak() const { return queue_peak_; }

  /// Entries currently in the queue (live + tombstones); tests use it to
  /// observe tombstone compaction.
  std::size_t queue_entries() const { return queue_->size(); }

  /// Tombstone compactions performed (`sim.queue.compactions`).
  std::uint64_t compactions() const { return compactions_; }

  const char* queue_name() const { return queue_->name(); }

 private:
  struct Pending {
    SimTime t = 0.0;  // kept so compaction can rebuild live entries
    Callback cb;
  };

  /// Rebuild the queue from live events once tombstones dominate.
  void maybe_compact();
  /// Mirror the queue counters into the metrics registry (called at the
  /// end of run()/run_until(), not per event — scheduling stays cheap).
  void publish_metrics();

  SimTime now_ = 0.0;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::uint64_t cancelled_ = 0;
  std::uint64_t compactions_ = 0;
  std::size_t queue_peak_ = 0;
  std::unique_ptr<EventQueue> queue_;
  std::unordered_map<EventId, Pending> callbacks_;
  telemetry::Telemetry telemetry_;
};

}  // namespace vdc::simkit
