#pragma once
// Deterministic discrete-event simulation core.
//
// The simulator owns a virtual clock and an event queue. Events scheduled
// for the same instant fire in schedule order (FIFO), which — together with
// the seeded Rng — makes every run bit-reproducible. All higher-level
// substrates (network flows, disks, failures, the DVDC protocol) are built
// as callbacks over this engine.

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/assert.hpp"
#include "common/units.hpp"
#include "telemetry/telemetry.hpp"

namespace vdc::simkit {

/// Handle to a scheduled event; may be used to cancel it.
/// Value 0 is reserved as "invalid".
using EventId = std::uint64_t;
constexpr EventId kInvalidEvent = 0;

class Simulator {
 public:
  using Callback = std::function<void()>;

  Simulator() : telemetry_(&now_) {}
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time in seconds.
  SimTime now() const { return now_; }

  /// The simulation's telemetry context: every substrate built over this
  /// engine (network, storage, protocol, recovery) records its metrics and
  /// spans here, stamped with simulated time.
  telemetry::Telemetry& telemetry() { return telemetry_; }
  const telemetry::Telemetry& telemetry() const { return telemetry_; }

  /// Schedule `cb` at absolute time `t` (>= now). Returns a cancellable id.
  EventId at(SimTime t, Callback cb);

  /// Schedule `cb` after `dt` seconds (dt >= 0).
  EventId after(SimTime dt, Callback cb) { return at(now_ + dt, std::move(cb)); }

  /// Cancel a pending event. Returns true if it was still pending.
  bool cancel(EventId id);

  /// True if `id` refers to a still-pending event.
  bool pending(EventId id) const { return callbacks_.count(id) != 0; }

  /// Number of pending events.
  std::size_t pending_count() const { return callbacks_.size(); }

  /// Execute the next event, if any. Returns false when the queue is empty.
  bool step();

  /// Run until the event queue drains or `max_events` have fired.
  void run(std::uint64_t max_events = ~0ull);

  /// Run all events with time <= t, then advance the clock to exactly t.
  void run_until(SimTime t);

  /// Total events executed so far (for determinism checks and budgets).
  std::uint64_t executed() const { return executed_; }

 private:
  struct HeapItem {
    SimTime t;
    EventId id;
    // Min-heap on (time, id): id order gives same-time FIFO.
    bool operator>(const HeapItem& o) const {
      if (t != o.t) return t > o.t;
      return id > o.id;
    }
  };

  SimTime now_ = 0.0;
  EventId next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<>> heap_;
  std::unordered_map<EventId, Callback> callbacks_;
  telemetry::Telemetry telemetry_;
};

}  // namespace vdc::simkit
