#pragma once
// Pending-event queues for the simulator.
//
// The simulator orders events by (time, id): id order breaks same-time
// ties, which gives the FIFO contract every substrate depends on. Two
// interchangeable implementations live behind the EventQueue interface:
//
//  * BinaryHeapQueue — std::priority_queue over (time, id). O(log n) per
//    operation; the reference implementation.
//  * CalendarQueue — Brown's calendar queue (a bucketed timing wheel with
//    an overflow "year"). O(1) amortized push/pop when the event
//    population is roughly stationary, which is exactly the regime of a
//    big cluster simulation (heartbeats, retransmit timers, flow
//    completions at 10k nodes). Buckets are scanned for the (time, id)
//    minimum, so the pop order is bit-identical to the heap's — asserted
//    by tests/event_queue_equivalence_test.cpp.
//
// Select with SimulatorConfig::queue or the VDC_EVENT_QUEUE env var
// ("heap" | "calendar").

#include <cstdint>
#include <memory>
#include <queue>
#include <vector>

#include "common/units.hpp"

namespace vdc::simkit {

using EventId = std::uint64_t;
constexpr EventId kInvalidEvent = 0;

struct QueueEntry {
  SimTime t = 0.0;
  EventId id = kInvalidEvent;
};

/// Strict (time, id) order: the simulator's same-time FIFO contract.
inline bool entry_before(const QueueEntry& a, const QueueEntry& b) {
  if (a.t != b.t) return a.t < b.t;
  return a.id < b.id;
}

class EventQueue {
 public:
  virtual ~EventQueue() = default;

  virtual void push(QueueEntry e) = 0;

  /// The entry with the smallest (time, id); nullptr when empty. The
  /// pointer is valid until the next mutation.
  virtual const QueueEntry* peek() = 0;

  /// Remove the current minimum (the entry peek() returns). Must not be
  /// called on an empty queue.
  virtual void pop() = 0;

  /// Entries currently stored, including any tombstones the owner left
  /// behind for cancelled events.
  virtual std::size_t size() const = 0;
  bool empty() const { return size() == 0; }

  /// Replace the contents wholesale (tombstone compaction). `entries`
  /// arrives in arbitrary order.
  virtual void assign(std::vector<QueueEntry> entries) = 0;

  virtual const char* name() const = 0;
};

class BinaryHeapQueue final : public EventQueue {
 public:
  void push(QueueEntry e) override { heap_.push(e); }
  const QueueEntry* peek() override {
    return heap_.empty() ? nullptr : &heap_.top();
  }
  void pop() override { heap_.pop(); }
  std::size_t size() const override { return heap_.size(); }
  void assign(std::vector<QueueEntry> entries) override {
    heap_ = Heap(Greater{}, std::move(entries));
  }
  const char* name() const override { return "heap"; }

 private:
  struct Greater {
    bool operator()(const QueueEntry& a, const QueueEntry& b) const {
      return entry_before(b, a);
    }
  };
  using Heap = std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                                   Greater>;
  Heap heap_;
};

class CalendarQueue final : public EventQueue {
 public:
  CalendarQueue() { reset(kMinBuckets, 1.0, 0.0); }

  void push(QueueEntry e) override;
  const QueueEntry* peek() override;
  void pop() override;
  std::size_t size() const override { return size_; }
  void assign(std::vector<QueueEntry> entries) override;
  const char* name() const override { return "calendar"; }

  std::size_t bucket_count() const { return buckets_.size(); }

 private:
  static constexpr std::size_t kMinBuckets = 16;

  void reset(std::size_t nbuckets, double width, SimTime cursor);
  /// Rebuild with a bucket count / width fitted to the current contents.
  void rebuild(std::size_t nbuckets);
  /// Absolute window index of `t`. One multiply by the precomputed 1/width
  /// — no division on the pop path. Monotone in t (IEEE multiply by a
  /// positive constant), and push and scan both classify through it, so
  /// window membership stays consistent however an entry is probed.
  std::uint64_t slot_of(SimTime t) const {
    const double s = t * inv_width_;
    if (s <= 0.0) return 0;
    if (!(s < 9.0e18)) return ~0ull;  // far-future clamp (and inf guard)
    return static_cast<std::uint64_t>(s);
  }
  std::size_t bucket_of(SimTime t) const;
  /// Locate the (time, id) minimum and cache its position.
  void find_min();

  std::vector<std::vector<QueueEntry>> buckets_;
  double width_ = 1.0;       // seconds per bucket
  double inv_width_ = 1.0;   // 1/width_: slot classification is a multiply
  std::size_t mask_ = 0;     // bucket_count - 1 (count is a power of two)
  double span_ = 0.0;        // width_ * bucket_count: one wheel revolution
  std::size_t size_ = 0;
  /// Lower bound on every stored entry's time (the last popped minimum;
  /// lowered if an earlier event is pushed). Scans start here.
  SimTime cursor_ = 0.0;
  // Cached minimum (invalidated by push/pop/rebuild).
  bool cached_ = false;
  std::size_t cached_bucket_ = 0;
  std::size_t cached_pos_ = 0;
  QueueEntry cached_entry_{};
  // Runner-up within the minimum's window, recorded by the same scan.
  // Windows tile time in order, so while the popped window is non-empty
  // its runner-up IS the global next minimum — pop promotes it and skips
  // the rescan. A push that undercuts it just invalidates it.
  bool second_ = false;
  std::size_t second_pos_ = 0;
  QueueEntry second_entry_{};
};

enum class QueueKind { BinaryHeap, Calendar };

std::unique_ptr<EventQueue> make_event_queue(QueueKind kind);

/// Queue kind from the VDC_EVENT_QUEUE env var ("heap" | "calendar");
/// BinaryHeap when unset or unrecognized.
QueueKind default_queue_kind();

}  // namespace vdc::simkit
