#include "workload/traffic.hpp"

#include <algorithm>
#include <string_view>
#include <utility>

#include "common/assert.hpp"
#include "common/log.hpp"

namespace vdc::workload {

TrafficPlane::TrafficPlane(simkit::Simulator& sim,
                           cluster::ClusterManager& cluster,
                           TrafficConfig config, Rng rng)
    : sim_(sim),
      cluster_(cluster),
      config_(config),
      rng_(rng),
      latency_hist_(0.0, config.latency_hist_hi, 64) {
  VDC_REQUIRE(config_.streams_per_guest > 0, "traffic needs >= 1 stream");
  VDC_REQUIRE(config_.clients_per_guest > 0, "traffic needs >= 1 client");
  VDC_REQUIRE(config_.client_timeout > 0.0, "client_timeout must be > 0");
}

telemetry::MetricsRegistry& TrafficPlane::metrics() {
  return sim_.telemetry().metrics();
}

void TrafficPlane::start() {
  VDC_REQUIRE(!started_, "TrafficPlane::start called twice");
  started_ = true;
  client_host_ = fabric().add_host(config_.client_nic, "clients");

  const auto vms = cluster_.all_vms();
  for (vm::VmId guest : vms) {
    const std::uint64_t per =
        std::max<std::uint64_t>(1, config_.clients_per_guest /
                                       config_.streams_per_guest);
    if (config_.mode == TrafficConfig::Mode::kClosed) {
      for (std::uint32_t s = 0; s < config_.streams_per_guest; ++s) {
        streams_.push_back(Stream{guest, per});
        const auto idx = static_cast<std::uint32_t>(streams_.size() - 1);
        // Stagger stream starts with one think gap each so a cold start
        // is not a synchronized burst.
        sim_.after(think_gap(streams_.back()), [this, guest, idx] {
          new_request(guest, idx);
        });
      }
    } else {
      schedule_arrival(guest);
    }
  }
}

SimTime TrafficPlane::think_gap(const Stream& stream) {
  if (config_.think_time <= 0.0) return 0.0;
  const double rate =
      static_cast<double>(stream.clients) / config_.think_time;
  return rng_.exponential(rate);
}

void TrafficPlane::schedule_arrival(vm::VmId guest) {
  const double rate =
      static_cast<double>(config_.clients_per_guest) * config_.request_rate;
  if (rate <= 0.0) return;
  sim_.after(rng_.exponential(rate), [this, guest] {
    if (requests_.size() < config_.open_outstanding_limit)
      new_request(guest, 0);
    else
      metrics().add("serve.shed", 1.0, {{"where", "arrival"}});
    schedule_arrival(guest);
  });
}

vm::GuestService* TrafficPlane::service_for(vm::VmId guest) {
  auto it = services_.find(guest);
  if (it != services_.end()) return it->second.get();
  auto service =
      std::make_unique<vm::GuestService>(sim_, config_.service);
  return services_.emplace(guest, std::move(service)).first->second.get();
}

void TrafficPlane::new_request(vm::VmId guest, std::uint32_t stream) {
  const std::uint64_t id = ++next_request_id_;
  RequestState rs;
  rs.guest = guest;
  rs.stream = stream;
  rs.first_send = sim_.now();
  requests_.emplace(id, rs);
  send_request(id);
}

void TrafficPlane::send_request(std::uint64_t id) {
  auto it = requests_.find(id);
  if (it == requests_.end()) return;
  RequestState& rs = it->second;
  ++rs.attempts;
  ++sent_;
  metrics().add("serve.requests", 1.0);
  if (rs.attempts > 1) {
    ++retries_;
    metrics().add("serve.retries", 1.0);
  }
  rs.timeout_ev = sim_.after(config_.client_timeout,
                             [this, id] { on_timeout(id); });

  const auto node = cluster_.locate(rs.guest);
  if (!node.has_value()) {
    // The guest is lost (mid-failover): the send blackholes and the
    // timeout drives the retry; recovery re-places the VM under the same
    // name and a later attempt reaches it (the ARP-update effect).
    metrics().add("serve.unreachable", 1.0);
    return;
  }
  fabric().transfer_judged(client_host_, cluster_.node(*node).host(),
                           config_.request_bytes,
                           [this, id](const net::Judgement& verdict) {
                             if (verdict.outcome != net::Delivery::kDelivered)
                               return;  // lost; the timeout retries
                             on_request_arrived(id);
                           });
}

void TrafficPlane::on_request_arrived(std::uint64_t id) {
  auto it = requests_.find(id);
  if (it == requests_.end()) return;  // already satisfied and retired
  if (recovering_) {
    // Guests are rolled back / down: serving anything now could expose
    // state the recovery is about to discard.
    metrics().add("serve.dropped_in_recovery", 1.0);
    return;
  }
  const vm::VmId guest = it->second.guest;
  if (!cluster_.locate(guest).has_value()) return;
  if (!service_for(guest)->submit(id, [this](std::uint64_t token) {
        on_served(token);
      }))
    metrics().add("serve.shed", 1.0, {{"where", "service"}});
}

void TrafficPlane::on_served(std::uint64_t id) {
  auto it = requests_.find(id);
  if (it == requests_.end()) return;  // satisfied by an earlier attempt
  HeldEgress egress;
  egress.serial = ++next_serial_;
  egress.request = id;
  egress.guest = it->second.guest;
  egress.cut = buffer_.next_cut();
  egress.bytes = config_.response_bytes;
  egress.generated_at = sim_.now();
  buffer_.hold(egress);
  metrics().add("serve.responses_generated", 1.0);
  update_held_gauge();
}

void TrafficPlane::on_timeout(std::uint64_t id) {
  auto it = requests_.find(id);
  if (it == requests_.end()) return;
  it->second.timeout_ev = simkit::kInvalidEvent;
  ++timeouts_;
  metrics().add("serve.timeouts", 1.0);
  send_request(id);
}

void TrafficPlane::on_epoch_commit(Cut cut) {
  release(buffer_.commit(cut));
  update_held_gauge();
  // New epoch window for the back-pressure peak: start it at whatever is
  // still held (egress tagged past the committed cut).
  held_window_peak_ = buffer_.held_bytes();
}

void TrafficPlane::release(std::vector<HeldEgress> released) {
  if (released.empty()) return;
  // One batched flow per guest per commit: with millions of aggregated
  // clients the fan-in cost is per-guest, not per-response.
  std::map<vm::VmId, std::vector<HeldEgress>> by_guest;
  for (auto& egress : released)
    by_guest[egress.guest].push_back(egress);
  for (auto& [guest, batch] : by_guest) {
    const auto node = cluster_.locate(guest);
    if (!node.has_value()) {
      // Released (committed) egress for a guest that vanished between
      // commit and release: the responses are lost on the floor; clients
      // retry and get re-served after recovery.
      metrics().add("serve.release_drops", 1.0,
                    {{"reason", "guest_lost"}});
      continue;
    }
    Bytes total = 0;
    for (const auto& egress : batch) total += egress.bytes;
    fabric().transfer_judged(
        cluster_.node(*node).host(), client_host_, total,
        [this, batch = std::move(batch)](const net::Judgement& verdict) {
          if (verdict.outcome != net::Delivery::kDelivered) {
            metrics().add("serve.response_wire_drops",
                          static_cast<double>(batch.size()));
            return;  // clients time out and retry
          }
          for (const auto& egress : batch) deliver(egress);
        });
  }
}

void TrafficPlane::deliver(const HeldEgress& egress) {
  // The output-commit invariant, enforced at the hatch: nothing reaches a
  // client unless its cut is committed.
  VDC_ASSERT(egress.cut <= buffer_.committed());
  auto it = requests_.find(egress.request);
  if (it == requests_.end()) {
    // A retry was served twice; the first copy already answered.
    ++duplicates_;
    metrics().add("serve.duplicates", 1.0);
    return;
  }
  const RequestState rs = it->second;
  if (rs.timeout_ev != simkit::kInvalidEvent) sim_.cancel(rs.timeout_ev);
  requests_.erase(it);

  const SimTime latency = sim_.now() - rs.first_send;
  ++delivered_;
  metrics().add("serve.delivered", 1.0);
  if (sim_.now() >= config_.warmup) {
    latency_.add(latency);
    latency_hist_.add(latency);
    metrics().observe("serve.latency", latency);
  }
  if (downtime_open_ && !recovering_) {
    // First response a client actually sees after the failover: the
    // visible outage ran from the failure to right now.
    downtime_open_ = false;
    const double outage = sim_.now() - failover_start_;
    downtime_total_ += outage;
    metrics().add("serve.downtime_visible_s", outage);
  }
  if (config_.record_deliveries) {
    DeliveryRecord record;
    record.request = egress.request;
    record.guest = egress.guest;
    record.cut = egress.cut;
    record.committed_at_delivery = buffer_.committed();
    record.first_send = rs.first_send;
    record.delivered_at = sim_.now();
    record.attempts = rs.attempts;
    deliveries_.push_back(record);
  }

  if (config_.mode == TrafficConfig::Mode::kClosed) {
    const Stream& stream = streams_.at(rs.stream);
    sim_.after(think_gap(stream), [this, guest = stream.guest,
                                   idx = rs.stream] {
      new_request(guest, idx);
    });
  }
}

void TrafficPlane::on_epoch_abort() {
  drop_held(buffer_.abort(), "abort");
}

void TrafficPlane::on_failover_begin() {
  if (recovering_) return;
  recovering_ = true;
  if (!downtime_open_) {
    downtime_open_ = true;
    failover_start_ = sim_.now();
  }
  // Whole-cluster rollback to the committed cut: uncommitted egress AND
  // every in-service request reflect state that is about to be discarded.
  drop_held(buffer_.drop_all(), "failover");
  for (auto& [guest, service] : services_) service->fail();
}

void TrafficPlane::on_node_failure(const std::vector<vm::VmId>& lost) {
  for (vm::VmId guest : lost) services_.erase(guest);
}

void TrafficPlane::on_failover_end() { recovering_ = false; }

void TrafficPlane::on_restart() {
  drop_held(buffer_.reset(), "restart");
}

void TrafficPlane::drop_held(std::vector<HeldEgress> dropped,
                             const char* cause) {
  if (!dropped.empty()) {
    metrics().add("serve.dropped", static_cast<double>(dropped.size()),
                  {{"cause", cause}});
    if (std::string_view(cause) == "abort")
      dropped_abort_ += dropped.size();
    else
      dropped_failover_ += dropped.size();
  }
  update_held_gauge();
}

void TrafficPlane::update_held_gauge() {
  metrics().set("serve.output_held_bytes",
                static_cast<double>(buffer_.held_bytes()));
  held_peak_ = std::max(held_peak_, buffer_.held_bytes());
  held_window_peak_ = std::max(held_window_peak_, buffer_.held_bytes());
}

void TrafficPlane::stop() {
  auto& m = metrics();
  const double elapsed = sim_.now();
  m.set("serve.throughput",
        elapsed > 0.0 ? static_cast<double>(delivered_) / elapsed : 0.0);
  // The bounded latency histogram's out-of-range counters ride the sink
  // export as counters (the clamp bugfix made them observable at all).
  m.add("serve.latency_hist.underflow",
        static_cast<double>(latency_hist_.underflow()));
  m.add("serve.latency_hist.overflow",
        static_cast<double>(latency_hist_.overflow()));
  update_held_gauge();
}

TrafficPlane::Summary TrafficPlane::summary() const {
  Summary s;
  s.requests = sent_;
  s.delivered = delivered_;
  s.retries = retries_;
  s.timeouts = timeouts_;
  s.duplicates = duplicates_;
  s.dropped_abort = dropped_abort_;
  s.dropped_failover = dropped_failover_;
  s.latency_p50 = latency_.percentile(50.0);
  s.latency_p99 = latency_.percentile(99.0);
  s.latency_p999 = latency_.percentile(99.9);
  s.latency_mean = latency_.mean();
  s.throughput =
      sim_.now() > 0.0 ? static_cast<double>(delivered_) / sim_.now() : 0.0;
  s.downtime_visible = downtime_total_;
  s.held_bytes_peak = held_peak_;
  s.hist_underflow = latency_hist_.underflow();
  s.hist_overflow = latency_hist_.overflow();
  return s;
}

}  // namespace vdc::workload
