#include "workload/output_commit.hpp"

#include "common/assert.hpp"

namespace vdc::workload {

void OutputCommitBuffer::hold(HeldEgress egress) {
  VDC_ASSERT(egress.cut == next_cut_);
  held_bytes_ += egress.bytes;
  held_.push_back(egress);
}

std::vector<HeldEgress> OutputCommitBuffer::commit(Cut cut) {
  VDC_ASSERT(cut >= committed_);
  committed_ = cut;
  if (next_cut_ <= cut) next_cut_ = cut + 1;
  std::vector<HeldEgress> released;
  while (!held_.empty() && held_.front().cut <= cut) {
    held_bytes_ -= held_.front().bytes;
    released.push_back(held_.front());
    held_.pop_front();
  }
  return released;
}

std::vector<HeldEgress> OutputCommitBuffer::abort() {
  std::vector<HeldEgress> dropped(held_.begin(), held_.end());
  held_.clear();
  held_bytes_ = 0;
  return dropped;
}

std::vector<HeldEgress> OutputCommitBuffer::reset() {
  auto dropped = abort();
  next_cut_ = 1;
  committed_ = 0;
  return dropped;
}

}  // namespace vdc::workload
