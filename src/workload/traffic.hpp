#pragma once
// The serving plane: deterministic request/response traffic driving VM
// guests, with Remus-style output commit at epoch granularity.
//
// Millions of simulated clients are aggregated into a bounded number of
// per-guest *streams* so the event count scales with configured streams,
// not with clients:
//
//  * closed loop — each stream cycles send -> wait for the response ->
//    think gap, where the gap is exponential with the *aggregate* rate of
//    the clients it stands in for (n clients with mean think time Z behave
//    like one stream thinking Z/n). At most streams_per_guest requests are
//    outstanding per guest.
//  * open loop — per-guest Poisson arrivals at clients_per_guest *
//    request_rate, independent of response progress (the tail-latency
//    regime: arrivals keep coming while egress is held).
//
// Requests cross the fabric as judged transfers (they ride the same fault
// plane as checkpoint traffic: drops, partitions and fenced hosts all
// apply), queue at the guest's GuestService, and the response enters the
// OutputCommitBuffer tagged with the next checkpoint cut. Commit releases
// a guest's responses as ONE batched flow back to the client edge (fan-in
// economy: one flow per guest per commit, not per response). Clients that
// wait past client_timeout resend; duplicate responses are deduplicated
// by request id at delivery.
//
// Every random draw comes from the plane's own Rng stream, constructed
// independently of the job's fork chain — enabling or disabling traffic
// must leave the fault schedule and the epoch wire bytes bit-identical
// (asserted by ServingDeterminism tests). For the same reason serving
// never dirties guest memory (see vm::GuestService).
//
// Metrics (docs/OBSERVABILITY.md): serve.latency histogram (p50/p99/p999
// in sink exports), serve.requests / serve.delivered / serve.retries /
// serve.timeouts counters, serve.dropped.{abort,failover} counters,
// serve.output_held_bytes gauge, serve.downtime_visible_s counter and
// serve.throughput gauge.

#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "cluster/manager.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "vm/service.hpp"
#include "workload/output_commit.hpp"

namespace vdc::workload {

struct TrafficConfig {
  enum class Mode { kClosed, kOpen };
  Mode mode = Mode::kClosed;

  /// Simulated clients aggregated per guest (may be millions).
  std::uint64_t clients_per_guest = 1000;
  /// Aggregation streams per guest (bounds outstanding work and events).
  std::uint32_t streams_per_guest = 8;
  /// Closed loop: mean per-client think time between response and next
  /// request (a stream standing in for n clients thinks think_time/n).
  SimTime think_time = 1.0;
  /// Open loop: per-client request rate (aggregate = clients * rate).
  double request_rate = 1.0;
  /// Open loop: outstanding requests per guest beyond this are shed at
  /// arrival (guards event/memory blowup while egress is held).
  std::size_t open_outstanding_limit = 4096;

  Bytes request_bytes = 512;
  Bytes response_bytes = kib(4);
  vm::GuestService::Config service{};

  /// Client resend timer: a request unanswered this long is retried.
  SimTime client_timeout = 1.0;
  /// NIC rate of the client edge host (the fan-in aggregation point).
  Rate client_nic = gbit_per_s(40);

  /// Salt mixed with the job seed for the plane's private Rng stream.
  std::uint64_t seed = 0xC11E27;
  /// Ignore latencies observed before this sim time (ramp-up).
  SimTime warmup = 0.0;
  /// Upper edge of the bounded latency histogram; samples at or above it
  /// land in the overflow counter, never in the top bin.
  double latency_hist_hi = 30.0;
  /// Record per-delivery records for test assertions (memory-unbounded).
  bool record_deliveries = false;
};

/// One delivered response, for invariant checks in tests.
struct DeliveryRecord {
  std::uint64_t request = 0;
  vm::VmId guest = 0;
  Cut cut = 0;                    ///< cut that released it
  Cut committed_at_delivery = 0;  ///< commit watermark when delivered
  SimTime first_send = 0.0;
  SimTime delivered_at = 0.0;
  std::uint32_t attempts = 0;
};

class TrafficPlane {
 public:
  struct Summary {
    std::uint64_t requests = 0;   ///< sends, retries included
    std::uint64_t delivered = 0;  ///< distinct requests answered
    std::uint64_t retries = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t duplicates = 0;
    std::uint64_t dropped_abort = 0;     ///< egress dropped by epoch abort
    std::uint64_t dropped_failover = 0;  ///< egress dropped by rollback
    double latency_p50 = 0.0;
    double latency_p99 = 0.0;
    double latency_p999 = 0.0;
    double latency_mean = 0.0;
    double throughput = 0.0;  ///< delivered / elapsed sim time
    double downtime_visible = 0.0;  ///< total client-visible outage (s)
    Bytes held_bytes_peak = 0;
    std::uint64_t hist_underflow = 0;
    std::uint64_t hist_overflow = 0;
  };

  TrafficPlane(simkit::Simulator& sim, cluster::ClusterManager& cluster,
               TrafficConfig config, Rng rng);

  /// Create the client edge host and launch every stream. Call once,
  /// after all cluster nodes (and their hosts) exist.
  void start();

  /// Finalize derived metrics (throughput gauge, histogram overflow
  /// counters). Safe to call once after the run's event loop ends.
  void stop();

  // --- runtime hooks (wired by core::JobRunner) --------------------------
  /// Cut `cut` committed: release held egress tagged <= cut.
  void on_epoch_commit(Cut cut);
  /// The in-flight epoch aborted on the wire: drop held egress.
  void on_epoch_abort();
  /// First failure of a recovery episode: the cluster will roll back to
  /// the committed cut, so all uncommitted egress is dropped and the
  /// client-visible downtime window opens. Idempotent within an episode.
  void on_failover_begin();
  /// These guests died (node kill / cascade): their queued and in-service
  /// requests vanish.
  void on_node_failure(const std::vector<vm::VmId>& lost);
  /// Recovery settled (or the restart window closed): serving resumes.
  /// Downtime stays open until the next actual delivery.
  void on_failover_end();
  /// Job restart: epoch numbering starts over from 1.
  void on_restart();

  // --- introspection -----------------------------------------------------
  Summary summary() const;
  const OutputCommitBuffer& buffer() const { return buffer_; }
  const std::vector<DeliveryRecord>& deliveries() const {
    return deliveries_;
  }
  const Samples& latencies() const { return latency_; }
  bool recovering() const { return recovering_; }

  /// Peak held egress since the last epoch commit (the current epoch
  /// window). The runtime samples this just before on_epoch_commit —
  /// which resets the window — and feeds it into the adaptive interval
  /// policy as back-pressure (EpochStats::held_egress_peak).
  Bytes held_peak_window() const { return held_window_peak_; }

 private:
  struct Stream {
    vm::VmId guest = 0;
    std::uint64_t clients = 0;  ///< clients this stream aggregates
  };
  struct RequestState {
    vm::VmId guest = 0;
    std::uint32_t stream = 0;  ///< index into streams_ (closed loop)
    SimTime first_send = 0.0;
    std::uint32_t attempts = 0;
    simkit::EventId timeout_ev = simkit::kInvalidEvent;
  };

  net::Fabric& fabric() { return cluster_.fabric(); }
  telemetry::MetricsRegistry& metrics();
  vm::GuestService* service_for(vm::VmId guest);
  SimTime think_gap(const Stream& stream);

  void new_request(vm::VmId guest, std::uint32_t stream);
  void send_request(std::uint64_t id);
  void on_request_arrived(std::uint64_t id);
  void on_served(std::uint64_t id);
  void on_timeout(std::uint64_t id);
  void schedule_arrival(vm::VmId guest);
  void deliver(const HeldEgress& egress);
  void release(std::vector<HeldEgress> released);
  void drop_held(std::vector<HeldEgress> dropped, const char* cause);
  void update_held_gauge();

  simkit::Simulator& sim_;
  cluster::ClusterManager& cluster_;
  TrafficConfig config_;
  Rng rng_;

  net::HostId client_host_ = 0;
  bool started_ = false;
  OutputCommitBuffer buffer_;
  std::map<vm::VmId, std::unique_ptr<vm::GuestService>> services_;
  std::vector<Stream> streams_;
  std::unordered_map<std::uint64_t, RequestState> requests_;
  std::uint64_t next_request_id_ = 0;
  std::uint64_t next_serial_ = 0;

  bool recovering_ = false;
  bool downtime_open_ = false;
  SimTime failover_start_ = 0.0;
  double downtime_total_ = 0.0;

  Samples latency_;
  Histogram latency_hist_;
  Bytes held_peak_ = 0;
  Bytes held_window_peak_ = 0;  // peak since last commit (see accessor)
  std::uint64_t delivered_ = 0;
  std::uint64_t sent_ = 0;
  std::uint64_t retries_ = 0;
  std::uint64_t timeouts_ = 0;
  std::uint64_t duplicates_ = 0;
  std::uint64_t dropped_abort_ = 0;
  std::uint64_t dropped_failover_ = 0;
  std::vector<DeliveryRecord> deliveries_;
};

}  // namespace vdc::workload
