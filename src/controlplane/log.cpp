#include "controlplane/log.hpp"

#include <cstring>

#include "common/crc32.hpp"

namespace vdc::controlplane {
namespace {

constexpr std::uint32_t kMagic = 0x31504356u;  // "VCP1" little-endian

// Fixed-size header before the entry array:
//   magic(4) type(1) from(4) to(4) term(8) last_log_index(8)
//   last_log_term(8) granted(1) prev_index(8) prev_term(8)
//   leader_commit(8) success(1) match_index(8) entry_count(4)
constexpr std::size_t kHeaderSize = 4 + 1 + 4 + 4 + 8 + 8 + 8 + 1 + 8 + 8 + 8 + 1 + 8 + 4;
constexpr std::size_t kRecordSize = 8 + 1 + 8 + 8;  // term kind value arg
constexpr std::size_t kCrcSize = 4;

void put_u8(std::vector<std::byte>& out, std::uint8_t v) {
  out.push_back(static_cast<std::byte>(v));
}

void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xffu));
}

void put_u64(std::vector<std::byte>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::byte>((v >> (8 * i)) & 0xffu));
}

class Reader {
 public:
  explicit Reader(std::span<const std::byte> bytes) : bytes_(bytes) {}

  bool u8(std::uint8_t& v) {
    if (pos_ + 1 > bytes_.size()) return false;
    v = static_cast<std::uint8_t>(bytes_[pos_++]);
    return true;
  }
  bool u32(std::uint32_t& v) {
    if (pos_ + 4 > bytes_.size()) return false;
    v = 0;
    for (int i = 0; i < 4; ++i)
      v |= static_cast<std::uint32_t>(bytes_[pos_++]) << (8 * i);
    return true;
  }
  bool u64(std::uint64_t& v) {
    if (pos_ + 8 > bytes_.size()) return false;
    v = 0;
    for (int i = 0; i < 8; ++i)
      v |= static_cast<std::uint64_t>(bytes_[pos_++]) << (8 * i);
    return true;
  }

 private:
  std::span<const std::byte> bytes_;
  std::size_t pos_ = 0;
};

}  // namespace

const char* kind_name(ControlEntry::Kind kind) {
  switch (kind) {
    case ControlEntry::Kind::kNoop: return "noop";
    case ControlEntry::Kind::kEpochCut: return "epoch-cut";
    case ControlEntry::Kind::kEpochCommit: return "epoch-commit";
    case ControlEntry::Kind::kEpochAbort: return "epoch-abort";
    case ControlEntry::Kind::kNodeFailed: return "node-failed";
    case ControlEntry::Kind::kNodeFenced: return "node-fenced";
    case ControlEntry::Kind::kNodeRejoined: return "node-rejoined";
    case ControlEntry::Kind::kRecoveryBegin: return "recovery-begin";
    case ControlEntry::Kind::kRecoverySettled: return "recovery-settled";
    case ControlEntry::Kind::kJobRestart: return "job-restart";
    case ControlEntry::Kind::kPlanVersion: return "plan-version";
  }
  return "?";
}

void CoordinatorView::apply(const ControlEntry& entry) {
  ++applied;
  switch (entry.kind) {
    case ControlEntry::Kind::kNoop:
      break;
    case ControlEntry::Kind::kEpochCut:
      if (entry.value > cut_epoch) cut_epoch = entry.value;
      break;
    case ControlEntry::Kind::kEpochCommit:
      if (entry.value == committed_epoch + 1) {
        committed_epoch = entry.value;
      } else if (entry.value != committed_epoch) {
        // A skip forward or a regression can never be produced by a
        // correct two-phase commit; a duplicate of the current epoch can
        // (an orphaned commit record adopted by a new leader, then the
        // epoch legitimately re-proposed) and is idempotent.
        epoch_sequence_ok = false;
      }
      break;
    case ControlEntry::Kind::kEpochAbort:
      break;
    case ControlEntry::Kind::kNodeFailed:
      failed.insert(static_cast<NodeId>(entry.value));
      break;
    case ControlEntry::Kind::kNodeFenced:
      fences[static_cast<NodeId>(entry.value)] = entry.arg;
      break;
    case ControlEntry::Kind::kNodeRejoined:
      failed.erase(static_cast<NodeId>(entry.value));
      fences.erase(static_cast<NodeId>(entry.value));
      break;
    case ControlEntry::Kind::kRecoveryBegin:
      episode_open = true;
      break;
    case ControlEntry::Kind::kRecoverySettled:
      episode_open = false;
      break;
    case ControlEntry::Kind::kJobRestart:
      ++restarts;
      committed_epoch = 0;
      cut_epoch = 0;
      episode_open = false;
      break;
    case ControlEntry::Kind::kPlanVersion:
      plan_version = entry.value;
      break;
  }
}

std::vector<std::byte> encode_frame(const Frame& frame) {
  std::vector<std::byte> out;
  out.reserve(kHeaderSize + frame.entries.size() * kRecordSize + kCrcSize);
  put_u32(out, kMagic);
  put_u8(out, static_cast<std::uint8_t>(frame.type));
  put_u32(out, frame.from);
  put_u32(out, frame.to);
  put_u64(out, frame.term);
  put_u64(out, frame.last_log_index);
  put_u64(out, frame.last_log_term);
  put_u8(out, frame.granted ? 1 : 0);
  put_u64(out, frame.prev_index);
  put_u64(out, frame.prev_term);
  put_u64(out, frame.leader_commit);
  put_u8(out, frame.success ? 1 : 0);
  put_u64(out, frame.match_index);
  put_u32(out, static_cast<std::uint32_t>(frame.entries.size()));
  for (const LogRecord& rec : frame.entries) {
    put_u64(out, rec.term);
    put_u8(out, static_cast<std::uint8_t>(rec.entry.kind));
    put_u64(out, rec.entry.value);
    put_u64(out, rec.entry.arg);
  }
  put_u32(out, crc32(out));
  return out;
}

std::span<const std::byte> frame_payload(std::span<const std::byte> bytes) {
  if (bytes.size() < kCrcSize) return {};
  return bytes.first(bytes.size() - kCrcSize);
}

std::uint32_t frame_crc(std::span<const std::byte> bytes) {
  if (bytes.size() < kCrcSize) return 0;
  std::uint32_t crc = 0;
  const std::size_t base = bytes.size() - kCrcSize;
  for (int i = 0; i < 4; ++i)
    crc |= static_cast<std::uint32_t>(bytes[base + i]) << (8 * i);
  return crc;
}

bool decode_frame(std::span<const std::byte> bytes, Frame& out) {
  if (bytes.size() < kHeaderSize + kCrcSize) return false;
  if (crc32(frame_payload(bytes)) != frame_crc(bytes)) return false;
  Reader r(frame_payload(bytes));
  std::uint32_t magic = 0;
  std::uint8_t type = 0, granted = 0, success = 0;
  std::uint32_t count = 0;
  if (!r.u32(magic) || magic != kMagic) return false;
  if (!r.u8(type)) return false;
  if (type < static_cast<std::uint8_t>(Frame::Type::kRequestVote) ||
      type > static_cast<std::uint8_t>(Frame::Type::kAck))
    return false;
  out.type = static_cast<Frame::Type>(type);
  if (!r.u32(out.from) || !r.u32(out.to) || !r.u64(out.term) ||
      !r.u64(out.last_log_index) || !r.u64(out.last_log_term) ||
      !r.u8(granted) || !r.u64(out.prev_index) || !r.u64(out.prev_term) ||
      !r.u64(out.leader_commit) || !r.u8(success) || !r.u64(out.match_index) ||
      !r.u32(count))
    return false;
  out.granted = granted != 0;
  out.success = success != 0;
  if (bytes.size() != kHeaderSize + std::size_t{count} * kRecordSize + kCrcSize)
    return false;
  out.entries.clear();
  out.entries.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    LogRecord rec;
    std::uint8_t kind = 0;
    if (!r.u64(rec.term) || !r.u8(kind) || !r.u64(rec.entry.value) ||
        !r.u64(rec.entry.arg))
      return false;
    if (kind > static_cast<std::uint8_t>(ControlEntry::Kind::kPlanVersion))
      return false;
    rec.entry.kind = static_cast<ControlEntry::Kind>(kind);
    out.entries.push_back(rec);
  }
  return true;
}

}  // namespace vdc::controlplane
