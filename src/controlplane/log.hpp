#pragma once
// Replicated control-plane log: entry schema, wire frames, applied view.
//
// Every control decision the coordinator used to keep as private in-memory
// state — epoch cut/commit/abort, membership changes (fail/fence/rejoin),
// recovery-episode transitions, placement-map version bumps — is a
// ControlEntry in a raft-style replicated log (src/controlplane/raft.hpp).
// A follower that takes over after the leader dies replays its applied
// prefix into a CoordinatorView and resumes with exactly the state the old
// leader had committed; nothing about the job's progress lives on a single
// host (the ReStore idea applied to control state instead of checkpoints).
//
// Frames are flat little-endian encodings with a trailing CRC32, so a
// judged-corrupt frame is *detected* by the receiver recomputing the
// checksum (same discipline as heartbeat beats and VDC1/VDD1 data frames),
// not assumed away. decode_frame() rejects bad magic, short buffers, shape
// violations and checksum mismatches by returning false.

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <span>
#include <vector>

namespace vdc::controlplane {

using Term = std::uint64_t;
/// 1-based log position; 0 means "before the first record".
using LogIndex = std::uint64_t;
using NodeId = std::uint32_t;

/// One control decision. `value`/`arg` carry the kind-specific payload
/// (see each kind's comment); unused fields stay zero.
struct ControlEntry {
  enum class Kind : std::uint8_t {
    kNoop = 0,         // leader's term-assertion entry (no payload)
    kEpochCut,         // value = epoch: consistent cut taken (phase 1)
    kEpochCommit,      // value = epoch: stripe durable (phase 2, quorum)
    kEpochAbort,       // value = epoch: in-flight epoch died on the wire
    kNodeFailed,       // value = node id declared dead
    kNodeFenced,       // value = node id, arg = fence token
    kNodeRejoined,     // value = node id back (empty) in the cluster
    kRecoveryBegin,    // value = first victim of the episode
    kRecoverySettled,  // arg = 1 success / 0 escalated to restart
    kJobRestart,       // data loss; epoch numbering starts over
    kPlanVersion,      // value = placement-map version now in force
  };
  Kind kind = Kind::kNoop;
  std::uint64_t value = 0;
  std::uint64_t arg = 0;

  bool operator==(const ControlEntry&) const = default;
};

const char* kind_name(ControlEntry::Kind kind);

/// A log slot: the entry plus the term it was appended under. Two records
/// with equal (term, index) are identical by the raft log-matching
/// property — which is what logs_consistent() checks, not assumes.
struct LogRecord {
  Term term = 0;
  ControlEntry entry;

  bool operator==(const LogRecord&) const = default;
};

/// Coordinator state machine rebuilt by applying committed entries in
/// order. This is what a follower promotes with on takeover, and what the
/// invariant suite audits: committed epoch numbers must advance gap-free
/// and monotone within a job incarnation (a re-proposal of an epoch whose
/// earlier commit record was orphaned by a leader change is idempotent —
/// the external commit action is still gated exactly once by the runtime's
/// coordinator generation).
struct CoordinatorView {
  std::uint64_t committed_epoch = 0;  // highest committed epoch this run
  std::uint64_t cut_epoch = 0;        // highest epoch with a logged cut
  std::uint64_t plan_version = 0;     // placement-map version in force
  std::uint64_t restarts = 0;         // kJobRestart count
  bool episode_open = false;          // recovery episode in progress
  std::set<NodeId> failed;            // nodes currently down per the log
  std::map<NodeId, std::uint64_t> fences;  // node -> fence token
  std::uint64_t applied = 0;          // entries applied into this view
  /// Latches false if a committed epoch number ever skips or regresses.
  bool epoch_sequence_ok = true;

  void apply(const ControlEntry& entry);
};

/// One control-plane message. All four raft message types share a flat
/// frame; fields irrelevant to `type` are zero on the wire.
struct Frame {
  enum class Type : std::uint8_t {
    kRequestVote = 1,  // candidate -> all: term, last_log_{index,term}
    kVote,             // voter -> candidate: granted
    kAppend,           // leader -> follower: entries + commit watermark
    kAck,              // follower -> leader: success + match hint
  };
  Type type = Type::kRequestVote;
  NodeId from = 0;
  NodeId to = 0;
  Term term = 0;
  // kRequestVote
  LogIndex last_log_index = 0;
  Term last_log_term = 0;
  // kVote
  bool granted = false;
  // kAppend
  LogIndex prev_index = 0;
  Term prev_term = 0;
  LogIndex leader_commit = 0;
  std::vector<LogRecord> entries;
  // kAck
  bool success = false;
  LogIndex match_index = 0;  // on success: replicated prefix; else a hint

  bool operator==(const Frame&) const = default;
};

/// Serialize to [magic "VCP1" | fields | entries | CRC32-LE]. The CRC
/// covers everything before it.
std::vector<std::byte> encode_frame(const Frame& frame);

/// Parse and verify a wire buffer. Returns false (out untouched or
/// partially filled, caller must discard) on any shape or CRC mismatch.
bool decode_frame(std::span<const std::byte> bytes, Frame& out);

/// The payload the CRC covers (everything but the trailing 4 bytes) and
/// the stored checksum — for feeding net::crc_catches_flip on a
/// judged-corrupt delivery.
std::span<const std::byte> frame_payload(std::span<const std::byte> bytes);
std::uint32_t frame_crc(std::span<const std::byte> bytes);

}  // namespace vdc::controlplane
