#include "controlplane/raft.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "net/fault.hpp"

namespace vdc::controlplane {

using Kind = ControlEntry::Kind;

ControlPlane::ControlPlane(simkit::Simulator& sim,
                           cluster::ClusterManager& cluster,
                           ControlPlaneConfig config, Rng rng)
    : sim_(sim), cluster_(cluster), config_(config), rng_(rng) {
  VDC_ASSERT(config_.replicas >= 1);
  VDC_ASSERT(config_.election_timeout_min > 0.0 &&
             config_.election_timeout_max >= config_.election_timeout_min);
  VDC_ASSERT(config_.heartbeat_period > 0.0 &&
             config_.heartbeat_period < config_.election_timeout_min);
  live_ = [this](NodeId id) { return cluster_.node(id).alive(); };
}

telemetry::MetricsRegistry& ControlPlane::metrics() {
  return sim_.telemetry().metrics();
}

bool ControlPlane::live(NodeId slot) const { return live_(slot); }

std::uint32_t ControlPlane::quorum() const {
  // Over the full replica set, never just the live ones: a minority
  // fragment must not commit no matter how many peers it believes dead.
  return static_cast<std::uint32_t>(replicas_.size() / 2 + 1);
}

void ControlPlane::start() {
  VDC_ASSERT(!running_);
  const std::size_t n = std::min<std::size_t>(
      config_.replicas, std::max<std::size_t>(cluster_.node_count(), 1));
  VDC_ASSERT(cluster_.node_count() >= 1);
  running_ = true;
  replicas_.assign(n, Replica{});
  // Replica 0 boots as leader of term 1 — no t=0 election, so a run
  // without coordinator faults never draws from rng_ on the common path
  // differently than the single-coordinator baseline it must match.
  Replica& boot = replicas_[0];
  boot.role = Replica::Role::kLeader;
  boot.term = 1;
  boot.voted_for = 0;
  boot.next_index.assign(n, 1);
  boot.match_index.assign(n, 0);
  boot.log.push_back(LogRecord{1, ControlEntry{Kind::kNoop, 0, 0}});
  leaders_per_term_[1] = 0;
  metrics().set("cp.term", 1.0);
  advance_commit(0);
  broadcast_append(0);
  schedule_heartbeat(0);
  for (NodeId slot = 1; slot < n; ++slot) arm_election(slot);
  note_leader(0);
}

void ControlPlane::stop() {
  running_ = false;
  for (Replica& r : replicas_) disarm(r);
  // Pending commit waiters are dropped, not failed: the job is over and
  // the runtime that registered them is being torn down.
  waiters_.clear();
  leader_waiters_.clear();
}

void ControlPlane::disarm(Replica& r) {
  if (r.election_timer != simkit::kInvalidEvent) {
    sim_.cancel(r.election_timer);
    r.election_timer = simkit::kInvalidEvent;
  }
  if (r.heartbeat_timer != simkit::kInvalidEvent) {
    sim_.cancel(r.heartbeat_timer);
    r.heartbeat_timer = simkit::kInvalidEvent;
  }
}

std::optional<NodeId> ControlPlane::leader() const {
  std::optional<NodeId> best;
  for (NodeId slot = 0; slot < replicas_.size(); ++slot) {
    const Replica& r = replicas_[slot];
    if (r.role != Replica::Role::kLeader || !live(slot)) continue;
    if (!best || r.term > replicas_[*best].term) best = slot;
  }
  return best;
}

Term ControlPlane::term() const {
  Term t = 0;
  for (const Replica& r : replicas_) t = std::max(t, r.term);
  return t;
}

void ControlPlane::await_leader(std::function<void(NodeId)> cb) {
  if (auto l = leader()) {
    cb(*l);
    return;
  }
  leader_waiters_.push_back(std::move(cb));
}

bool ControlPlane::append(const ControlEntry& entry, CommitCallback cb) {
  auto l = leader();
  if (!l) return false;
  Replica& r = replicas_[*l];
  r.log.push_back(LogRecord{r.term, entry});
  if (cb) {
    waiters_.push_back(Waiter{*l, r.term, static_cast<LogIndex>(r.log.size()),
                              sim_.now(), std::move(cb)});
  }
  broadcast_append(*l);
  advance_commit(*l);  // single-replica planes commit synchronously
  return true;
}

const CoordinatorView& ControlPlane::view(NodeId node) const {
  VDC_ASSERT(is_replica(node));
  return replicas_[node].view;
}

const CoordinatorView* ControlPlane::leader_view() const {
  auto l = leader();
  return l ? &replicas_[*l].view : nullptr;
}

const std::vector<LogRecord>& ControlPlane::log(NodeId node) const {
  VDC_ASSERT(is_replica(node));
  return replicas_[node].log;
}

LogIndex ControlPlane::commit_index(NodeId node) const {
  VDC_ASSERT(is_replica(node));
  return replicas_[node].commit;
}

bool ControlPlane::epoch_sequence_ok() const {
  for (const Replica& r : replicas_)
    if (!r.view.epoch_sequence_ok) return false;
  return true;
}

bool ControlPlane::logs_consistent() const {
  for (NodeId a = 0; a < replicas_.size(); ++a) {
    for (NodeId b = a + 1; b < replicas_.size(); ++b) {
      const LogIndex n = std::min(replicas_[a].commit, replicas_[b].commit);
      for (LogIndex i = 0; i < n; ++i)
        if (!(replicas_[a].log[i] == replicas_[b].log[i])) return false;
    }
  }
  return true;
}

void ControlPlane::on_node_death(NodeId node) {
  if (!running_ || !is_replica(node)) return;
  Replica& r = replicas_[node];
  disarm(r);
  fail_waiters_for_slot(node);
  // Diskless: term, vote and log die with the host.
  r = Replica{};
  r.synced = false;
}

void ControlPlane::on_node_rejoin(NodeId node) {
  if (!running_ || !is_replica(node)) return;
  Replica& r = replicas_[node];
  disarm(r);
  r = Replica{};
  // Unsynced: abstains from voting/candidacy until it commits a record
  // of the current leader's term (see raft.hpp header). The leader's
  // regular heartbeats find and catch it up; no explicit join handshake.
  r.synced = false;
}

// --- elections --------------------------------------------------------------

void ControlPlane::arm_election(NodeId slot) {
  Replica& r = replicas_[slot];
  if (r.election_timer != simkit::kInvalidEvent) {
    sim_.cancel(r.election_timer);
    r.election_timer = simkit::kInvalidEvent;
  }
  if (!running_ || !live(slot) || !r.synced ||
      r.role == Replica::Role::kLeader)
    return;
  const SimTime timeout = rng_.uniform(config_.election_timeout_min,
                                       config_.election_timeout_max);
  r.election_timer = sim_.after(timeout, [this, slot] {
    replicas_[slot].election_timer = simkit::kInvalidEvent;
    on_election_timeout(slot);
  });
}

void ControlPlane::on_election_timeout(NodeId slot) {
  Replica& r = replicas_[slot];
  if (!running_ || !live(slot) || !r.synced ||
      r.role == Replica::Role::kLeader)
    return;
  r.role = Replica::Role::kCandidate;
  ++r.term;
  r.voted_for = static_cast<std::int64_t>(slot);
  r.votes = 1;
  metrics().set("cp.term", static_cast<double>(term()));
  if (r.votes >= quorum()) {
    become_leader(slot);
    return;
  }
  Frame f;
  f.type = Frame::Type::kRequestVote;
  f.term = r.term;
  f.last_log_index = static_cast<LogIndex>(r.log.size());
  f.last_log_term = r.log.empty() ? 0 : r.log.back().term;
  for (NodeId peer = 0; peer < replicas_.size(); ++peer)
    if (peer != slot) send(slot, peer, f);
  arm_election(slot);  // split vote -> retry with a fresh random timeout
}

void ControlPlane::step_down(NodeId slot, Term new_term) {
  Replica& r = replicas_[slot];
  if (new_term > r.term) {
    r.term = new_term;
    r.voted_for = -1;
    metrics().set("cp.term", static_cast<double>(term()));
  }
  if (r.role == Replica::Role::kLeader &&
      r.heartbeat_timer != simkit::kInvalidEvent) {
    sim_.cancel(r.heartbeat_timer);
    r.heartbeat_timer = simkit::kInvalidEvent;
  }
  r.role = Replica::Role::kFollower;
  r.votes = 0;
  arm_election(slot);
}

void ControlPlane::become_leader(NodeId slot) {
  Replica& r = replicas_[slot];
  r.role = Replica::Role::kLeader;
  r.votes = 0;
  if (r.election_timer != simkit::kInvalidEvent) {
    sim_.cancel(r.election_timer);
    r.election_timer = simkit::kInvalidEvent;
  }
  auto it = leaders_per_term_.find(r.term);
  if (it != leaders_per_term_.end() && it->second != slot) {
    election_safety_ok_ = false;  // two leaders in one term: raft is broken
  } else {
    leaders_per_term_[r.term] = slot;
  }
  ++elections_;
  metrics().add("cp.elections", 1.0);
  metrics().set("cp.term", static_cast<double>(term()));
  r.next_index.assign(replicas_.size(),
                      static_cast<LogIndex>(r.log.size()) + 1);
  r.match_index.assign(replicas_.size(), 0);
  // Records from dead terms that this leader's log lacks are doomed (they
  // will be overwritten by replication) — abort their waiters now so a
  // gated epoch commit fails fast instead of hanging.
  fail_impossible_waiters(slot);
  // Term-assertion noop: committing it commits every inherited record
  // below it (raft's current-term commit rule).
  r.log.push_back(LogRecord{r.term, ControlEntry{Kind::kNoop, 0, 0}});
  advance_commit(slot);
  broadcast_append(slot);
  schedule_heartbeat(slot);
  note_leader(slot);
}

void ControlPlane::note_leader(NodeId slot) {
  std::vector<std::function<void(NodeId)>> waiters;
  waiters.swap(leader_waiters_);
  for (auto& cb : waiters) cb(slot);
  if (on_leader_change_) on_leader_change_(slot, replicas_[slot].term);
}

// --- wire -------------------------------------------------------------------

void ControlPlane::send(NodeId from, NodeId to, Frame frame) {
  if (!running_ || !live(from)) return;
  frame.from = from;
  frame.to = to;
  std::vector<std::byte> buf = encode_frame(frame);
  metrics().add("cp.frames", 1.0);
  metrics().add("cp.wire.bytes", static_cast<double>(buf.size()));
  SimTime latency = cluster_.fabric().link_latency();
  if (cluster_.fabric().faults_active()) {
    const net::HostId src = cluster_.node(from).host();
    const net::HostId dst = cluster_.node(to).host();
    const net::Judgement verdict = cluster_.fabric().faults().judge(src, dst);
    if (verdict.outcome == net::Delivery::kDropped) return;
    latency += verdict.extra_latency;
    if (verdict.outcome == net::Delivery::kCorrupted) {
      if (net::crc_catches_flip(frame_payload(buf), frame_crc(buf),
                                verdict.corrupt_bit)) {
        // Receiver detects the flip and discards; raft's heartbeat-driven
        // retransmission re-offers the suffix, so a flipped commit frame
        // costs latency, never safety.
        metrics().add("net.corrupt_frames", 1.0);
        return;
      }
    }
  }
  sim_.after(latency, [this, buf = std::move(buf)] {
    if (!running_) return;
    Frame decoded;
    if (!decode_frame(buf, decoded)) {
      metrics().add("cp.bad_frames", 1.0);
      return;
    }
    if (!is_replica(decoded.to) || !live(decoded.to)) return;
    deliver(decoded);
  });
}

void ControlPlane::deliver(const Frame& frame) {
  switch (frame.type) {
    case Frame::Type::kRequestVote: on_request_vote(frame.to, frame); break;
    case Frame::Type::kVote: on_vote(frame.to, frame); break;
    case Frame::Type::kAppend: on_append(frame.to, frame); break;
    case Frame::Type::kAck: on_ack(frame.to, frame); break;
  }
}

void ControlPlane::on_request_vote(NodeId slot, const Frame& f) {
  Replica& r = replicas_[slot];
  if (f.term > r.term) step_down(slot, f.term);
  const Term last_term = r.log.empty() ? 0 : r.log.back().term;
  const LogIndex last_index = static_cast<LogIndex>(r.log.size());
  const bool up_to_date =
      f.last_log_term > last_term ||
      (f.last_log_term == last_term && f.last_log_index >= last_index);
  // Unsynced replicas abstain: an amnesiac rejoiner must not grant a
  // vote its pre-crash incarnation may already have granted this term.
  const bool grant = r.synced && f.term == r.term && up_to_date &&
                     (r.voted_for < 0 ||
                      r.voted_for == static_cast<std::int64_t>(f.from));
  if (grant) {
    r.voted_for = static_cast<std::int64_t>(f.from);
    arm_election(slot);
  }
  Frame reply;
  reply.type = Frame::Type::kVote;
  reply.term = r.term;
  reply.granted = grant;
  send(slot, f.from, reply);
}

void ControlPlane::on_vote(NodeId slot, const Frame& f) {
  Replica& r = replicas_[slot];
  if (f.term > r.term) {
    step_down(slot, f.term);
    return;
  }
  if (r.role != Replica::Role::kCandidate || f.term != r.term || !f.granted)
    return;
  ++r.votes;
  if (r.votes >= quorum()) become_leader(slot);
}

void ControlPlane::on_append(NodeId slot, const Frame& f) {
  Replica& r = replicas_[slot];
  Frame ack;
  ack.type = Frame::Type::kAck;
  if (f.term < r.term) {
    ack.term = r.term;
    ack.success = false;
    send(slot, f.from, ack);
    return;
  }
  if (f.term > r.term || r.role != Replica::Role::kFollower)
    step_down(slot, f.term);
  // Fencing: a sender the cluster has declared dead and fenced (the
  // deposed-leader-behind-a-partition) is rejected outright — its late
  // epoch commit cannot reach quorum through us — and does NOT reset the
  // election timer, so a real election can depose it.
  if (cluster_.is_fenced(f.from)) {
    metrics().add("cp.fenced_rejects", 1.0);
    ack.term = r.term;
    ack.success = false;
    send(slot, f.from, ack);
    return;
  }
  arm_election(slot);  // valid beat from the current leader
  const LogIndex local = static_cast<LogIndex>(r.log.size());
  if (f.prev_index > local) {
    ack.success = false;
    ack.match_index = local;  // hint: we end here, back up to our tail
  } else if (f.prev_index >= 1 && r.log[f.prev_index - 1].term != f.prev_term) {
    ack.success = false;
    ack.match_index = f.prev_index - 1;  // hint: conflict at prev_index
  } else {
    LogIndex idx = f.prev_index;
    for (const LogRecord& rec : f.entries) {
      ++idx;
      if (idx <= r.log.size()) {
        if (r.log[idx - 1].term == rec.term) continue;  // identical record
        VDC_ASSERT(idx > r.commit);  // committed records never conflict
        r.log.resize(idx - 1);
        r.log.push_back(rec);
      } else {
        r.log.push_back(rec);
      }
    }
    ack.success = true;
    ack.match_index = f.prev_index + static_cast<LogIndex>(f.entries.size());
    const LogIndex commit = std::min(f.leader_commit, ack.match_index);
    if (commit > r.commit) {
      r.commit = commit;
      apply_committed(slot);
    }
    if (!r.synced && r.commit >= 1 && r.log[r.commit - 1].term == f.term) {
      // Caught up: we hold a committed record of the leader's term (its
      // noop at the latest). Voting rights restored.
      r.synced = true;
      arm_election(slot);
    }
  }
  ack.term = r.term;
  send(slot, f.from, ack);
}

void ControlPlane::on_ack(NodeId slot, const Frame& f) {
  Replica& r = replicas_[slot];
  if (f.term > r.term) {
    step_down(slot, f.term);
    return;
  }
  if (r.role != Replica::Role::kLeader || f.term != r.term) return;
  const NodeId peer = f.from;
  if (f.success) {
    if (f.match_index > r.match_index[peer]) {
      r.match_index[peer] = f.match_index;
      advance_commit(slot);
    }
    r.next_index[peer] = r.match_index[peer] + 1;
    if (r.next_index[peer] <= r.log.size()) send_append(slot, peer);
  } else {
    // Back off along the follower's hint; the retry rides the next
    // heartbeat rather than an immediate resend, so a persistently
    // rejecting peer (e.g. one that fences us) costs one frame per beat,
    // not an ack-storm.
    r.next_index[peer] = std::min<LogIndex>(
        f.match_index + 1, static_cast<LogIndex>(r.log.size()) + 1);
    if (r.next_index[peer] < 1) r.next_index[peer] = 1;
  }
}

void ControlPlane::send_append(NodeId leader_slot, NodeId peer) {
  Replica& r = replicas_[leader_slot];
  LogIndex next = std::max<LogIndex>(1, r.next_index[peer]);
  next = std::min<LogIndex>(next, static_cast<LogIndex>(r.log.size()) + 1);
  Frame f;
  f.type = Frame::Type::kAppend;
  f.term = r.term;
  f.prev_index = next - 1;
  f.prev_term = f.prev_index >= 1 ? r.log[f.prev_index - 1].term : 0;
  f.leader_commit = r.commit;
  const std::size_t avail = r.log.size() - (next - 1);
  const std::size_t count = std::min(config_.max_batch, avail);
  f.entries.assign(r.log.begin() + static_cast<std::ptrdiff_t>(next - 1),
                   r.log.begin() + static_cast<std::ptrdiff_t>(next - 1 + count));
  send(leader_slot, peer, std::move(f));
}

void ControlPlane::broadcast_append(NodeId leader_slot) {
  for (NodeId peer = 0; peer < replicas_.size(); ++peer)
    if (peer != leader_slot) send_append(leader_slot, peer);
}

void ControlPlane::schedule_heartbeat(NodeId slot) {
  Replica& r = replicas_[slot];
  if (r.heartbeat_timer != simkit::kInvalidEvent) {
    sim_.cancel(r.heartbeat_timer);
    r.heartbeat_timer = simkit::kInvalidEvent;
  }
  if (!running_) return;
  r.heartbeat_timer = sim_.after(config_.heartbeat_period, [this, slot] {
    Replica& rep = replicas_[slot];
    rep.heartbeat_timer = simkit::kInvalidEvent;
    if (!running_ || rep.role != Replica::Role::kLeader || !live(slot)) return;
    broadcast_append(slot);
    schedule_heartbeat(slot);
  });
}

// --- commit -----------------------------------------------------------------

void ControlPlane::advance_commit(NodeId leader_slot) {
  Replica& r = replicas_[leader_slot];
  LogIndex advanced = 0;
  for (LogIndex n = static_cast<LogIndex>(r.log.size()); n > r.commit; --n) {
    if (r.log[n - 1].term != r.term) break;  // only current-term records
    std::uint32_t count = 1;  // self
    for (NodeId peer = 0; peer < replicas_.size(); ++peer) {
      if (peer == leader_slot) continue;
      if (r.match_index[peer] >= n) ++count;
    }
    if (count >= quorum()) {
      advanced = n;
      break;
    }
  }
  if (advanced == 0) return;
  r.commit = advanced;
  auto it = commits_per_term_.find(r.term);
  if (it == commits_per_term_.end()) {
    commits_per_term_[r.term] = leader_slot;
  } else if (it->second != leader_slot) {
    election_safety_ok_ = false;  // two leaders advanced commit in one term
  }
  metrics().set("cp.log.committed", static_cast<double>(r.commit));
  apply_committed(leader_slot);
}

void ControlPlane::apply_committed(NodeId slot) {
  Replica& r = replicas_[slot];
  while (r.applied < r.commit) {
    const LogRecord rec = r.log[r.applied];
    ++r.applied;
    r.view.apply(rec.entry);
    resolve_committed_waiters(rec.term, r.applied);
  }
}

void ControlPlane::resolve_committed_waiters(Term term, LogIndex index) {
  std::vector<Waiter> hit;
  for (std::size_t i = 0; i < waiters_.size();) {
    if (waiters_[i].term == term && waiters_[i].index == index) {
      hit.push_back(std::move(waiters_[i]));
      waiters_.erase(waiters_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
  for (Waiter& w : hit) {
    metrics().observe("cp.commit_latency_s", sim_.now() - w.appended);
    w.cb(true);
  }
}

void ControlPlane::fail_waiters_for_slot(NodeId slot) {
  std::vector<Waiter> hit;
  for (std::size_t i = 0; i < waiters_.size();) {
    if (waiters_[i].slot == slot) {
      hit.push_back(std::move(waiters_[i]));
      waiters_.erase(waiters_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
  for (Waiter& w : hit) w.cb(false);
}

void ControlPlane::fail_impossible_waiters(NodeId new_leader_slot) {
  Replica& r = replicas_[new_leader_slot];
  std::vector<Waiter> hit;
  for (std::size_t i = 0; i < waiters_.size();) {
    const Waiter& w = waiters_[i];
    const bool doomed = w.index > r.log.size() ||
                        r.log[w.index - 1].term != w.term;
    if (doomed) {
      hit.push_back(std::move(waiters_[i]));
      waiters_.erase(waiters_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }
  for (Waiter& w : hit) w.cb(false);
}

}  // namespace vdc::controlplane
