#pragma once
// Deterministic raft-style replicated control plane.
//
// The first `replicas` cluster nodes (node id == replica slot) host one
// raft participant each. Replica 0 boots as leader of term 1 — mirroring
// the implicit node-0 coordinator the plane replaces, and keeping a
// zero-coordinator-fault run free of a t=0 election. Frames travel the
// judged fault plane the way heartbeat beats do (latency-class messages:
// LinkFaultInjector::judge + CRC over an encoded frame + a timed delivery,
// never a FlowNetwork flow, so enabling the plane cannot perturb
// rate-sharing on the data plane). Retransmission is raft's own: the
// leader re-offers unacknowledged suffixes on every heartbeat until the
// matching ack arrives.
//
// Divergences from textbook raft, forced by the diskless model:
//   - No stable storage. A replica that dies loses term, vote, and log.
//     It rejoins as an *unsynced* follower that abstains from voting and
//     from starting elections until it holds a committed record from the
//     current leader's term — the catch-up fence that keeps an amnesiac
//     replica from double-voting in an old term. Quorum is counted over
//     the full replica set, never just the live ones.
//   - Fencing integration: followers reject AppendEntries whose sender is
//     fenced by the cluster (ClusterManager::is_fenced) — a deposed leader
//     that was declared dead behind a partition cannot replicate a late
//     epoch commit into the quorum even before its term is superseded.
//   - Election timeouts, and nothing else, consume the plane's private
//     Rng stream; data-plane randomness is untouched.
//
// Safety is audited, not assumed: the plane latches election_safety_ok()
// (at most one leader per term, at most one commit-advancing leader per
// term), epoch_sequence_ok() (committed epoch numbers gap-free and
// monotone per job incarnation), and logs_consistent() (pairwise equal
// committed prefixes) for the invariant suites.

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "cluster/manager.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "controlplane/log.hpp"
#include "simkit/simulator.hpp"

namespace vdc::controlplane {

struct ControlPlaneConfig {
  /// Replica count (clamped to the cluster size at start()). 3 tolerates
  /// one replica down; elections stall — safely — below quorum.
  std::uint32_t replicas = 3;
  /// Leader append/heartbeat cadence; also the retransmission period for
  /// unacknowledged log suffixes.
  SimTime heartbeat_period = 0.05;
  /// Randomized election timeout bounds (uniform draw per arming).
  SimTime election_timeout_min = 0.15;
  SimTime election_timeout_max = 0.30;
  /// Cap on log records per AppendEntries frame (catch-up batch size).
  std::size_t max_batch = 128;
  /// Salt mixed into the plane's private Rng stream (with the job seed),
  /// so two planes in one sim draw from distinct streams.
  std::uint64_t seed = 0;
};

class ControlPlane {
 public:
  /// Resolution of an append() the caller asked to be notified about:
  /// true = the record is quorum-committed; false = it can no longer
  /// commit under this leader (leader deposed/killed, record discarded).
  using CommitCallback = std::function<void(bool committed)>;
  using LeaderCallback = std::function<void(NodeId leader, Term term)>;
  /// Physical liveness (a zombie behind a partition is live). Defaults to
  /// ClusterManager::node(id).alive().
  using LivePredicate = std::function<bool(NodeId)>;

  ControlPlane(simkit::Simulator& sim, cluster::ClusterManager& cluster,
               ControlPlaneConfig config, Rng rng);

  /// Must be set before start() if zombies should keep their replicas
  /// running (the deposed-leader-behind-a-partition scenario).
  void set_live_predicate(LivePredicate live) { live_ = std::move(live); }
  void set_on_leader_change(LeaderCallback cb) { on_leader_change_ = std::move(cb); }

  void start();
  void stop();

  /// The node currently acting as leader: the highest-term live leader,
  /// nullopt during an election gap.
  std::optional<NodeId> leader() const;
  Term term() const;
  std::uint64_t elections() const { return elections_; }
  std::size_t replica_count() const { return replicas_.size(); }
  bool is_replica(NodeId node) const { return node < replicas_.size(); }

  /// Run `cb` once a leader exists (immediately if one does now).
  void await_leader(std::function<void(NodeId)> cb);

  /// Append a control record through the current leader. Returns false if
  /// there is no leader (caller queues and retries on leader change). The
  /// optional callback reports quorum commit or abandonment — at most
  /// once.
  bool append(const ControlEntry& entry, CommitCallback cb = nullptr);

  /// A replica node physically died: its volatile raft state is gone.
  void on_node_death(NodeId node);
  /// A replica node came back (empty). It rejoins unsynced.
  void on_node_rejoin(NodeId node);

  const CoordinatorView& view(NodeId node) const;
  /// The acting leader's applied view (nullptr during an election gap).
  const CoordinatorView* leader_view() const;
  const std::vector<LogRecord>& log(NodeId node) const;
  LogIndex commit_index(NodeId node) const;
  /// Replica introspection for tests and stall diagnosis.
  bool replica_synced(NodeId node) const { return replicas_[node].synced; }
  bool replica_is_leader(NodeId node) const {
    return replicas_[node].role == Replica::Role::kLeader;
  }
  Term replica_term(NodeId node) const { return replicas_[node].term; }

  // --- audited invariants ---------------------------------------------------
  bool election_safety_ok() const { return election_safety_ok_; }
  bool epoch_sequence_ok() const;
  bool logs_consistent() const;

 private:
  struct Replica {
    enum class Role : std::uint8_t { kFollower, kCandidate, kLeader };
    Role role = Role::kFollower;
    Term term = 0;
    std::int64_t voted_for = -1;  // slot granted our vote this term
    std::vector<LogRecord> log;
    LogIndex commit = 0;
    LogIndex applied = 0;
    CoordinatorView view;
    /// False from (re)join until a committed record of the current
    /// leader's term lands; gates voting and candidacy (see file header).
    bool synced = true;
    std::uint32_t votes = 0;
    std::vector<LogIndex> next_index;
    std::vector<LogIndex> match_index;
    simkit::EventId election_timer = simkit::kInvalidEvent;
    simkit::EventId heartbeat_timer = simkit::kInvalidEvent;
  };

  struct Waiter {
    NodeId slot = 0;  // leader the record was appended through
    Term term = 0;
    LogIndex index = 0;
    SimTime appended = 0.0;
    CommitCallback cb;
  };

  bool live(NodeId slot) const;
  std::uint32_t quorum() const;
  telemetry::MetricsRegistry& metrics();

  void arm_election(NodeId slot);
  void disarm(Replica& r);
  void on_election_timeout(NodeId slot);
  void become_leader(NodeId slot);
  void step_down(NodeId slot, Term term);
  void note_leader(NodeId slot);

  void send(NodeId from, NodeId to, Frame frame);
  void deliver(const Frame& frame);
  void on_request_vote(NodeId slot, const Frame& f);
  void on_vote(NodeId slot, const Frame& f);
  void on_append(NodeId slot, const Frame& f);
  void on_ack(NodeId slot, const Frame& f);

  void send_append(NodeId leader_slot, NodeId peer);
  void broadcast_append(NodeId leader_slot);
  void schedule_heartbeat(NodeId slot);
  void advance_commit(NodeId leader_slot);
  void apply_committed(NodeId slot);

  void resolve_committed_waiters(Term term, LogIndex index);
  void fail_waiters_for_slot(NodeId slot);
  void fail_impossible_waiters(NodeId new_leader_slot);

  simkit::Simulator& sim_;
  cluster::ClusterManager& cluster_;
  ControlPlaneConfig config_;
  Rng rng_;
  LivePredicate live_;
  bool running_ = false;
  std::vector<Replica> replicas_;
  std::vector<Waiter> waiters_;
  std::vector<std::function<void(NodeId)>> leader_waiters_;
  LeaderCallback on_leader_change_;
  std::uint64_t elections_ = 0;
  bool election_safety_ok_ = true;
  std::map<Term, NodeId> leaders_per_term_;
  std::map<Term, NodeId> commits_per_term_;
};

}  // namespace vdc::controlplane
