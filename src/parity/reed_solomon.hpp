#pragma once
// Systematic Reed-Solomon erasure code over GF(256) with a Cauchy
// generator — arbitrary fault tolerance m for a checkpoint group.
//
// The paper's scheme is m = 1 (XOR) and it cites RDP for m = 2; this codec
// generalises the "more advanced codes" direction of Section II-B.2 to any
// m: the stripe survives ANY m simultaneous block losses. The generator's
// parity rows are a Cauchy matrix A[j][i] = 1/(x_j + y_i) with distinct
// x_j, y_i, so every square submatrix is invertible and the code is MDS by
// construction (also verified exhaustively in the tests).
//
// Decode: take any k surviving rows of [I; A], invert the k x k system in
// GF(256) by Gauss-Jordan, and re-multiply to recover the erased rows.

#include "parity/codec.hpp"

namespace vdc::parity {

class ReedSolomonCodec final : public GroupCodec {
 public:
  /// k data blocks, m parity blocks; k + m <= 256.
  ReedSolomonCodec(std::size_t k, std::size_t m);

  std::size_t data_blocks() const override { return k_; }
  std::size_t parity_blocks() const override { return m_; }
  std::size_t fault_tolerance() const override { return m_; }

  std::vector<Block> encode(std::span<const BlockView> data) const override;
  std::vector<Block> encode_parallel(std::span<const BlockView> data,
                                     unsigned threads) const override;
  void reconstruct(std::vector<std::optional<Block>>& blocks) const override;

  /// Cauchy coefficient of parity row j, data column i.
  std::uint8_t coefficient(std::size_t j, std::size_t i) const;

 private:
  std::size_t k_;
  std::size_t m_;
};

}  // namespace vdc::parity
