#pragma once
// Runtime-dispatched parity kernels.
//
// Every byte of parity math in the system funnels through two primitives:
// XOR (dst ^= src) and the GF(256) multiply-accumulate (dst ^= c*src).
// This header gives each primitive a small family of implementations —
// kernel *tiers* — selected once at process start by CPU feature
// detection, overridable for tests and benchmarks:
//
//   Scalar  — byte-at-a-time loops; the always-available equivalence
//             reference (mirrors VDC_REFERENCE_PLANE for the data plane).
//   Blocked — word-blocked XOR (4x u64 per step) and a per-call 256-entry
//             product table for GF(256); the portable fast path.
//   Avx2    — 32-byte vector XOR and the ISA-L-style PSHUFB nibble-table
//             GF(256) multiply (two 16-entry tables per coefficient).
//             Compiled with a function-level target attribute and chosen
//             only when the CPU reports AVX2.
//   Neon    — aarch64 twin of Avx2 (vqtbl1q_u8 nibble tables); compiled
//             only on aarch64 builds.
//
// All tiers are bit-exact for every input (tests/kernel_conformance_test
// proves each tier against Scalar on random and adversarial cases), so
// tier choice can never change committed checkpoints or parity — only
// wall-clock speed. `parity::xor_into` and `gf256::mul_add` route through
// the active kernel, so callers (capture XOR, parity folds, RDP encode,
// recovery rebuilds) inherit SIMD without changes.
//
// Selection: VDC_PARITY_KERNEL=scalar|blocked|avx2|neon|auto (default
// auto = best supported), read once at first use; set_active_tier()
// overrides at runtime (tests/benches).

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

namespace vdc::parity {

enum class KernelTier : int {
  Scalar = 0,
  Blocked = 1,
  Avx2 = 2,
  Neon = 3,
};

/// One tier's primitive set. Function pointers, not virtuals: the fold
/// hot path calls through them once per contiguous range.
struct KernelOps {
  KernelTier tier = KernelTier::Scalar;
  const char* name = "scalar";
  void (*xor_into)(std::byte* dst, const std::byte* src, std::size_t n) =
      nullptr;
  void (*gf256_mul_add)(std::uint8_t c, const std::uint8_t* src,
                        std::uint8_t* dst, std::size_t n) = nullptr;
};

/// Tiers usable on this machine, in ascending speed order. Scalar and
/// Blocked are always present; Avx2/Neon appear when the CPU + build
/// support them.
const std::vector<KernelTier>& supported_tiers();

/// True when `tier` is in supported_tiers().
bool tier_supported(KernelTier tier);

/// The ops table for a supported tier (throws on an unsupported one).
const KernelOps& kernel_for(KernelTier tier);

/// The process-wide active kernel: VDC_PARITY_KERNEL if set (and
/// supported; an unsupported request falls back to auto), else the best
/// supported tier. Resolved once, then stable until set_active_tier().
const KernelOps& active_kernel();

/// Force the active tier (tests/benchmarks). Throws on unsupported.
void set_active_tier(KernelTier tier);

/// "scalar" / "blocked" / "avx2" / "neon".
const char* tier_name(KernelTier tier);

/// Parse a tier name; nullopt for "auto" or anything unrecognized.
std::optional<KernelTier> parse_tier(std::string_view name);

}  // namespace vdc::parity
