#include "parity/gf256.hpp"

#include "parity/kernels.hpp"

namespace vdc::parity::gf256 {
namespace detail {

Tables::Tables() {
  std::uint16_t x = 1;
  for (int i = 0; i < 255; ++i) {
    exp[i] = static_cast<std::uint8_t>(x);
    log[static_cast<std::uint8_t>(x)] = static_cast<std::uint8_t>(i);
    x <<= 1;
    if (x & 0x100) x ^= 0x11d;
  }
  for (int i = 255; i < 512; ++i) exp[i] = exp[i - 255];
  log[0] = 0;  // never read: mul/div guard zero operands
}

const Tables& tables() {
  static const Tables t;
  return t;
}

}  // namespace detail

void mul_add(std::uint8_t c, const std::uint8_t* src, std::uint8_t* dst,
             std::size_t n) {
  // Dispatch to the active kernel tier (table-blocked / PSHUFB nibble
  // tables; every tier is bit-exact against the scalar reference).
  active_kernel().gf256_mul_add(c, src, dst, n);
}

}  // namespace vdc::parity::gf256
