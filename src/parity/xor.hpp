#pragma once
// Blocked XOR primitives — the inner loop of diskless checkpointing.
//
// The paper's Section V-B performance argument leans on "an in-memory XOR
// operation is orders-of-magnitude faster than a disk write of the same
// size"; bench/xor_vs_disk measures exactly this routine. xor_into routes
// through the runtime-dispatched kernel tiers (parity/kernels.hpp):
// word-blocked by default, AVX2/NEON when the CPU supports them, scalar as
// the always-available reference — all bit-exact, any buffer size.

#include <cstddef>
#include <span>
#include <vector>

namespace vdc::parity {

/// dst ^= src, element-wise. Sizes must match.
void xor_into(std::span<std::byte> dst, std::span<const std::byte> src);

/// XOR of all sources (at least one); result sized to the longest source,
/// shorter sources are treated as zero-padded.
std::vector<std::byte> xor_all(
    std::span<const std::span<const std::byte>> sources);

/// True if every byte is zero (used to verify parity identities).
bool all_zero(std::span<const std::byte> data);

}  // namespace vdc::parity
