#include "parity/reed_solomon.hpp"

#include <vector>

#include "parity/gf256.hpp"
#include "parity/parallel.hpp"

namespace vdc::parity {

ReedSolomonCodec::ReedSolomonCodec(std::size_t k, std::size_t m)
    : k_(k), m_(m) {
  VDC_REQUIRE(k >= 1, "RS needs at least one data block");
  VDC_REQUIRE(m >= 1, "RS needs at least one parity block");
  VDC_REQUIRE(k + m <= 256, "RS over GF(256) supports k + m <= 256");
}

std::uint8_t ReedSolomonCodec::coefficient(std::size_t j,
                                           std::size_t i) const {
  VDC_ASSERT(j < m_ && i < k_);
  // Cauchy: x_j = j, y_i = m + i — all 2 elements distinct, x_j + y_i != 0.
  const auto x = static_cast<std::uint8_t>(j);
  const auto y = static_cast<std::uint8_t>(m_ + i);
  return gf256::inv(gf256::add(x, y));
}

std::vector<Block> ReedSolomonCodec::encode(
    std::span<const BlockView> data) const {
  VDC_REQUIRE(data.size() == k_, "encode: wrong number of data blocks");
  const std::size_t size = data.front().size();
  for (const auto& d : data)
    VDC_REQUIRE(d.size() == size, "encode: block size mismatch");

  std::vector<Block> parity(m_, Block(size, std::byte{0}));
  for (std::size_t j = 0; j < m_; ++j) {
    auto* dst = reinterpret_cast<std::uint8_t*>(parity[j].data());
    for (std::size_t i = 0; i < k_; ++i) {
      const auto* src =
          reinterpret_cast<const std::uint8_t*>(data[i].data());
      gf256::mul_add(coefficient(j, i), src, dst, size);
    }
  }
  return parity;
}

std::vector<Block> ReedSolomonCodec::encode_parallel(
    std::span<const BlockView> data, unsigned threads) const {
  VDC_REQUIRE(data.size() == k_, "encode: wrong number of data blocks");
  const std::size_t size = data.front().size();
  for (const auto& d : data)
    VDC_REQUIRE(d.size() == size, "encode: block size mismatch");

  // The generator is applied byte-wise, so sharding the byte range is
  // positional and bit-identical to the serial loop.
  std::vector<Block> parity(m_, Block(size, std::byte{0}));
  parallel_shards(size, threads, [&](std::size_t begin, std::size_t n) {
    for (std::size_t j = 0; j < m_; ++j) {
      auto* dst = reinterpret_cast<std::uint8_t*>(parity[j].data()) + begin;
      for (std::size_t i = 0; i < k_; ++i) {
        const auto* src =
            reinterpret_cast<const std::uint8_t*>(data[i].data()) + begin;
        gf256::mul_add(coefficient(j, i), src, dst, n);
      }
    }
  });
  return parity;
}

void ReedSolomonCodec::reconstruct(
    std::vector<std::optional<Block>>& blocks) const {
  VDC_REQUIRE(blocks.size() == k_ + m_, "reconstruct: wrong stripe width");

  std::vector<std::size_t> erased, present;
  std::size_t size = 0;
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    if (!blocks[i]) {
      erased.push_back(i);
    } else {
      if (size == 0) size = blocks[i]->size();
      VDC_REQUIRE(blocks[i]->size() == size,
                  "reconstruct: block size mismatch");
      present.push_back(i);
    }
  }
  if (erased.empty()) return;
  if (erased.size() > m_)
    throw DataLossError("RS cannot correct more erasures than parity rows");
  VDC_REQUIRE(size > 0, "reconstruct: no surviving block to size from");

  // Row of the full generator [I; A] for stripe slot `r`.
  const auto generator_row = [&](std::size_t r, std::vector<std::uint8_t>& row) {
    row.assign(k_, 0);
    if (r < k_) {
      row[r] = 1;
    } else {
      for (std::size_t i = 0; i < k_; ++i) row[i] = coefficient(r - k_, i);
    }
  };

  // Solve G_sub * data = survivors for the data blocks, using the first k
  // surviving slots. Build [G_sub | I] and Gauss-Jordan to get inv(G_sub).
  VDC_ASSERT(present.size() >= k_);
  std::vector<std::vector<std::uint8_t>> a(k_);
  std::vector<std::vector<std::uint8_t>> invm(
      k_, std::vector<std::uint8_t>(k_, 0));
  for (std::size_t r = 0; r < k_; ++r) {
    generator_row(present[r], a[r]);
    invm[r][r] = 1;
  }
  for (std::size_t col = 0; col < k_; ++col) {
    // Pivot: the Cauchy structure guarantees a nonzero pivot exists.
    std::size_t pivot = col;
    while (pivot < k_ && a[pivot][col] == 0) ++pivot;
    VDC_ASSERT_MSG(pivot < k_, "RS generator submatrix is singular");
    std::swap(a[pivot], a[col]);
    std::swap(invm[pivot], invm[col]);
    const std::uint8_t d = gf256::inv(a[col][col]);
    for (std::size_t c = 0; c < k_; ++c) {
      a[col][c] = gf256::mul(a[col][c], d);
      invm[col][c] = gf256::mul(invm[col][c], d);
    }
    for (std::size_t r = 0; r < k_; ++r) {
      if (r == col || a[r][col] == 0) continue;
      const std::uint8_t f = a[r][col];
      for (std::size_t c = 0; c < k_; ++c) {
        a[r][c] = gf256::sub(a[r][c], gf256::mul(f, a[col][c]));
        invm[r][c] = gf256::sub(invm[r][c], gf256::mul(f, invm[col][c]));
      }
    }
  }

  // data_i = sum_r inv[i][r] * survivor_r.
  std::vector<Block> data(k_, Block(size, std::byte{0}));
  for (std::size_t i = 0; i < k_; ++i) {
    auto* dst = reinterpret_cast<std::uint8_t*>(data[i].data());
    for (std::size_t r = 0; r < k_; ++r) {
      const auto* src =
          reinterpret_cast<const std::uint8_t*>(blocks[present[r]]->data());
      gf256::mul_add(invm[i][r], src, dst, size);
    }
  }

  // Fill in the erased slots (data directly; parity by re-encoding).
  std::vector<BlockView> views(data.begin(), data.end());
  std::vector<Block> parity;  // lazily computed
  for (std::size_t e : erased) {
    if (e < k_) {
      blocks[e] = data[e];
    } else {
      if (parity.empty()) parity = encode(views);
      blocks[e] = parity[e - k_];
    }
  }
}

}  // namespace vdc::parity
