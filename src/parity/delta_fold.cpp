#include "parity/delta_fold.hpp"

#include <algorithm>

#include "parity/gf256.hpp"

namespace vdc::parity {

DeltaFolder::DeltaFolder(Scheme scheme, std::size_t k, std::size_t rs_m,
                         Bytes block_size)
    : scheme_(scheme), block_size_(block_size) {
  if (scheme == Scheme::Rs)
    rs_ = std::make_shared<ReedSolomonCodec>(k, rs_m);
  else if (scheme == Scheme::Rdp)
    rdp_ = std::make_shared<RdpCodec>(
        k, RdpCodec::next_prime_at_least(std::max<std::size_t>(k + 1, 3)));
}

Bytes DeltaFolder::fold(std::size_t hi, std::size_t mi, std::size_t offset,
                        std::span<const std::byte> data, Block& block) const {
  Bytes folded = 0;
  for_each_range(
      hi, mi, offset, data.size(),
      [&](std::size_t dst, std::size_t src, std::size_t len,
          std::uint8_t coeff) {
        VDC_ASSERT(dst + len <= block.size());
        gf256::mul_add(coeff,
                       reinterpret_cast<const std::uint8_t*>(data.data() + src),
                       reinterpret_cast<std::uint8_t*>(block.data() + dst),
                       len);
        folded += len;
      });
  return folded;
}

}  // namespace vdc::parity
