#pragma once
// GF(2^8) arithmetic for Reed-Solomon coding.
//
// Field: GF(256) with the AES/Rijndael-compatible primitive polynomial
// x^8 + x^4 + x^3 + x^2 + 1 (0x11d) and generator 2. Multiplication and
// inversion go through exp/log tables built once at startup.

#include <array>
#include <cstdint>

#include "common/assert.hpp"

namespace vdc::parity::gf256 {

namespace detail {
struct Tables {
  std::array<std::uint8_t, 512> exp{};  // doubled to skip a mod in mul
  std::array<std::uint8_t, 256> log{};
  Tables();
};
const Tables& tables();
}  // namespace detail

inline std::uint8_t add(std::uint8_t a, std::uint8_t b) { return a ^ b; }
inline std::uint8_t sub(std::uint8_t a, std::uint8_t b) { return a ^ b; }

inline std::uint8_t mul(std::uint8_t a, std::uint8_t b) {
  if (a == 0 || b == 0) return 0;
  const auto& t = detail::tables();
  return t.exp[t.log[a] + t.log[b]];
}

inline std::uint8_t inv(std::uint8_t a) {
  VDC_ASSERT_MSG(a != 0, "GF(256) inverse of zero");
  const auto& t = detail::tables();
  return t.exp[255 - t.log[a]];
}

inline std::uint8_t div(std::uint8_t a, std::uint8_t b) {
  VDC_ASSERT_MSG(b != 0, "GF(256) division by zero");
  if (a == 0) return 0;
  const auto& t = detail::tables();
  return t.exp[t.log[a] + 255 - t.log[b]];
}

inline std::uint8_t pow(std::uint8_t a, unsigned e) {
  if (e == 0) return 1;
  if (a == 0) return 0;
  const auto& t = detail::tables();
  return t.exp[(static_cast<unsigned>(t.log[a]) * e) % 255];
}

/// dst[i] ^= c * src[i] — the RS inner loop. Routes through the active
/// kernel tier (parity/kernels.hpp): per-coefficient product table on the
/// blocked tier, PSHUFB/TBL nibble tables on AVX2/NEON, all bit-exact
/// against the scalar table walk.
void mul_add(std::uint8_t c, const std::uint8_t* src, std::uint8_t* dst,
             std::size_t n);

}  // namespace vdc::parity::gf256
