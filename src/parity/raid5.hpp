#pragma once
// RAID-5-style single XOR parity over k checkpoint blocks.
//
// This is the code the paper's DVDC scheme uses: the parity holder of a
// RAID group keeps P = C_1 xor ... xor C_k, and any single lost block
// (data or parity) is the XOR of the survivors. It also supports
// incremental updates: when one member ships a delta d = C_new xor C_old,
// the holder applies P ^= d without touching the other members — which is
// what makes incremental diskless checkpointing cheap.

#include "parity/codec.hpp"

namespace vdc::parity {

class Raid5Codec final : public GroupCodec {
 public:
  /// k data blocks, one parity block, tolerates one erasure.
  explicit Raid5Codec(std::size_t k);

  std::size_t data_blocks() const override { return k_; }
  std::size_t parity_blocks() const override { return 1; }
  std::size_t fault_tolerance() const override { return 1; }

  std::vector<Block> encode(std::span<const BlockView> data) const override;
  std::vector<Block> encode_parallel(std::span<const BlockView> data,
                                     unsigned threads) const override;
  void reconstruct(std::vector<std::optional<Block>>& blocks) const override;

  /// In-place parity refresh for one changed member:
  /// parity ^= (old_block xor new_block). All sizes must match.
  static void apply_delta(Block& parity, BlockView old_block,
                          BlockView new_block);

 private:
  std::size_t k_;
};

}  // namespace vdc::parity
