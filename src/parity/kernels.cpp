#include "parity/kernels.hpp"

#include <array>
#include <atomic>
#include <cstdlib>
#include <cstring>

#include "common/assert.hpp"
#include "common/env.hpp"
#include "common/log.hpp"
#include "parity/gf256.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define VDC_KERNELS_X86 1
#endif
#if defined(__aarch64__)
#include <arm_neon.h>
#define VDC_KERNELS_NEON 1
#endif

namespace vdc::parity {

namespace {

// --- scalar tier: the equivalence reference -------------------------------

void scalar_xor(std::byte* dst, const std::byte* src, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] ^= src[i];
}

void scalar_mul_add(std::uint8_t c, const std::uint8_t* src,
                    std::uint8_t* dst, std::size_t n) {
  if (c == 0) return;
  if (c == 1) {
    for (std::size_t i = 0; i < n; ++i) dst[i] ^= src[i];
    return;
  }
  const auto& t = gf256::detail::tables();
  const unsigned lc = t.log[c];
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint8_t s = src[i];
    if (s != 0) dst[i] ^= t.exp[lc + t.log[s]];
  }
}

// --- blocked tier: portable word-at-a-time --------------------------------

void blocked_xor(std::byte* dst, const std::byte* src, std::size_t n) {
  std::size_t i = 0;
  // memcpy in/out keeps this free of alignment UB; compilers turn the
  // 8-byte memcpys into plain loads/stores.
  constexpr std::size_t kWord = sizeof(std::uint64_t);
  for (; i + 4 * kWord <= n; i += 4 * kWord) {
    std::uint64_t a[4], b[4];
    std::memcpy(a, dst + i, sizeof a);
    std::memcpy(b, src + i, sizeof b);
    a[0] ^= b[0];
    a[1] ^= b[1];
    a[2] ^= b[2];
    a[3] ^= b[3];
    std::memcpy(dst + i, a, sizeof a);
  }
  for (; i + kWord <= n; i += kWord) {
    std::uint64_t a, b;
    std::memcpy(&a, dst + i, kWord);
    std::memcpy(&b, src + i, kWord);
    a ^= b;
    std::memcpy(dst + i, &a, kWord);
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

// Full 256-entry product table for one coefficient. table[0] == 0, so the
// zero-byte skip of the scalar tier is implicit — results stay bit-exact.
std::array<std::uint8_t, 256> product_table(std::uint8_t c) {
  std::array<std::uint8_t, 256> table{};
  const auto& t = gf256::detail::tables();
  const unsigned lc = t.log[c];
  for (unsigned s = 1; s < 256; ++s)
    table[s] = t.exp[lc + t.log[static_cast<std::uint8_t>(s)]];
  return table;
}

void blocked_mul_add(std::uint8_t c, const std::uint8_t* src,
                     std::uint8_t* dst, std::size_t n) {
  if (c == 0) return;
  if (c == 1) {
    blocked_xor(reinterpret_cast<std::byte*>(dst),
                reinterpret_cast<const std::byte*>(src), n);
    return;
  }
  const auto table = product_table(c);
  for (std::size_t i = 0; i < n; ++i) dst[i] ^= table[src[i]];
}

// The two 16-entry nibble tables behind the SIMD GF(256) multiply: the
// product of c with byte s decomposes as c*(s & 0x0f) ^ c*(s & 0xf0),
// each factor a 16-way lookup (ISA-L's gf_vect_mul layout).
struct NibbleTables {
  std::uint8_t lo[16];
  std::uint8_t hi[16];
};

NibbleTables nibble_tables(std::uint8_t c) {
  NibbleTables t{};
  for (unsigned i = 0; i < 16; ++i) {
    t.lo[i] = gf256::mul(c, static_cast<std::uint8_t>(i));
    t.hi[i] = gf256::mul(c, static_cast<std::uint8_t>(i << 4));
  }
  return t;
}

// --- AVX2 tier -------------------------------------------------------------

#ifdef VDC_KERNELS_X86

__attribute__((target("avx2"))) void avx2_xor(std::byte* dst,
                                              const std::byte* src,
                                              std::size_t n) {
  std::size_t i = 0;
  for (; i + 128 <= n; i += 128) {
    for (std::size_t v = 0; v < 128; v += 32) {
      const __m256i a = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(dst + i + v));
      const __m256i b = _mm256_loadu_si256(
          reinterpret_cast<const __m256i*>(src + i + v));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i + v),
                          _mm256_xor_si256(a, b));
    }
  }
  for (; i + 32 <= n; i += 32) {
    const __m256i a =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i b =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(a, b));
  }
  if (i < n) blocked_xor(dst + i, src + i, n - i);
}

__attribute__((target("avx2"))) void avx2_mul_add(std::uint8_t c,
                                                  const std::uint8_t* src,
                                                  std::uint8_t* dst,
                                                  std::size_t n) {
  if (c == 0) return;
  if (c == 1) {
    avx2_xor(reinterpret_cast<std::byte*>(dst),
             reinterpret_cast<const std::byte*>(src), n);
    return;
  }
  const NibbleTables nt = nibble_tables(c);
  const __m256i lo = _mm256_broadcastsi128_si256(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(nt.lo)));
  const __m256i hi = _mm256_broadcastsi128_si256(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(nt.hi)));
  const __m256i mask = _mm256_set1_epi8(0x0f);
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    const __m256i s =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    const __m256i d =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i sl = _mm256_and_si256(s, mask);
    const __m256i sh = _mm256_and_si256(_mm256_srli_epi16(s, 4), mask);
    const __m256i prod = _mm256_xor_si256(_mm256_shuffle_epi8(lo, sl),
                                          _mm256_shuffle_epi8(hi, sh));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(d, prod));
  }
  if (i < n) blocked_mul_add(c, src + i, dst + i, n - i);
}

bool avx2_supported() { return __builtin_cpu_supports("avx2") != 0; }

#endif  // VDC_KERNELS_X86

// --- NEON tier -------------------------------------------------------------

#ifdef VDC_KERNELS_NEON

void neon_xor(std::byte* dst, const std::byte* src, std::size_t n) {
  std::size_t i = 0;
  auto* d = reinterpret_cast<std::uint8_t*>(dst);
  const auto* s = reinterpret_cast<const std::uint8_t*>(src);
  for (; i + 64 <= n; i += 64) {
    for (std::size_t v = 0; v < 64; v += 16)
      vst1q_u8(d + i + v, veorq_u8(vld1q_u8(d + i + v), vld1q_u8(s + i + v)));
  }
  for (; i + 16 <= n; i += 16)
    vst1q_u8(d + i, veorq_u8(vld1q_u8(d + i), vld1q_u8(s + i)));
  if (i < n) blocked_xor(dst + i, src + i, n - i);
}

void neon_mul_add(std::uint8_t c, const std::uint8_t* src, std::uint8_t* dst,
                  std::size_t n) {
  if (c == 0) return;
  if (c == 1) {
    neon_xor(reinterpret_cast<std::byte*>(dst),
             reinterpret_cast<const std::byte*>(src), n);
    return;
  }
  const NibbleTables nt = nibble_tables(c);
  const uint8x16_t lo = vld1q_u8(nt.lo);
  const uint8x16_t hi = vld1q_u8(nt.hi);
  const uint8x16_t mask = vdupq_n_u8(0x0f);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const uint8x16_t s = vld1q_u8(src + i);
    const uint8x16_t d = vld1q_u8(dst + i);
    const uint8x16_t prod =
        veorq_u8(vqtbl1q_u8(lo, vandq_u8(s, mask)),
                 vqtbl1q_u8(hi, vshrq_n_u8(s, 4)));
    vst1q_u8(dst + i, veorq_u8(d, prod));
  }
  if (i < n) blocked_mul_add(c, src + i, dst + i, n - i);
}

#endif  // VDC_KERNELS_NEON

// --- registry / dispatch ---------------------------------------------------

constexpr KernelOps kScalarOps{KernelTier::Scalar, "scalar", scalar_xor,
                               scalar_mul_add};
constexpr KernelOps kBlockedOps{KernelTier::Blocked, "blocked", blocked_xor,
                                blocked_mul_add};
#ifdef VDC_KERNELS_X86
constexpr KernelOps kAvx2Ops{KernelTier::Avx2, "avx2", avx2_xor,
                             avx2_mul_add};
#endif
#ifdef VDC_KERNELS_NEON
constexpr KernelOps kNeonOps{KernelTier::Neon, "neon", neon_xor,
                             neon_mul_add};
#endif

const KernelOps* find_ops(KernelTier tier) {
  switch (tier) {
    case KernelTier::Scalar:
      return &kScalarOps;
    case KernelTier::Blocked:
      return &kBlockedOps;
    case KernelTier::Avx2:
#ifdef VDC_KERNELS_X86
      if (avx2_supported()) return &kAvx2Ops;
#endif
      return nullptr;
    case KernelTier::Neon:
#ifdef VDC_KERNELS_NEON
      return &kNeonOps;
#else
      return nullptr;
#endif
  }
  return nullptr;
}

const KernelOps& resolve_initial() {
  // Validated knob: a misspelt tier ("avx", "sse") warns and keeps auto
  // selection instead of silently running the scalar reference.
  if (const auto env = env::enum_knob(
          "VDC_PARITY_KERNEL", {"scalar", "blocked", "avx2", "neon", "auto"})) {
    if (*env != "auto") {
      if (const auto tier = parse_tier(*env))
        if (const KernelOps* ops = find_ops(*tier)) return *ops;
      // Valid name, unsupported here (e.g. VDC_PARITY_KERNEL=neon on
      // x86): fall through to auto rather than crash the run.
      VDC_WARN("parity", "VDC_PARITY_KERNEL=", *env,
               " unsupported on this machine; using auto selection");
    }
  }
  return kernel_for(supported_tiers().back());
}

std::atomic<const KernelOps*>& active_slot() {
  static std::atomic<const KernelOps*> slot{&resolve_initial()};
  return slot;
}

}  // namespace

const std::vector<KernelTier>& supported_tiers() {
  static const std::vector<KernelTier> tiers = [] {
    std::vector<KernelTier> out{KernelTier::Scalar, KernelTier::Blocked};
    if (find_ops(KernelTier::Avx2) != nullptr)
      out.push_back(KernelTier::Avx2);
    if (find_ops(KernelTier::Neon) != nullptr)
      out.push_back(KernelTier::Neon);
    return out;
  }();
  return tiers;
}

bool tier_supported(KernelTier tier) { return find_ops(tier) != nullptr; }

const KernelOps& kernel_for(KernelTier tier) {
  const KernelOps* ops = find_ops(tier);
  VDC_REQUIRE(ops != nullptr, "parity kernel tier unsupported on this CPU");
  return *ops;
}

const KernelOps& active_kernel() {
  return *active_slot().load(std::memory_order_relaxed);
}

void set_active_tier(KernelTier tier) {
  active_slot().store(&kernel_for(tier), std::memory_order_relaxed);
}

const char* tier_name(KernelTier tier) {
  switch (tier) {
    case KernelTier::Scalar:
      return "scalar";
    case KernelTier::Blocked:
      return "blocked";
    case KernelTier::Avx2:
      return "avx2";
    case KernelTier::Neon:
      return "neon";
  }
  return "unknown";
}

std::optional<KernelTier> parse_tier(std::string_view name) {
  if (name == "scalar") return KernelTier::Scalar;
  if (name == "blocked") return KernelTier::Blocked;
  if (name == "avx2") return KernelTier::Avx2;
  if (name == "neon") return KernelTier::Neon;
  return std::nullopt;
}

}  // namespace vdc::parity
