#pragma once
// Row-Diagonal Parity (RDP) — double-erasure protection.
//
// Corbett et al., FAST'04, cited by the paper (via Wang et al.) as the
// natural upgrade from single XOR parity: two parity blocks per group
// tolerate any two simultaneous block losses, covering correlated
// double-node failures that defeat RAID-5-style DVDC.
//
// Layout for prime p: a stripe has p+1 columns of p-1 rows each —
//   columns 0..k-1   : data (k <= p-1; missing data columns are zero)
//   column  p-1      : row parity     (XOR across each row)
//   column  p        : diagonal parity; diagonal d in {0..p-2} collects the
//                      cells (r, c) with (r + c) mod p == d over columns
//                      0..p-1. Each diagonal misses exactly one column
//                      ((d+1) mod p), and diagonal p-1 is not stored — that
//                      asymmetry is what makes two-erasure recovery chains
//                      terminate.
//
// Reconstruction here is a peeling decoder over the row and diagonal
// equations: repeatedly find an equation with exactly one unknown cell and
// solve it. For any <= 2 erased columns this recovers everything (the tests
// verify all erasure pairs exhaustively for several primes).

#include <functional>

#include "parity/codec.hpp"

namespace vdc::parity {

class RdpCodec final : public GroupCodec {
 public:
  /// `k` data blocks protected with prime parameter `p` (k <= p-1).
  /// Block sizes must be multiples of (p-1).
  RdpCodec(std::size_t k, std::size_t p);

  std::size_t data_blocks() const override { return k_; }
  std::size_t parity_blocks() const override { return 2; }
  std::size_t fault_tolerance() const override { return 2; }
  std::size_t block_granularity() const override { return p_ - 1; }

  std::size_t prime() const { return p_; }

  std::vector<Block> encode(std::span<const BlockView> data) const override;
  void reconstruct(std::vector<std::optional<Block>>& blocks) const override;

  /// Small-write support: visit every parity byte range that changes when
  /// data column `column` changes over [offset, offset+length) of a
  /// `block_size`-byte stripe. XORing the column's delta (old^new) into
  /// each visited range updates both parity blocks exactly — encode is
  /// GF(2)-linear, so encode(new) == encode(old) ^ encode(delta), and the
  /// delta of one column decomposes into per-row-slice XORs:
  ///
  ///   row r of the column  -> row parity, row r            (always)
  ///                        -> diagonal (r+column) mod p    (unless p-1,
  ///                           the unstored diagonal)
  ///                        -> diagonal r-1, via the row-parity column's
  ///                           own diagonal membership      (unless r==0,
  ///                           whose rp row sits on diagonal p-1)
  ///
  /// `fn(parity, dst_offset, src_offset, len)` receives ranges with
  /// parity 0 = row parity, 1 = diagonal parity; src_offset is relative
  /// to the start of the delta (i.e. to `offset`). In-row byte positions
  /// are preserved, so ranges never straddle a row boundary.
  void for_each_update_range(
      std::size_t column, std::size_t offset, std::size_t length,
      std::size_t block_size,
      const std::function<void(std::size_t parity, std::size_t dst_offset,
                               std::size_t src_offset, std::size_t len)>& fn)
      const;

  /// In-place small write: fold `delta` (old^new of data column `column`
  /// over [offset, offset+delta.size())) into the standing parity blocks.
  void update(std::size_t column, std::size_t offset,
              std::span<const std::byte> delta, std::span<std::byte> row_parity,
              std::span<std::byte> diag_parity) const;

  /// Smallest prime >= max(n+1, 3); used to pick p for a group of n VMs.
  static std::size_t next_prime_at_least(std::size_t n);

 private:
  std::size_t k_;  // data columns in use
  std::size_t p_;  // prime parameter
};

}  // namespace vdc::parity
