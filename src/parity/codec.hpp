#pragma once
// Erasure-codec interface for checkpoint RAID groups.
//
// A codec turns k equal-sized data blocks (VM checkpoint images) into m
// parity blocks, and reconstructs erased blocks from the survivors. The
// paper's scheme is single XOR parity (RAID-5-like, m = 1); the RDP codec
// (m = 2) implements the double-erasure extension the paper cites from
// Wang et al.

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "common/assert.hpp"

namespace vdc::parity {

using Block = std::vector<std::byte>;
using BlockView = std::span<const std::byte>;

class GroupCodec {
 public:
  virtual ~GroupCodec() = default;

  /// Number of data blocks per stripe (k).
  virtual std::size_t data_blocks() const = 0;
  /// Number of parity blocks per stripe (m).
  virtual std::size_t parity_blocks() const = 0;
  /// Maximum number of simultaneous erasures survivable.
  virtual std::size_t fault_tolerance() const = 0;

  /// Some codecs require the block size to be a multiple of this.
  virtual std::size_t block_granularity() const { return 1; }

  /// Compute the m parity blocks from exactly k equal-sized data blocks.
  virtual std::vector<Block> encode(
      std::span<const BlockView> data) const = 0;

  /// encode() with the byte ranges fanned out over the shared parity
  /// ThreadPool using up to `threads` workers. Bit-identical to encode();
  /// the default forwards to the serial implementation (codecs whose
  /// layout is not positional over the byte range — e.g. RDP's diagonal
  /// parity — stay serial).
  virtual std::vector<Block> encode_parallel(std::span<const BlockView> data,
                                             unsigned threads) const {
    (void)threads;
    return encode(data);
  }

  /// Rebuild erased entries in place. `blocks` holds k data blocks followed
  /// by m parity blocks; erased positions are nullopt. Throws DataLossError
  /// if the erasure pattern is uncorrectable.
  virtual void reconstruct(
      std::vector<std::optional<Block>>& blocks) const = 0;

  std::size_t total_blocks() const { return data_blocks() + parity_blocks(); }
};

/// Pad `block` with zeros to `size` (checkpoints in one group may differ in
/// size; parity is computed over the zero-padded common size).
inline Block padded_copy(BlockView block, std::size_t size) {
  VDC_ASSERT(block.size() <= size);
  Block out(size, std::byte{0});
  std::copy(block.begin(), block.end(), out.begin());
  return out;
}

/// Smallest size >= `size` that is a multiple of `granularity`.
inline std::size_t round_up(std::size_t size, std::size_t granularity) {
  VDC_ASSERT(granularity > 0);
  return (size + granularity - 1) / granularity * granularity;
}

}  // namespace vdc::parity
