#include "parity/raid5.hpp"

#include "parity/parallel.hpp"
#include "parity/xor.hpp"

namespace vdc::parity {

Raid5Codec::Raid5Codec(std::size_t k) : k_(k) {
  VDC_REQUIRE(k >= 1, "RAID-5 group needs at least one data block");
}

std::vector<Block> Raid5Codec::encode(std::span<const BlockView> data) const {
  VDC_REQUIRE(data.size() == k_, "encode: wrong number of data blocks");
  const std::size_t size = data.front().size();
  for (const auto& d : data)
    VDC_REQUIRE(d.size() == size, "encode: block size mismatch");

  Block parity(size, std::byte{0});
  for (const auto& d : data) xor_into(parity, d);
  return {std::move(parity)};
}

std::vector<Block> Raid5Codec::encode_parallel(std::span<const BlockView> data,
                                               unsigned threads) const {
  VDC_REQUIRE(data.size() == k_, "encode: wrong number of data blocks");
  const std::size_t size = data.front().size();
  for (const auto& d : data)
    VDC_REQUIRE(d.size() == size, "encode: block size mismatch");
  return {parallel_xor_all(data, threads)};
}

void Raid5Codec::reconstruct(
    std::vector<std::optional<Block>>& blocks) const {
  VDC_REQUIRE(blocks.size() == k_ + 1, "reconstruct: wrong stripe width");

  std::size_t erased = 0, erased_at = 0, size = 0;
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    if (!blocks[i]) {
      ++erased;
      erased_at = i;
    } else {
      if (size == 0) size = blocks[i]->size();
      VDC_REQUIRE(blocks[i]->size() == size,
                  "reconstruct: block size mismatch");
    }
  }
  if (erased == 0) return;
  if (erased > 1)
    throw DataLossError(
        "RAID-5 parity cannot correct more than one erasure per group");

  Block rebuilt(size, std::byte{0});
  for (std::size_t i = 0; i < blocks.size(); ++i)
    if (i != erased_at) xor_into(rebuilt, *blocks[i]);
  blocks[erased_at] = std::move(rebuilt);
}

void Raid5Codec::apply_delta(Block& parity, BlockView old_block,
                             BlockView new_block) {
  VDC_REQUIRE(old_block.size() == new_block.size(),
              "apply_delta: old/new size mismatch");
  VDC_REQUIRE(parity.size() >= new_block.size(),
              "apply_delta: delta larger than parity");
  xor_into(std::span<std::byte>(parity.data(), old_block.size()), old_block);
  xor_into(std::span<std::byte>(parity.data(), new_block.size()), new_block);
}

}  // namespace vdc::parity
