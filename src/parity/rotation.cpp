#include "parity/rotation.hpp"

#include <algorithm>
#include <limits>

namespace vdc::parity {

double RotationLedger::imbalance() const {
  if (counts_.empty()) return 1.0;
  const auto [lo, hi] = std::minmax_element(counts_.begin(), counts_.end());
  if (*hi == 0) return 1.0;
  if (*lo == 0) return std::numeric_limits<double>::infinity();
  return static_cast<double>(*hi) / static_cast<double>(*lo);
}

}  // namespace vdc::parity
