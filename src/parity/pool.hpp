#pragma once
// Persistent worker pool for the parity kernels.
//
// The parallel XOR/GF(256) kernels used to spawn fresh std::threads on
// every call; on the epoch hot path that launch cost dominates small
// shards. This pool keeps the workers alive across calls: run(n, fn)
// executes fn(0..n-1) with the caller participating as one worker, and
// blocks until every task has finished. Tasks are claimed from a shared
// atomic cursor, so any worker count yields the same per-task results.
//
// run() is not reentrant: a run() issued while another job is active
// (including from inside a task) simply executes serially on the calling
// thread, so nested use is safe but unaccelerated.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace vdc::parity {

class ThreadPool {
 public:
  /// A pool that runs jobs on `workers` threads total (the caller counts
  /// as one; `workers - 1` background threads are spawned).
  explicit ThreadPool(unsigned workers);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned worker_count() const {
    return static_cast<unsigned>(threads_.size()) + 1;
  }

  /// Execute fn(i) for every i in [0, tasks); returns once all are done.
  /// Tasks must not throw.
  void run(std::size_t tasks, const std::function<void(std::size_t)>& fn);

  /// Process-wide pool sized by default_parity_threads(), built lazily.
  static ThreadPool& shared();

 private:
  struct Job {
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t tasks = 0;
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> remaining{0};
  };

  void worker_loop();
  void drain(Job& job);

  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::shared_ptr<Job> current_;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace vdc::parity
