#pragma once
// Thread-parallel parity kernels.
//
// Checkpoint images are hundreds of MiB to GiB; a parity holder that XORs
// them on one core leaves the epoch's critical path longer than it needs
// to be. These kernels split the buffers into contiguous shards and fan
// them out over the persistent ThreadPool (the operations are
// embarrassingly parallel over disjoint byte ranges). Results are
// bit-identical to the serial kernels; tests verify across thread counts.

#include <cstddef>
#include <functional>
#include <span>
#include <vector>

#include "parity/codec.hpp"

namespace vdc::parity {

/// dst ^= src using up to `threads` workers (1 = serial xor_into).
void parallel_xor_into(std::span<std::byte> dst,
                       std::span<const std::byte> src,
                       unsigned threads);

/// XOR-reduce `sources` (equal sizes) into a fresh block, sharded across
/// up to `threads` workers.
Block parallel_xor_all(std::span<const BlockView> sources,
                       unsigned threads);

/// Run fn(shard_begin, shard_size) over [0, total) on up to `threads`
/// workers of the shared ThreadPool. Shards are contiguous, disjoint, and
/// at least 256 KiB (small inputs run serially), so any positional kernel
/// stays bit-identical to its serial form. Blocks until every shard is
/// done.
void parallel_shards(std::size_t total, unsigned threads,
                     const std::function<void(std::size_t, std::size_t)>& fn);

/// A sensible worker count for this machine (hardware_concurrency,
/// clamped to [1, 16]).
unsigned default_parity_threads();

}  // namespace vdc::parity
