#pragma once
// Parity-delta folding: route a member's x = old^new byte range to the
// holder-block ranges it updates, per erasure scheme.
//
// RAID-5 and Reed-Solomon are per-byte linear with an identity byte map, so
// a member range folds into the same range of every holder (scaled by the
// Cauchy coefficient for RS). RDP is also per-byte linear but permutes
// bytes across the row/diagonal parity cells; for_each_update_range splits
// a member range into the destination segments. Because every scheme is
// per-byte linear, folding a range in arbitrary sub-range order (e.g. as
// literal runs arrive from the wire) yields byte-identical parity.
//
// Extracted from the DVDC protocol so the streaming ingest plane and its
// tests/benchmarks can fold without dragging in the coordinator.

#include <cstdint>
#include <memory>
#include <span>

#include "common/assert.hpp"
#include "common/units.hpp"
#include "parity/codec.hpp"
#include "parity/rdp.hpp"
#include "parity/reed_solomon.hpp"

namespace vdc::parity {

class DeltaFolder {
 public:
  static DeltaFolder raid5(Bytes block_size) {
    return DeltaFolder(Scheme::Raid5, 0, 0, block_size);
  }
  static DeltaFolder rs(std::size_t k, std::size_t m, Bytes block_size) {
    return DeltaFolder(Scheme::Rs, k, m, block_size);
  }
  static DeltaFolder rdp(std::size_t k, Bytes block_size) {
    return DeltaFolder(Scheme::Rdp, k, 0, block_size);
  }

  /// fn(dst_off, src_off, len, coeff): the pieces of member `mi`'s delta
  /// over [offset, offset+length) that land in holder `hi`'s block.
  template <typename Fn>
  void for_each_range(std::size_t hi, std::size_t mi, std::size_t offset,
                      std::size_t length, Fn&& fn) const {
    switch (scheme_) {
      case Scheme::Raid5:
        fn(offset, std::size_t{0}, length, std::uint8_t{1});
        return;
      case Scheme::Rs:
        fn(offset, std::size_t{0}, length, rs_->coefficient(hi, mi));
        return;
      case Scheme::Rdp:
        rdp_->for_each_update_range(
            mi, offset, length, block_size_,
            [&](std::size_t parity, std::size_t dst, std::size_t src,
                std::size_t len) {
              if (parity == hi) fn(dst, src, len, std::uint8_t{1});
            });
        return;
    }
    throw InvariantError("unknown parity scheme");
  }

  /// Fold `data` (old^new of member `mi` at `offset`) into holder `hi`'s
  /// block; returns the destination bytes written.
  Bytes fold(std::size_t hi, std::size_t mi, std::size_t offset,
             std::span<const std::byte> data, Block& block) const;

 private:
  enum class Scheme { Raid5, Rs, Rdp };

  DeltaFolder(Scheme scheme, std::size_t k, std::size_t rs_m,
              Bytes block_size);

  Scheme scheme_;
  Bytes block_size_;
  std::shared_ptr<const ReedSolomonCodec> rs_;
  std::shared_ptr<const RdpCodec> rdp_;
};

}  // namespace vdc::parity
