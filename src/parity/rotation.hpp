#pragma once
// RAID-5-style rotation of the parity role.
//
// Classic RAID-5 rotates which disk holds parity per stripe so that parity
// I/O is spread evenly; DVDC does the same with *nodes*: which node holds a
// group's parity rotates per group and per checkpoint epoch, so the XOR
// work and the fan-in traffic are distributed instead of pinned to a
// dedicated checkpoint node (Figure 3 vs. Figure 4 of the paper).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/assert.hpp"

namespace vdc::parity {

class ParityRotation {
 public:
  /// Left-symmetric rotation: for `group` at `epoch`, pick an index into
  /// the group's ordered list of `eligible` holders.
  static std::size_t holder_index(std::size_t group, std::uint64_t epoch,
                                  std::size_t eligible) {
    VDC_ASSERT(eligible > 0);
    return static_cast<std::size_t>((group + epoch) % eligible);
  }
};

/// Tracks how many times each holder was assigned parity duty, to verify
/// the even-spread property (used by tests and the parity_scaling bench).
class RotationLedger {
 public:
  explicit RotationLedger(std::size_t holders) : counts_(holders, 0) {}

  void record(std::size_t holder) { ++counts_.at(holder); }

  std::uint64_t count(std::size_t holder) const { return counts_.at(holder); }
  std::uint64_t total() const {
    std::uint64_t t = 0;
    for (auto c : counts_) t += c;
    return t;
  }

  /// max/min assignment ratio (1.0 = perfectly even). Holders with zero
  /// assignments make this infinite unless everything is zero.
  double imbalance() const;

 private:
  std::vector<std::uint64_t> counts_;
};

}  // namespace vdc::parity
