#include "parity/parallel.hpp"

#include <algorithm>
#include <thread>

#include "parity/pool.hpp"
#include "parity/xor.hpp"

namespace vdc::parity {

namespace {

// Shards below this size are not worth fanning out.
constexpr std::size_t kMinShard = 256 * 1024;

}  // namespace

unsigned default_parity_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::clamp(hw, 1u, 16u);
}

void parallel_shards(std::size_t total, unsigned threads,
                     const std::function<void(std::size_t, std::size_t)>& fn) {
  const std::size_t max_shards =
      std::max<std::size_t>(1, total / kMinShard);
  const std::size_t n =
      std::min<std::size_t>(std::max(1u, threads), max_shards);
  if (n == 1) {
    fn(0, total);
    return;
  }
  const std::size_t chunk = (total + n - 1) / n;
  ThreadPool::shared().run(n, [&](std::size_t i) {
    const std::size_t begin = i * chunk;
    if (begin >= total) return;
    fn(begin, std::min(chunk, total - begin));
  });
}

void parallel_xor_into(std::span<std::byte> dst,
                       std::span<const std::byte> src, unsigned threads) {
  VDC_ASSERT_MSG(dst.size() == src.size(), "parallel_xor_into size mismatch");
  parallel_shards(dst.size(), threads,
                  [&](std::size_t begin, std::size_t size) {
                    xor_into(dst.subspan(begin, size),
                             src.subspan(begin, size));
                  });
}

Block parallel_xor_all(std::span<const BlockView> sources,
                       unsigned threads) {
  VDC_REQUIRE(!sources.empty(), "parallel_xor_all needs a source");
  const std::size_t size = sources.front().size();
  for (const auto& s : sources)
    VDC_REQUIRE(s.size() == size, "parallel_xor_all size mismatch");

  Block out(size, std::byte{0});
  parallel_shards(size, threads,
                  [&](std::size_t begin, std::size_t shard_size) {
                    std::span<std::byte> dst(out.data() + begin, shard_size);
                    for (const auto& s : sources)
                      xor_into(dst, s.subspan(begin, shard_size));
                  });
  return out;
}

}  // namespace vdc::parity
