#include "parity/parallel.hpp"

#include <algorithm>
#include <thread>

#include "parity/xor.hpp"

namespace vdc::parity {

namespace {

// Shards below this size are not worth a thread launch.
constexpr std::size_t kMinShard = 256 * 1024;

/// Run fn(shard_begin, shard_size) over `total` bytes on up to `threads`
/// workers (the calling thread takes the first shard).
template <typename Fn>
void shard(std::size_t total, unsigned threads, Fn fn) {
  const std::size_t max_shards =
      std::max<std::size_t>(1, total / kMinShard);
  const std::size_t n =
      std::min<std::size_t>(std::max(1u, threads), max_shards);
  if (n == 1) {
    fn(0, total);
    return;
  }
  const std::size_t chunk = (total + n - 1) / n;
  std::vector<std::thread> workers;
  workers.reserve(n - 1);
  for (std::size_t i = 1; i < n; ++i) {
    const std::size_t begin = i * chunk;
    const std::size_t size = std::min(chunk, total - begin);
    if (size == 0) break;
    workers.emplace_back([fn, begin, size] { fn(begin, size); });
  }
  fn(0, std::min(chunk, total));
  for (auto& w : workers) w.join();
}

}  // namespace

unsigned default_parity_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return std::clamp(hw, 1u, 16u);
}

void parallel_xor_into(std::span<std::byte> dst,
                       std::span<const std::byte> src, unsigned threads) {
  VDC_ASSERT_MSG(dst.size() == src.size(), "parallel_xor_into size mismatch");
  shard(dst.size(), threads, [&](std::size_t begin, std::size_t size) {
    xor_into(dst.subspan(begin, size), src.subspan(begin, size));
  });
}

Block parallel_xor_all(std::span<const BlockView> sources,
                       unsigned threads) {
  VDC_REQUIRE(!sources.empty(), "parallel_xor_all needs a source");
  const std::size_t size = sources.front().size();
  for (const auto& s : sources)
    VDC_REQUIRE(s.size() == size, "parallel_xor_all size mismatch");

  Block out(size, std::byte{0});
  shard(size, threads, [&](std::size_t begin, std::size_t shard_size) {
    std::span<std::byte> dst(out.data() + begin, shard_size);
    for (const auto& s : sources)
      xor_into(dst, s.subspan(begin, shard_size));
  });
  return out;
}

}  // namespace vdc::parity
