#include "parity/rdp.hpp"

#include <algorithm>

#include "parity/xor.hpp"

namespace vdc::parity {

namespace {

bool is_prime(std::size_t n) {
  if (n < 2) return false;
  for (std::size_t d = 2; d * d <= n; ++d)
    if (n % d == 0) return false;
  return true;
}

}  // namespace

std::size_t RdpCodec::next_prime_at_least(std::size_t n) {
  std::size_t p = std::max<std::size_t>(n, 3);
  while (!is_prime(p)) ++p;
  return p;
}

RdpCodec::RdpCodec(std::size_t k, std::size_t p) : k_(k), p_(p) {
  VDC_REQUIRE(k >= 1, "RDP group needs at least one data block");
  VDC_REQUIRE(is_prime(p), "RDP parameter p must be prime");
  VDC_REQUIRE(k <= p - 1, "RDP supports at most p-1 data blocks");
}

std::vector<Block> RdpCodec::encode(std::span<const BlockView> data) const {
  VDC_REQUIRE(data.size() == k_, "encode: wrong number of data blocks");
  const std::size_t size = data.front().size();
  VDC_REQUIRE(size > 0, "encode: empty blocks");
  VDC_REQUIRE(size % (p_ - 1) == 0,
              "encode: block size must be a multiple of p-1");
  for (const auto& d : data)
    VDC_REQUIRE(d.size() == size, "encode: block size mismatch");

  const std::size_t rows = p_ - 1;
  const std::size_t row_bytes = size / rows;

  // Row parity: XOR across data columns (virtual columns k..p-2 are zero).
  Block rp(size, std::byte{0});
  for (const auto& d : data) xor_into(rp, d);

  // Diagonal parity. Diagonal d covers cells (r, c) with r = (d - c) mod p
  // over columns c != (d+1) mod p; columns are data 0..p-2 and row parity
  // at column p-1.
  Block dp(size, std::byte{0});
  for (std::size_t d = 0; d < p_ - 1; ++d) {
    std::span<std::byte> dst(dp.data() + d * row_bytes, row_bytes);
    for (std::size_t c = 0; c < p_; ++c) {
      if (c == (d + 1) % p_) continue;
      const std::size_t r = (d + p_ - (c % p_)) % p_;
      VDC_ASSERT(r < rows);
      std::span<const std::byte> src;
      if (c < k_) {
        src = data[c].subspan(r * row_bytes, row_bytes);
      } else if (c == p_ - 1) {
        src = std::span<const std::byte>(rp.data() + r * row_bytes, row_bytes);
      } else {
        continue;  // virtual zero data column
      }
      xor_into(dst, src);
    }
  }
  return {std::move(rp), std::move(dp)};
}

void RdpCodec::for_each_update_range(
    std::size_t column, std::size_t offset, std::size_t length,
    std::size_t block_size,
    const std::function<void(std::size_t parity, std::size_t dst_offset,
                             std::size_t src_offset, std::size_t len)>& fn)
    const {
  VDC_REQUIRE(column < k_, "update: column out of range");
  VDC_REQUIRE(block_size > 0 && block_size % (p_ - 1) == 0,
              "update: block size must be a multiple of p-1");
  VDC_REQUIRE(offset + length <= block_size, "update: range out of bounds");

  const std::size_t rows = p_ - 1;
  const std::size_t row_bytes = block_size / rows;

  std::size_t src = 0;
  std::size_t off = offset;
  std::size_t remaining = length;
  while (remaining > 0) {
    const std::size_t r = off / row_bytes;
    const std::size_t q = off % row_bytes;
    const std::size_t seg = std::min(remaining, row_bytes - q);

    // Row parity takes the delta at the same offset.
    fn(0, off, src, seg);

    // The data cell sits on diagonal (r + column) mod p; diagonal p-1 is
    // not stored. (The per-diagonal column exclusion (d+1) mod p never
    // hits a data cell: it would require r == p-1, an absent row.)
    const std::size_t d_cell = (r + column) % p_;
    if (d_cell != p_ - 1) fn(1, d_cell * row_bytes + q, src, seg);

    // Row parity row r is itself a member of diagonal (r + p-1) mod p =
    // r-1; row 0's contribution lands on the unstored diagonal p-1.
    if (r >= 1) fn(1, (r - 1) * row_bytes + q, src, seg);

    src += seg;
    off += seg;
    remaining -= seg;
  }
}

void RdpCodec::update(std::size_t column, std::size_t offset,
                      std::span<const std::byte> delta,
                      std::span<std::byte> row_parity,
                      std::span<std::byte> diag_parity) const {
  VDC_REQUIRE(row_parity.size() == diag_parity.size(),
              "update: parity size mismatch");
  for_each_update_range(
      column, offset, delta.size(), row_parity.size(),
      [&](std::size_t parity, std::size_t dst_off, std::size_t src_off,
          std::size_t len) {
        auto dst = (parity == 0 ? row_parity : diag_parity);
        xor_into(dst.subspan(dst_off, len), delta.subspan(src_off, len));
      });
}

void RdpCodec::reconstruct(std::vector<std::optional<Block>>& blocks) const {
  VDC_REQUIRE(blocks.size() == k_ + 2, "reconstruct: wrong stripe width");

  std::vector<std::size_t> erased;
  std::size_t size = 0;
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    if (!blocks[i]) {
      erased.push_back(i);
    } else {
      if (size == 0) size = blocks[i]->size();
      VDC_REQUIRE(blocks[i]->size() == size,
                  "reconstruct: block size mismatch");
    }
  }
  if (erased.empty()) return;
  if (erased.size() > 2)
    throw DataLossError("RDP cannot correct more than two erasures");
  VDC_REQUIRE(size > 0 && size % (p_ - 1) == 0,
              "reconstruct: block size must be a multiple of p-1");

  const std::size_t rows = p_ - 1;
  const std::size_t row_bytes = size / rows;

  // Internal columns: 0..p-2 data (>= k_ are virtual zeros), p-1 row
  // parity, p diagonal parity.
  const auto col_of_ext = [this](std::size_t e) {
    return e < k_ ? e : (e == k_ ? p_ - 1 : p_);
  };

  std::vector<Block> cols(p_ + 1, Block(size, std::byte{0}));
  std::vector<std::vector<char>> known(p_ + 1,
                                       std::vector<char>(rows, 1));
  std::size_t unknown_cells = 0;

  for (std::size_t e = 0; e < blocks.size(); ++e) {
    const std::size_t c = col_of_ext(e);
    if (blocks[e]) {
      cols[c] = *blocks[e];
    } else {
      std::fill(known[c].begin(), known[c].end(), 0);
      unknown_cells += rows;
    }
  }

  const auto cell = [&](std::size_t c, std::size_t r) {
    return std::span<std::byte>(cols[c].data() + r * row_bytes, row_bytes);
  };

  // Peel: repeatedly solve any row/diagonal equation with one unknown.
  bool progress = true;
  while (unknown_cells > 0 && progress) {
    progress = false;

    // Row equations: XOR over columns 0..p-1 of row r equals zero.
    for (std::size_t r = 0; r < rows; ++r) {
      std::size_t n_unknown = 0, uc = 0;
      for (std::size_t c = 0; c < p_; ++c)
        if (!known[c][r]) {
          ++n_unknown;
          uc = c;
        }
      if (n_unknown != 1) continue;
      auto dst = cell(uc, r);
      std::fill(dst.begin(), dst.end(), std::byte{0});
      for (std::size_t c = 0; c < p_; ++c)
        if (c != uc) xor_into(dst, cell(c, r));
      known[uc][r] = 1;
      --unknown_cells;
      progress = true;
    }

    // Diagonal equations: XOR over the diagonal's cells plus the stored
    // diagonal-parity cell equals zero.
    for (std::size_t d = 0; d < p_ - 1; ++d) {
      std::size_t n_unknown = 0, uc = 0, ur = 0;
      if (!known[p_][d]) {
        ++n_unknown;
        uc = p_;
        ur = d;
      }
      for (std::size_t c = 0; c < p_; ++c) {
        if (c == (d + 1) % p_) continue;
        const std::size_t r = (d + p_ - c) % p_;
        if (!known[c][r]) {
          ++n_unknown;
          uc = c;
          ur = r;
        }
      }
      if (n_unknown != 1) continue;
      auto dst = cell(uc, ur);
      std::fill(dst.begin(), dst.end(), std::byte{0});
      if (!(uc == p_ && ur == d)) xor_into(dst, cell(p_, d));
      for (std::size_t c = 0; c < p_; ++c) {
        if (c == (d + 1) % p_) continue;
        const std::size_t r = (d + p_ - c) % p_;
        if (c == uc && r == ur) continue;
        xor_into(dst, cell(c, r));
      }
      known[uc][ur] = 1;
      --unknown_cells;
      progress = true;
    }
  }

  if (unknown_cells > 0)
    throw DataLossError("RDP peeling decoder failed to converge");

  for (std::size_t e : erased) blocks[e] = std::move(cols[col_of_ext(e)]);
}

}  // namespace vdc::parity
