#include "parity/xor.hpp"

#include <cstdint>
#include <cstring>

#include "common/assert.hpp"
#include "parity/kernels.hpp"

namespace vdc::parity {

void xor_into(std::span<std::byte> dst, std::span<const std::byte> src) {
  VDC_ASSERT_MSG(dst.size() == src.size(), "xor_into size mismatch");
  // Dispatch to the active kernel tier (word-blocked / AVX2 / NEON; every
  // tier is bit-exact against the scalar reference).
  active_kernel().xor_into(dst.data(), src.data(), dst.size());
}

std::vector<std::byte> xor_all(
    std::span<const std::span<const std::byte>> sources) {
  VDC_REQUIRE(!sources.empty(), "xor_all needs at least one source");
  std::size_t max_len = 0;
  for (const auto& s : sources) max_len = std::max(max_len, s.size());

  std::vector<std::byte> out(max_len, std::byte{0});
  for (const auto& s : sources)
    xor_into(std::span<std::byte>(out.data(), s.size()), s);
  return out;
}

bool all_zero(std::span<const std::byte> data) {
  std::size_t i = 0;
  const std::size_t n = data.size();

  // Word-blocked like xor_into: this gates zero-page elision and RLE runs
  // on the capture hot path, so scan 4 machine words per iteration.
  constexpr std::size_t kWord = sizeof(std::uint64_t);
  for (; i + 4 * kWord <= n; i += 4 * kWord) {
    std::uint64_t a[4];
    std::memcpy(a, data.data() + i, sizeof a);
    if ((a[0] | a[1] | a[2] | a[3]) != 0) return false;
  }
  for (; i + kWord <= n; i += kWord) {
    std::uint64_t a;
    std::memcpy(&a, data.data() + i, kWord);
    if (a != 0) return false;
  }
  for (; i < n; ++i)
    if (data[i] != std::byte{0}) return false;
  return true;
}

}  // namespace vdc::parity
