#include "parity/pool.hpp"

#include "parity/parallel.hpp"

namespace vdc::parity {

ThreadPool::ThreadPool(unsigned workers) {
  const unsigned spawn = workers > 1 ? workers - 1 : 0;
  threads_.reserve(spawn);
  for (unsigned i = 0; i < spawn; ++i)
    threads_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::run(std::size_t tasks,
                     const std::function<void(std::size_t)>& fn) {
  if (tasks == 0) return;
  if (threads_.empty() || tasks == 1) {
    for (std::size_t i = 0; i < tasks; ++i) fn(i);
    return;
  }
  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->tasks = tasks;
  job->remaining.store(tasks, std::memory_order_relaxed);
  {
    std::unique_lock<std::mutex> lk(mu_);
    if (current_ != nullptr) {
      // Nested or concurrent run: fall back to serial execution rather
      // than deadlocking on the busy pool.
      lk.unlock();
      for (std::size_t i = 0; i < tasks; ++i) fn(i);
      return;
    }
    current_ = job;
  }
  cv_work_.notify_all();
  drain(*job);
  std::unique_lock<std::mutex> lk(mu_);
  cv_done_.wait(lk, [&] {
    return job->remaining.load(std::memory_order_acquire) == 0;
  });
  current_ = nullptr;
}

void ThreadPool::drain(Job& job) {
  std::size_t done = 0;
  for (;;) {
    const std::size_t i = job.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= job.tasks) break;
    (*job.fn)(i);
    ++done;
  }
  if (done > 0 &&
      job.remaining.fetch_sub(done, std::memory_order_acq_rel) == done) {
    // Last batch: wake the caller. Lock before notifying so the wakeup
    // cannot slip between the caller's predicate check and its wait.
    std::lock_guard<std::mutex> lk(mu_);
    cv_done_.notify_all();
  }
}

void ThreadPool::worker_loop() {
  std::shared_ptr<Job> last;
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    cv_work_.wait(lk, [&] {
      return stop_ || (current_ != nullptr && current_ != last);
    });
    if (stop_) return;
    // Holding `last` keeps the Job (and its cursor) alive even after the
    // caller finished the job, so a late waker's claims land on the
    // exhausted old cursor instead of a new job's.
    last = current_;
    lk.unlock();
    drain(*last);
    lk.lock();
  }
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(default_parity_threads());
  return pool;
}

}  // namespace vdc::parity
