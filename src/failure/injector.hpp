#pragma once
// Failure injection over the discrete-event simulator.
//
// Two granularities are offered:
//  * NodeFailureInjector — each physical node has an independent TTF
//    process; on failure, the node is reported down and (optionally)
//    re-armed after a repair time, matching the component-level view.
//  * ClusterFailureInjector — one aggregate process for the whole system,
//    where each event strikes a uniformly random node. This is exactly the
//    "one Poisson process with rate lambda" abstraction the Section V model
//    uses, so the Monte-Carlo validation of Eqs. (1)-(3) uses this one.

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "failure/distributions.hpp"
#include "simkit/simulator.hpp"

namespace vdc::failure {

using NodeId = std::uint32_t;

class NodeFailureInjector {
 public:
  /// `on_failure(node)` fires at each failure instant.
  using FailureCallback = std::function<void(NodeId)>;
  /// `on_repair(node)` fires when a failed node comes back (if repair
  /// re-arming is enabled).
  using RepairCallback = std::function<void(NodeId)>;

  NodeFailureInjector(simkit::Simulator& sim, Rng rng)
      : sim_(sim), rng_(rng) {}

  /// Register a node with its own TTF distribution and start its clock.
  void arm(NodeId node, std::shared_ptr<TtfDistribution> ttf);

  /// Stop injecting failures for this node.
  void disarm(NodeId node);

  /// If set (> 0), a failed node is repaired after this long and re-armed.
  void set_repair_time(SimTime t) { repair_time_ = t; }

  void set_on_failure(FailureCallback cb) { on_failure_ = std::move(cb); }
  void set_on_repair(RepairCallback cb) { on_repair_ = std::move(cb); }

  std::uint64_t failures_injected() const { return failures_; }

 private:
  void schedule_next(NodeId node);
  void fire(NodeId node);

  struct Armed {
    std::shared_ptr<TtfDistribution> ttf;
    simkit::EventId pending = simkit::kInvalidEvent;
  };

  simkit::Simulator& sim_;
  Rng rng_;
  SimTime repair_time_ = 0.0;
  FailureCallback on_failure_;
  RepairCallback on_repair_;
  std::unordered_map<NodeId, Armed> armed_;
  std::uint64_t failures_ = 0;
};

class ClusterFailureInjector {
 public:
  using FailureCallback = std::function<void(NodeId)>;

  /// One aggregate TTF process over `node_count` nodes; every failure
  /// event picks a victim uniformly at random.
  ClusterFailureInjector(simkit::Simulator& sim, Rng rng,
                         std::shared_ptr<TtfDistribution> ttf,
                         std::uint32_t node_count);

  /// Start injecting (idempotent).
  void start(FailureCallback on_failure);

  /// Stop injecting.
  void stop();

  std::uint64_t failures_injected() const { return failures_; }

 private:
  void schedule_next();

  simkit::Simulator& sim_;
  Rng rng_;
  std::shared_ptr<TtfDistribution> ttf_;
  std::uint32_t node_count_;
  FailureCallback on_failure_;
  simkit::EventId pending_ = simkit::kInvalidEvent;
  bool running_ = false;
  std::uint64_t failures_ = 0;
};

}  // namespace vdc::failure
