#pragma once
// Failure injection over the discrete-event simulator.
//
// Three granularities are offered behind one `FailureInjector` interface:
//  * NodeFailureInjector — each physical node has an independent TTF
//    process; on failure, the node is reported down and (optionally)
//    re-armed after a repair time, matching the component-level view.
//    (`FleetFailureInjector` is the facade that arms a whole fleet.)
//  * ClusterFailureInjector — one aggregate process for the whole system,
//    where each event strikes a uniformly random node. This is exactly the
//    "one Poisson process with rate lambda" abstraction the Section V model
//    uses, so the Monte-Carlo validation of Eqs. (1)-(3) uses this one.
//  * ScheduledFailureInjector — a deterministic scripted fault schedule
//    (absolute fire time -> exact node id) for replayable multi-failure
//    scenarios; the cascade tests and drills are written against it.
//
// Victim semantics differ: injectors with `exact_targets() == true` name
// real node ids (a strike on a currently-dead node is the consumer's to
// skip); the aggregate injector emits an abstract index the consumer maps
// onto its alive set.

#include <cstdint>
#include <functional>
#include <memory>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "failure/distributions.hpp"
#include "simkit/simulator.hpp"

namespace vdc::failure {

using NodeId = std::uint32_t;

/// Common start/stop surface so consumers (the job runtime) can swap
/// failure processes without caring which one is wired in.
class FailureInjector {
 public:
  /// `on_failure(node)` fires at each failure instant.
  using FailureCallback = std::function<void(NodeId)>;

  virtual ~FailureInjector() = default;

  /// Begin injecting (idempotent).
  virtual void start(FailureCallback on_failure) = 0;

  /// Stop injecting; pending events are cancelled.
  virtual void stop() = 0;

  virtual std::uint64_t failures_injected() const = 0;

  /// True when callbacks carry exact node ids (scripted / per-node
  /// sources); false when they carry an index the consumer should map
  /// onto the currently-alive set.
  virtual bool exact_targets() const = 0;
};

class NodeFailureInjector {
 public:
  using FailureCallback = FailureInjector::FailureCallback;
  /// `on_repair(node)` fires when a failed node comes back (if repair
  /// re-arming is enabled).
  using RepairCallback = std::function<void(NodeId)>;

  NodeFailureInjector(simkit::Simulator& sim, Rng rng)
      : sim_(sim), rng_(rng) {}

  /// Register a node with its own TTF distribution and start its clock.
  void arm(NodeId node, std::shared_ptr<TtfDistribution> ttf);

  /// Stop injecting failures for this node.
  void disarm(NodeId node);

  /// If set (> 0), a failed node is repaired after this long and re-armed.
  void set_repair_time(SimTime t) { repair_time_ = t; }

  void set_on_failure(FailureCallback cb) { on_failure_ = std::move(cb); }
  void set_on_repair(RepairCallback cb) { on_repair_ = std::move(cb); }

  std::uint64_t failures_injected() const { return failures_; }

 private:
  void schedule_next(NodeId node);
  void fire(NodeId node);

  struct Armed {
    std::shared_ptr<TtfDistribution> ttf;
    simkit::EventId pending = simkit::kInvalidEvent;
  };

  simkit::Simulator& sim_;
  Rng rng_;
  SimTime repair_time_ = 0.0;
  FailureCallback on_failure_;
  RepairCallback on_repair_;
  std::unordered_map<NodeId, Armed> armed_;
  std::uint64_t failures_ = 0;
};

/// FailureInjector facade over NodeFailureInjector: every node of an
/// `node_count` fleet gets an independent clock drawn from the same TTF
/// distribution, with optional repair re-arming so nodes keep failing for
/// the whole run (the cascade-heavy fuzz regime).
class FleetFailureInjector final : public FailureInjector {
 public:
  FleetFailureInjector(simkit::Simulator& sim, Rng rng,
                       std::shared_ptr<TtfDistribution> ttf,
                       std::uint32_t node_count, SimTime repair_time = 0.0);

  void start(FailureCallback on_failure) override;
  void stop() override;
  std::uint64_t failures_injected() const override {
    return nodes_.failures_injected();
  }
  bool exact_targets() const override { return true; }

 private:
  std::shared_ptr<TtfDistribution> ttf_;
  std::uint32_t node_count_;
  NodeFailureInjector nodes_;
  bool running_ = false;
};

class ClusterFailureInjector final : public FailureInjector {
 public:
  /// One aggregate TTF process over `node_count` nodes; every failure
  /// event picks a victim uniformly at random.
  ClusterFailureInjector(simkit::Simulator& sim, Rng rng,
                         std::shared_ptr<TtfDistribution> ttf,
                         std::uint32_t node_count);

  void start(FailureCallback on_failure) override;
  void stop() override;
  std::uint64_t failures_injected() const override { return failures_; }
  bool exact_targets() const override { return false; }

 private:
  void schedule_next();

  simkit::Simulator& sim_;
  Rng rng_;
  std::shared_ptr<TtfDistribution> ttf_;
  std::uint32_t node_count_;
  FailureCallback on_failure_;
  simkit::EventId pending_ = simkit::kInvalidEvent;
  bool running_ = false;
  std::uint64_t failures_ = 0;
};

/// One scripted event. The original form — node `node` fails at absolute
/// sim time `at` — is the default kind, so `{at, node}` aggregate
/// initialization keeps meaning "fail". The other kinds drive the network
/// fault plane and node repair for partition/gray-link drills.
struct ScheduledFailure {
  enum class Kind {
    kFail,       // kill `node`
    kRepair,     // repair/revive `node`
    kLink,       // install a LinkFault on `node` (or directed node->peer)
    kPartition,  // move `node` into partition group `group`
    kHeal,       // clear faults on `node` (or every host: node == kAllNodes)
    // Leader-targeted events: the victim is whoever leads the control
    // plane *at fire time* (node 0 when no control plane is running), so
    // `node` carries the kAllNodes sentinel and the consumer resolves it.
    kKillLeader,       // kill the current control-plane leader
    kPartitionLeader,  // move the current leader into partition `group`
  };
  /// Sentinel: "no specific peer" (whole-host link fault) / "every host"
  /// (heal target).
  static constexpr NodeId kAllNodes = ~NodeId{0};

  SimTime at = 0.0;
  NodeId node = 0;
  Kind kind = Kind::kFail;
  NodeId peer = kAllNodes;  // kLink: directed destination, or whole host
  double drop = 0.0;        // kLink: per-frame drop probability
  double corrupt = 0.0;     // kLink: per-frame bit-flip probability
  SimTime latency = 0.0;    // kLink: added one-way latency
  SimTime jitter = 0.0;     // kLink: uniform extra latency in [0, jitter]
  double rate = 1.0;        // kLink: NIC rate multiplier (gray link)
  std::uint32_t group = 0;  // kPartition: target group (0 = connected)
};

/// Deterministic scripted fault schedule. Events fire at their absolute
/// times in order; the schedule does not repeat. Strikes name exact node
/// ids, so a schedule replays bit-identically across runs — the substrate
/// for the cascade/escalation tests and for operator drills.
class ScheduledFailureInjector final : public FailureInjector {
 public:
  /// Fires for every non-kFail event (repairs, link faults, partitions,
  /// heals). kFail strikes go through the FailureInjector callback only.
  using EventCallback = std::function<void(const ScheduledFailure&)>;

  ScheduledFailureInjector(simkit::Simulator& sim,
                           std::vector<ScheduledFailure> schedule);

  void start(FailureCallback on_failure) override;
  void stop() override;
  std::uint64_t failures_injected() const override { return failures_; }
  bool exact_targets() const override { return true; }

  void set_on_event(EventCallback cb) { on_event_ = std::move(cb); }

  /// Strikes not yet fired.
  std::size_t remaining() const { return schedule_.size() - next_; }

  /// Parse the fault-schedule text format (see docs/RECOVERY.md). One
  /// event per line; blank lines and `#` comments are ignored:
  ///   <time> <node>                      bare pair (legacy) = fail
  ///   fail <time> <node>
  ///   repair <time> <node>
  ///   link <time> <src> <dst>|- [drop=P] [corrupt=P] [latency=S]
  ///                              [jitter=S] [rate=F]
  ///   partition <time> <node> <group>
  ///   heal <time> <node>|all
  ///   kill-leader [at] <time>
  ///   partition-leader [at] <time> <group>
  /// `link ... -` faults every path touching <src>; naming <dst> faults
  /// only the directed src->dst link (an asymmetric "gray" link). Throws
  /// InvariantError on malformed input or times out of order.
  static std::vector<ScheduledFailure> parse(std::string_view text);

 private:
  void schedule_next();

  simkit::Simulator& sim_;
  std::vector<ScheduledFailure> schedule_;
  std::size_t next_ = 0;
  FailureCallback on_failure_;
  EventCallback on_event_;
  simkit::EventId pending_ = simkit::kInvalidEvent;
  bool running_ = false;
  std::uint64_t failures_ = 0;
};

}  // namespace vdc::failure
