#pragma once
// Time-to-failure distributions.
//
// Section V of the paper assumes Poisson arrivals (exponential
// interarrivals), explicitly noting the "bathtub curve" as a case where
// that assumption breaks. We provide exponential (the model's assumption),
// Weibull (bathtub phases: shape < 1 infant mortality, > 1 wear-out), and
// a replayable trace for empirical logs.

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"

namespace vdc::failure {

/// Interface: sample the time from "now" until the next failure.
class TtfDistribution {
 public:
  virtual ~TtfDistribution() = default;
  virtual SimTime sample(Rng& rng) = 0;
  /// Mean time between failures implied by this distribution.
  virtual SimTime mtbf() const = 0;
};

/// Exponential TTF (Poisson failure process) — the paper's assumption.
class ExponentialTtf final : public TtfDistribution {
 public:
  /// `rate` is lambda = 1 / MTBF, in failures per second.
  explicit ExponentialTtf(double rate);
  static ExponentialTtf from_mtbf(SimTime mtbf) {
    return ExponentialTtf(1.0 / mtbf);
  }
  SimTime sample(Rng& rng) override { return rng.exponential(rate_); }
  SimTime mtbf() const override { return 1.0 / rate_; }
  double rate() const { return rate_; }

 private:
  double rate_;
};

/// Weibull TTF: shape < 1 gives decreasing hazard (infant mortality),
/// shape > 1 increasing hazard (wear-out).
class WeibullTtf final : public TtfDistribution {
 public:
  WeibullTtf(double shape, SimTime scale);
  SimTime sample(Rng& rng) override { return rng.weibull(shape_, scale_); }
  SimTime mtbf() const override;
  double shape() const { return shape_; }
  SimTime scale() const { return scale_; }

 private:
  double shape_;
  SimTime scale_;
};

/// Replays a fixed sequence of interarrival gaps, cycling at the end.
/// Useful for regression tests and trace-driven studies.
class TraceTtf final : public TtfDistribution {
 public:
  explicit TraceTtf(std::vector<SimTime> gaps);
  SimTime sample(Rng& rng) override;
  SimTime mtbf() const override;

 private:
  std::vector<SimTime> gaps_;
  std::size_t next_ = 0;
};

/// Maximum-likelihood MTBF estimate from observed interarrival gaps,
/// assuming an exponential process (sample mean).
SimTime estimate_mtbf(const std::vector<SimTime>& gaps);

}  // namespace vdc::failure
