#include "failure/distributions.hpp"

#include <cmath>
#include <numeric>

#include "common/assert.hpp"

namespace vdc::failure {

ExponentialTtf::ExponentialTtf(double rate) : rate_(rate) {
  VDC_REQUIRE(rate > 0.0, "failure rate must be positive");
}

WeibullTtf::WeibullTtf(double shape, SimTime scale)
    : shape_(shape), scale_(scale) {
  VDC_REQUIRE(shape > 0.0 && scale > 0.0,
              "Weibull shape and scale must be positive");
}

SimTime WeibullTtf::mtbf() const {
  return scale_ * std::tgamma(1.0 + 1.0 / shape_);
}

TraceTtf::TraceTtf(std::vector<SimTime> gaps) : gaps_(std::move(gaps)) {
  VDC_REQUIRE(!gaps_.empty(), "failure trace must not be empty");
  for (SimTime g : gaps_)
    VDC_REQUIRE(g > 0.0, "failure trace gaps must be positive");
}

SimTime TraceTtf::sample(Rng&) {
  const SimTime g = gaps_[next_];
  next_ = (next_ + 1) % gaps_.size();
  return g;
}

SimTime TraceTtf::mtbf() const {
  const double sum = std::accumulate(gaps_.begin(), gaps_.end(), 0.0);
  return sum / static_cast<double>(gaps_.size());
}

SimTime estimate_mtbf(const std::vector<SimTime>& gaps) {
  VDC_REQUIRE(!gaps.empty(), "cannot estimate MTBF from zero observations");
  const double sum = std::accumulate(gaps.begin(), gaps.end(), 0.0);
  return sum / static_cast<double>(gaps.size());
}

}  // namespace vdc::failure
