#include "failure/injector.hpp"

#include <utility>

#include "common/assert.hpp"

namespace vdc::failure {

void NodeFailureInjector::arm(NodeId node,
                              std::shared_ptr<TtfDistribution> ttf) {
  VDC_REQUIRE(ttf != nullptr, "TTF distribution required");
  disarm(node);
  armed_[node].ttf = std::move(ttf);
  schedule_next(node);
}

void NodeFailureInjector::disarm(NodeId node) {
  auto it = armed_.find(node);
  if (it == armed_.end()) return;
  if (it->second.pending != simkit::kInvalidEvent)
    sim_.cancel(it->second.pending);
  armed_.erase(it);
}

void NodeFailureInjector::schedule_next(NodeId node) {
  auto& armed = armed_.at(node);
  const SimTime dt = armed.ttf->sample(rng_);
  armed.pending = sim_.after(dt, [this, node] { fire(node); });
}

void NodeFailureInjector::fire(NodeId node) {
  auto it = armed_.find(node);
  if (it == armed_.end()) return;
  it->second.pending = simkit::kInvalidEvent;
  ++failures_;
  if (on_failure_) on_failure_(node);

  // The node may have been disarmed by the failure callback.
  it = armed_.find(node);
  if (it == armed_.end()) return;

  if (repair_time_ > 0.0) {
    it->second.pending = sim_.after(repair_time_, [this, node] {
      auto jt = armed_.find(node);
      if (jt == armed_.end()) return;
      jt->second.pending = simkit::kInvalidEvent;
      if (on_repair_) on_repair_(node);
      if (armed_.count(node)) schedule_next(node);
    });
  } else {
    schedule_next(node);
  }
}

ClusterFailureInjector::ClusterFailureInjector(
    simkit::Simulator& sim, Rng rng, std::shared_ptr<TtfDistribution> ttf,
    std::uint32_t node_count)
    : sim_(sim), rng_(rng), ttf_(std::move(ttf)), node_count_(node_count) {
  VDC_REQUIRE(ttf_ != nullptr, "TTF distribution required");
  VDC_REQUIRE(node_count > 0, "need at least one node");
}

void ClusterFailureInjector::start(FailureCallback on_failure) {
  on_failure_ = std::move(on_failure);
  if (!running_) {
    running_ = true;
    schedule_next();
  }
}

void ClusterFailureInjector::stop() {
  running_ = false;
  if (pending_ != simkit::kInvalidEvent) {
    sim_.cancel(pending_);
    pending_ = simkit::kInvalidEvent;
  }
}

void ClusterFailureInjector::schedule_next() {
  const SimTime dt = ttf_->sample(rng_);
  pending_ = sim_.after(dt, [this] {
    pending_ = simkit::kInvalidEvent;
    ++failures_;
    const auto victim = static_cast<NodeId>(rng_.uniform_u64(node_count_));
    if (on_failure_) on_failure_(victim);
    // The callback may call stop(); only re-arm while running.
    if (running_) schedule_next();
  });
}

}  // namespace vdc::failure
