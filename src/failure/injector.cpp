#include "failure/injector.hpp"

#include <cctype>
#include <cstdlib>
#include <string>
#include <utility>

#include "common/assert.hpp"

namespace vdc::failure {

void NodeFailureInjector::arm(NodeId node,
                              std::shared_ptr<TtfDistribution> ttf) {
  VDC_REQUIRE(ttf != nullptr, "TTF distribution required");
  disarm(node);
  armed_[node].ttf = std::move(ttf);
  schedule_next(node);
}

void NodeFailureInjector::disarm(NodeId node) {
  auto it = armed_.find(node);
  if (it == armed_.end()) return;
  if (it->second.pending != simkit::kInvalidEvent)
    sim_.cancel(it->second.pending);
  armed_.erase(it);
}

void NodeFailureInjector::schedule_next(NodeId node) {
  auto& armed = armed_.at(node);
  const SimTime dt = armed.ttf->sample(rng_);
  armed.pending = sim_.after(dt, [this, node] { fire(node); });
}

void NodeFailureInjector::fire(NodeId node) {
  auto it = armed_.find(node);
  if (it == armed_.end()) return;
  it->second.pending = simkit::kInvalidEvent;
  ++failures_;
  if (on_failure_) on_failure_(node);

  // The node may have been disarmed by the failure callback.
  it = armed_.find(node);
  if (it == armed_.end()) return;

  if (repair_time_ > 0.0) {
    it->second.pending = sim_.after(repair_time_, [this, node] {
      auto jt = armed_.find(node);
      if (jt == armed_.end()) return;
      jt->second.pending = simkit::kInvalidEvent;
      if (on_repair_) on_repair_(node);
      if (armed_.count(node)) schedule_next(node);
    });
  } else {
    schedule_next(node);
  }
}

FleetFailureInjector::FleetFailureInjector(
    simkit::Simulator& sim, Rng rng, std::shared_ptr<TtfDistribution> ttf,
    std::uint32_t node_count, SimTime repair_time)
    : ttf_(std::move(ttf)), node_count_(node_count), nodes_(sim, rng) {
  VDC_REQUIRE(ttf_ != nullptr, "TTF distribution required");
  VDC_REQUIRE(node_count > 0, "need at least one node");
  nodes_.set_repair_time(repair_time);
}

void FleetFailureInjector::start(FailureCallback on_failure) {
  nodes_.set_on_failure(std::move(on_failure));
  if (running_) return;
  running_ = true;
  for (NodeId n = 0; n < node_count_; ++n) nodes_.arm(n, ttf_);
}

void FleetFailureInjector::stop() {
  if (!running_) return;
  running_ = false;
  for (NodeId n = 0; n < node_count_; ++n) nodes_.disarm(n);
}

ClusterFailureInjector::ClusterFailureInjector(
    simkit::Simulator& sim, Rng rng, std::shared_ptr<TtfDistribution> ttf,
    std::uint32_t node_count)
    : sim_(sim), rng_(rng), ttf_(std::move(ttf)), node_count_(node_count) {
  VDC_REQUIRE(ttf_ != nullptr, "TTF distribution required");
  VDC_REQUIRE(node_count > 0, "need at least one node");
}

void ClusterFailureInjector::start(FailureCallback on_failure) {
  on_failure_ = std::move(on_failure);
  if (!running_) {
    running_ = true;
    schedule_next();
  }
}

void ClusterFailureInjector::stop() {
  running_ = false;
  if (pending_ != simkit::kInvalidEvent) {
    sim_.cancel(pending_);
    pending_ = simkit::kInvalidEvent;
  }
}

void ClusterFailureInjector::schedule_next() {
  const SimTime dt = ttf_->sample(rng_);
  pending_ = sim_.after(dt, [this] {
    pending_ = simkit::kInvalidEvent;
    ++failures_;
    const auto victim = static_cast<NodeId>(rng_.uniform_u64(node_count_));
    if (on_failure_) on_failure_(victim);
    // The callback may call stop(); only re-arm while running.
    if (running_) schedule_next();
  });
}

ScheduledFailureInjector::ScheduledFailureInjector(
    simkit::Simulator& sim, std::vector<ScheduledFailure> schedule)
    : sim_(sim), schedule_(std::move(schedule)) {
  for (std::size_t i = 1; i < schedule_.size(); ++i)
    VDC_REQUIRE(schedule_[i - 1].at <= schedule_[i].at,
                "fault schedule must be time-ordered");
}

void ScheduledFailureInjector::start(FailureCallback on_failure) {
  on_failure_ = std::move(on_failure);
  if (running_) return;
  running_ = true;
  schedule_next();
}

void ScheduledFailureInjector::stop() {
  running_ = false;
  if (pending_ != simkit::kInvalidEvent) {
    sim_.cancel(pending_);
    pending_ = simkit::kInvalidEvent;
  }
}

void ScheduledFailureInjector::schedule_next() {
  if (next_ >= schedule_.size()) return;
  const ScheduledFailure strike = schedule_[next_];
  VDC_REQUIRE(strike.at >= sim_.now(),
              "fault schedule entry is in the past");
  pending_ = sim_.at(strike.at, [this, strike] {
    pending_ = simkit::kInvalidEvent;
    ++next_;
    if (strike.kind == ScheduledFailure::Kind::kFail) {
      ++failures_;
      if (on_failure_) on_failure_(strike.node);
    } else {
      if (on_event_) on_event_(strike);
    }
    if (running_) schedule_next();
  });
}

namespace {

[[noreturn]] void parse_error(std::size_t line_no, const std::string& what) {
  throw InvariantError("fault schedule line " + std::to_string(line_no) +
                       ": " + what);
}

std::vector<std::string_view> split_fields(std::string_view line) {
  std::vector<std::string_view> fields;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    const std::size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    if (i > start) fields.push_back(line.substr(start, i - start));
  }
  return fields;
}

double parse_number(std::string_view tok, std::size_t line_no,
                    const char* what) {
  const std::string buf(tok);
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size())
    parse_error(line_no, std::string("expected ") + what);
  return v;
}

SimTime parse_time(std::string_view tok, std::size_t line_no) {
  const double at = parse_number(tok, line_no, "a time in seconds");
  if (at < 0.0) parse_error(line_no, "time must be non-negative");
  return at;
}

NodeId parse_node(std::string_view tok, std::size_t line_no) {
  const std::string buf(tok);
  char* end = nullptr;
  const long node = std::strtol(buf.c_str(), &end, 10);
  if (end != buf.c_str() + buf.size() || node < 0)
    parse_error(line_no, "expected a non-negative node id");
  return static_cast<NodeId>(node);
}

}  // namespace

std::vector<ScheduledFailure> ScheduledFailureInjector::parse(
    std::string_view text) {
  using Kind = ScheduledFailure::Kind;
  std::vector<ScheduledFailure> out;
  std::size_t pos = 0, line_no = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? text.size() - pos : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;
    if (const auto hash = line.find('#'); hash != std::string_view::npos)
      line = line.substr(0, hash);
    while (!line.empty() && (line.back() == ' ' || line.back() == '\t' ||
                             line.back() == '\r'))
      line.remove_suffix(1);
    const auto f = split_fields(line);
    if (f.empty()) continue;

    ScheduledFailure ev;
    // A line starting with a number is the legacy bare `<time> <node>`
    // pair (= fail); otherwise the first field is an event keyword.
    if (!f[0].empty() && (std::isdigit(static_cast<unsigned char>(f[0][0])) ||
                          f[0][0] == '.' || f[0][0] == '+')) {
      if (f.size() != 2) parse_error(line_no, "expected '<time> <node>'");
      ev.at = parse_time(f[0], line_no);
      ev.node = parse_node(f[1], line_no);
    } else if (f[0] == "fail" || f[0] == "repair") {
      if (f.size() != 3)
        parse_error(line_no, "expected '" + std::string(f[0]) +
                                 " <time> <node>'");
      ev.kind = f[0] == "fail" ? Kind::kFail : Kind::kRepair;
      ev.at = parse_time(f[1], line_no);
      ev.node = parse_node(f[2], line_no);
    } else if (f[0] == "link") {
      if (f.size() < 4)
        parse_error(line_no,
                    "expected 'link <time> <src> <dst>|- [key=value...]'");
      ev.kind = Kind::kLink;
      ev.at = parse_time(f[1], line_no);
      ev.node = parse_node(f[2], line_no);
      if (f[3] != "-") ev.peer = parse_node(f[3], line_no);
      for (std::size_t i = 4; i < f.size(); ++i) {
        const auto eq = f[i].find('=');
        if (eq == std::string_view::npos)
          parse_error(line_no, "expected key=value, got '" +
                                   std::string(f[i]) + "'");
        const std::string_view key = f[i].substr(0, eq);
        const double v = parse_number(f[i].substr(eq + 1), line_no,
                                      "a number after '='");
        if (key == "drop") {
          ev.drop = v;
        } else if (key == "corrupt") {
          ev.corrupt = v;
        } else if (key == "latency") {
          ev.latency = v;
        } else if (key == "jitter") {
          ev.jitter = v;
        } else if (key == "rate") {
          ev.rate = v;
        } else {
          parse_error(line_no, "unknown link key '" + std::string(key) + "'");
        }
      }
      if (ev.drop < 0.0 || ev.drop > 1.0 || ev.corrupt < 0.0 ||
          ev.corrupt > 1.0)
        parse_error(line_no, "drop/corrupt must be probabilities in [0, 1]");
      if (ev.latency < 0.0 || ev.jitter < 0.0)
        parse_error(line_no, "latency/jitter must be non-negative");
      if (ev.rate <= 0.0)
        parse_error(line_no, "rate factor must be positive");
    } else if (f[0] == "partition") {
      if (f.size() != 4)
        parse_error(line_no, "expected 'partition <time> <node> <group>'");
      ev.kind = Kind::kPartition;
      ev.at = parse_time(f[1], line_no);
      ev.node = parse_node(f[2], line_no);
      ev.group = parse_node(f[3], line_no);
    } else if (f[0] == "heal") {
      if (f.size() != 3) parse_error(line_no, "expected 'heal <time> <node>|all'");
      ev.kind = Kind::kHeal;
      ev.at = parse_time(f[1], line_no);
      ev.node = f[2] == "all" ? ScheduledFailure::kAllNodes
                              : parse_node(f[2], line_no);
    } else if (f[0] == "kill-leader" || f[0] == "partition-leader") {
      // Leader-targeted events name no node: the victim is whoever leads
      // the control plane when the event fires. An optional "at"/"AT"
      // keyword reads naturally in drill scripts.
      const bool partition = f[0] == "partition-leader";
      std::size_t ti = 1;
      if (f.size() >= 2 && (f[1] == "at" || f[1] == "AT")) ti = 2;
      const std::size_t want = ti + (partition ? 2 : 1);
      if (f.size() != want) {
        if (f.size() > want)
          parse_error(line_no,
                      "'" + std::string(f[0]) +
                          "' takes no node id — the victim is whoever "
                          "leads at fire time (got extra field '" +
                          std::string(f[want]) + "')");
        parse_error(line_no, partition
                                 ? "expected 'partition-leader [at] <time> "
                                   "<group>'"
                                 : "expected 'kill-leader [at] <time>'");
      }
      ev.kind = partition ? Kind::kPartitionLeader : Kind::kKillLeader;
      ev.at = parse_time(f[ti], line_no);
      ev.node = ScheduledFailure::kAllNodes;  // resolved at fire time
      if (partition) {
        ev.group = parse_node(f[ti + 1], line_no);
        if (ev.group == 0)
          parse_error(line_no,
                      "partition-leader group must be nonzero (0 means "
                      "'connected'; use 'heal' to reconnect)");
      }
    } else {
      parse_error(line_no, "unknown event '" + std::string(f[0]) + "'");
    }

    if (!out.empty() && ev.at < out.back().at)
      parse_error(line_no, "times must be non-decreasing");
    out.push_back(ev);
  }
  return out;
}

}  // namespace vdc::failure
