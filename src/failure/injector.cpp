#include "failure/injector.hpp"

#include <cstdlib>
#include <string>
#include <utility>

#include "common/assert.hpp"

namespace vdc::failure {

void NodeFailureInjector::arm(NodeId node,
                              std::shared_ptr<TtfDistribution> ttf) {
  VDC_REQUIRE(ttf != nullptr, "TTF distribution required");
  disarm(node);
  armed_[node].ttf = std::move(ttf);
  schedule_next(node);
}

void NodeFailureInjector::disarm(NodeId node) {
  auto it = armed_.find(node);
  if (it == armed_.end()) return;
  if (it->second.pending != simkit::kInvalidEvent)
    sim_.cancel(it->second.pending);
  armed_.erase(it);
}

void NodeFailureInjector::schedule_next(NodeId node) {
  auto& armed = armed_.at(node);
  const SimTime dt = armed.ttf->sample(rng_);
  armed.pending = sim_.after(dt, [this, node] { fire(node); });
}

void NodeFailureInjector::fire(NodeId node) {
  auto it = armed_.find(node);
  if (it == armed_.end()) return;
  it->second.pending = simkit::kInvalidEvent;
  ++failures_;
  if (on_failure_) on_failure_(node);

  // The node may have been disarmed by the failure callback.
  it = armed_.find(node);
  if (it == armed_.end()) return;

  if (repair_time_ > 0.0) {
    it->second.pending = sim_.after(repair_time_, [this, node] {
      auto jt = armed_.find(node);
      if (jt == armed_.end()) return;
      jt->second.pending = simkit::kInvalidEvent;
      if (on_repair_) on_repair_(node);
      if (armed_.count(node)) schedule_next(node);
    });
  } else {
    schedule_next(node);
  }
}

FleetFailureInjector::FleetFailureInjector(
    simkit::Simulator& sim, Rng rng, std::shared_ptr<TtfDistribution> ttf,
    std::uint32_t node_count, SimTime repair_time)
    : ttf_(std::move(ttf)), node_count_(node_count), nodes_(sim, rng) {
  VDC_REQUIRE(ttf_ != nullptr, "TTF distribution required");
  VDC_REQUIRE(node_count > 0, "need at least one node");
  nodes_.set_repair_time(repair_time);
}

void FleetFailureInjector::start(FailureCallback on_failure) {
  nodes_.set_on_failure(std::move(on_failure));
  if (running_) return;
  running_ = true;
  for (NodeId n = 0; n < node_count_; ++n) nodes_.arm(n, ttf_);
}

void FleetFailureInjector::stop() {
  if (!running_) return;
  running_ = false;
  for (NodeId n = 0; n < node_count_; ++n) nodes_.disarm(n);
}

ClusterFailureInjector::ClusterFailureInjector(
    simkit::Simulator& sim, Rng rng, std::shared_ptr<TtfDistribution> ttf,
    std::uint32_t node_count)
    : sim_(sim), rng_(rng), ttf_(std::move(ttf)), node_count_(node_count) {
  VDC_REQUIRE(ttf_ != nullptr, "TTF distribution required");
  VDC_REQUIRE(node_count > 0, "need at least one node");
}

void ClusterFailureInjector::start(FailureCallback on_failure) {
  on_failure_ = std::move(on_failure);
  if (!running_) {
    running_ = true;
    schedule_next();
  }
}

void ClusterFailureInjector::stop() {
  running_ = false;
  if (pending_ != simkit::kInvalidEvent) {
    sim_.cancel(pending_);
    pending_ = simkit::kInvalidEvent;
  }
}

void ClusterFailureInjector::schedule_next() {
  const SimTime dt = ttf_->sample(rng_);
  pending_ = sim_.after(dt, [this] {
    pending_ = simkit::kInvalidEvent;
    ++failures_;
    const auto victim = static_cast<NodeId>(rng_.uniform_u64(node_count_));
    if (on_failure_) on_failure_(victim);
    // The callback may call stop(); only re-arm while running.
    if (running_) schedule_next();
  });
}

ScheduledFailureInjector::ScheduledFailureInjector(
    simkit::Simulator& sim, std::vector<ScheduledFailure> schedule)
    : sim_(sim), schedule_(std::move(schedule)) {
  for (std::size_t i = 1; i < schedule_.size(); ++i)
    VDC_REQUIRE(schedule_[i - 1].at <= schedule_[i].at,
                "fault schedule must be time-ordered");
}

void ScheduledFailureInjector::start(FailureCallback on_failure) {
  on_failure_ = std::move(on_failure);
  if (running_) return;
  running_ = true;
  schedule_next();
}

void ScheduledFailureInjector::stop() {
  running_ = false;
  if (pending_ != simkit::kInvalidEvent) {
    sim_.cancel(pending_);
    pending_ = simkit::kInvalidEvent;
  }
}

void ScheduledFailureInjector::schedule_next() {
  if (next_ >= schedule_.size()) return;
  const ScheduledFailure strike = schedule_[next_];
  VDC_REQUIRE(strike.at >= sim_.now(),
              "fault schedule entry is in the past");
  pending_ = sim_.at(strike.at, [this, strike] {
    pending_ = simkit::kInvalidEvent;
    ++next_;
    ++failures_;
    if (on_failure_) on_failure_(strike.node);
    if (running_) schedule_next();
  });
}

std::vector<ScheduledFailure> ScheduledFailureInjector::parse(
    std::string_view text) {
  std::vector<ScheduledFailure> out;
  std::size_t pos = 0, line_no = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? text.size() - pos : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;
    if (const auto hash = line.find('#'); hash != std::string_view::npos)
      line = line.substr(0, hash);
    while (!line.empty() && (line.front() == ' ' || line.front() == '\t'))
      line.remove_prefix(1);
    while (!line.empty() && (line.back() == ' ' || line.back() == '\t' ||
                             line.back() == '\r'))
      line.remove_suffix(1);
    if (line.empty()) continue;

    const std::string buf(line);
    char* end = nullptr;
    const double at = std::strtod(buf.c_str(), &end);
    if (end == buf.c_str() || at < 0.0)
      throw InvariantError("fault schedule line " + std::to_string(line_no) +
                           ": expected '<time> <node>'");
    char* end2 = nullptr;
    const long node = std::strtol(end, &end2, 10);
    if (end2 == end || node < 0)
      throw InvariantError("fault schedule line " + std::to_string(line_no) +
                           ": expected a non-negative node id");
    while (*end2 == ' ' || *end2 == '\t') ++end2;
    if (*end2 != '\0')
      throw InvariantError("fault schedule line " + std::to_string(line_no) +
                           ": trailing junk");
    if (!out.empty() && at < out.back().at)
      throw InvariantError("fault schedule line " + std::to_string(line_no) +
                           ": times must be non-decreasing");
    out.push_back({at, static_cast<NodeId>(node)});
  }
  return out;
}

}  // namespace vdc::failure
