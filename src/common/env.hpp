#pragma once
// Validated environment-knob parsing.
//
// Every VDC_* runtime knob goes through these helpers so that a typo'd
// value can never silently pick a mode: a malformed value is rejected with
// a logged warning and the configured default stands. (The pattern started
// as ChunkPolicy::env_override's strict integer parse; this header is the
// shared home so VDC_FULL_SOLVER, VDC_EVENT_QUEUE, VDC_PARITY_KERNEL,
// VDC_REFERENCE_PLANE and friends all behave the same way.)

#include <cstdint>
#include <initializer_list>
#include <optional>
#include <string>
#include <string_view>

namespace vdc::env {

/// Raw lookup: the variable's value, or nullopt when unset.
std::optional<std::string> raw(const char* name);

/// Non-negative integer knob. The WHOLE string must parse (no trailing
/// junk, no sign, no overflow); anything else warns and returns nullopt.
std::optional<long long> int_knob(const char* name);

/// Boolean knob. Accepts exactly "0"/"1" (and "true"/"false",
/// "on"/"off", case-insensitive); anything else warns and returns
/// nullopt so the caller's default stands. Note that this is stricter
/// than the old `value[0] == '1'` checks, which silently treated
/// "true" as false — or "off" as true.
std::optional<bool> bool_knob(const char* name);

/// Enumerated knob: the value must match one of `allowed` exactly;
/// anything else warns (listing the valid spellings) and returns nullopt.
std::optional<std::string> enum_knob(
    const char* name, std::initializer_list<std::string_view> allowed);

}  // namespace vdc::env
