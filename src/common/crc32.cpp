#include "common/crc32.hpp"

#include <array>

namespace vdc {
namespace {

std::array<std::uint32_t, 256> build_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit)
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    table[i] = c;
  }
  return table;
}

const std::array<std::uint32_t, 256>& table() {
  static const auto t = build_table();
  return t;
}

}  // namespace

std::uint32_t crc32(std::span<const std::byte> data, std::uint32_t seed) {
  const auto& t = table();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::byte b : data)
    c = t[(c ^ static_cast<std::uint8_t>(b)) & 0xFF] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

}  // namespace vdc
