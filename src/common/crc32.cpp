#include "common/crc32.hpp"

#include <array>
#include <cstddef>

namespace vdc {
namespace {

// Slice-by-8: eight derived tables let the hot loop fold 8 input bytes per
// iteration with no inter-byte dependency chain. table[0] is the classic
// byte-at-a-time table; table[k][i] advances table[k-1][i] by one more zero
// byte, so the outputs are identical to the bitwise definition.
struct Tables {
  std::array<std::array<std::uint32_t, 256>, 8> t;
};

Tables build_tables() {
  Tables out{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit)
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    out.t[0][i] = c;
  }
  for (std::size_t k = 1; k < 8; ++k)
    for (std::uint32_t i = 0; i < 256; ++i)
      out.t[k][i] = out.t[0][out.t[k - 1][i] & 0xFF] ^ (out.t[k - 1][i] >> 8);
  return out;
}

const Tables& tables() {
  static const Tables t = build_tables();
  return t;
}

inline std::uint32_t le32(const std::byte* p) {
  return static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[0])) |
         (static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[1])) << 8) |
         (static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[2])) << 16) |
         (static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[3])) << 24);
}

}  // namespace

std::uint32_t crc32(std::span<const std::byte> data, std::uint32_t seed) {
  const auto& t = tables().t;
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  const std::byte* p = data.data();
  std::size_t n = data.size();
  while (n >= 8) {
    const std::uint32_t lo = c ^ le32(p);
    const std::uint32_t hi = le32(p + 4);
    c = t[7][lo & 0xFF] ^ t[6][(lo >> 8) & 0xFF] ^ t[5][(lo >> 16) & 0xFF] ^
        t[4][lo >> 24] ^ t[3][hi & 0xFF] ^ t[2][(hi >> 8) & 0xFF] ^
        t[1][(hi >> 16) & 0xFF] ^ t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  for (; n > 0; --n, ++p)
    c = t[0][(c ^ static_cast<std::uint8_t>(*p)) & 0xFF] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

}  // namespace vdc
