#include "common/rng.hpp"

#include <cmath>

namespace vdc {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // xoshiro must not start from the all-zero state; splitmix64 of any seed
  // cannot produce four zero words, but keep the guard for clarity.
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  VDC_ASSERT(lo <= hi);
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_u64(std::uint64_t n) {
  VDC_ASSERT(n > 0);
  // Lemire-style rejection to remove modulo bias.
  const std::uint64_t threshold = (~n + 1) % n;  // (2^64 - n) mod n
  for (;;) {
    const std::uint64_t r = next();
    if (r >= threshold) return r % n;
  }
}

double Rng::exponential(double rate) {
  VDC_ASSERT(rate > 0.0);
  // -log(1 - u) with u in [0,1) avoids log(0).
  return -std::log1p(-uniform()) / rate;
}

double Rng::weibull(double shape, double scale) {
  VDC_ASSERT(shape > 0.0 && scale > 0.0);
  return scale * std::pow(-std::log1p(-uniform()), 1.0 / shape);
}

double Rng::normal(double mean, double stddev) {
  // Box–Muller, always consuming exactly two uniforms.
  double u1 = uniform();
  double u2 = uniform();
  if (u1 <= 0.0) u1 = 0x1.0p-53;
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * M_PI * u2);
}

Rng Rng::fork() {
  // Use two draws to derive an independent child seed.
  const std::uint64_t a = next();
  const std::uint64_t b = next();
  return Rng(a ^ rotl(b, 29) ^ 0xd1b54a32d192ed03ull);
}

}  // namespace vdc
