#pragma once
// Internal invariant checking and error types.
//
// VDC_ASSERT is always on (simulation correctness over raw speed; the hot
// byte-level loops avoid it). Failures throw so tests can observe them.

#include <sstream>
#include <stdexcept>
#include <string>

namespace vdc {

/// Base class for all library errors.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// A broken internal invariant (a bug in the library or its caller).
class InvariantError : public Error {
 public:
  using Error::Error;
};

/// An invalid configuration or argument supplied by the caller.
class ConfigError : public Error {
 public:
  using Error::Error;
};

/// Data loss: recovery was attempted but the erasure pattern is not
/// correctable by the configured code (e.g. two failures under RAID-5).
class DataLossError : public Error {
 public:
  using Error::Error;
};

namespace detail {
[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << file << ":" << line << ": assertion failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw InvariantError(os.str());
}
}  // namespace detail

}  // namespace vdc

#define VDC_ASSERT(expr)                                              \
  do {                                                                \
    if (!(expr))                                                      \
      ::vdc::detail::assert_fail(#expr, __FILE__, __LINE__, "");      \
  } while (0)

#define VDC_ASSERT_MSG(expr, msg)                                     \
  do {                                                                \
    if (!(expr))                                                      \
      ::vdc::detail::assert_fail(#expr, __FILE__, __LINE__, (msg));   \
  } while (0)

#define VDC_REQUIRE(expr, msg)                            \
  do {                                                    \
    if (!(expr)) throw ::vdc::ConfigError(msg);           \
  } while (0)
