#pragma once
// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
//
// Used to seal checkpoint wire frames: recovery and migration move
// checkpoint images between nodes, and a frame whose CRC disagrees must be
// rejected rather than silently decoded into a corrupt VM.

#include <cstdint>
#include <span>

namespace vdc {

/// CRC-32 of `data`, optionally continuing from a previous value (pass the
/// prior result to checksum data in chunks).
std::uint32_t crc32(std::span<const std::byte> data,
                    std::uint32_t seed = 0);

}  // namespace vdc
