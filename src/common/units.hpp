#pragma once
// Units used throughout the library.
//
// Simulated time is a double in seconds (the discrete-event simulator needs
// continuous time; failure interarrivals are exponential). Byte quantities
// are 64-bit unsigned. Helper literals/functions keep call sites readable
// and dimensionally honest.

#include <cstdint>

namespace vdc {

/// Simulated time, in seconds.
using SimTime = double;

/// A byte count.
using Bytes = std::uint64_t;

/// A data rate, in bytes per second.
using Rate = double;

// --- time helpers ---------------------------------------------------------
constexpr SimTime milliseconds(double ms) { return ms * 1e-3; }
constexpr SimTime seconds(double s) { return s; }
constexpr SimTime minutes(double m) { return m * 60.0; }
constexpr SimTime hours(double h) { return h * 3600.0; }
constexpr SimTime days(double d) { return d * 86400.0; }

// --- byte helpers ----------------------------------------------------------
constexpr Bytes kib(std::uint64_t n) { return n * 1024ull; }
constexpr Bytes mib(std::uint64_t n) { return n * 1024ull * 1024ull; }
constexpr Bytes gib(std::uint64_t n) { return n * 1024ull * 1024ull * 1024ull; }

// --- rate helpers ----------------------------------------------------------
constexpr Rate mib_per_s(double n) { return n * 1024.0 * 1024.0; }
constexpr Rate gib_per_s(double n) { return n * 1024.0 * 1024.0 * 1024.0; }
/// Gigabit-per-second link speed expressed in bytes/s.
constexpr Rate gbit_per_s(double n) { return n * 1e9 / 8.0; }

}  // namespace vdc
