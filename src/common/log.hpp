#pragma once
// Minimal leveled logger.
//
// Logging defaults to Warn so tests and benchmarks stay quiet; examples turn
// on Info/Debug to narrate what the cluster is doing. The VDC_LOG
// environment variable (debug|info|warn|error|off, case-insensitive)
// overrides the default at first use, so any binary can be made verbose
// without a rebuild. The logger is a process-wide singleton guarded for
// concurrent use from worker threads.

#include <mutex>
#include <sstream>
#include <string>

namespace vdc {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Process-wide logger. Thread-safe.
class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  bool enabled(LogLevel level) const {
    return static_cast<int>(level) >= static_cast<int>(level_);
  }

  /// Write one line (used by the VDC_LOG macros).
  void write(LogLevel level, const std::string& component,
             const std::string& message);

 private:
  Logger();  // reads the VDC_LOG environment variable
  LogLevel level_ = LogLevel::Warn;
  std::mutex mu_;
};

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << std::forward<Args>(args));
  return os.str();
}
}  // namespace detail

}  // namespace vdc

#define VDC_LOG_AT(level, component, ...)                                \
  do {                                                                   \
    auto& vdc_logger = ::vdc::Logger::instance();                        \
    if (vdc_logger.enabled(level))                                       \
      vdc_logger.write(level, (component),                               \
                       ::vdc::detail::concat(__VA_ARGS__));              \
  } while (0)

#define VDC_DEBUG(component, ...) \
  VDC_LOG_AT(::vdc::LogLevel::Debug, component, __VA_ARGS__)
#define VDC_INFO(component, ...) \
  VDC_LOG_AT(::vdc::LogLevel::Info, component, __VA_ARGS__)
#define VDC_WARN(component, ...) \
  VDC_LOG_AT(::vdc::LogLevel::Warn, component, __VA_ARGS__)
#define VDC_ERROR(component, ...) \
  VDC_LOG_AT(::vdc::LogLevel::Error, component, __VA_ARGS__)
