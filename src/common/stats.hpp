#pragma once
// Streaming and batch statistics used by the simulator and benchmarks.

#include <cstddef>
#include <vector>

namespace vdc {

/// Kahan (compensated) summation: running sums of many small increments
/// (per-port byte accounting over millions of flow settlements) keep full
/// precision instead of drifting by one ulp of the running total per add.
struct KahanSum {
  double sum = 0.0;
  double carry = 0.0;  // running compensation

  void add(double x) {
    const double y = x - carry;
    const double t = sum + y;
    carry = (t - sum) - y;
    sum = t;
  }
  double value() const { return sum; }
};

/// Numerically stable streaming mean/variance (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance (0 for fewer than two samples).
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  /// Half-width of the 95% normal-approximation confidence interval.
  double ci95_halfwidth() const;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch sample container with percentile queries (keeps all samples).
class Samples {
 public:
  void add(double x) { xs_.push_back(x); }
  std::size_t count() const { return xs_.size(); }
  double mean() const;
  /// Percentile in [0, 100] by linear interpolation; 0.0 when empty (so
  /// exporters can query an untouched series without guarding).
  double percentile(double p) const;
  double median() const { return percentile(50.0); }
  const std::vector<double>& values() const { return xs_; }

 private:
  std::vector<double> xs_;
  mutable std::vector<double> sorted_;
  mutable bool sorted_valid_ = false;
  void ensure_sorted() const;
};

/// Fixed-bin histogram over [lo, hi). Out-of-range samples are counted in
/// explicit underflow/overflow counters rather than clamped into the edge
/// bins — folding a p999 outlier into the top in-range bucket would
/// silently cap every tail percentile read off the bins. Used for
/// dirty-page distributions and latency spreads.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);
  void add(double x);
  std::size_t bin_count() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  /// Every sample ever added, out-of-range ones included.
  std::size_t total() const { return total_; }
  /// Samples below lo / at or above hi (included in total()).
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }
  double low() const { return lo_; }
  double high() const { return hi_; }
  double bin_low(std::size_t bin) const;
  double bin_high(std::size_t bin) const { return bin_low(bin + 1); }

 private:
  double lo_, hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
};

}  // namespace vdc
