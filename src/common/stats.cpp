#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace vdc {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double n = na + nb;
  mean_ += delta * nb / n;
  m2_ += other.m2_ + delta * delta * na * nb / n;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::ci95_halfwidth() const {
  if (n_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

double Samples::mean() const {
  if (xs_.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs_) sum += x;
  return sum / static_cast<double>(xs_.size());
}

void Samples::ensure_sorted() const {
  if (!sorted_valid_ || sorted_.size() != xs_.size()) {
    sorted_ = xs_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }
}

double Samples::percentile(double p) const {
  VDC_ASSERT(p >= 0.0 && p <= 100.0);
  if (xs_.empty()) return 0.0;
  ensure_sorted();
  if (sorted_.size() == 1) return sorted_[0];
  const double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  VDC_REQUIRE(hi > lo, "Histogram: hi must exceed lo");
  VDC_REQUIRE(bins > 0, "Histogram: need at least one bin");
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<std::size_t>((x - lo_) / width);
  // Float rounding at the top edge can land exactly on bin_count.
  idx = std::min(idx, counts_.size() - 1);
  ++counts_[idx];
}

double Histogram::bin_low(std::size_t bin) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bin);
}

}  // namespace vdc
