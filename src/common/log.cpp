#include "common/log.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace vdc {

Logger::Logger() {
  const char* env = std::getenv("VDC_LOG");
  if (env == nullptr || *env == '\0') return;
  std::string name(env);
  for (char& c : name)
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  if (name == "debug")
    level_ = LogLevel::Debug;
  else if (name == "info")
    level_ = LogLevel::Info;
  else if (name == "warn" || name == "warning")
    level_ = LogLevel::Warn;
  else if (name == "error")
    level_ = LogLevel::Error;
  else if (name == "off" || name == "none")
    level_ = LogLevel::Off;
  else
    std::fprintf(stderr, "[WARN] log: unknown VDC_LOG level '%s' ignored\n",
                 env);
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, const std::string& component,
                   const std::string& message) {
  static const char* names[] = {"DEBUG", "INFO", "WARN", "ERROR"};
  const int idx = static_cast<int>(level);
  std::lock_guard<std::mutex> lock(mu_);
  std::fprintf(stderr, "[%s] %s: %s\n",
               (idx >= 0 && idx < 4) ? names[idx] : "?", component.c_str(),
               message.c_str());
}

}  // namespace vdc
