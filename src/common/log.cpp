#include "common/log.hpp"

#include <cstdio>

namespace vdc {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::write(LogLevel level, const std::string& component,
                   const std::string& message) {
  static const char* names[] = {"DEBUG", "INFO", "WARN", "ERROR"};
  const int idx = static_cast<int>(level);
  std::lock_guard<std::mutex> lock(mu_);
  std::fprintf(stderr, "[%s] %s: %s\n",
               (idx >= 0 && idx < 4) ? names[idx] : "?", component.c_str(),
               message.c_str());
}

}  // namespace vdc
