#include "common/env.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>

#include "common/log.hpp"

namespace vdc::env {

namespace {
std::string lowered(std::string_view s) {
  std::string out(s);
  for (char& c : out)
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}
}  // namespace

std::optional<std::string> raw(const char* name) {
  const char* value = std::getenv(name);
  if (value == nullptr) return std::nullopt;
  return std::string(value);
}

std::optional<long long> int_knob(const char* name) {
  const auto value = raw(name);
  if (!value.has_value()) return std::nullopt;
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(value->c_str(), &end, 10);
  if (end == value->c_str() || *end != '\0' || errno == ERANGE || v < 0) {
    VDC_WARN("env", "ignoring ", name, "=\"", *value,
             "\": not a non-negative integer");
    return std::nullopt;
  }
  return v;
}

std::optional<bool> bool_knob(const char* name) {
  const auto value = raw(name);
  if (!value.has_value()) return std::nullopt;
  const std::string v = lowered(*value);
  if (v == "1" || v == "true" || v == "on") return true;
  if (v == "0" || v == "false" || v == "off") return false;
  VDC_WARN("env", "ignoring ", name, "=\"", *value,
           "\": expected 0/1 (or true/false, on/off)");
  return std::nullopt;
}

std::optional<std::string> enum_knob(
    const char* name, std::initializer_list<std::string_view> allowed) {
  const auto value = raw(name);
  if (!value.has_value()) return std::nullopt;
  for (std::string_view option : allowed)
    if (*value == option) return value;
  std::string valid;
  for (std::string_view option : allowed) {
    if (!valid.empty()) valid += '|';
    valid += option;
  }
  VDC_WARN("env", "ignoring ", name, "=\"", *value, "\": expected one of ",
           valid);
  return std::nullopt;
}

}  // namespace vdc::env
