#pragma once
// Deterministic, seedable random number generation.
//
// All stochastic behaviour in the library flows through Rng so that every
// simulation is exactly reproducible from a 64-bit seed. The generator is
// xoshiro256** (public domain, Blackman & Vigna) seeded via SplitMix64,
// which gives well-distributed state even from small seeds.

#include <array>
#include <cstdint>

#include "common/assert.hpp"

namespace vdc {

/// xoshiro256** PRNG with convenience distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  /// Re-initialise state from a 64-bit seed via SplitMix64.
  void reseed(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t next();

  // UniformRandomBitGenerator interface (usable with <random> adaptors).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ull; }
  result_type operator()() { return next(); }

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0. Unbiased (rejection).
  std::uint64_t uniform_u64(std::uint64_t n);

  /// Exponentially distributed variate with the given rate (1/mean).
  double exponential(double rate);

  /// Weibull(shape k, scale lambda) variate.
  double weibull(double shape, double scale);

  /// Standard normal via Box–Muller (no cached spare; deterministic order).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Bernoulli trial.
  bool chance(double p) { return uniform() < p; }

  /// Fork a child RNG whose stream is decorrelated from this one.
  /// Useful to give each component an independent deterministic stream.
  Rng fork();

 private:
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace vdc
