#pragma once
// Shared network-attached storage model.
//
// The NAS is the baseline checkpoint sink the paper argues against: every
// node's checkpoint stream funnels through one front-end network port and
// is then written by one disk array. Both stages contend — the front-end
// port shares bandwidth max-min fairly among concurrent streams, and the
// array serves writes FCFS.

#include <functional>

#include "net/fabric.hpp"
#include "storage/disk.hpp"

namespace vdc::storage {

struct NasSpec {
  Rate frontend_rate = gbit_per_s(10);    // NAS head uplink
  DiskSpec array{mib_per_s(400), mib_per_s(500), milliseconds(5)};
};

class Nas {
 public:
  using Callback = std::function<void()>;

  Nas(simkit::Simulator& sim, net::Fabric& fabric, NasSpec spec);

  /// Stream `bytes` from host `src` into the NAS and write them durably.
  /// `done` fires when the bytes are on the array (checkpoint latency
  /// endpoint for the disk-full baseline).
  void store(net::HostId src, Bytes bytes, Callback done);

  /// Read `bytes` back to host `dst` (restart path).
  void fetch(net::HostId dst, Bytes bytes, Callback done);

  net::PortId frontend_port() const { return frontend_; }
  Disk& array() { return array_; }
  const NasSpec& spec() const { return spec_; }

  Bytes bytes_stored() const { return bytes_stored_; }

 private:
  /// Per-request accounting: `nas.<op>.ops` / `nas.<op>.bytes` counters
  /// plus the `nas.queue_depth` gauge whose peak is the array backlog
  /// high-water mark (the single-sink contention the paper measures).
  void account(const char* op, Bytes bytes);

  simkit::Simulator& sim_;
  net::Fabric& fabric_;
  NasSpec spec_;
  net::PortId frontend_;
  Disk array_;
  Bytes bytes_stored_ = 0;
};

}  // namespace vdc::storage
