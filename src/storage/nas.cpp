#include "storage/nas.hpp"

#include <utility>

namespace vdc::storage {

Nas::Nas(simkit::Simulator& sim, net::Fabric& fabric, NasSpec spec)
    : fabric_(fabric),
      spec_(spec),
      frontend_(fabric.add_shared_port(spec.frontend_rate, "nas/frontend")),
      array_(sim, spec.array) {}

void Nas::store(net::HostId src, Bytes bytes, Callback done) {
  bytes_stored_ += bytes;
  fabric_.transfer_to_port(src, frontend_, bytes,
                           [this, bytes, done = std::move(done)]() mutable {
                             array_.write(bytes, std::move(done));
                           });
}

void Nas::fetch(net::HostId dst, Bytes bytes, Callback done) {
  array_.read(bytes, [this, dst, bytes, done = std::move(done)]() mutable {
    fabric_.transfer_from_port(frontend_, dst, bytes, std::move(done));
  });
}

}  // namespace vdc::storage
