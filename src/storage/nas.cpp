#include "storage/nas.hpp"

#include <utility>

namespace vdc::storage {

Nas::Nas(simkit::Simulator& sim, net::Fabric& fabric, NasSpec spec)
    : sim_(sim),
      fabric_(fabric),
      spec_(spec),
      frontend_(fabric.add_shared_port(spec.frontend_rate, "nas/frontend")),
      array_(sim, spec.array) {}

void Nas::account(const char* op, Bytes bytes) {
  auto& metrics = sim_.telemetry().metrics();
  const std::string prefix = std::string("nas.") + op;
  metrics.add(prefix + ".ops", 1.0);
  metrics.add(prefix + ".bytes", static_cast<double>(bytes));
  metrics.set("nas.queue_depth",
              static_cast<double>(array_.queue_length()));
}

void Nas::store(net::HostId src, Bytes bytes, Callback done) {
  bytes_stored_ += bytes;
  account("store", bytes);
  fabric_.transfer_to_port(src, frontend_, bytes,
                           [this, bytes, done = std::move(done)]() mutable {
                             // Backlog at the array as this stream lands:
                             // its peak is the fan-in congestion figure.
                             sim_.telemetry().metrics().set(
                                 "nas.queue_depth",
                                 static_cast<double>(array_.queue_length() +
                                                     1));
                             array_.write(bytes, std::move(done));
                           });
}

void Nas::fetch(net::HostId dst, Bytes bytes, Callback done) {
  account("fetch", bytes);
  array_.read(bytes, [this, dst, bytes, done = std::move(done)]() mutable {
    fabric_.transfer_from_port(frontend_, dst, bytes, std::move(done));
  });
}

}  // namespace vdc::storage
