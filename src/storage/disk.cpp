#include "storage/disk.hpp"

#include <utility>

#include "common/assert.hpp"

namespace vdc::storage {

Disk::Disk(simkit::Simulator& sim, DiskSpec spec)
    : sim_(sim), spec_(spec), head_(sim, 1) {
  VDC_REQUIRE(spec.write_bandwidth > 0 && spec.read_bandwidth > 0,
              "disk bandwidth must be positive");
  VDC_REQUIRE(spec.access_latency >= 0, "disk latency must be non-negative");
}

SimTime Disk::write_service_time(Bytes bytes) const {
  return spec_.access_latency +
         static_cast<double>(bytes) / spec_.write_bandwidth;
}

SimTime Disk::read_service_time(Bytes bytes) const {
  return spec_.access_latency +
         static_cast<double>(bytes) / spec_.read_bandwidth;
}

void Disk::service(SimTime service_time, const char* wait_metric,
                   Callback done) {
  const SimTime enqueued = sim_.now();
  head_.acquire([this, enqueued, service_time, wait_metric,
                 done = std::move(done)]() mutable {
    sim_.telemetry().metrics().observe(wait_metric, sim_.now() - enqueued);
    sim_.after(service_time, [this, done = std::move(done)] {
      head_.release();
      done();
    });
  });
}

void Disk::write(Bytes bytes, Callback done) {
  bytes_written_ += bytes;
  service(write_service_time(bytes), "disk.write_wait_s", std::move(done));
}

void Disk::read(Bytes bytes, Callback done) {
  bytes_read_ += bytes;
  service(read_service_time(bytes), "disk.read_wait_s", std::move(done));
}

}  // namespace vdc::storage
