#pragma once
// Single-spindle / single-volume disk timing model.
//
// A request costs a fixed positioning latency plus size/bandwidth, and the
// device serves requests FCFS (one at a time). This intentionally simple
// model is what makes the baseline's "write N VM images to stable storage"
// expensive, which is the phenomenon diskless checkpointing removes.

#include <functional>

#include "common/units.hpp"
#include "simkit/resource.hpp"
#include "simkit/simulator.hpp"

namespace vdc::storage {

struct DiskSpec {
  Rate write_bandwidth = mib_per_s(150);  // commodity SATA of the paper's era
  Rate read_bandwidth = mib_per_s(160);
  SimTime access_latency = milliseconds(8);
};

class Disk {
 public:
  using Callback = std::function<void()>;

  Disk(simkit::Simulator& sim, DiskSpec spec);

  /// Queue a write of `bytes`; `done` fires when it is durable.
  void write(Bytes bytes, Callback done);

  /// Queue a read of `bytes`; `done` fires when data is in memory.
  void read(Bytes bytes, Callback done);

  /// Service time of one write if the device were idle.
  SimTime write_service_time(Bytes bytes) const;
  SimTime read_service_time(Bytes bytes) const;

  const DiskSpec& spec() const { return spec_; }
  std::size_t queue_length() const { return head_.queue_length(); }
  double busy_time() const { return head_.busy_time(); }

  /// Totals for accounting.
  Bytes bytes_written() const { return bytes_written_; }
  Bytes bytes_read() const { return bytes_read_; }

 private:
  /// Serve one FCFS request, recording the time spent waiting behind the
  /// queue into the `wait_metric` histogram (the device's contention).
  void service(SimTime service_time, const char* wait_metric, Callback done);

  simkit::Simulator& sim_;
  DiskSpec spec_;
  simkit::Resource head_;
  Bytes bytes_written_ = 0;
  Bytes bytes_read_ = 0;
};

}  // namespace vdc::storage
