#pragma once
// Cluster management: physical nodes, VM placement, and global names.
//
// The manager owns the fabric, one hypervisor per physical node, and the
// VM -> node placement registry. It is the substrate both checkpointing
// runtimes (DVDC and the NAS baseline) are built on. Killing a node takes
// its hypervisor — and every VM placed there — down with it, which is the
// correlated-failure fact that forces the orthogonal RAID-group placement
// of Section IV-B.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/placement.hpp"
#include "common/rng.hpp"
#include "net/fabric.hpp"
#include "vm/machine.hpp"

namespace vdc::cluster {

using NodeId = std::uint32_t;

struct NodeSpec {
  Rate nic_rate = gbit_per_s(10);
  /// Memory XOR/copy bandwidth for parity work on this node.
  Rate xor_rate = gib_per_s(4);
  /// RAM available for guests + in-memory checkpoints.
  Bytes memory = gib(64);
  /// Fault domain: nodes in the same rack share power/switch and can fail
  /// together (rack-level correlated failures).
  std::uint32_t rack = 0;
};

using RackId = std::uint32_t;

class PhysicalNode {
 public:
  PhysicalNode(NodeId id, std::string name, net::HostId host, NodeSpec spec,
               Rng rng)
      : id_(id),
        name_(std::move(name)),
        host_(host),
        spec_(spec),
        hypervisor_(rng) {}

  NodeId id() const { return id_; }
  const std::string& name() const { return name_; }
  net::HostId host() const { return host_; }
  const NodeSpec& spec() const { return spec_; }
  RackId rack() const { return spec_.rack; }
  bool alive() const { return alive_; }

  vm::Hypervisor& hypervisor() { return hypervisor_; }
  const vm::Hypervisor& hypervisor() const { return hypervisor_; }

 private:
  friend class ClusterManager;
  NodeId id_;
  std::string name_;
  net::HostId host_;
  NodeSpec spec_;
  bool alive_ = true;
  vm::Hypervisor hypervisor_;
};

/// Maps VM ids to cluster-global names (virtual IPs). On recovery the VM
/// keeps its name but the binding moves — the "ARP update" of Section II-A.
class NameService {
 public:
  void bind(vm::VmId id, NodeId node);
  void unbind(vm::VmId id);
  std::optional<NodeId> resolve(vm::VmId id) const;
  /// Stable virtual address for a VM (derived, never changes).
  static std::string address(vm::VmId id);
  std::uint64_t rebind_count() const { return rebinds_; }

 private:
  std::unordered_map<vm::VmId, NodeId> bindings_;
  std::uint64_t rebinds_ = 0;
};

class ClusterManager {
 public:
  using FailureCallback =
      std::function<void(NodeId, const std::vector<vm::VmId>&)>;

  ClusterManager(simkit::Simulator& sim, Rng rng,
                 SimTime link_latency = 50e-6);

  /// Add a physical node. Nodes are numbered densely from 0.
  NodeId add_node(NodeSpec spec = {}, std::string name = {});

  std::size_t node_count() const { return nodes_.size(); }
  PhysicalNode& node(NodeId id);
  const PhysicalNode& node(NodeId id) const;
  std::vector<NodeId> alive_nodes() const;

  net::Fabric& fabric() { return fabric_; }
  simkit::Simulator& sim() { return sim_; }

  /// The versioned pool map: node joins/drains bump its version, VM
  /// placement churn bumps its stamp. Layout consumers (GroupPlanner,
  /// DvdcBackend::ensure_plan) key their caches on it.
  const PlacementMap& placement_map() const { return pool_map_; }
  PlacementMap& placement_map() { return pool_map_; }

  // --- VM lifecycle --------------------------------------------------------
  /// Boot a VM on `node`; returns its cluster-wide id.
  vm::VmId boot_vm(NodeId node, Bytes page_size, std::size_t page_count,
                   std::unique_ptr<vm::Workload> workload,
                   std::string name = {});

  /// Where a VM currently lives (nullopt if destroyed or lost).
  std::optional<NodeId> locate(vm::VmId id) const;

  /// All live VM ids, ascending.
  std::vector<vm::VmId> all_vms() const;

  /// Hypervisor access for a VM's current node.
  vm::VirtualMachine& machine(vm::VmId id);

  /// Move a (re-created or evicted) VM onto `node` and rebind its name.
  void place(std::unique_ptr<vm::VirtualMachine> machine, NodeId node);

  /// Remove a VM from the cluster entirely.
  void destroy_vm(vm::VmId id);

  // --- failure handling ----------------------------------------------------
  /// Kill a node: its VMs are lost immediately. Fires the failure callback
  /// with the list of lost VM ids and unbinds their names.
  void kill_node(NodeId id);

  /// Correlated failure: kill every alive node in `rack`. Returns all VMs
  /// lost across the rack (the failure callback fires once per node).
  std::vector<vm::VmId> kill_rack(RackId rack);

  /// Distinct rack ids among alive nodes, ascending.
  std::vector<RackId> alive_racks() const;

  /// Bring a node back empty (repaired hardware, fresh hypervisor).
  void revive_node(NodeId id);

  void set_on_failure(FailureCallback cb) { on_failure_ = std::move(cb); }

  // --- fencing --------------------------------------------------------------
  // A node declared failed is fenced with the epoch token current at the
  // time of the declaration. If it was a false positive — the node is
  // actually alive behind a partition — any stale parity/checkpoint write
  // it attempts is rejected until the fence is lifted on rejoin.
  void fence_node(NodeId id, std::uint64_t token);
  void lift_fence(NodeId id);
  bool is_fenced(NodeId id) const { return fences_.count(id) != 0; }
  /// Token a node was fenced with (0 if unfenced).
  std::uint64_t fence_token(NodeId id) const;

  /// Degraded mode: redundancy is currently reduced (a recovery episode is
  /// in flight or a stripe is damaged). Raised/cleared by the recovery
  /// supervisor; consumers (scrubber, rebalancer, operators) use it to
  /// defer work that would race the repair.
  bool degraded() const { return degraded_; }
  void set_degraded(bool on);

  // --- time ----------------------------------------------------------------
  /// Advance every running guest on every live node by `dt`.
  void advance_workloads(SimTime dt);

  NameService& names() { return names_; }

  /// Total guest memory placed on a node (for capacity checks).
  Bytes node_guest_bytes(NodeId id) const;

  /// True if `extra` more guest bytes still fit under the node's memory.
  bool fits(NodeId id, Bytes extra) const;

  /// Enforce guest-memory capacity on boot_vm/place (default off so small
  /// experiments need not size NodeSpec::memory).
  void set_enforce_capacity(bool on) { enforce_capacity_ = on; }

  /// Fraction of pages left zero when booting fresh guests, applied to
  /// every node's hypervisor (see Hypervisor::set_boot_zero_fraction).
  void set_boot_zero_fraction(double fraction);

 private:
  simkit::Simulator& sim_;
  Rng rng_;
  net::Fabric fabric_;
  std::vector<std::unique_ptr<PhysicalNode>> nodes_;
  std::unordered_map<vm::VmId, NodeId> placement_;
  NameService names_;
  FailureCallback on_failure_;
  vm::VmId next_vm_id_ = 1;
  bool enforce_capacity_ = false;
  bool degraded_ = false;
  std::unordered_map<NodeId, std::uint64_t> fences_;
  PlacementMap pool_map_;
};

}  // namespace vdc::cluster
