#pragma once
// Heartbeat-based failure detection.
//
// Each node is expected to emit a heartbeat every `period`; the detector
// (conceptually running on the checkpoint coordinator) declares a node
// failed after `timeout` without one.
//
// Two observation modes:
//  * Oracle (default): a live node's heartbeat always arrives, so
//    detection latency is the time from the actual crash to the first
//    missed-timeout check — the component recovery-time benchmarks must
//    include.
//  * Wire-true (set_wire_mode): every node emits real beat frames toward
//    the observer node over the fabric, judged by its fault plane. Drops,
//    corruption (caught by a real CRC32 check) and partitions delay or
//    defeat individual beats, so a partitioned-but-alive node times out —
//    a *false positive*. Such a node stays reported until a beat gets
//    through again, at which point the false-positive callback fires and
//    the caller reconciles (fencing + rejoin); note_repair re-arms the
//    tracker.

#include <functional>
#include <vector>

#include "cluster/heartbeat_config.hpp"
#include "cluster/manager.hpp"
#include "simkit/simulator.hpp"

namespace vdc::cluster {

class HeartbeatDetector {
 public:
  /// `on_detect(node, detection_latency)` fires once per detected failure
  /// (confirmed or — in wire mode — merely suspected).
  using DetectCallback = std::function<void(NodeId, SimTime)>;
  /// Ground-truth liveness for the wire-mode emitters: must be true for a
  /// node that is physically up even if the cluster has declared it dead
  /// (the zombie keeps beating — that is how the false positive is
  /// eventually discovered).
  using LivePredicate = std::function<bool(NodeId)>;
  using FalsePositiveCallback = std::function<void(NodeId)>;

  HeartbeatDetector(simkit::Simulator& sim, ClusterManager& cluster,
                    HeartbeatConfig config = {});

  /// Enable wire-true observation (before start()): nodes emit beats to
  /// `observer`'s host across the fabric's fault plane.
  void set_wire_mode(net::Fabric& fabric, NodeId observer,
                     LivePredicate live);

  /// Wire mode: a beat arrived from a node already reported failed whose
  /// failure was never note_failure()d — a false positive. Fires once per
  /// suspicion; note_repair re-arms it.
  void set_on_false_positive(FalsePositiveCallback cb) {
    on_false_positive_ = std::move(cb);
  }

  void start(DetectCallback on_detect);
  void stop();

  /// Tell the detector a node failed at `t` (the ClusterManager's
  /// kill_node caller does this so detection latency can be measured).
  /// A node already reported — e.g. suspected through a partition before
  /// it really died — is NOT re-reported.
  void note_failure(NodeId node, SimTime t);

  /// Forget a node's failure record (after repair/revive/rejoin). In wire
  /// mode this also re-arms the node's beat emitter.
  void note_repair(NodeId node);

  std::uint64_t detections() const { return detections_; }
  bool wire_mode() const { return fabric_ != nullptr; }

  /// Wire mode: true while `node` is reported failed but was never
  /// note_failure()d (a suspicion that may yet prove false).
  bool suspected(NodeId node) const;

 private:
  void tick();
  void schedule_beat(NodeId node);
  void emit_beat(NodeId node);
  void on_beat(NodeId node);
  void grow_trackers();

  struct Tracker {
    SimTime last_seen = 0.0;
    SimTime failed_at = -1.0;  // < 0: believed alive
    bool reported = false;
    bool false_positive_flagged = false;
  };

  simkit::Simulator& sim_;
  ClusterManager& cluster_;
  HeartbeatConfig config_;
  DetectCallback on_detect_;
  FalsePositiveCallback on_false_positive_;
  // Wire mode.
  net::Fabric* fabric_ = nullptr;
  NodeId observer_ = 0;
  LivePredicate live_;
  std::vector<simkit::EventId> beat_timers_;
  std::uint64_t beat_seq_ = 0;

  std::vector<Tracker> trackers_;
  simkit::EventId timer_ = simkit::kInvalidEvent;
  bool running_ = false;
  std::uint64_t detections_ = 0;
};

}  // namespace vdc::cluster
