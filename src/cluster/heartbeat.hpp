#pragma once
// Heartbeat-based failure detection.
//
// Each node is expected to emit a heartbeat every `period`; the detector
// (conceptually running on the checkpoint coordinator) declares a node
// failed after `timeout` without one. In the simulator a live node's
// heartbeat always arrives, so detection latency is the time from the
// actual crash to the first missed-timeout check — which is exactly the
// component that recovery-time benchmarks must include.

#include <functional>
#include <vector>

#include "cluster/manager.hpp"
#include "simkit/simulator.hpp"

namespace vdc::cluster {

struct HeartbeatConfig {
  SimTime period = milliseconds(100);
  SimTime timeout = milliseconds(500);
};

class HeartbeatDetector {
 public:
  /// `on_detect(node, detection_latency)` fires once per detected failure.
  using DetectCallback = std::function<void(NodeId, SimTime)>;

  HeartbeatDetector(simkit::Simulator& sim, ClusterManager& cluster,
                    HeartbeatConfig config = {});

  void start(DetectCallback on_detect);
  void stop();

  /// Tell the detector a node failed at `t` (the ClusterManager's
  /// kill_node caller does this so detection latency can be measured).
  void note_failure(NodeId node, SimTime t);

  /// Forget a node's failure record (after repair/revive).
  void note_repair(NodeId node);

  std::uint64_t detections() const { return detections_; }

 private:
  void tick();

  struct Tracker {
    SimTime last_seen = 0.0;
    SimTime failed_at = -1.0;  // < 0: believed alive
    bool reported = false;
  };

  simkit::Simulator& sim_;
  ClusterManager& cluster_;
  HeartbeatConfig config_;
  DetectCallback on_detect_;
  std::vector<Tracker> trackers_;
  simkit::EventId timer_ = simkit::kInvalidEvent;
  bool running_ = false;
  std::uint64_t detections_ = 0;
};

}  // namespace vdc::cluster
