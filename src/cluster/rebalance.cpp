#include "cluster/rebalance.hpp"

#include <memory>
#include <utility>

#include "common/assert.hpp"
#include "common/log.hpp"

namespace vdc::cluster {

MigrationService::MigrationService(simkit::Simulator& sim,
                                   ClusterManager& cluster,
                                   migration::PreCopyConfig config)
    : sim_(sim), cluster_(cluster), migrator_(sim, cluster.fabric(), config) {}

void MigrationService::migrate(vm::VmId vm, NodeId target,
                               DoneCallback done) {
  const auto loc = cluster_.locate(vm);
  VDC_REQUIRE(loc.has_value(), "migrate: VM is not placed");
  VDC_REQUIRE(cluster_.node(target).alive(),
              "migrate: target node is dead");
  VDC_REQUIRE(*loc != target, "migrate: VM already on the target node");
  queue_.push_back(Request{vm, target, std::move(done)});
  pump();
}

void MigrationService::pump() {
  if (draining_ || queue_.empty() || migrator_.busy()) return;
  draining_ = true;
  Request req = std::move(queue_.front());
  queue_.pop_front();

  const auto loc = cluster_.locate(req.vm);
  if (!loc.has_value() || !cluster_.node(req.target).alive()) {
    // The VM or the target vanished while queued; drop the request.
    draining_ = false;
    if (req.done) req.done(migration::MigrationStats{});
    sim_.after(0.0, [this] { pump(); });
    return;
  }

  auto& src = cluster_.node(*loc);
  auto& dst = cluster_.node(req.target);
  migrator_.migrate(
      req.vm, src.hypervisor(), src.host(), dst.hypervisor(), dst.host(),
      [this, req = std::move(req)](const migration::MigrationStats& stats) {
        // The migrator moved the guest hypervisor-to-hypervisor; fix up
        // the cluster's placement registry and name binding.
        auto machine =
            cluster_.node(req.target).hypervisor().evict(req.vm);
        cluster_.place(std::move(machine), req.target);
        ++completed_;
        draining_ = false;
        VDC_DEBUG("rebalance", "vm ", req.vm, " migrated to node ",
                  req.target);
        if (req.done) req.done(stats);
        pump();
      });
}

Rebalancer::Spread Rebalancer::measure() const {
  Spread spread;
  bool first = true;
  for (NodeId nid : cluster_.alive_nodes()) {
    const std::size_t load = cluster_.node(nid).hypervisor().vm_count();
    if (first || load > spread.max_load) {
      spread.max_load = load;
      spread.max_node = nid;
    }
    if (first || load < spread.min_load) {
      spread.min_load = load;
      spread.min_node = nid;
    }
    first = false;
  }
  return spread;
}

void Rebalancer::rebalance(DoneCallback done) {
  auto stats = std::make_shared<RebalanceStats>();
  stats->max_load_before = measure().max_load;
  step(stats, sim_.now(), std::move(done));
}

void Rebalancer::step(std::shared_ptr<RebalanceStats> stats, SimTime start,
                      DoneCallback done) {
  const Spread spread = measure();
  if (spread.max_load <= spread.min_load + 1) {
    stats->max_load_after = spread.max_load;
    stats->duration = sim_.now() - start;
    if (done) done(*stats);
    return;
  }
  // Move the lowest-id VM off the most loaded node (deterministic).
  const auto vms =
      cluster_.node(spread.max_node).hypervisor().vm_ids();
  VDC_ASSERT(!vms.empty());
  const vm::VmId mover = vms.front();
  const Bytes image = cluster_.machine(mover).image().size_bytes();
  migrations_.migrate(
      mover, spread.min_node,
      [this, stats, start, image, done = std::move(done)](
          const migration::MigrationStats&) mutable {
        ++stats->migrations;
        stats->bytes_moved += image;
        step(stats, start, std::move(done));
      });
}

}  // namespace vdc::cluster
