#include "cluster/heartbeat.hpp"

#include <utility>

#include "common/assert.hpp"

namespace vdc::cluster {

HeartbeatDetector::HeartbeatDetector(simkit::Simulator& sim,
                                     ClusterManager& cluster,
                                     HeartbeatConfig config)
    : sim_(sim), cluster_(cluster), config_(config) {
  VDC_REQUIRE(config.period > 0.0, "heartbeat period must be positive");
  VDC_REQUIRE(config.timeout >= config.period,
              "timeout must cover at least one period");
}

void HeartbeatDetector::start(DetectCallback on_detect) {
  VDC_REQUIRE(!running_, "detector already running");
  running_ = true;
  on_detect_ = std::move(on_detect);
  trackers_.assign(cluster_.node_count(), Tracker{});
  for (auto& t : trackers_) t.last_seen = sim_.now();
  timer_ = sim_.after(config_.period, [this] { tick(); });
}

void HeartbeatDetector::stop() {
  running_ = false;
  if (timer_ != simkit::kInvalidEvent) {
    sim_.cancel(timer_);
    timer_ = simkit::kInvalidEvent;
  }
}

void HeartbeatDetector::note_failure(NodeId node, SimTime t) {
  VDC_ASSERT(node < trackers_.size());
  trackers_[node].failed_at = t;
  trackers_[node].reported = false;
}

void HeartbeatDetector::note_repair(NodeId node) {
  VDC_ASSERT(node < trackers_.size());
  trackers_[node] = Tracker{};
  trackers_[node].last_seen = sim_.now();
}

void HeartbeatDetector::tick() {
  timer_ = simkit::kInvalidEvent;
  if (!running_) return;

  // Grow trackers if nodes were added after start().
  if (trackers_.size() < cluster_.node_count()) {
    Tracker fresh;
    fresh.last_seen = sim_.now();
    trackers_.resize(cluster_.node_count(), fresh);
  }

  for (NodeId id = 0; id < trackers_.size(); ++id) {
    Tracker& t = trackers_[id];
    if (cluster_.node(id).alive()) {
      t.last_seen = sim_.now();
      continue;
    }
    if (t.reported) continue;
    if (sim_.now() - t.last_seen >= config_.timeout) {
      t.reported = true;
      ++detections_;
      const SimTime latency =
          t.failed_at >= 0.0 ? sim_.now() - t.failed_at : 0.0;
      if (on_detect_) on_detect_(id, latency);
      if (!running_) return;  // callback may stop us
    }
  }
  timer_ = sim_.after(config_.period, [this] { tick(); });
}

}  // namespace vdc::cluster
