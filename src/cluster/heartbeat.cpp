#include "cluster/heartbeat.hpp"

#include <array>
#include <utility>

#include "common/assert.hpp"
#include "common/crc32.hpp"
#include "net/fault.hpp"

namespace vdc::cluster {

HeartbeatDetector::HeartbeatDetector(simkit::Simulator& sim,
                                     ClusterManager& cluster,
                                     HeartbeatConfig config)
    : sim_(sim), cluster_(cluster), config_(config) {
  VDC_REQUIRE(config.period > 0.0, "heartbeat period must be positive");
  VDC_REQUIRE(config.timeout >= config.period,
              "timeout must cover at least one period");
}

void HeartbeatDetector::set_wire_mode(net::Fabric& fabric, NodeId observer,
                                      LivePredicate live) {
  VDC_REQUIRE(!running_, "set_wire_mode must precede start()");
  VDC_REQUIRE(live != nullptr, "wire mode needs a liveness predicate");
  fabric_ = &fabric;
  observer_ = observer;
  live_ = std::move(live);
}

void HeartbeatDetector::start(DetectCallback on_detect) {
  VDC_REQUIRE(!running_, "detector already running");
  running_ = true;
  on_detect_ = std::move(on_detect);
  // Failure/report state survives a stop/start cycle — a node already
  // reported dead must not be re-reported by a restart. Only the liveness
  // baselines reset: the stopped interval does not count as silence.
  trackers_.resize(cluster_.node_count());
  for (auto& t : trackers_) t.last_seen = sim_.now();
  if (wire_mode()) {
    beat_timers_.assign(cluster_.node_count(), simkit::kInvalidEvent);
    for (NodeId id = 0; id < beat_timers_.size(); ++id) schedule_beat(id);
  }
  timer_ = sim_.after(config_.period, [this] { tick(); });
}

void HeartbeatDetector::stop() {
  running_ = false;
  if (timer_ != simkit::kInvalidEvent) {
    sim_.cancel(timer_);
    timer_ = simkit::kInvalidEvent;
  }
  for (auto& ev : beat_timers_) {
    if (ev != simkit::kInvalidEvent) sim_.cancel(ev);
    ev = simkit::kInvalidEvent;
  }
}

void HeartbeatDetector::note_failure(NodeId node, SimTime t) {
  VDC_ASSERT(node < trackers_.size());
  // `reported` is left alone: a node already suspected (wire mode) must
  // not produce a second detection when its real death is recorded.
  trackers_[node].failed_at = t;
}

void HeartbeatDetector::note_repair(NodeId node) {
  VDC_ASSERT(node < trackers_.size());
  trackers_[node] = Tracker{};
  trackers_[node].last_seen = sim_.now();
  if (wire_mode() && running_ && node < beat_timers_.size() &&
      beat_timers_[node] == simkit::kInvalidEvent) {
    schedule_beat(node);
  }
}

bool HeartbeatDetector::suspected(NodeId node) const {
  if (node >= trackers_.size()) return false;
  const Tracker& t = trackers_[node];
  return t.reported && t.failed_at < 0.0;
}

void HeartbeatDetector::grow_trackers() {
  if (trackers_.size() >= cluster_.node_count()) return;
  Tracker fresh;
  fresh.last_seen = sim_.now();
  trackers_.resize(cluster_.node_count(), fresh);
  if (wire_mode()) {
    const std::size_t old = beat_timers_.size();
    beat_timers_.resize(cluster_.node_count(), simkit::kInvalidEvent);
    for (std::size_t id = old; id < beat_timers_.size(); ++id)
      schedule_beat(static_cast<NodeId>(id));
  }
}

void HeartbeatDetector::schedule_beat(NodeId node) {
  beat_timers_[node] =
      sim_.after(config_.period, [this, node] { emit_beat(node); });
}

void HeartbeatDetector::emit_beat(NodeId node) {
  if (!running_) return;
  beat_timers_[node] = simkit::kInvalidEvent;
  if (!live_(node)) return;  // dead senders fall silent; note_repair re-arms
  schedule_beat(node);

  if (node == observer_) {
    // The observer sees itself locally; no wire involved.
    on_beat(node);
    return;
  }
  SimTime latency = fabric_->link_latency();
  if (fabric_->faults_active()) {
    const net::HostId src = cluster_.node(node).host();
    const net::HostId dst = cluster_.node(observer_).host();
    const net::Judgement verdict = fabric_->faults().judge(src, dst);
    if (verdict.outcome == net::Delivery::kDropped)
      return;  // net.drops counted by the fault plane
    latency += verdict.extra_latency;
    if (verdict.outcome == net::Delivery::kCorrupted) {
      // Beat frame {node, seq}: the CRC32 catches the flipped bit and the
      // observer discards the frame — effectively a lost beat.
      std::array<std::byte, 12> frame{};
      std::uint64_t seq = ++beat_seq_;
      for (int i = 0; i < 4; ++i)
        frame[i] = static_cast<std::byte>((node >> (8 * i)) & 0xff);
      for (int i = 0; i < 8; ++i)
        frame[4 + i] = static_cast<std::byte>((seq >> (8 * i)) & 0xff);
      const std::uint32_t crc = crc32(frame);
      if (net::crc_catches_flip(frame, crc, verdict.corrupt_bit)) {
        sim_.telemetry().metrics().add("net.corrupt_frames", 1.0);
        return;
      }
    }
  }
  sim_.after(latency, [this, node] {
    if (running_) on_beat(node);
  });
}

void HeartbeatDetector::on_beat(NodeId node) {
  grow_trackers();
  if (node >= trackers_.size()) return;
  Tracker& t = trackers_[node];
  t.last_seen = sim_.now();
  if (t.reported && t.failed_at < 0.0 && !t.false_positive_flagged) {
    // A node we declared dead is beating: the detection was a false
    // positive (partition / gray link). Flag once; the consumer fences
    // and rejoins, then note_repair resets the tracker.
    t.false_positive_flagged = true;
    sim_.telemetry().metrics().add("hb.false_positives", 1.0);
    if (on_false_positive_) on_false_positive_(node);
  }
}

void HeartbeatDetector::tick() {
  timer_ = simkit::kInvalidEvent;
  if (!running_) return;

  // Grow trackers if nodes were added after start().
  grow_trackers();

  for (NodeId id = 0; id < trackers_.size(); ++id) {
    Tracker& t = trackers_[id];
    if (!wire_mode() && cluster_.node(id).alive()) {
      // Oracle mode: a live node's beat always arrives.
      t.last_seen = sim_.now();
      continue;
    }
    if (t.reported) continue;
    if (sim_.now() - t.last_seen >= config_.timeout) {
      t.reported = true;
      ++detections_;
      if (wire_mode()) sim_.telemetry().metrics().add("hb.suspected", 1.0);
      // A suspicion without a recorded crash reports the timeout itself
      // as its latency (the silence the observer actually measured).
      const SimTime latency = t.failed_at >= 0.0
                                  ? sim_.now() - t.failed_at
                                  : (wire_mode() ? config_.timeout : 0.0);
      if (on_detect_) on_detect_(id, latency);
      if (!running_) return;  // callback may stop us
    }
  }
  timer_ = sim_.after(config_.period, [this] { tick(); });
}

}  // namespace vdc::cluster
