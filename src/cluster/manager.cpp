#include "cluster/manager.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"
#include "common/log.hpp"

namespace vdc::cluster {

void NameService::bind(vm::VmId id, NodeId node) {
  auto [it, inserted] = bindings_.insert_or_assign(id, node);
  if (!inserted) ++rebinds_;
  (void)it;
}

void NameService::unbind(vm::VmId id) { bindings_.erase(id); }

std::optional<NodeId> NameService::resolve(vm::VmId id) const {
  auto it = bindings_.find(id);
  if (it == bindings_.end()) return std::nullopt;
  return it->second;
}

std::string NameService::address(vm::VmId id) {
  // Synthetic 10.x.y.z address derived from the VM id.
  return "10." + std::to_string((id >> 16) & 0xff) + "." +
         std::to_string((id >> 8) & 0xff) + "." + std::to_string(id & 0xff);
}

ClusterManager::ClusterManager(simkit::Simulator& sim, Rng rng,
                               SimTime link_latency)
    : sim_(sim), rng_(rng), fabric_(sim, link_latency) {}

NodeId ClusterManager::add_node(NodeSpec spec, std::string name) {
  const auto id = static_cast<NodeId>(nodes_.size());
  if (name.empty()) name = "node" + std::to_string(id);
  const net::HostId host = fabric_.add_host(spec.nic_rate, name, spec.rack);
  nodes_.push_back(std::make_unique<PhysicalNode>(id, std::move(name), host,
                                                  spec, rng_.fork()));
  pool_map_.record(PlacementMap::Change::Join, id);
  sim_.telemetry().metrics().set("cluster.map_version",
                                 static_cast<double>(pool_map_.version()));
  return id;
}

PhysicalNode& ClusterManager::node(NodeId id) {
  VDC_REQUIRE(id < nodes_.size(), "unknown node id");
  return *nodes_[id];
}

const PhysicalNode& ClusterManager::node(NodeId id) const {
  VDC_REQUIRE(id < nodes_.size(), "unknown node id");
  return *nodes_[id];
}

std::vector<NodeId> ClusterManager::alive_nodes() const {
  std::vector<NodeId> out;
  for (const auto& n : nodes_)
    if (n->alive()) out.push_back(n->id());
  return out;
}

vm::VmId ClusterManager::boot_vm(NodeId node_id, Bytes page_size,
                                 std::size_t page_count,
                                 std::unique_ptr<vm::Workload> workload,
                                 std::string name) {
  PhysicalNode& n = node(node_id);
  VDC_REQUIRE(n.alive(), "cannot boot a VM on a dead node");
  if (enforce_capacity_)
    VDC_REQUIRE(fits(node_id, page_size * page_count),
                "node memory capacity exceeded");
  const vm::VmId id = next_vm_id_++;
  if (name.empty()) name = "vm" + std::to_string(id);
  n.hypervisor().create_vm(id, std::move(name), page_size, page_count,
                           std::move(workload));
  placement_[id] = node_id;
  names_.bind(id, node_id);
  pool_map_.touch();
  return id;
}

std::optional<NodeId> ClusterManager::locate(vm::VmId id) const {
  auto it = placement_.find(id);
  if (it == placement_.end()) return std::nullopt;
  return it->second;
}

std::vector<vm::VmId> ClusterManager::all_vms() const {
  std::vector<vm::VmId> out;
  out.reserve(placement_.size());
  for (const auto& [id, node] : placement_) out.push_back(id);
  std::sort(out.begin(), out.end());
  return out;
}

vm::VirtualMachine& ClusterManager::machine(vm::VmId id) {
  auto loc = locate(id);
  VDC_REQUIRE(loc.has_value(), "VM is not placed anywhere");
  return node(*loc).hypervisor().get(id);
}

void ClusterManager::place(std::unique_ptr<vm::VirtualMachine> m,
                           NodeId node_id) {
  VDC_ASSERT(m != nullptr);
  PhysicalNode& n = node(node_id);
  VDC_REQUIRE(n.alive(), "cannot place a VM on a dead node");
  if (enforce_capacity_)
    VDC_REQUIRE(fits(node_id, m->image().size_bytes()),
                "node memory capacity exceeded");
  const vm::VmId id = m->id();
  n.hypervisor().adopt(std::move(m));
  placement_[id] = node_id;
  names_.bind(id, node_id);
  pool_map_.touch();
}

void ClusterManager::destroy_vm(vm::VmId id) {
  auto loc = locate(id);
  VDC_REQUIRE(loc.has_value(), "VM is not placed anywhere");
  node(*loc).hypervisor().destroy_vm(id);
  placement_.erase(id);
  names_.unbind(id);
  pool_map_.touch();
}

void ClusterManager::kill_node(NodeId id) {
  PhysicalNode& n = node(id);
  VDC_REQUIRE(n.alive(), "node already dead");
  n.alive_ = false;

  std::vector<vm::VmId> lost = n.hypervisor().vm_ids();
  for (vm::VmId vmid : lost) {
    n.hypervisor().get(vmid).mark_failed();
    n.hypervisor().destroy_vm(vmid);
    placement_.erase(vmid);
    names_.unbind(vmid);
  }
  pool_map_.record(PlacementMap::Change::Drain, id);
  sim_.telemetry().metrics().set("cluster.map_version",
                                 static_cast<double>(pool_map_.version()));
  VDC_INFO("cluster", "node ", n.name(), " failed, lost ", lost.size(),
           " VMs");
  if (on_failure_) on_failure_(id, lost);
}

void ClusterManager::revive_node(NodeId id) {
  PhysicalNode& n = node(id);
  VDC_REQUIRE(!n.alive(), "node is not dead");
  VDC_ASSERT(n.hypervisor().vm_count() == 0);
  n.alive_ = true;
  pool_map_.record(PlacementMap::Change::Join, id);
  sim_.telemetry().metrics().set("cluster.map_version",
                                 static_cast<double>(pool_map_.version()));
}

void ClusterManager::fence_node(NodeId id, std::uint64_t token) {
  VDC_REQUIRE(id < nodes_.size(), "unknown node");
  VDC_REQUIRE(token != 0, "fence token must be nonzero");
  fences_[id] = token;
}

void ClusterManager::lift_fence(NodeId id) { fences_.erase(id); }

std::uint64_t ClusterManager::fence_token(NodeId id) const {
  auto it = fences_.find(id);
  return it == fences_.end() ? 0 : it->second;
}

void ClusterManager::set_degraded(bool on) {
  if (degraded_ == on) return;
  degraded_ = on;
  sim_.telemetry().metrics().set("cluster.degraded", on ? 1.0 : 0.0);
  if (on) sim_.telemetry().metrics().add("cluster.degraded_episodes", 1.0);
}

void ClusterManager::advance_workloads(SimTime dt) {
  for (auto& n : nodes_)
    if (n->alive()) n->hypervisor().advance_all(dt);
}

std::vector<vm::VmId> ClusterManager::kill_rack(RackId rack) {
  std::vector<vm::VmId> all_lost;
  // Snapshot victims first: kill_node mutates alive state.
  std::vector<NodeId> victims;
  for (const auto& n : nodes_)
    if (n->alive() && n->rack() == rack) victims.push_back(n->id());
  VDC_REQUIRE(!victims.empty(), "no alive nodes in that rack");
  for (NodeId nid : victims) {
    const auto lost = node(nid).hypervisor().vm_ids();
    all_lost.insert(all_lost.end(), lost.begin(), lost.end());
    kill_node(nid);
  }
  return all_lost;
}

std::vector<RackId> ClusterManager::alive_racks() const {
  std::vector<RackId> racks;
  for (const auto& n : nodes_)
    if (n->alive()) racks.push_back(n->rack());
  std::sort(racks.begin(), racks.end());
  racks.erase(std::unique(racks.begin(), racks.end()), racks.end());
  return racks;
}

void ClusterManager::set_boot_zero_fraction(double fraction) {
  for (auto& n : nodes_) n->hypervisor().set_boot_zero_fraction(fraction);
}

bool ClusterManager::fits(NodeId id, Bytes extra) const {
  const PhysicalNode& n = node(id);
  return node_guest_bytes(id) + extra <= n.spec().memory;
}

Bytes ClusterManager::node_guest_bytes(NodeId id) const {
  const PhysicalNode& n = node(id);
  Bytes total = 0;
  for (vm::VmId vmid : n.hypervisor().vm_ids())
    total += n.hypervisor().get(vmid).image().size_bytes();
  return total;
}

}  // namespace vdc::cluster
