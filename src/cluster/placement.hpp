#pragma once
// Versioned pool map (the placement abstraction's backbone).
//
// Declustered-RAID systems (parity declustering, DAOS-style pool maps)
// separate "who is in the storage pool" from "who holds which stripe": the
// pool map is a small versioned object, and every layout decision is a
// deterministic pure function of (seed, map version, slot). A node join or
// drain is then just a version bump — consumers re-derive only the layout
// the bump invalidated instead of rebuilding the world, and any two
// replicas that agree on the map version agree on the whole layout.
//
// ClusterManager owns one PlacementMap and bumps it on add/kill/revive.
// The GroupPlanner's declustered layout ranks load-tied nodes by
// PlacementMap::mix(seed, version, group, node), which is what spreads a
// failed node's rebuild partners over ALL survivors rather than the same
// k-1 neighbours every time.

#include <cstdint>

namespace vdc::cluster {

using NodeId = std::uint32_t;

class PlacementMap {
 public:
  using Version = std::uint64_t;
  enum class Change : std::uint8_t { None, Join, Drain };

  /// Node-membership version. Starts at 1; every join/drain bumps it.
  Version version() const { return version_; }

  /// Mutation stamp: bumped by membership changes AND by VM placement
  /// churn (boot/place/destroy/failure). Consumers cache the stamp to
  /// skip revalidating a plan when literally nothing moved — the O(1)
  /// fast path that keeps per-epoch planning flat at 10k nodes.
  Version stamp() const { return stamp_; }
  void touch() { ++stamp_; }

  /// Layout seed mixed into every declustered ranking.
  std::uint64_t seed() const { return seed_; }
  void set_seed(std::uint64_t seed) { seed_ = seed; }

  /// Record a membership change (join = add/revive, drain = kill).
  void record(Change kind, NodeId node) {
    ++version_;
    ++stamp_;
    last_change_ = kind;
    last_node_ = node;
  }

  Change last_change() const { return last_change_; }
  NodeId last_node() const { return last_node_; }

  /// Deterministic pseudo-random rank of `node` for layout `slot` at
  /// (seed, version). Pure — every consumer of the same map derives the
  /// same layout with no coordination. Each input passes through a FULL
  /// splitmix64 finalizer before the next is folded in: with anything
  /// weaker (one round over packed inputs) the per-slot rankings are
  /// near-rotations of one fixed node order, and "take the first k" then
  /// groups the same circle-neighbours every time — exactly the
  /// concentration declustering exists to remove.
  static std::uint64_t mix(std::uint64_t seed, Version version,
                           std::uint64_t slot, std::uint64_t node) {
    return mix_round(mix_round(mix_round(seed ^ version) ^ slot) ^ node);
  }

  static std::uint64_t mix_round(std::uint64_t z) {
    z += 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

 private:
  Version version_ = 1;
  Version stamp_ = 1;
  std::uint64_t seed_ = 0x76d6c6f746e6576ull;  // arbitrary nonzero default
  Change last_change_ = Change::None;
  NodeId last_node_ = 0;
};

}  // namespace vdc::cluster
