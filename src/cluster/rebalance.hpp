#pragma once
// Cluster-aware live migration and load rebalancing.
//
// The raw PreCopyMigrator moves a guest between two hypervisors; this
// service keeps the ClusterManager's placement registry and name service
// consistent while doing so (the "global names" bookkeeping of paper
// Section II-A), and the Rebalancer uses it to smooth VM counts after
// recovery has piled guests onto the surviving nodes — using live
// migration for management, exactly the §II-A motivation ("loads can be
// optimized", "moved away from failing hardware").

#include <deque>
#include <functional>

#include "cluster/manager.hpp"
#include "migration/precopy.hpp"

namespace vdc::cluster {

/// Live-migrates VMs between nodes of a ClusterManager, updating placement
/// and name bindings on completion. One migration in flight at a time;
/// additional requests queue FCFS.
class MigrationService {
 public:
  using DoneCallback =
      std::function<void(const migration::MigrationStats&)>;

  MigrationService(simkit::Simulator& sim, ClusterManager& cluster,
                   migration::PreCopyConfig config = {});

  /// Queue a live migration of `vm` to `target`.
  void migrate(vm::VmId vm, NodeId target, DoneCallback done);

  bool busy() const { return migrator_.busy() || !queue_.empty(); }
  std::uint64_t completed() const { return completed_; }

 private:
  struct Request {
    vm::VmId vm;
    NodeId target;
    DoneCallback done;
  };
  void pump();

  simkit::Simulator& sim_;
  ClusterManager& cluster_;
  migration::PreCopyMigrator migrator_;
  std::deque<Request> queue_;
  bool draining_ = false;
  std::uint64_t completed_ = 0;
};

struct RebalanceStats {
  std::size_t migrations = 0;
  Bytes bytes_moved = 0;
  SimTime duration = 0.0;
  std::size_t max_load_before = 0;
  std::size_t max_load_after = 0;
};

/// Greedy load smoother: repeatedly move one VM from the most- to the
/// least-loaded alive node until the spread is at most one.
class Rebalancer {
 public:
  using DoneCallback = std::function<void(const RebalanceStats&)>;

  Rebalancer(simkit::Simulator& sim, ClusterManager& cluster,
             MigrationService& migrations)
      : sim_(sim), cluster_(cluster), migrations_(migrations) {}

  /// Plan and execute migrations; `done` fires when the cluster is
  /// balanced (or no further improving move exists).
  void rebalance(DoneCallback done);

 private:
  struct Spread {
    NodeId max_node = 0;
    NodeId min_node = 0;
    std::size_t max_load = 0;
    std::size_t min_load = 0;
  };
  Spread measure() const;
  void step(std::shared_ptr<RebalanceStats> stats, SimTime start,
            DoneCallback done);

  simkit::Simulator& sim_;
  ClusterManager& cluster_;
  MigrationService& migrations_;
};

}  // namespace vdc::cluster
