#pragma once
// Heartbeat detector timing, shared between the wire-true detector
// (cluster::HeartbeatDetector) and the Section-V analytical model
// (model::HardwareProfile), so the model's detection term and the
// simulator's measured detection latency derive from one source of truth
// instead of two hard-coded 0.5 s constants.

#include "common/units.hpp"

namespace vdc::cluster {

struct HeartbeatConfig {
  /// Beat emission period.
  SimTime period = milliseconds(100);
  /// Silence before a node is declared failed. The default pair yields an
  /// expected detection latency of exactly 0.5 s — the figure the model
  /// (and JobConfig's oracle path) charges for detection.
  SimTime timeout = milliseconds(450);

  /// Expected crash-to-detection latency: the crash lands uniformly
  /// within a beat period and the detector's check also ticks once per
  /// period, so on average detection costs the timeout plus half a
  /// period.
  SimTime expected_detection_latency() const { return timeout + period / 2.0; }
};

}  // namespace vdc::cluster
