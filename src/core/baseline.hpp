#pragma once
// Baseline checkpoint backends the paper compares DVDC against.
//
//  * DiskFullBackend — traditional coordinated checkpointing to shared
//    storage: every node streams its VMs' full images through the single
//    NAS front-end and onto the array; execution resumes when the data is
//    durable (or, in the async variant, after the local capture while the
//    flush proceeds — trading overhead for latency, Section II-B.2).
//  * NoCheckpointBackend — the restart model of Eq. (1): any failure sends
//    the job back to the beginning.

#include "core/runtime.hpp"
#include "storage/nas.hpp"

namespace vdc::core {

struct DiskFullConfig {
  storage::NasSpec nas{};
  SimTime base_overhead = 0.040;
  /// Synchronous (paper baseline): guests stay paused until durable.
  /// Async: guests resume after base_overhead + local capture; the flush
  /// continues in the background (checkpoint latency >> overhead).
  bool synchronous = true;
  /// Local capture copy rate for the async variant.
  Rate snapshot_rate = gib_per_s(8);
  SimTime commit_latency = 1e-3;
  /// Recovery knobs.
  SimTime resume_time = 5.0;
  Rate restore_rate = gib_per_s(8);
};

class DiskFullBackend final : public CheckpointBackend {
 public:
  DiskFullBackend(simkit::Simulator& sim, cluster::ClusterManager& cluster,
                  WorkloadFactory workloads, DiskFullConfig config = {});

  void checkpoint(checkpoint::Epoch epoch, EpochDone done) override;
  SimTime early_resume_delay() const override;
  void abort_checkpoint() override;
  void handle_failure(const std::vector<vm::VmId>& lost,
                      RecoveryDone done) override;
  bool abort_recovery() override;
  checkpoint::Epoch committed_epoch() const override { return committed_; }
  void on_job_restart() override;
  std::string name() const override { return "disk-full"; }

  storage::Nas& nas() { return nas_; }
  Bytes stored_bytes() const { return store_.total_bytes(); }

 private:
  simkit::Simulator& sim_;
  cluster::ClusterManager& cluster_;
  WorkloadFactory workloads_;
  DiskFullConfig config_;
  storage::Nas nas_;

  checkpoint::CheckpointStore store_;  // content durably on the NAS
  std::unordered_map<vm::VmId, VmInfo> vm_info_;
  checkpoint::Epoch committed_ = 0;

  // In-flight epoch.
  std::uint64_t generation_ = 0;
  bool in_flight_ = false;
  checkpoint::Epoch epoch_ = 0;
  SimTime epoch_start_ = 0.0;
  std::size_t streams_pending_ = 0;
  EpochDone done_;
  EpochStats stats_;
  std::vector<checkpoint::Checkpoint> staged_;

  // In-flight recovery (abortable: a cascading failure bumps the
  // generation so stale NAS-fetch completions no-op).
  std::uint64_t recovery_generation_ = 0;
  bool recovery_active_ = false;
};

class NoCheckpointBackend final : public CheckpointBackend {
 public:
  void checkpoint(checkpoint::Epoch, EpochDone) override {
    throw InvariantError("NoCheckpointBackend cannot checkpoint");
  }
  SimTime early_resume_delay() const override { return -1.0; }
  void abort_checkpoint() override {}
  void handle_failure(const std::vector<vm::VmId>&,
                      RecoveryDone done) override {
    RecoveryStats rs;
    rs.success = false;
    rs.reason = "no checkpointing: restart from scratch";
    done(rs);
  }
  checkpoint::Epoch committed_epoch() const override { return 0; }
  std::string name() const override { return "none"; }
};

}  // namespace vdc::core
