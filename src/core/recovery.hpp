#pragma once
// DVDC failure recovery (paper Section IV-B / VI).
//
// When a physical node dies it takes its VMs and any parity blocks it held.
// For every RAID group that lost members, the surviving members and parity
// holders stream their committed blocks to a recovery node, which rebuilds
// the lost checkpoints through the group codec (XOR for RAID-5, peeling for
// RDP), re-instantiates the lost VMs, and then the *whole cluster* rolls
// back to the committed epoch and resumes — the DVDC-vs-Remus trade the
// paper discusses: recovery is not instant, but no dedicated standby
// capacity is required.

#include <functional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/protocol.hpp"

namespace vdc::core {

struct RecoveryConfig {
  /// Re-create + resume cost per recovered VM.
  SimTime resume_time = 5.0;
  /// Local memory-copy rate for rolling surviving VMs back.
  Rate restore_rate = gib_per_s(8);
  /// Chunked reconstruction streaming: survivors stream in
  /// `chunking.chunk_bytes` segments, the leader folds each chunk index as
  /// soon as every inbound stream has delivered it (decode overlaps the
  /// wire), and forwards of rebuilt data are released as the fold frontier
  /// advances. chunk_bytes == 0 (default) keeps the legacy
  /// stream-all / decode / forward sequence. Env-overridable via
  /// VDC_CHUNK_BYTES / VDC_PIPELINE_DEPTH at manager construction.
  net::ChunkPolicy chunking;
};

struct RecoveryStats {
  SimTime duration = 0.0;        // recover() call to cluster resumed
  Bytes bytes_transferred = 0;   // reconstruction traffic
  std::size_t vms_recovered = 0;
  std::size_t groups_touched = 0;
  /// Committed epochs lost beyond the restored level (0 for ordinary
  /// diskless recovery; > 0 when a multilevel backend fell back to an
  /// older durable level). The job runner rolls its work watermark back
  /// by this many intervals.
  std::uint32_t epochs_rolled_back = 0;
  /// Decode time that ran while inbound streams were still on the wire
  /// (summed across groups; 0 without chunking).
  SimTime pipeline_overlap = 0.0;
  bool success = false;
  std::string reason;            // set when success == false
};

/// Builds a fresh guest workload for a VM being re-instantiated.
using WorkloadFactory =
    std::function<std::unique_ptr<vm::Workload>(vm::VmId)>;

class RecoveryManager {
 public:
  using DoneCallback = std::function<void(const RecoveryStats&)>;

  RecoveryManager(simkit::Simulator& sim, cluster::ClusterManager& cluster,
                  DvdcState& state, WorkloadFactory workloads,
                  RecoveryConfig config = {});

  /// Recover the given lost VMs under `plan` and roll the cluster back to
  /// the committed epoch. Requires at least one committed epoch. On an
  /// uncorrectable erasure pattern the callback reports success == false
  /// and the cluster is left rolled back with the lost VMs still missing
  /// (the caller decides whether to restart the job).
  void recover(const PlacedPlan& plan, std::vector<vm::VmId> lost,
               DoneCallback done);

  /// Abort the in-flight recovery (a cascading failure invalidated it):
  /// no further timed events for it take effect and its done callback is
  /// dropped. The cluster is left as the abort finds it — guests paused,
  /// possibly partially rolled back — which is safe because any state the
  /// aborted attempt did commit (re-placed VMs, published parity) is
  /// exact committed-epoch state; the supervisor's next recover() call
  /// reconstructs whatever is still missing. Returns false when idle.
  bool abort();

  /// True while a recover() is in flight (and not yet aborted/settled).
  bool active() const { return static_cast<bool>(abort_hook_); }

 private:
  struct PendingVm {
    vm::VmId id = 0;
    cluster::NodeId target = 0;
    std::vector<std::byte> payload;
  };

  /// `pending_load` counts placements decided earlier in this recovery so
  /// multiple lost VMs spread across the survivors instead of piling onto
  /// one node; `claimed` are nodes this group has already assigned in this
  /// pass (pending member targets / new parity holders) and must avoid to
  /// stay orthogonal.
  cluster::NodeId pick_target(
      const RaidGroup& group,
      const std::unordered_map<cluster::NodeId, std::size_t>& pending_load,
      const std::unordered_set<cluster::NodeId>& claimed) const;

  /// Node to host a REBUILT parity block of `group`: any alive node not
  /// hosting a member, not already holding another live block of this
  /// stripe, and not claimed in this pass. Unlike pick_target, the dead
  /// block's former (possibly repaired) holder is a valid choice.
  cluster::NodeId pick_parity_holder(
      const RaidGroup& group, const DvdcState::ParityRecord& record,
      const std::unordered_map<cluster::NodeId, std::size_t>& pending_load,
      const std::unordered_set<cluster::NodeId>& claimed) const;
  void finish(DoneCallback& done, RecoveryStats stats);

  simkit::Simulator& sim_;
  cluster::ClusterManager& cluster_;
  DvdcState& state_;
  WorkloadFactory workloads_;
  RecoveryConfig config_;
  /// Monotonic recovery sequence number: labels each recovery's registry
  /// counters (`recovery.*{seq=N}`) so RecoveryStats can be derived per
  /// attempt without cross-talk.
  std::uint64_t seq_ = 0;
  /// Set while a recovery is in flight; invoking it marks the attempt's
  /// shared context aborted (stale events no-op) and closes its spans.
  std::function<void()> abort_hook_;
};

}  // namespace vdc::core
