#pragma once
// Orthogonal RAID-group planning (paper Section IV-B).
//
// VMs are partitioned into RAID groups subject to the orthogonality
// constraint borrowed from gridding RAID sets across controllers: no two
// members of one group — nor its parity block — may live on the same
// physical node, so a single node failure erases at most one block per
// group and XOR parity suffices to rebuild it. The planner forms groups
// greedily, always drawing the next group's members from the nodes with
// the most unassigned VMs (which also balances groups across the cluster),
// and the parity-holder choice rotates RAID-5-style per group and epoch.

#include <cstdint>
#include <optional>
#include <vector>

#include "checkpoint/checkpointer.hpp"
#include "cluster/manager.hpp"
#include "parity/rotation.hpp"
#include "vm/machine.hpp"

namespace vdc::core {

using GroupId = std::uint32_t;

struct RaidGroup {
  GroupId id = 0;
  std::vector<vm::VmId> members;  // data VMs, ascending
};

struct GroupPlan {
  std::vector<RaidGroup> groups;
  /// Plan was built with rack orthogonality: no two members of a group —
  /// nor its parity — share a *rack*, so a whole-rack failure erases at
  /// most one block per stripe.
  bool rack_aware = false;

  /// Group containing `vm`, if any.
  std::optional<GroupId> group_of(vm::VmId vm) const;

  std::size_t total_members() const;
};

struct PlannerConfig {
  /// Target data members per group. 0 = auto: alive_nodes minus
  /// `parity_reserve` (Figure 4 for single parity).
  std::uint32_t group_size = 0;
  /// Nodes to leave parity-eligible when group_size is auto — the parity
  /// width of the scheme (1 for RAID-5, 2 for RDP, m for RS).
  std::uint32_t parity_reserve = 1;
  /// If true, refuse plans that leave any VM ungrouped (unprotected).
  bool require_full_coverage = true;
  /// Orthogonality at rack granularity: members (and parity holders) of a
  /// group must sit in pairwise distinct racks, making rack-level
  /// correlated failures single erasures per stripe.
  bool rack_aware = false;
};

class GroupPlanner {
 public:
  explicit GroupPlanner(PlannerConfig config = {}) : config_(config) {}

  /// Plan groups over every VM on the cluster's alive nodes.
  /// Throws ConfigError if the constraint set is unsatisfiable (e.g. more
  /// than `group_size` VMs would be forced onto one node's group slot).
  GroupPlan plan(const cluster::ClusterManager& cluster) const;

  /// Verify orthogonality: every group's members lie on pairwise distinct
  /// nodes and at least one alive non-member node exists to hold parity.
  /// Returns false (rather than throwing) so it can run as an invariant
  /// check after recovery re-placements.
  static bool validate(const GroupPlan& plan,
                       const cluster::ClusterManager& cluster);

  /// Eligible parity-holder nodes for a group: alive nodes hosting no
  /// member (and, with `rack_aware`, in no member's rack), ascending.
  static std::vector<cluster::NodeId> eligible_parity_nodes(
      const RaidGroup& group, const cluster::ClusterManager& cluster,
      bool rack_aware = false);

  /// The holder for `group` at `epoch`, rotated RAID-5-style over the
  /// eligible nodes.
  static cluster::NodeId parity_holder(const RaidGroup& group,
                                       checkpoint::Epoch epoch,
                                       const cluster::ClusterManager& cluster);

 private:
  PlannerConfig config_;
};

}  // namespace vdc::core
