#pragma once
// RAID-group planning (paper Section IV-B) behind a placement abstraction.
//
// VMs are partitioned into RAID groups subject to the orthogonality
// constraint borrowed from gridding RAID sets across controllers: no two
// members of one group — nor its parity block — may live on the same
// physical node, so a single node failure erases at most one block per
// group and XOR parity suffices to rebuild it. The planner forms groups
// greedily, always drawing the next group's members from the nodes with
// the most unassigned VMs (which also balances groups across the cluster),
// and the parity-holder choice rotates RAID-5-style per group and epoch.
//
// Two layouts share that greedy skeleton:
//  - Orthogonal (the paper's): load ties break by node id, so with equal
//    loads the same k nodes group together again and again. Simple, but a
//    node failure then concentrates the whole rebuild on its k-1 habitual
//    partners.
//  - Declustered: load ties break by PlacementMap::mix(seed, map_version,
//    group, node) — a deterministic pseudo-random per-group permutation
//    (the balanced-design idea behind parity declustering). Group
//    membership varies across groups, so a failure's rebuild partners
//    spread over ALL survivors and per-node rebuild load drops toward
//    groups_of(victim) * (k-1) / survivors. Coverage guarantees are
//    unchanged: the most-loaded-first primary key is identical.
//
// Plans are versioned against the cluster's PlacementMap: a node join or
// drain bumps the map, and replan() consumes the bump incrementally —
// groups untouched by the change survive verbatim (membership, relative
// order) and only broken groups' VMs are re-formed.

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "checkpoint/checkpointer.hpp"
#include "cluster/manager.hpp"
#include "parity/rotation.hpp"
#include "vm/machine.hpp"

namespace vdc::core {

using GroupId = std::uint32_t;

struct RaidGroup {
  GroupId id = 0;
  std::vector<vm::VmId> members;  // data VMs, ascending
};

struct GroupPlan {
  std::vector<RaidGroup> groups;
  /// Plan was built with rack orthogonality: no two members of a group —
  /// nor its parity — share a *rack*, so a whole-rack failure erases at
  /// most one block per stripe.
  bool rack_aware = false;
  /// The cluster PlacementMap version this plan was derived at (0 for
  /// hand-built plans).
  cluster::PlacementMap::Version map_version = 0;

  /// Group containing `vm`, if any. O(1) via the plan-time index on
  /// planner-built plans; falls back to scanning groups on hand-built
  /// plans that never called build_index().
  std::optional<GroupId> group_of(vm::VmId vm) const;

  /// (Re)build the vm -> group index. The planner calls this; call it
  /// again after mutating `groups` by hand.
  void build_index();

  std::size_t total_members() const;

 private:
  std::unordered_map<vm::VmId, GroupId> index_;
};

struct PlannerConfig {
  enum class Layout : std::uint8_t {
    /// Deterministic node-id tie-breaks (the paper's layout).
    Orthogonal,
    /// Pseudo-random per-group tie-breaks keyed on the pool map —
    /// spreads rebuild load over all survivors.
    Declustered,
  };

  /// Target data members per group. 0 = auto: alive_nodes minus
  /// `parity_reserve` (Figure 4 for single parity).
  std::uint32_t group_size = 0;
  /// Nodes to leave parity-eligible when group_size is auto — the parity
  /// width of the scheme (1 for RAID-5, 2 for RDP, m for RS).
  std::uint32_t parity_reserve = 1;
  /// If true, refuse plans that leave any VM ungrouped (unprotected).
  bool require_full_coverage = true;
  /// Orthogonality at rack granularity: members (and parity holders) of a
  /// group must sit in pairwise distinct racks, making rack-level
  /// correlated failures single erasures per stripe.
  bool rack_aware = false;
  Layout layout = Layout::Orthogonal;
};

class GroupPlanner {
 public:
  explicit GroupPlanner(PlannerConfig config = {}) : config_(config) {}

  /// Plan groups over every VM on the cluster's alive nodes.
  /// Throws ConfigError if the constraint set is unsatisfiable (e.g. more
  /// than `group_size` VMs would be forced onto one node's group slot).
  GroupPlan plan(const cluster::ClusterManager& cluster) const;

  /// Incremental replan after a pool-map bump or placement churn: every
  /// group of `previous` that is still intact (members placed on pairwise
  /// distinct alive nodes, parity-eligible) is kept verbatim; only the
  /// VMs of broken groups — plus any VMs the old plan never covered — are
  /// re-formed into new groups. Group ids are renumbered densely, kept
  /// groups first in their original order.
  GroupPlan replan(const GroupPlan& previous,
                   const cluster::ClusterManager& cluster) const;

  /// True when `group` still provides full protection on this cluster
  /// (the per-group clause of validate()).
  static bool group_intact(const RaidGroup& group,
                           const cluster::ClusterManager& cluster,
                           bool rack_aware);

  /// Verify orthogonality: every group's members lie on pairwise distinct
  /// nodes and at least one alive non-member node exists to hold parity.
  /// Returns false (rather than throwing) so it can run as an invariant
  /// check after recovery re-placements.
  static bool validate(const GroupPlan& plan,
                       const cluster::ClusterManager& cluster);

  /// Eligible parity-holder nodes for a group: alive nodes hosting no
  /// member (and, with `rack_aware`, in no member's rack), ascending.
  static std::vector<cluster::NodeId> eligible_parity_nodes(
      const RaidGroup& group, const cluster::ClusterManager& cluster,
      bool rack_aware = false);

  /// The holder for `group` at `epoch`, rotated RAID-5-style over the
  /// eligible nodes.
  static cluster::NodeId parity_holder(const RaidGroup& group,
                                       checkpoint::Epoch epoch,
                                       const cluster::ClusterManager& cluster);

 private:
  struct NodeQueue {
    cluster::NodeId node;
    std::vector<vm::VmId> vms;  // back() is next to assign
  };
  std::uint32_t resolve_group_size(std::size_t alive_nodes) const;
  /// Run the greedy formation loop over `queues`, appending groups to
  /// `plan` (ids continue from plan.groups.size()).
  void form_groups(std::vector<NodeQueue> queues, std::uint32_t k,
                   const cluster::ClusterManager& cluster,
                   GroupPlan& plan) const;
  void check_plan(const GroupPlan& plan,
                  const cluster::ClusterManager& cluster,
                  std::size_t expected_members) const;

  PlannerConfig config_;
};

}  // namespace vdc::core
