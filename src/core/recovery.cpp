#include "core/recovery.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "common/assert.hpp"
#include "common/log.hpp"

namespace vdc::core {

namespace {

/// Per-recovery bookkeeping shared by the event callbacks.
struct RecoveryCtx {
  RecoveryStats stats;
  SimTime start = 0.0;
  std::size_t groups_pending = 0;
  std::vector<RecoveryManager::DoneCallback> done_holder;
  telemetry::Labels labels;  // {seq=N}, see RecoveryManager::seq_
  telemetry::SpanId reconstruct_span = telemetry::kNoSpan;
  /// Set by RecoveryManager::abort(): every still-scheduled event for
  /// this attempt becomes a no-op and the done callback never fires.
  bool aborted = false;
  /// Every reconstruction stream (inbound and forwards) of this attempt;
  /// abort() cancels them so a dead attempt stops occupying the fabric.
  std::vector<std::shared_ptr<net::ChunkedStream>> streams;
  /// Keeps each group's run state alive for the attempt: the stream and
  /// fold callbacks hold only weak references (to avoid cycles through
  /// GroupRun::pump), so the context owns the strong one.
  std::vector<std::shared_ptr<void>> group_runs;
};

}  // namespace

RecoveryManager::RecoveryManager(simkit::Simulator& sim,
                                 cluster::ClusterManager& cluster,
                                 DvdcState& state, WorkloadFactory workloads,
                                 RecoveryConfig config)
    : sim_(sim),
      cluster_(cluster),
      state_(state),
      workloads_(std::move(workloads)),
      config_(config) {
  VDC_REQUIRE(workloads_ != nullptr, "recovery needs a workload factory");
  config_.chunking = net::ChunkPolicy::env_override(config_.chunking);
}

cluster::NodeId RecoveryManager::pick_target(
    const RaidGroup& group,
    const std::unordered_map<cluster::NodeId, std::size_t>& pending_load,
    const std::unordered_set<cluster::NodeId>& claimed) const {
  // Chosen fresh for each lost VM: prefer alive nodes that host neither a
  // member nor a parity block of this group (keeps the plan orthogonal),
  // least-loaded first — counting placements already decided in this
  // recovery pass so the lost VMs spread out.
  std::unordered_set<cluster::NodeId> excluded;
  for (vm::VmId member : group.members) {
    const auto loc = cluster_.locate(member);
    if (loc.has_value()) excluded.insert(*loc);
  }
  if (const auto* record = state_.parity(group.id))
    for (cluster::NodeId holder : record->holders) excluded.insert(holder);
  for (cluster::NodeId nid : claimed) excluded.insert(nid);

  const auto load_of = [&](cluster::NodeId nid) {
    std::size_t load = cluster_.node(nid).hypervisor().vm_count();
    if (auto it = pending_load.find(nid); it != pending_load.end())
      load += it->second;
    return load;
  };

  std::optional<cluster::NodeId> best, fallback;
  std::size_t best_load = 0, fallback_load = 0;
  for (cluster::NodeId nid : cluster_.alive_nodes()) {
    const std::size_t load = load_of(nid);
    if (!fallback || load < fallback_load) {
      fallback = nid;
      fallback_load = load;
    }
    if (excluded.count(nid)) continue;
    if (!best || load < best_load) {
      best = nid;
      best_load = load;
    }
  }
  VDC_REQUIRE(fallback.has_value(), "no alive node to recover onto");
  return best.value_or(*fallback);
}

cluster::NodeId RecoveryManager::pick_parity_holder(
    const RaidGroup& group, const DvdcState::ParityRecord& record,
    const std::unordered_map<cluster::NodeId, std::size_t>& pending_load,
    const std::unordered_set<cluster::NodeId>& claimed) const {
  std::unordered_set<cluster::NodeId> excluded(claimed.begin(),
                                               claimed.end());
  for (vm::VmId member : group.members) {
    const auto loc = cluster_.locate(member);
    if (loc.has_value()) excluded.insert(*loc);
  }
  // Keep holders of the stripe's surviving blocks distinct.
  for (std::size_t hi = 0; hi < record.blocks.size(); ++hi)
    if (!record.blocks[hi].empty()) excluded.insert(record.holders[hi]);

  const auto load_of = [&](cluster::NodeId nid) {
    std::size_t load = cluster_.node(nid).hypervisor().vm_count();
    if (auto it = pending_load.find(nid); it != pending_load.end())
      load += it->second;
    return load;
  };
  std::optional<cluster::NodeId> best, fallback;
  std::size_t best_load = 0, fallback_load = 0;
  for (cluster::NodeId nid : cluster_.alive_nodes()) {
    const std::size_t load = load_of(nid);
    if (!fallback || load < fallback_load) {
      fallback = nid;
      fallback_load = load;
    }
    if (excluded.count(nid)) continue;
    if (!best || load < best_load) {
      best = nid;
      best_load = load;
    }
  }
  VDC_REQUIRE(fallback.has_value(), "no alive node for parity");
  return best.value_or(*fallback);
}

bool RecoveryManager::abort() {
  if (!abort_hook_) return false;
  auto hook = std::move(abort_hook_);
  abort_hook_ = nullptr;
  hook();
  sim_.telemetry().metrics().add("recovery.aborted", 1.0);
  return true;
}

void RecoveryManager::recover(const PlacedPlan& plan,
                              std::vector<vm::VmId> lost,
                              DoneCallback done) {
  VDC_REQUIRE(!abort_hook_, "a recovery is already in flight");
  auto ctx = std::make_shared<RecoveryCtx>();
  ctx->start = sim_.now();
  ctx->stats.success = true;
  ctx->labels = telemetry::Labels{{"seq", std::to_string(++seq_)}};
  ctx->done_holder.push_back(std::move(done));
  auto& metrics = sim_.telemetry().metrics();
  // `recovery.attempts` is counted by the supervisor (one per episode
  // round, across every backend), not here, so a manager run and a
  // trivial settle weigh the same.
  // The reconstruct phase covers planning, survivor streams and codec
  // decode; replace/rollback are recorded when their boundaries are known.
  ctx->reconstruct_span =
      sim_.telemetry().begin_span("recovery.reconstruct", ctx->labels);
  abort_hook_ = [this, ctx] {
    ctx->aborted = true;
    for (auto& stream : ctx->streams) stream->cancel();
    ctx->streams.clear();
    // Drop the group engines: their maybe_done/pump closures hold the
    // context, so leaving them in place would cycle ctx <-> GroupRun.
    ctx->group_runs.clear();
    if (ctx->reconstruct_span != telemetry::kNoSpan) {
      sim_.telemetry().end_span(ctx->reconstruct_span);
      ctx->reconstruct_span = telemetry::kNoSpan;
    }
  };

  // Captures by value so it can also fire asynchronously, mid-attempt,
  // when a reconstruction stream dies on the wire (retransmission budget
  // or deadline exhausted). In that case the attempt is torn down like an
  // abort — streams cancelled, group engines dropped — before reporting.
  const auto fail = [this, ctx](std::string reason) {
    if (ctx->aborted) return;  // a cascade abort got here first
    ctx->aborted = true;
    for (auto& stream : ctx->streams) stream->cancel();
    ctx->streams.clear();
    ctx->group_runs.clear();
    abort_hook_ = nullptr;
    auto& metrics = sim_.telemetry().metrics();
    metrics.add("recovery.failures", 1.0,
                telemetry::Labels{{"reason", reason}});
    sim_.telemetry().end_span(ctx->reconstruct_span);
    ctx->reconstruct_span = telemetry::kNoSpan;
    ctx->stats.success = false;
    ctx->stats.reason = std::move(reason);
    ctx->stats.duration = sim_.now() - ctx->start;
    ctx->stats.vms_recovered = static_cast<std::size_t>(
        metrics.value("recovery.vms", ctx->labels));
    ctx->stats.bytes_transferred = static_cast<Bytes>(
        metrics.value("recovery.bytes", ctx->labels));
    ctx->stats.groups_touched = static_cast<std::size_t>(
        metrics.value("recovery.groups", ctx->labels));
    ctx->stats.pipeline_overlap =
        metrics.value("recovery.pipeline.overlap_s", ctx->labels);
    metrics.observe("recovery.duration_s", ctx->stats.duration);
    for (cluster::NodeId nid : cluster_.alive_nodes())
      cluster_.node(nid).hypervisor().resume_all();
    ctx->done_holder.front()(ctx->stats);
  };

  VDC_REQUIRE(!lost.empty(), "recover called with nothing lost");
  if (state_.committed_epoch() == 0) {
    fail("no committed checkpoint epoch yet");
    return;
  }

  // Freeze the cluster during recovery.
  for (cluster::NodeId nid : cluster_.alive_nodes())
    cluster_.node(nid).hypervisor().pause_all();

  // 1. Bucket the losses by RAID group.
  std::map<GroupId, std::vector<vm::VmId>> lost_by_group;
  for (vm::VmId vmid : lost) {
    const auto gid = plan.plan.group_of(vmid);
    if (!gid.has_value()) {
      fail("lost VM is not covered by the group plan");
      return;
    }
    lost_by_group[*gid].push_back(vmid);
  }

  // 2. Reconstruct content per group and lay out the timed operations.
  struct GroupOps {
    cluster::NodeId leader = 0;
    SimTime xor_time = 0.0;
    std::vector<std::pair<net::HostId, Bytes>> inbound;   // -> leader
    std::vector<std::pair<cluster::NodeId, Bytes>> forwards;  // leader ->
    std::vector<PendingVm> vms;
    // Parity blocks lost with their holder are rebuilt during recovery
    // (otherwise the group is unprotected until the next epoch — a second
    // failure in that window would be data loss).
    bool publish_record = false;
    GroupId gid = 0;
    DvdcState::ParityRecord new_record;
  };
  std::vector<GroupOps> ops;

  const checkpoint::Epoch committed = state_.committed_epoch();
  std::unordered_map<cluster::NodeId, std::size_t> pending_load;
  for (auto& [gid, lost_members] : lost_by_group) {
    VDC_REQUIRE(gid < plan.plan.groups.size(), "group id out of range");
    const RaidGroup& group = plan.plan.groups[gid];
    VDC_ASSERT(group.id == gid);

    const DvdcState::ParityRecord* record = state_.parity(gid);
    if (record == nullptr || record->members != group.members ||
        record->epoch != committed) {
      fail("no committed parity stripe for an affected group");
      return;
    }

    const std::size_t k = group.members.size();
    auto codec = make_codec(record->scheme, k, record->blocks.size());
    std::vector<std::optional<parity::Block>> stripe(k +
                                                     record->blocks.size());

    GroupOps gops;
    std::size_t erasures = 0;
    for (std::size_t mi = 0; mi < k; ++mi) {
      const vm::VmId member = group.members[mi];
      const bool is_lost =
          std::find(lost_members.begin(), lost_members.end(), member) !=
          lost_members.end();
      if (is_lost) {
        ++erasures;
        continue;
      }
      const auto loc = cluster_.locate(member);
      if (!loc.has_value()) {
        fail("surviving member is unplaced");
        return;
      }
      const checkpoint::StoredCheckpoint* cp =
          state_.node_store(*loc).find(member, committed);
      if (cp == nullptr) {
        fail("surviving member lost its committed checkpoint");
        return;
      }
      stripe[mi] = cp->padded_payload(record->block_size);
      gops.inbound.emplace_back(cluster_.node(*loc).host(),
                                record->block_size);
      metrics.add("recovery.served_bytes",
                  static_cast<double>(record->block_size),
                  telemetry::Labels{{"node", std::to_string(*loc)}});
    }
    for (std::size_t hi = 0; hi < record->blocks.size(); ++hi) {
      if (record->blocks[hi].empty()) {
        ++erasures;
        continue;
      }
      stripe[k + hi] = record->blocks[hi];
      if (!cluster_.node(record->holders[hi]).alive()) {
        fail("parity holder marked alive state inconsistent");
        return;
      }
      gops.inbound.emplace_back(cluster_.node(record->holders[hi]).host(),
                                record->block_size);
      metrics.add(
          "recovery.served_bytes", static_cast<double>(record->block_size),
          telemetry::Labels{{"node", std::to_string(record->holders[hi])}});
    }

    if (erasures > codec->fault_tolerance()) {
      VDC_INFO("recovery", "group ", gid,
               ": erasure pattern exceeds the codec's fault tolerance");
      fail("erasure pattern exceeds the codec's fault tolerance");
      return;
    }
    try {
      codec->reconstruct(stripe);
    } catch (const DataLossError& e) {
      fail(e.what());
      return;
    }

    // Any parity block that died with its holder was just re-decoded as
    // part of the stripe: publish it on a fresh holder so the group is
    // fully protected again the moment recovery commits.
    gops.gid = gid;
    std::unordered_set<cluster::NodeId> claimed;
    for (std::size_t hi = 0; hi < record->blocks.size(); ++hi) {
      if (!record->blocks[hi].empty()) continue;
      if (!gops.publish_record) {
        gops.new_record = *record;
        gops.publish_record = true;
      }
      // Pick the holder while the slot still reads as empty so the dead
      // block's former (now repaired) node stays eligible.
      const cluster::NodeId new_holder =
          pick_parity_holder(group, gops.new_record, pending_load, claimed);
      gops.new_record.blocks[hi] = *stripe[k + hi];
      ++pending_load[new_holder];
      claimed.insert(new_holder);
      gops.new_record.holders[hi] = new_holder;
    }

    // Assign targets and extract the recovered payloads.
    bool first = true;
    for (std::size_t mi = 0; mi < k; ++mi) {
      const vm::VmId member = group.members[mi];
      if (std::find(lost_members.begin(), lost_members.end(), member) ==
          lost_members.end())
        continue;
      PendingVm pending;
      pending.id = member;
      pending.target = pick_target(group, pending_load, claimed);
      ++pending_load[pending.target];
      claimed.insert(pending.target);
      const VmInfo& info = state_.vm_info(member);
      VDC_ASSERT(stripe[mi].has_value());
      pending.payload.assign(
          stripe[mi]->begin(),
          stripe[mi]->begin() + static_cast<std::ptrdiff_t>(
                                    info.image_bytes()));
      if (first) {
        gops.leader = pending.target;
        first = false;
      } else if (pending.target != gops.leader) {
        gops.forwards.emplace_back(pending.target, info.image_bytes());
      }
      gops.vms.push_back(std::move(pending));
      metrics.add("recovery.vms", 1.0, ctx->labels);
    }

    if (gops.publish_record) {
      // Rebuilt parity blocks travel from the decoding leader to their
      // replacement holders.
      for (std::size_t hi = 0; hi < record->blocks.size(); ++hi)
        if (record->blocks[hi].empty() &&
            gops.new_record.holders[hi] != gops.leader)
          gops.forwards.emplace_back(gops.new_record.holders[hi],
                                     record->block_size);
    }

    Bytes inbound_total = 0;
    for (const auto& [host, bytes] : gops.inbound) inbound_total += bytes;
    gops.xor_time = static_cast<double>(inbound_total) /
                    cluster_.node(gops.leader).spec().xor_rate;
    for (const auto& [host, bytes] : gops.inbound)
      metrics.add("recovery.bytes", static_cast<double>(bytes), ctx->labels);
    for (const auto& [node, bytes] : gops.forwards)
      metrics.add("recovery.bytes", static_cast<double>(bytes), ctx->labels);

    ops.push_back(std::move(gops));
  }
  // Groups that lost only parity (their holder died, no member did):
  // re-encode from the members' committed checkpoints on a new holder.
  for (const auto& group : plan.plan.groups) {
    if (lost_by_group.count(group.id)) continue;
    const DvdcState::ParityRecord* record = state_.parity(group.id);
    if (record == nullptr || record->members != group.members ||
        record->epoch != committed)
      continue;
    bool damaged = false;
    for (const auto& block : record->blocks)
      if (block.empty()) damaged = true;
    if (!damaged) continue;

    std::vector<parity::Block> padded;
    std::vector<parity::BlockView> views;
    GroupOps gops;
    gops.gid = group.id;
    bool complete = true;
    for (vm::VmId member : group.members) {
      const auto loc = cluster_.locate(member);
      if (!loc.has_value()) {
        complete = false;
        break;
      }
      const auto* cp = state_.node_store(*loc).find(member, committed);
      if (cp == nullptr) {
        complete = false;
        break;
      }
      padded.push_back(cp->padded_payload(record->block_size));
      gops.inbound.emplace_back(cluster_.node(*loc).host(),
                                record->block_size);
      metrics.add("recovery.served_bytes",
                  static_cast<double>(record->block_size),
                  telemetry::Labels{{"node", std::to_string(*loc)}});
    }
    if (!complete) continue;  // cannot rebuild; next epoch will
    for (const auto& blk : padded) views.emplace_back(blk);
    auto codec = make_codec(record->scheme, group.members.size(),
                            record->blocks.size());
    const auto fresh = codec->encode(views);

    gops.new_record = *record;
    gops.publish_record = true;
    std::unordered_set<cluster::NodeId> claimed;
    for (std::size_t hi = 0; hi < record->blocks.size(); ++hi) {
      if (!record->blocks[hi].empty()) continue;
      gops.new_record.blocks[hi] = fresh[hi];
      // Note: the record passed still has this block empty, so the old
      // holder is NOT excluded — the repaired node may take it back.
      DvdcState::ParityRecord probe = gops.new_record;
      probe.blocks[hi].clear();
      const cluster::NodeId new_holder =
          pick_parity_holder(group, probe, pending_load, claimed);
      ++pending_load[new_holder];
      claimed.insert(new_holder);
      gops.new_record.holders[hi] = new_holder;
    }
    // The members stream to the first replacement holder, which encodes.
    gops.leader = gops.new_record.holders.front();
    for (std::size_t hi = 0; hi < record->blocks.size(); ++hi)
      if (record->blocks[hi].empty() &&
          gops.new_record.holders[hi] != gops.leader)
        gops.forwards.emplace_back(gops.new_record.holders[hi],
                                   record->block_size);
    Bytes inbound_total = 0;
    for (const auto& [host, bytes] : gops.inbound) inbound_total += bytes;
    gops.xor_time = static_cast<double>(inbound_total) /
                    cluster_.node(gops.leader).spec().xor_rate;
    for (const auto& [host, bytes] : gops.inbound)
      metrics.add("recovery.bytes", static_cast<double>(bytes), ctx->labels);
    ops.push_back(std::move(gops));
  }

  metrics.set("recovery.groups", static_cast<double>(ops.size()),
              ctx->labels);

  // 3. Timed execution: inbound streams -> XOR -> forwards, per group in
  // parallel; then instantiate VMs, roll everyone back, resume.
  ctx->groups_pending = ops.size();

  // Shared continuation once every group's data movement is done.
  auto ops_shared = std::make_shared<std::vector<GroupOps>>(std::move(ops));
  auto after_all_groups = [this, ctx, ops_shared] {
    if (ctx->aborted) return;
    // All reconstruction data movement and decoding is done.
    sim_.telemetry().end_span(ctx->reconstruct_span);
    ctx->reconstruct_span = telemetry::kNoSpan;
    // Publish rebuilt parity records: the stripes are whole again.
    for (auto& gops : *ops_shared) {
      if (gops.publish_record)
        state_.set_parity(gops.gid, std::move(gops.new_record));
    }
    // Re-create the lost VMs (paused; they resume with everyone else).
    for (auto& gops : *ops_shared) {
      for (auto& pending : gops.vms) {
        const VmInfo& info = state_.vm_info(pending.id);
        auto machine = std::make_unique<vm::VirtualMachine>(
            pending.id, info.name, info.page_size, info.page_count,
            workloads_(pending.id));
        machine->image().restore(pending.payload);
        machine->pause();
        // The recovered checkpoint is this VM's committed state on its
        // new node, so a later failure can recover it again.
        checkpoint::Checkpoint cp;
        cp.vm = pending.id;
        cp.epoch = state_.committed_epoch();
        cp.page_size = info.page_size;
        cp.payload = std::move(pending.payload);
        state_.node_store(pending.target).put(std::move(cp));
        cluster_.place(std::move(machine), pending.target);
      }
    }

    // Global rollback: every surviving VM returns to the committed cut.
    Bytes worst_restore = 0;
    std::unordered_map<cluster::NodeId, Bytes> per_node;
    for (vm::VmId vmid : cluster_.all_vms()) {
      const auto loc = cluster_.locate(vmid);
      VDC_ASSERT(loc.has_value());
      const checkpoint::StoredCheckpoint* cp =
          state_.node_store(*loc).find(vmid, state_.committed_epoch());
      if (cp == nullptr) continue;  // recovered VM already at the cut
      auto& machine = cluster_.node(*loc).hypervisor().get(vmid);
      if (!cp->payload_equals(machine.image().bytes())) {
        // Scatter-gather restore: write the checkpoint's spans (shared
        // page chunks and sub-page patches) straight into the image, no
        // flat materialisation of the payload.
        cp->for_each_span(
            [&](std::size_t off, std::span<const std::byte> bytes) {
              machine.image().restore_range(off, bytes);
            });
      }
      per_node[*loc] += cp->size_bytes();
    }
    for (const auto& [node, bytes] : per_node)
      worst_restore = std::max(worst_restore, bytes);
    const SimTime restore_stall =
        static_cast<double>(worst_restore) / config_.restore_rate;

    // Both remaining phase boundaries are known now: re-place (create +
    // resume the rebuilt VMs) then rollback (restore survivors to the
    // committed cut).
    const SimTime replace_start = sim_.now();
    sim_.telemetry().record_span("recovery.replace", replace_start,
                                 replace_start + config_.resume_time,
                                 ctx->labels);
    sim_.telemetry().record_span(
        "recovery.rollback", replace_start + config_.resume_time,
        replace_start + config_.resume_time + restore_stall, ctx->labels);

    sim_.after(config_.resume_time + restore_stall, [this, ctx] {
      if (ctx->aborted) return;
      abort_hook_ = nullptr;
      // Break the ctx <-> GroupRun closure cycle now that every group is
      // done (safe here: no GroupRun closure is on the stack).
      ctx->group_runs.clear();
      ctx->streams.clear();
      for (cluster::NodeId nid : cluster_.alive_nodes())
        cluster_.node(nid).hypervisor().resume_all();
      ctx->stats.duration = sim_.now() - ctx->start;
      ctx->stats.success = true;
      auto& metrics = sim_.telemetry().metrics();
      ctx->stats.vms_recovered = static_cast<std::size_t>(
          metrics.value("recovery.vms", ctx->labels));
      ctx->stats.bytes_transferred = static_cast<Bytes>(
          metrics.value("recovery.bytes", ctx->labels));
      ctx->stats.groups_touched = static_cast<std::size_t>(
          metrics.value("recovery.groups", ctx->labels));
      ctx->stats.pipeline_overlap =
          metrics.value("recovery.pipeline.overlap_s", ctx->labels);
      metrics.add("recovery.successes", 1.0);
      metrics.observe("recovery.duration_s", ctx->stats.duration);
      VDC_INFO("recovery", "recovered ", ctx->stats.vms_recovered,
               " VMs in ", ctx->stats.duration, "s");
      ctx->done_holder.front()(ctx->stats);
    });
  };

  if (ops_shared->empty()) {
    sim_.after(0.0, after_all_groups);
    return;
  }

  // Per-group pipelined execution. Inbound contributions stream to the
  // leader sliced per the chunk policy; the leader folds chunk index c as
  // soon as every inbound stream has delivered it (decode overlaps the
  // wire), and paced forward streams are released as the fold frontier
  // advances, so rebuilt data starts travelling to replacement holders
  // after the first rebuilt chunk instead of after the whole decode. With
  // chunking disabled every stream is one chunk and this reduces exactly
  // to the legacy stream-all -> decode -> forward sequence.
  struct GroupRun {
    std::size_t inbound = 0;          // inbound stream count
    Bytes block_size = 0;             // bytes per inbound stream
    std::size_t chunks = 0;           // chunk indices per inbound stream
    double xor_rate = 1.0;
    net::ChunkPolicy chunking;
    std::vector<std::size_t> arrived;  // arrivals per chunk index
    std::size_t streams_finished = 0;
    std::size_t fold_next = 0;         // decode frontier
    bool fold_busy = false;
    bool folds_complete = false;
    bool done_reported = false;
    SimTime fold_started = 0.0;
    SimTime exchange_end = -1.0;       // last inbound chunk arrival
    double overlap = 0.0;              // decode time spent before that
    std::vector<std::shared_ptr<net::ChunkedStream>> forwards;
    std::size_t forwards_pending = 0;
    std::function<void()> pump;        // fold scheduler (weak self-ref)
    std::function<void()> maybe_done;
  };

  const net::ChunkPolicy chunking = config_.chunking;
  for (std::size_t gi = 0; gi < ops_shared->size(); ++gi) {
    auto& gops = (*ops_shared)[gi];
    const net::HostId leader_host = cluster_.node(gops.leader).host();

    auto run = std::make_shared<GroupRun>();
    run->inbound = gops.inbound.size();
    run->block_size = gops.inbound.empty() ? 0 : gops.inbound.front().second;
    run->chunking = chunking;
    run->chunks =
        gops.inbound.empty() ? 0 : chunking.chunk_count(run->block_size);
    run->xor_rate = cluster_.node(gops.leader).spec().xor_rate;
    run->arrived.assign(run->chunks, 0);
    run->forwards_pending = gops.forwards.size();
    ctx->group_runs.push_back(run);
    std::weak_ptr<GroupRun> wr = run;

    run->maybe_done = [ctx, wr, after_all_groups] {
      auto run = wr.lock();
      if (!run || ctx->aborted || run->done_reported) return;
      if (!run->folds_complete || run->forwards_pending > 0) return;
      run->done_reported = true;
      if (--ctx->groups_pending == 0) after_all_groups();
    };

    run->pump = [this, ctx, wr] {
      auto run = wr.lock();
      if (!run || ctx->aborted || run->fold_busy) return;
      if (run->fold_next >= run->chunks) return;
      if (run->arrived[run->fold_next] < run->inbound) return;
      run->fold_busy = true;
      run->fold_started = sim_.now();
      const Bytes chunk =
          run->chunking.chunk_size(run->block_size, run->fold_next);
      const double fold_time =
          static_cast<double>(run->inbound * chunk) / run->xor_rate;
      sim_.after(fold_time, [this, ctx, run] {
        if (ctx->aborted) return;
        run->fold_busy = false;
        const SimTime end = sim_.now();
        if (run->exchange_end < 0.0)
          run->overlap += end - run->fold_started;
        else if (run->fold_started < run->exchange_end)
          run->overlap += run->exchange_end - run->fold_started;
        ++run->fold_next;
        // Rebuilt data up to the frontier may travel: advance each
        // forward's release grant proportionally.
        for (auto& fwd : run->forwards)
          fwd->release_to(fwd->chunks_total() * run->fold_next /
                          run->chunks);
        if (run->fold_next == run->chunks) {
          run->folds_complete = true;
          if (run->chunks > 1)
            sim_.telemetry().metrics().add("recovery.pipeline.overlap_s",
                                           run->overlap, ctx->labels);
          run->pump = nullptr;  // last fold: drop the self-reference
          run->maybe_done();
        } else {
          run->pump();
        }
      });
    };

    // Forward streams exist from the start but are paced: nothing moves
    // until the fold frontier releases chunks.
    for (const auto& [node, bytes] : gops.forwards) {
      auto fwd = net::ChunkedStream::start(
          cluster_.fabric(), leader_host, cluster_.node(node).host(), bytes,
          chunking, {},
          [ctx, wr] {
            auto run = wr.lock();
            if (!run || ctx->aborted) return;
            --run->forwards_pending;
            run->maybe_done();
          },
          /*paced=*/true);
      fwd->set_on_fail([fail](const std::string& why) {
        fail("reconstruction forward stream failed: " + why);
      });
      run->forwards.push_back(fwd);
      ctx->streams.push_back(std::move(fwd));
    }

    if (gops.inbound.empty()) {
      // Nothing to decode (e.g. parity-only rebuild with all members
      // co-located): the forwards may travel immediately.
      sim_.after(0.0, [ctx, wr] {
        auto run = wr.lock();
        if (!run || ctx->aborted) return;
        run->folds_complete = true;
        for (auto& fwd : run->forwards) fwd->release_all();
        run->pump = nullptr;
        run->maybe_done();
      });
      continue;
    }

    for (const auto& [src_host, bytes] : gops.inbound) {
      if (src_host == leader_host) {
        // Contribution already local to the leader (it hosts a survivor
        // or a parity block): every chunk is present at once.
        sim_.after(0.0, [this, ctx, wr] {
          auto run = wr.lock();
          if (!run || ctx->aborted) return;
          for (std::size_t c = 0; c < run->chunks; ++c) ++run->arrived[c];
          if (++run->streams_finished == run->inbound)
            run->exchange_end = sim_.now();
          if (run->pump) run->pump();
        });
        continue;
      }
      auto inbound = net::ChunkedStream::start(
          cluster_.fabric(), src_host, leader_host, bytes, chunking,
          [this, ctx, wr](const net::ChunkedStream::Chunk& c) {
            auto run = wr.lock();
            if (!run || ctx->aborted) return;
            ++run->arrived[c.index];
            if (c.last && ++run->streams_finished == run->inbound)
              run->exchange_end = sim_.now();
            if (run->pump) run->pump();
          });
      inbound->set_on_fail([fail](const std::string& why) {
        fail("reconstruction inbound stream failed: " + why);
      });
      ctx->streams.push_back(std::move(inbound));
    }
  }
}

}  // namespace vdc::core
