#include "core/plan.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/assert.hpp"

namespace vdc::core {

std::optional<GroupId> GroupPlan::group_of(vm::VmId vm) const {
  for (const auto& g : groups)
    if (std::binary_search(g.members.begin(), g.members.end(), vm))
      return g.id;
  return std::nullopt;
}

std::size_t GroupPlan::total_members() const {
  std::size_t n = 0;
  for (const auto& g : groups) n += g.members.size();
  return n;
}

GroupPlan GroupPlanner::plan(const cluster::ClusterManager& cluster) const {
  const auto alive = cluster.alive_nodes();
  VDC_REQUIRE(alive.size() >= 2, "DVDC needs at least two alive nodes");

  std::uint32_t k = config_.group_size;
  if (k == 0) {
    VDC_REQUIRE(config_.parity_reserve >= 1 &&
                    alive.size() > config_.parity_reserve,
                "not enough alive nodes for the parity reserve");
    k = static_cast<std::uint32_t>(alive.size()) - config_.parity_reserve;
  }
  VDC_REQUIRE(k >= 1, "group size must be at least 1");
  VDC_REQUIRE(k < alive.size(),
              "group size must leave at least one node free for parity");

  // Unassigned VMs per node, ascending VM id within a node.
  struct NodeQueue {
    cluster::NodeId node;
    std::vector<vm::VmId> vms;  // back() is next to assign
  };
  std::vector<NodeQueue> queues;
  for (cluster::NodeId nid : alive) {
    NodeQueue q{nid, cluster.node(nid).hypervisor().vm_ids()};
    // Reverse so back() pops the lowest id first (deterministic).
    std::reverse(q.vms.begin(), q.vms.end());
    if (!q.vms.empty()) queues.push_back(std::move(q));
  }

  GroupPlan plan;
  plan.rack_aware = config_.rack_aware;
  for (;;) {
    // Nodes with work left, most-loaded first (ties: lower node id).
    std::sort(queues.begin(), queues.end(),
              [](const NodeQueue& a, const NodeQueue& b) {
                if (a.vms.size() != b.vms.size())
                  return a.vms.size() > b.vms.size();
                return a.node < b.node;
              });
    while (!queues.empty() && queues.back().vms.empty()) queues.pop_back();
    if (queues.empty()) break;

    // Draw one VM from each of the first up-to-k queues, skipping queues
    // whose rack is already represented when rack orthogonality is on.
    RaidGroup group;
    group.id = static_cast<GroupId>(plan.groups.size());
    std::unordered_set<cluster::RackId> used_racks;
    for (std::size_t i = 0;
         i < queues.size() && group.members.size() < k; ++i) {
      if (queues[i].vms.empty()) continue;
      const cluster::RackId rack = cluster.node(queues[i].node).rack();
      if (config_.rack_aware && used_racks.count(rack)) continue;
      used_racks.insert(rack);
      group.members.push_back(queues[i].vms.back());
      queues[i].vms.pop_back();
    }
    if (group.members.empty())
      throw ConfigError(
          "rack-aware planning is stuck: remaining VMs cannot be grouped "
          "without sharing a rack");
    std::sort(group.members.begin(), group.members.end());
    plan.groups.push_back(std::move(group));
  }

  // Verify there is a parity node for every group.
  for (const auto& g : plan.groups) {
    if (eligible_parity_nodes(g, cluster, plan.rack_aware).empty())
      throw ConfigError(
          "group has no eligible parity node under the plan's "
          "orthogonality constraints");
  }

  if (config_.require_full_coverage) {
    std::size_t total_vms = 0;
    for (cluster::NodeId nid : alive)
      total_vms += cluster.node(nid).hypervisor().vm_count();
    VDC_REQUIRE(plan.total_members() == total_vms,
                "planner left VMs unprotected");
  }
  return plan;
}

bool GroupPlanner::validate(const GroupPlan& plan,
                            const cluster::ClusterManager& cluster) {
  std::unordered_set<vm::VmId> seen;
  for (const auto& g : plan.groups) {
    if (g.members.empty()) return false;
    std::unordered_set<cluster::NodeId> nodes;
    std::unordered_set<cluster::RackId> racks;
    for (vm::VmId vm : g.members) {
      if (!seen.insert(vm).second) return false;  // VM in two groups
      const auto loc = cluster.locate(vm);
      if (!loc.has_value()) return false;  // member vanished
      if (!cluster.node(*loc).alive()) return false;
      if (!nodes.insert(*loc).second) return false;  // orthogonality broken
      if (plan.rack_aware && !racks.insert(cluster.node(*loc).rack()).second)
        return false;  // two members share a rack
    }
    if (eligible_parity_nodes(g, cluster, plan.rack_aware).empty())
      return false;
  }
  return true;
}

std::vector<cluster::NodeId> GroupPlanner::eligible_parity_nodes(
    const RaidGroup& group, const cluster::ClusterManager& cluster,
    bool rack_aware) {
  std::unordered_set<cluster::NodeId> member_nodes;
  std::unordered_set<cluster::RackId> member_racks;
  for (vm::VmId vm : group.members) {
    const auto loc = cluster.locate(vm);
    if (!loc.has_value()) continue;
    member_nodes.insert(*loc);
    member_racks.insert(cluster.node(*loc).rack());
  }
  std::vector<cluster::NodeId> eligible;
  for (cluster::NodeId nid : cluster.alive_nodes()) {
    if (member_nodes.count(nid)) continue;
    if (rack_aware && member_racks.count(cluster.node(nid).rack())) continue;
    eligible.push_back(nid);
  }
  return eligible;
}

cluster::NodeId GroupPlanner::parity_holder(
    const RaidGroup& group, checkpoint::Epoch epoch,
    const cluster::ClusterManager& cluster) {
  const auto eligible = eligible_parity_nodes(group, cluster);
  VDC_REQUIRE(!eligible.empty(), "no eligible parity node for group");
  const std::size_t idx =
      parity::ParityRotation::holder_index(group.id, epoch, eligible.size());
  return eligible[idx];
}

}  // namespace vdc::core
