#include "core/plan.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/assert.hpp"

namespace vdc::core {

std::optional<GroupId> GroupPlan::group_of(vm::VmId vm) const {
  if (!index_.empty()) {
    auto it = index_.find(vm);
    if (it == index_.end()) return std::nullopt;
    return it->second;
  }
  for (const auto& g : groups)
    if (std::binary_search(g.members.begin(), g.members.end(), vm))
      return g.id;
  return std::nullopt;
}

void GroupPlan::build_index() {
  index_.clear();
  index_.reserve(total_members());
  for (const auto& g : groups)
    for (vm::VmId vm : g.members) index_.emplace(vm, g.id);
}

std::size_t GroupPlan::total_members() const {
  std::size_t n = 0;
  for (const auto& g : groups) n += g.members.size();
  return n;
}

std::uint32_t GroupPlanner::resolve_group_size(std::size_t alive_nodes) const {
  VDC_REQUIRE(alive_nodes >= 2, "DVDC needs at least two alive nodes");
  std::uint32_t k = config_.group_size;
  if (k == 0) {
    VDC_REQUIRE(config_.parity_reserve >= 1 &&
                    alive_nodes > config_.parity_reserve,
                "not enough alive nodes for the parity reserve");
    k = static_cast<std::uint32_t>(alive_nodes) - config_.parity_reserve;
  }
  VDC_REQUIRE(k >= 1, "group size must be at least 1");
  VDC_REQUIRE(k < alive_nodes,
              "group size must leave at least one node free for parity");
  return k;
}

void GroupPlanner::form_groups(std::vector<NodeQueue> queues, std::uint32_t k,
                               const cluster::ClusterManager& cluster,
                               GroupPlan& plan) const {
  const bool declustered = config_.layout == PlannerConfig::Layout::Declustered;
  const auto& map = cluster.placement_map();
  // Decorated index sort: the rank key is computed once per queue per
  // round (not per comparison), which is what keeps a 10k-node plan in
  // seconds — mix() is three multiply rounds and a comparator would call
  // it O(n log n) times per group.
  struct Rank {
    std::size_t queue;
    std::size_t load;
    std::uint64_t key;
    cluster::NodeId node;
  };
  std::vector<Rank> order;
  order.reserve(queues.size());
  for (;;) {
    const auto gid = static_cast<GroupId>(plan.groups.size());
    // Nodes with work left, most-loaded first. Ties: node id under the
    // orthogonal layout; a per-group pseudo-random permutation of the
    // pool map under the declustered one, so equal-load nodes rotate
    // their grouping partners instead of pairing up identically forever.
    order.clear();
    for (std::size_t qi = 0; qi < queues.size(); ++qi) {
      if (queues[qi].vms.empty()) continue;
      order.push_back(Rank{
          qi, queues[qi].vms.size(),
          declustered ? cluster::PlacementMap::mix(map.seed(),
                                                   plan.map_version, gid,
                                                   queues[qi].node)
                      : 0,
          queues[qi].node});
    }
    if (order.empty()) break;
    std::sort(order.begin(), order.end(), [](const Rank& a, const Rank& b) {
      if (a.load != b.load) return a.load > b.load;
      if (a.key != b.key) return a.key < b.key;
      return a.node < b.node;
    });

    // Draw one VM from each of the first up-to-k queues, skipping queues
    // whose rack is already represented when rack orthogonality is on.
    RaidGroup group;
    group.id = gid;
    std::unordered_set<cluster::RackId> used_racks;
    for (std::size_t i = 0; i < order.size() && group.members.size() < k;
         ++i) {
      NodeQueue& q = queues[order[i].queue];
      const cluster::RackId rack = cluster.node(q.node).rack();
      if (config_.rack_aware && used_racks.count(rack)) continue;
      used_racks.insert(rack);
      group.members.push_back(q.vms.back());
      q.vms.pop_back();
    }
    if (group.members.empty())
      throw ConfigError(
          "rack-aware planning is stuck: remaining VMs cannot be grouped "
          "without sharing a rack");
    std::sort(group.members.begin(), group.members.end());
    plan.groups.push_back(std::move(group));
  }
}

void GroupPlanner::check_plan(const GroupPlan& plan,
                              const cluster::ClusterManager& cluster,
                              std::size_t expected_members) const {
  // Verify there is a parity node for every group.
  for (const auto& g : plan.groups) {
    if (eligible_parity_nodes(g, cluster, plan.rack_aware).empty())
      throw ConfigError(
          "group has no eligible parity node under the plan's "
          "orthogonality constraints");
  }
  if (config_.require_full_coverage)
    VDC_REQUIRE(plan.total_members() == expected_members,
                "planner left VMs unprotected");
}

GroupPlan GroupPlanner::plan(const cluster::ClusterManager& cluster) const {
  const auto alive = cluster.alive_nodes();
  const std::uint32_t k = resolve_group_size(alive.size());

  // Unassigned VMs per node, ascending VM id within a node.
  std::vector<NodeQueue> queues;
  std::size_t total_vms = 0;
  for (cluster::NodeId nid : alive) {
    NodeQueue q{nid, cluster.node(nid).hypervisor().vm_ids()};
    total_vms += q.vms.size();
    // Reverse so back() pops the lowest id first (deterministic).
    std::reverse(q.vms.begin(), q.vms.end());
    if (!q.vms.empty()) queues.push_back(std::move(q));
  }

  GroupPlan plan;
  plan.rack_aware = config_.rack_aware;
  plan.map_version = cluster.placement_map().version();
  form_groups(std::move(queues), k, cluster, plan);
  check_plan(plan, cluster, total_vms);
  plan.build_index();
  return plan;
}

GroupPlan GroupPlanner::replan(const GroupPlan& previous,
                               const cluster::ClusterManager& cluster) const {
  const auto alive = cluster.alive_nodes();
  const std::uint32_t k = resolve_group_size(alive.size());

  GroupPlan plan;
  plan.rack_aware = config_.rack_aware;
  plan.map_version = cluster.placement_map().version();

  // Keep intact groups verbatim (renumbered densely, original order):
  // their stripes need no re-exchange and their rebuild layout is
  // untouched by the membership change.
  std::unordered_set<vm::VmId> covered;
  for (const auto& g : previous.groups) {
    if (g.members.size() > k) continue;  // group size shrank: re-form
    if (!group_intact(g, cluster, config_.rack_aware)) continue;
    RaidGroup kept;
    kept.id = static_cast<GroupId>(plan.groups.size());
    kept.members = g.members;
    covered.insert(kept.members.begin(), kept.members.end());
    plan.groups.push_back(std::move(kept));
  }

  // Re-form only the uncovered VMs (broken groups' members that survived,
  // plus VMs the old plan never saw).
  std::vector<NodeQueue> queues;
  std::size_t total_vms = 0;
  for (cluster::NodeId nid : alive) {
    NodeQueue q{nid, {}};
    for (vm::VmId vm : cluster.node(nid).hypervisor().vm_ids()) {
      ++total_vms;
      if (!covered.count(vm)) q.vms.push_back(vm);
    }
    std::reverse(q.vms.begin(), q.vms.end());
    if (!q.vms.empty()) queues.push_back(std::move(q));
  }
  form_groups(std::move(queues), k, cluster, plan);
  check_plan(plan, cluster, total_vms);
  plan.build_index();
  return plan;
}

bool GroupPlanner::group_intact(const RaidGroup& group,
                                const cluster::ClusterManager& cluster,
                                bool rack_aware) {
  if (group.members.empty()) return false;
  std::unordered_set<cluster::NodeId> nodes;
  std::unordered_set<cluster::RackId> racks;
  for (vm::VmId vm : group.members) {
    const auto loc = cluster.locate(vm);
    if (!loc.has_value()) return false;  // member vanished
    if (!cluster.node(*loc).alive()) return false;
    if (!nodes.insert(*loc).second) return false;  // orthogonality broken
    if (rack_aware && !racks.insert(cluster.node(*loc).rack()).second)
      return false;  // two members share a rack
  }
  return !eligible_parity_nodes(group, cluster, rack_aware).empty();
}

bool GroupPlanner::validate(const GroupPlan& plan,
                            const cluster::ClusterManager& cluster) {
  std::unordered_set<vm::VmId> seen;
  for (const auto& g : plan.groups) {
    for (vm::VmId vm : g.members)
      if (!seen.insert(vm).second) return false;  // VM in two groups
    if (!group_intact(g, cluster, plan.rack_aware)) return false;
  }
  return true;
}

std::vector<cluster::NodeId> GroupPlanner::eligible_parity_nodes(
    const RaidGroup& group, const cluster::ClusterManager& cluster,
    bool rack_aware) {
  std::unordered_set<cluster::NodeId> member_nodes;
  std::unordered_set<cluster::RackId> member_racks;
  for (vm::VmId vm : group.members) {
    const auto loc = cluster.locate(vm);
    if (!loc.has_value()) continue;
    member_nodes.insert(*loc);
    member_racks.insert(cluster.node(*loc).rack());
  }
  std::vector<cluster::NodeId> eligible;
  for (cluster::NodeId nid : cluster.alive_nodes()) {
    if (member_nodes.count(nid)) continue;
    if (rack_aware && member_racks.count(cluster.node(nid).rack())) continue;
    eligible.push_back(nid);
  }
  return eligible;
}

cluster::NodeId GroupPlanner::parity_holder(
    const RaidGroup& group, checkpoint::Epoch epoch,
    const cluster::ClusterManager& cluster) {
  const auto eligible = eligible_parity_nodes(group, cluster);
  VDC_REQUIRE(!eligible.empty(), "no eligible parity node for group");
  const std::size_t idx =
      parity::ParityRotation::holder_index(group.id, epoch, eligible.size());
  return eligible[idx];
}

}  // namespace vdc::core
