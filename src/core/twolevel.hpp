#pragma once
// Two-level (multilevel) checkpointing: diskless first, disk behind it.
//
// Section II-B.2 concedes that "the simplicity and reliability of
// secondary storage has kept traditional disk-based checkpointing as the
// mainstream method"; production diskless systems (e.g. the LLNL usage
// the paper cites) therefore layer the two. This backend runs DVDC for
// every epoch and, every `flush_every`-th commit, also drains the
// committed images to the NAS *asynchronously* (no added guest overhead).
// Failures within the codec's tolerance recover disklessly as usual; a
// catastrophic loss (e.g. a double-node failure under RAID-5) falls back
// to the last durable NAS level instead of restarting the job from
// scratch — trading a larger rollback for survival.

#include "core/baseline.hpp"
#include "core/runtime.hpp"
#include "storage/nas.hpp"

namespace vdc::core {

struct TwoLevelConfig {
  /// Flush to the NAS after every K-th committed DVDC epoch.
  std::uint32_t flush_every = 6;
  storage::NasSpec nas{};
  /// Recovery knobs for the level-2 restore path.
  Rate restore_rate = gib_per_s(8);
  SimTime resume_time = 5.0;
};

class TwoLevelBackend final : public CheckpointBackend {
 public:
  TwoLevelBackend(simkit::Simulator& sim, cluster::ClusterManager& cluster,
                  ProtocolConfig protocol, RecoveryConfig recovery,
                  WorkloadFactory workloads, TwoLevelConfig config = {},
                  PlannerConfig planner = {});

  void checkpoint(checkpoint::Epoch epoch, EpochDone done) override;
  SimTime early_resume_delay() const override {
    return dvdc_.early_resume_delay();
  }
  void abort_checkpoint() override { dvdc_.abort_checkpoint(); }
  void on_node_failure(cluster::NodeId victim) override;
  void handle_failure(const std::vector<vm::VmId>& lost,
                      RecoveryDone done) override;
  bool abort_recovery() override;
  checkpoint::Epoch committed_epoch() const override {
    return dvdc_.committed_epoch();
  }
  void on_job_restart() override;
  std::string name() const override { return "dvdc+nas"; }

  /// Last epoch whose images are durable on the NAS (0 = none yet).
  checkpoint::Epoch flushed_epoch() const { return flushed_epoch_; }
  std::uint64_t level2_restores() const { return level2_restores_; }

 private:
  void start_flush(checkpoint::Epoch epoch);
  void level2_restore(RecoveryDone done);

  simkit::Simulator& sim_;
  cluster::ClusterManager& cluster_;
  WorkloadFactory workloads_;
  TwoLevelConfig config_;
  DvdcBackend dvdc_;
  storage::Nas nas_;

  // Durable level: full images keyed by VM for `flushed_epoch_`, plus the
  // in-flight flush being built.
  std::unordered_map<vm::VmId, std::vector<std::byte>> durable_;
  std::unordered_map<vm::VmId, VmInfo> durable_info_;
  checkpoint::Epoch flushed_epoch_ = 0;
  std::uint64_t flush_generation_ = 0;
  std::uint64_t level2_restores_ = 0;
  // In-flight level-2 restore (abortable: a cascading failure bumps the
  // generation so stale NAS-fetch completions no-op).
  std::uint64_t restore_generation_ = 0;
  bool restore_active_ = false;
  // An aborted restore re-placed VMs with OLD durable-level content, so a
  // retry must not "succeed" trivially at the diskless level: route it
  // straight back to level-2 until a restore completes.
  bool level2_pending_ = false;
  // Commit bookkeeping since the current baseline (job start, scratch
  // restart or level-2 restore): how far the durable level lags.
  std::uint64_t commit_counter_ = 0;
  std::uint64_t flushed_counter_ = 0;
};

}  // namespace vdc::core
