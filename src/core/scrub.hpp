#pragma once
// Parity scrubbing: defence against silent in-memory corruption.
//
// Diskless checkpointing trades the disk's reliability for volatile
// memory's (paper Section II-B.2: parity exists "to counteract the innate
// unreliability of volatile memory"). A scrubber periodically re-derives
// every group's parity from the members' committed checkpoints and
// compares it to the stored stripe; mismatches are reported and — if
// repair is enabled — the stored parity is rebuilt, restoring the
// stripe's recoverability before a node failure turns the corruption into
// data loss. The verification traffic flows over the real fabric like an
// epoch exchange.

#include <functional>
#include <vector>

#include "core/protocol.hpp"

namespace vdc::core {

struct ScrubReport {
  std::size_t groups_checked = 0;
  std::vector<GroupId> mismatched;  // stored parity != recomputed
  std::size_t repaired = 0;
  Bytes bytes_verified = 0;   // parity bytes compared
  Bytes bytes_streamed = 0;   // member checkpoint traffic
  SimTime duration = 0.0;

  bool clean() const { return mismatched.empty(); }
};

class ParityScrubber {
 public:
  using DoneCallback = std::function<void(const ScrubReport&)>;

  ParityScrubber(simkit::Simulator& sim, cluster::ClusterManager& cluster,
                 DvdcState& state)
      : sim_(sim), cluster_(cluster), state_(state) {}

  /// Verify every group of `plan` whose parity record matches the
  /// committed epoch. With `repair`, mismatched stripes are rebuilt in
  /// place. Runs the member->holder verification streams concurrently.
  void scrub(const PlacedPlan& plan, bool repair, DoneCallback done);

  /// Fault injection for tests and drills: flip one byte of the stored
  /// parity block `index` of `group`. Returns false if no such block.
  bool inject_corruption(GroupId group, std::size_t block_index,
                         std::size_t byte_offset);

  /// Slice the verification streams like the epoch exchange does. Default
  /// keeps chunking off (single-flow streams, legacy timing).
  void set_chunking(net::ChunkPolicy policy) { chunking_ = policy; }

 private:
  simkit::Simulator& sim_;
  cluster::ClusterManager& cluster_;
  DvdcState& state_;
  net::ChunkPolicy chunking_;
};

}  // namespace vdc::core
