#include "core/baseline.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "common/assert.hpp"
#include "common/log.hpp"

namespace vdc::core {

DiskFullBackend::DiskFullBackend(simkit::Simulator& sim,
                                 cluster::ClusterManager& cluster,
                                 WorkloadFactory workloads,
                                 DiskFullConfig config)
    : sim_(sim),
      cluster_(cluster),
      workloads_(std::move(workloads)),
      config_(config),
      nas_(sim, cluster.fabric(), config.nas) {
  VDC_REQUIRE(workloads_ != nullptr, "disk-full backend needs workloads");
}

void DiskFullBackend::checkpoint(checkpoint::Epoch epoch, EpochDone done) {
  VDC_REQUIRE(!in_flight_, "an epoch is already in flight");
  VDC_REQUIRE(epoch > committed_, "epoch must advance");
  in_flight_ = true;
  const std::uint64_t gen = ++generation_;
  epoch_ = epoch;
  epoch_start_ = sim_.now();
  done_ = std::move(done);
  stats_ = EpochStats{};
  stats_.epoch = epoch;
  stats_.full_exchange = true;
  staged_.clear();

  // Capture content at the cut and compute per-node stream sizes.
  struct NodeStream {
    cluster::NodeId node;
    Bytes bytes = 0;
  };
  std::vector<NodeStream> streams;
  Bytes capture_worst = 0;
  for (cluster::NodeId nid : cluster_.alive_nodes()) {
    auto& hv = cluster_.node(nid).hypervisor();
    NodeStream stream{nid, 0};
    for (vm::VmId vmid : hv.vm_ids()) {
      auto& machine = hv.get(vmid);
      checkpoint::Checkpoint cp;
      cp.vm = vmid;
      cp.epoch = epoch;
      cp.page_size = machine.image().page_size();
      cp.payload = machine.image().flatten();
      stream.bytes += cp.payload.size();
      vm_info_[vmid] = VmInfo{machine.name(), cp.page_size,
                              machine.image().page_count()};
      staged_.push_back(std::move(cp));
    }
    capture_worst = std::max(capture_worst, stream.bytes);
    if (stream.bytes > 0) streams.push_back(stream);
  }
  stats_.groups = streams.size();

  const SimTime stall =
      config_.synchronous
          ? config_.base_overhead
          : config_.base_overhead +
                static_cast<double>(capture_worst) / config_.snapshot_rate;
  // In the sync variant the guests stay paused through the whole flush, so
  // the early stall is just the quiesce; overhead is finalised at commit.

  streams_pending_ = streams.size();
  sim_.after(stall, [this, gen, streams, stall] {
    if (gen != generation_ || !in_flight_) return;
    if (!config_.synchronous) {
      for (cluster::NodeId nid : cluster_.alive_nodes())
        cluster_.node(nid).hypervisor().resume_all();
      stats_.overhead = stall;
    }
    const auto commit = [this, gen] {
      sim_.after(config_.commit_latency, [this, gen] {
        if (gen != generation_ || !in_flight_) return;
        // Commit: checkpoints are durable on the NAS.
        for (auto& cp : staged_) store_.put(std::move(cp));
        staged_.clear();
        store_.gc_before(epoch_);
        committed_ = epoch_;
        auto& metrics = sim_.telemetry().metrics();
        metrics.add("diskfull.epochs", 1.0);
        metrics.add("diskfull.bytes_to_nas",
                    static_cast<double>(stats_.bytes_shipped));
        if (config_.synchronous) {
          for (cluster::NodeId nid : cluster_.alive_nodes())
            cluster_.node(nid).hypervisor().resume_all();
          stats_.overhead = sim_.now() - epoch_start_;
        }
        stats_.latency = sim_.now() - epoch_start_;
        in_flight_ = false;
        auto done = std::move(done_);
        done(stats_);
      });
    };

    if (streams.empty()) {
      commit();
      return;
    }
    for (const auto& stream : streams) {
      stats_.bytes_shipped += stream.bytes;
      nas_.store(cluster_.node(stream.node).host(), stream.bytes,
                 [this, gen, commit] {
                   if (gen != generation_ || !in_flight_) return;
                   VDC_ASSERT(streams_pending_ > 0);
                   if (--streams_pending_ == 0) commit();
                 });
    }
  });
}

SimTime DiskFullBackend::early_resume_delay() const {
  // Async variant resumes after the local capture; that stall depends on
  // the capture size, which the JobRunner cannot know, so report the
  // conservative base overhead only for sync mode.
  return config_.synchronous ? -1.0 : config_.base_overhead;
}

void DiskFullBackend::abort_checkpoint() {
  if (!in_flight_) return;
  ++generation_;
  in_flight_ = false;
  staged_.clear();
}

bool DiskFullBackend::abort_recovery() {
  if (!recovery_active_) return false;
  ++recovery_generation_;
  recovery_active_ = false;
  sim_.telemetry().metrics().add("recovery.aborted", 1.0);
  return true;
}

void DiskFullBackend::handle_failure(const std::vector<vm::VmId>& lost,
                                     RecoveryDone done) {
  if (committed_ == 0) {
    RecoveryStats rs;
    rs.success = false;
    rs.reason = "no durable checkpoint yet";
    done(rs);
    return;
  }
  for (cluster::NodeId nid : cluster_.alive_nodes())
    cluster_.node(nid).hypervisor().pause_all();

  auto stats = std::make_shared<RecoveryStats>();
  const SimTime start = sim_.now();

  // Surviving VMs roll back from their locally cached copy of the last
  // committed checkpoint.
  Bytes restore_worst = 0;
  std::unordered_map<cluster::NodeId, Bytes> per_node;
  for (vm::VmId vmid : cluster_.all_vms()) {
    const checkpoint::StoredCheckpoint* cp = store_.find(vmid, committed_);
    if (cp == nullptr) continue;
    const auto loc = cluster_.locate(vmid);
    VDC_ASSERT(loc.has_value());
    cluster_.node(*loc).hypervisor().get(vmid).image().restore(cp->payload());
    per_node[*loc] += cp->size_bytes();
  }
  for (const auto& [node, bytes] : per_node)
    restore_worst = std::max(restore_worst, bytes);

  // Lost VMs are fetched back from the NAS onto the least-loaded nodes.
  const std::uint64_t rgen = ++recovery_generation_;
  recovery_active_ = true;
  auto fetch_pending = std::make_shared<std::size_t>(0);
  auto finish = [this, rgen, stats, start, done]() {
    if (rgen != recovery_generation_) return;  // aborted
    recovery_active_ = false;
    for (cluster::NodeId nid : cluster_.alive_nodes())
      cluster_.node(nid).hypervisor().resume_all();
    stats->duration = sim_.now() - start;
    stats->success = true;
    auto& metrics = sim_.telemetry().metrics();
    metrics.add("diskfull.recoveries", 1.0);
    metrics.observe("diskfull.recovery_s", stats->duration);
    done(*stats);
  };

  std::vector<std::pair<vm::VmId, cluster::NodeId>> placements;
  for (vm::VmId vmid : lost) {
    const checkpoint::StoredCheckpoint* cp = store_.find(vmid, committed_);
    if (cp == nullptr) {
      RecoveryStats rs;
      rs.success = false;
      rs.reason = "lost VM has no durable checkpoint";
      recovery_active_ = false;
      for (cluster::NodeId nid : cluster_.alive_nodes())
        cluster_.node(nid).hypervisor().resume_all();
      done(rs);
      return;
    }
    cluster::NodeId target = cluster_.alive_nodes().front();
    std::size_t best = ~std::size_t{0};
    for (cluster::NodeId nid : cluster_.alive_nodes()) {
      const std::size_t load = cluster_.node(nid).hypervisor().vm_count();
      if (load < best) {
        best = load;
        target = nid;
      }
    }
    // Re-create the guest now (content from the durable checkpoint); the
    // fetch time is charged through the NAS read path below.
    auto it = vm_info_.find(vmid);
    VDC_REQUIRE(it != vm_info_.end(), "lost VM has no recorded metadata");
    const VmInfo& info = it->second;
    auto machine = std::make_unique<vm::VirtualMachine>(
        vmid, info.name, info.page_size, info.page_count, workloads_(vmid));
    machine->image().restore(cp->payload());
    machine->pause();
    cluster_.place(std::move(machine), target);
    ++stats->vms_recovered;
    stats->bytes_transferred += cp->size_bytes();
    placements.emplace_back(vmid, target);

    ++*fetch_pending;
    nas_.fetch(cluster_.node(target).host(), cp->size_bytes(),
               [fetch_pending, finish] {
                 if (--*fetch_pending == 0) finish();
               });
  }

  const SimTime local_stall =
      static_cast<double>(restore_worst) / config_.restore_rate +
      config_.resume_time;
  if (placements.empty()) {
    sim_.after(local_stall, finish);
  } else {
    // The local rollback and resume overlap the NAS fetch; charge
    // whichever finishes last by adding the stall before fetches count
    // down. Simplest faithful form: fetches gate completion, plus the
    // local stall as a floor.
    ++*fetch_pending;
    sim_.after(local_stall, [fetch_pending, finish] {
      if (--*fetch_pending == 0) finish();
    });
  }
}

void DiskFullBackend::on_job_restart() {
  committed_ = 0;
  store_ = checkpoint::CheckpointStore{};
}

}  // namespace vdc::core
