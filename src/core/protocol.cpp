#include "core/protocol.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <set>
#include <tuple>
#include <utility>

#include "common/assert.hpp"
#include "checkpoint/rle.hpp"
#include "checkpoint/wire.hpp"
#include "common/log.hpp"
#include "parity/gf256.hpp"
#include "parity/kernels.hpp"
#include "parity/parallel.hpp"
#include "parity/pool.hpp"
#include "parity/raid5.hpp"
#include "parity/rdp.hpp"
#include "parity/reed_solomon.hpp"
#include "parity/xor.hpp"

namespace vdc::core {

std::size_t parity_width(ParityScheme scheme, std::size_t rs_m) {
  switch (scheme) {
    case ParityScheme::Raid5:
      return 1;
    case ParityScheme::Rdp:
      return 2;
    case ParityScheme::Rs:
      return rs_m;
  }
  throw InvariantError("unknown parity scheme");
}

std::unique_ptr<parity::GroupCodec> make_codec(ParityScheme scheme,
                                               std::size_t k,
                                               std::size_t rs_m) {
  switch (scheme) {
    case ParityScheme::Raid5:
      return std::make_unique<parity::Raid5Codec>(k);
    case ParityScheme::Rdp: {
      const std::size_t p = parity::RdpCodec::next_prime_at_least(
          std::max<std::size_t>(k + 1, 3));
      return std::make_unique<parity::RdpCodec>(k, p);
    }
    case ParityScheme::Rs:
      return std::make_unique<parity::ReedSolomonCodec>(k, rs_m);
  }
  throw InvariantError("unknown parity scheme");
}

PlacedPlan PlacedPlan::make(GroupPlan plan,
                            const cluster::ClusterManager& cluster,
                            ParityScheme scheme, std::size_t rs_m) {
  const std::size_t m = parity_width(scheme, rs_m);
  PlacedPlan placed;
  placed.holders.reserve(plan.groups.size());
  for (const auto& g : plan.groups) {
    const auto eligible =
        GroupPlanner::eligible_parity_nodes(g, cluster, plan.rack_aware);
    VDC_REQUIRE(eligible.size() >= m,
                "not enough parity-eligible nodes for this scheme");
    const std::size_t base =
        parity::ParityRotation::holder_index(g.id, 0, eligible.size());
    std::vector<cluster::NodeId> holders;
    for (std::size_t j = 0; j < m; ++j)
      holders.push_back(eligible[(base + j) % eligible.size()]);
    placed.holders.push_back(std::move(holders));
  }
  placed.plan = std::move(plan);
  return placed;
}

bool PlacedPlan::still_orthogonal(
    const cluster::ClusterManager& cluster) const {
  if (!GroupPlanner::validate(plan, cluster)) return false;
  for (std::size_t gi = 0; gi < plan.groups.size(); ++gi) {
    for (cluster::NodeId holder : holders[gi]) {
      if (!cluster.node(holder).alive()) return false;
      const auto holder_rack = cluster.node(holder).rack();
      for (vm::VmId member : plan.groups[gi].members) {
        const auto loc = cluster.locate(member);
        if (!loc.has_value()) continue;
        if (*loc == holder) return false;
        if (plan.rack_aware && cluster.node(*loc).rack() == holder_rack)
          return false;
      }
    }
  }
  return true;
}

const DvdcState::ParityRecord* DvdcState::parity(GroupId group) const {
  auto it = parity_.find(group);
  return it == parity_.end() ? nullptr : &it->second;
}

DvdcState::ParityRecord* DvdcState::mutable_parity(GroupId group) {
  auto it = parity_.find(group);
  return it == parity_.end() ? nullptr : &it->second;
}

Bytes DvdcState::record_block_bytes(const ParityRecord& record) {
  Bytes total = 0;
  for (const auto& block : record.blocks) total += block.size();
  return total;
}

void DvdcState::set_parity(GroupId group, ParityRecord record) {
  auto it = parity_.find(group);
  if (it != parity_.end()) parity_bytes_ -= record_block_bytes(it->second);
  parity_bytes_ += record_block_bytes(record);
  parity_[group] = std::move(record);
}

void DvdcState::drop_parity(GroupId group) {
  auto it = parity_.find(group);
  if (it == parity_.end()) return;
  parity_bytes_ -= record_block_bytes(it->second);
  parity_.erase(it);
}

const VmInfo& DvdcState::vm_info(vm::VmId id) const {
  auto it = vms_.find(id);
  VDC_REQUIRE(it != vms_.end(), "unknown VM in DVDC state");
  return it->second;
}

void DvdcState::drop_node(cluster::NodeId node) {
  stores_.erase(node);
  for (auto& [gid, record] : parity_) {
    for (std::size_t i = 0; i < record.holders.size(); ++i) {
      if (record.holders[i] == node) {
        parity_bytes_ -= record.blocks[i].size();
        record.blocks[i].clear();
      }
    }
  }
}

Bytes DvdcState::memory_bytes() const {
  Bytes total = parity_bytes_;
  for (const auto& [node, store] : stores_) total += store.total_bytes();
  return total;
}

// --- coordinator ------------------------------------------------------------

struct DvdcCoordinator::GroupWork {
  GroupId gid = 0;
  std::vector<cluster::NodeId> holders;
  std::vector<parity::Block> new_blocks;  // content, computed at capture
  std::vector<vm::VmId> members;
  bool full_exchange = false;
  Bytes block_size = 0;

  struct Contribution {
    cluster::NodeId src_node = 0;
    Bytes wire = 0;       // bytes over the fabric, per holder stream
    Bytes xor_bytes = 0;  // parity work per holder
  };
  std::vector<Contribution> contribs;  // per member
  std::size_t tasks_done = 0;
  std::size_t tasks_total = 0;  // members x holders
  // Chunk folds still queued per (member, holder) stream, indexed by
  // mi * holders + hi; a stream's task is done when its count hits 0.
  std::vector<std::size_t> serves_left;

  // Fast plane: deltas were folded straight into the committed parity
  // record; `undo` holds the original bytes of every touched range (first
  // touch only), replayed LIFO on abort. new_blocks stays empty.
  bool in_place = false;
  struct UndoEntry {
    std::size_t block = 0;   // holder index into the record's blocks
    std::size_t offset = 0;  // byte offset of the touched range
    parity::Block saved;     // original contents of the range
  };
  std::vector<UndoEntry> undo;
  // Fast plane: dirty pages consumed from each member's log at the cut;
  // an abort puts them back so the next capture stays a superset of the
  // changes since the committed epoch.
  std::vector<std::vector<vm::PageIndex>> captured_dirty;  // per member
};

DvdcCoordinator::DvdcCoordinator(simkit::Simulator& sim,
                                 cluster::ClusterManager& cluster,
                                 DvdcState& state, ProtocolConfig config)
    : sim_(sim), cluster_(cluster), state_(state), config_(config) {
  if (const char* env = std::getenv("VDC_REFERENCE_PLANE"))
    config_.reference_data_plane = !(env[0] == '\0' || env[0] == '0');
  config_.chunking = net::ChunkPolicy::env_override(config_.chunking);
}

DvdcCoordinator::~DvdcCoordinator() = default;

simkit::Resource& DvdcCoordinator::node_cpu(cluster::NodeId node) {
  auto it = cpus_.find(node);
  if (it == cpus_.end())
    it = cpus_.emplace(node, std::make_unique<simkit::Resource>(sim_, 1))
             .first;
  return *it->second;
}

namespace {
using WallClock = std::chrono::steady_clock;

std::int64_t ns_since(WallClock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             WallClock::now() - t0)
      .count();
}

// Enumerates where one member's changed range lands in the group's parity
// blocks — the codec-specific heart of the parity-delta fold. Linear
// codes map a range to the same offset in every holder block (coefficient
// 1 for XOR parity, the Cauchy coefficient for RS); RDP maps it through
// the row/diagonal geometry (RdpCodec::for_each_update_range). Both
// capture planes drive their undo-save and fold loops through this, so
// the touched ranges are identical by construction.
class DeltaFolder {
 public:
  DeltaFolder(ParityScheme scheme, std::size_t k, std::size_t rs_m,
              Bytes block_size)
      : scheme_(scheme), block_size_(block_size) {
    if (scheme == ParityScheme::Rs)
      rs_ = std::make_unique<parity::ReedSolomonCodec>(k, rs_m);
    else if (scheme == ParityScheme::Rdp)
      rdp_ = std::make_unique<parity::RdpCodec>(
          k, parity::RdpCodec::next_prime_at_least(
                 std::max<std::size_t>(k + 1, 3)));
  }

  /// fn(dst_off, src_off, len, coeff): the pieces of member `mi`'s delta
  /// over [offset, offset+length) that land in holder `hi`'s block.
  template <typename Fn>
  void for_each_range(std::size_t hi, std::size_t mi, std::size_t offset,
                      std::size_t length, Fn&& fn) const {
    switch (scheme_) {
      case ParityScheme::Raid5:
        fn(offset, std::size_t{0}, length, std::uint8_t{1});
        return;
      case ParityScheme::Rs:
        fn(offset, std::size_t{0}, length, rs_->coefficient(hi, mi));
        return;
      case ParityScheme::Rdp:
        rdp_->for_each_update_range(
            mi, offset, length, block_size_,
            [&](std::size_t parity, std::size_t dst, std::size_t src,
                std::size_t len) {
              if (parity == hi) fn(dst, src, len, std::uint8_t{1});
            });
        return;
    }
    throw InvariantError("unknown parity scheme");
  }

  /// Fold `data` (old^new of member `mi` at `offset`) into holder `hi`'s
  /// block; returns the destination bytes written.
  Bytes fold(std::size_t hi, std::size_t mi, std::size_t offset,
             std::span<const std::byte> data, parity::Block& block) const {
    Bytes folded = 0;
    for_each_range(
        hi, mi, offset, data.size(),
        [&](std::size_t dst, std::size_t src, std::size_t len,
            std::uint8_t coeff) {
          VDC_ASSERT(dst + len <= block.size());
          parity::gf256::mul_add(
              coeff,
              reinterpret_cast<const std::uint8_t*>(data.data() + src),
              reinterpret_cast<std::uint8_t*>(block.data() + dst), len);
          folded += len;
        });
    return folded;
  }

 private:
  ParityScheme scheme_;
  Bytes block_size_;
  std::unique_ptr<parity::ReedSolomonCodec> rs_;
  std::unique_ptr<parity::RdpCodec> rdp_;
};
}  // namespace

// Legacy data plane: flatten every image, memcmp-diff against the previous
// committed payload, store a fresh full copy, fold into a COPY of the
// committed parity (or serial-encode on full exchange). Kept selectable so
// the fast plane can be cross-checked byte for byte.
void DvdcCoordinator::capture_group_reference(
    GroupWork& gw, const RaidGroup& group,
    std::unordered_map<cluster::NodeId, Bytes>& captured_per_node,
    std::int64_t& capture_ns, std::int64_t& fold_ns) {
  auto& metrics = sim_.telemetry().metrics();
  const std::size_t k = group.members.size();
  const bool incremental = !gw.full_exchange;
  const DvdcState::ParityRecord* committed = state_.parity(group.id);

  auto t0 = WallClock::now();
  // Gather payloads (content frozen at the cut) and per-member costs.
  std::vector<std::vector<std::byte>> payloads;
  payloads.reserve(k);
  std::vector<checkpoint::PageDelta> xor_deltas(k);
  Bytes max_payload = 0;

  for (std::size_t mi = 0; mi < k; ++mi) {
    const vm::VmId vmid = group.members[mi];
    const auto loc = cluster_.locate(vmid);
    VDC_REQUIRE(loc.has_value(), "group member is not placed");
    auto& machine = cluster_.node(*loc).hypervisor().get(vmid);
    auto& store = state_.node_store(*loc);
    const Bytes page_size = machine.image().page_size();

    GroupWork::Contribution contrib;
    contrib.src_node = *loc;
    std::vector<std::byte> payload = machine.image().flatten();
    max_payload = std::max<Bytes>(max_payload, payload.size());
    metrics.add("dvdc.pages.copied",
                static_cast<double>(machine.image().page_count()));
    metrics.add("dvdc.copy.bytes",
                static_cast<double>(2 * payload.size()));  // flatten + store

    if (incremental) {
      const checkpoint::StoredCheckpoint* prev =
          store.find(vmid, state_.committed_epoch());
      VDC_ASSERT(prev != nullptr);
      const std::vector<std::byte> prev_flat = prev->payload();
      checkpoint::PageDelta diff =
          checkpoint::diff_images(prev_flat, payload, page_size);
      const checkpoint::CompressedDelta compressed =
          checkpoint::compress_delta(diff, prev_flat);
      // A member with changes ships a framed "VDD1" delta per holder; an
      // unchanged member ships nothing at all.
      contrib.wire = compressed.page_count() == 0
                         ? 0
                         : checkpoint::delta_frame_size(compressed);
      contrib.xor_bytes = diff.raw_bytes();
      metrics.add("exchange.delta_bytes",
                  static_cast<double>(contrib.wire * gw.holders.size()),
                  epoch_labels_);
      metrics.add("dvdc.epoch.raw_dirty_bytes",
                  static_cast<double>(diff.raw_bytes()), epoch_labels_);
      captured_per_node[*loc] += diff.raw_bytes();
      // Holder-side content: new xor old per changed page.
      xor_deltas[mi].page_size = page_size;
      xor_deltas[mi].pages = diff.pages;
      for (std::size_t i = 0; i < diff.pages.size(); ++i) {
        std::vector<std::byte> x = diff.contents[i];
        parity::xor_into(
            x, std::span<const std::byte>(
                   prev_flat.data() + diff.pages[i] * page_size, page_size));
        xor_deltas[mi].contents.push_back(std::move(x));
      }
    } else {
      contrib.wire = config_.compress_full
                         ? checkpoint::rle_encode(payload).size() + 16
                         : payload.size();
      contrib.xor_bytes = payload.size();
      metrics.add("dvdc.epoch.raw_dirty_bytes",
                  static_cast<double>(payload.size()), epoch_labels_);
      captured_per_node[*loc] += payload.size();
    }
    metrics.add("dvdc.epoch.bytes_shipped",
                static_cast<double>(contrib.wire * gw.holders.size()),
                epoch_labels_);
    metrics.add("dvdc.epoch.bytes_xored",
                static_cast<double>(contrib.xor_bytes * gw.holders.size()),
                epoch_labels_);

    checkpoint::Checkpoint cp;
    cp.vm = vmid;
    cp.epoch = epoch_;
    cp.page_size = page_size;
    cp.payload = payload;
    store.put(std::move(cp));

    state_.register_vm(vmid, VmInfo{machine.name(), page_size,
                                    machine.image().page_count()});
    payloads.push_back(std::move(payload));
    gw.contribs.push_back(contrib);
  }
  capture_ns += ns_since(t0);

  // Parity content, computed exactly.
  t0 = WallClock::now();
  if (incremental) {
    gw.block_size = committed->block_size;
    gw.new_blocks = committed->blocks;  // copy: abort-safe
    const DeltaFolder folder(config_.scheme, k, config_.rs_parity,
                             gw.block_size);
    Bytes fold_bytes = 0;
    for (std::size_t mi = 0; mi < k; ++mi) {
      const auto& delta = xor_deltas[mi];
      for (std::size_t hi = 0; hi < gw.new_blocks.size(); ++hi) {
        for (std::size_t i = 0; i < delta.pages.size(); ++i) {
          const std::size_t off = delta.pages[i] * delta.page_size;
          fold_bytes += folder.fold(hi, mi, off, delta.contents[i],
                                    gw.new_blocks[hi]);
        }
      }
    }
    metrics.add("parity.kernel.fold_bytes", static_cast<double>(fold_bytes),
                epoch_labels_);
  } else {
    auto codec = make_codec(config_.scheme, k, config_.rs_parity);
    gw.block_size =
        parity::round_up(max_payload, codec->block_granularity());
    std::vector<parity::Block> padded;
    padded.reserve(k);
    std::vector<parity::BlockView> views;
    views.reserve(k);
    for (const auto& p : payloads)
      padded.push_back(parity::padded_copy(p, gw.block_size));
    for (const auto& p : padded) views.emplace_back(p);
    gw.new_blocks = codec->encode(views);
    VDC_ASSERT(gw.new_blocks.size() == gw.holders.size());
  }
  fold_ns += ns_since(t0);
}

// Fast data plane: the dirty bitmap bounds the candidate pages, unchanged
// pages are shared (ref-counted) with the previous checkpoint, and deltas
// fold into the committed parity record in place under an undo log. All
// content, metrics, and simulated timing match the reference plane bit
// for bit; only the wall-clock cost changes — O(dirty), not O(image).
void DvdcCoordinator::capture_group_fast(
    GroupWork& gw, const RaidGroup& group,
    std::unordered_map<cluster::NodeId, Bytes>& captured_per_node,
    std::int64_t& capture_ns, std::int64_t& fold_ns) {
  auto& metrics = sim_.telemetry().metrics();
  const std::size_t k = group.members.size();
  const bool incremental = !gw.full_exchange;

  auto t0 = WallClock::now();
  std::vector<std::vector<std::byte>> payloads;  // full exchange only
  std::vector<checkpoint::PageDelta> xor_deltas(k);
  Bytes max_payload = 0;
  gw.captured_dirty.resize(k);

  for (std::size_t mi = 0; mi < k; ++mi) {
    const vm::VmId vmid = group.members[mi];
    const auto loc = cluster_.locate(vmid);
    VDC_REQUIRE(loc.has_value(), "group member is not placed");
    auto& machine = cluster_.node(*loc).hypervisor().get(vmid);
    auto& store = state_.node_store(*loc);
    auto& image = machine.image();
    const Bytes page_size = image.page_size();
    const std::size_t page_count = image.page_count();

    GroupWork::Contribution contrib;
    contrib.src_node = *loc;
    max_payload = std::max<Bytes>(max_payload, image.size_bytes());

    // Consume the dirty log at the cut. The log is trustworthy iff nobody
    // else cleared it since OUR last clear (generation check); otherwise
    // every page is a candidate. Either way the delta below is exact: a
    // candidate only enters the delta if its bytes actually differ from
    // the committed checkpoint, so the result equals diff_images().
    const auto baseline = dirty_baseline_.find(vmid);
    const bool log_valid = baseline != dirty_baseline_.end() &&
                           baseline->second == image.dirty_generation();
    gw.captured_dirty[mi] = image.dirty_pages();
    image.clear_dirty();
    dirty_baseline_[vmid] = image.dirty_generation();

    if (incremental) {
      const checkpoint::StoredCheckpoint* prev =
          store.find(vmid, state_.committed_epoch());
      VDC_ASSERT(prev != nullptr);

      // Start from the previous epoch's page vector (pointer copies) and
      // replace only the changed pages. A store entry chopped at a
      // foreign granularity (e.g. hand-built in a test) is re-chopped.
      checkpoint::StoredCheckpoint next;
      next.vm = vmid;
      next.epoch = epoch_;
      next.page_size = page_size;
      if (prev->page_size == page_size && prev->pages.size() == page_count) {
        next.pages = prev->pages;
      } else {
        const std::vector<std::byte> prev_flat = prev->payload();
        VDC_REQUIRE(prev_flat.size() == image.size_bytes(),
                    "previous checkpoint size mismatch");
        next.pages = checkpoint::StoredCheckpoint::chop(prev_flat, page_size);
      }

      checkpoint::PageDelta& delta = xor_deltas[mi];
      delta.page_size = page_size;
      Bytes wire = 0;
      const auto consider = [&](vm::PageIndex p) {
        const auto cur = image.page(p);
        const auto old = std::span<const std::byte>(*next.pages[p]);
        if (std::memcmp(cur.data(), old.data(), page_size) == 0) return;
        delta.pages.push_back(p);
        std::vector<std::byte> x(cur.begin(), cur.end());
        parity::xor_into(x, old);
        wire += checkpoint::rle_encode(x).size();
        delta.contents.push_back(std::move(x));
        next.pages[p] = std::make_shared<const std::vector<std::byte>>(
            cur.begin(), cur.end());
      };
      if (log_valid) {
        for (vm::PageIndex p : gw.captured_dirty[mi]) consider(p);
      } else {
        for (vm::PageIndex p = 0; p < page_count; ++p) consider(p);
      }
      // Framed "VDD1" delta per holder (56-byte header + 8 bytes per page
      // record + RLE content), matching the reference plane's
      // delta_frame_size byte for byte. No changes, no frame.
      contrib.wire = delta.pages.empty()
                         ? 0
                         : checkpoint::delta_frame_size(delta.pages.size(),
                                                        wire);
      contrib.xor_bytes = delta.raw_bytes();
      metrics.add("exchange.delta_bytes",
                  static_cast<double>(contrib.wire * gw.holders.size()),
                  epoch_labels_);
      metrics.add("dvdc.epoch.raw_dirty_bytes",
                  static_cast<double>(delta.raw_bytes()), epoch_labels_);
      captured_per_node[*loc] += delta.raw_bytes();
      metrics.add("dvdc.pages.shared",
                  static_cast<double>(page_count - delta.pages.size()));
      metrics.add("dvdc.pages.copied",
                  static_cast<double>(delta.pages.size()));
      metrics.add("dvdc.copy.bytes",
                  static_cast<double>(delta.raw_bytes()));
      store.put(std::move(next));
    } else {
      std::vector<std::byte> payload = image.flatten();
      contrib.wire = config_.compress_full
                         ? checkpoint::rle_encode(payload).size() + 16
                         : payload.size();
      contrib.xor_bytes = payload.size();
      metrics.add("dvdc.epoch.raw_dirty_bytes",
                  static_cast<double>(payload.size()), epoch_labels_);
      captured_per_node[*loc] += payload.size();
      metrics.add("dvdc.pages.copied", static_cast<double>(page_count));
      metrics.add("dvdc.copy.bytes",
                  static_cast<double>(2 * payload.size()));

      checkpoint::StoredCheckpoint next;
      next.vm = vmid;
      next.epoch = epoch_;
      next.page_size = page_size;
      next.pages = checkpoint::StoredCheckpoint::chop(payload, page_size);
      store.put(std::move(next));
      payloads.push_back(std::move(payload));
    }
    metrics.add("dvdc.epoch.bytes_shipped",
                static_cast<double>(contrib.wire * gw.holders.size()),
                epoch_labels_);
    metrics.add("dvdc.epoch.bytes_xored",
                static_cast<double>(contrib.xor_bytes * gw.holders.size()),
                epoch_labels_);

    state_.register_vm(vmid,
                       VmInfo{machine.name(), page_size, page_count});
    gw.contribs.push_back(contrib);
  }
  capture_ns += ns_since(t0);

  // Parity content, computed exactly.
  t0 = WallClock::now();
  if (incremental) {
    DvdcState::ParityRecord* rec = state_.mutable_parity(group.id);
    VDC_ASSERT(rec != nullptr);
    gw.in_place = true;
    gw.block_size = rec->block_size;

    const DeltaFolder folder(config_.scheme, k, config_.rs_parity,
                             gw.block_size);

    // Save the original bytes of every range we are about to touch (first
    // touch per exact range is enough: LIFO replay restores originals even
    // across overlapping ranges, e.g. members with different page sizes or
    // RDP row slices meeting on a shared diagonal).
    std::set<std::tuple<std::size_t, std::size_t, std::size_t>> saved;
    for (std::size_t mi = 0; mi < k; ++mi) {
      const auto& delta = xor_deltas[mi];
      for (std::size_t hi = 0; hi < rec->blocks.size(); ++hi) {
        for (std::size_t i = 0; i < delta.pages.size(); ++i) {
          const std::size_t off = delta.pages[i] * delta.page_size;
          folder.for_each_range(
              hi, mi, off, delta.page_size,
              [&](std::size_t dst, std::size_t, std::size_t len,
                  std::uint8_t) {
                VDC_ASSERT(dst + len <= rec->blocks[hi].size());
                if (!saved.insert({hi, dst, len}).second) return;
                gw.undo.push_back(GroupWork::UndoEntry{
                    hi, dst,
                    parity::Block(
                        rec->blocks[hi].begin() +
                            static_cast<std::ptrdiff_t>(dst),
                        rec->blocks[hi].begin() +
                            static_cast<std::ptrdiff_t>(dst + len))});
              });
        }
      }
    }

    // Fold every member's delta into each holder block, holders fanned
    // out over the pool (destination blocks are disjoint; the per-block
    // fold order matches the reference plane).
    std::vector<Bytes> fold_bytes(rec->blocks.size(), 0);
    parity::ThreadPool::shared().run(
        rec->blocks.size(), [&](std::size_t hi) {
          for (std::size_t mi = 0; mi < k; ++mi) {
            const auto& delta = xor_deltas[mi];
            for (std::size_t i = 0; i < delta.pages.size(); ++i) {
              const std::size_t off = delta.pages[i] * delta.page_size;
              fold_bytes[hi] += folder.fold(hi, mi, off, delta.contents[i],
                                            rec->blocks[hi]);
            }
          }
        });
    Bytes total_fold = 0;
    for (Bytes b : fold_bytes) total_fold += b;
    metrics.add("parity.kernel.fold_bytes",
                static_cast<double>(total_fold), epoch_labels_);
  } else {
    auto codec = make_codec(config_.scheme, k, config_.rs_parity);
    gw.block_size =
        parity::round_up(max_payload, codec->block_granularity());
    std::vector<parity::Block> padded;
    padded.reserve(k);
    std::vector<parity::BlockView> views;
    views.reserve(k);
    for (const auto& p : payloads)
      padded.push_back(parity::padded_copy(p, gw.block_size));
    for (const auto& p : padded) views.emplace_back(p);
    gw.new_blocks =
        codec->encode_parallel(views, parity::default_parity_threads());
    VDC_ASSERT(gw.new_blocks.size() == gw.holders.size());
  }
  fold_ns += ns_since(t0);
}

void DvdcCoordinator::run_epoch(const PlacedPlan& plan,
                                checkpoint::Epoch epoch, DoneCallback done) {
  VDC_REQUIRE(!in_flight_, "an epoch is already in flight");
  VDC_REQUIRE(epoch > state_.committed_epoch(),
              "epoch must advance past the committed one");
  VDC_REQUIRE(plan.holders.size() == plan.plan.groups.size(),
              "plan is missing parity holders");
  in_flight_ = true;
  const std::uint64_t gen = ++generation_;
  plan_ = &plan;
  epoch_ = epoch;
  epoch_start_ = sim_.now();
  done_ = std::move(done);
  stats_ = EpochStats{};
  stats_.epoch = epoch;
  stats_.groups = plan.plan.groups.size();
  work_.clear();
  groups_pending_ = plan.plan.groups.size();

  auto& tel = sim_.telemetry();
  auto& metrics = tel.metrics();
  epoch_labels_ = telemetry::Labels{{"epoch", std::to_string(epoch)},
                                    {"gen", std::to_string(gen)}};
  epoch_span_ = tel.begin_span("epoch", epoch_labels_);
  metrics.set("dvdc.epoch.groups",
              static_cast<double>(plan.plan.groups.size()), epoch_labels_);
  metrics.set("parity.kernel.tier",
              static_cast<double>(static_cast<int>(parity::active_kernel().tier)));

  // 1. Quiesce: a consistent cluster-wide cut.
  for (cluster::NodeId nid : cluster_.alive_nodes())
    cluster_.node(nid).hypervisor().pause_all();

  // 2. Capture + diff every member at the cut, build per-group work.
  // Two data planes compute identical content: the fast plane reads the
  // dirty bitmap, shares unchanged pages with the previous checkpoint and
  // folds deltas into the committed parity in place (undo-logged); the
  // reference plane is the legacy flatten+diff+copy pipeline.
  std::unordered_map<cluster::NodeId, Bytes> captured_per_node;
  std::int64_t capture_ns = 0, fold_ns = 0;
  for (std::size_t gi = 0; gi < plan.plan.groups.size(); ++gi) {
    const RaidGroup& group = plan.plan.groups[gi];
    auto gw = std::make_unique<GroupWork>();
    gw->gid = group.id;
    gw->holders = plan.holders[gi];
    gw->members = group.members;

    const DvdcState::ParityRecord* committed = state_.parity(group.id);
    // Every scheme folds per-page deltas into the standing parity blocks:
    // linear codes (XOR parity, Reed-Solomon) at the page's own offset,
    // RDP through its row/diagonal update geometry (DeltaFolder).
    bool incremental =
        config_.incremental && committed != nullptr &&
        committed->scheme == config_.scheme &&
        committed->members == group.members &&
        committed->epoch == state_.committed_epoch() &&
        committed->holders == gw->holders;
    if (incremental) {
      for (const auto& block : committed->blocks)
        if (block.empty()) incremental = false;  // a holder died
    }
    if (incremental) {
      for (vm::VmId vmid : group.members) {
        const auto loc = cluster_.locate(vmid);
        if (!loc.has_value() ||
            state_.node_store(*loc).find(vmid, state_.committed_epoch()) ==
                nullptr) {
          incremental = false;
          break;
        }
      }
    }
    gw->full_exchange = !incremental;
    if (gw->full_exchange)
      metrics.add("dvdc.epoch.full_exchange_groups", 1.0, epoch_labels_);

    if (config_.reference_data_plane)
      capture_group_reference(*gw, group, captured_per_node, capture_ns,
                              fold_ns);
    else
      capture_group_fast(*gw, group, captured_per_node, capture_ns,
                         fold_ns);

    gw->tasks_total = group.members.size() * gw->holders.size();
    gw->serves_left.assign(gw->tasks_total, 1);
    work_.push_back(std::move(gw));
  }
  metrics.add("dvdc.wall.capture_ns", static_cast<double>(capture_ns));
  metrics.add("dvdc.wall.fold_ns", static_cast<double>(fold_ns));
  for (const auto& gw : work_)
    if (gw->in_place) {
      state_.set_fold_in_flight(true);
      break;
    }

  // 3. Local capture stall, then resume (COW) and start the exchange.
  SimTime stall = config_.base_overhead;
  if (!config_.copy_on_write) {
    Bytes worst = 0;
    for (const auto& [node, bytes] : captured_per_node)
      worst = std::max(worst, bytes);
    stall += static_cast<double>(worst) / config_.snapshot_rate;
  }
  overhead_ = stall;
  arrivals_pending_ = 0;
  for (const auto& gw : work_) arrivals_pending_ += gw->tasks_total;

  sim_.after(stall, [this, gen] {
    if (gen != generation_ || !in_flight_) return;
    if (config_.copy_on_write) {
      for (cluster::NodeId nid : cluster_.alive_nodes())
        cluster_.node(nid).hypervisor().resume_all();
    }
    // The quiesce/capture/resume boundaries are known exactly here: the
    // quiesce cut costs base_overhead, local capture runs to the end of
    // the stall (zero-length under copy-on-write), and resume is the
    // instant the guests come back (a marker; without COW the guests
    // actually stay paused until commit).
    auto& tel = sim_.telemetry();
    const SimTime cut_end = epoch_start_ + config_.base_overhead;
    tel.record_span("epoch.quiesce", epoch_start_, cut_end, epoch_labels_,
                    epoch_span_);
    tel.record_span("epoch.capture", cut_end, sim_.now(), epoch_labels_,
                    epoch_span_);
    tel.record_span("epoch.resume", sim_.now(), sim_.now(), epoch_labels_,
                    epoch_span_);
    exchange_start_ = sim_.now();
    // Launch every member's stream toward each of its group's holders,
    // sliced per the chunk policy so holders fold arriving chunks into
    // parity while later chunks are still on the wire.
    for (std::size_t gi = 0; gi < work_.size(); ++gi) {
      GroupWork& gw = *work_[gi];
      for (std::size_t mi = 0; mi < gw.contribs.size(); ++mi) {
        for (std::size_t hi = 0; hi < gw.holders.size(); ++hi) {
          const auto& contrib = gw.contribs[mi];
          if (contrib.wire == 0) {
            sim_.after(0.0, [this, gen, gi, mi, hi] {
              on_member_arrival(gen, gi, mi, hi);
            });
            continue;
          }
          const net::HostId src = cluster_.node(contrib.src_node).host();
          const net::HostId dst = cluster_.node(gw.holders[hi]).host();
          if (src == dst) {
            // Member and holder co-located (transiently possible after a
            // recovery re-placement): the contribution is a local memory
            // copy, no fabric traffic.
            sim_.after(0.0, [this, gen, gi, mi, hi] {
              on_member_arrival(gen, gi, mi, hi);
            });
            continue;
          }
          const Bytes wire = contrib.wire;
          gw.serves_left[mi * gw.holders.size() + hi] =
              config_.chunking.chunk_count(wire);
          streams_.push_back(net::ChunkedStream::start(
              cluster_.fabric(), src, dst, wire, config_.chunking,
              [this, gen, gi, mi, hi,
               wire](const net::ChunkedStream::Chunk& c) {
                on_chunk_arrival(gen, gi, mi, hi,
                                 static_cast<double>(c.bytes) /
                                     static_cast<double>(wire),
                                 c.last);
              }));
          streams_.back()->set_stream_tag(gw.full_exchange
                                              ? net::kFullStreamTag
                                              : net::kDeltaStreamTag);
          // A stream that exhausts its retransmission budget/deadline on a
          // lossy fabric kills the whole epoch (see on_stream_failed).
          streams_.back()->set_on_fail([this, gen](const std::string& why) {
            on_stream_failed(gen, why);
          });
        }
      }
    }
  });
}

void DvdcCoordinator::on_member_arrival(std::uint64_t gen,
                                        std::size_t group_idx,
                                        std::size_t member_idx,
                                        std::size_t holder_idx) {
  // Whole contribution in one piece (zero-wire or co-located): a single
  // chunk carrying the full fold.
  on_chunk_arrival(gen, group_idx, member_idx, holder_idx, 1.0, true);
}

void DvdcCoordinator::on_chunk_arrival(std::uint64_t gen,
                                       std::size_t group_idx,
                                       std::size_t member_idx,
                                       std::size_t holder_idx,
                                       double wire_fraction, bool last) {
  if (gen != generation_ || !in_flight_) return;
  GroupWork& gw = *work_[group_idx];
  const auto& contrib = gw.contribs[member_idx];

  if (cluster_.is_fenced(contrib.src_node)) {
    // Defense in depth: a fenced node (declared dead, possibly a zombie
    // behind a partition) must not contribute to the stripe. Its write is
    // rejected and the epoch aborts rather than committing tainted parity.
    sim_.telemetry().metrics().add("recovery.fenced", 1.0);
    on_stream_failed(gen, "write from fenced node rejected");
    return;
  }

  if (last) {
    VDC_ASSERT(arrivals_pending_ > 0);
    if (--arrivals_pending_ == 0) {
      // Last stream has landed: the exchange phase ends and the parity
      // tail (holder-side folds still queued on node CPUs) begins.
      sim_.telemetry().record_span("epoch.exchange", exchange_start_,
                                   sim_.now(), epoch_labels_, epoch_span_);
      parity_start_ = sim_.now();
    }
  }

  const cluster::NodeId holder = gw.holders[holder_idx];
  const double xor_time =
      static_cast<double>(contrib.xor_bytes) * wire_fraction /
      cluster_.node(holder).spec().xor_rate;
  const std::size_t slot = member_idx * gw.holders.size() + holder_idx;
  node_cpu(holder).serve(xor_time, [this, gen, group_idx, slot] {
    if (gen != generation_ || !in_flight_) return;
    GroupWork& g = *work_[group_idx];
    VDC_ASSERT(g.serves_left[slot] > 0);
    if (--g.serves_left[slot] > 0) return;
    if (++g.tasks_done == g.tasks_total)
      on_group_parity_done(gen, group_idx);
  });
}

void DvdcCoordinator::on_group_parity_done(std::uint64_t gen,
                                           std::size_t group_idx) {
  if (gen != generation_ || !in_flight_) return;
  VDC_ASSERT(groups_pending_ > 0);
  {
    // Per-group child span: this group's stream + fold work, from the
    // start of the exchange to its parity completion.
    telemetry::Labels labels = epoch_labels_;
    labels.push_back({"group", std::to_string(work_[group_idx]->gid)});
    sim_.telemetry().record_span("epoch.group", exchange_start_, sim_.now(),
                                 std::move(labels), epoch_span_);
  }
  if (--groups_pending_ == 0) {
    sim_.telemetry().record_span("epoch.parity", parity_start_, sim_.now(),
                                 epoch_labels_, epoch_span_);
    commit_start_ = sim_.now();
    sim_.after(config_.commit_latency, [this, gen] { try_commit(gen); });
  }
}

void DvdcCoordinator::on_stream_failed(std::uint64_t gen,
                                       const std::string& reason) {
  if (gen != generation_ || !in_flight_) return;
  VDC_INFO("dvdc", "epoch ", epoch_, " aborted: ", reason);
  sim_.telemetry().metrics().add("dvdc.epochs_failed", 1.0);

  EpochStats stats = stats_;
  stats.committed = false;
  stats.overhead = overhead_;
  stats.latency = sim_.now() - epoch_start_;
  auto done = std::move(done_);
  done_ = nullptr;
  abort();  // undo folds, drop captures, re-mark dirty pages
  if (done) done(stats);
}

void DvdcCoordinator::try_commit(std::uint64_t gen) {
  if (gen != generation_ || !in_flight_) return;

  // Commit: publish parity, advance the epoch, GC old checkpoints.
  for (auto& gw : work_) {
    if (gw->in_place) {
      // Deltas were folded into the committed record in place; the fold
      // preconditions pinned scheme/members/holders/block_size, so the
      // commit is just the epoch stamp (and retiring the undo log).
      DvdcState::ParityRecord* rec = state_.mutable_parity(gw->gid);
      VDC_ASSERT(rec != nullptr);
      rec->epoch = epoch_;
      gw->undo.clear();
      continue;
    }
    DvdcState::ParityRecord record;
    record.epoch = epoch_;
    record.scheme = config_.scheme;
    record.members = gw->members;
    record.holders = gw->holders;
    record.blocks = std::move(gw->new_blocks);
    record.block_size = gw->block_size;
    state_.set_parity(gw->gid, std::move(record));
  }
  state_.set_fold_in_flight(false);
  state_.set_committed_epoch(epoch_);
  for (cluster::NodeId nid : cluster_.alive_nodes())
    state_.node_store(nid).gc_before(epoch_);

  if (!config_.copy_on_write) {
    for (cluster::NodeId nid : cluster_.alive_nodes())
      cluster_.node(nid).hypervisor().resume_all();
    overhead_ = sim_.now() - epoch_start_;
  }

  stats_.overhead = overhead_;
  stats_.latency = sim_.now() - epoch_start_;

  // The registry is the source of truth for the epoch's byte accounting;
  // EpochStats stays as a façade derived from it.
  auto& tel = sim_.telemetry();
  auto& metrics = tel.metrics();
  stats_.bytes_shipped = static_cast<Bytes>(
      metrics.value("dvdc.epoch.bytes_shipped", epoch_labels_));
  stats_.delta_bytes = static_cast<Bytes>(
      metrics.value("exchange.delta_bytes", epoch_labels_));
  stats_.bytes_xored = static_cast<Bytes>(
      metrics.value("dvdc.epoch.bytes_xored", epoch_labels_));
  stats_.raw_dirty_bytes = static_cast<Bytes>(
      metrics.value("dvdc.epoch.raw_dirty_bytes", epoch_labels_));
  stats_.full_exchange =
      metrics.value("dvdc.epoch.full_exchange_groups", epoch_labels_) > 0;
  metrics.add("dvdc.epochs_committed", 1.0);
  metrics.observe("dvdc.overhead_s", stats_.overhead);
  metrics.observe("dvdc.latency_s", stats_.latency);
  metrics.set("dvdc.state_bytes",
              static_cast<double>(state_.memory_bytes()));
  tel.record_span("epoch.commit", commit_start_, sim_.now(), epoch_labels_,
                  epoch_span_);
  tel.end_span(epoch_span_);
  epoch_span_ = telemetry::kNoSpan;

  in_flight_ = false;
  work_.clear();
  streams_.clear();  // all complete by commit
  plan_ = nullptr;
  VDC_DEBUG("dvdc", "epoch ", epoch_, " committed, latency ",
            stats_.latency, "s");
  if (done_) {
    auto done = std::move(done_);
    done(stats_);
  }
}

void DvdcCoordinator::abort() {
  if (!in_flight_) return;
  ++generation_;
  in_flight_ = false;

  // Tear down in-flight exchange streams: the aborted epoch's traffic
  // must not keep occupying the fabric (or fire stale chunk callbacks).
  for (auto& stream : streams_) stream->cancel();
  streams_.clear();

  // Roll back in-place parity folds: replay the undo log LIFO so every
  // touched range returns to its committed bytes. Ranges on a holder that
  // was already dropped (cleared block) are skipped.
  for (auto& gw : work_) {
    if (!gw->in_place) continue;
    DvdcState::ParityRecord* rec = state_.mutable_parity(gw->gid);
    if (rec == nullptr) continue;
    for (auto it = gw->undo.rbegin(); it != gw->undo.rend(); ++it) {
      if (it->block >= rec->blocks.size()) continue;
      auto& block = rec->blocks[it->block];
      if (it->offset + it->saved.size() > block.size()) continue;
      std::memcpy(block.data() + it->offset, it->saved.data(),
                  it->saved.size());
    }
  }

  // Discard the aborted epoch's captures on every surviving node.
  if (plan_ != nullptr) {
    for (const auto& group : plan_->plan.groups) {
      for (vm::VmId vmid : group.members) {
        const auto loc = cluster_.locate(vmid);
        if (loc.has_value()) state_.node_store(*loc).erase(vmid, epoch_);
      }
    }
  }

  // Return the dirty bits the capture consumed (fast plane): the next
  // epoch's dirty set must still cover every page changed since the
  // committed cut. Marking extra pages is always safe.
  for (auto& gw : work_) {
    for (std::size_t mi = 0; mi < gw->captured_dirty.size(); ++mi) {
      const vm::VmId vmid = gw->members[mi];
      const auto loc = cluster_.locate(vmid);
      if (!loc.has_value() || !cluster_.node(*loc).alive()) continue;
      auto& image = cluster_.node(*loc).hypervisor().get(vmid).image();
      for (vm::PageIndex p : gw->captured_dirty[mi]) image.mark_dirty(p);
    }
  }

  state_.set_fold_in_flight(false);
  work_.clear();
  plan_ = nullptr;
  sim_.telemetry().metrics().add("dvdc.epochs_aborted", 1.0);
  sim_.telemetry().end_span(epoch_span_);
  epoch_span_ = telemetry::kNoSpan;
  VDC_DEBUG("dvdc", "epoch ", epoch_, " aborted");
}

}  // namespace vdc::core
