#include "core/protocol.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <set>
#include <tuple>
#include <utility>

#include "common/assert.hpp"
#include "common/env.hpp"
#include "checkpoint/rle.hpp"
#include "checkpoint/stream.hpp"
#include "checkpoint/wire.hpp"
#include "common/log.hpp"
#include "parity/delta_fold.hpp"
#include "parity/gf256.hpp"
#include "parity/kernels.hpp"
#include "parity/parallel.hpp"
#include "parity/pool.hpp"
#include "parity/raid5.hpp"
#include "parity/rdp.hpp"
#include "parity/reed_solomon.hpp"
#include "parity/xor.hpp"

namespace vdc::core {

std::size_t parity_width(ParityScheme scheme, std::size_t rs_m) {
  switch (scheme) {
    case ParityScheme::Raid5:
      return 1;
    case ParityScheme::Rdp:
      return 2;
    case ParityScheme::Rs:
      return rs_m;
  }
  throw InvariantError("unknown parity scheme");
}

std::unique_ptr<parity::GroupCodec> make_codec(ParityScheme scheme,
                                               std::size_t k,
                                               std::size_t rs_m) {
  switch (scheme) {
    case ParityScheme::Raid5:
      return std::make_unique<parity::Raid5Codec>(k);
    case ParityScheme::Rdp: {
      const std::size_t p = parity::RdpCodec::next_prime_at_least(
          std::max<std::size_t>(k + 1, 3));
      return std::make_unique<parity::RdpCodec>(k, p);
    }
    case ParityScheme::Rs:
      return std::make_unique<parity::ReedSolomonCodec>(k, rs_m);
  }
  throw InvariantError("unknown parity scheme");
}

PlacedPlan PlacedPlan::make(GroupPlan plan,
                            const cluster::ClusterManager& cluster,
                            ParityScheme scheme, std::size_t rs_m) {
  const std::size_t m = parity_width(scheme, rs_m);
  PlacedPlan placed;
  placed.holders.reserve(plan.groups.size());
  for (const auto& g : plan.groups) {
    const auto eligible =
        GroupPlanner::eligible_parity_nodes(g, cluster, plan.rack_aware);
    VDC_REQUIRE(eligible.size() >= m,
                "not enough parity-eligible nodes for this scheme");
    const std::size_t base =
        parity::ParityRotation::holder_index(g.id, 0, eligible.size());
    std::vector<cluster::NodeId> holders;
    for (std::size_t j = 0; j < m; ++j)
      holders.push_back(eligible[(base + j) % eligible.size()]);
    placed.holders.push_back(std::move(holders));
  }
  placed.plan = std::move(plan);
  return placed;
}

bool PlacedPlan::still_orthogonal(
    const cluster::ClusterManager& cluster) const {
  if (!GroupPlanner::validate(plan, cluster)) return false;
  for (std::size_t gi = 0; gi < plan.groups.size(); ++gi) {
    for (cluster::NodeId holder : holders[gi]) {
      if (!cluster.node(holder).alive()) return false;
      const auto holder_rack = cluster.node(holder).rack();
      for (vm::VmId member : plan.groups[gi].members) {
        const auto loc = cluster.locate(member);
        if (!loc.has_value()) continue;
        if (*loc == holder) return false;
        if (plan.rack_aware && cluster.node(*loc).rack() == holder_rack)
          return false;
      }
    }
  }
  return true;
}

const DvdcState::ParityRecord* DvdcState::parity(GroupId group) const {
  auto it = parity_.find(group);
  return it == parity_.end() ? nullptr : &it->second;
}

DvdcState::ParityRecord* DvdcState::mutable_parity(GroupId group) {
  auto it = parity_.find(group);
  return it == parity_.end() ? nullptr : &it->second;
}

Bytes DvdcState::record_block_bytes(const ParityRecord& record) {
  Bytes total = 0;
  for (const auto& block : record.blocks) total += block.size();
  return total;
}

void DvdcState::set_parity(GroupId group, ParityRecord record) {
  auto it = parity_.find(group);
  if (it != parity_.end()) parity_bytes_ -= record_block_bytes(it->second);
  parity_bytes_ += record_block_bytes(record);
  parity_[group] = std::move(record);
}

void DvdcState::drop_parity(GroupId group) {
  auto it = parity_.find(group);
  if (it == parity_.end()) return;
  parity_bytes_ -= record_block_bytes(it->second);
  parity_.erase(it);
}

const VmInfo& DvdcState::vm_info(vm::VmId id) const {
  auto it = vms_.find(id);
  VDC_REQUIRE(it != vms_.end(), "unknown VM in DVDC state");
  return it->second;
}

void DvdcState::drop_node(cluster::NodeId node) {
  stores_.erase(node);
  for (auto& [gid, record] : parity_) {
    for (std::size_t i = 0; i < record.holders.size(); ++i) {
      if (record.holders[i] == node) {
        parity_bytes_ -= record.blocks[i].size();
        record.blocks[i].clear();
      }
    }
  }
}

Bytes DvdcState::memory_bytes() const {
  Bytes total = parity_bytes_;
  for (const auto& [node, store] : stores_) total += store.total_bytes();
  return total;
}

Bytes DvdcState::patch_bytes() const {
  Bytes total = 0;
  for (const auto& [node, store] : stores_) total += store.patch_bytes();
  return total;
}

// --- coordinator ------------------------------------------------------------

struct DvdcCoordinator::GroupWork {
  GroupId gid = 0;
  std::vector<cluster::NodeId> holders;
  std::vector<parity::Block> new_blocks;  // content, computed at capture
  std::vector<vm::VmId> members;
  bool full_exchange = false;
  Bytes block_size = 0;

  struct Contribution {
    cluster::NodeId src_node = 0;
    Bytes wire = 0;       // bytes over the fabric, per holder stream
    Bytes xor_bytes = 0;  // parity work per holder
  };
  std::vector<Contribution> contribs;  // per member
  std::size_t tasks_done = 0;
  std::size_t tasks_total = 0;  // members x holders
  // Chunk folds still queued per (member, holder) stream, indexed by
  // mi * holders + hi; a stream's task is done when its count hits 0.
  std::vector<std::size_t> serves_left;

  // Fast plane: deltas were folded straight into the committed parity
  // record; `undo` holds the original bytes of every touched range (first
  // touch only), replayed LIFO on abort. new_blocks stays empty.
  bool in_place = false;
  struct UndoEntry {
    std::size_t block = 0;   // holder index into the record's blocks
    std::size_t offset = 0;  // byte offset of the touched range
    parity::Block saved;     // original contents of the range
  };
  std::vector<UndoEntry> undo;
  // Fast plane: dirty pages consumed from each member's log at the cut;
  // an abort puts them back so the next capture stays a superset of the
  // changes since the committed epoch.
  std::vector<std::vector<vm::PageIndex>> captured_dirty;  // per member

  // Streaming ingest (fast incremental plane). Each member with changes
  // keeps its VDD1 frame as a scatter-gather source over the capture's
  // encoded records; per (member, holder) stream a DeltaReader folds the
  // literal runs into the standing parity block as in-order chunk bytes
  // arrive. Out-of-order chunks just park in `delivered` until the
  // contiguous frontier reaches them.
  std::vector<std::shared_ptr<checkpoint::DeltaFrameSource>>
      frames;  // per member; null = no changes
  std::unique_ptr<parity::DeltaFolder> folder;  // in_place only
  struct Ingest {
    std::unique_ptr<checkpoint::DeltaReader> reader;
    std::vector<std::uint8_t> delivered;  // chunk arrival flags
    std::size_t frontier = 0;             // first undelivered chunk index
    Bytes fed_bytes = 0;                  // frame bytes fed so far
    Bytes wire = 0;                       // total frame size
  };
  std::vector<Ingest> ingest;  // mi * holders + hi; in_place only
};

DvdcCoordinator::DvdcCoordinator(simkit::Simulator& sim,
                                 cluster::ClusterManager& cluster,
                                 DvdcState& state, ProtocolConfig config)
    : sim_(sim), cluster_(cluster), state_(state), config_(config) {
  // Validated knob: garbage ("off", "yes") warns and keeps the configured
  // plane instead of silently forcing the O(image) reference path.
  if (const auto ref = env::bool_knob("VDC_REFERENCE_PLANE"))
    config_.reference_data_plane = *ref;
  config_.chunking = net::ChunkPolicy::env_override(config_.chunking);
}

DvdcCoordinator::~DvdcCoordinator() = default;

simkit::Resource& DvdcCoordinator::node_cpu(cluster::NodeId node) {
  auto it = cpus_.find(node);
  if (it == cpus_.end())
    it = cpus_.emplace(node, std::make_unique<simkit::Resource>(sim_, 1))
             .first;
  return *it->second;
}

namespace {
using WallClock = std::chrono::steady_clock;

std::int64_t ns_since(WallClock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             WallClock::now() - t0)
      .count();
}

// The codec-specific fold geometry lives in parity::DeltaFolder (extracted
// so the streaming ingest plane and its tests can fold without the
// coordinator); this maps the protocol's scheme enum onto its factories.
std::unique_ptr<parity::DeltaFolder> make_delta_folder(ParityScheme scheme,
                                                       std::size_t k,
                                                       std::size_t rs_m,
                                                       Bytes block_size) {
  switch (scheme) {
    case ParityScheme::Raid5:
      return std::make_unique<parity::DeltaFolder>(
          parity::DeltaFolder::raid5(block_size));
    case ParityScheme::Rs:
      return std::make_unique<parity::DeltaFolder>(
          parity::DeltaFolder::rs(k, rs_m, block_size));
    case ParityScheme::Rdp:
      return std::make_unique<parity::DeltaFolder>(
          parity::DeltaFolder::rdp(k, block_size));
  }
  throw InvariantError("unknown parity scheme");
}
}  // namespace

// Legacy data plane: flatten every image, memcmp-diff against the previous
// committed payload, store a fresh full copy, fold into a COPY of the
// committed parity (or serial-encode on full exchange). Kept selectable so
// the fast plane can be cross-checked byte for byte.
void DvdcCoordinator::capture_group_reference(
    GroupWork& gw, const RaidGroup& group,
    std::unordered_map<cluster::NodeId, Bytes>& captured_per_node,
    std::int64_t& capture_ns, std::int64_t& fold_ns) {
  auto& metrics = sim_.telemetry().metrics();
  const std::size_t k = group.members.size();
  const bool incremental = !gw.full_exchange;
  const DvdcState::ParityRecord* committed = state_.parity(group.id);

  auto t0 = WallClock::now();
  // Gather payloads (content frozen at the cut) and per-member costs.
  std::vector<std::vector<std::byte>> payloads;
  payloads.reserve(k);
  std::vector<checkpoint::PageDelta> xor_deltas(k);
  Bytes max_payload = 0;

  for (std::size_t mi = 0; mi < k; ++mi) {
    const vm::VmId vmid = group.members[mi];
    const auto loc = cluster_.locate(vmid);
    VDC_REQUIRE(loc.has_value(), "group member is not placed");
    auto& machine = cluster_.node(*loc).hypervisor().get(vmid);
    auto& store = state_.node_store(*loc);
    const Bytes page_size = machine.image().page_size();

    GroupWork::Contribution contrib;
    contrib.src_node = *loc;
    std::vector<std::byte> payload = machine.image().flatten();
    max_payload = std::max<Bytes>(max_payload, payload.size());
    metrics.add("dvdc.pages.copied",
                static_cast<double>(machine.image().page_count()));
    // Copy accounting is accumulated at each copy site as it happens
    // (flatten above, prev materialisation, diff/x buffers, store chop),
    // never hand-summed in one place where it could go stale.
    Bytes copied = payload.size();  // flatten()

    if (incremental) {
      const checkpoint::StoredCheckpoint* prev =
          store.find(vmid, state_.committed_epoch());
      VDC_ASSERT(prev != nullptr);
      const std::vector<std::byte> prev_flat = prev->payload();
      copied += prev_flat.size();
      checkpoint::PageDelta diff =
          checkpoint::diff_images(prev_flat, payload, page_size);
      copied += diff.raw_bytes();  // diff.contents page copies
      const checkpoint::CompressedDelta compressed =
          checkpoint::compress_delta(diff, prev_flat);
      // A member with changes ships a framed "VDD1" delta per holder; an
      // unchanged member ships nothing at all.
      contrib.wire = compressed.page_count() == 0
                         ? 0
                         : checkpoint::delta_frame_size(compressed);
      contrib.xor_bytes = diff.raw_bytes();
      const Bytes trim =
          compressed.page_count() == 0
              ? 0
              : checkpoint::delta_frame_size(compressed.page_count(),
                                             compressed.trim_payload_bytes);
      metrics.add("exchange.delta_bytes",
                  static_cast<double>(contrib.wire * gw.holders.size()),
                  epoch_labels_);
      metrics.add("dvdc.epoch.trim_bytes",
                  static_cast<double>(trim * gw.holders.size()),
                  epoch_labels_);
      metrics.add("dvdc.epoch.raw_dirty_bytes",
                  static_cast<double>(diff.raw_bytes()), epoch_labels_);
      captured_per_node[*loc] += diff.raw_bytes();
      // Holder-side content: new xor old per changed page.
      xor_deltas[mi].page_size = page_size;
      xor_deltas[mi].pages = diff.pages;
      for (std::size_t i = 0; i < diff.pages.size(); ++i) {
        std::vector<std::byte> x = diff.contents[i];
        parity::xor_into(
            x, std::span<const std::byte>(
                   prev_flat.data() + diff.pages[i] * page_size, page_size));
        copied += x.size();
        xor_deltas[mi].contents.push_back(std::move(x));
      }
    } else {
      contrib.wire = config_.compress_full
                         ? checkpoint::rle_encode(payload).size() + 16
                         : payload.size();
      contrib.xor_bytes = payload.size();
      metrics.add("dvdc.epoch.raw_dirty_bytes",
                  static_cast<double>(payload.size()), epoch_labels_);
      captured_per_node[*loc] += payload.size();
    }
    metrics.add("dvdc.epoch.bytes_shipped",
                static_cast<double>(contrib.wire * gw.holders.size()),
                epoch_labels_);
    metrics.add("dvdc.epoch.bytes_xored",
                static_cast<double>(contrib.xor_bytes * gw.holders.size()),
                epoch_labels_);

    checkpoint::Checkpoint cp;
    cp.vm = vmid;
    cp.epoch = epoch_;
    cp.page_size = page_size;
    cp.payload = payload;
    copied += 2 * payload.size();  // cp.payload assign + store chop
    metrics.add("dvdc.copy.bytes", static_cast<double>(copied));
    store.put(std::move(cp));

    state_.register_vm(vmid, VmInfo{machine.name(), page_size,
                                    machine.image().page_count()});
    payloads.push_back(std::move(payload));
    gw.contribs.push_back(contrib);
  }
  capture_ns += ns_since(t0);

  // Parity content, computed exactly.
  t0 = WallClock::now();
  if (incremental) {
    gw.block_size = committed->block_size;
    gw.new_blocks = committed->blocks;  // copy: abort-safe
    Bytes parity_copied = 0;
    for (const auto& b : gw.new_blocks) parity_copied += b.size();
    metrics.add("dvdc.copy.bytes", static_cast<double>(parity_copied));
    const auto folder = make_delta_folder(config_.scheme, k,
                                          config_.rs_parity, gw.block_size);
    Bytes fold_bytes = 0;
    for (std::size_t mi = 0; mi < k; ++mi) {
      const auto& delta = xor_deltas[mi];
      for (std::size_t hi = 0; hi < gw.new_blocks.size(); ++hi) {
        for (std::size_t i = 0; i < delta.pages.size(); ++i) {
          const std::size_t off = delta.pages[i] * delta.page_size;
          fold_bytes += folder->fold(hi, mi, off, delta.contents[i],
                                     gw.new_blocks[hi]);
        }
      }
    }
    metrics.add("parity.kernel.fold_bytes", static_cast<double>(fold_bytes),
                epoch_labels_);
  } else {
    auto codec = make_codec(config_.scheme, k, config_.rs_parity);
    gw.block_size =
        parity::round_up(max_payload, codec->block_granularity());
    std::vector<parity::Block> padded;
    padded.reserve(k);
    std::vector<parity::BlockView> views;
    views.reserve(k);
    for (const auto& p : payloads)
      padded.push_back(parity::padded_copy(p, gw.block_size));
    for (const auto& p : padded) views.emplace_back(p);
    metrics.add("dvdc.copy.bytes",
                static_cast<double>(gw.block_size * k));  // padded_copy
    gw.new_blocks = codec->encode(views);
    VDC_ASSERT(gw.new_blocks.size() == gw.holders.size());
  }
  fold_ns += ns_since(t0);
}

// Fast data plane: the dirty bitmap (with sub-page write extents) bounds
// the candidate bytes, unchanged pages are shared (ref-counted) with the
// previous checkpoint and barely-touched pages become sub-page patches on
// the shared base, per-member deltas are encoded into scatter-gather VDD1
// frame sources, and holders fold the literal runs into the committed
// parity record straight off the wire as chunks arrive (undo-logged). All
// content, metrics, and simulated timing match the reference plane bit
// for bit; only the wall-clock cost changes — O(dirty extent), not
// O(image).
void DvdcCoordinator::capture_group_fast(
    GroupWork& gw, const RaidGroup& group,
    std::unordered_map<cluster::NodeId, Bytes>& captured_per_node,
    std::int64_t& capture_ns, std::int64_t& fold_ns) {
  auto& metrics = sim_.telemetry().metrics();
  const std::size_t k = group.members.size();
  const bool incremental = !gw.full_exchange;

  auto t0 = WallClock::now();
  // Full exchange ships flat image views; the spans stay valid through
  // this capture because the guests are paused at the cut.
  std::vector<std::span<const std::byte>> flats;
  std::vector<Bytes> member_page_size(k, 0);
  Bytes max_payload = 0;
  gw.captured_dirty.resize(k);
  gw.frames.assign(k, nullptr);

  for (std::size_t mi = 0; mi < k; ++mi) {
    const vm::VmId vmid = group.members[mi];
    const auto loc = cluster_.locate(vmid);
    VDC_REQUIRE(loc.has_value(), "group member is not placed");
    auto& machine = cluster_.node(*loc).hypervisor().get(vmid);
    auto& store = state_.node_store(*loc);
    auto& image = machine.image();
    const Bytes page_size = image.page_size();
    const std::size_t page_count = image.page_count();
    member_page_size[mi] = page_size;

    GroupWork::Contribution contrib;
    contrib.src_node = *loc;
    max_payload = std::max<Bytes>(max_payload, image.size_bytes());
    // Copy accounting is accumulated at each copy site as it happens,
    // never hand-summed in one place where it could go stale.
    Bytes copied = 0;

    // Consume the dirty log at the cut. The log is trustworthy iff nobody
    // else cleared it since OUR last clear (generation check); otherwise
    // every page is a candidate. Either way the delta below is exact: a
    // candidate only enters the delta if its bytes actually differ from
    // the committed checkpoint, so the result equals diff_images(). The
    // sub-page write extents must be read before clear_dirty() erases
    // them.
    const auto baseline = dirty_baseline_.find(vmid);
    const bool log_valid = baseline != dirty_baseline_.end() &&
                           baseline->second == image.dirty_generation();
    gw.captured_dirty[mi] = image.dirty_pages();
    std::vector<std::pair<std::size_t, std::size_t>> extents;
    if (incremental && log_valid) {
      extents.reserve(gw.captured_dirty[mi].size());
      for (vm::PageIndex p : gw.captured_dirty[mi])
        extents.push_back(image.dirty_extent(p));
    }
    image.clear_dirty();
    dirty_baseline_[vmid] = image.dirty_generation();

    if (incremental) {
      const checkpoint::StoredCheckpoint* prev =
          store.find(vmid, state_.committed_epoch());
      VDC_ASSERT(prev != nullptr);

      // Start from the previous epoch's chunks and patches (pointer
      // copies) and touch only what changed. A store entry chopped at a
      // foreign granularity (e.g. hand-built in a test) is re-chopped.
      checkpoint::StoredCheckpoint next;
      next.vm = vmid;
      next.epoch = epoch_;
      next.page_size = page_size;
      if (prev->page_size == page_size && prev->pages.size() == page_count) {
        next.pages = prev->pages;
        next.patches = prev->patches;
      } else {
        const std::vector<std::byte> prev_flat = prev->payload();
        VDC_REQUIRE(prev_flat.size() == image.size_bytes(),
                    "previous checkpoint size mismatch");
        next.pages = checkpoint::StoredCheckpoint::chop(prev_flat, page_size);
        copied += 2 * prev_flat.size();  // materialise + re-chop
      }

      if (arena_.size() < page_size) arena_.assign(page_size, std::byte{0});
      auto frame = std::make_shared<checkpoint::DeltaFrameSource>(
          vmid, epoch_, state_.committed_epoch(), page_size);
      std::size_t changed_pages = 0;

      const auto consider = [&](vm::PageIndex p, std::size_t lo,
                                std::size_t hi) {
        if (hi <= lo) return;  // empty write extent: bytes can't differ
        const auto cur = image.page(p);
        // Outside [lo, hi) the page cannot differ from the committed
        // copy, so the compare and the x assembly stay extent-bounded.
        bool changed = false;
        next.for_each_range(
            p, lo, hi - lo,
            [&](std::size_t off, std::span<const std::byte> s) {
              if (!changed &&
                  std::memcmp(cur.data() + off, s.data(), s.size()) != 0)
                changed = true;
            });
        if (!changed) return;
        ++changed_pages;

        // x = cur ^ prev in the zeroed arena: copy the current extent in,
        // XOR the stored spans on top. The arena is zero outside the
        // extent by construction, so encoding the full arena page equals
        // encoding a whole-page diff byte for byte.
        std::memcpy(arena_.data() + lo, cur.data() + lo, hi - lo);
        copied += hi - lo;
        next.for_each_range(
            p, lo, hi - lo,
            [&](std::size_t off, std::span<const std::byte> s) {
              parity::xor_into(
                  std::span<std::byte>(arena_.data() + off, s.size()), s);
            });
        checkpoint::EncodedRecord rec = checkpoint::encode_record(
            std::span<const std::byte>(arena_.data(), page_size));
        frame->add_record(p, std::move(rec.bytes), rec.raw, rec.trim_len);
        std::memset(arena_.data() + lo, 0, hi - lo);

        // Store update: widen any existing patch to one contiguous span
        // so patch depth stays one; a span covering the whole page (or an
        // untrusted log) materialises a fresh page chunk instead.
        std::size_t plo = lo, phi = hi;
        const auto pit = next.patches.find(static_cast<std::uint32_t>(p));
        if (pit != next.patches.end()) {
          plo = std::min<std::size_t>(plo, pit->second.offset);
          phi = std::max<std::size_t>(
              phi, pit->second.offset + pit->second.bytes->size());
        }
        if (phi - plo == page_size) {
          next.pages[p] = std::make_shared<const std::vector<std::byte>>(
              cur.begin(), cur.end());
          if (pit != next.patches.end()) next.patches.erase(pit);
          copied += page_size;
        } else {
          next.patches[static_cast<std::uint32_t>(p)] = checkpoint::PagePatch{
              static_cast<std::uint32_t>(plo),
              std::make_shared<const std::vector<std::byte>>(
                  cur.begin() + static_cast<std::ptrdiff_t>(plo),
                  cur.begin() + static_cast<std::ptrdiff_t>(phi))};
          copied += phi - plo;
        }
      };
      if (log_valid) {
        for (std::size_t i = 0; i < gw.captured_dirty[mi].size(); ++i)
          consider(gw.captured_dirty[mi][i], extents[i].first,
                   extents[i].second);
      } else {
        for (vm::PageIndex p = 0; p < page_count; ++p)
          consider(p, 0, page_size);
      }
      // A member with changes keeps its sealed VDD1 frame as a
      // scatter-gather source (the send side of the streaming dataplane);
      // an unchanged member ships nothing at all.
      if (frame->page_count() > 0) {
        frame->seal();
        gw.frames[mi] = std::move(frame);
      }
      const Bytes raw_dirty = changed_pages * page_size;
      contrib.wire = gw.frames[mi] ? gw.frames[mi]->size() : 0;
      contrib.xor_bytes = raw_dirty;
      const Bytes trim = gw.frames[mi] ? gw.frames[mi]->trim_frame_size() : 0;
      metrics.add("exchange.delta_bytes",
                  static_cast<double>(contrib.wire * gw.holders.size()),
                  epoch_labels_);
      metrics.add("dvdc.epoch.trim_bytes",
                  static_cast<double>(trim * gw.holders.size()),
                  epoch_labels_);
      metrics.add("dvdc.epoch.raw_dirty_bytes",
                  static_cast<double>(raw_dirty), epoch_labels_);
      captured_per_node[*loc] += raw_dirty;
      metrics.add("dvdc.pages.shared",
                  static_cast<double>(page_count - changed_pages));
      metrics.add("dvdc.pages.copied", static_cast<double>(changed_pages));
      store.put(std::move(next));
    } else {
      const auto flat = image.bytes();
      contrib.wire = config_.compress_full
                         ? checkpoint::rle_encoded_size(flat) + 16
                         : flat.size();
      contrib.xor_bytes = flat.size();
      metrics.add("dvdc.epoch.raw_dirty_bytes",
                  static_cast<double>(flat.size()), epoch_labels_);
      captured_per_node[*loc] += flat.size();
      metrics.add("dvdc.pages.copied", static_cast<double>(page_count));

      checkpoint::StoredCheckpoint next;
      next.vm = vmid;
      next.epoch = epoch_;
      next.page_size = page_size;
      next.pages = checkpoint::StoredCheckpoint::chop(flat, page_size);
      copied += flat.size();  // the store's chunks are the only full copy
      store.put(std::move(next));
      flats.push_back(flat);
    }
    metrics.add("dvdc.copy.bytes", static_cast<double>(copied));
    metrics.add("dvdc.epoch.bytes_shipped",
                static_cast<double>(contrib.wire * gw.holders.size()),
                epoch_labels_);
    metrics.add("dvdc.epoch.bytes_xored",
                static_cast<double>(contrib.xor_bytes * gw.holders.size()),
                epoch_labels_);

    state_.register_vm(vmid,
                       VmInfo{machine.name(), page_size, page_count});
    gw.contribs.push_back(contrib);
  }
  capture_ns += ns_since(t0);

  // Parity: the incremental path folds from the wire (readers built here,
  // driven by chunk arrivals); full exchange group-encodes from the image
  // spans directly.
  t0 = WallClock::now();
  if (incremental) {
    DvdcState::ParityRecord* rec = state_.mutable_parity(group.id);
    VDC_ASSERT(rec != nullptr);
    gw.in_place = true;
    gw.block_size = rec->block_size;
    gw.folder = make_delta_folder(config_.scheme, k, config_.rs_parity,
                                  gw.block_size);
    const std::size_t m = rec->blocks.size();

    // Undo log: save the original bytes of every range the wire folds can
    // touch — the literal runs of each record, mapped through the fold
    // geometry. Built fully at capture so a mid-stream abort can replay
    // it even though the folds happen later, at chunk arrival (replaying
    // a range that never got folded harmlessly rewrites identical bytes).
    // First save per exact range is enough: LIFO replay restores
    // originals even across overlapping ranges, e.g. members with
    // different page sizes or RDP row slices meeting on a shared
    // diagonal.
    Bytes undo_bytes = 0;
    std::set<std::tuple<std::size_t, std::size_t, std::size_t>> saved;
    for (std::size_t mi = 0; mi < k; ++mi) {
      if (!gw.frames[mi]) continue;
      const Bytes psz = member_page_size[mi];
      for (std::size_t hi = 0; hi < m; ++hi) {
        gw.frames[mi]->for_each_record(
            [&](vm::PageIndex page, std::span<const std::byte> enc,
                bool raw) {
              checkpoint::for_each_literal_run(
                  enc, raw, psz, [&](std::size_t off, std::size_t len) {
                    gw.folder->for_each_range(
                        hi, mi, page * psz + off, len,
                        [&](std::size_t dst, std::size_t, std::size_t l,
                            std::uint8_t) {
                          VDC_ASSERT(dst + l <= rec->blocks[hi].size());
                          if (!saved.insert({hi, dst, l}).second) return;
                          undo_bytes += l;
                          gw.undo.push_back(GroupWork::UndoEntry{
                              hi, dst,
                              parity::Block(
                                  rec->blocks[hi].begin() +
                                      static_cast<std::ptrdiff_t>(dst),
                                  rec->blocks[hi].begin() +
                                      static_cast<std::ptrdiff_t>(dst +
                                                                  l))});
                        });
                  });
            });
      }
    }
    metrics.add("dvdc.copy.bytes", static_cast<double>(undo_bytes));

    // Fold-from-wire ingest: one incremental DeltaReader per
    // (member, holder) stream, folding literal runs straight into the
    // standing parity block as in-order chunk bytes arrive
    // (on_chunk_arrival drives it through ingest_chunk).
    gw.ingest.resize(k * m);
    for (std::size_t mi = 0; mi < k; ++mi) {
      if (!gw.frames[mi]) continue;
      const Bytes psz = member_page_size[mi];
      for (std::size_t hi = 0; hi < m; ++hi) {
        auto& ing = gw.ingest[mi * m + hi];
        ing.wire = gw.contribs[mi].wire;
        ing.delivered.assign(
            std::max<std::size_t>(config_.chunking.chunk_count(ing.wire), 1),
            0);
        GroupWork* gwp = &gw;  // stable: owned by work_ via unique_ptr
        ing.reader = std::make_unique<checkpoint::DeltaReader>(
            [this, gwp, mi, hi, psz](vm::PageIndex page, std::size_t off,
                                     std::span<const std::byte> data) {
              DvdcState::ParityRecord* r = state_.mutable_parity(gwp->gid);
              VDC_ASSERT(r != nullptr);
              ingest_fold_bytes_ += gwp->folder->fold(
                  hi, mi, page * psz + off, data, r->blocks[hi]);
            });
      }
    }
  } else {
    auto codec = make_codec(config_.scheme, k, config_.rs_parity);
    gw.block_size =
        parity::round_up(max_payload, codec->block_granularity());
    std::vector<parity::Block> padded;
    padded.reserve(k);
    std::vector<parity::BlockView> views;
    views.reserve(k);
    for (const auto f : flats)
      padded.push_back(parity::padded_copy(f, gw.block_size));
    for (const auto& p : padded) views.emplace_back(p);
    metrics.add("dvdc.copy.bytes",
                static_cast<double>(gw.block_size * k));  // padded_copy
    gw.new_blocks =
        codec->encode_parallel(views, parity::default_parity_threads());
    VDC_ASSERT(gw.new_blocks.size() == gw.holders.size());
  }
  fold_ns += ns_since(t0);
}

void DvdcCoordinator::run_epoch(const PlacedPlan& plan,
                                checkpoint::Epoch epoch, DoneCallback done) {
  VDC_REQUIRE(!in_flight_, "an epoch is already in flight");
  VDC_REQUIRE(epoch > state_.committed_epoch(),
              "epoch must advance past the committed one");
  VDC_REQUIRE(plan.holders.size() == plan.plan.groups.size(),
              "plan is missing parity holders");
  in_flight_ = true;
  const std::uint64_t gen = ++generation_;
  plan_ = &plan;
  epoch_ = epoch;
  epoch_start_ = sim_.now();
  done_ = std::move(done);
  stats_ = EpochStats{};
  stats_.epoch = epoch;
  stats_.groups = plan.plan.groups.size();
  work_.clear();
  groups_pending_ = plan.plan.groups.size();
  ingest_fold_ns_ = 0;
  ingest_fold_bytes_ = 0;

  auto& tel = sim_.telemetry();
  auto& metrics = tel.metrics();
  epoch_labels_ = telemetry::Labels{{"epoch", std::to_string(epoch)},
                                    {"gen", std::to_string(gen)}};
  epoch_span_ = tel.begin_span("epoch", epoch_labels_);
  metrics.set("dvdc.epoch.groups",
              static_cast<double>(plan.plan.groups.size()), epoch_labels_);
  metrics.set("parity.kernel.tier",
              static_cast<double>(static_cast<int>(parity::active_kernel().tier)));

  // 1. Quiesce: a consistent cluster-wide cut.
  for (cluster::NodeId nid : cluster_.alive_nodes())
    cluster_.node(nid).hypervisor().pause_all();

  // 2. Capture + diff every member at the cut, build per-group work.
  // Two data planes compute identical content: the fast plane reads the
  // dirty bitmap, shares unchanged pages with the previous checkpoint and
  // folds deltas into the committed parity in place (undo-logged); the
  // reference plane is the legacy flatten+diff+copy pipeline.
  std::unordered_map<cluster::NodeId, Bytes> captured_per_node;
  std::int64_t capture_ns = 0, fold_ns = 0;
  for (std::size_t gi = 0; gi < plan.plan.groups.size(); ++gi) {
    const RaidGroup& group = plan.plan.groups[gi];
    auto gw = std::make_unique<GroupWork>();
    gw->gid = group.id;
    gw->holders = plan.holders[gi];
    gw->members = group.members;

    const DvdcState::ParityRecord* committed = state_.parity(group.id);
    // Every scheme folds per-page deltas into the standing parity blocks:
    // linear codes (XOR parity, Reed-Solomon) at the page's own offset,
    // RDP through its row/diagonal update geometry (DeltaFolder).
    bool incremental =
        config_.incremental && committed != nullptr &&
        committed->scheme == config_.scheme &&
        committed->members == group.members &&
        committed->epoch == state_.committed_epoch() &&
        committed->holders == gw->holders;
    if (incremental) {
      for (const auto& block : committed->blocks)
        if (block.empty()) incremental = false;  // a holder died
    }
    if (incremental) {
      for (vm::VmId vmid : group.members) {
        const auto loc = cluster_.locate(vmid);
        if (!loc.has_value() ||
            state_.node_store(*loc).find(vmid, state_.committed_epoch()) ==
                nullptr) {
          incremental = false;
          break;
        }
      }
    }
    gw->full_exchange = !incremental;
    if (gw->full_exchange)
      metrics.add("dvdc.epoch.full_exchange_groups", 1.0, epoch_labels_);

    if (config_.reference_data_plane)
      capture_group_reference(*gw, group, captured_per_node, capture_ns,
                              fold_ns);
    else
      capture_group_fast(*gw, group, captured_per_node, capture_ns,
                         fold_ns);

    gw->tasks_total = group.members.size() * gw->holders.size();
    gw->serves_left.assign(gw->tasks_total, 1);
    work_.push_back(std::move(gw));
  }
  metrics.add("dvdc.wall.capture_ns", static_cast<double>(capture_ns));
  metrics.add("dvdc.wall.fold_ns", static_cast<double>(fold_ns));
  for (const auto& gw : work_)
    if (gw->in_place) {
      state_.set_fold_in_flight(true);
      break;
    }
  // Streaming dataplane working set: the capture arena plus the bounded
  // carry of every live fold-from-wire reader. This is the whole per-epoch
  // buffer footprint of the zero-copy path — O(page + streams), not
  // O(frame).
  std::size_t readers = 0;
  for (const auto& gw : work_)
    for (const auto& ing : gw->ingest)
      if (ing.reader) ++readers;
  metrics.set(
      "stream.arena.bytes",
      static_cast<double>(arena_.size() +
                          checkpoint::DeltaReader::kMaxCarry * readers));

  // 3. Local capture stall, then resume (COW) and start the exchange.
  SimTime stall = config_.base_overhead;
  if (!config_.copy_on_write) {
    Bytes worst = 0;
    for (const auto& [node, bytes] : captured_per_node)
      worst = std::max(worst, bytes);
    stall += static_cast<double>(worst) / config_.snapshot_rate;
  }
  overhead_ = stall;
  arrivals_pending_ = 0;
  for (const auto& gw : work_) arrivals_pending_ += gw->tasks_total;

  sim_.after(stall, [this, gen] {
    if (gen != generation_ || !in_flight_) return;
    if (config_.copy_on_write) {
      for (cluster::NodeId nid : cluster_.alive_nodes())
        cluster_.node(nid).hypervisor().resume_all();
    }
    // The quiesce/capture/resume boundaries are known exactly here: the
    // quiesce cut costs base_overhead, local capture runs to the end of
    // the stall (zero-length under copy-on-write), and resume is the
    // instant the guests come back (a marker; without COW the guests
    // actually stay paused until commit).
    auto& tel = sim_.telemetry();
    const SimTime cut_end = epoch_start_ + config_.base_overhead;
    tel.record_span("epoch.quiesce", epoch_start_, cut_end, epoch_labels_,
                    epoch_span_);
    tel.record_span("epoch.capture", cut_end, sim_.now(), epoch_labels_,
                    epoch_span_);
    tel.record_span("epoch.resume", sim_.now(), sim_.now(), epoch_labels_,
                    epoch_span_);
    exchange_start_ = sim_.now();
    // Launch every member's stream toward each of its group's holders,
    // sliced per the chunk policy so holders fold arriving chunks into
    // parity while later chunks are still on the wire.
    for (std::size_t gi = 0; gi < work_.size(); ++gi) {
      GroupWork& gw = *work_[gi];
      for (std::size_t mi = 0; mi < gw.contribs.size(); ++mi) {
        for (std::size_t hi = 0; hi < gw.holders.size(); ++hi) {
          const auto& contrib = gw.contribs[mi];
          if (contrib.wire == 0) {
            sim_.after(0.0, [this, gen, gi, mi, hi] {
              on_member_arrival(gen, gi, mi, hi);
            });
            continue;
          }
          const net::HostId src = cluster_.node(contrib.src_node).host();
          const net::HostId dst = cluster_.node(gw.holders[hi]).host();
          if (src == dst) {
            // Member and holder co-located (transiently possible after a
            // recovery re-placement): the contribution is a local memory
            // copy, no fabric traffic — the whole frame lands as one
            // chunk, so its ingest reader expects a single delivery.
            if (gw.in_place && !gw.ingest.empty()) {
              auto& ing = gw.ingest[mi * gw.holders.size() + hi];
              if (ing.reader) ing.delivered.assign(1, 0);
            }
            sim_.after(0.0, [this, gen, gi, mi, hi] {
              on_member_arrival(gen, gi, mi, hi);
            });
            continue;
          }
          const Bytes wire = contrib.wire;
          gw.serves_left[mi * gw.holders.size() + hi] =
              config_.chunking.chunk_count(wire);
          streams_.push_back(net::ChunkedStream::start(
              cluster_.fabric(), src, dst, wire, config_.chunking,
              [this, gen, gi, mi, hi,
               wire](const net::ChunkedStream::Chunk& c) {
                on_chunk_arrival(gen, gi, mi, hi, c.index,
                                 static_cast<double>(c.bytes) /
                                     static_cast<double>(wire),
                                 c.last);
              }));
          streams_.back()->set_stream_tag(gw.full_exchange
                                              ? net::kFullStreamTag
                                              : net::kDeltaStreamTag);
          // A stream that exhausts its retransmission budget/deadline on a
          // lossy fabric kills the whole epoch (see on_stream_failed).
          streams_.back()->set_on_fail([this, gen](const std::string& why) {
            on_stream_failed(gen, why);
          });
        }
      }
    }
  });
}

void DvdcCoordinator::on_member_arrival(std::uint64_t gen,
                                        std::size_t group_idx,
                                        std::size_t member_idx,
                                        std::size_t holder_idx) {
  // Whole contribution in one piece (zero-wire or co-located): a single
  // chunk carrying the full fold.
  on_chunk_arrival(gen, group_idx, member_idx, holder_idx, 0, 1.0, true);
}

void DvdcCoordinator::ingest_chunk(GroupWork& gw, std::size_t member_idx,
                                   std::size_t holder_idx,
                                   std::size_t chunk_index) {
  auto& ing = gw.ingest[member_idx * gw.holders.size() + holder_idx];
  if (!ing.reader) return;  // member shipped nothing
  VDC_ASSERT(chunk_index < ing.delivered.size());
  if (ing.delivered[chunk_index]) return;  // duplicate delivery
  ing.delivered[chunk_index] = 1;
  // Advance the contiguous frontier and fold the newly in-order bytes:
  // the sender's frame source yields exactly [fed, frontier) as views over
  // its encoded records, and the reader decodes and folds them without
  // ever materializing the frame.
  Bytes frontier_bytes = ing.fed_bytes;
  while (ing.frontier < ing.delivered.size() &&
         ing.delivered[ing.frontier]) {
    frontier_bytes +=
        ing.delivered.size() == 1
            ? ing.wire
            : config_.chunking.chunk_size(ing.wire, ing.frontier);
    ++ing.frontier;
  }
  if (frontier_bytes <= ing.fed_bytes) return;  // out-of-order: park it
  const auto t0 = WallClock::now();
  gw.frames[member_idx]->for_each_range(
      ing.fed_bytes, frontier_bytes,
      [&](std::span<const std::byte> s) { ing.reader->feed(s); });
  ingest_fold_ns_ += ns_since(t0);
  ing.fed_bytes = frontier_bytes;
  if (ing.fed_bytes == ing.wire) VDC_ASSERT(ing.reader->complete());
}

void DvdcCoordinator::on_chunk_arrival(std::uint64_t gen,
                                       std::size_t group_idx,
                                       std::size_t member_idx,
                                       std::size_t holder_idx,
                                       std::size_t chunk_index,
                                       double wire_fraction, bool last) {
  if (gen != generation_ || !in_flight_) return;
  GroupWork& gw = *work_[group_idx];
  const auto& contrib = gw.contribs[member_idx];

  if (cluster_.is_fenced(contrib.src_node)) {
    // Defense in depth: a fenced node (declared dead, possibly a zombie
    // behind a partition) must not contribute to the stripe. Its write is
    // rejected and the epoch aborts rather than committing tainted parity.
    sim_.telemetry().metrics().add("recovery.fenced", 1.0);
    on_stream_failed(gen, "write from fenced node rejected");
    return;
  }

  // Fold-from-wire: feed the chunk to this stream's ingest reader (after
  // the fence check — a fenced node's bytes must never touch parity).
  if (gw.in_place && !gw.ingest.empty())
    ingest_chunk(gw, member_idx, holder_idx, chunk_index);

  if (last) {
    VDC_ASSERT(arrivals_pending_ > 0);
    if (--arrivals_pending_ == 0) {
      // Last stream has landed: the exchange phase ends and the parity
      // tail (holder-side folds still queued on node CPUs) begins.
      sim_.telemetry().record_span("epoch.exchange", exchange_start_,
                                   sim_.now(), epoch_labels_, epoch_span_);
      parity_start_ = sim_.now();
    }
  }

  const cluster::NodeId holder = gw.holders[holder_idx];
  const double xor_time =
      static_cast<double>(contrib.xor_bytes) * wire_fraction /
      cluster_.node(holder).spec().xor_rate;
  const std::size_t slot = member_idx * gw.holders.size() + holder_idx;
  node_cpu(holder).serve(xor_time, [this, gen, group_idx, slot] {
    if (gen != generation_ || !in_flight_) return;
    GroupWork& g = *work_[group_idx];
    VDC_ASSERT(g.serves_left[slot] > 0);
    if (--g.serves_left[slot] > 0) return;
    if (++g.tasks_done == g.tasks_total)
      on_group_parity_done(gen, group_idx);
  });
}

void DvdcCoordinator::on_group_parity_done(std::uint64_t gen,
                                           std::size_t group_idx) {
  if (gen != generation_ || !in_flight_) return;
  VDC_ASSERT(groups_pending_ > 0);
  {
    // Per-group child span: this group's stream + fold work, from the
    // start of the exchange to its parity completion.
    telemetry::Labels labels = epoch_labels_;
    labels.push_back({"group", std::to_string(work_[group_idx]->gid)});
    sim_.telemetry().record_span("epoch.group", exchange_start_, sim_.now(),
                                 std::move(labels), epoch_span_);
  }
  if (--groups_pending_ == 0) {
    sim_.telemetry().record_span("epoch.parity", parity_start_, sim_.now(),
                                 epoch_labels_, epoch_span_);
    commit_start_ = sim_.now();
    if (config_.commit_gate) {
      // Two-phase commit: the parity stripe is complete (phase 1); ask
      // the gate to quorum-log the commit record (phase 2). `earliest`
      // keeps a fast quorum from beating the broadcast latency, so a
      // fault-free gated run commits at the exact instant the ungated
      // path would.
      config_.commit_gate(
          epoch_, sim_.now() + config_.commit_latency,
          [this, gen](bool commit) {
            if (gen != generation_ || !in_flight_) return;
            if (!commit) {
              on_stream_failed(gen, "quorum rejected epoch commit");
              return;
            }
            try_commit(gen);
          });
    } else {
      sim_.after(config_.commit_latency, [this, gen] { try_commit(gen); });
    }
  }
}

void DvdcCoordinator::on_stream_failed(std::uint64_t gen,
                                       const std::string& reason) {
  if (gen != generation_ || !in_flight_) return;
  VDC_INFO("dvdc", "epoch ", epoch_, " aborted: ", reason);
  sim_.telemetry().metrics().add("dvdc.epochs_failed", 1.0);

  EpochStats stats = stats_;
  stats.committed = false;
  stats.overhead = overhead_;
  stats.latency = sim_.now() - epoch_start_;
  auto done = std::move(done_);
  done_ = nullptr;
  abort();  // undo folds, drop captures, re-mark dirty pages
  if (done) done(stats);
}

void DvdcCoordinator::try_commit(std::uint64_t gen) {
  if (gen != generation_ || !in_flight_) return;

  // Commit: publish parity, advance the epoch, GC old checkpoints.
  for (auto& gw : work_) {
    if (gw->in_place) {
      // Deltas were folded into the committed record in place; the fold
      // preconditions pinned scheme/members/holders/block_size, so the
      // commit is just the epoch stamp (and retiring the undo log).
      DvdcState::ParityRecord* rec = state_.mutable_parity(gw->gid);
      VDC_ASSERT(rec != nullptr);
      rec->epoch = epoch_;
      gw->undo.clear();
      continue;
    }
    DvdcState::ParityRecord record;
    record.epoch = epoch_;
    record.scheme = config_.scheme;
    record.members = gw->members;
    record.holders = gw->holders;
    record.blocks = std::move(gw->new_blocks);
    record.block_size = gw->block_size;
    state_.set_parity(gw->gid, std::move(record));
  }
  state_.set_fold_in_flight(false);
  state_.set_committed_epoch(epoch_);
  for (cluster::NodeId nid : cluster_.alive_nodes())
    state_.node_store(nid).gc_before(epoch_);

  if (!config_.copy_on_write) {
    for (cluster::NodeId nid : cluster_.alive_nodes())
      cluster_.node(nid).hypervisor().resume_all();
    overhead_ = sim_.now() - epoch_start_;
  }

  stats_.overhead = overhead_;
  stats_.latency = sim_.now() - epoch_start_;

  // The registry is the source of truth for the epoch's byte accounting;
  // EpochStats stays as a façade derived from it.
  auto& tel = sim_.telemetry();
  auto& metrics = tel.metrics();
  stats_.bytes_shipped = static_cast<Bytes>(
      metrics.value("dvdc.epoch.bytes_shipped", epoch_labels_));
  stats_.delta_bytes = static_cast<Bytes>(
      metrics.value("exchange.delta_bytes", epoch_labels_));
  stats_.trim_bytes = static_cast<Bytes>(
      metrics.value("dvdc.epoch.trim_bytes", epoch_labels_));
  stats_.bytes_xored = static_cast<Bytes>(
      metrics.value("dvdc.epoch.bytes_xored", epoch_labels_));
  stats_.raw_dirty_bytes = static_cast<Bytes>(
      metrics.value("dvdc.epoch.raw_dirty_bytes", epoch_labels_));
  stats_.full_exchange =
      metrics.value("dvdc.epoch.full_exchange_groups", epoch_labels_) > 0;
  // Fold-from-wire accounting, accumulated at chunk arrival over the whole
  // exchange and reported once per epoch here (the reference plane and
  // full-exchange folds report theirs at capture, as before).
  if (ingest_fold_bytes_ > 0)
    metrics.add("parity.kernel.fold_bytes",
                static_cast<double>(ingest_fold_bytes_), epoch_labels_);
  metrics.add("dvdc.wall.fold_ns", static_cast<double>(ingest_fold_ns_));
  ingest_fold_bytes_ = 0;
  ingest_fold_ns_ = 0;
  if (stats_.delta_bytes > 0)
    metrics.set("wire.compress.ratio",
                static_cast<double>(stats_.trim_bytes) /
                    static_cast<double>(stats_.delta_bytes));
  metrics.add("dvdc.epochs_committed", 1.0);
  metrics.observe("dvdc.overhead_s", stats_.overhead);
  metrics.observe("dvdc.latency_s", stats_.latency);
  metrics.set("dvdc.state_bytes",
              static_cast<double>(state_.memory_bytes()));
  tel.record_span("epoch.commit", commit_start_, sim_.now(), epoch_labels_,
                  epoch_span_);
  tel.end_span(epoch_span_);
  epoch_span_ = telemetry::kNoSpan;

  in_flight_ = false;
  work_.clear();
  streams_.clear();  // all complete by commit
  plan_ = nullptr;
  VDC_DEBUG("dvdc", "epoch ", epoch_, " committed, latency ",
            stats_.latency, "s");
  if (done_) {
    auto done = std::move(done_);
    done(stats_);
  }
}

void DvdcCoordinator::abort() {
  if (!in_flight_) return;
  ++generation_;
  in_flight_ = false;

  // Tear down in-flight exchange streams: the aborted epoch's traffic
  // must not keep occupying the fabric (or fire stale chunk callbacks).
  for (auto& stream : streams_) stream->cancel();
  streams_.clear();

  // Roll back in-place parity folds: replay the undo log LIFO so every
  // touched range returns to its committed bytes. Ranges on a holder that
  // was already dropped (cleared block) are skipped.
  for (auto& gw : work_) {
    if (!gw->in_place) continue;
    DvdcState::ParityRecord* rec = state_.mutable_parity(gw->gid);
    if (rec == nullptr) continue;
    for (auto it = gw->undo.rbegin(); it != gw->undo.rend(); ++it) {
      if (it->block >= rec->blocks.size()) continue;
      auto& block = rec->blocks[it->block];
      if (it->offset + it->saved.size() > block.size()) continue;
      std::memcpy(block.data() + it->offset, it->saved.data(),
                  it->saved.size());
    }
  }

  // Discard the aborted epoch's captures on every surviving node.
  if (plan_ != nullptr) {
    for (const auto& group : plan_->plan.groups) {
      for (vm::VmId vmid : group.members) {
        const auto loc = cluster_.locate(vmid);
        if (loc.has_value()) state_.node_store(*loc).erase(vmid, epoch_);
      }
    }
  }

  // Return the dirty bits the capture consumed (fast plane): the next
  // epoch's dirty set must still cover every page changed since the
  // committed cut. Marking extra pages is always safe.
  for (auto& gw : work_) {
    for (std::size_t mi = 0; mi < gw->captured_dirty.size(); ++mi) {
      const vm::VmId vmid = gw->members[mi];
      const auto loc = cluster_.locate(vmid);
      if (!loc.has_value() || !cluster_.node(*loc).alive()) continue;
      auto& image = cluster_.node(*loc).hypervisor().get(vmid).image();
      for (vm::PageIndex p : gw->captured_dirty[mi]) image.mark_dirty(p);
    }
  }

  state_.set_fold_in_flight(false);
  ingest_fold_ns_ = 0;
  ingest_fold_bytes_ = 0;
  work_.clear();
  plan_ = nullptr;
  sim_.telemetry().metrics().add("dvdc.epochs_aborted", 1.0);
  sim_.telemetry().end_span(epoch_span_);
  epoch_span_ = telemetry::kNoSpan;
  VDC_DEBUG("dvdc", "epoch ", epoch_, " aborted");
}

}  // namespace vdc::core
