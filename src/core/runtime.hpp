#pragma once
// End-to-end job execution under failures.
//
// The runtime drives a long-running SPMD job on a virtualized cluster:
// guests compute, a checkpoint is captured every `interval` of useful work,
// Poisson failures strike nodes, and the configured backend (DVDC, the
// disk-full NAS baseline, or none) decides what a checkpoint costs and how
// recovery happens. The same loop therefore serves as (a) the system
// itself, (b) the discrete-event corroboration of the Section V model, and
// (c) the harness behind the comparison benches.
//
// Work accounting: the job needs `total_work` seconds of fault-free
// compute. Work accrues while guests run, stops during capture stalls and
// recovery, and rolls back to the last committed checkpoint on failure.

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_set>

#include "cluster/heartbeat.hpp"
#include "cluster/manager.hpp"
#include "controlplane/raft.hpp"
#include "core/adaptive.hpp"
#include "core/protocol.hpp"
#include "core/recovery.hpp"
#include "failure/injector.hpp"
#include "workload/traffic.hpp"

namespace vdc::core {

/// What a checkpoint/recovery scheme must provide to the job loop.
class CheckpointBackend {
 public:
  using EpochDone = std::function<void(const EpochStats&)>;
  using RecoveryDone = std::function<void(const RecoveryStats&)>;
  /// Two-phase epoch commit hook (see ProtocolConfig::commit_gate): when
  /// installed, the backend must route each epoch's commit point through
  /// `gate(epoch, earliest, proceed)` and finish the epoch only when
  /// proceed(true) fires — proceed(false) means the quorum rejected the
  /// commit and the epoch must abort uncommitted.
  using CommitGate =
      std::function<void(checkpoint::Epoch, SimTime earliest,
                         std::function<void(bool commit)> proceed)>;

  virtual ~CheckpointBackend() = default;

  /// Called with all guests paused at a consistent cut. Must eventually
  /// invoke `done`; guests may be resumed earlier by the backend (COW).
  virtual void checkpoint(checkpoint::Epoch epoch, EpochDone done) = 0;

  /// If >= 0, guests resume this long after the cut even though the
  /// checkpoint commits later (overlapped capture). If < 0, guests resume
  /// only at commit.
  virtual SimTime early_resume_delay() const = 0;

  /// Abort an in-flight checkpoint (failure interrupted it).
  virtual void abort_checkpoint() = 0;

  /// A node just died: drop whatever backend state lived on it
  /// (checkpoint shards, parity blocks, staged flushes). Called
  /// immediately at kill time — possibly several times per recovery
  /// episode when failures cascade — and strictly before the episode's
  /// next handle_failure().
  virtual void on_node_failure(cluster::NodeId /*victim*/) {}

  /// Recover the `lost` VMs (the union of every VM still missing across
  /// the episode's victims; may be empty if an earlier, aborted attempt
  /// already re-placed them all) and roll the cluster back to the last
  /// committed cut. success == false means unrecoverable data loss.
  virtual void handle_failure(const std::vector<vm::VmId>& lost,
                              RecoveryDone done) = 0;

  /// Abort the in-flight recovery because a cascading failure invalidated
  /// it: its RecoveryDone callback must never fire. Returns true if a
  /// recovery was actually aborted. Backends whose recovery is
  /// instantaneous may keep the default.
  virtual bool abort_recovery() { return false; }

  /// Epochs committed so far.
  virtual checkpoint::Epoch committed_epoch() const = 0;

  /// The job restarted from scratch (data loss): drop stale redundancy
  /// state so the next checkpoint starts a fresh stripe generation.
  virtual void on_job_restart() {}

  /// Install the two-phase commit gate (default: backend has no gated
  /// commit point; the runtime only installs one on backends that do).
  virtual void set_commit_gate(CommitGate gate) { (void)gate; }

  virtual std::string name() const = 0;
};

/// A job-level event, published to JobConfig::observer as it happens.
/// The committed-work watermark is monotone across events except through
/// Rollback (a multilevel backend restored an older durable level) and
/// Restart (data loss; the job starts over) — the invariant the fuzz
/// suite asserts: committed work is never *silently* lost.
struct JobEvent {
  enum class Kind {
    EpochCommit,       // a checkpoint committed; watermark advanced
    Failure,           // a node died while the cluster was healthy
    Cascade,           // a node died during an in-flight recovery episode
    RecoverySettled,   // the episode ended (success per `success`)
    Rollback,          // settled via an older durable level; watermark cut
    Restart,           // unrecoverable; watermark reset to zero
  };
  Kind kind = Kind::EpochCommit;
  SimTime time = 0.0;
  SimTime committed_work = 0.0;  // watermark after the event
  cluster::NodeId node = 0;      // victim (Failure / Cascade only)
  bool success = false;          // RecoverySettled only
};

struct JobConfig {
  SimTime total_work = hours(2);
  /// Useful work between checkpoint captures; <= 0 disables checkpointing.
  /// Ignored when `interval_policy` is set.
  SimTime interval = minutes(10);
  /// Optional dynamic interval policy (e.g. AdaptiveIntervalPolicy);
  /// overrides `interval` when non-null.
  std::shared_ptr<IntervalPolicy> interval_policy;
  /// Cluster-wide failure rate (1/MTBF); 0 disables failures.
  double lambda = 0.0;
  /// Optional explicit failure interarrival gaps; when non-empty the
  /// injector replays this trace (cycling) instead of the Poisson
  /// process, regardless of `lambda`.
  std::vector<SimTime> failure_trace;
  /// Per-node failure processes (FleetFailureInjector) instead of the
  /// aggregate cluster process: every node gets an independent clock from
  /// this distribution and, when `node_repair_time > 0`, keeps failing
  /// for the whole run. Takes precedence over `lambda`/`failure_trace`.
  std::shared_ptr<failure::TtfDistribution> node_ttf;
  SimTime node_repair_time = 0.0;
  /// Deterministic scripted fault schedule (exact node ids at absolute
  /// sim times — plus repair / link / partition / heal events, see
  /// ScheduledFailureInjector::parse); takes precedence over every
  /// stochastic source above.
  std::vector<failure::ScheduledFailure> failure_schedule;
  /// Heartbeat detection delay charged before recovery starts (oracle
  /// detection). Defaults to the heartbeat config's expected latency so
  /// the charged and measured paths agree (0.5 s with stock timing).
  SimTime detection_time = cluster::HeartbeatConfig{}.expected_detection_latency();
  /// Wire-true failure detection: when set, a HeartbeatDetector runs with
  /// real beat frames crossing the fabric's fault plane toward node 0.
  /// Detection latency is then *measured* (and partitions can produce
  /// false positives with fencing + rejoin) instead of the fixed
  /// `detection_time` charge.
  std::optional<cluster::HeartbeatConfig> heartbeat;
  /// Ambient per-host link fault installed on every host at run start
  /// (the lossy-fabric fuzz regime). Drop/corrupt compose per path:
  /// src-host and dst-host faults are independent trials.
  std::optional<net::LinkFault> ambient_link_fault;
  /// Penalty to restart the job from scratch (data loss / no checkpoint).
  SimTime restart_time = 30.0;
  /// Recovery supervisor: at most this many reconstruction attempts per
  /// episode (first attempt + cascaded retries) before escalating to a
  /// job restart.
  std::uint32_t max_recovery_attempts = 5;
  /// Sim-time backoff added before retry attempt N (N >= 2):
  /// recovery_backoff * 2^(N-2), on top of the detection delay.
  SimTime recovery_backoff = 1.0;
  /// Optional serving plane: client request traffic against the guests
  /// with output-commit egress (released at epoch commit, dropped on
  /// abort/failover). The plane runs on its own Rng stream derived from
  /// (seed, traffic->seed) — enabling it leaves the fault schedule and
  /// epoch wire bytes bit-identical.
  std::optional<workload::TrafficConfig> traffic;
  /// Optional replicated control plane: the first `control->replicas`
  /// nodes host a raft-style quorum that logs every coordinator decision
  /// (epoch cut/commit/abort, membership, recovery transitions, plan
  /// versions) and turns epoch commit into a two-phase quorum
  /// transaction. The leader can then be killed mid-epoch (see the
  /// kill-leader / partition-leader schedule grammar) and the job
  /// continues after re-election. Runs on its own Rng stream derived from
  /// (seed, control->seed) — enabling it with zero coordinator faults
  /// leaves the fault schedule, epoch wire bytes and serve.* metrics
  /// bit-identical to the single-coordinator baseline.
  std::optional<controlplane::ControlPlaneConfig> control;
  /// Optional hook observing job-level events as they happen (see
  /// JobEvent); the test harness's window into mid-run state.
  std::function<void(const JobEvent&)> observer;
  std::uint64_t seed = 42;
  /// Safety valve on simulator events.
  std::uint64_t max_events = 50'000'000;
};

struct ClusterConfig {
  std::uint32_t nodes = 4;
  std::uint32_t vms_per_node = 3;
  cluster::NodeSpec node_spec{};
  Bytes page_size = kib(4);
  std::size_t pages_per_vm = 128;
  /// Guest page-write rate (writes/sec per VM).
  double write_rate = 500.0;
  /// Fraction of each guest's pages left zero at boot (sparse images).
  double zero_fraction = 0.0;
  /// Hot/cold working set: fraction of pages taking most writes.
  double hot_fraction = 0.1;
  double hot_probability = 0.9;
};

/// Builds per-VM guest workloads from a ClusterConfig (hot/cold model).
WorkloadFactory make_workload_factory(const ClusterConfig& config);

struct RunResult {
  bool finished = false;
  SimTime completion = 0.0;       // wall-clock (simulated) time
  SimTime total_work = 0.0;
  double time_ratio = 0.0;        // completion / total_work (Fig. 5 y-axis)
  std::uint32_t failures = 0;
  std::uint32_t failures_during_recovery = 0;  // struck mid-recovery (killed)
  std::uint32_t recovery_cascades = 0;         // recovery rounds they forced
  std::uint32_t epochs = 0;
  std::uint32_t job_restarts = 0;      // data-loss or pre-checkpoint
  SimTime total_overhead = 0.0;        // guests suspended for checkpoints
  SimTime checkpoint_latency_sum = 0.0;
  SimTime total_recovery = 0.0;
  SimTime lost_work = 0.0;
  Bytes bytes_shipped = 0;
  Bytes peak_state_bytes = 0;          // checkpoint+parity memory highwater
};

/// Owns the whole stack for one experiment run: simulator, cluster,
/// workloads, failure injection and a checkpoint backend.
class JobRunner {
 public:
  using BackendFactory = std::function<std::unique_ptr<CheckpointBackend>(
      simkit::Simulator&, cluster::ClusterManager&, Rng&)>;

  JobRunner(JobConfig job, ClusterConfig cluster_config,
            BackendFactory backend_factory);

  /// Execute the job to completion (or until the event budget runs out).
  RunResult run();

  /// Access after run() for extra assertions in tests.
  cluster::ClusterManager& cluster() { return *cluster_; }
  simkit::Simulator& sim() { return sim_; }
  CheckpointBackend* backend() { return backend_.get(); }
  /// Serving plane, or nullptr when JobConfig::traffic is unset.
  workload::TrafficPlane* traffic() { return traffic_.get(); }
  /// Control plane, or nullptr when JobConfig::control is unset.
  controlplane::ControlPlane* control() { return control_.get(); }

 private:
  /// One recovery episode: from the first failure out of healthy state
  /// until the supervisor settles it (success, escalation, or restart).
  /// Cascading failures extend the same episode instead of opening a new
  /// one.
  struct Episode {
    SimTime start = 0.0;
    std::vector<cluster::NodeId> victims;  // every node killed this episode
    std::vector<vm::VmId> lost;            // union of lost VM ids
    std::uint32_t attempts = 0;            // reconstruction rounds started
    std::uint32_t cascades = 0;            // failures that aborted a round
    bool backend_active = false;           // handle_failure() in flight
    bool restarting = false;               // escalated to a job restart
    std::uint64_t span = 0;                // "recovery" root span id
    simkit::EventId pending = simkit::kInvalidEvent;  // scheduled attempt
    /// Wire mode: victims whose detector timeout has not fired yet. The
    /// continuation runs once the set drains (all victims detected).
    std::unordered_set<cluster::NodeId> awaiting;
    std::function<void()> on_detected;
  };

  void boot_cluster();
  void schedule_segment();
  void on_capture_point();
  /// Entry point for every injected failure. `exact` means `raw_victim`
  /// is an exact node id (scripted / per-node injectors); otherwise it is
  /// an index mapped onto the currently-alive set.
  void on_failure_event(cluster::NodeId raw_victim, bool exact);
  /// A failure struck while an episode was open: kill the victim, abort
  /// any in-flight reconstruction, extend the lost-set, requeue.
  /// `already_detected` marks a suspicion folding in (the detector's
  /// timeout already fired for this victim, nothing to await).
  void on_cascade_failure(cluster::NodeId victim,
                          bool already_detected = false);
  /// Scripted non-failure events: repairs and network fault-plane changes.
  void on_fault_event(const failure::ScheduledFailure& ev);
  /// Wire mode: the detector reported `node` after `latency` of silence.
  void on_detected(cluster::NodeId node, SimTime latency);
  /// Wire mode: the detector timed out on a node that is actually alive
  /// (partition / gray link) — declare it dead anyway and fence it; the
  /// mistake surfaces only if a beat gets through later.
  void on_suspected(cluster::NodeId victim, SimTime latency);
  /// Wire mode: a beat arrived from a node declared dead — the node is a
  /// fenced zombie; reconcile (now, or after the current episode).
  void on_false_positive(cluster::NodeId node);
  /// Bring a fenced/dead node back empty: revive, lift the fence, re-arm
  /// its tracker and beat emitter.
  void rejoin_node(cluster::NodeId node);
  void drain_rejoins();
  void start_recovery_attempt();
  void on_recovery_settled(const RecoveryStats& rs);
  SimTime retry_backoff(std::uint32_t next_attempt) const;
  void notify(JobEvent::Kind kind, cluster::NodeId node = 0,
              bool success = false);
  void restart_job(const std::vector<vm::VmId>& missing);
  SimTime current_work() const;
  void settle_workloads();
  /// Append a control record through the plane's current leader, queuing
  /// it for the next leader when there is none. No-op without a plane.
  void log_entry(const controlplane::ControlEntry& entry);
  void drain_pending_entries();
  /// The protocol's two-phase commit gate: quorum-log kEpochCommit and
  /// fire `proceed` no earlier than `earliest` (see commit_gate docs).
  void gate_epoch_commit(checkpoint::Epoch epoch, SimTime earliest,
                         std::function<void(bool)> proceed);
  /// Who the leader-targeted fault events strike right now: the control
  /// plane's leader, or node 0 (the implicit coordinator) without one.
  std::optional<cluster::NodeId> leader_target() const;

  JobConfig job_;
  ClusterConfig cluster_config_;
  BackendFactory backend_factory_;

  simkit::Simulator sim_;
  Rng rng_;
  std::unique_ptr<cluster::ClusterManager> cluster_;
  std::unique_ptr<CheckpointBackend> backend_;
  std::unique_ptr<workload::TrafficPlane> traffic_;
  std::unique_ptr<controlplane::ControlPlane> control_;
  /// Control records appended while leaderless; flushed on election.
  std::vector<controlplane::ControlEntry> pending_entries_;
  /// Placement-map version last logged as a kPlanVersion record.
  std::uint64_t logged_plan_version_ = 0;
  /// The backend routed an epoch through gate_epoch_commit: kEpochCommit
  /// records are then quorum-logged by the gate, not by on_capture_point.
  bool commit_gate_used_ = false;
  /// Monotone guards: a capture/recovery deferred on await_leader() is
  /// dropped if the job moved on before the election resolved.
  std::uint64_t capture_wait_seq_ = 0;
  std::uint64_t recovery_wait_seq_ = 0;
  std::unique_ptr<failure::FailureInjector> injector_;
  /// Wire-true detection (JobConfig::heartbeat); null = oracle detection.
  std::unique_ptr<cluster::HeartbeatDetector> detector_;
  /// Nodes the cluster declared dead that are physically alive behind a
  /// partition. Their beat emitters keep running; a beat getting through
  /// exposes the false positive.
  std::unordered_set<cluster::NodeId> zombies_;
  /// False positives discovered mid-episode; reconciled when it settles.
  std::vector<cluster::NodeId> pending_rejoins_;

  RunResult result_;
  // Work tracking.
  SimTime current_interval_ = 0.0;
  SimTime committed_work_ = 0.0;
  SimTime work_at_resume_ = 0.0;
  SimTime resume_time_ = 0.0;
  SimTime advanced_work_ = 0.0;  // workload content advanced this far
  bool computing_ = false;
  bool recovering_ = false;
  bool finished_ = false;
  simkit::EventId pending_event_ = simkit::kInvalidEvent;
  Episode episode_;
};

/// The DVDC backend: coordinator + recovery + (re)planning.
class DvdcBackend final : public CheckpointBackend {
 public:
  DvdcBackend(simkit::Simulator& sim, cluster::ClusterManager& cluster,
              ProtocolConfig protocol, RecoveryConfig recovery,
              WorkloadFactory workloads, PlannerConfig planner = {});

  void checkpoint(checkpoint::Epoch epoch, EpochDone done) override;
  SimTime early_resume_delay() const override;
  void abort_checkpoint() override;
  void on_node_failure(cluster::NodeId victim) override;
  void handle_failure(const std::vector<vm::VmId>& lost,
                      RecoveryDone done) override;
  bool abort_recovery() override;
  checkpoint::Epoch committed_epoch() const override {
    return state_.committed_epoch();
  }
  void on_job_restart() override;
  void set_commit_gate(CommitGate gate) override {
    coordinator_.set_commit_gate(std::move(gate));
  }
  std::string name() const override { return "dvdc"; }

  DvdcState& state() { return state_; }
  const PlacedPlan& placed_plan();

 private:
  void ensure_plan();

  cluster::ClusterManager& cluster_;
  ProtocolConfig protocol_config_;
  DvdcState state_;
  DvdcCoordinator coordinator_;
  RecoveryManager recovery_;
  GroupPlanner planner_;
  std::optional<PlacedPlan> placed_;
  /// Pool-map stamp at which `placed_` was last validated (the O(1)
  /// ensure_plan fast path).
  cluster::PlacementMap::Version validated_stamp_ = 0;
  /// The plan whose epoch is currently committed. Recovery must use THIS
  /// plan (its memberships match the committed parity stripes), even if
  /// `placed_` has since been rebuilt for the next epoch.
  std::optional<PlacedPlan> committed_plan_;
};

}  // namespace vdc::core
