#pragma once
// End-to-end job execution under failures.
//
// The runtime drives a long-running SPMD job on a virtualized cluster:
// guests compute, a checkpoint is captured every `interval` of useful work,
// Poisson failures strike nodes, and the configured backend (DVDC, the
// disk-full NAS baseline, or none) decides what a checkpoint costs and how
// recovery happens. The same loop therefore serves as (a) the system
// itself, (b) the discrete-event corroboration of the Section V model, and
// (c) the harness behind the comparison benches.
//
// Work accounting: the job needs `total_work` seconds of fault-free
// compute. Work accrues while guests run, stops during capture stalls and
// recovery, and rolls back to the last committed checkpoint on failure.

#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "cluster/heartbeat.hpp"
#include "cluster/manager.hpp"
#include "core/adaptive.hpp"
#include "core/protocol.hpp"
#include "core/recovery.hpp"
#include "failure/injector.hpp"

namespace vdc::core {

/// What a checkpoint/recovery scheme must provide to the job loop.
class CheckpointBackend {
 public:
  using EpochDone = std::function<void(const EpochStats&)>;
  using RecoveryDone = std::function<void(const RecoveryStats&)>;

  virtual ~CheckpointBackend() = default;

  /// Called with all guests paused at a consistent cut. Must eventually
  /// invoke `done`; guests may be resumed earlier by the backend (COW).
  virtual void checkpoint(checkpoint::Epoch epoch, EpochDone done) = 0;

  /// If >= 0, guests resume this long after the cut even though the
  /// checkpoint commits later (overlapped capture). If < 0, guests resume
  /// only at commit.
  virtual SimTime early_resume_delay() const = 0;

  /// Abort an in-flight checkpoint (failure interrupted it).
  virtual void abort_checkpoint() = 0;

  /// A node died and `lost` VMs with it (node already marked dead, its
  /// state dropped). Recover and roll the cluster back to the last
  /// committed cut. success == false means unrecoverable data loss.
  virtual void handle_failure(cluster::NodeId victim,
                              const std::vector<vm::VmId>& lost,
                              RecoveryDone done) = 0;

  /// Epochs committed so far.
  virtual checkpoint::Epoch committed_epoch() const = 0;

  /// The job restarted from scratch (data loss): drop stale redundancy
  /// state so the next checkpoint starts a fresh stripe generation.
  virtual void on_job_restart() {}

  virtual std::string name() const = 0;
};

struct JobConfig {
  SimTime total_work = hours(2);
  /// Useful work between checkpoint captures; <= 0 disables checkpointing.
  /// Ignored when `interval_policy` is set.
  SimTime interval = minutes(10);
  /// Optional dynamic interval policy (e.g. AdaptiveIntervalPolicy);
  /// overrides `interval` when non-null.
  std::shared_ptr<IntervalPolicy> interval_policy;
  /// Cluster-wide failure rate (1/MTBF); 0 disables failures.
  double lambda = 0.0;
  /// Optional explicit failure interarrival gaps; when non-empty the
  /// injector replays this trace (cycling) instead of the Poisson
  /// process, regardless of `lambda`.
  std::vector<SimTime> failure_trace;
  /// Heartbeat detection delay charged before recovery starts.
  SimTime detection_time = 0.5;
  /// Penalty to restart the job from scratch (data loss / no checkpoint).
  SimTime restart_time = 30.0;
  std::uint64_t seed = 42;
  /// Safety valve on simulator events.
  std::uint64_t max_events = 50'000'000;
};

struct ClusterConfig {
  std::uint32_t nodes = 4;
  std::uint32_t vms_per_node = 3;
  cluster::NodeSpec node_spec{};
  Bytes page_size = kib(4);
  std::size_t pages_per_vm = 128;
  /// Guest page-write rate (writes/sec per VM).
  double write_rate = 500.0;
  /// Fraction of each guest's pages left zero at boot (sparse images).
  double zero_fraction = 0.0;
  /// Hot/cold working set: fraction of pages taking most writes.
  double hot_fraction = 0.1;
  double hot_probability = 0.9;
};

/// Builds per-VM guest workloads from a ClusterConfig (hot/cold model).
WorkloadFactory make_workload_factory(const ClusterConfig& config);

struct RunResult {
  bool finished = false;
  SimTime completion = 0.0;       // wall-clock (simulated) time
  SimTime total_work = 0.0;
  double time_ratio = 0.0;        // completion / total_work (Fig. 5 y-axis)
  std::uint32_t failures = 0;
  std::uint32_t failures_ignored = 0;  // struck during recovery
  std::uint32_t epochs = 0;
  std::uint32_t job_restarts = 0;      // data-loss or pre-checkpoint
  SimTime total_overhead = 0.0;        // guests suspended for checkpoints
  SimTime checkpoint_latency_sum = 0.0;
  SimTime total_recovery = 0.0;
  SimTime lost_work = 0.0;
  Bytes bytes_shipped = 0;
  Bytes peak_state_bytes = 0;          // checkpoint+parity memory highwater
};

/// Owns the whole stack for one experiment run: simulator, cluster,
/// workloads, failure injection and a checkpoint backend.
class JobRunner {
 public:
  using BackendFactory = std::function<std::unique_ptr<CheckpointBackend>(
      simkit::Simulator&, cluster::ClusterManager&, Rng&)>;

  JobRunner(JobConfig job, ClusterConfig cluster_config,
            BackendFactory backend_factory);

  /// Execute the job to completion (or until the event budget runs out).
  RunResult run();

  /// Access after run() for extra assertions in tests.
  cluster::ClusterManager& cluster() { return *cluster_; }
  simkit::Simulator& sim() { return sim_; }
  CheckpointBackend* backend() { return backend_.get(); }

 private:
  void boot_cluster();
  void schedule_segment();
  void on_capture_point();
  void on_failure_event(cluster::NodeId raw_victim);
  void restart_job(const std::vector<vm::VmId>& missing);
  SimTime current_work() const;
  void settle_workloads();

  JobConfig job_;
  ClusterConfig cluster_config_;
  BackendFactory backend_factory_;

  simkit::Simulator sim_;
  Rng rng_;
  std::unique_ptr<cluster::ClusterManager> cluster_;
  std::unique_ptr<CheckpointBackend> backend_;
  std::unique_ptr<failure::ClusterFailureInjector> injector_;

  RunResult result_;
  // Work tracking.
  SimTime current_interval_ = 0.0;
  SimTime committed_work_ = 0.0;
  SimTime work_at_resume_ = 0.0;
  SimTime resume_time_ = 0.0;
  SimTime advanced_work_ = 0.0;  // workload content advanced this far
  bool computing_ = false;
  bool recovering_ = false;
  bool finished_ = false;
  simkit::EventId pending_event_ = simkit::kInvalidEvent;
};

/// The DVDC backend: coordinator + recovery + (re)planning.
class DvdcBackend final : public CheckpointBackend {
 public:
  DvdcBackend(simkit::Simulator& sim, cluster::ClusterManager& cluster,
              ProtocolConfig protocol, RecoveryConfig recovery,
              WorkloadFactory workloads, PlannerConfig planner = {});

  void checkpoint(checkpoint::Epoch epoch, EpochDone done) override;
  SimTime early_resume_delay() const override;
  void abort_checkpoint() override;
  void handle_failure(cluster::NodeId victim,
                      const std::vector<vm::VmId>& lost,
                      RecoveryDone done) override;
  checkpoint::Epoch committed_epoch() const override {
    return state_.committed_epoch();
  }
  void on_job_restart() override;
  std::string name() const override { return "dvdc"; }

  DvdcState& state() { return state_; }
  const PlacedPlan& placed_plan();

 private:
  void ensure_plan();

  cluster::ClusterManager& cluster_;
  ProtocolConfig protocol_config_;
  DvdcState state_;
  DvdcCoordinator coordinator_;
  RecoveryManager recovery_;
  GroupPlanner planner_;
  std::optional<PlacedPlan> placed_;
  /// The plan whose epoch is currently committed. Recovery must use THIS
  /// plan (its memberships match the committed parity stripes), even if
  /// `placed_` has since been rebuilt for the next epoch.
  std::optional<PlacedPlan> committed_plan_;
};

}  // namespace vdc::core
