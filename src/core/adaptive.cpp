#include "core/adaptive.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace vdc::core {

FixedIntervalPolicy::FixedIntervalPolicy(SimTime interval)
    : interval_(interval) {
  VDC_REQUIRE(interval > 0.0, "fixed interval must be positive");
}

AdaptiveIntervalPolicy::AdaptiveIntervalPolicy(AdaptiveConfig config)
    : config_(config) {
  VDC_REQUIRE(config.lambda > 0.0, "lambda must be positive");
  VDC_REQUIRE(config.alpha > 0.0 && config.alpha <= 1.0,
              "alpha must be in (0, 1]");
  VDC_REQUIRE(config.min_interval > 0.0 &&
                  config.max_interval > config.min_interval,
              "interval clamp must be a non-empty range");
  VDC_REQUIRE(config.initial > 0.0, "initial interval must be positive");
}

SimTime AdaptiveIntervalPolicy::next_interval(const EpochStats& last) {
  const SimTime observed =
      config_.use_latency ? last.latency : last.overhead;
  if (cost_estimate_ < 0.0) {
    cost_estimate_ = observed;
  } else {
    cost_estimate_ = config_.alpha * observed +
                     (1.0 - config_.alpha) * cost_estimate_;
  }
  const SimTime cost = std::max(cost_estimate_, 1e-6);
  const SimTime young = std::sqrt(2.0 * cost / config_.lambda);
  SimTime interval =
      std::clamp(young, config_.min_interval, config_.max_interval);
  if (config_.held_highwater > 0) {
    // Back-pressure: Young's rule optimizes lost work, not client-visible
    // output latency or buffer memory. When the held egress blows past
    // the high-water mark, cap the interval in proportion to the
    // overshoot of the interval that CAUSED it. The cap persists and
    // recovers by doubling across calm epochs — a memoryless correction
    // oscillates (one short calm epoch would erase it, the next long
    // epoch would blow the buffer again).
    if (last.held_egress_peak > config_.held_highwater) {
      const double scale = static_cast<double>(config_.held_highwater) /
                           static_cast<double>(last.held_egress_peak);
      const SimTime basis = last_returned_ > 0.0 ? last_returned_ : interval;
      held_cap_ = std::max(config_.min_interval, basis * scale);
    } else if (held_cap_ < config_.max_interval) {
      held_cap_ = std::min(config_.max_interval, held_cap_ * 2.0);
    }
    interval = std::max(config_.min_interval,
                        std::min(interval, held_cap_));
  }
  last_returned_ = interval;
  return interval;
}

}  // namespace vdc::core
