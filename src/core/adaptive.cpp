#include "core/adaptive.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace vdc::core {

FixedIntervalPolicy::FixedIntervalPolicy(SimTime interval)
    : interval_(interval) {
  VDC_REQUIRE(interval > 0.0, "fixed interval must be positive");
}

AdaptiveIntervalPolicy::AdaptiveIntervalPolicy(AdaptiveConfig config)
    : config_(config) {
  VDC_REQUIRE(config.lambda > 0.0, "lambda must be positive");
  VDC_REQUIRE(config.alpha > 0.0 && config.alpha <= 1.0,
              "alpha must be in (0, 1]");
  VDC_REQUIRE(config.min_interval > 0.0 &&
                  config.max_interval > config.min_interval,
              "interval clamp must be a non-empty range");
  VDC_REQUIRE(config.initial > 0.0, "initial interval must be positive");
}

SimTime AdaptiveIntervalPolicy::next_interval(const EpochStats& last) {
  const SimTime observed =
      config_.use_latency ? last.latency : last.overhead;
  if (cost_estimate_ < 0.0) {
    cost_estimate_ = observed;
  } else {
    cost_estimate_ = config_.alpha * observed +
                     (1.0 - config_.alpha) * cost_estimate_;
  }
  const SimTime cost = std::max(cost_estimate_, 1e-6);
  const SimTime young = std::sqrt(2.0 * cost / config_.lambda);
  return std::clamp(young, config_.min_interval, config_.max_interval);
}

}  // namespace vdc::core
