#pragma once
// Adaptive checkpoint-interval policies (paper Section II-B.1).
//
// With incremental checkpointing the cost of an epoch is not constant —
// it tracks the dirty set. The classic fixed interval derived offline is
// then wrong in both directions: it checkpoints too rarely when epochs
// are cheap and too often when they are expensive. The adaptive policy
// re-derives Young's rule online,
//
//     N* = sqrt(2 * T_hat / lambda)
//
// where T_hat is an exponentially weighted estimate of the *effective*
// per-epoch cost. For overlapped (copy-on-write) capture the cost that
// matters for rollback exposure is the commit latency, so the policy can
// be pointed at either the overhead or the latency signal.

#include <limits>
#include <memory>

#include "common/units.hpp"
#include "core/protocol.hpp"

namespace vdc::core {

/// Decides how much work to run before the next checkpoint.
class IntervalPolicy {
 public:
  virtual ~IntervalPolicy() = default;

  /// Interval to use before the first checkpoint.
  virtual SimTime initial_interval() const = 0;

  /// Called after each committed epoch; returns the next interval.
  virtual SimTime next_interval(const EpochStats& last) = 0;

  virtual std::string name() const = 0;
};

/// The baseline: always the same interval.
class FixedIntervalPolicy final : public IntervalPolicy {
 public:
  explicit FixedIntervalPolicy(SimTime interval);
  SimTime initial_interval() const override { return interval_; }
  SimTime next_interval(const EpochStats&) override { return interval_; }
  std::string name() const override { return "fixed"; }

 private:
  SimTime interval_;
};

struct AdaptiveConfig {
  /// Cluster-wide failure rate the rule is derived for.
  double lambda = 9.26e-5;
  /// EWMA smoothing for the per-epoch cost estimate.
  double alpha = 0.3;
  /// Use latency (time to a usable checkpoint) instead of overhead as the
  /// cost signal — appropriate for overlapped capture.
  bool use_latency = false;
  /// Clamp the derived interval.
  SimTime min_interval = 1.0;
  SimTime max_interval = hours(4);
  /// Interval before any cost has been observed.
  SimTime initial = minutes(5);
  /// Output-commit back-pressure high-water mark (bytes of held guest
  /// egress). When > 0 and the last epoch's held peak
  /// (EpochStats::held_egress_peak) exceeded it, a persistent cap on the
  /// interval shrinks proportionally — peak at 2x the mark halves the
  /// cap — so committing more often drains the egress buffer. The cap
  /// recovers by doubling across calm epochs rather than vanishing, which
  /// keeps the policy from oscillating between one calm short epoch and a
  /// buffer-blowing long one. Never shortens below min_interval; 0
  /// disables the term.
  Bytes held_highwater = 0;
};

class AdaptiveIntervalPolicy final : public IntervalPolicy {
 public:
  explicit AdaptiveIntervalPolicy(AdaptiveConfig config);
  SimTime initial_interval() const override { return config_.initial; }
  SimTime next_interval(const EpochStats& last) override;
  std::string name() const override { return "adaptive"; }

  /// Current smoothed per-epoch cost estimate.
  SimTime cost_estimate() const { return cost_estimate_; }

 private:
  AdaptiveConfig config_;
  SimTime cost_estimate_ = -1.0;  // < 0: no observation yet
  /// Back-pressure cap on the returned interval; +inf until the held
  /// egress first overshoots the high-water mark.
  SimTime held_cap_ = std::numeric_limits<double>::infinity();
  SimTime last_returned_ = 0.0;  // 0: nothing returned yet
};

}  // namespace vdc::core
