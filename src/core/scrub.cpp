#include "core/scrub.hpp"

#include <memory>
#include <utility>

#include "common/assert.hpp"
#include "common/log.hpp"

namespace vdc::core {

bool ParityScrubber::inject_corruption(GroupId group,
                                       std::size_t block_index,
                                       std::size_t byte_offset) {
  const DvdcState::ParityRecord* record = state_.parity(group);
  if (record == nullptr || block_index >= record->blocks.size() ||
      record->blocks[block_index].size() <= byte_offset)
    return false;
  DvdcState::ParityRecord copy = *record;
  copy.blocks[block_index][byte_offset] ^= std::byte{0x01};
  state_.set_parity(group, std::move(copy));
  return true;
}

void ParityScrubber::scrub(const PlacedPlan& plan, bool repair,
                           DoneCallback done) {
  struct Ctx {
    ScrubReport report;
    SimTime start = 0.0;
    std::size_t pending = 0;
    DoneCallback done;
    telemetry::SpanId span = telemetry::kNoSpan;
  };
  auto ctx = std::make_shared<Ctx>();
  ctx->start = sim_.now();
  ctx->done = std::move(done);
  ctx->span = sim_.telemetry().begin_span("scrub");

  // Single exit: stamp the duration, publish the run's counters, close
  // the span, hand the report back.
  const auto complete = [this, ctx] {
    ctx->report.duration = sim_.now() - ctx->start;
    auto& metrics = sim_.telemetry().metrics();
    metrics.add("scrub.runs", 1.0);
    metrics.add("scrub.groups_checked",
                static_cast<double>(ctx->report.groups_checked));
    metrics.add("scrub.mismatched",
                static_cast<double>(ctx->report.mismatched.size()));
    metrics.add("scrub.repaired",
                static_cast<double>(ctx->report.repaired));
    metrics.add("scrub.bytes_streamed",
                static_cast<double>(ctx->report.bytes_streamed));
    sim_.telemetry().end_span(ctx->span);
    ctx->done(ctx->report);
  };

  struct GroupCheck {
    GroupId gid;
    cluster::NodeId primary_holder;
    std::vector<parity::Block> expected;
    std::size_t flows = 0;
    Bytes block_size = 0;
  };
  std::vector<GroupCheck> checks;

  for (const auto& group : plan.plan.groups) {
    const DvdcState::ParityRecord* record = state_.parity(group.id);
    if (record == nullptr || record->members != group.members ||
        record->epoch != state_.committed_epoch())
      continue;
    bool intact = true;
    for (const auto& block : record->blocks)
      if (block.empty()) intact = false;
    if (!intact) continue;
    // An in-place delta fold is mutating committed blocks right now; a
    // half-folded stripe is not corruption. Skip the group this run.
    if (state_.fold_in_flight()) continue;

    // Gather the members' committed checkpoints and recompute the stripe.
    GroupCheck check;
    check.gid = group.id;
    check.primary_holder = record->holders.front();
    check.block_size = record->block_size;
    std::vector<parity::Block> padded;
    std::vector<parity::BlockView> views;
    bool complete = true;
    for (vm::VmId member : group.members) {
      const auto loc = cluster_.locate(member);
      if (!loc.has_value()) {
        complete = false;
        break;
      }
      const auto* cp =
          state_.node_store(*loc).find(member, state_.committed_epoch());
      if (cp == nullptr) {
        complete = false;
        break;
      }
      padded.push_back(cp->padded_payload(record->block_size));
    }
    if (!complete) continue;
    for (const auto& p : padded) views.emplace_back(p);
    auto codec = make_codec(record->scheme, group.members.size(),
                            record->blocks.size());
    check.expected = codec->encode(views);
    check.flows = group.members.size() * record->holders.size();
    checks.push_back(std::move(check));
  }

  ctx->report.groups_checked = checks.size();
  if (checks.empty()) {
    sim_.after(0.0, complete);
    return;
  }

  // Timed execution: per group, the members stream their blocks to each
  // holder, the holder re-XORs and compares.
  ctx->pending = checks.size();
  for (auto& check : checks) {
    const DvdcState::ParityRecord* record = state_.parity(check.gid);
    VDC_ASSERT(record != nullptr);

    auto flows_left = std::make_shared<std::size_t>(check.flows);
    auto finish_group = [this, ctx, check, repair, complete] {
      const DvdcState::ParityRecord* record = state_.parity(check.gid);
      if (record == nullptr) {  // plan changed underneath us
        if (--ctx->pending == 0) complete();
        return;
      }
      bool match = record->blocks == check.expected;
      for (const auto& block : record->blocks)
        ctx->report.bytes_verified += block.size();
      if (!match) {
        ctx->report.mismatched.push_back(check.gid);
        VDC_INFO("scrub", "parity mismatch in group ", check.gid);
        if (repair && (cluster_.degraded() || state_.fold_in_flight())) {
          // A recovery episode is rewriting stripes, or the coordinator
          // is folding deltas into them in place; a repair write would
          // race either. Report the mismatch, defer the write.
          sim_.telemetry().metrics().add("scrub.deferred_repairs", 1.0);
        } else if (repair) {
          DvdcState::ParityRecord fixed = *record;
          fixed.blocks = check.expected;
          state_.set_parity(check.gid, std::move(fixed));
          ++ctx->report.repaired;
        }
      }
      if (--ctx->pending == 0) complete();
    };

    const auto& group = plan.plan.groups[check.gid];
    for (cluster::NodeId holder : record->holders) {
      const net::HostId dst = cluster_.node(holder).host();
      for (vm::VmId member : group.members) {
        const auto loc = cluster_.locate(member);
        VDC_ASSERT(loc.has_value());
        const net::HostId src = cluster_.node(*loc).host();
        ctx->report.bytes_streamed += check.block_size;
        const auto on_done = [this, holder, check, flows_left,
                              finish_group] {
          if (--*flows_left > 0) return;
          // All streams in: charge the re-encode (k blocks per holder).
          const std::size_t k = check.flows / check.expected.size();
          const double xor_time =
              static_cast<double>(check.block_size * k) /
              cluster_.node(holder).spec().xor_rate;
          sim_.after(xor_time, finish_group);
        };
        if (src == dst) {
          sim_.after(0.0, on_done);
        } else {
          // Scrub verification rides the same chunked plane as the epoch
          // exchange; the stream keeps itself alive until completion.
          net::ChunkedStream::start(cluster_.fabric(), src, dst,
                                    check.block_size, chunking_, {}, on_done);
        }
      }
    }
  }
}

}  // namespace vdc::core
