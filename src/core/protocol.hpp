#pragma once
// The DVDC coordinated checkpoint protocol (paper Section IV-B/IV-C).
//
// One checkpoint epoch:
//   1. quiesce  — pause every guest for a cluster-consistent cut; capture
//                 each VM's image (content frozen at the cut) and diff it
//                 against the last committed checkpoint;
//   2. resume   — with copy-on-write capture the guests resume after just
//                 the base overhead; otherwise they stay paused through 3-4
//                 (overhead == latency, the synchronous variant);
//   3. exchange — every group member streams its checkpoint (full on the
//                 first epoch / after a re-plan, XOR+RLE delta afterwards)
//                 to the group's parity holder(s) over the real fabric, so
//                 fan-in contention is measured, not assumed;
//   4. parity   — each holder folds arriving contributions into a *copy*
//                 of its parity block (the committed stripe survives until
//                 commit, keeping aborts safe);
//   5. commit   — when every group's parity is complete the coordinator
//                 commits the epoch, old checkpoints are garbage-collected
//                 and the epoch's stats are reported.
//
// Parity schemes: Raid5 (the paper's single XOR parity), Rdp (the
// double-erasure extension the paper cites), and Rs (Cauchy Reed-Solomon
// over GF(256), any m). All three support the parity-delta wire path:
// after the first epoch each member ships only old^new of its dirty pages
// ("VDD1" frames) and holders fold the delta into their standing blocks —
// linear codes at the same offset, RDP through its row/diagonal update
// geometry — so exchange traffic is O(dirty), not O(image).
//
// A failure mid-epoch calls abort(): in-flight state is discarded and the
// previous committed epoch remains recoverable.

#include <functional>
#include <map>
#include <memory>
#include <unordered_map>

#include "checkpoint/delta.hpp"
#include "checkpoint/store.hpp"
#include "cluster/manager.hpp"
#include "core/plan.hpp"
#include "net/chunked_stream.hpp"
#include "parity/codec.hpp"
#include "simkit/resource.hpp"
#include "telemetry/telemetry.hpp"

namespace vdc::core {

enum class ParityScheme {
  Raid5,  // one XOR parity block per group; survives one loss per group
  Rdp,    // row-diagonal parity; two holders; survives two losses
  Rs,     // Reed-Solomon over GF(256); m holders; survives m losses
};

/// Parity blocks per group under a scheme (`rs_m` applies to Rs only).
std::size_t parity_width(ParityScheme scheme, std::size_t rs_m = 2);

/// Build the codec for a group of `k` data members.
std::unique_ptr<parity::GroupCodec> make_codec(ParityScheme scheme,
                                               std::size_t k,
                                               std::size_t rs_m = 2);

struct ProtocolConfig {
  ParityScheme scheme = ParityScheme::Raid5;
  /// Parity blocks per group when scheme == Rs (fault tolerance m).
  std::size_t rs_parity = 2;
  /// Ship page deltas (XOR+RLE "VDD1" frames) after the first epoch
  /// instead of full images, under every scheme (Raid5, Rs, and Rdp).
  bool incremental = true;
  /// RLE-compress full-exchange streams (zero-page elision): sparse
  /// guest images ship only their touched pages plus a small header.
  /// Costs ~1% inflation on incompressible images.
  bool compress_full = false;
  /// Copy-on-write capture: guests resume after `base_overhead` while the
  /// exchange and XOR proceed against the frozen view.
  bool copy_on_write = true;
  /// Use the legacy flatten+diff_images data plane instead of the
  /// dirty-page zero-copy plane. Simulated timing, metrics, checkpoints
  /// and parity are bit-identical either way (asserted by
  /// tests/dataplane_equivalence_test.cpp); the reference plane just does
  /// O(image) wall-clock work per VM per epoch. The env var
  /// VDC_REFERENCE_PLANE=1 forces it on at coordinator construction.
  bool reference_data_plane = false;
  /// Exchange streaming: slice each (member, holder) contribution into
  /// `chunking.chunk_bytes` segments with at most `chunking.pipeline_depth`
  /// in flight, folding every chunk into parity as it arrives (decode
  /// overlaps the wire). chunk_bytes == 0 (default) ships each
  /// contribution as one flow, exactly the pre-chunking behaviour. The
  /// VDC_CHUNK_BYTES / VDC_PIPELINE_DEPTH env vars override at
  /// coordinator construction.
  net::ChunkPolicy chunking;
  /// Guest suspend + device quiesce cost (the paper's 40 ms).
  SimTime base_overhead = 0.040;
  /// Memory-copy rate for non-COW local capture while paused.
  Rate snapshot_rate = gib_per_s(8);
  /// Coordinator commit broadcast latency.
  SimTime commit_latency = 1e-3;
  /// Two-phase commit hook. When set, the coordinator calls it at the
  /// commit point instead of scheduling try_commit directly: `epoch` is
  /// the epoch about to commit, `earliest` = now + commit_latency is the
  /// soonest the commit may take effect (so a quorum that answers faster
  /// than the broadcast latency cannot make the gated run commit earlier
  /// than the ungated one), and `proceed(true/false)` finishes or aborts
  /// the epoch. The runtime wires this to the replicated control plane's
  /// quorum-logged epoch-commit record.
  std::function<void(checkpoint::Epoch epoch, SimTime earliest,
                     std::function<void(bool commit)> proceed)>
      commit_gate;
};

struct EpochStats {
  checkpoint::Epoch epoch = 0;
  SimTime overhead = 0.0;       // guests suspended
  SimTime latency = 0.0;        // quiesce start -> commit
  Bytes bytes_shipped = 0;      // wire bytes over the fabric
  Bytes delta_bytes = 0;        // the subset shipped as VDD1 delta frames
  Bytes trim_bytes = 0;         // what trim-only encoding would have shipped
  Bytes bytes_xored = 0;        // parity work
  Bytes raw_dirty_bytes = 0;    // changed pages before compression
  std::size_t groups = 0;
  /// Peak held guest egress (serve.output_held_bytes) over the window
  /// ending at this epoch's commit; filled by the runtime when the
  /// serving plane is on, 0 otherwise. Input to the adaptive interval
  /// policy's back-pressure term.
  Bytes held_egress_peak = 0;
  bool full_exchange = false;   // at least one group shipped full images
  /// False when the epoch was aborted because an exchange transfer died on
  /// the wire (retransmission attempts / deadline exhausted). The previous
  /// committed checkpoint remains the recovery point.
  bool committed = true;
};

/// A plan with its parity holders pinned. Holders stay fixed across epochs
/// (like RAID-5 stripes, rotation is across groups); they only move when
/// the plan is rebuilt after a membership or placement change.
struct PlacedPlan {
  GroupPlan plan;
  std::vector<std::vector<cluster::NodeId>> holders;  // [group][parity idx]

  static PlacedPlan make(GroupPlan plan,
                         const cluster::ClusterManager& cluster,
                         ParityScheme scheme = ParityScheme::Raid5,
                         std::size_t rs_m = 2);

  /// True while the placement still provides full protection: the group
  /// plan validates AND every pinned holder is alive and hosts no member
  /// of its group (a holder-member collision would make one node failure
  /// a double erasure). Recovery re-placement can break this; the DVDC
  /// backend re-plans when it does.
  bool still_orthogonal(const cluster::ClusterManager& cluster) const;
};

/// Per-VM facts that must survive the VM's node (used to rebuild it).
struct VmInfo {
  std::string name;
  Bytes page_size = 0;
  std::size_t page_count = 0;
  Bytes image_bytes() const { return page_size * page_count; }
};

/// Protocol state that survives across epochs and is visible to recovery:
/// per-node checkpoint stores, per-group committed parity stripes, and the
/// VM metadata registry.
class DvdcState {
 public:
  struct ParityRecord {
    checkpoint::Epoch epoch = 0;
    ParityScheme scheme = ParityScheme::Raid5;
    std::vector<vm::VmId> members;              // stripe membership
    std::vector<cluster::NodeId> holders;       // m nodes
    std::vector<parity::Block> blocks;          // m blocks, same size
    Bytes block_size = 0;                       // padded stripe width
  };

  checkpoint::CheckpointStore& node_store(cluster::NodeId node) {
    return stores_[node];
  }

  const ParityRecord* parity(GroupId group) const;
  /// Mutable access for the coordinator's in-place delta folds. Callers
  /// must keep every block's SIZE unchanged (byte accounting is by size);
  /// content-only mutation is what the undo log protects.
  ParityRecord* mutable_parity(GroupId group);
  void set_parity(GroupId group, ParityRecord record);
  void drop_parity(GroupId group);

  checkpoint::Epoch committed_epoch() const { return committed_; }
  void set_committed_epoch(checkpoint::Epoch e) { committed_ = e; }

  void register_vm(vm::VmId id, VmInfo info) { vms_[id] = std::move(info); }
  const VmInfo& vm_info(vm::VmId id) const;

  /// Drop every checkpoint held on a failed node and invalidate parity
  /// blocks that lived there (stripes keep their surviving blocks).
  void drop_node(cluster::NodeId node);

  /// Total in-memory bytes devoted to checkpoints + parity (the paper's
  /// "modest memory overhead"). Checkpoint bytes are RESIDENT bytes (a
  /// page shared by two epochs counts once). Reads running totals — no
  /// walk over blocks or entries.
  Bytes memory_bytes() const;

  /// Bytes held in sub-page patch buffers across all stores (the fast
  /// plane's extra cost for sharing a base page the guest barely touched;
  /// included in memory_bytes()).
  Bytes patch_bytes() const;

  /// True while the coordinator is folding deltas into committed parity
  /// blocks in place (epoch start until commit/abort). The scrubber must
  /// defer repairs while set: a half-folded stripe is not corruption.
  bool fold_in_flight() const { return fold_in_flight_; }
  void set_fold_in_flight(bool v) { fold_in_flight_ = v; }

 private:
  static Bytes record_block_bytes(const ParityRecord& record);

  std::unordered_map<cluster::NodeId, checkpoint::CheckpointStore> stores_;
  std::map<GroupId, ParityRecord> parity_;
  std::unordered_map<vm::VmId, VmInfo> vms_;
  checkpoint::Epoch committed_ = 0;
  Bytes parity_bytes_ = 0;  // running total over parity_ block sizes
  bool fold_in_flight_ = false;
};

class DvdcCoordinator {
 public:
  using DoneCallback = std::function<void(const EpochStats&)>;

  DvdcCoordinator(simkit::Simulator& sim, cluster::ClusterManager& cluster,
                  DvdcState& state, ProtocolConfig config = {});
  ~DvdcCoordinator();  // out of line: GroupWork is incomplete here

  /// Run one checkpoint epoch over `plan`. `done` fires at commit.
  /// One epoch at a time.
  void run_epoch(const PlacedPlan& plan, checkpoint::Epoch epoch,
                 DoneCallback done);

  /// Abort the in-flight epoch (a failure interrupted it). Captured
  /// checkpoints and parity copies for the aborted epoch are discarded;
  /// guests are left as the failure handler finds them.
  void abort();

  bool epoch_in_flight() const { return in_flight_; }
  const ProtocolConfig& config() const { return config_; }

  /// Install (or clear) the two-phase commit gate after construction —
  /// the runtime wires the control plane in once both exist.
  void set_commit_gate(decltype(ProtocolConfig::commit_gate) gate) {
    config_.commit_gate = std::move(gate);
  }

 private:
  struct GroupWork;
  // Data-plane capture + parity for one group (gw.full_exchange already
  // decided). The fast plane consumes the dirty log and folds in place;
  // the reference plane is the legacy flatten+diff+copy path. Both yield
  // bit-identical checkpoints, parity, metrics, and simulated timing.
  void capture_group_fast(
      GroupWork& gw, const RaidGroup& group,
      std::unordered_map<cluster::NodeId, Bytes>& captured_per_node,
      std::int64_t& capture_ns, std::int64_t& fold_ns);
  void capture_group_reference(
      GroupWork& gw, const RaidGroup& group,
      std::unordered_map<cluster::NodeId, Bytes>& captured_per_node,
      std::int64_t& capture_ns, std::int64_t& fold_ns);
  void on_member_arrival(std::uint64_t generation, std::size_t group_idx,
                         std::size_t member_idx, std::size_t holder_idx);
  /// One chunk of a (member, holder) stream landed: feed the delta-ingest
  /// reader (folding any newly in-order bytes into parity straight off the
  /// wire) and queue the chunk's share of simulated fold time on the holder
  /// CPU; the stream's last chunk also retires the exchange arrival.
  /// `wire_fraction` is chunk bytes / stream wire bytes (1.0 for unchunked
  /// and local/zero-wire contributions); `chunk_index` orders the chunk
  /// within its stream for the in-order ingest frontier.
  void on_chunk_arrival(std::uint64_t generation, std::size_t group_idx,
                        std::size_t member_idx, std::size_t holder_idx,
                        std::size_t chunk_index, double wire_fraction,
                        bool last);
  /// Advance the in-order ingest frontier of one (member, holder) stream
  /// past `chunk_index` and fold the newly contiguous bytes.
  void ingest_chunk(GroupWork& gw, std::size_t member_idx,
                    std::size_t holder_idx, std::size_t chunk_index);
  void on_group_parity_done(std::uint64_t generation,
                            std::size_t group_idx);
  /// An exchange stream exhausted its retransmission budget or deadline:
  /// abort the epoch and complete `done` with `committed = false`.
  void on_stream_failed(std::uint64_t generation, const std::string& reason);
  void try_commit(std::uint64_t generation);
  simkit::Resource& node_cpu(cluster::NodeId node);

  simkit::Simulator& sim_;
  cluster::ClusterManager& cluster_;
  DvdcState& state_;
  ProtocolConfig config_;

  // In-flight epoch.
  bool in_flight_ = false;
  std::uint64_t generation_ = 0;  // bumped by abort(); stale events no-op
  const PlacedPlan* plan_ = nullptr;
  checkpoint::Epoch epoch_ = 0;
  SimTime epoch_start_ = 0.0;
  SimTime overhead_ = 0.0;
  DoneCallback done_;
  EpochStats stats_;
  std::vector<std::unique_ptr<GroupWork>> work_;
  std::size_t groups_pending_ = 0;
  /// Exchange streams of the in-flight epoch; abort() cancels them so an
  /// aborted epoch's traffic stops occupying the fabric.
  std::vector<std::shared_ptr<net::ChunkedStream>> streams_;

  // Telemetry for the in-flight epoch. Phase spans exactly partition
  // [epoch_start_, commit]: quiesce | capture | resume | exchange |
  // parity | commit (see docs/OBSERVABILITY.md). Counters carry both the
  // epoch number and the coordinator generation so an aborted epoch's
  // re-run never double-counts.
  telemetry::SpanId epoch_span_ = telemetry::kNoSpan;
  telemetry::Labels epoch_labels_;
  std::size_t arrivals_pending_ = 0;  // (member, holder) streams in flight
  SimTime exchange_start_ = 0.0;
  SimTime parity_start_ = 0.0;
  SimTime commit_start_ = 0.0;

  std::unordered_map<cluster::NodeId, std::unique_ptr<simkit::Resource>>
      cpus_;

  // Fast-plane capture arena: one zeroed page reused to assemble x =
  // old^new per changed page (re-zeroed after each page), so capture
  // copies are O(dirty extent), not O(page). Grown to the largest member
  // page size; persists across epochs.
  std::vector<std::byte> arena_;
  // Fold-from-wire accounting for the in-flight epoch: wall time and
  // destination bytes folded at chunk arrival (reported at commit).
  std::int64_t ingest_fold_ns_ = 0;
  Bytes ingest_fold_bytes_ = 0;

  // Dirty-log ownership (fast plane only): the dirty generation observed
  // right after this coordinator's last clear_dirty() per VM. If the
  // image's generation no longer matches, some other consumer cleared the
  // log in between and the capture falls back to a full-image diff.
  std::unordered_map<vm::VmId, std::uint64_t> dirty_baseline_;
};

}  // namespace vdc::core
