#include "core/twolevel.hpp"

#include <algorithm>
#include <map>
#include <memory>
#include <utility>

#include "common/assert.hpp"
#include "common/log.hpp"

namespace vdc::core {

TwoLevelBackend::TwoLevelBackend(simkit::Simulator& sim,
                                 cluster::ClusterManager& cluster,
                                 ProtocolConfig protocol,
                                 RecoveryConfig recovery,
                                 WorkloadFactory workloads,
                                 TwoLevelConfig config,
                                 PlannerConfig planner)
    : sim_(sim),
      cluster_(cluster),
      workloads_(workloads),
      config_(config),
      dvdc_(sim, cluster, protocol, recovery, workloads, planner),
      nas_(sim, cluster.fabric(), config.nas) {
  VDC_REQUIRE(config.flush_every >= 1, "flush cadence must be >= 1");
  VDC_REQUIRE(workloads_ != nullptr, "two-level backend needs workloads");
}

void TwoLevelBackend::checkpoint(checkpoint::Epoch epoch, EpochDone done) {
  dvdc_.checkpoint(epoch, [this, epoch, done = std::move(done)](
                              const EpochStats& stats) {
    ++commit_counter_;
    if (commit_counter_ % config_.flush_every == 0) start_flush(epoch);
    done(stats);
  });
}

void TwoLevelBackend::start_flush(checkpoint::Epoch epoch) {
  // Snapshot the committed images NOW (content is exact); the NAS drain
  // happens in the background and does not suspend guests.
  auto staged = std::make_shared<
      std::unordered_map<vm::VmId, std::vector<std::byte>>>();
  auto staged_info =
      std::make_shared<std::unordered_map<vm::VmId, VmInfo>>();
  std::map<cluster::NodeId, Bytes> per_node;
  for (vm::VmId vmid : cluster_.all_vms()) {
    const auto loc = cluster_.locate(vmid);
    VDC_ASSERT(loc.has_value());
    const auto* cp = dvdc_.state().node_store(*loc).find(vmid, epoch);
    if (cp == nullptr) return;  // epoch already superseded; skip
    (*staged)[vmid] = cp->payload();
    (*staged_info)[vmid] = dvdc_.state().vm_info(vmid);
    per_node[*loc] += cp->size_bytes();
  }

  const std::uint64_t generation = ++flush_generation_;
  const std::uint64_t counter_at_flush = commit_counter_;
  auto pending = std::make_shared<std::size_t>(per_node.size());
  for (const auto& [node, bytes] : per_node) {
    nas_.store(cluster_.node(node).host(), bytes,
               [this, generation, counter_at_flush, staged, staged_info,
                epoch, pending] {
                 if (generation != flush_generation_) return;  // stale
                 if (--*pending > 0) return;
                 durable_ = *staged;
                 durable_info_ = *staged_info;
                 flushed_epoch_ = epoch;
                 flushed_counter_ = counter_at_flush;
                 auto& metrics = sim_.telemetry().metrics();
                 metrics.add("twolevel.flushes", 1.0);
                 for (const auto& [vmid, payload] : durable_)
                   metrics.add("twolevel.flush_bytes",
                               static_cast<double>(payload.size()));
                 VDC_DEBUG("twolevel", "epoch ", epoch,
                           " durable on the NAS");
               });
  }
}

void TwoLevelBackend::on_node_failure(cluster::NodeId victim) {
  // A failure invalidates any flush still in flight (its source epoch may
  // reference checkpoints the dead node held).
  ++flush_generation_;
  dvdc_.on_node_failure(victim);
}

bool TwoLevelBackend::abort_recovery() {
  if (restore_active_) {
    ++restore_generation_;
    restore_active_ = false;
    level2_pending_ = true;
    sim_.telemetry().metrics().add("recovery.aborted", 1.0);
    return true;
  }
  return dvdc_.abort_recovery();
}

void TwoLevelBackend::handle_failure(const std::vector<vm::VmId>& lost,
                                     RecoveryDone done) {
  if (level2_pending_ && !durable_.empty()) {
    level2_restore(std::move(done));
    return;
  }
  dvdc_.handle_failure(lost,
                       [this, done = std::move(done)](
                           const RecoveryStats& rs) mutable {
                         if (rs.success || durable_.empty()) {
                           done(rs);
                           return;
                         }
                         VDC_INFO("twolevel",
                                  "diskless recovery impossible (",
                                  rs.reason,
                                  "); restoring the durable NAS level");
                         level2_restore(std::move(done));
                       });
}

void TwoLevelBackend::level2_restore(RecoveryDone done) {
  const SimTime start = sim_.now();
  const std::uint64_t rgen = ++restore_generation_;
  restore_active_ = true;
  for (cluster::NodeId nid : cluster_.alive_nodes())
    cluster_.node(nid).hypervisor().pause_all();

  // Re-create whatever is missing and roll everything back to the durable
  // images (content now; the NAS read time is charged below).
  std::map<cluster::NodeId, Bytes> per_node;
  for (const auto& [vmid, payload] : durable_) {
    auto loc = cluster_.locate(vmid);
    if (!loc.has_value()) {
      // Least-loaded alive node hosts the re-created guest.
      cluster::NodeId target = cluster_.alive_nodes().front();
      std::size_t best = ~std::size_t{0};
      for (cluster::NodeId nid : cluster_.alive_nodes()) {
        const std::size_t load =
            cluster_.node(nid).hypervisor().vm_count();
        if (load < best) {
          best = load;
          target = nid;
        }
      }
      const VmInfo& info = durable_info_.at(vmid);
      auto machine = std::make_unique<vm::VirtualMachine>(
          vmid, info.name, info.page_size, info.page_count,
          workloads_(vmid));
      machine->pause();
      cluster_.place(std::move(machine), target);
      loc = target;
    }
    cluster_.machine(vmid).image().restore(payload);
    per_node[*loc] += payload.size();
  }

  // How far this durable level lags the committed DVDC epoch. The state
  // wipe and counter reset happen at completion, NOT here: an aborted
  // restore must leave the bookkeeping intact so the cascaded retry still
  // reports the right rollback depth.
  const std::uint32_t rolled_back =
      static_cast<std::uint32_t>(commit_counter_ - flushed_counter_);

  // Timing: every node fetches its images back from the NAS, then the
  // local restore + resume.
  auto pending = std::make_shared<std::size_t>(per_node.size());
  Bytes worst = 0;
  for (const auto& [node, bytes] : per_node) worst = std::max(worst, bytes);
  const SimTime local_stall =
      static_cast<double>(worst) / config_.restore_rate +
      config_.resume_time;

  auto finish = [this, rgen, start, rolled_back, local_stall,
                 done = std::move(done)]() mutable {
    if (rgen != restore_generation_) return;  // aborted
    sim_.after(local_stall, [this, rgen, start, rolled_back,
                             done = std::move(done)]() mutable {
      if (rgen != restore_generation_) return;  // aborted
      restore_active_ = false;
      level2_pending_ = false;
      // The DVDC level restarts from this baseline: fresh stripes next
      // epoch.
      dvdc_.on_job_restart();
      commit_counter_ = 0;
      flushed_counter_ = 0;
      ++level2_restores_;
      sim_.telemetry().metrics().add("twolevel.level2_restores", 1.0);
      for (cluster::NodeId nid : cluster_.alive_nodes())
        cluster_.node(nid).hypervisor().resume_all();
      RecoveryStats rs;
      rs.success = true;
      rs.epochs_rolled_back = rolled_back;
      rs.vms_recovered = durable_.size();
      rs.duration = sim_.now() - start;
      done(rs);
    });
  };
  if (per_node.empty()) {
    sim_.after(0.0, std::move(finish));
    return;
  }
  auto shared_finish =
      std::make_shared<decltype(finish)>(std::move(finish));
  for (const auto& [node, bytes] : per_node) {
    nas_.fetch(cluster_.node(node).host(), bytes,
               [pending, shared_finish] {
                 if (--*pending == 0) (*shared_finish)();
               });
  }
}

void TwoLevelBackend::on_job_restart() {
  dvdc_.on_job_restart();
  // A scratch restart is a new execution: the old durable images would
  // resurrect the abandoned one.
  durable_.clear();
  durable_info_.clear();
  flushed_epoch_ = 0;
  commit_counter_ = 0;
  flushed_counter_ = 0;
  ++flush_generation_;
  level2_pending_ = false;
}

}  // namespace vdc::core
