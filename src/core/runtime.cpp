#include "core/runtime.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <utility>

#include "common/assert.hpp"
#include "common/log.hpp"

namespace vdc::core {

namespace {
controlplane::ControlEntry control_record(
    controlplane::ControlEntry::Kind kind, std::uint64_t value,
    std::uint64_t arg = 0) {
  controlplane::ControlEntry entry;
  entry.kind = kind;
  entry.value = value;
  entry.arg = arg;
  return entry;
}
}  // namespace

WorkloadFactory make_workload_factory(const ClusterConfig& config) {
  return [config](vm::VmId) -> std::unique_ptr<vm::Workload> {
    if (config.write_rate <= 0.0)
      return std::make_unique<vm::IdleWorkload>();
    return std::make_unique<vm::HotColdWorkload>(
        config.write_rate, config.hot_fraction, config.hot_probability);
  };
}

JobRunner::JobRunner(JobConfig job, ClusterConfig cluster_config,
                     BackendFactory backend_factory)
    : job_(job),
      cluster_config_(cluster_config),
      backend_factory_(std::move(backend_factory)),
      rng_(job.seed) {
  VDC_REQUIRE(job.total_work > 0.0, "job needs positive work");
  VDC_REQUIRE(backend_factory_ != nullptr, "backend factory required");
}

void JobRunner::boot_cluster() {
  cluster_ = std::make_unique<cluster::ClusterManager>(sim_, rng_.fork());
  auto workloads = make_workload_factory(cluster_config_);
  for (std::uint32_t n = 0; n < cluster_config_.nodes; ++n)
    cluster_->add_node(cluster_config_.node_spec);
  if (cluster_config_.zero_fraction > 0.0)
    cluster_->set_boot_zero_fraction(cluster_config_.zero_fraction);
  for (std::uint32_t n = 0; n < cluster_config_.nodes; ++n) {
    for (std::uint32_t v = 0; v < cluster_config_.vms_per_node; ++v) {
      cluster_->boot_vm(n, cluster_config_.page_size,
                        cluster_config_.pages_per_vm, workloads(0));
    }
  }
}

SimTime JobRunner::current_work() const {
  if (!computing_) return work_at_resume_;
  return work_at_resume_ + (sim_.now() - resume_time_);
}

void JobRunner::settle_workloads() {
  const SimTime w = current_work();
  const SimTime dt = w - advanced_work_;
  if (dt > 0.0) {
    cluster_->advance_workloads(dt);
    advanced_work_ = w;
  }
}

RunResult JobRunner::run() {
  detector_.reset();  // must not outlive a previous run's cluster
  zombies_.clear();
  pending_rejoins_.clear();
  boot_cluster();
  backend_ = backend_factory_(sim_, *cluster_, rng_);

  if (job_.ambient_link_fault.has_value()) {
    auto& faults = cluster_->fabric().faults();
    for (std::uint32_t n = 0; n < cluster_config_.nodes; ++n)
      faults.set_host_fault(cluster_->node(n).host(),
                            *job_.ambient_link_fault);
  }
  traffic_.reset();
  if (job_.traffic.has_value()) {
    // The plane's Rng is built directly from (seed, salt) — NOT forked
    // from rng_ — so the cluster/backend/injector fork chain is identical
    // with traffic on or off (the bit-identity satellite invariant). The
    // client host is added after every node host, so node host ids are
    // unchanged too.
    Rng traffic_rng(job_.seed ^
                    (job_.traffic->seed * 0x9e3779b97f4a7c15ull) ^
                    0x53525645ull /* "SRVE" */);
    traffic_ = std::make_unique<workload::TrafficPlane>(
        sim_, *cluster_, *job_.traffic, traffic_rng);
    traffic_->start();
  }
  control_.reset();
  pending_entries_.clear();
  logged_plan_version_ = 0;
  commit_gate_used_ = false;
  capture_wait_seq_ = 0;
  recovery_wait_seq_ = 0;
  if (job_.control.has_value()) {
    // Same independent-stream discipline as the serving plane: enabling
    // the control plane must leave the cluster/backend/injector fork chain
    // untouched (the zero-coordinator-fault bit-identity invariant).
    Rng control_rng(job_.seed ^
                    (job_.control->seed * 0x9e3779b97f4a7c15ull) ^
                    0x4354524cull /* "CTRL" */);
    control_ = std::make_unique<controlplane::ControlPlane>(
        sim_, *cluster_, *job_.control, control_rng);
    // A zombie behind a partition keeps its replica running — that is the
    // deposed-leader scenario the fencing integration exists for.
    control_->set_live_predicate([this](controlplane::NodeId id) {
      return cluster_->node(id).alive() || zombies_.count(id) != 0;
    });
    control_->set_on_leader_change(
        [this](controlplane::NodeId, controlplane::Term) {
          drain_pending_entries();
        });
    control_->start();
    // Epoch commit becomes a two-phase quorum transaction on backends
    // with a gated commit point (DVDC); others keep the default no-op.
    backend_->set_commit_gate(
        [this](checkpoint::Epoch epoch, SimTime earliest,
               std::function<void(bool)> proceed) {
          gate_epoch_commit(epoch, earliest, std::move(proceed));
        });
  }
  if (job_.heartbeat.has_value()) {
    detector_ = std::make_unique<cluster::HeartbeatDetector>(
        sim_, *cluster_, *job_.heartbeat);
    // Observer node 0 stands in for the coordinator's vantage point; a
    // zombie counts as live so its beats keep probing the partition.
    detector_->set_wire_mode(
        cluster_->fabric(), 0, [this](cluster::NodeId id) {
          return cluster_->node(id).alive() || zombies_.count(id) != 0;
        });
    detector_->set_on_false_positive(
        [this](cluster::NodeId id) { on_false_positive(id); });
    detector_->start([this](cluster::NodeId id, SimTime latency) {
      on_detected(id, latency);
    });
  }

  result_ = RunResult{};
  result_.total_work = job_.total_work;
  current_interval_ = job_.interval_policy
                          ? job_.interval_policy->initial_interval()
                          : job_.interval;
  committed_work_ = 0.0;
  work_at_resume_ = 0.0;
  resume_time_ = sim_.now();
  advanced_work_ = 0.0;
  computing_ = true;
  recovering_ = false;
  finished_ = false;

  // Failure source, most specific wins: a scripted schedule beats per-node
  // clocks beats the aggregate cluster process.
  if (!job_.failure_schedule.empty()) {
    auto scripted = std::make_unique<failure::ScheduledFailureInjector>(
        sim_, job_.failure_schedule);
    scripted->set_on_event([this](const failure::ScheduledFailure& ev) {
      on_fault_event(ev);
    });
    injector_ = std::move(scripted);
  } else if (job_.node_ttf) {
    injector_ = std::make_unique<failure::FleetFailureInjector>(
        sim_, rng_.fork(), job_.node_ttf, cluster_config_.nodes,
        job_.node_repair_time);
  } else if (job_.lambda > 0.0 || !job_.failure_trace.empty()) {
    std::shared_ptr<failure::TtfDistribution> ttf;
    if (!job_.failure_trace.empty())
      ttf = std::make_shared<failure::TraceTtf>(job_.failure_trace);
    else
      ttf = std::make_shared<failure::ExponentialTtf>(job_.lambda);
    injector_ = std::make_unique<failure::ClusterFailureInjector>(
        sim_, rng_.fork(), std::move(ttf), cluster_config_.nodes);
  }
  if (injector_) {
    const bool exact = injector_->exact_targets();
    injector_->start([this, exact](failure::NodeId victim) {
      on_failure_event(victim, exact);
    });
  }

  schedule_segment();

  while (!finished_) {
    if (!sim_.step()) break;
    if (sim_.executed() > job_.max_events) {
      VDC_WARN("runtime", "event budget exhausted; giving up");
      break;
    }
  }
  if (injector_) injector_->stop();
  if (detector_) detector_->stop();
  if (control_) control_->stop();
  if (traffic_) traffic_->stop();

  result_.finished = finished_;
  if (finished_) {
    result_.completion = sim_.now();
    result_.time_ratio = result_.completion / job_.total_work;
  }

  // RunResult is a façade over the run's metrics registry: every counter
  // below was written where the event happened, the struct is derived
  // here once at the end.
  const auto& metrics = sim_.telemetry().metrics();
  result_.epochs = static_cast<std::uint32_t>(metrics.value("job.epochs"));
  result_.failures =
      static_cast<std::uint32_t>(metrics.value("job.failures"));
  result_.failures_during_recovery = static_cast<std::uint32_t>(
      metrics.value("job.failures_during_recovery"));
  result_.recovery_cascades =
      static_cast<std::uint32_t>(metrics.value("recovery.cascades"));
  result_.job_restarts =
      static_cast<std::uint32_t>(metrics.value("job.restarts"));
  result_.total_overhead = metrics.value("job.overhead_s");
  result_.checkpoint_latency_sum = metrics.value("job.latency_s");
  result_.total_recovery = metrics.value("job.recovery_s");
  result_.lost_work = metrics.value("job.lost_work_s");
  result_.bytes_shipped =
      static_cast<Bytes>(metrics.value("job.bytes_shipped"));
  result_.peak_state_bytes =
      static_cast<Bytes>(metrics.peak("dvdc.state_bytes"));
  return result_;
}

void JobRunner::schedule_segment() {
  VDC_ASSERT(computing_ && !recovering_);
  // A capture deferred on await_leader() belongs to the segment that was
  // running when it deferred; a new segment supersedes it.
  ++capture_wait_seq_;
  if (pending_event_ != simkit::kInvalidEvent) sim_.cancel(pending_event_);

  const SimTime w = current_work();
  const bool checkpointing = current_interval_ > 0.0;
  const SimTime target =
      checkpointing
          ? std::min(committed_work_ + current_interval_, job_.total_work)
          : job_.total_work;

  if (!checkpointing || target >= job_.total_work - 1e-12) {
    // Final stretch: run to completion, no trailing checkpoint needed.
    const SimTime remaining = std::max(0.0, job_.total_work - w);
    pending_event_ = sim_.after(remaining, [this] {
      pending_event_ = simkit::kInvalidEvent;
      settle_workloads();
      finished_ = true;
      if (injector_) injector_->stop();
    });
    return;
  }

  const SimTime until_capture = std::max(0.0, target - w);
  pending_event_ = sim_.after(until_capture, [this] {
    pending_event_ = simkit::kInvalidEvent;
    on_capture_point();
  });
}

void JobRunner::on_capture_point() {
  if (control_ && !control_->leader().has_value()) {
    // Leaderless: a cut decided now could not be quorum-logged, so the
    // capture waits for the election. Guests keep computing meanwhile —
    // the cut just lands later. The seq guard drops the waiter if a
    // failure/recovery/new segment moved the job on first.
    const std::uint64_t seq = capture_wait_seq_;
    control_->await_leader([this, seq](controlplane::NodeId) {
      if (finished_ || recovering_ || !computing_ ||
          seq != capture_wait_seq_)
        return;
      on_capture_point();
    });
    return;
  }
  settle_workloads();
  work_at_resume_ = current_work();
  computing_ = false;
  for (cluster::NodeId nid : cluster_->alive_nodes())
    cluster_->node(nid).hypervisor().pause_all();

  const SimTime cut_time = sim_.now();
  const SimTime cut_work = work_at_resume_;
  const checkpoint::Epoch epoch = backend_->committed_epoch() + 1;

  if (control_) {
    const std::uint64_t pv = cluster_->placement_map().version();
    if (pv != logged_plan_version_) {
      logged_plan_version_ = pv;
      log_entry(control_record(
          controlplane::ControlEntry::Kind::kPlanVersion, pv));
    }
    log_entry(control_record(
        controlplane::ControlEntry::Kind::kEpochCut, epoch));
  }

  backend_->checkpoint(epoch, [this, cut_time, cut_work, epoch](
                                  const EpochStats& stats) {
    auto& metrics = sim_.telemetry().metrics();
    if (!stats.committed) {
      // The epoch died on the wire (an exchange stream exhausted its
      // retransmission budget/deadline). The previous committed cut
      // stands; resume the guests and try again. Work done since the cut
      // is simply uncheckpointed, not lost.
      metrics.add("job.epochs_failed", 1.0);
      log_entry(control_record(
          controlplane::ControlEntry::Kind::kEpochAbort, epoch));
      // Output commit: egress buffered for this epoch would have exposed
      // state that never became durable — drop it; clients retry.
      if (traffic_) traffic_->on_epoch_abort();
      for (cluster::NodeId nid : cluster_->alive_nodes())
        cluster_->node(nid).hypervisor().resume_all();
      computing_ = true;
      resume_time_ = sim_.now();
      schedule_segment();
      return;
    }
    metrics.add("job.epochs", 1.0);
    // Gated backends quorum-log kEpochCommit inside gate_epoch_commit;
    // for the rest the commit record lands here (view apply is idempotent
    // either way).
    if (!commit_gate_used_)
      log_entry(control_record(
          controlplane::ControlEntry::Kind::kEpochCommit, epoch));
    // Sample the epoch window's held-egress peak before the commit
    // releases the buffer and resets the window.
    const Bytes held_window = traffic_ ? traffic_->held_peak_window() : 0;
    // Output commit: the cut is durable, buffered egress may now reach
    // clients.
    if (traffic_) traffic_->on_epoch_commit(epoch);
    metrics.add("job.overhead_s", stats.overhead);
    metrics.add("job.latency_s", stats.latency);
    metrics.add("job.bytes_shipped",
                static_cast<double>(stats.bytes_shipped));
    committed_work_ = cut_work;
    notify(JobEvent::Kind::EpochCommit);
    if (job_.interval_policy) {
      EpochStats observed = stats;
      observed.held_egress_peak = held_window;
      current_interval_ = job_.interval_policy->next_interval(observed);
    }

    // Where did the guests actually resume?
    const SimTime early = backend_->early_resume_delay();
    resume_time_ = early >= 0.0 ? cut_time + early : sim_.now();
    VDC_ASSERT(resume_time_ <= sim_.now() + 1e-9);
    computing_ = true;
    schedule_segment();
  });
}

void JobRunner::on_failure_event(cluster::NodeId raw_victim, bool exact) {
  if (finished_) return;
  auto& metrics = sim_.telemetry().metrics();

  cluster::NodeId victim = 0;
  if (exact) {
    // Scripted / per-node sources name real node ids; a strike on a node
    // that is already down (e.g. scheduled inside its own detect window)
    // fails nothing new.
    if (raw_victim >= cluster_->node_count() ||
        !cluster_->node(raw_victim).alive()) {
      // ...except when the "down" node is a zombie: the partitioned-but-
      // running hardware really dies now, so its beats stop for good
      // (and its control-plane replica, if any, loses its volatile state).
      if (raw_victim < cluster_->node_count() &&
          zombies_.erase(raw_victim) != 0 && control_)
        control_->on_node_death(raw_victim);
      metrics.add("job.failures_skipped", 1.0);
      return;
    }
    victim = raw_victim;
  } else {
    const auto alive = cluster_->alive_nodes();
    if (alive.empty()) {
      metrics.add("job.failures_skipped", 1.0);
      return;
    }
    victim = alive[raw_victim % alive.size()];
  }
  metrics.add("job.failures", 1.0);

  if (recovering_) {
    on_cascade_failure(victim);
    return;
  }

  // Work since the last committed cut is lost.
  const SimTime w = current_work();
  metrics.add("job.lost_work_s", std::max(0.0, w - committed_work_));
  computing_ = false;
  work_at_resume_ = committed_work_;
  if (pending_event_ != simkit::kInvalidEvent) {
    sim_.cancel(pending_event_);
    pending_event_ = simkit::kInvalidEvent;
  }
  backend_->abort_checkpoint();

  const std::vector<vm::VmId> lost =
      cluster_->node(victim).hypervisor().vm_ids();
  cluster_->kill_node(victim);
  backend_->on_node_failure(victim);
  // Replica hardware died: volatile raft state goes with it. This runs
  // BEFORE log_entry so a record about the dead leader routes through
  // (or queues for) its successor, never through the corpse.
  if (control_) control_->on_node_death(victim);
  log_entry(control_record(
      controlplane::ControlEntry::Kind::kNodeFailed, victim));
  if (traffic_) {
    // The cluster will roll back to the committed cut: uncommitted egress
    // is dropped before any client can see it, and the victim's service
    // queue dies with the node.
    traffic_->on_failover_begin();
    traffic_->on_node_failure(lost);
  }
  recovering_ = true;
  cluster_->set_degraded(true);
  log_entry(control_record(
      controlplane::ControlEntry::Kind::kRecoveryBegin, victim));

  episode_ = Episode{};
  episode_.start = sim_.now();
  episode_.victims.push_back(victim);
  episode_.lost = lost;
  notify(JobEvent::Kind::Failure, victim);

  // Root span for the whole recovery episode; the backend's manager nests
  // reconstruct/replace/rollback under this root while it stays open.
  auto& tel = sim_.telemetry();
  const telemetry::Labels victim_labels{{"victim", std::to_string(victim)}};
  episode_.span = tel.begin_span("recovery", victim_labels);

  if (detector_) {
    // Wire-true detection: the victim just falls silent. Recovery arms
    // when the detector times out on it; the detect span is recorded then
    // with the latency actually measured (on_detected).
    cluster_->fence_node(victim, backend_->committed_epoch() + 1);
    log_entry(control_record(controlplane::ControlEntry::Kind::kNodeFenced,
                             victim, backend_->committed_epoch() + 1));
    detector_->note_failure(victim, sim_.now());
    episode_.awaiting.insert(victim);
    episode_.on_detected = [this] { start_recovery_attempt(); };
    return;
  }

  // Oracle detection: charge the fixed delay.
  tel.record_span("recovery.detect", sim_.now(),
                  sim_.now() + job_.detection_time, victim_labels,
                  episode_.span);
  episode_.pending = sim_.after(job_.detection_time, [this] {
    episode_.pending = simkit::kInvalidEvent;
    start_recovery_attempt();
  });
}

void JobRunner::on_cascade_failure(cluster::NodeId victim,
                                   bool already_detected) {
  auto& tel = sim_.telemetry();
  auto& metrics = tel.metrics();
  metrics.add("job.failures_during_recovery", 1.0);
  metrics.add("recovery.cascades", 1.0);
  ++episode_.cascades;

  const std::vector<vm::VmId> lost =
      cluster_->node(victim).hypervisor().vm_ids();
  cluster_->kill_node(victim);
  backend_->on_node_failure(victim);
  // A suspected (zombie) victim folding in is physically alive behind the
  // partition — its replica keeps running; only real deaths reset one.
  if (control_ && zombies_.count(victim) == 0)
    control_->on_node_death(victim);
  log_entry(control_record(
      controlplane::ControlEntry::Kind::kNodeFailed, victim));
  ++recovery_wait_seq_;  // a deferred attempt is stale against the new victim
  if (traffic_) traffic_->on_node_failure(lost);
  if (std::find(episode_.victims.begin(), episode_.victims.end(), victim) ==
      episode_.victims.end())
    episode_.victims.push_back(victim);
  // Union: a re-struck node may host VMs already in the lost set
  // (re-placed by the aborted attempt).
  for (vm::VmId vmid : lost)
    if (std::find(episode_.lost.begin(), episode_.lost.end(), vmid) ==
        episode_.lost.end())
      episode_.lost.push_back(vmid);

  // Whatever the episode had in flight is now stale: an armed attempt is
  // descheduled, an active reconstruction aborted (its callback must not
  // fire against the extended lost-set).
  if (episode_.pending != simkit::kInvalidEvent) {
    sim_.cancel(episode_.pending);
    episode_.pending = simkit::kInvalidEvent;
  }
  if (episode_.backend_active) {
    backend_->abort_recovery();
    episode_.backend_active = false;
  }
  notify(JobEvent::Kind::Cascade, victim);

  const telemetry::Labels victim_labels{{"victim", std::to_string(victim)}};

  if (detector_) {
    // Wire mode: a fresh victim must time out on the detector before the
    // episode can move again; a suspicion folding in already has.
    cluster_->fence_node(victim, backend_->committed_epoch() + 1);
    log_entry(control_record(controlplane::ControlEntry::Kind::kNodeFenced,
                             victim, backend_->committed_epoch() + 1));
    if (!already_detected) {
      detector_->note_failure(victim, sim_.now());
      episode_.awaiting.insert(victim);
    }
    const SimTime backoff =
        episode_.restarting ? 0.0 : retry_backoff(episode_.attempts + 1);
    const bool restarting = episode_.restarting;
    episode_.on_detected = [this, backoff, restarting] {
      if (restarting) {
        restart_job(episode_.lost);
        return;
      }
      if (backoff > 0.0)
        sim_.telemetry().record_span(
            "recovery.retry", sim_.now(), sim_.now() + backoff,
            {{"attempt", std::to_string(episode_.attempts + 1)}},
            episode_.span);
      episode_.pending = sim_.after(backoff, [this] {
        episode_.pending = simkit::kInvalidEvent;
        start_recovery_attempt();
      });
    };
    if (episode_.awaiting.empty()) {
      auto cont = std::move(episode_.on_detected);
      episode_.on_detected = nullptr;
      cont();
    }
    return;
  }

  tel.record_span("recovery.detect", sim_.now(),
                  sim_.now() + job_.detection_time, victim_labels,
                  episode_.span);

  if (episode_.restarting) {
    // The episode already escalated to a job restart; fold the new victim
    // in and restart again once its failure is detected.
    episode_.pending = sim_.after(job_.detection_time, [this] {
      episode_.pending = simkit::kInvalidEvent;
      restart_job(episode_.lost);
    });
    return;
  }

  const SimTime backoff = retry_backoff(episode_.attempts + 1);
  if (backoff > 0.0)
    tel.record_span("recovery.retry", sim_.now() + job_.detection_time,
                    sim_.now() + job_.detection_time + backoff,
                    {{"attempt", std::to_string(episode_.attempts + 1)}},
                    episode_.span);
  episode_.pending = sim_.after(job_.detection_time + backoff, [this] {
    episode_.pending = simkit::kInvalidEvent;
    start_recovery_attempt();
  });
}

void JobRunner::on_detected(cluster::NodeId node, SimTime latency) {
  if (finished_) return;
  if (recovering_ && episode_.awaiting.count(node) != 0) {
    // A victim's silence has now actually been observed; the detect span
    // covers the measured window, not a fixed charge.
    sim_.telemetry().record_span(
        "recovery.detect", sim_.now() - latency, sim_.now(),
        {{"victim", std::to_string(node)}}, episode_.span);
    episode_.awaiting.erase(node);
    if (episode_.awaiting.empty() && episode_.on_detected) {
      auto cont = std::move(episode_.on_detected);
      episode_.on_detected = nullptr;
      cont();
    }
    return;
  }
  // Unawaited detection of a live node: the fabric ate its beats — a
  // false positive in the making (partition / gray link). A stale
  // detection of an already-handled dead node is ignored.
  if (node < cluster_->node_count() && cluster_->node(node).alive())
    on_suspected(node, latency);
}

void JobRunner::on_suspected(cluster::NodeId victim, SimTime latency) {
  auto& tel = sim_.telemetry();
  auto& metrics = tel.metrics();
  metrics.add("job.suspected_failures", 1.0);
  VDC_INFO("runtime", "node ", victim,
           " suspected failed (no beats); declaring it dead");
  // The cluster acts on its belief: the unreachable node is declared
  // dead, its VMs are written off (to be recovered elsewhere), and the
  // node is fenced so any stale write it later attempts is rejected. If
  // it was alive all along, a beat getting through exposes the mistake.
  zombies_.insert(victim);

  if (recovering_) {
    on_cascade_failure(victim, /*already_detected=*/true);
    return;
  }

  // Mirror of on_failure_event's healthy-state path, with detection
  // already satisfied — the timeout that fired IS the detection.
  const SimTime w = current_work();
  metrics.add("job.lost_work_s", std::max(0.0, w - committed_work_));
  computing_ = false;
  work_at_resume_ = committed_work_;
  if (pending_event_ != simkit::kInvalidEvent) {
    sim_.cancel(pending_event_);
    pending_event_ = simkit::kInvalidEvent;
  }
  backend_->abort_checkpoint();

  const std::vector<vm::VmId> lost =
      cluster_->node(victim).hypervisor().vm_ids();
  cluster_->kill_node(victim);
  backend_->on_node_failure(victim);
  // No control_->on_node_death: the suspect is physically alive behind
  // the partition, so its replica keeps running — fencing (below) is what
  // keeps a deposed zombie leader out of the quorum.
  log_entry(control_record(
      controlplane::ControlEntry::Kind::kNodeFailed, victim));
  if (traffic_) {
    traffic_->on_failover_begin();
    traffic_->on_node_failure(lost);
  }
  cluster_->fence_node(victim, backend_->committed_epoch() + 1);
  log_entry(control_record(controlplane::ControlEntry::Kind::kNodeFenced,
                           victim, backend_->committed_epoch() + 1));
  recovering_ = true;
  cluster_->set_degraded(true);
  log_entry(control_record(
      controlplane::ControlEntry::Kind::kRecoveryBegin, victim));

  episode_ = Episode{};
  episode_.start = sim_.now();
  episode_.victims.push_back(victim);
  episode_.lost = lost;
  notify(JobEvent::Kind::Failure, victim);

  const telemetry::Labels victim_labels{{"victim", std::to_string(victim)}};
  episode_.span = tel.begin_span("recovery", victim_labels);
  tel.record_span("recovery.detect", sim_.now() - latency, sim_.now(),
                  victim_labels, episode_.span);
  start_recovery_attempt();
}

void JobRunner::on_false_positive(cluster::NodeId node) {
  if (finished_ || zombies_.count(node) == 0) return;
  // The zombie resurfaced and immediately tries to resume its old role —
  // starting with its stale checkpoint/parity writes. Its fence token is
  // stale, so the writes are rejected; only then may it rejoin, empty.
  sim_.telemetry().metrics().add("recovery.fenced", 1.0);
  VDC_INFO("runtime", "node ", node,
           " reappeared (false-positive detection); stale writes fenced");
  if (recovering_) {
    // Mid-episode: reconcile once the episode settles, so the rejoin
    // can't race the reconstruction that replaced this node's VMs.
    pending_rejoins_.push_back(node);
    return;
  }
  rejoin_node(node);
}

void JobRunner::rejoin_node(cluster::NodeId node) {
  // `alive()` is the cluster's BELIEF: a suspected zombie was kill_node'd
  // on suspicion, so it reads dead here even though the hardware (and its
  // control replica) kept running the whole time.
  const bool was_zombie = zombies_.erase(node) != 0;
  const bool was_dead = !cluster_->node(node).alive();
  if (was_dead) cluster_->revive_node(node);
  cluster_->lift_fence(node);
  if (detector_) detector_->note_repair(node);
  // A physically revived replica rejoins the quorum empty (unsynced); a
  // zombie's replica never died — lifting the fence is all it needs.
  // Wiping a zombie here can strand the quorum: wipe two of three
  // replicas with no leader seated and nobody can ever be elected.
  if (control_ && was_dead && !was_zombie) control_->on_node_rejoin(node);
  log_entry(control_record(
      controlplane::ControlEntry::Kind::kNodeRejoined, node));
}

void JobRunner::drain_rejoins() {
  if (pending_rejoins_.empty()) return;
  auto pending = std::move(pending_rejoins_);
  pending_rejoins_.clear();
  for (cluster::NodeId node : pending)
    if (zombies_.count(node) != 0) rejoin_node(node);
}

void JobRunner::on_fault_event(const failure::ScheduledFailure& ev) {
  using Kind = failure::ScheduledFailure::Kind;
  if (finished_) return;
  switch (ev.kind) {
    case Kind::kFail:
      break;  // delivered through the failure callback, not here
    case Kind::kRepair:
      if (ev.node >= cluster_->node_count()) return;
      if (!cluster_->node(ev.node).alive() || zombies_.count(ev.node) != 0)
        rejoin_node(ev.node);
      break;
    case Kind::kLink: {
      if (ev.node >= cluster_->node_count()) return;
      net::LinkFault fault;
      fault.drop = ev.drop;
      fault.corrupt = ev.corrupt;
      fault.extra_latency = ev.latency;
      fault.jitter = ev.jitter;
      fault.rate_factor = ev.rate;
      auto& faults = cluster_->fabric().faults();
      const net::HostId src = cluster_->node(ev.node).host();
      if (ev.peer == failure::ScheduledFailure::kAllNodes) {
        faults.set_host_fault(src, fault);
        if (fault.rate_factor != 1.0)
          cluster_->fabric().set_host_rate_factor(src, fault.rate_factor);
      } else {
        if (ev.peer >= cluster_->node_count()) return;
        faults.set_link_fault(src, cluster_->node(ev.peer).host(), fault);
      }
      break;
    }
    case Kind::kPartition:
      if (ev.node >= cluster_->node_count()) return;
      cluster_->fabric().faults().set_partition_group(
          cluster_->node(ev.node).host(), ev.group);
      break;
    case Kind::kHeal: {
      auto& faults = cluster_->fabric().faults();
      if (ev.node == failure::ScheduledFailure::kAllNodes) {
        faults.heal_all();
        for (std::uint32_t n = 0; n < cluster_config_.nodes; ++n)
          cluster_->fabric().set_host_rate_factor(
              cluster_->node(n).host(), 1.0);
      } else {
        if (ev.node >= cluster_->node_count()) return;
        const net::HostId host = cluster_->node(ev.node).host();
        faults.heal(host);
        cluster_->fabric().set_host_rate_factor(host, 1.0);
      }
      break;
    }
    case Kind::kKillLeader: {
      // The victim is resolved at fire time: whoever leads the control
      // plane now (node 0, the implicit coordinator, without one). During
      // an election gap there is no leader to kill — the strike fizzles.
      const auto target = leader_target();
      if (!target.has_value() || *target >= cluster_->node_count()) {
        sim_.telemetry().metrics().add("job.failures_skipped", 1.0);
        return;
      }
      on_failure_event(*target, /*exact=*/true);
      break;
    }
    case Kind::kPartitionLeader: {
      const auto target = leader_target();
      if (!target.has_value() || *target >= cluster_->node_count()) return;
      cluster_->fabric().faults().set_partition_group(
          cluster_->node(*target).host(), ev.group);
      break;
    }
  }
}

SimTime JobRunner::retry_backoff(std::uint32_t next_attempt) const {
  if (next_attempt <= 1 || job_.recovery_backoff <= 0.0) return 0.0;
  return job_.recovery_backoff *
         std::ldexp(1.0, static_cast<int>(next_attempt) - 2);
}

void JobRunner::start_recovery_attempt() {
  VDC_ASSERT(recovering_ && !episode_.backend_active);
  auto& metrics = sim_.telemetry().metrics();
  if (episode_.attempts >= job_.max_recovery_attempts) {
    // Retry budget exhausted: stop reconstructing, escalate to a restart.
    metrics.add("recovery.failures", 1.0, {{"reason", "attempt_budget"}});
    RecoveryStats rs;
    rs.success = false;
    rs.reason = "recovery attempt budget exhausted (" +
                std::to_string(job_.max_recovery_attempts) + " attempts)";
    on_recovery_settled(rs);
    return;
  }
  // Oracle mode keeps the constant-cluster-size assumption behind the
  // Section V model's flat T_r: the failed machines are rebooted/replaced
  // by the time reconstruction starts, so recovery can re-place the lost
  // VMs onto them. With wire-true detection a dead node stays down until
  // a scripted repair or a false-positive rejoin brings it back — reviving
  // it here would restart its heartbeats and fake a resurrection. Revive
  // BEFORE the leader gate below: the quorum may need these replicas back
  // before it can elect the leader the attempt waits on.
  if (!detector_) {
    for (cluster::NodeId nid : episode_.victims)
      if (!cluster_->node(nid).alive()) {
        cluster_->revive_node(nid);
        if (control_) control_->on_node_rejoin(nid);
        log_entry(control_record(
            controlplane::ControlEntry::Kind::kNodeRejoined, nid));
      }
  }

  if (control_ && !control_->leader().has_value()) {
    // Leaderless: recovery decisions must be quorum-logged to be
    // replayable on takeover, so the attempt waits for the election. The
    // seq guard drops the waiter if a cascade/settle moved the episode on.
    const std::uint64_t seq = ++recovery_wait_seq_;
    control_->await_leader([this, seq](controlplane::NodeId) {
      if (finished_ || !recovering_ || episode_.backend_active ||
          episode_.pending != simkit::kInvalidEvent ||
          seq != recovery_wait_seq_)
        return;
      start_recovery_attempt();
    });
    return;
  }

  ++episode_.attempts;
  metrics.add("recovery.attempts", 1.0);

  // Only what is still missing: an aborted earlier attempt may already
  // have re-placed some of the episode's lost VMs (exact committed-epoch
  // state, so they stay).
  std::vector<vm::VmId> missing;
  for (vm::VmId vmid : episode_.lost)
    if (!cluster_->locate(vmid).has_value()) missing.push_back(vmid);

  episode_.backend_active = true;
  backend_->handle_failure(missing, [this](const RecoveryStats& rs) {
    episode_.backend_active = false;
    on_recovery_settled(rs);
  });
}

void JobRunner::on_recovery_settled(const RecoveryStats& rs) {
  auto& tel = sim_.telemetry();
  auto& metrics = tel.metrics();
  ++recovery_wait_seq_;  // any deferred attempt is now stale
  log_entry(control_record(controlplane::ControlEntry::Kind::kRecoverySettled,
                           episode_.attempts, rs.success ? 1 : 0));
  tel.end_span(episode_.span);
  episode_.span = telemetry::kNoSpan;
  metrics.add("job.recovery_s", sim_.now() - episode_.start);
  if (rs.success) {
    if (rs.epochs_rolled_back > 0) {
      // A multilevel backend restored an older durable level: roll the
      // work watermark back by that many intervals (exact for fixed
      // intervals, the policy's current value otherwise).
      const SimTime regress =
          rs.epochs_rolled_back *
          (current_interval_ > 0 ? current_interval_ : job_.interval);
      metrics.add("job.lost_work_s", std::min(committed_work_, regress));
      committed_work_ = std::max(0.0, committed_work_ - regress);
      notify(JobEvent::Kind::Rollback);
    }
    recovering_ = false;
    cluster_->set_degraded(false);
    drain_rejoins();
    // An attempt that settled trivially (everything already re-placed by
    // an aborted predecessor) never went through the manager's resume;
    // resume_all is idempotent for guests already running.
    for (cluster::NodeId nid : cluster_->alive_nodes())
      cluster_->node(nid).hypervisor().resume_all();
    // Serving resumes; client-visible downtime keeps running until the
    // first post-recovery response actually reaches a client.
    if (traffic_) traffic_->on_failover_end();
    computing_ = true;
    resume_time_ = sim_.now();
    work_at_resume_ = committed_work_;
    advanced_work_ = committed_work_;
    notify(JobEvent::Kind::RecoverySettled, 0, true);
    schedule_segment();
  } else {
    metrics.add("job.restarts", 1.0);
    VDC_INFO("runtime", "job restart at t=", sim_.now(), ": ", rs.reason);
    episode_.restarting = true;
    notify(JobEvent::Kind::RecoverySettled, 0, false);
    restart_job(episode_.lost);
  }
}

void JobRunner::notify(JobEvent::Kind kind, cluster::NodeId node,
                       bool success) {
  if (!job_.observer) return;
  JobEvent ev;
  ev.kind = kind;
  ev.time = sim_.now();
  ev.committed_work = committed_work_;
  ev.node = node;
  ev.success = success;
  job_.observer(ev);
}

void JobRunner::restart_job(const std::vector<vm::VmId>& missing) {
  // Unrecoverable: re-create whatever is gone with fresh images and start
  // the job over. Victims that never made it through a reconstruction
  // attempt (give-up path) are still down; in oracle mode bring the
  // hardware back first (wire mode leaves them down — see
  // start_recovery_attempt).
  ++recovery_wait_seq_;  // any deferred attempt is now stale
  if (!detector_) {
    for (cluster::NodeId nid : episode_.victims)
      if (!cluster_->node(nid).alive()) {
        cluster_->revive_node(nid);
        if (control_) control_->on_node_rejoin(nid);
        log_entry(control_record(
            controlplane::ControlEntry::Kind::kNodeRejoined, nid));
      }
  }
  log_entry(control_record(
      controlplane::ControlEntry::Kind::kJobRestart, 0));
  auto workloads = make_workload_factory(cluster_config_);
  for (vm::VmId vmid : missing) {
    if (cluster_->locate(vmid).has_value()) continue;
    // Least-loaded alive node.
    cluster::NodeId target = cluster_->alive_nodes().front();
    std::size_t best = ~std::size_t{0};
    for (cluster::NodeId nid : cluster_->alive_nodes()) {
      const std::size_t load = cluster_->node(nid).hypervisor().vm_count();
      if (load < best) {
        best = load;
        target = nid;
      }
    }
    auto machine = std::make_unique<vm::VirtualMachine>(
        vmid, "vm" + std::to_string(vmid), cluster_config_.page_size,
        cluster_config_.pages_per_vm, workloads(vmid));
    Rng boot = rng_.fork();
    machine->image().fill_random(boot);
    machine->image().clear_dirty();
    machine->pause();
    cluster_->place(std::move(machine), target);
  }
  backend_->on_job_restart();
  // Epoch numbering starts over with the fresh job; any held egress is
  // from an execution that no longer exists.
  if (traffic_) traffic_->on_restart();
  committed_work_ = 0.0;
  work_at_resume_ = 0.0;
  advanced_work_ = 0.0;
  notify(JobEvent::Kind::Restart);

  // `recovering_` stays up through the restart window so a failure in it
  // routes through the cascade path (cancel this event, fold the victim
  // in, restart again).
  episode_.pending = sim_.after(job_.restart_time, [this] {
    episode_.pending = simkit::kInvalidEvent;
    for (cluster::NodeId nid : cluster_->alive_nodes())
      cluster_->node(nid).hypervisor().resume_all();
    recovering_ = false;
    cluster_->set_degraded(false);
    drain_rejoins();
    if (traffic_) traffic_->on_failover_end();
    computing_ = true;
    resume_time_ = sim_.now();
    schedule_segment();
  });
}

void JobRunner::log_entry(const controlplane::ControlEntry& entry) {
  if (!control_) return;
  // Self-healing append: a record that lands in a leader's log but never
  // commits there (the leader dies, or a deposed zombie held it) is
  // re-proposed through the successor — in original order, because waiter
  // callbacks fail in append order at the leader change. Leaderless
  // appends queue for the next election (drain_pending_entries).
  const bool appended = control_->append(
      entry, [this, entry](bool committed) {
        if (!committed) log_entry(entry);
      });
  if (!appended) pending_entries_.push_back(entry);
}

void JobRunner::drain_pending_entries() {
  if (!control_) return;
  std::vector<controlplane::ControlEntry> queued;
  queued.swap(pending_entries_);
  for (const auto& entry : queued) log_entry(entry);
}

void JobRunner::gate_epoch_commit(checkpoint::Epoch epoch, SimTime earliest,
                                  std::function<void(bool)> proceed) {
  VDC_ASSERT(control_ != nullptr);
  commit_gate_used_ = true;
  // Two-phase commit: the epoch finishes only when (a) the quorum has the
  // kEpochCommit record AND (b) the protocol's own commit point
  // (`earliest`) has passed. On a clean fabric the quorum round-trip
  // beats commit_latency, so the gate adds no time — gated and ungated
  // runs commit at the same instant (the bit-identity invariant). A
  // quorum rejection (leader killed/deposed before the record committed)
  // aborts the epoch; the runtime retries it wholesale, and the view's
  // idempotent apply absorbs a re-proposal of an orphaned commit record.
  struct Gate {
    bool quorum = false;
    bool due = false;
    bool done = false;
    std::function<void(bool)> proceed;
  };
  auto gate = std::make_shared<Gate>();
  gate->proceed = std::move(proceed);
  auto resolve = [gate](bool ok) {
    if (gate->done) return;
    if (!ok) {
      gate->done = true;
      gate->proceed(false);
      return;
    }
    if (gate->quorum && gate->due) {
      gate->done = true;
      gate->proceed(true);
    }
  };
  const bool appended = control_->append(
      control_record(controlplane::ControlEntry::Kind::kEpochCommit, epoch),
      [gate, resolve](bool committed) {
        gate->quorum = committed;
        resolve(committed);
      });
  if (!appended) {
    // Leaderless at the commit point: abort; the epoch is re-cut/retried
    // once the election settles.
    resolve(false);
    return;
  }
  sim_.at(earliest, [gate, resolve] {
    gate->due = true;
    resolve(true);
  });
}

std::optional<cluster::NodeId> JobRunner::leader_target() const {
  if (!control_) return cluster::NodeId{0};
  const auto l = control_->leader();
  if (!l.has_value()) return std::nullopt;
  return static_cast<cluster::NodeId>(*l);
}

// --- DVDC backend ------------------------------------------------------------

namespace {
PlannerConfig with_scheme_reserve(PlannerConfig planner,
                                  const ProtocolConfig& protocol) {
  // Auto-sized groups must leave one node per parity block eligible.
  if (planner.group_size == 0 && planner.parity_reserve == 1)
    planner.parity_reserve = static_cast<std::uint32_t>(
        parity_width(protocol.scheme, protocol.rs_parity));
  return planner;
}
}  // namespace

DvdcBackend::DvdcBackend(simkit::Simulator& sim,
                         cluster::ClusterManager& cluster,
                         ProtocolConfig protocol, RecoveryConfig recovery,
                         WorkloadFactory workloads, PlannerConfig planner)
    : cluster_(cluster),
      protocol_config_(protocol),
      coordinator_(sim, cluster, state_, protocol),
      recovery_(sim, cluster, state_, std::move(workloads), recovery),
      planner_(with_scheme_reserve(planner, protocol)) {}

void DvdcBackend::ensure_plan() {
  // Fast path: nothing in the cluster moved since the plan was last
  // validated (the pool-map stamp covers node joins/drains AND VM
  // placement churn), so skip even the O(plan) orthogonality walk.
  const auto stamp = cluster_.placement_map().stamp();
  if (placed_.has_value() && validated_stamp_ == stamp) return;
  if (placed_.has_value() && placed_->still_orthogonal(cluster_)) {
    validated_stamp_ = stamp;
    return;
  }
  // Consume the pool-map bump incrementally: intact groups survive the
  // replan verbatim, only broken ones re-form (and re-exchange).
  GroupPlan next = placed_.has_value()
                       ? planner_.replan(placed_->plan, cluster_)
                       : planner_.plan(cluster_);
  auto& metrics = cluster_.sim().telemetry().metrics();
  metrics.add("plan.rebuilds", 1.0);
  if (placed_.has_value()) {
    std::set<std::vector<vm::VmId>> prev_groups;
    for (const auto& g : placed_->plan.groups) prev_groups.insert(g.members);
    std::size_t reused = 0;
    for (const auto& g : next.groups) reused += prev_groups.count(g.members);
    metrics.set("plan.groups_reused", static_cast<double>(reused));
  }
  metrics.set("plan.map_version", static_cast<double>(next.map_version));
  placed_ = PlacedPlan::make(std::move(next), cluster_,
                             protocol_config_.scheme,
                             protocol_config_.rs_parity);
  validated_stamp_ = stamp;
}

const PlacedPlan& DvdcBackend::placed_plan() {
  ensure_plan();
  return *placed_;
}

void DvdcBackend::checkpoint(checkpoint::Epoch epoch, EpochDone done) {
  ensure_plan();
  coordinator_.run_epoch(*placed_, epoch,
                         [this, done = std::move(done)](
                             const EpochStats& stats) {
                           // The committed stripes now match this plan.
                           committed_plan_ = placed_;
                           done(stats);
                         });
}

SimTime DvdcBackend::early_resume_delay() const {
  return protocol_config_.copy_on_write ? protocol_config_.base_overhead
                                        : -1.0;
}

void DvdcBackend::abort_checkpoint() { coordinator_.abort(); }

void DvdcBackend::on_node_failure(cluster::NodeId victim) {
  // Everything the node held — checkpoint shards AND parity blocks — is
  // gone the instant it dies, so a cascading second failure sees the
  // stripe damage of both victims combined.
  state_.drop_node(victim);
}

bool DvdcBackend::abort_recovery() { return recovery_.abort(); }

void DvdcBackend::handle_failure(const std::vector<vm::VmId>& lost,
                                 RecoveryDone done) {
  if (lost.empty()) {
    // Nothing left to reconstruct (the victims held no guests, or an
    // aborted earlier attempt already re-placed everything). Parity
    // blocks may still be gone; the next epoch re-plans and rebuilds
    // them with a full exchange.
    placed_.reset();
    RecoveryStats rs;
    rs.success = true;
    done(rs);
    return;
  }
  if (!committed_plan_.has_value()) {
    // No epoch has ever committed: there is nothing to recover from.
    RecoveryStats rs;
    rs.success = false;
    rs.reason = "no committed checkpoint plan yet";
    done(rs);
    return;
  }
  // Recover against the plan whose stripes are committed — NOT the
  // (possibly re-planned) next-epoch plan.
  recovery_.recover(*committed_plan_, lost,
                    [this, done = std::move(done)](const RecoveryStats& rs) {
                      if (rs.success && placed_.has_value() &&
                          !placed_->still_orthogonal(cluster_)) {
                        // Placement changed: the NEXT epoch needs a fresh
                        // plan (full exchange); the committed plan stays
                        // usable for recovery until then.
                        placed_.reset();
                      }
                      done(rs);
                    });
}

void DvdcBackend::on_job_restart() {
  // Stale stripes would roll the fresh job back into the old execution.
  placed_.reset();
  committed_plan_.reset();
  // Parity records die with their groups; the next epoch re-plans and
  // does a full exchange.
  state_ = DvdcState{};
}

}  // namespace vdc::core
