#pragma once
// Span sinks: where finished spans (and, at flush, the metrics snapshot)
// go.
//
//  * InMemorySink     — buffers everything; the test and assertion sink.
//  * JsonlSink        — one JSON object per line, spans as they end and
//                       metrics at flush. Easy to grep / load into pandas.
//  * ChromeTraceSink  — Chrome trace-event JSON ("complete" X events,
//                       sim-seconds mapped to trace microseconds). Open
//                       the file in chrome://tracing or https://ui.perfetto.dev.

#include <fstream>
#include <string>
#include <vector>

#include "telemetry/telemetry.hpp"

namespace vdc::telemetry {

/// Buffers spans (and the flushed metrics snapshot) in memory.
class InMemorySink final : public SpanSink {
 public:
  void on_span(const SpanRecord& span) override { spans_.push_back(span); }
  void flush(const MetricsRegistry& metrics) override;

  const std::vector<SpanRecord>& spans() const { return spans_; }

  /// Spans with the given name, in emission order.
  std::vector<SpanRecord> named(std::string_view name) const;

  /// Flushed metric snapshot rows (empty before the first flush()).
  const std::vector<Metric>& metrics() const { return metrics_; }

  void clear() {
    spans_.clear();
    metrics_.clear();
  }

 private:
  std::vector<SpanRecord> spans_;
  std::vector<Metric> metrics_;
};

/// Streams one JSON object per line:
///   {"type":"span","name":...,"id":N,"parent":N,"start":s,"end":s,
///    "labels":{...}}
///   {"type":"counter"|"gauge"|"histogram","name":...,"labels":{...},...}
class JsonlSink final : public SpanSink {
 public:
  explicit JsonlSink(const std::string& path);

  void on_span(const SpanRecord& span) override;
  void flush(const MetricsRegistry& metrics) override;

  bool ok() const { return out_.good(); }

 private:
  std::ofstream out_;
};

/// Buffers spans and writes a complete Chrome trace-event file at flush()
/// (or destruction, whichever comes first).
class ChromeTraceSink final : public SpanSink {
 public:
  /// `process_name` labels the trace's single process row.
  explicit ChromeTraceSink(std::string path,
                           std::string process_name = "vdc");
  ~ChromeTraceSink() override;

  void on_span(const SpanRecord& span) override { spans_.push_back(span); }
  void flush(const MetricsRegistry& metrics) override;

 private:
  void write(const MetricsRegistry* metrics);

  std::string path_;
  std::string process_name_;
  std::vector<SpanRecord> spans_;
  bool written_ = false;
};

}  // namespace vdc::telemetry
