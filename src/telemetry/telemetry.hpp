#pragma once
// Structured telemetry: a metrics registry plus a sim-time span tracer.
//
// One `Telemetry` context lives inside each `simkit::Simulator` and stamps
// everything with *simulated* time, so traces and metrics line up with the
// discrete-event timeline rather than the host clock. Two tiers:
//
//  * The metrics registry (counters / gauges / histograms keyed by name +
//    labels) is ALWAYS on. Writes are one hash-map upsert per event —
//    events here means protocol-level occurrences (an epoch commit, a
//    fabric transfer), never per-byte work — so the registry is cheap
//    enough to leave enabled everywhere. The flat end-of-run structs
//    (`EpochStats`, `RunResult`, ...) are derived from it.
//
//  * Span tracing is OFF by default (`set_enabled`). When enabled, begin/
//    end (or pre-timed `record_span`) events flow to attached sinks
//    (in-memory for tests, JSONL, Chrome trace-event JSON — see
//    sinks.hpp). When disabled, `begin_span` returns `kNoSpan` and emits
//    nothing.
//
// Span parents nest: `begin_span` defaults its parent to the innermost
// still-open span, which gives RAII nesting (`ScopedSpan`) for synchronous
// code and lets event-driven code pass an explicit parent instead.
// See docs/OBSERVABILITY.md for the metric and span name catalog.

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/stats.hpp"

namespace vdc::telemetry {

/// One metric/span label. Labels are order-insensitive: the registry
/// canonicalizes by key, so {a=1,b=2} and {b=2,a=1} name the same series.
struct Label {
  std::string key;
  std::string value;
};
using Labels = std::vector<Label>;

/// Escape a string for embedding inside a JSON string literal.
std::string json_escape(std::string_view s);

enum class MetricKind { Counter, Gauge, Histogram };

struct Metric {
  MetricKind kind = MetricKind::Counter;
  std::string name;
  Labels labels;              // canonical (key-sorted) order
  double value = 0.0;         // counter: running total; gauge: last set
  double peak = 0.0;          // gauge high-water mark
  Samples samples;            // histogram observations
};

/// Counters, gauges and histograms keyed by (name, labels).
class MetricsRegistry {
 public:
  /// Add `delta` to a counter (created at zero on first use).
  void add(std::string_view name, double delta, const Labels& labels = {});

  /// Set a gauge; its `peak` tracks the highest value ever set.
  void set(std::string_view name, double v, const Labels& labels = {});

  /// Record one histogram observation.
  void observe(std::string_view name, double v, const Labels& labels = {});

  /// Counter total / gauge current value; 0.0 when the series is absent.
  double value(std::string_view name, const Labels& labels = {}) const;

  /// Gauge high-water mark; 0.0 when the series is absent.
  double peak(std::string_view name, const Labels& labels = {}) const;

  /// Full metric record, or nullptr when absent.
  const Metric* find(std::string_view name, const Labels& labels = {}) const;

  /// Every series, sorted by canonical key (deterministic export order).
  std::vector<const Metric*> all() const;

  std::size_t size() const { return metrics_.size(); }
  void clear() { metrics_.clear(); }

 private:
  Metric& upsert(MetricKind kind, std::string_view name,
                 const Labels& labels);
  // Keyed by "name\x1fk=v\x1fk=v" with labels key-sorted.
  std::unordered_map<std::string, Metric> metrics_;
};

using SpanId = std::uint64_t;
constexpr SpanId kNoSpan = 0;

/// A finished span: a named sim-time interval with labels and a parent.
struct SpanRecord {
  SpanId id = kNoSpan;
  SpanId parent = kNoSpan;
  std::string name;
  Labels labels;
  double start = 0.0;  // sim seconds
  double end = 0.0;
  double duration() const { return end - start; }
};

/// Receives finished spans as they end; `flush` gets the metrics snapshot.
class SpanSink {
 public:
  virtual ~SpanSink() = default;
  virtual void on_span(const SpanRecord& span) = 0;
  virtual void flush(const MetricsRegistry& /*metrics*/) {}
};

class Telemetry {
 public:
  /// `clock` points at the owner's sim-time (seconds); nullptr reads 0.0
  /// (useful for pure unit tests). The pointer must outlive the context.
  explicit Telemetry(const double* clock = nullptr) : clock_(clock) {}
  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  /// Span tracing gate. The metrics registry is unaffected (always on).
  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  double now() const { return clock_ ? *clock_ : 0.0; }

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  void add_sink(std::shared_ptr<SpanSink> sink);

  /// Push the metrics snapshot into every sink (file sinks write here).
  void flush();

  /// Open a span starting now. `parent == kNoSpan` nests under the
  /// innermost open span. Returns kNoSpan (and records nothing) when
  /// tracing is disabled.
  SpanId begin_span(std::string_view name, Labels labels = {},
                    SpanId parent = kNoSpan);

  /// Close an open span (any order; ids need not close LIFO) and emit it.
  /// No-op on kNoSpan or an unknown id.
  void end_span(SpanId id);

  /// Emit a span with explicit, already-known timestamps — for phases
  /// whose boundaries are computed rather than observed.
  void record_span(std::string_view name, double start, double end,
                   Labels labels = {}, SpanId parent = kNoSpan);

  /// Innermost open span (kNoSpan when none / tracing disabled).
  SpanId current_span() const {
    return open_.empty() ? kNoSpan : open_.back().id;
  }
  std::size_t open_spans() const { return open_.size(); }

 private:
  void emit(const SpanRecord& span);

  const double* clock_;
  bool enabled_ = false;
  std::uint64_t next_id_ = 1;
  MetricsRegistry metrics_;
  std::vector<SpanRecord> open_;  // innermost open span at the back
  std::vector<std::shared_ptr<SpanSink>> sinks_;
};

/// RAII span for synchronous scopes.
class ScopedSpan {
 public:
  ScopedSpan(Telemetry& telemetry, std::string_view name, Labels labels = {})
      : telemetry_(telemetry),
        id_(telemetry.begin_span(name, std::move(labels))) {}
  ~ScopedSpan() { telemetry_.end_span(id_); }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  SpanId id() const { return id_; }

 private:
  Telemetry& telemetry_;
  SpanId id_;
};

}  // namespace vdc::telemetry
