#include "telemetry/sinks.hpp"

#include <cinttypes>
#include <utility>

namespace vdc::telemetry {

namespace {

std::string labels_json(const Labels& labels) {
  std::string out = "{";
  bool first = true;
  for (const auto& label : labels) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += json_escape(label.key);
    out += "\":\"";
    out += json_escape(label.value);
    out += '"';
  }
  out += '}';
  return out;
}

std::string metric_json(const Metric& metric) {
  char buf[320];  // seven %.17g fields at up to 24 chars each, plus keys
  std::string out = "{\"type\":\"";
  switch (metric.kind) {
    case MetricKind::Counter:
      out += "counter";
      break;
    case MetricKind::Gauge:
      out += "gauge";
      break;
    case MetricKind::Histogram:
      out += "histogram";
      break;
  }
  out += "\",\"name\":\"";
  out += json_escape(metric.name);
  out += "\",\"labels\":";
  out += labels_json(metric.labels);
  switch (metric.kind) {
    case MetricKind::Counter:
      std::snprintf(buf, sizeof buf, ",\"value\":%.17g", metric.value);
      out += buf;
      break;
    case MetricKind::Gauge:
      std::snprintf(buf, sizeof buf, ",\"value\":%.17g,\"peak\":%.17g",
                    metric.value, metric.peak);
      out += buf;
      break;
    case MetricKind::Histogram: {
      const auto& s = metric.samples;
      std::snprintf(buf, sizeof buf,
                    ",\"count\":%zu,\"mean\":%.17g,\"p50\":%.17g,"
                    "\"p99\":%.17g,\"p999\":%.17g,\"min\":%.17g,\"max\":%.17g",
                    s.count(), s.mean(), s.percentile(50.0),
                    s.percentile(99.0), s.percentile(99.9),
                    s.percentile(0.0), s.percentile(100.0));
      out += buf;
      break;
    }
  }
  out += '}';
  return out;
}

}  // namespace

void InMemorySink::flush(const MetricsRegistry& metrics) {
  metrics_.clear();
  for (const Metric* metric : metrics.all()) metrics_.push_back(*metric);
}

std::vector<SpanRecord> InMemorySink::named(std::string_view name) const {
  std::vector<SpanRecord> out;
  for (const auto& span : spans_)
    if (span.name == name) out.push_back(span);
  return out;
}

JsonlSink::JsonlSink(const std::string& path) : out_(path) {}

void JsonlSink::on_span(const SpanRecord& span) {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "\"id\":%" PRIu64 ",\"parent\":%" PRIu64
                ",\"start\":%.9f,\"end\":%.9f",
                span.id, span.parent, span.start, span.end);
  out_ << "{\"type\":\"span\",\"name\":\"" << json_escape(span.name)
       << "\"," << buf << ",\"labels\":" << labels_json(span.labels)
       << "}\n";
}

void JsonlSink::flush(const MetricsRegistry& metrics) {
  for (const Metric* metric : metrics.all())
    out_ << metric_json(*metric) << "\n";
  out_.flush();
}

ChromeTraceSink::ChromeTraceSink(std::string path, std::string process_name)
    : path_(std::move(path)), process_name_(std::move(process_name)) {}

ChromeTraceSink::~ChromeTraceSink() {
  if (!written_) write(nullptr);
}

void ChromeTraceSink::flush(const MetricsRegistry& metrics) {
  write(&metrics);
}

void ChromeTraceSink::write(const MetricsRegistry* metrics) {
  std::ofstream out(path_);
  if (!out.good()) return;
  written_ = true;

  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  out << "{\"ph\":\"M\",\"pid\":1,\"name\":\"process_name\",\"args\":"
         "{\"name\":\""
      << json_escape(process_name_) << "\"}}";

  char buf[128];
  for (const auto& span : spans_) {
    // Sim seconds -> trace microseconds.
    std::snprintf(buf, sizeof buf, "\"ts\":%.3f,\"dur\":%.3f",
                  span.start * 1e6, span.duration() * 1e6);
    out << ",\n{\"ph\":\"X\",\"pid\":1,\"tid\":1,\"name\":\""
        << json_escape(span.name) << "\"," << buf
        << ",\"args\":" << labels_json(span.labels) << "}";
  }
  out << "\n]";
  if (metrics != nullptr) {
    // Final metric totals, greppable from the same file.
    out << ",\"metrics\":[\n";
    bool first = true;
    for (const Metric* metric : metrics->all()) {
      if (!first) out << ",\n";
      first = false;
      out << metric_json(*metric);
    }
    out << "\n]";
  }
  out << "}\n";
}

}  // namespace vdc::telemetry
