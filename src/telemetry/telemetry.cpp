#include "telemetry/telemetry.hpp"

#include <algorithm>
#include <cstdio>
#include <utility>

namespace vdc::telemetry {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

Labels canonical(Labels labels) {
  std::sort(labels.begin(), labels.end(),
            [](const Label& a, const Label& b) { return a.key < b.key; });
  return labels;
}

std::string key_of(std::string_view name, const Labels& sorted) {
  std::string key(name);
  for (const auto& label : sorted) {
    key += '\x1f';
    key += label.key;
    key += '=';
    key += label.value;
  }
  return key;
}

}  // namespace

Metric& MetricsRegistry::upsert(MetricKind kind, std::string_view name,
                                const Labels& labels) {
  Labels sorted = canonical(labels);
  const std::string key = key_of(name, sorted);
  auto it = metrics_.find(key);
  if (it == metrics_.end()) {
    Metric metric;
    metric.kind = kind;
    metric.name = std::string(name);
    metric.labels = std::move(sorted);
    it = metrics_.emplace(key, std::move(metric)).first;
  }
  return it->second;
}

void MetricsRegistry::add(std::string_view name, double delta,
                          const Labels& labels) {
  upsert(MetricKind::Counter, name, labels).value += delta;
}

void MetricsRegistry::set(std::string_view name, double v,
                          const Labels& labels) {
  Metric& metric = upsert(MetricKind::Gauge, name, labels);
  metric.value = v;
  metric.peak = std::max(metric.peak, v);
}

void MetricsRegistry::observe(std::string_view name, double v,
                              const Labels& labels) {
  upsert(MetricKind::Histogram, name, labels).samples.add(v);
}

const Metric* MetricsRegistry::find(std::string_view name,
                                    const Labels& labels) const {
  const auto it = metrics_.find(key_of(name, canonical(labels)));
  return it == metrics_.end() ? nullptr : &it->second;
}

double MetricsRegistry::value(std::string_view name,
                              const Labels& labels) const {
  const Metric* metric = find(name, labels);
  return metric ? metric->value : 0.0;
}

double MetricsRegistry::peak(std::string_view name,
                             const Labels& labels) const {
  const Metric* metric = find(name, labels);
  return metric ? metric->peak : 0.0;
}

std::vector<const Metric*> MetricsRegistry::all() const {
  std::vector<std::pair<const std::string*, const Metric*>> rows;
  rows.reserve(metrics_.size());
  for (const auto& [key, metric] : metrics_) rows.emplace_back(&key, &metric);
  std::sort(rows.begin(), rows.end(),
            [](const auto& a, const auto& b) { return *a.first < *b.first; });
  std::vector<const Metric*> out;
  out.reserve(rows.size());
  for (const auto& [key, metric] : rows) out.push_back(metric);
  return out;
}

void Telemetry::add_sink(std::shared_ptr<SpanSink> sink) {
  if (sink) sinks_.push_back(std::move(sink));
}

void Telemetry::flush() {
  for (const auto& sink : sinks_) sink->flush(metrics_);
}

SpanId Telemetry::begin_span(std::string_view name, Labels labels,
                             SpanId parent) {
  if (!enabled_) return kNoSpan;
  SpanRecord span;
  span.id = next_id_++;
  span.parent = parent == kNoSpan ? current_span() : parent;
  span.name = std::string(name);
  span.labels = std::move(labels);
  span.start = now();
  open_.push_back(std::move(span));
  return open_.back().id;
}

void Telemetry::end_span(SpanId id) {
  if (id == kNoSpan) return;
  for (auto it = open_.begin(); it != open_.end(); ++it) {
    if (it->id != id) continue;
    SpanRecord span = std::move(*it);
    open_.erase(it);
    span.end = now();
    emit(span);
    return;
  }
}

void Telemetry::record_span(std::string_view name, double start, double end,
                            Labels labels, SpanId parent) {
  if (!enabled_) return;
  SpanRecord span;
  span.id = next_id_++;
  span.parent = parent == kNoSpan ? current_span() : parent;
  span.name = std::string(name);
  span.labels = std::move(labels);
  span.start = start;
  span.end = end;
  emit(span);
}

void Telemetry::emit(const SpanRecord& span) {
  for (const auto& sink : sinks_) sink->on_span(span);
}

}  // namespace vdc::telemetry
