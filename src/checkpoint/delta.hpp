#pragma once
// Page-granular checkpoint increments.
//
// An increment is the set of pages dirtied since the previous checkpoint,
// with their new contents. For transport it can be compressed: each page is
// XORed against its previous contents and zero-run-length encoded, which is
// the "compressed differences" technique the paper inherits from Plank
// (Section II-B.1) and reuses for migration traffic (Section IV-C).

#include <cstdint>
#include <span>
#include <vector>

#include "common/units.hpp"
#include "vm/memory_image.hpp"

namespace vdc::checkpoint {

struct PageDelta {
  Bytes page_size = 0;
  std::vector<vm::PageIndex> pages;              // ascending
  std::vector<std::vector<std::byte>> contents;  // new bytes per page

  std::size_t page_count() const { return pages.size(); }
  /// Uncompressed transport size.
  Bytes raw_bytes() const { return page_size * pages.size(); }
};

/// Capture the dirty pages of `image` as a delta. If `clear_dirty`, the
/// dirty log is reset (checkpoint epoch boundary).
PageDelta capture_delta(vm::MemoryImage& image, bool clear_dirty = true);

/// Content diff of two equal-sized flat images: the delta holds every page
/// whose bytes actually changed (a subset of the hypervisor dirty log,
/// since rewrites of identical bytes are excluded). Used by the DVDC
/// protocol, which must stay correct across aborted epochs where the
/// dirty log has already been consumed.
PageDelta diff_images(std::span<const std::byte> old_image,
                      std::span<const std::byte> new_image, Bytes page_size);

/// Apply a delta onto a flat base image in place.
void apply_delta(std::vector<std::byte>& base, const PageDelta& delta);

/// One delta record, already encoded for the wire. Encoding is chosen per
/// record: zero-run RLE of x = old^new, or — when the nonzero bytes cluster
/// at the front — the raw prefix through the last nonzero byte ("trim"),
/// whichever is smaller. The decoder zero-fills past a raw prefix.
struct EncodedRecord {
  std::vector<std::byte> bytes;  // chosen encoding
  bool raw = false;              // true: trimmed raw prefix, not RLE
  std::uint32_t trim_len = 0;    // bytes through the last nonzero byte of x
};

/// Encode one x = old^new record, picking min(RLE, trim) with ties going to
/// RLE. Both the fast and reference data planes must funnel through this
/// single encoder so frames stay byte-identical.
EncodedRecord encode_record(std::span<const std::byte> x);

struct CompressedDelta {
  Bytes page_size = 0;
  std::vector<vm::PageIndex> pages;
  std::vector<std::vector<std::byte>> payload;  // encoded x per page
  // Per-page raw-mode flags, parallel to `pages`. Empty means all-RLE
  // (backward compatible with hand-built deltas).
  std::vector<std::uint8_t> raw;
  // Trim-only transport size of the payloads (sum of trim_len): what a
  // trim-only encoder would have shipped, for compression accounting.
  Bytes trim_payload_bytes = 0;

  std::size_t page_count() const { return pages.size(); }
  bool is_raw(std::size_t i) const { return i < raw.size() && raw[i] != 0; }
  /// Compressed transport size (payload bytes + per-page index overhead).
  Bytes wire_bytes() const;
};

/// Compress `delta` against the previous full image `base` (flat bytes).
CompressedDelta compress_delta(const PageDelta& delta,
                               std::span<const std::byte> base);

/// Invert compress_delta given the same base.
PageDelta decompress_delta(const CompressedDelta& compressed,
                           std::span<const std::byte> base);

}  // namespace vdc::checkpoint
