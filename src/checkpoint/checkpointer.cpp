#include "checkpoint/checkpointer.hpp"

#include <utility>

#include "common/assert.hpp"

namespace vdc::checkpoint {

Checkpoint FullCheckpointer::capture(const vm::VirtualMachine& machine,
                                     Epoch epoch) const {
  Checkpoint cp;
  cp.vm = machine.id();
  cp.epoch = epoch;
  cp.page_size = machine.image().page_size();
  cp.payload = machine.image().flatten();
  return cp;
}

IncrementalCheckpointer::Result IncrementalCheckpointer::capture(
    vm::VirtualMachine& machine, Epoch epoch) {
  Result result;
  auto& image = machine.image();

  auto it = bases_.find(machine.id());
  if (it == bases_.end()) {
    // First epoch: the delta is the whole image.
    image.mark_all_dirty();
    it = bases_.emplace(machine.id(), std::vector<std::byte>(
                                          image.size_bytes())).first;
  }
  std::vector<std::byte>& base = it->second;

  result.delta = capture_delta(image, /*clear_dirty=*/true);
  result.shipped_raw = result.delta.raw_bytes();
  if (base.size() == image.size_bytes() && result.delta.page_count() > 0) {
    // Compression is measured against the previous base (zero-filled on
    // the first epoch, which still compresses well for sparse images).
    result.shipped_compressed =
        compress_delta(result.delta, base).wire_bytes();
  }

  apply_delta(base, result.delta);

  result.checkpoint.vm = machine.id();
  result.checkpoint.epoch = epoch;
  result.checkpoint.page_size = image.page_size();
  result.checkpoint.payload = base;  // copy: the store owns its bytes
  return result;
}

const std::vector<std::byte>& IncrementalCheckpointer::base(
    vm::VmId vm) const {
  auto it = bases_.find(vm);
  VDC_REQUIRE(it != bases_.end(), "no incremental base for this VM");
  return it->second;
}

ForkedCheckpointer::Result ForkedCheckpointer::materialize(
    const vm::VirtualMachine& machine,
    std::unique_ptr<vm::CowSnapshot> snapshot, Epoch epoch) const {
  VDC_REQUIRE(snapshot != nullptr, "materialize: null snapshot");
  Result result;
  result.preserved_pages = snapshot->preserved_page_count();
  result.checkpoint.vm = machine.id();
  result.checkpoint.epoch = epoch;
  result.checkpoint.page_size = snapshot->page_size();
  result.checkpoint.payload = snapshot->materialize();
  return result;
}

}  // namespace vdc::checkpoint
