#pragma once
// Checkpoint wire format.
//
// Checkpoints cross the fabric during the exchange, recovery and scrub
// phases; this frame format makes those transfers self-describing and
// integrity-checked:
//
//   offset  size  field
//        0     4  magic  "VDC1"
//        4     4  header crc32 (over bytes 8..39)
//        8     4  vm id
//       12     8  epoch
//       20     8  page size
//       28     8  payload length
//       36     4  payload crc32
//       40     n  payload bytes
//
// decode() rejects bad magic, truncated frames, and CRC mismatches with
// typed errors, so a corrupted frame can never be restored into a guest.
//
// The parity-delta wire path ships compressed page deltas instead of full
// payloads; those ride a sibling frame:
//
//   offset  size  field
//        0     4  magic  "VDD1"
//        4     4  header crc32 (over bytes 8..55)
//        8     4  vm id
//       12     8  epoch
//       20     8  base epoch (the committed epoch the delta applies over)
//       28     8  page size
//       36     8  page count
//       44     8  payload length
//       52     4  payload crc32
//       56     n  payload: page_count records of
//                   u32 page index, u32 record length, encoded(new xor old)
//
// Bit 31 of the record length is the encoding mode: clear = zero-run RLE,
// set = raw prefix of the xor through its last nonzero byte (the decoder
// zero-fills the remainder of the page). The low 31 bits are the encoded
// byte count either way.
//
// Both headers are fully covered by magic + CRCs: every single-bit flip
// anywhere in a frame is rejected (wire_test proves this exhaustively).

#include <cstdint>
#include <span>
#include <vector>

#include "checkpoint/checkpointer.hpp"
#include "checkpoint/delta.hpp"

namespace vdc::checkpoint {

/// A frame failed magic/CRC/shape validation.
class WireError : public Error {
 public:
  using Error::Error;
};

inline constexpr std::size_t kFrameHeaderSize = 40;       // "VDC1"
inline constexpr std::size_t kDeltaFrameHeaderSize = 56;  // "VDD1"
/// Bit 31 of a delta record's length field: raw-prefix mode.
inline constexpr std::uint32_t kRawRecordFlag = 0x8000'0000u;

/// Serialize a checkpoint into a framed byte vector.
std::vector<std::byte> encode_frame(const Checkpoint& checkpoint);

/// Parse and validate a frame. Throws WireError on any corruption.
Checkpoint decode_frame(std::span<const std::byte> frame);

/// Frame size for a payload of `payload_bytes` (header is 40 bytes).
constexpr std::size_t frame_size(std::size_t payload_bytes) {
  return 40 + payload_bytes;
}

/// A parity-delta in transit: the compressed changes of one VM between the
/// committed `base_epoch` and `epoch`. Parity holders fold the decoded
/// delta (new xor old per page) into their standing blocks in place.
struct CheckpointDelta {
  vm::VmId vm = 0;
  Epoch epoch = 0;
  Epoch base_epoch = 0;
  CompressedDelta delta;
};

/// Serialize a parity delta into a framed byte vector ("VDD1").
std::vector<std::byte> encode_delta_frame(const CheckpointDelta& delta);

/// Parse and validate a delta frame. Throws WireError on any corruption.
CheckpointDelta decode_delta_frame(std::span<const std::byte> frame);

/// Delta frame size for `page_count` records totalling `payload_bytes` of
/// compressed content (header is 56 bytes, each record adds 8).
constexpr std::size_t delta_frame_size(std::size_t page_count,
                                       std::size_t payload_bytes) {
  return 56 + 8 * page_count + payload_bytes;
}

/// Frame size of `delta` on the wire.
std::size_t delta_frame_size(const CompressedDelta& delta);

}  // namespace vdc::checkpoint
