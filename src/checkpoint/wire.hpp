#pragma once
// Checkpoint wire format.
//
// Checkpoints cross the fabric during the exchange, recovery and scrub
// phases; this frame format makes those transfers self-describing and
// integrity-checked:
//
//   offset  size  field
//        0     4  magic  "VDC1"
//        4     4  header crc32 (over bytes 8..39)
//        8     4  vm id
//       12     8  epoch
//       20     8  page size
//       28     8  payload length
//       36     4  payload crc32
//       40     n  payload bytes
//
// decode() rejects bad magic, truncated frames, and CRC mismatches with
// typed errors, so a corrupted frame can never be restored into a guest.

#include <cstdint>
#include <span>
#include <vector>

#include "checkpoint/checkpointer.hpp"

namespace vdc::checkpoint {

/// A frame failed magic/CRC/shape validation.
class WireError : public Error {
 public:
  using Error::Error;
};

/// Serialize a checkpoint into a framed byte vector.
std::vector<std::byte> encode_frame(const Checkpoint& checkpoint);

/// Parse and validate a frame. Throws WireError on any corruption.
Checkpoint decode_frame(std::span<const std::byte> frame);

/// Frame size for a payload of `payload_bytes` (header is 40 bytes).
constexpr std::size_t frame_size(std::size_t payload_bytes) {
  return 40 + payload_bytes;
}

}  // namespace vdc::checkpoint
