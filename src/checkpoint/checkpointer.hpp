#pragma once
// The three checkpoint variants from Plank's diskless checkpointing,
// lifted to the hypervisor level (paper Section II-B.2 / IV-A):
//
//  * FullCheckpointer     — "normal": stop-the-world copy of the image.
//  * IncrementalCheckpointer — ships only pages dirtied since the last
//    epoch; maintains the reconstructed full image per VM.
//  * ForkedCheckpointer   — copy-on-write fork: the guest resumes
//    immediately and the checkpoint content is read from the frozen view;
//    memory cost is only the pages dirtied while the fork is alive.
//
// All variants produce the same logical artifact: the VM's full memory
// contents at the checkpoint instant (verified byte-exact by tests).

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "checkpoint/delta.hpp"
#include "common/units.hpp"
#include "vm/machine.hpp"

namespace vdc::checkpoint {

using Epoch = std::uint64_t;

/// A captured checkpoint: the full memory contents of one VM at one epoch.
struct Checkpoint {
  vm::VmId vm = 0;
  Epoch epoch = 0;
  Bytes page_size = 0;
  std::vector<std::byte> payload;

  Bytes size_bytes() const { return payload.size(); }
};

/// Stop-the-world full copy. The caller is responsible for pausing the VM
/// around capture if a consistent cluster-wide cut is required.
class FullCheckpointer {
 public:
  Checkpoint capture(const vm::VirtualMachine& machine, Epoch epoch) const;
};

/// Incremental capture: returns the delta (what must be shipped) and keeps
/// the running full image per VM so the full checkpoint is always
/// available locally.
class IncrementalCheckpointer {
 public:
  struct Result {
    Checkpoint checkpoint;  // reconstructed full image at this epoch
    PageDelta delta;        // pages changed since the previous epoch
    Bytes shipped_raw = 0;  // delta.raw_bytes()
    Bytes shipped_compressed = 0;  // wire size after XOR+RLE compression
  };

  /// Capture VM state. The first capture for a VM ships the full image.
  /// Clears the VM's dirty log.
  Result capture(vm::VirtualMachine& machine, Epoch epoch);

  /// Drop per-VM state (e.g. the VM was destroyed or re-placed).
  void forget(vm::VmId vm) { bases_.erase(vm); }

  bool has_base(vm::VmId vm) const { return bases_.count(vm) != 0; }
  /// Previous full image for a VM (valid after a capture).
  const std::vector<std::byte>& base(vm::VmId vm) const;

 private:
  std::unordered_map<vm::VmId, std::vector<std::byte>> bases_;
};

/// Copy-on-write fork capture. In the simulator the fork is taken, the
/// guest is resumed by the caller, and materialisation happens afterwards;
/// `preserved_pages` reports how many pages the guest touched while the
/// fork was alive (the transient extra memory of Plank's forked variant).
class ForkedCheckpointer {
 public:
  struct Result {
    Checkpoint checkpoint;
    std::size_t preserved_pages = 0;
  };

  /// Take the fork (cheap) — guest may resume right after this returns.
  std::unique_ptr<vm::CowSnapshot> fork(vm::VirtualMachine& machine) const {
    return machine.image().fork_cow();
  }

  /// Materialise the forked view into a checkpoint and release the fork.
  Result materialize(const vm::VirtualMachine& machine,
                     std::unique_ptr<vm::CowSnapshot> snapshot,
                     Epoch epoch) const;
};

}  // namespace vdc::checkpoint
