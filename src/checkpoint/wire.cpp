#include "checkpoint/wire.hpp"

#include <cstring>

#include "common/assert.hpp"
#include "common/crc32.hpp"

namespace vdc::checkpoint {

namespace {

constexpr std::size_t kHeaderSize = 40;
constexpr char kMagic[4] = {'V', 'D', 'C', '1'};
constexpr std::size_t kDeltaHeaderSize = 56;
constexpr char kDeltaMagic[4] = {'V', 'D', 'D', '1'};

void put_u32(std::byte* dst, std::uint32_t v) { std::memcpy(dst, &v, 4); }
void put_u64(std::byte* dst, std::uint64_t v) { std::memcpy(dst, &v, 8); }
std::uint32_t get_u32(const std::byte* src) {
  std::uint32_t v;
  std::memcpy(&v, src, 4);
  return v;
}
std::uint64_t get_u64(const std::byte* src) {
  std::uint64_t v;
  std::memcpy(&v, src, 8);
  return v;
}

}  // namespace

std::vector<std::byte> encode_frame(const Checkpoint& checkpoint) {
  std::vector<std::byte> frame(kHeaderSize + checkpoint.payload.size());
  std::memcpy(frame.data(), kMagic, 4);
  put_u32(frame.data() + 8, checkpoint.vm);
  put_u64(frame.data() + 12, checkpoint.epoch);
  put_u64(frame.data() + 20, checkpoint.page_size);
  put_u64(frame.data() + 28, checkpoint.payload.size());
  put_u32(frame.data() + 36, crc32(checkpoint.payload));
  // Header CRC covers everything after itself up to the payload.
  put_u32(frame.data() + 4,
          crc32({frame.data() + 8, kHeaderSize - 8}));
  if (!checkpoint.payload.empty())  // empty payload has a null data()
    std::memcpy(frame.data() + kHeaderSize, checkpoint.payload.data(),
                checkpoint.payload.size());
  return frame;
}

Checkpoint decode_frame(std::span<const std::byte> frame) {
  if (frame.size() < kHeaderSize)
    throw WireError("checkpoint frame: truncated header");
  if (std::memcmp(frame.data(), kMagic, 4) != 0)
    throw WireError("checkpoint frame: bad magic");
  if (get_u32(frame.data() + 4) !=
      crc32({frame.data() + 8, kHeaderSize - 8}))
    throw WireError("checkpoint frame: header crc mismatch");

  Checkpoint cp;
  cp.vm = get_u32(frame.data() + 8);
  cp.epoch = get_u64(frame.data() + 12);
  cp.page_size = get_u64(frame.data() + 20);
  const std::uint64_t payload_len = get_u64(frame.data() + 28);
  const std::uint32_t payload_crc = get_u32(frame.data() + 36);

  if (frame.size() != kHeaderSize + payload_len)
    throw WireError("checkpoint frame: length mismatch");
  cp.payload.assign(frame.begin() + kHeaderSize, frame.end());
  if (crc32(cp.payload) != payload_crc)
    throw WireError("checkpoint frame: payload crc mismatch");
  return cp;
}

std::size_t delta_frame_size(const CompressedDelta& delta) {
  std::size_t payload = 0;
  for (const auto& p : delta.payload) payload += p.size();
  return delta_frame_size(delta.pages.size(), payload);
}

std::vector<std::byte> encode_delta_frame(const CheckpointDelta& cd) {
  const CompressedDelta& d = cd.delta;
  VDC_REQUIRE(d.pages.size() == d.payload.size(),
              "delta frame: pages/payload size mismatch");
  std::size_t payload_len = 8 * d.pages.size();
  for (const auto& p : d.payload) payload_len += p.size();

  std::vector<std::byte> frame(kDeltaHeaderSize + payload_len);
  std::memcpy(frame.data(), kDeltaMagic, 4);
  put_u32(frame.data() + 8, cd.vm);
  put_u64(frame.data() + 12, cd.epoch);
  put_u64(frame.data() + 20, cd.base_epoch);
  put_u64(frame.data() + 28, d.page_size);
  put_u64(frame.data() + 36, d.pages.size());
  put_u64(frame.data() + 44, payload_len);

  std::byte* out = frame.data() + kDeltaHeaderSize;
  for (std::size_t i = 0; i < d.pages.size(); ++i) {
    put_u32(out, static_cast<std::uint32_t>(d.pages[i]));
    put_u32(out + 4, static_cast<std::uint32_t>(d.payload[i].size()));
    if (!d.payload[i].empty())
      std::memcpy(out + 8, d.payload[i].data(), d.payload[i].size());
    out += 8 + d.payload[i].size();
  }
  put_u32(frame.data() + 52,
          crc32({frame.data() + kDeltaHeaderSize, payload_len}));
  put_u32(frame.data() + 4,
          crc32({frame.data() + 8, kDeltaHeaderSize - 8}));
  return frame;
}

CheckpointDelta decode_delta_frame(std::span<const std::byte> frame) {
  if (frame.size() < kDeltaHeaderSize)
    throw WireError("delta frame: truncated header");
  if (std::memcmp(frame.data(), kDeltaMagic, 4) != 0)
    throw WireError("delta frame: bad magic");
  if (get_u32(frame.data() + 4) !=
      crc32({frame.data() + 8, kDeltaHeaderSize - 8}))
    throw WireError("delta frame: header crc mismatch");

  CheckpointDelta cd;
  cd.vm = get_u32(frame.data() + 8);
  cd.epoch = get_u64(frame.data() + 12);
  cd.base_epoch = get_u64(frame.data() + 20);
  cd.delta.page_size = get_u64(frame.data() + 28);
  const std::uint64_t page_count = get_u64(frame.data() + 36);
  const std::uint64_t payload_len = get_u64(frame.data() + 44);
  const std::uint32_t payload_crc = get_u32(frame.data() + 52);

  if (frame.size() != kDeltaHeaderSize + payload_len)
    throw WireError("delta frame: length mismatch");
  if (crc32(frame.subspan(kDeltaHeaderSize)) != payload_crc)
    throw WireError("delta frame: payload crc mismatch");
  if (page_count > 0 && cd.delta.page_size == 0)
    throw WireError("delta frame: zero page size");

  const std::byte* in = frame.data() + kDeltaHeaderSize;
  std::uint64_t remaining = payload_len;
  for (std::uint64_t i = 0; i < page_count; ++i) {
    if (remaining < 8)
      throw WireError("delta frame: truncated page record");
    const std::uint32_t page = get_u32(in);
    const std::uint32_t len = get_u32(in + 4);
    if (remaining - 8 < len)
      throw WireError("delta frame: page record overruns payload");
    if (!cd.delta.pages.empty() && page <= cd.delta.pages.back())
      throw WireError("delta frame: page indices not ascending");
    cd.delta.pages.push_back(page);
    cd.delta.payload.emplace_back(in + 8, in + 8 + len);
    in += 8 + len;
    remaining -= 8 + len;
  }
  if (remaining != 0)
    throw WireError("delta frame: trailing payload bytes");
  return cd;
}

}  // namespace vdc::checkpoint
