#include "checkpoint/wire.hpp"

#include <cstring>

#include "checkpoint/stream.hpp"
#include "common/assert.hpp"
#include "common/crc32.hpp"

namespace vdc::checkpoint {

namespace {

constexpr std::size_t kHeaderSize = kFrameHeaderSize;
constexpr char kMagic[4] = {'V', 'D', 'C', '1'};
constexpr std::size_t kDeltaHeaderSize = kDeltaFrameHeaderSize;
constexpr char kDeltaMagic[4] = {'V', 'D', 'D', '1'};

std::uint32_t get_u32(const std::byte* src) {
  std::uint32_t v;
  std::memcpy(&v, src, 4);
  return v;
}
std::uint64_t get_u64(const std::byte* src) {
  std::uint64_t v;
  std::memcpy(&v, src, 8);
  return v;
}

}  // namespace

std::vector<std::byte> encode_frame(const Checkpoint& checkpoint) {
  // CheckpointFrameSource is the layout authority; materialize through it.
  std::vector<std::span<const std::byte>> spans;
  if (!checkpoint.payload.empty())  // empty payload has a null data()
    spans.push_back(checkpoint.payload);
  return CheckpointFrameSource(checkpoint.vm, checkpoint.epoch,
                               checkpoint.page_size, std::move(spans))
      .bytes();
}

Checkpoint decode_frame(std::span<const std::byte> frame) {
  if (frame.size() < kHeaderSize)
    throw WireError("checkpoint frame: truncated header");
  if (std::memcmp(frame.data(), kMagic, 4) != 0)
    throw WireError("checkpoint frame: bad magic");
  if (get_u32(frame.data() + 4) !=
      crc32({frame.data() + 8, kHeaderSize - 8}))
    throw WireError("checkpoint frame: header crc mismatch");

  Checkpoint cp;
  cp.vm = get_u32(frame.data() + 8);
  cp.epoch = get_u64(frame.data() + 12);
  cp.page_size = get_u64(frame.data() + 20);
  const std::uint64_t payload_len = get_u64(frame.data() + 28);
  const std::uint32_t payload_crc = get_u32(frame.data() + 36);

  if (frame.size() != kHeaderSize + payload_len)
    throw WireError("checkpoint frame: length mismatch");
  cp.payload.assign(frame.begin() + kHeaderSize, frame.end());
  if (crc32(cp.payload) != payload_crc)
    throw WireError("checkpoint frame: payload crc mismatch");
  return cp;
}

std::size_t delta_frame_size(const CompressedDelta& delta) {
  std::size_t payload = 0;
  for (const auto& p : delta.payload) payload += p.size();
  return delta_frame_size(delta.pages.size(), payload);
}

std::vector<std::byte> encode_delta_frame(const CheckpointDelta& cd) {
  // DeltaFrameSource is the layout authority; materialize through it.
  const CompressedDelta& d = cd.delta;
  VDC_REQUIRE(d.pages.size() == d.payload.size(),
              "delta frame: pages/payload size mismatch");
  DeltaFrameSource source(cd.vm, cd.epoch, cd.base_epoch, d.page_size);
  for (std::size_t i = 0; i < d.pages.size(); ++i)
    source.add_record(d.pages[i], std::vector<std::byte>(d.payload[i]),
                      d.is_raw(i), /*trim_len=*/0);
  source.seal();
  return source.bytes();
}

CheckpointDelta decode_delta_frame(std::span<const std::byte> frame) {
  if (frame.size() < kDeltaHeaderSize)
    throw WireError("delta frame: truncated header");
  if (std::memcmp(frame.data(), kDeltaMagic, 4) != 0)
    throw WireError("delta frame: bad magic");
  if (get_u32(frame.data() + 4) !=
      crc32({frame.data() + 8, kDeltaHeaderSize - 8}))
    throw WireError("delta frame: header crc mismatch");

  CheckpointDelta cd;
  cd.vm = get_u32(frame.data() + 8);
  cd.epoch = get_u64(frame.data() + 12);
  cd.base_epoch = get_u64(frame.data() + 20);
  cd.delta.page_size = get_u64(frame.data() + 28);
  const std::uint64_t page_count = get_u64(frame.data() + 36);
  const std::uint64_t payload_len = get_u64(frame.data() + 44);
  const std::uint32_t payload_crc = get_u32(frame.data() + 52);

  if (frame.size() != kDeltaHeaderSize + payload_len)
    throw WireError("delta frame: length mismatch");
  if (crc32(frame.subspan(kDeltaHeaderSize)) != payload_crc)
    throw WireError("delta frame: payload crc mismatch");
  if (page_count > 0 && cd.delta.page_size == 0)
    throw WireError("delta frame: zero page size");

  const std::byte* in = frame.data() + kDeltaHeaderSize;
  std::uint64_t remaining = payload_len;
  for (std::uint64_t i = 0; i < page_count; ++i) {
    if (remaining < 8)
      throw WireError("delta frame: truncated page record");
    const std::uint32_t page = get_u32(in);
    const std::uint32_t len_mode = get_u32(in + 4);
    const bool raw = (len_mode & kRawRecordFlag) != 0;
    const std::uint32_t len = len_mode & ~kRawRecordFlag;
    if (remaining - 8 < len)
      throw WireError("delta frame: page record overruns payload");
    if (raw && len > cd.delta.page_size)
      throw WireError("delta frame: raw record longer than page");
    if (!cd.delta.pages.empty() && page <= cd.delta.pages.back())
      throw WireError("delta frame: page indices not ascending");
    cd.delta.pages.push_back(page);
    cd.delta.payload.emplace_back(in + 8, in + 8 + len);
    cd.delta.raw.push_back(raw ? 1 : 0);
    in += 8 + len;
    remaining -= 8 + len;
  }
  if (remaining != 0)
    throw WireError("delta frame: trailing payload bytes");
  return cd;
}

}  // namespace vdc::checkpoint
