#include "checkpoint/wire.hpp"

#include <cstring>

#include "common/crc32.hpp"

namespace vdc::checkpoint {

namespace {

constexpr std::size_t kHeaderSize = 40;
constexpr char kMagic[4] = {'V', 'D', 'C', '1'};

void put_u32(std::byte* dst, std::uint32_t v) { std::memcpy(dst, &v, 4); }
void put_u64(std::byte* dst, std::uint64_t v) { std::memcpy(dst, &v, 8); }
std::uint32_t get_u32(const std::byte* src) {
  std::uint32_t v;
  std::memcpy(&v, src, 4);
  return v;
}
std::uint64_t get_u64(const std::byte* src) {
  std::uint64_t v;
  std::memcpy(&v, src, 8);
  return v;
}

}  // namespace

std::vector<std::byte> encode_frame(const Checkpoint& checkpoint) {
  std::vector<std::byte> frame(kHeaderSize + checkpoint.payload.size());
  std::memcpy(frame.data(), kMagic, 4);
  put_u32(frame.data() + 8, checkpoint.vm);
  put_u64(frame.data() + 12, checkpoint.epoch);
  put_u64(frame.data() + 20, checkpoint.page_size);
  put_u64(frame.data() + 28, checkpoint.payload.size());
  put_u32(frame.data() + 36, crc32(checkpoint.payload));
  // Header CRC covers everything after itself up to the payload.
  put_u32(frame.data() + 4,
          crc32({frame.data() + 8, kHeaderSize - 8}));
  if (!checkpoint.payload.empty())  // empty payload has a null data()
    std::memcpy(frame.data() + kHeaderSize, checkpoint.payload.data(),
                checkpoint.payload.size());
  return frame;
}

Checkpoint decode_frame(std::span<const std::byte> frame) {
  if (frame.size() < kHeaderSize)
    throw WireError("checkpoint frame: truncated header");
  if (std::memcmp(frame.data(), kMagic, 4) != 0)
    throw WireError("checkpoint frame: bad magic");
  if (get_u32(frame.data() + 4) !=
      crc32({frame.data() + 8, kHeaderSize - 8}))
    throw WireError("checkpoint frame: header crc mismatch");

  Checkpoint cp;
  cp.vm = get_u32(frame.data() + 8);
  cp.epoch = get_u64(frame.data() + 12);
  cp.page_size = get_u64(frame.data() + 20);
  const std::uint64_t payload_len = get_u64(frame.data() + 28);
  const std::uint32_t payload_crc = get_u32(frame.data() + 36);

  if (frame.size() != kHeaderSize + payload_len)
    throw WireError("checkpoint frame: length mismatch");
  cp.payload.assign(frame.begin() + kHeaderSize, frame.end());
  if (crc32(cp.payload) != payload_crc)
    throw WireError("checkpoint frame: payload crc mismatch");
  return cp;
}

}  // namespace vdc::checkpoint
