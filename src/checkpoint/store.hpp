#pragma once
// In-memory checkpoint store with page sharing.
//
// Diskless checkpointing keeps checkpoints in RAM: each node stores the
// current (and, during a checkpoint, the previous) epoch of the VMs and
// parity blocks it is responsible for. Checkpoints at rest are chopped
// into immutable, ref-counted page chunks so that epoch N+1 shares every
// page that did not change since epoch N — storing an incremental epoch
// costs O(dirty pages), not O(image). total_bytes() reports RESIDENT
// bytes: each distinct page buffer is counted once no matter how many
// epochs reference it, so the paper's "modest memory overhead" claim is
// measured against what the node actually holds.

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "checkpoint/checkpointer.hpp"
#include "common/units.hpp"

namespace vdc::checkpoint {

/// An immutable, shareable page-sized chunk of checkpoint payload.
using PageRef = std::shared_ptr<const std::vector<std::byte>>;

/// A sub-page overlay on one page chunk: `bytes` replaces the base page
/// content at [offset, offset + bytes->size()). Patches let an epoch whose
/// guest touched only a few bytes of a page share the previous epoch's base
/// buffer and store just the touched extent.
struct PagePatch {
  std::uint32_t offset = 0;
  PageRef bytes;
};

/// A checkpoint at rest: the payload as a sequence of page chunks plus an
/// optional sparse patch overlay. All chunks are page_size bytes except
/// possibly the last (a trailing partial page); page_size == 0 means a
/// single chunk holds the whole payload. Logical content of chunk i is
/// pages[i] with patches[i] (if present) applied on top; patch depth is
/// always exactly one (re-patching rebases onto the same base buffer).
struct StoredCheckpoint {
  vm::VmId vm = 0;
  Epoch epoch = 0;
  Bytes page_size = 0;
  std::vector<PageRef> pages;
  std::map<std::uint32_t, PagePatch> patches;

  /// Logical payload size (sum of chunk sizes; patches replace, not extend).
  Bytes size_bytes() const;

  /// Read-only view of chunk `i`. Only valid for unpatched chunks — the
  /// scatter-gather readers below handle the general case.
  std::span<const std::byte> page(std::size_t i) const;

  bool patched(std::size_t i) const {
    return patches.count(static_cast<std::uint32_t>(i)) != 0;
  }

  /// Bytes held in patch buffers (on top of the base chunks).
  Bytes patch_bytes() const;

  /// Visit the logical content of chunk `i` over [off, off + len) as up to
  /// three contiguous spans (base-before-patch, patch, base-after-patch).
  /// fn(offset_in_page, bytes); spans arrive in ascending offset order.
  void for_each_range(
      std::size_t i, std::size_t off, std::size_t len,
      const std::function<void(std::size_t, std::span<const std::byte>)>& fn)
      const;

  /// Visit the whole logical payload in order as contiguous spans.
  /// fn(payload_offset, bytes).
  void for_each_span(
      const std::function<void(std::size_t, std::span<const std::byte>)>& fn)
      const;

  /// True iff chunk `i`'s logical content equals `bytes`.
  bool page_equals(std::size_t i, std::span<const std::byte> bytes) const;

  /// Materialise the payload as one flat byte vector.
  std::vector<std::byte> payload() const;

  /// Materialise zero-padded to `size` bytes (parity stripe width).
  std::vector<std::byte> padded_payload(std::size_t size) const;

  /// True iff the payload equals `flat` byte for byte (no materialisation).
  bool payload_equals(std::span<const std::byte> flat) const;

  /// Chop a flat payload into fresh page chunks of `page_size` bytes.
  static std::vector<PageRef> chop(std::span<const std::byte> flat,
                                   Bytes page_size);

  /// Build from a wire/capture Checkpoint (chops the flat payload).
  static StoredCheckpoint from(Checkpoint&& cp);
};

class CheckpointStore {
 public:
  /// Insert or replace the checkpoint for (vm, epoch). The Checkpoint
  /// overloads chop the flat payload into fresh chunks; the
  /// StoredCheckpoint overload keeps whatever sharing the caller built.
  void put(const Checkpoint& cp);
  void put(Checkpoint&& cp);
  void put(StoredCheckpoint&& cp);

  /// Fetch a checkpoint; nullptr if absent.
  const StoredCheckpoint* find(vm::VmId vm, Epoch epoch) const;

  /// Latest stored epoch for a VM, if any.
  std::optional<Epoch> latest_epoch(vm::VmId vm) const;

  /// Drop all epochs strictly older than `epoch` for every VM (commit-time
  /// garbage collection: once epoch e is globally committed, e-1 dies).
  void gc_before(Epoch epoch);

  /// Drop one (vm, epoch) entry if present (abort of an in-flight epoch).
  void erase(vm::VmId vm, Epoch epoch);

  /// Drop everything stored for one VM.
  void drop_vm(vm::VmId vm);

  std::size_t entry_count() const;
  /// Resident bytes: every distinct page/patch buffer counted exactly once.
  Bytes total_bytes() const { return resident_bytes_ + patch_resident_bytes_; }
  /// Resident bytes held in patch buffers only (subset of total_bytes()).
  Bytes patch_bytes() const { return patch_resident_bytes_; }

 private:
  void ref_pages(const StoredCheckpoint& cp);
  void unref_pages(const StoredCheckpoint& cp);

  // vm -> epoch -> checkpoint
  std::unordered_map<vm::VmId, std::map<Epoch, StoredCheckpoint>> by_vm_;
  // Distinct page buffer -> number of StoredCheckpoints in THIS store
  // referencing it (buffers may also be shared across stores).
  std::unordered_map<const void*, std::size_t> page_refs_;
  std::unordered_map<const void*, std::size_t> patch_refs_;
  Bytes resident_bytes_ = 0;
  Bytes patch_resident_bytes_ = 0;
};

}  // namespace vdc::checkpoint
