#pragma once
// In-memory checkpoint store.
//
// Diskless checkpointing keeps checkpoints in RAM: each node stores the
// current (and, during a checkpoint, the previous) epoch of the VMs and
// parity blocks it is responsible for. The store tracks total bytes so the
// paper's "modest memory overhead" claim can be measured.

#include <cstdint>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "checkpoint/checkpointer.hpp"
#include "common/units.hpp"

namespace vdc::checkpoint {

class CheckpointStore {
 public:
  /// Insert or replace the checkpoint for (vm, epoch).
  void put(const Checkpoint& cp);
  void put(Checkpoint&& cp);

  /// Fetch a checkpoint payload; nullopt if absent.
  const Checkpoint* find(vm::VmId vm, Epoch epoch) const;

  /// Latest stored epoch for a VM, if any.
  std::optional<Epoch> latest_epoch(vm::VmId vm) const;

  /// Drop all epochs strictly older than `epoch` for every VM (commit-time
  /// garbage collection: once epoch e is globally committed, e-1 dies).
  void gc_before(Epoch epoch);

  /// Drop one (vm, epoch) entry if present (abort of an in-flight epoch).
  void erase(vm::VmId vm, Epoch epoch);

  /// Drop everything stored for one VM.
  void drop_vm(vm::VmId vm);

  std::size_t entry_count() const;
  Bytes total_bytes() const { return total_bytes_; }

 private:
  // vm -> epoch -> checkpoint
  std::unordered_map<vm::VmId, std::map<Epoch, Checkpoint>> by_vm_;
  Bytes total_bytes_ = 0;
};

}  // namespace vdc::checkpoint
