#pragma once
// Zero-run-length encoding for checkpoint deltas.
//
// The increments shipped between checkpoints are XORs of a page against its
// previous contents — mostly zero except where the guest actually wrote
// (Plank's "compressed differences"). A simple zero-run/literal-run format
// captures nearly all of that redundancy with trivial encode/decode cost.
//
// Wire format: a sequence of records
//   varint zero_len | varint literal_len | literal_len raw bytes
// until the decoded output reaches the expected size.

#include <cstddef>
#include <span>
#include <vector>

namespace vdc::checkpoint {

/// Encode `data`. Output never exceeds input by more than a few varints
/// per literal run, and collapses zero runs to ~1-5 bytes.
std::vector<std::byte> rle_encode(std::span<const std::byte> data);

/// Exact size rle_encode(data) would produce, without allocating. Lets the
/// wire planner price compression (and the full-exchange path report
/// compressed sizes) with a single scan and zero copies.
std::size_t rle_encoded_size(std::span<const std::byte> data);

/// Decode an rle_encode() buffer; `expected_size` is the original length.
/// Throws vdc::Error on malformed input.
std::vector<std::byte> rle_decode(std::span<const std::byte> encoded,
                                  std::size_t expected_size);

}  // namespace vdc::checkpoint
