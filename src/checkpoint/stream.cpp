#include "checkpoint/stream.hpp"

#include <algorithm>
#include <cstring>

#include "common/assert.hpp"
#include "common/crc32.hpp"

namespace vdc::checkpoint {

namespace {

constexpr char kMagic[4] = {'V', 'D', 'C', '1'};
constexpr char kDeltaMagic[4] = {'V', 'D', 'D', '1'};

void put_u32(std::byte* dst, std::uint32_t v) { std::memcpy(dst, &v, 4); }
void put_u64(std::byte* dst, std::uint64_t v) { std::memcpy(dst, &v, 8); }
std::uint32_t get_u32(const std::byte* src) {
  std::uint32_t v;
  std::memcpy(&v, src, 4);
  return v;
}
std::uint64_t get_u64(const std::byte* src) {
  std::uint64_t v;
  std::memcpy(&v, src, 8);
  return v;
}

std::uint64_t get_varint(std::span<const std::byte> in, std::size_t& pos) {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    VDC_ASSERT_MSG(pos < in.size(), "literal-run walk: truncated varint");
    const auto b = static_cast<std::uint8_t>(in[pos++]);
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
  }
}

// Emit the overlap of [lo, hi) with a piece occupying [start, start + len)
// of the logical frame.
void emit_overlap(std::size_t lo, std::size_t hi, std::size_t start,
                  const std::byte* data, std::size_t len,
                  const SpanSink& fn) {
  const std::size_t s = std::max(lo, start);
  const std::size_t e = std::min(hi, start + len);
  if (s < e) fn({data + (s - start), e - s});
}

}  // namespace

// ---------------------------------------------------------------------------
// DeltaFrameSource

DeltaFrameSource::DeltaFrameSource(vm::VmId vm, Epoch epoch, Epoch base_epoch,
                                   Bytes page_size) {
  std::memcpy(header_.data(), kDeltaMagic, 4);
  put_u32(header_.data() + 8, vm);
  put_u64(header_.data() + 12, epoch);
  put_u64(header_.data() + 20, base_epoch);
  put_u64(header_.data() + 28, page_size);
}

void DeltaFrameSource::add_record(vm::PageIndex page,
                                  std::vector<std::byte> bytes, bool raw,
                                  std::uint32_t trim_len) {
  VDC_REQUIRE(!sealed_, "delta frame source: add after seal");
  VDC_REQUIRE(!have_page_ || page > last_page_,
              "delta frame source: pages must ascend");
  VDC_REQUIRE(bytes.size() < kRawRecordFlag,
              "delta frame source: record too large");
  Rec rec;
  rec.page = page;
  put_u32(rec.meta.data(), static_cast<std::uint32_t>(page));
  put_u32(rec.meta.data() + 4,
          static_cast<std::uint32_t>(bytes.size()) | (raw ? kRawRecordFlag : 0));
  rec.payload = std::move(bytes);
  rec.raw = raw;
  payload_crc_ = crc32({rec.meta.data(), rec.meta.size()}, payload_crc_);
  payload_crc_ = crc32(rec.payload, payload_crc_);
  const std::size_t prev = ends_.empty() ? 0 : ends_.back();
  ends_.push_back(prev + rec.meta.size() + rec.payload.size());
  trim_total_ += 8 + trim_len;
  recs_.push_back(std::move(rec));
  have_page_ = true;
  last_page_ = page;
}

void DeltaFrameSource::seal() {
  VDC_REQUIRE(!sealed_, "delta frame source: double seal");
  const std::size_t payload_len = ends_.empty() ? 0 : ends_.back();
  put_u64(header_.data() + 36, recs_.size());
  put_u64(header_.data() + 44, payload_len);
  put_u32(header_.data() + 52, payload_crc_);
  put_u32(header_.data() + 4,
          crc32({header_.data() + 8, kDeltaFrameHeaderSize - 8}));
  sealed_ = true;
}

std::size_t DeltaFrameSource::size() const {
  return kDeltaFrameHeaderSize + (ends_.empty() ? 0 : ends_.back());
}

Bytes DeltaFrameSource::trim_frame_size() const {
  return kDeltaFrameHeaderSize + trim_total_;
}

void DeltaFrameSource::for_each_range(std::size_t lo, std::size_t hi,
                                      const SpanSink& fn) const {
  VDC_REQUIRE(sealed_, "delta frame source: range before seal");
  VDC_ASSERT(lo <= hi && hi <= size());
  if (lo == hi) return;
  emit_overlap(lo, hi, 0, header_.data(), kDeltaFrameHeaderSize, fn);
  if (hi <= kDeltaFrameHeaderSize) return;
  const std::size_t plo =
      lo < kDeltaFrameHeaderSize ? 0 : lo - kDeltaFrameHeaderSize;
  const std::size_t phi = hi - kDeltaFrameHeaderSize;
  // First record whose end is past plo.
  auto it = std::upper_bound(ends_.begin(), ends_.end(), plo);
  for (std::size_t i = static_cast<std::size_t>(it - ends_.begin());
       i < recs_.size(); ++i) {
    const std::size_t start = i == 0 ? 0 : ends_[i - 1];
    if (start >= phi) break;
    const Rec& rec = recs_[i];
    emit_overlap(plo, phi, start, rec.meta.data(), rec.meta.size(), fn);
    emit_overlap(plo, phi, start + rec.meta.size(), rec.payload.data(),
                 rec.payload.size(), fn);
  }
}

void DeltaFrameSource::for_each_record(
    const std::function<void(vm::PageIndex, std::span<const std::byte>, bool)>&
        fn) const {
  for (const Rec& rec : recs_) fn(rec.page, rec.payload, rec.raw);
}

std::vector<std::byte> DeltaFrameSource::bytes() const {
  std::vector<std::byte> out;
  out.reserve(size());
  for_each_range(0, size(), [&](std::span<const std::byte> s) {
    out.insert(out.end(), s.begin(), s.end());
  });
  return out;
}

// ---------------------------------------------------------------------------
// CheckpointFrameSource

CheckpointFrameSource::CheckpointFrameSource(
    vm::VmId vm, Epoch epoch, Bytes page_size,
    std::vector<std::span<const std::byte>> payload)
    : spans_(std::move(payload)) {
  std::uint32_t crc = 0;
  ends_.reserve(spans_.size());
  for (const auto& s : spans_) {
    crc = crc32(s, crc);
    payload_len_ += s.size();
    ends_.push_back(payload_len_);
  }
  std::memcpy(header_.data(), kMagic, 4);
  put_u32(header_.data() + 8, vm);
  put_u64(header_.data() + 12, epoch);
  put_u64(header_.data() + 20, page_size);
  put_u64(header_.data() + 28, payload_len_);
  put_u32(header_.data() + 36, crc);
  put_u32(header_.data() + 4,
          crc32({header_.data() + 8, kFrameHeaderSize - 8}));
}

void CheckpointFrameSource::for_each_range(std::size_t lo, std::size_t hi,
                                           const SpanSink& fn) const {
  VDC_ASSERT(lo <= hi && hi <= size());
  if (lo == hi) return;
  emit_overlap(lo, hi, 0, header_.data(), kFrameHeaderSize, fn);
  if (hi <= kFrameHeaderSize) return;
  const std::size_t plo = lo < kFrameHeaderSize ? 0 : lo - kFrameHeaderSize;
  const std::size_t phi = hi - kFrameHeaderSize;
  auto it = std::upper_bound(ends_.begin(), ends_.end(), plo);
  for (std::size_t i = static_cast<std::size_t>(it - ends_.begin());
       i < spans_.size(); ++i) {
    const std::size_t start = i == 0 ? 0 : ends_[i - 1];
    if (start >= phi) break;
    emit_overlap(plo, phi, start, spans_[i].data(), spans_[i].size(), fn);
  }
}

std::vector<std::byte> CheckpointFrameSource::bytes() const {
  std::vector<std::byte> out;
  out.reserve(size());
  for_each_range(0, size(), [&](std::span<const std::byte> s) {
    out.insert(out.end(), s.begin(), s.end());
  });
  return out;
}

// ---------------------------------------------------------------------------
// for_each_literal_run

void for_each_literal_run(
    std::span<const std::byte> encoded, bool raw, Bytes page_size,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (raw) {
    VDC_ASSERT(encoded.size() <= page_size);
    if (!encoded.empty()) fn(0, encoded.size());
    return;
  }
  std::size_t pos = 0;
  std::size_t off = 0;
  while (pos < encoded.size()) {
    const std::uint64_t zeros = get_varint(encoded, pos);
    const std::uint64_t lits = get_varint(encoded, pos);
    off += zeros;
    VDC_ASSERT_MSG(off + lits <= page_size, "literal-run walk: overrun");
    if (lits > 0) fn(off, lits);
    off += lits;
    pos += lits;
  }
}

// ---------------------------------------------------------------------------
// DeltaReader

DeltaReader::DeltaReader(FoldFn fold) : fold_(std::move(fold)) {}

void DeltaReader::finish_header() {
  const std::byte* h = carry_.data();
  if (std::memcmp(h, kDeltaMagic, 4) != 0)
    throw WireError("delta stream: bad magic");
  if (get_u32(h + 4) != crc32({h + 8, kDeltaFrameHeaderSize - 8}))
    throw WireError("delta stream: header crc mismatch");
  hdr_.vm = get_u32(h + 8);
  hdr_.epoch = get_u64(h + 12);
  hdr_.base_epoch = get_u64(h + 20);
  hdr_.page_size = get_u64(h + 28);
  hdr_.page_count = get_u64(h + 36);
  hdr_.payload_len = get_u64(h + 44);
  expected_payload_crc_ = get_u32(h + 52);
  if (hdr_.page_count > 0 && hdr_.page_size == 0)
    throw WireError("delta stream: zero page size");
  if (hdr_.payload_len == 0) {
    if (hdr_.page_count != 0)
      throw WireError("delta stream: truncated page record");
    if (expected_payload_crc_ != 0)
      throw WireError("delta stream: payload crc mismatch");
    state_ = State::Done;
    return;
  }
  if (hdr_.payload_len < 8) throw WireError("delta stream: truncated page record");
  state_ = State::RecMeta;
}

void DeltaReader::finish_record() {
  ++records_done_;
  prev_page_ = page_;
  have_page_ = true;
  carry_len_ = 0;
  if (consumed_ == kDeltaFrameHeaderSize + hdr_.payload_len) {
    if (records_done_ != hdr_.page_count)
      throw WireError("delta stream: page count mismatch");
    if (payload_crc_ != expected_payload_crc_)
      throw WireError("delta stream: payload crc mismatch");
    state_ = State::Done;
    return;
  }
  if (records_done_ == hdr_.page_count)
    throw WireError("delta stream: trailing payload bytes");
  const std::size_t remaining =
      kDeltaFrameHeaderSize + hdr_.payload_len - consumed_;
  if (remaining < 8) throw WireError("delta stream: truncated page record");
  state_ = State::RecMeta;
}

void DeltaReader::feed(std::span<const std::byte> chunk) {
  const std::byte* p = chunk.data();
  std::size_t n = chunk.size();
  while (n > 0) {
    switch (state_) {
      case State::Header: {
        const std::size_t take =
            std::min(kDeltaFrameHeaderSize - carry_len_, n);
        std::memcpy(carry_.data() + carry_len_, p, take);
        carry_len_ += take;
        p += take;
        n -= take;
        consumed_ += take;
        if (carry_len_ == kDeltaFrameHeaderSize) {
          finish_header();
          carry_len_ = 0;
        }
        break;
      }
      case State::RecMeta: {
        const std::size_t take = std::min(8 - carry_len_, n);
        std::memcpy(carry_.data() + carry_len_, p, take);
        payload_crc_ = crc32({p, take}, payload_crc_);
        carry_len_ += take;
        p += take;
        n -= take;
        consumed_ += take;
        if (carry_len_ < 8) break;
        carry_len_ = 0;
        page_ = get_u32(carry_.data());
        const std::uint32_t len_mode = get_u32(carry_.data() + 4);
        raw_ = (len_mode & kRawRecordFlag) != 0;
        rec_len_ = len_mode & ~kRawRecordFlag;
        rec_consumed_ = 0;
        decoded_off_ = 0;
        if (have_page_ && page_ <= prev_page_)
          throw WireError("delta stream: page indices not ascending");
        const std::size_t remaining =
            kDeltaFrameHeaderSize + hdr_.payload_len - consumed_;
        if (rec_len_ > remaining)
          throw WireError("delta stream: page record overruns payload");
        if (raw_) {
          if (rec_len_ > hdr_.page_size)
            throw WireError("delta stream: raw record longer than page");
          run_remaining_ = rec_len_;
          state_ = run_remaining_ > 0 ? State::RawData : State::RecMeta;
          if (run_remaining_ == 0) finish_record();
        } else {
          if (rec_len_ == 0 && hdr_.page_size > 0)
            throw WireError("delta stream: truncated record");
          varint_val_ = 0;
          varint_shift_ = 0;
          state_ = State::RleZeros;
        }
        break;
      }
      case State::RleZeros:
      case State::RleLits: {
        if (rec_consumed_ == rec_len_)
          throw WireError("delta stream: truncated record");
        const auto b = static_cast<std::uint8_t>(*p);
        payload_crc_ = crc32({p, 1}, payload_crc_);
        ++p;
        --n;
        ++consumed_;
        ++rec_consumed_;
        if (varint_shift_ >= 63 && (b >> 1) != 0)
          throw WireError("delta stream: varint overflow");
        varint_val_ |= static_cast<std::uint64_t>(b & 0x7f) << varint_shift_;
        varint_shift_ += 7;
        if ((b & 0x80) != 0) break;
        if (state_ == State::RleZeros) {
          decoded_off_ += varint_val_;
          if (decoded_off_ > hdr_.page_size)
            throw WireError("delta stream: record output overrun");
          varint_val_ = 0;
          varint_shift_ = 0;
          state_ = State::RleLits;
        } else {
          const std::uint64_t lits = varint_val_;
          varint_val_ = 0;
          varint_shift_ = 0;
          if (decoded_off_ + lits > hdr_.page_size)
            throw WireError("delta stream: record output overrun");
          if (rec_consumed_ + lits > rec_len_)
            throw WireError("delta stream: truncated literals");
          run_remaining_ = static_cast<std::size_t>(lits);
          if (run_remaining_ > 0) {
            state_ = State::RleData;
          } else if (decoded_off_ == hdr_.page_size) {
            if (rec_consumed_ != rec_len_)
              throw WireError("delta stream: trailing record bytes");
            finish_record();
          } else if (rec_consumed_ == rec_len_) {
            throw WireError("delta stream: truncated record");
          } else {
            state_ = State::RleZeros;
          }
        }
        break;
      }
      case State::RleData:
      case State::RawData: {
        const std::size_t take = std::min(run_remaining_, n);
        payload_crc_ = crc32({p, take}, payload_crc_);
        fold_(page_, decoded_off_, {p, take});
        decoded_off_ += take;
        run_remaining_ -= take;
        rec_consumed_ += take;
        p += take;
        n -= take;
        consumed_ += take;
        if (run_remaining_ > 0) break;
        if (state_ == State::RawData) {
          finish_record();
        } else if (decoded_off_ == hdr_.page_size) {
          if (rec_consumed_ != rec_len_)
            throw WireError("delta stream: trailing record bytes");
          finish_record();
        } else if (rec_consumed_ == rec_len_) {
          throw WireError("delta stream: truncated record");
        } else {
          varint_val_ = 0;
          varint_shift_ = 0;
          state_ = State::RleZeros;
        }
        break;
      }
      case State::Done:
        throw WireError("delta stream: bytes past end of frame");
    }
  }
}

// ---------------------------------------------------------------------------
// FrameReader

FrameReader::FrameReader(DataFn data) : data_(std::move(data)) {}

bool FrameReader::complete() const {
  return header_done_ && consumed_ == kFrameHeaderSize + hdr_.payload_len;
}

void FrameReader::feed(std::span<const std::byte> chunk) {
  const std::byte* p = chunk.data();
  std::size_t n = chunk.size();
  while (n > 0) {
    if (!header_done_) {
      const std::size_t take = std::min(kFrameHeaderSize - carry_len_, n);
      std::memcpy(carry_.data() + carry_len_, p, take);
      carry_len_ += take;
      p += take;
      n -= take;
      consumed_ += take;
      if (carry_len_ < kFrameHeaderSize) continue;
      const std::byte* h = carry_.data();
      if (std::memcmp(h, kMagic, 4) != 0)
        throw WireError("checkpoint stream: bad magic");
      if (get_u32(h + 4) != crc32({h + 8, kFrameHeaderSize - 8}))
        throw WireError("checkpoint stream: header crc mismatch");
      hdr_.vm = get_u32(h + 8);
      hdr_.epoch = get_u64(h + 12);
      hdr_.page_size = get_u64(h + 20);
      hdr_.payload_len = get_u64(h + 28);
      expected_payload_crc_ = get_u32(h + 36);
      header_done_ = true;
      if (hdr_.payload_len == 0 && expected_payload_crc_ != 0)
        throw WireError("checkpoint stream: payload crc mismatch");
      continue;
    }
    const std::size_t remaining =
        kFrameHeaderSize + hdr_.payload_len - consumed_;
    if (remaining == 0)
      throw WireError("checkpoint stream: bytes past end of frame");
    const std::size_t take = std::min(remaining, n);
    payload_crc_ = crc32({p, take}, payload_crc_);
    data_(consumed_ - kFrameHeaderSize, {p, take});
    p += take;
    n -= take;
    consumed_ += take;
    if (consumed_ == kFrameHeaderSize + hdr_.payload_len &&
        payload_crc_ != expected_payload_crc_)
      throw WireError("checkpoint stream: payload crc mismatch");
  }
}

}  // namespace vdc::checkpoint
