#include "checkpoint/delta.hpp"

#include <cstring>

#include "checkpoint/rle.hpp"
#include "common/assert.hpp"
#include "parity/xor.hpp"

namespace vdc::checkpoint {

PageDelta capture_delta(vm::MemoryImage& image, bool clear_dirty) {
  PageDelta delta;
  delta.page_size = image.page_size();
  delta.pages = image.dirty_pages();
  delta.contents.reserve(delta.pages.size());
  for (vm::PageIndex p : delta.pages) {
    auto view = image.page(p);
    delta.contents.emplace_back(view.begin(), view.end());
  }
  if (clear_dirty) image.clear_dirty();
  return delta;
}

PageDelta diff_images(std::span<const std::byte> old_image,
                      std::span<const std::byte> new_image, Bytes page_size) {
  VDC_REQUIRE(page_size > 0, "diff: page size must be positive");
  VDC_REQUIRE(old_image.size() == new_image.size(),
              "diff: image size mismatch");
  VDC_REQUIRE(old_image.size() % page_size == 0,
              "diff: image not page-aligned");
  PageDelta delta;
  delta.page_size = page_size;
  const std::size_t pages = old_image.size() / page_size;
  for (std::size_t p = 0; p < pages; ++p) {
    const std::size_t off = p * page_size;
    if (std::memcmp(old_image.data() + off, new_image.data() + off,
                    page_size) != 0) {
      delta.pages.push_back(p);
      delta.contents.emplace_back(new_image.begin() + static_cast<std::ptrdiff_t>(off),
                                  new_image.begin() + static_cast<std::ptrdiff_t>(off + page_size));
    }
  }
  return delta;
}

void apply_delta(std::vector<std::byte>& base, const PageDelta& delta) {
  VDC_REQUIRE(delta.pages.size() == delta.contents.size(),
              "delta index/content mismatch");
  for (std::size_t i = 0; i < delta.pages.size(); ++i) {
    const std::size_t off = delta.pages[i] * delta.page_size;
    VDC_REQUIRE(off + delta.page_size <= base.size(),
                "delta page outside base image");
    VDC_REQUIRE(delta.contents[i].size() == delta.page_size,
                "delta page has wrong size");
    std::memcpy(base.data() + off, delta.contents[i].data(),
                delta.page_size);
  }
}

EncodedRecord encode_record(std::span<const std::byte> x) {
  EncodedRecord rec;
  std::size_t trim = x.size();
  while (trim > 0 && x[trim - 1] == std::byte{0}) --trim;
  rec.trim_len = static_cast<std::uint32_t>(trim);
  if (rle_encoded_size(x) <= trim) {
    rec.bytes = rle_encode(x);
    rec.raw = false;
  } else {
    rec.bytes.assign(x.begin(), x.begin() + static_cast<std::ptrdiff_t>(trim));
    rec.raw = true;
  }
  return rec;
}

Bytes CompressedDelta::wire_bytes() const {
  Bytes total = 0;
  for (const auto& p : payload) total += p.size();
  // 8 bytes of index metadata per page record.
  total += 8ull * pages.size();
  return total;
}

CompressedDelta compress_delta(const PageDelta& delta,
                               std::span<const std::byte> base) {
  CompressedDelta out;
  out.page_size = delta.page_size;
  out.pages = delta.pages;
  out.payload.reserve(delta.pages.size());
  for (std::size_t i = 0; i < delta.pages.size(); ++i) {
    const std::size_t off = delta.pages[i] * delta.page_size;
    VDC_REQUIRE(off + delta.page_size <= base.size(),
                "compress: page outside base image");
    std::vector<std::byte> diff = delta.contents[i];
    parity::xor_into(diff, std::span<const std::byte>(
                               base.data() + off, delta.page_size));
    EncodedRecord rec = encode_record(diff);
    out.payload.push_back(std::move(rec.bytes));
    out.raw.push_back(rec.raw ? 1 : 0);
    out.trim_payload_bytes += rec.trim_len;
  }
  return out;
}

PageDelta decompress_delta(const CompressedDelta& compressed,
                           std::span<const std::byte> base) {
  PageDelta out;
  out.page_size = compressed.page_size;
  out.pages = compressed.pages;
  out.contents.reserve(compressed.pages.size());
  for (std::size_t i = 0; i < compressed.pages.size(); ++i) {
    const std::size_t off = compressed.pages[i] * compressed.page_size;
    VDC_REQUIRE(off + compressed.page_size <= base.size(),
                "decompress: page outside base image");
    std::vector<std::byte> diff;
    if (compressed.is_raw(i)) {
      const auto& p = compressed.payload[i];
      VDC_REQUIRE(p.size() <= compressed.page_size,
                  "decompress: raw record longer than page");
      diff.assign(p.begin(), p.end());
      diff.resize(compressed.page_size, std::byte{0});
    } else {
      diff = rle_decode(compressed.payload[i], compressed.page_size);
    }
    parity::xor_into(diff, std::span<const std::byte>(
                               base.data() + off, compressed.page_size));
    out.contents.push_back(std::move(diff));
  }
  return out;
}

}  // namespace vdc::checkpoint
