#include "checkpoint/rle.hpp"

#include <cstdint>

#include "common/assert.hpp"

namespace vdc::checkpoint {

namespace {

void put_varint(std::vector<std::byte>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::byte>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<std::byte>(v));
}

std::uint64_t get_varint(std::span<const std::byte> in, std::size_t& pos) {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    if (pos >= in.size()) throw Error("rle: truncated varint");
    const auto b = static_cast<std::uint8_t>(in[pos++]);
    if (shift >= 63 && (b >> 1) != 0) throw Error("rle: varint overflow");
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
  }
}

std::size_t varint_size(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

// Shared run scanner: calls emit(zeros, lit_start, lit_len) for each
// zero-run/literal-run record, exactly as rle_encode lays them out.
template <typename Emit>
void scan_runs(std::span<const std::byte> data, Emit&& emit) {
  std::size_t i = 0;
  while (i < data.size()) {
    // Count the zero run.
    std::size_t zeros = 0;
    while (i + zeros < data.size() && data[i + zeros] == std::byte{0})
      ++zeros;
    // Count the literal run that follows. A literal run ends at a zero run
    // long enough (>= 4) to be worth a record boundary.
    std::size_t lit_start = i + zeros;
    std::size_t lit_len = 0;
    std::size_t scan = lit_start;
    while (scan < data.size()) {
      if (data[scan] == std::byte{0}) {
        std::size_t z = 0;
        while (scan + z < data.size() && data[scan + z] == std::byte{0}) ++z;
        if (z >= 4 || scan + z == data.size()) break;
        scan += z;
        lit_len += z;
      } else {
        ++scan;
        ++lit_len;
      }
    }
    emit(zeros, lit_start, lit_len);
    i = lit_start + lit_len;
  }
}

}  // namespace

std::vector<std::byte> rle_encode(std::span<const std::byte> data) {
  std::vector<std::byte> out;
  out.reserve(data.size() / 8 + 16);
  scan_runs(data, [&](std::size_t zeros, std::size_t lit_start,
                      std::size_t lit_len) {
    put_varint(out, zeros);
    put_varint(out, lit_len);
    out.insert(out.end(), data.begin() + static_cast<std::ptrdiff_t>(lit_start),
               data.begin() + static_cast<std::ptrdiff_t>(lit_start + lit_len));
  });
  return out;
}

std::size_t rle_encoded_size(std::span<const std::byte> data) {
  std::size_t total = 0;
  scan_runs(data,
            [&](std::size_t zeros, std::size_t, std::size_t lit_len) {
              total += varint_size(zeros) + varint_size(lit_len) + lit_len;
            });
  return total;
}

std::vector<std::byte> rle_decode(std::span<const std::byte> encoded,
                                  std::size_t expected_size) {
  std::vector<std::byte> out;
  out.reserve(expected_size);
  std::size_t pos = 0;
  while (out.size() < expected_size) {
    if (pos >= encoded.size()) throw Error("rle: truncated stream");
    const std::uint64_t zeros = get_varint(encoded, pos);
    const std::uint64_t lits = get_varint(encoded, pos);
    if (out.size() + zeros + lits > expected_size)
      throw Error("rle: output overrun");
    out.insert(out.end(), zeros, std::byte{0});
    if (pos + lits > encoded.size()) throw Error("rle: truncated literals");
    out.insert(out.end(), encoded.begin() + static_cast<std::ptrdiff_t>(pos),
               encoded.begin() + static_cast<std::ptrdiff_t>(pos + lits));
    pos += lits;
  }
  if (pos != encoded.size()) throw Error("rle: trailing garbage");
  return out;
}

}  // namespace vdc::checkpoint
