#include "checkpoint/store.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/assert.hpp"

namespace vdc::checkpoint {

Bytes StoredCheckpoint::size_bytes() const {
  Bytes total = 0;
  for (const auto& p : pages) total += p->size();
  return total;
}

std::span<const std::byte> StoredCheckpoint::page(std::size_t i) const {
  VDC_ASSERT(i < pages.size());
  VDC_ASSERT_MSG(!patched(i), "use for_each_range on patched chunks");
  return {pages[i]->data(), pages[i]->size()};
}

Bytes StoredCheckpoint::patch_bytes() const {
  Bytes total = 0;
  for (const auto& [i, patch] : patches) total += patch.bytes->size();
  return total;
}

void StoredCheckpoint::for_each_range(
    std::size_t i, std::size_t off, std::size_t len,
    const std::function<void(std::size_t, std::span<const std::byte>)>& fn)
    const {
  VDC_ASSERT(i < pages.size());
  const auto& base = *pages[i];
  VDC_ASSERT(off + len <= base.size());
  if (len == 0) return;
  const auto it = patches.find(static_cast<std::uint32_t>(i));
  if (it == patches.end()) {
    fn(off, {base.data() + off, len});
    return;
  }
  const std::size_t plo = it->second.offset;
  const std::size_t phi = plo + it->second.bytes->size();
  const std::size_t end = off + len;
  // Base bytes before the patch window.
  if (off < plo) {
    const std::size_t n = std::min(plo, end) - off;
    fn(off, {base.data() + off, n});
  }
  // Patched bytes.
  const std::size_t olo = std::max(off, plo);
  const std::size_t ohi = std::min(end, phi);
  if (olo < ohi)
    fn(olo, {it->second.bytes->data() + (olo - plo), ohi - olo});
  // Base bytes after the patch window.
  if (end > phi) {
    const std::size_t lo = std::max(off, phi);
    fn(lo, {base.data() + lo, end - lo});
  }
}

void StoredCheckpoint::for_each_span(
    const std::function<void(std::size_t, std::span<const std::byte>)>& fn)
    const {
  std::size_t off = 0;
  for (std::size_t i = 0; i < pages.size(); ++i) {
    const std::size_t base_off = off;
    for_each_range(i, 0, pages[i]->size(),
                   [&](std::size_t in_page, std::span<const std::byte> s) {
                     fn(base_off + in_page, s);
                   });
    off += pages[i]->size();
  }
}

bool StoredCheckpoint::page_equals(std::size_t i,
                                   std::span<const std::byte> bytes) const {
  VDC_ASSERT(i < pages.size());
  if (bytes.size() != pages[i]->size()) return false;
  bool equal = true;
  for_each_range(i, 0, bytes.size(),
                 [&](std::size_t off, std::span<const std::byte> s) {
                   if (equal &&
                       std::memcmp(bytes.data() + off, s.data(), s.size()) != 0)
                     equal = false;
                 });
  return equal;
}

std::vector<std::byte> StoredCheckpoint::payload() const {
  std::vector<std::byte> out(size_bytes());
  for_each_span([&](std::size_t off, std::span<const std::byte> s) {
    std::memcpy(out.data() + off, s.data(), s.size());
  });
  return out;
}

std::vector<std::byte> StoredCheckpoint::padded_payload(
    std::size_t size) const {
  std::vector<std::byte> out(size, std::byte{0});
  for_each_span([&](std::size_t off, std::span<const std::byte> s) {
    VDC_ASSERT(off + s.size() <= size);
    std::memcpy(out.data() + off, s.data(), s.size());
  });
  return out;
}

bool StoredCheckpoint::payload_equals(std::span<const std::byte> flat) const {
  if (flat.size() != size_bytes()) return false;
  bool equal = true;
  for_each_span([&](std::size_t off, std::span<const std::byte> s) {
    if (equal && std::memcmp(flat.data() + off, s.data(), s.size()) != 0)
      equal = false;
  });
  return equal;
}

std::vector<PageRef> StoredCheckpoint::chop(std::span<const std::byte> flat,
                                            Bytes page_size) {
  std::vector<PageRef> pages;
  if (flat.empty()) return pages;
  if (page_size == 0) page_size = flat.size();
  pages.reserve((flat.size() + page_size - 1) / page_size);
  for (std::size_t off = 0; off < flat.size(); off += page_size) {
    const std::size_t n = std::min<std::size_t>(page_size, flat.size() - off);
    pages.push_back(std::make_shared<const std::vector<std::byte>>(
        flat.begin() + off, flat.begin() + off + n));
  }
  return pages;
}

StoredCheckpoint StoredCheckpoint::from(Checkpoint&& cp) {
  StoredCheckpoint out;
  out.vm = cp.vm;
  out.epoch = cp.epoch;
  out.page_size = cp.page_size;
  out.pages = chop(cp.payload, cp.page_size);
  return out;
}

void CheckpointStore::ref_pages(const StoredCheckpoint& cp) {
  for (const auto& p : cp.pages)
    if (++page_refs_[p.get()] == 1) resident_bytes_ += p->size();
  for (const auto& [i, patch] : cp.patches)
    if (++patch_refs_[patch.bytes.get()] == 1)
      patch_resident_bytes_ += patch.bytes->size();
}

void CheckpointStore::unref_pages(const StoredCheckpoint& cp) {
  for (const auto& p : cp.pages) {
    auto it = page_refs_.find(p.get());
    VDC_ASSERT(it != page_refs_.end() && it->second > 0);
    if (--it->second == 0) {
      resident_bytes_ -= p->size();
      page_refs_.erase(it);
    }
  }
  for (const auto& [i, patch] : cp.patches) {
    auto it = patch_refs_.find(patch.bytes.get());
    VDC_ASSERT(it != patch_refs_.end() && it->second > 0);
    if (--it->second == 0) {
      patch_resident_bytes_ -= patch.bytes->size();
      patch_refs_.erase(it);
    }
  }
}

void CheckpointStore::put(const Checkpoint& cp) { put(Checkpoint(cp)); }

void CheckpointStore::put(Checkpoint&& cp) {
  put(StoredCheckpoint::from(std::move(cp)));
}

void CheckpointStore::put(StoredCheckpoint&& cp) {
  auto& epochs = by_vm_[cp.vm];
  auto it = epochs.find(cp.epoch);
  ref_pages(cp);
  if (it != epochs.end()) {
    unref_pages(it->second);
    it->second = std::move(cp);
  } else {
    epochs.emplace(cp.epoch, std::move(cp));
  }
}

const StoredCheckpoint* CheckpointStore::find(vm::VmId vm,
                                              Epoch epoch) const {
  auto it = by_vm_.find(vm);
  if (it == by_vm_.end()) return nullptr;
  auto jt = it->second.find(epoch);
  return jt == it->second.end() ? nullptr : &jt->second;
}

std::optional<Epoch> CheckpointStore::latest_epoch(vm::VmId vm) const {
  auto it = by_vm_.find(vm);
  if (it == by_vm_.end() || it->second.empty()) return std::nullopt;
  return it->second.rbegin()->first;
}

void CheckpointStore::gc_before(Epoch epoch) {
  for (auto& [vm, epochs] : by_vm_) {
    for (auto it = epochs.begin();
         it != epochs.end() && it->first < epoch;) {
      unref_pages(it->second);
      it = epochs.erase(it);
    }
  }
}

void CheckpointStore::erase(vm::VmId vm, Epoch epoch) {
  auto it = by_vm_.find(vm);
  if (it == by_vm_.end()) return;
  auto jt = it->second.find(epoch);
  if (jt == it->second.end()) return;
  unref_pages(jt->second);
  it->second.erase(jt);
}

void CheckpointStore::drop_vm(vm::VmId vm) {
  auto it = by_vm_.find(vm);
  if (it == by_vm_.end()) return;
  for (auto& [epoch, cp] : it->second) unref_pages(cp);
  by_vm_.erase(it);
}

std::size_t CheckpointStore::entry_count() const {
  std::size_t n = 0;
  for (const auto& [vm, epochs] : by_vm_) n += epochs.size();
  return n;
}

}  // namespace vdc::checkpoint
