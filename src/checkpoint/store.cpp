#include "checkpoint/store.hpp"

#include <utility>

namespace vdc::checkpoint {

void CheckpointStore::put(const Checkpoint& cp) { put(Checkpoint(cp)); }

void CheckpointStore::put(Checkpoint&& cp) {
  auto& epochs = by_vm_[cp.vm];
  auto it = epochs.find(cp.epoch);
  if (it != epochs.end()) {
    total_bytes_ -= it->second.size_bytes();
    it->second = std::move(cp);
    total_bytes_ += it->second.size_bytes();
  } else {
    total_bytes_ += cp.size_bytes();
    epochs.emplace(cp.epoch, std::move(cp));
  }
}

const Checkpoint* CheckpointStore::find(vm::VmId vm, Epoch epoch) const {
  auto it = by_vm_.find(vm);
  if (it == by_vm_.end()) return nullptr;
  auto jt = it->second.find(epoch);
  return jt == it->second.end() ? nullptr : &jt->second;
}

std::optional<Epoch> CheckpointStore::latest_epoch(vm::VmId vm) const {
  auto it = by_vm_.find(vm);
  if (it == by_vm_.end() || it->second.empty()) return std::nullopt;
  return it->second.rbegin()->first;
}

void CheckpointStore::gc_before(Epoch epoch) {
  for (auto& [vm, epochs] : by_vm_) {
    for (auto it = epochs.begin();
         it != epochs.end() && it->first < epoch;) {
      total_bytes_ -= it->second.size_bytes();
      it = epochs.erase(it);
    }
  }
}

void CheckpointStore::erase(vm::VmId vm, Epoch epoch) {
  auto it = by_vm_.find(vm);
  if (it == by_vm_.end()) return;
  auto jt = it->second.find(epoch);
  if (jt == it->second.end()) return;
  total_bytes_ -= jt->second.size_bytes();
  it->second.erase(jt);
}

void CheckpointStore::drop_vm(vm::VmId vm) {
  auto it = by_vm_.find(vm);
  if (it == by_vm_.end()) return;
  for (auto& [epoch, cp] : it->second) total_bytes_ -= cp.size_bytes();
  by_vm_.erase(it);
}

std::size_t CheckpointStore::entry_count() const {
  std::size_t n = 0;
  for (const auto& [vm, epochs] : by_vm_) n += epochs.size();
  return n;
}

}  // namespace vdc::checkpoint
