#pragma once
// Streaming (scatter-gather) checkpoint wire plane.
//
// The frame formats in wire.hpp describe bytes at rest; this header makes
// them streamable in both directions without materializing whole frames:
//
//  * DeltaFrameSource / CheckpointFrameSource — the SEND side. A frame is
//    held as header bytes plus a sequence of spans over existing buffers
//    (encoded delta records, CheckpointStore page refs). `for_each_range`
//    yields any byte range of the logical frame as views, so ChunkedStream
//    payloads come straight out of page refs: no flatten(), no whole-frame
//    vector. CRCs are accumulated incrementally as records are added.
//
//  * DeltaReader / FrameReader — the RECEIVE side. Chunks are fed in
//    arrival order and validated incrementally (magic and header CRC as
//    soon as the header completes, payload CRC as bytes stream through,
//    record shape as each record closes). DeltaReader decodes records on
//    the fly and emits fold callbacks for the literal bytes only — zero
//    runs just advance the page offset — so parity folds run straight off
//    the receive buffers. The only per-stream state is a small fixed carry
//    (partial header/record-meta/varint across a chunk boundary), giving
//    bounded memory per stream regardless of frame size.
//
// Abort safety: readers never touch parity themselves — the fold callback
// does, under the protocol's undo log, and a stream cancelled mid-frame
// simply stops feeding (the undo log restores any partial folds).

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "checkpoint/checkpointer.hpp"
#include "checkpoint/delta.hpp"
#include "checkpoint/wire.hpp"
#include "common/units.hpp"

namespace vdc::checkpoint {

/// Visitor for a byte range of a logical frame: called with consecutive
/// spans covering the range in order.
using SpanSink = std::function<void(std::span<const std::byte>)>;

/// Send-side scatter-gather view of one VDD1 delta frame. Records are added
/// in ascending page order (their encoded bytes are moved in, not copied),
/// then seal() finalizes the CRCs. This class is the layout authority for
/// the VDD1 format: wire.cpp's encode_delta_frame delegates here.
class DeltaFrameSource {
 public:
  DeltaFrameSource(vm::VmId vm, Epoch epoch, Epoch base_epoch,
                   Bytes page_size);

  /// Append one encoded record (see encode_record). Pages must ascend.
  void add_record(vm::PageIndex page, std::vector<std::byte> bytes, bool raw,
                  std::uint32_t trim_len);

  /// Finalize header + payload CRCs. No add_record after this.
  void seal();
  bool sealed() const { return sealed_; }

  std::size_t page_count() const { return recs_.size(); }
  /// Total frame size in bytes (valid any time; exact after seal()).
  std::size_t size() const;
  /// What a trim-only encoder would have shipped for the same records
  /// (header + per-record meta + trim lengths) — compression accounting.
  Bytes trim_frame_size() const;

  /// Yield frame bytes [lo, hi) as a sequence of spans, in order. The spans
  /// point into this source; they stay valid as long as it lives.
  void for_each_range(std::size_t lo, std::size_t hi,
                      const SpanSink& fn) const;

  /// Visit each record's encoded payload: fn(page, encoded bytes, raw).
  void for_each_record(
      const std::function<void(vm::PageIndex, std::span<const std::byte>,
                               bool)>& fn) const;

  /// Materialize the whole frame (tests, wire.cpp compatibility shim).
  std::vector<std::byte> bytes() const;

 private:
  struct Rec {
    vm::PageIndex page = 0;
    std::array<std::byte, 8> meta;  // u32 page, u32 len|mode
    std::vector<std::byte> payload;
    bool raw = false;
  };

  std::array<std::byte, kDeltaFrameHeaderSize> header_{};
  std::vector<Rec> recs_;
  // Cumulative frame offset of the END of each record (meta + payload).
  std::vector<std::size_t> ends_;
  std::uint32_t payload_crc_ = 0;
  Bytes trim_total_ = 0;
  bool sealed_ = false;
  bool have_page_ = false;
  vm::PageIndex last_page_ = 0;
};

/// Send-side scatter-gather view of one VDC1 full-checkpoint frame: header
/// bytes plus caller-provided payload spans (typically CheckpointStore page
/// refs — the caller keeps them alive). Layout authority for VDC1.
class CheckpointFrameSource {
 public:
  CheckpointFrameSource(vm::VmId vm, Epoch epoch, Bytes page_size,
                        std::vector<std::span<const std::byte>> payload);

  std::size_t size() const { return kFrameHeaderSize + payload_len_; }
  void for_each_range(std::size_t lo, std::size_t hi,
                      const SpanSink& fn) const;
  std::vector<std::byte> bytes() const;

 private:
  std::array<std::byte, kFrameHeaderSize> header_{};
  std::vector<std::span<const std::byte>> spans_;
  std::vector<std::size_t> ends_;  // cumulative payload end offsets
  std::size_t payload_len_ = 0;
};

/// Enumerate the literal runs of one encoded delta record: the byte ranges
/// of the decoded page that a fold-from-wire ingest will actually touch
/// (zero runs touch nothing). fn(offset_in_page, length). Used to build the
/// undo log without decoding payload bytes.
void for_each_literal_run(
    std::span<const std::byte> encoded, bool raw, Bytes page_size,
    const std::function<void(std::size_t, std::size_t)>& fn);

/// Receive-side incremental VDD1 parser. Feed chunks in frame order; emits
/// fold callbacks for literal bytes as they arrive. Throws WireError on any
/// corruption, as early as it is detectable.
class DeltaReader {
 public:
  struct Header {
    vm::VmId vm = 0;
    Epoch epoch = 0;
    Epoch base_epoch = 0;
    Bytes page_size = 0;
    std::uint64_t page_count = 0;
    std::uint64_t payload_len = 0;
  };

  /// fold(page, offset_in_page, literal bytes): XOR `literal bytes` into
  /// the page at that offset. Spans point into the fed chunk; consume
  /// within the callback.
  using FoldFn =
      std::function<void(vm::PageIndex, std::size_t, std::span<const std::byte>)>;

  explicit DeltaReader(FoldFn fold);

  /// Consume the next chunk of the frame. Throws WireError on corruption
  /// or on bytes past the end of the frame.
  void feed(std::span<const std::byte> chunk);

  bool header_done() const { return state_ != State::Header; }
  const Header& header() const { return hdr_; }
  bool complete() const { return state_ == State::Done; }
  /// Bytes of frame consumed so far.
  std::size_t consumed() const { return consumed_; }

  /// Upper bound on carried bytes between feeds (partial header / record
  /// meta / varint). The reader never buffers payload.
  static constexpr std::size_t kMaxCarry = kDeltaFrameHeaderSize;

 private:
  enum class State {
    Header,    // first 56 bytes
    RecMeta,   // u32 page, u32 len|mode
    RleZeros,  // varint zero-run length
    RleLits,   // varint literal-run length
    RleData,   // literal bytes
    RawData,   // raw-prefix bytes
    Done,
  };

  void finish_header();
  void finish_record();

  FoldFn fold_;
  State state_ = State::Header;
  Header hdr_;

  std::array<std::byte, kMaxCarry> carry_{};
  std::size_t carry_len_ = 0;

  std::size_t consumed_ = 0;       // total frame bytes consumed
  std::uint32_t payload_crc_ = 0;  // running CRC over payload bytes
  std::uint32_t expected_payload_crc_ = 0;
  std::uint64_t records_done_ = 0;

  // Current record.
  vm::PageIndex page_ = 0;
  bool raw_ = false;
  std::size_t rec_len_ = 0;        // encoded payload length of the record
  std::size_t rec_consumed_ = 0;   // encoded bytes consumed so far
  std::size_t decoded_off_ = 0;    // decoded position within the page
  std::size_t run_remaining_ = 0;  // literal/raw bytes still expected
  std::uint64_t varint_val_ = 0;   // partial varint accumulator
  int varint_shift_ = 0;
  bool have_page_ = false;
  vm::PageIndex prev_page_ = 0;
};

/// Receive-side incremental VDC1 parser: validates header + payload CRC and
/// emits payload spans in order. fn(payload_offset, bytes).
class FrameReader {
 public:
  using DataFn = std::function<void(std::size_t, std::span<const std::byte>)>;

  struct Header {
    vm::VmId vm = 0;
    Epoch epoch = 0;
    Bytes page_size = 0;
    std::uint64_t payload_len = 0;
  };

  explicit FrameReader(DataFn data);

  void feed(std::span<const std::byte> chunk);
  bool header_done() const { return header_done_; }
  const Header& header() const { return hdr_; }
  bool complete() const;

 private:
  DataFn data_;
  Header hdr_;
  std::array<std::byte, kFrameHeaderSize> carry_{};
  std::size_t carry_len_ = 0;
  std::size_t consumed_ = 0;
  std::uint32_t payload_crc_ = 0;
  std::uint32_t expected_payload_crc_ = 0;
  bool header_done_ = false;
};

}  // namespace vdc::checkpoint
