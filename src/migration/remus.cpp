#include "migration/remus.hpp"

#include <utility>

#include "common/assert.hpp"

namespace vdc::migration {

RemusReplicator::RemusReplicator(simkit::Simulator& sim, net::Fabric& fabric,
                                 vm::Hypervisor& primary,
                                 net::HostId primary_host,
                                 net::HostId backup_host,
                                 vm::VmId protected_vm, RemusConfig config)
    : sim_(sim),
      fabric_(fabric),
      primary_(primary),
      primary_host_(primary_host),
      backup_host_(backup_host),
      vm_(protected_vm),
      config_(config) {
  VDC_REQUIRE(config.epoch_interval > 0.0, "epoch interval must be positive");
  VDC_REQUIRE(config.buffer_copy_rate > 0.0, "copy rate must be positive");
  VDC_REQUIRE(primary.hosts(protected_vm), "protected VM not on primary");
}

void RemusReplicator::start() {
  VDC_REQUIRE(!running_, "replicator already running");
  running_ = true;
  last_advance_ = sim_.now();
  last_ack_capture_time_ = sim_.now();
  timer_ = sim_.after(config_.epoch_interval, [this] { on_epoch_timer(); });
}

void RemusReplicator::stop() { stop_internal(/*resume_guest=*/true); }

void RemusReplicator::stop_internal(bool resume_guest) {
  running_ = false;
  if (timer_ != simkit::kInvalidEvent) {
    sim_.cancel(timer_);
    timer_ = simkit::kInvalidEvent;
  }
  // The capture path parks two continuations that used to outlive stop():
  // the staging-pause end event (which would resume a guest this
  // replicator no longer owns and charge its pause time) and the ship
  // flow (whose completion would overwrite backup_image_ after a
  // failover already took it). Cancel both.
  const bool mid_pause = pause_event_ != simkit::kInvalidEvent;
  if (mid_pause) {
    sim_.cancel(pause_event_);
    pause_event_ = simkit::kInvalidEvent;
  }
  if (ship_flow_ != net::kInvalidFlow) {
    fabric_.cancel(ship_flow_);
    ship_flow_ = net::kInvalidFlow;
  }
  ship_in_flight_ = false;
  pending_image_.clear();
  if (mid_pause && resume_guest && primary_.hosts(vm_) &&
      primary_.get(vm_).state() == vm::VmState::Paused) {
    // Orderly stop mid-capture: un-freeze the guest we paused.
    primary_.get(vm_).resume();
    last_advance_ = sim_.now();
  }
}

void RemusReplicator::on_epoch_timer() {
  timer_ = simkit::kInvalidEvent;
  if (!running_) return;

  if (ship_in_flight_) {
    // Back-pressure: the previous epoch is still being shipped. Skip this
    // tick; the ack path will re-arm the timer.
    ++stats_.epochs_skipped;
    return;
  }
  capture_and_ship();
}

void RemusReplicator::capture_and_ship() {
  // Bring the guest's virtual time up to now, then freeze it.
  auto& machine = primary_.get(vm_);
  primary_.advance_vm(vm_, sim_.now() - last_advance_);
  last_advance_ = sim_.now();
  machine.pause();

  const SimTime capture_time = sim_.now();
  auto result = incremental_.capture(machine, next_epoch_++);
  ++stats_.epochs_captured;

  const Bytes staged = result.shipped_raw;
  const Bytes wire = (config_.compress && result.shipped_compressed > 0)
                         ? result.shipped_compressed
                         : staged;
  const SimTime pause =
      config_.pause_overhead +
      static_cast<double>(staged) / config_.buffer_copy_rate;

  pending_image_ = result.checkpoint.payload;

  // Resume after the staging copy completes; ship asynchronously. Both
  // continuations are guarded on running_ and tracked (pause_event_ /
  // ship_flow_) so stop() and failover() can cancel them.
  pause_event_ = sim_.after(pause, [this, capture_time, wire, pause] {
    pause_event_ = simkit::kInvalidEvent;
    if (!running_) return;
    stats_.total_pause_time += pause;
    auto& machine = primary_.get(vm_);
    machine.resume();
    last_advance_ = sim_.now();

    ship_in_flight_ = true;
    stats_.bytes_shipped += wire;
    ship_flow_ = fabric_.transfer(
        primary_host_, backup_host_, wire, [this, capture_time] {
          ship_flow_ = net::kInvalidFlow;
          ship_in_flight_ = false;
          if (!running_) return;
          backup_image_ = std::move(pending_image_);
          pending_image_.clear();
          last_ack_capture_time_ = capture_time;
          ++stats_.epochs_committed;
          // Re-arm: next epoch fires one interval after the
          // last capture, or immediately if we are behind.
          const SimTime next = std::max(
              sim_.now(), capture_time + config_.epoch_interval);
          timer_ = sim_.at(next, [this] { on_epoch_timer(); });
        });
  });
}

RemusReplicator::Failover RemusReplicator::failover() {
  Failover result;
  result.lost_work = sim_.now() - last_ack_capture_time_;
  result.image = backup_image_;
  // The primary is dead: tear everything down but never resume its guest.
  stop_internal(/*resume_guest=*/false);
  return result;
}

}  // namespace vdc::migration
