#pragma once
// Live migration of VMs between physical hosts (Clark et al., NSDI'05).
//
// Pre-copy: round 0 ships the whole image while the guest runs; each
// following round ships the pages dirtied during the previous round. When
// the dirty set is small enough (or rounds run out), the guest is paused
// and the residue is shipped — that final stop-and-copy window is the
// downtime, which the paper quotes at tens of milliseconds. The guest
// workload keeps dirtying memory *during* transfer rounds, so convergence
// genuinely depends on the dirty rate vs. link speed, as in the original
// paper. StopAndCopy (pause, ship everything, resume) is the baseline.

#include <functional>

#include "net/fabric.hpp"
#include "vm/machine.hpp"

namespace vdc::migration {

struct PreCopyConfig {
  std::uint32_t max_rounds = 8;   // including round 0 (full image)
  /// Enter stop-and-copy when the dirty set drops to this many pages.
  std::size_t stop_dirty_pages = 64;
  /// Enter stop-and-copy when a round shrinks the dirty set by less than
  /// this factor (writable-working-set plateau).
  double min_shrink = 0.95;
  /// Fixed guest suspend/resume cost added to downtime.
  SimTime switch_overhead = milliseconds(3);
};

struct MigrationStats {
  SimTime total_time = 0.0;  // first byte to guest running on destination
  SimTime downtime = 0.0;    // guest paused
  Bytes bytes_sent = 0;
  std::uint32_t rounds = 0;  // pre-copy rounds before stop-and-copy
  bool converged = false;    // dirty set met the threshold (vs. round cap)
  /// Rounds where a checkpoint epoch consumed the dirty log mid-transfer
  /// and the migrator had to fall back to shipping the full image.
  std::uint32_t dirty_log_fallbacks = 0;
};

/// Migrates one VM between two hypervisors over the fabric. The migrator
/// advances the guest's workload across each transfer round, so dirtying
/// during migration is accounted for. One migration at a time per instance.
class PreCopyMigrator {
 public:
  using DoneCallback = std::function<void(const MigrationStats&)>;

  PreCopyMigrator(simkit::Simulator& sim, net::Fabric& fabric,
                  PreCopyConfig config = {});

  /// Begin migrating `id` from (src hypervisor, src host) to (dst
  /// hypervisor, dst host). `done` fires when the guest runs on dst.
  void migrate(vm::VmId id, vm::Hypervisor& src, net::HostId src_host,
               vm::Hypervisor& dst, net::HostId dst_host, DoneCallback done);

  bool busy() const { return busy_; }

  /// Abort the in-flight migration (the source node failed, or the caller
  /// changed its mind): cancels the current transfer flow and switch-over
  /// event, drops the done callback, resumes a guest left frozen for
  /// stop-and-copy (if it still exists) and resets busy(). No-op when idle.
  void cancel();

 private:
  void run_round(std::uint32_t round, SimTime round_start, Bytes to_send,
                 std::size_t prev_dirty);
  void final_copy(SimTime start);
  void finish();

  simkit::Simulator& sim_;
  net::Fabric& fabric_;
  PreCopyConfig config_;

  // In-flight migration state.
  bool busy_ = false;
  vm::VmId vm_ = 0;
  vm::Hypervisor* src_ = nullptr;
  vm::Hypervisor* dst_ = nullptr;
  net::HostId src_host_ = 0;
  net::HostId dst_host_ = 0;
  DoneCallback done_;
  MigrationStats stats_;
  SimTime start_time_ = 0.0;
  /// Dirty generation observed after our last clear_dirty(). The
  /// checkpoint coordinator consumes the same log (generation-checked on
  /// its side too); a mismatch at round end means an epoch cleared it
  /// mid-round and the incremental round residue is untrustworthy.
  std::uint64_t dirty_gen_ = 0;
  net::FlowId flow_ = net::kInvalidFlow;           // in-flight round/residue
  simkit::EventId event_ = simkit::kInvalidEvent;  // switch-over timer
};

/// Pause, ship the whole image, resume on the destination. Downtime is the
/// entire transfer: the baseline pre-copy beats.
class StopAndCopyMigrator {
 public:
  using DoneCallback = std::function<void(const MigrationStats&)>;

  StopAndCopyMigrator(simkit::Simulator& sim, net::Fabric& fabric,
                      SimTime switch_overhead = milliseconds(3))
      : sim_(sim), fabric_(fabric), switch_overhead_(switch_overhead) {}

  void migrate(vm::VmId id, vm::Hypervisor& src, net::HostId src_host,
               vm::Hypervisor& dst, net::HostId dst_host, DoneCallback done);

 private:
  simkit::Simulator& sim_;
  net::Fabric& fabric_;
  SimTime switch_overhead_;
};

}  // namespace vdc::migration
