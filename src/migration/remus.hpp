#pragma once
// Remus-style active/standby replication (Cully et al., NSDI'08).
//
// The paper positions DVDC against Remus (Section VI): Remus pairs each
// protected VM with a standby host and ships incremental checkpoints tens
// of times per second; on failure the standby resumes almost instantly
// from the last acknowledged epoch, losing only the unacknowledged
// speculation window. This implementation reproduces that protocol shape:
// epoch timer -> brief pause to capture the dirty set -> resume -> async
// ship (XOR+RLE compressed) -> ack moves the recovery point forward. It is
// the baseline for bench/recovery_comparison.

#include <functional>
#include <optional>

#include "checkpoint/checkpointer.hpp"
#include "net/fabric.hpp"
#include "vm/machine.hpp"

namespace vdc::migration {

struct RemusConfig {
  /// Checkpoint epoch length; 25 ms = the paper's "40 times a second".
  SimTime epoch_interval = 0.025;
  /// Rate of copying dirty pages into the staging buffer while paused.
  Rate buffer_copy_rate = gib_per_s(10);
  /// Fixed suspend/resume cost per epoch.
  SimTime pause_overhead = 200e-6;
  /// Ship XOR+RLE-compressed deltas instead of raw dirty pages.
  bool compress = true;
};

struct RemusStats {
  std::uint64_t epochs_committed = 0;  // acked by the backup
  std::uint64_t epochs_captured = 0;
  std::uint64_t epochs_skipped = 0;    // timer fired while ship in flight
  SimTime total_pause_time = 0.0;      // overhead: guest suspended
  Bytes bytes_shipped = 0;
};

class RemusReplicator {
 public:
  RemusReplicator(simkit::Simulator& sim, net::Fabric& fabric,
                  vm::Hypervisor& primary, net::HostId primary_host,
                  net::HostId backup_host, vm::VmId protected_vm,
                  RemusConfig config = {});

  /// Begin the epoch timer. The first epoch ships the full image.
  void start();

  /// Stop replicating: cancels the epoch timer, the deferred staging-pause
  /// event and any in-flight ship flow. A guest left frozen mid-capture is
  /// resumed (failover() skips that — the primary is dead).
  void stop();

  /// Primary failed: promote the standby image. Returns the lost-work
  /// window (time since the last *acknowledged* capture) and the recovered
  /// full image. Stops replication.
  struct Failover {
    SimTime lost_work = 0.0;
    std::vector<std::byte> image;
  };
  Failover failover();

  const RemusStats& stats() const { return stats_; }

  /// Recovery-point staleness right now: time since last acked capture.
  SimTime staleness() const { return sim_.now() - last_ack_capture_time_; }

 private:
  void on_epoch_timer();
  void capture_and_ship();
  /// Shared teardown. `resume_guest` distinguishes an orderly stop()
  /// (resume a guest frozen in the staging pause) from failover() (the
  /// primary is gone; never touch — let alone resume — its guest).
  void stop_internal(bool resume_guest);

  simkit::Simulator& sim_;
  net::Fabric& fabric_;
  vm::Hypervisor& primary_;
  net::HostId primary_host_;
  net::HostId backup_host_;
  vm::VmId vm_;
  RemusConfig config_;

  checkpoint::IncrementalCheckpointer incremental_;
  std::vector<std::byte> backup_image_;  // standby's committed state
  std::vector<std::byte> pending_image_; // captured, in flight

  bool running_ = false;
  bool ship_in_flight_ = false;
  simkit::EventId timer_ = simkit::kInvalidEvent;
  simkit::EventId pause_event_ = simkit::kInvalidEvent;  // staging-pause end
  net::FlowId ship_flow_ = net::kInvalidFlow;            // in-flight ship
  SimTime last_advance_ = 0.0;
  SimTime last_ack_capture_time_ = 0.0;
  checkpoint::Epoch next_epoch_ = 1;
  RemusStats stats_;
};

}  // namespace vdc::migration
