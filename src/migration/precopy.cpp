#include "migration/precopy.hpp"

#include <utility>

#include "common/assert.hpp"

namespace vdc::migration {

PreCopyMigrator::PreCopyMigrator(simkit::Simulator& sim, net::Fabric& fabric,
                                 PreCopyConfig config)
    : sim_(sim), fabric_(fabric), config_(config) {
  VDC_REQUIRE(config.max_rounds >= 1, "pre-copy needs at least one round");
}

void PreCopyMigrator::migrate(vm::VmId id, vm::Hypervisor& src,
                              net::HostId src_host, vm::Hypervisor& dst,
                              net::HostId dst_host, DoneCallback done) {
  VDC_REQUIRE(!busy_, "PreCopyMigrator handles one migration at a time");
  VDC_REQUIRE(src.hosts(id), "migrate: VM not on source node");
  busy_ = true;
  vm_ = id;
  src_ = &src;
  dst_ = &dst;
  src_host_ = src_host;
  dst_host_ = dst_host;
  done_ = std::move(done);
  stats_ = {};
  start_time_ = sim_.now();

  // Round 0 ships the full image; clear the dirty log so each later round
  // sees exactly the pages dirtied during the previous transfer.
  auto& image = src.get(id).image();
  image.clear_dirty();
  run_round(0, sim_.now(), image.size_bytes(), image.page_count());
}

void PreCopyMigrator::run_round(std::uint32_t round, SimTime round_start,
                                Bytes to_send, std::size_t prev_dirty) {
  stats_.rounds = round + 1;
  stats_.bytes_sent += to_send;
  fabric_.transfer(src_host_, dst_host_, to_send, [this, round, round_start,
                                                   prev_dirty] {
    // The guest kept running during the transfer: account its dirtying.
    const SimTime elapsed = sim_.now() - round_start;
    src_->advance_vm(vm_, elapsed);

    auto& image = src_->get(vm_).image();
    const std::size_t dirty = image.dirty_count();

    const bool small_enough = dirty <= config_.stop_dirty_pages;
    const bool plateaued =
        prev_dirty > 0 &&
        static_cast<double>(dirty) >=
            config_.min_shrink * static_cast<double>(prev_dirty);
    const bool out_of_rounds = round + 1 >= config_.max_rounds;

    if (small_enough || plateaued || out_of_rounds) {
      stats_.converged = small_enough;
      final_copy(sim_.now());
      return;
    }

    const Bytes bytes = static_cast<Bytes>(dirty) * image.page_size();
    image.clear_dirty();
    run_round(round + 1, sim_.now(), bytes, dirty);
  });
}

void PreCopyMigrator::final_copy(SimTime start) {
  auto& machine = src_->get(vm_);
  machine.pause();
  auto& image = machine.image();
  const Bytes residue =
      static_cast<Bytes>(image.dirty_count()) * image.page_size();
  stats_.bytes_sent += residue;
  image.clear_dirty();

  fabric_.transfer(src_host_, dst_host_, residue, [this, start] {
    sim_.after(config_.switch_overhead, [this, start] {
      stats_.downtime = sim_.now() - start;
      finish();
    });
  });
}

void PreCopyMigrator::finish() {
  auto machine = src_->evict(vm_);
  machine->resume();
  dst_->adopt(std::move(machine));
  stats_.total_time = sim_.now() - start_time_;
  busy_ = false;
  if (done_) {
    auto done = std::move(done_);
    done(stats_);
  }
}

void StopAndCopyMigrator::migrate(vm::VmId id, vm::Hypervisor& src,
                                  net::HostId src_host, vm::Hypervisor& dst,
                                  net::HostId dst_host, DoneCallback done) {
  VDC_REQUIRE(src.hosts(id), "migrate: VM not on source node");
  const SimTime start = sim_.now();
  auto& machine = src.get(id);
  machine.pause();
  const Bytes bytes = machine.image().size_bytes();

  fabric_.transfer(
      src_host, dst_host, bytes,
      [this, id, &src, &dst, start, bytes, done = std::move(done)]() mutable {
        sim_.after(switch_overhead_, [this, id, &src, &dst, start, bytes,
                                      done = std::move(done)]() mutable {
          auto machine = src.evict(id);
          machine->resume();
          dst.adopt(std::move(machine));
          MigrationStats stats;
          stats.total_time = sim_.now() - start;
          stats.downtime = stats.total_time;
          stats.bytes_sent = bytes;
          stats.rounds = 0;
          stats.converged = true;
          if (done) done(stats);
        });
      });
}

}  // namespace vdc::migration
