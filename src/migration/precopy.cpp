#include "migration/precopy.hpp"

#include <utility>

#include "common/assert.hpp"

namespace vdc::migration {

PreCopyMigrator::PreCopyMigrator(simkit::Simulator& sim, net::Fabric& fabric,
                                 PreCopyConfig config)
    : sim_(sim), fabric_(fabric), config_(config) {
  VDC_REQUIRE(config.max_rounds >= 1, "pre-copy needs at least one round");
}

void PreCopyMigrator::migrate(vm::VmId id, vm::Hypervisor& src,
                              net::HostId src_host, vm::Hypervisor& dst,
                              net::HostId dst_host, DoneCallback done) {
  VDC_REQUIRE(!busy_, "PreCopyMigrator handles one migration at a time");
  VDC_REQUIRE(src.hosts(id), "migrate: VM not on source node");
  busy_ = true;
  vm_ = id;
  src_ = &src;
  dst_ = &dst;
  src_host_ = src_host;
  dst_host_ = dst_host;
  done_ = std::move(done);
  stats_ = {};
  start_time_ = sim_.now();

  // Round 0 ships the full image; clear the dirty log so each later round
  // sees exactly the pages dirtied during the previous transfer. Record
  // the resulting generation: the checkpoint coordinator shares this log
  // and detects our clear the same way (and vice versa).
  auto& image = src.get(id).image();
  image.clear_dirty();
  dirty_gen_ = image.dirty_generation();
  run_round(0, sim_.now(), image.size_bytes(), image.page_count());
}

void PreCopyMigrator::run_round(std::uint32_t round, SimTime round_start,
                                Bytes to_send, std::size_t prev_dirty) {
  stats_.rounds = round + 1;
  stats_.bytes_sent += to_send;
  flow_ = fabric_.transfer(src_host_, dst_host_, to_send, [this, round,
                                                           round_start,
                                                           prev_dirty] {
    flow_ = net::kInvalidFlow;
    // The guest kept running during the transfer: account its dirtying.
    const SimTime elapsed = sim_.now() - round_start;
    src_->advance_vm(vm_, elapsed);

    auto& image = src_->get(vm_).image();
    if (image.dirty_generation() != dirty_gen_) {
      // A checkpoint epoch consumed the dirty log mid-round: pages
      // dirtied before its clear are gone from the log, so an
      // incremental round would leave the destination stale. Fall back
      // to a full-image round (or a full stop-and-copy if rounds ran
      // out — mark_all_dirty makes final_copy ship everything).
      ++stats_.dirty_log_fallbacks;
      if (round + 1 >= config_.max_rounds) {
        stats_.converged = false;
        image.mark_all_dirty();
        final_copy(sim_.now());
        return;
      }
      image.clear_dirty();
      dirty_gen_ = image.dirty_generation();
      run_round(round + 1, sim_.now(), image.size_bytes(),
                image.page_count());
      return;
    }
    const std::size_t dirty = image.dirty_count();

    const bool small_enough = dirty <= config_.stop_dirty_pages;
    const bool plateaued =
        prev_dirty > 0 &&
        static_cast<double>(dirty) >=
            config_.min_shrink * static_cast<double>(prev_dirty);
    const bool out_of_rounds = round + 1 >= config_.max_rounds;

    if (small_enough || plateaued || out_of_rounds) {
      stats_.converged = small_enough;
      final_copy(sim_.now());
      return;
    }

    const Bytes bytes = static_cast<Bytes>(dirty) * image.page_size();
    image.clear_dirty();
    dirty_gen_ = image.dirty_generation();
    run_round(round + 1, sim_.now(), bytes, dirty);
  });
}

void PreCopyMigrator::final_copy(SimTime start) {
  auto& machine = src_->get(vm_);
  machine.pause();
  auto& image = machine.image();
  const Bytes residue =
      static_cast<Bytes>(image.dirty_count()) * image.page_size();
  stats_.bytes_sent += residue;
  // Deliberately no clear_dirty() here: the image object moves wholesale
  // to the destination hypervisor, and the checkpoint coordinator's
  // incremental view of this log stays coherent across the move. Clearing
  // would silently shrink the guest's next checkpoint delta.

  flow_ = fabric_.transfer(src_host_, dst_host_, residue, [this, start] {
    flow_ = net::kInvalidFlow;
    event_ = sim_.after(config_.switch_overhead, [this, start] {
      event_ = simkit::kInvalidEvent;
      stats_.downtime = sim_.now() - start;
      finish();
    });
  });
}

void PreCopyMigrator::finish() {
  auto machine = src_->evict(vm_);
  machine->resume();
  dst_->adopt(std::move(machine));
  stats_.total_time = sim_.now() - start_time_;
  busy_ = false;
  if (done_) {
    auto done = std::move(done_);
    done(stats_);
  }
}

void PreCopyMigrator::cancel() {
  if (!busy_) return;
  if (flow_ != net::kInvalidFlow) {
    fabric_.cancel(flow_);
    flow_ = net::kInvalidFlow;
  }
  if (event_ != simkit::kInvalidEvent) {
    sim_.cancel(event_);
    event_ = simkit::kInvalidEvent;
  }
  busy_ = false;
  done_ = nullptr;
  // A guest frozen for stop-and-copy that still exists on a live source
  // gets un-frozen; a failed source simply no longer hosts it.
  if (src_ != nullptr && src_->hosts(vm_) &&
      src_->get(vm_).state() == vm::VmState::Paused)
    src_->get(vm_).resume();
}

void StopAndCopyMigrator::migrate(vm::VmId id, vm::Hypervisor& src,
                                  net::HostId src_host, vm::Hypervisor& dst,
                                  net::HostId dst_host, DoneCallback done) {
  VDC_REQUIRE(src.hosts(id), "migrate: VM not on source node");
  const SimTime start = sim_.now();
  auto& machine = src.get(id);
  machine.pause();
  const Bytes bytes = machine.image().size_bytes();

  fabric_.transfer(
      src_host, dst_host, bytes,
      [this, id, &src, &dst, start, bytes, done = std::move(done)]() mutable {
        sim_.after(switch_overhead_, [this, id, &src, &dst, start, bytes,
                                      done = std::move(done)]() mutable {
          auto machine = src.evict(id);
          machine->resume();
          dst.adopt(std::move(machine));
          MigrationStats stats;
          stats.total_time = sim_.now() - start;
          stats.downtime = stats.total_time;
          stats.bytes_sent = bytes;
          stats.rounds = 0;
          stats.converged = true;
          if (done) done(stats);
        });
      });
}

}  // namespace vdc::migration
