#pragma once
// Page-hash deduplicated migration — the paper's stated future work:
//
//   "we are currently looking at the benefits of using page hashes to
//    speed up live migration when similar VMs reside at the host
//    destination."  (Section VII)
//
// The destination advertises a hash index over the pages of every VM it
// already hosts; the source ships only the pages whose hash is absent and
// a per-page hash manifest for the rest. Matched pages are copied locally
// at the destination. Because a 64-bit hash can collide, matches are
// verified against the actual bytes (hash-and-verify); collisions are
// counted and shipped like misses, so the migrated image is always
// byte-exact.

#include <cstdint>
#include <functional>
#include <span>
#include <unordered_map>
#include <vector>

#include "net/fabric.hpp"
#include "vm/machine.hpp"

namespace vdc::migration {

/// FNV-1a 64-bit over a page's bytes.
std::uint64_t page_hash(std::span<const std::byte> page);

/// Hash index over the resident pages of a destination host.
class PageHashIndex {
 public:
  /// Index every page of `image`. First content wins per hash value.
  void add_image(const vm::MemoryImage& image);

  /// Index all VMs hosted by `hypervisor`.
  void add_host(const vm::Hypervisor& hypervisor);

  /// Content for a hash, or empty span if unknown.
  std::span<const std::byte> lookup(std::uint64_t hash) const;

  std::size_t distinct_pages() const { return pages_.size(); }

 private:
  std::unordered_map<std::uint64_t, std::vector<std::byte>> pages_;
};

struct DedupStats {
  std::size_t pages_total = 0;
  std::size_t pages_matched = 0;   // found at the destination (verified)
  std::size_t hash_collisions = 0; // hash matched, bytes did not
  Bytes bytes_sent = 0;            // manifest + missed pages
  Bytes bytes_saved = 0;           // matched pages not shipped
  SimTime total_time = 0.0;
};

/// Stop-and-copy migration with page-hash dedup against the destination's
/// resident VMs. (The same manifest trick composes with pre-copy rounds;
/// stop-and-copy keeps the accounting legible for the ablation bench.)
class DedupMigrator {
 public:
  using DoneCallback = std::function<void(const DedupStats&)>;

  DedupMigrator(simkit::Simulator& sim, net::Fabric& fabric,
                SimTime switch_overhead = milliseconds(3))
      : sim_(sim), fabric_(fabric), switch_overhead_(switch_overhead) {}

  /// Migrate `id` from src to dst, deduplicating against every VM already
  /// hosted on dst.
  void migrate(vm::VmId id, vm::Hypervisor& src, net::HostId src_host,
               vm::Hypervisor& dst, net::HostId dst_host, DoneCallback done);

 private:
  simkit::Simulator& sim_;
  net::Fabric& fabric_;
  SimTime switch_overhead_;
};

}  // namespace vdc::migration
