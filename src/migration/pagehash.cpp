#include "migration/pagehash.hpp"

#include <algorithm>
#include <utility>

#include "common/assert.hpp"

namespace vdc::migration {

std::uint64_t page_hash(std::span<const std::byte> page) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::byte b : page) {
    h ^= static_cast<std::uint64_t>(b);
    h *= 0x100000001b3ull;
  }
  return h;
}

void PageHashIndex::add_image(const vm::MemoryImage& image) {
  for (vm::PageIndex p = 0; p < image.page_count(); ++p) {
    auto view = image.page(p);
    pages_.emplace(page_hash(view),
                   std::vector<std::byte>(view.begin(), view.end()));
  }
}

void PageHashIndex::add_host(const vm::Hypervisor& hypervisor) {
  for (vm::VmId id : hypervisor.vm_ids())
    add_image(hypervisor.get(id).image());
}

std::span<const std::byte> PageHashIndex::lookup(std::uint64_t hash) const {
  auto it = pages_.find(hash);
  if (it == pages_.end()) return {};
  return {it->second.data(), it->second.size()};
}

void DedupMigrator::migrate(vm::VmId id, vm::Hypervisor& src,
                            net::HostId src_host, vm::Hypervisor& dst,
                            net::HostId dst_host, DoneCallback done) {
  VDC_REQUIRE(src.hosts(id), "migrate: VM not on source node");
  const SimTime start = sim_.now();
  auto& machine = src.get(id);
  machine.pause();
  const auto& image = machine.image();

  // Destination side: index its resident pages.
  PageHashIndex index;
  index.add_host(dst);

  // Source side: classify every page.
  auto stats = std::make_shared<DedupStats>();
  stats->pages_total = image.page_count();
  const Bytes page_size = image.page_size();
  constexpr Bytes kManifestEntry = 8;  // one 64-bit hash per page

  for (vm::PageIndex p = 0; p < image.page_count(); ++p) {
    auto view = image.page(p);
    const auto resident = index.lookup(page_hash(view));
    if (!resident.empty()) {
      if (std::equal(view.begin(), view.end(), resident.begin(),
                     resident.end())) {
        ++stats->pages_matched;
        stats->bytes_saved += page_size;
        continue;
      }
      ++stats->hash_collisions;  // verified mismatch: ship it
    }
    stats->bytes_sent += page_size;
  }
  stats->bytes_sent += kManifestEntry * stats->pages_total;

  fabric_.transfer(
      src_host, dst_host, stats->bytes_sent,
      [this, id, &src, &dst, start, stats, done = std::move(done)]() mutable {
        sim_.after(switch_overhead_, [this, id, &src, &dst, start, stats,
                                      done = std::move(done)]() mutable {
          // Content moves exactly (matched pages were byte-verified).
          auto machine = src.evict(id);
          machine->resume();
          dst.adopt(std::move(machine));
          stats->total_time = sim_.now() - start;
          if (done) done(*stats);
        });
      });
}

}  // namespace vdc::migration
