// Seed-sweep "fuzz" of the end-to-end runtime: across many failure
// histories and schemes, the job must always finish, accounting must stay
// coherent, and identical seeds must replay identically. These are the
// whole-system invariants that unit tests can't pin down.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <tuple>

#include "core/baseline.hpp"
#include "core/runtime.hpp"
#include "model/montecarlo.hpp"

namespace vdc::core {
namespace {

// Seed budget: 8 by default; the nightly sanitizer job widens it with
// VDC_FUZZ_SEEDS=1000.
int fuzz_seed_count() {
  if (const char* env = std::getenv("VDC_FUZZ_SEEDS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 8;
}

ClusterConfig tiny_cluster() {
  ClusterConfig cc;
  cc.nodes = 4;
  cc.vms_per_node = 2;
  cc.page_size = kib(1);
  cc.pages_per_vm = 16;
  cc.write_rate = 150.0;
  return cc;
}

JobRunner::BackendFactory backend_for(ParityScheme scheme,
                                      ClusterConfig cc) {
  return [scheme, cc](simkit::Simulator& sim,
                      cluster::ClusterManager& cluster,
                      Rng&) -> std::unique_ptr<CheckpointBackend> {
    ProtocolConfig pc;
    pc.scheme = scheme;
    PlannerConfig planner;
    planner.group_size = 2;  // leaves >= 2 nodes parity-eligible (RDP/RS)
    return std::make_unique<DvdcBackend>(sim, cluster, pc, RecoveryConfig{},
                                         make_workload_factory(cc), planner);
  };
}

class RuntimeFuzz
    : public ::testing::TestWithParam<std::tuple<ParityScheme, int>> {};

TEST_P(RuntimeFuzz, AlwaysFinishesWithCoherentAccounting) {
  const auto [scheme, seed] = GetParam();
  JobConfig job;
  job.total_work = minutes(25);
  job.interval = minutes(3);
  job.lambda = 1.0 / minutes(6);  // brutal: ~4 failures expected
  job.seed = static_cast<std::uint64_t>(seed);

  const ClusterConfig cc = tiny_cluster();
  JobRunner runner(job, cc, backend_for(scheme, cc));
  const RunResult r = runner.run();

  ASSERT_TRUE(r.finished) << "seed " << seed;
  EXPECT_GE(r.time_ratio, 1.0 - 1e-9);
  EXPECT_GE(r.lost_work, 0.0);
  EXPECT_GE(r.total_recovery, 0.0);
  EXPECT_GE(r.total_overhead, 0.0);
  // Wall time decomposes into at least work + overhead + recovery (there
  // is also lost/recomputed work, so >=).
  EXPECT_GE(r.completion + 1e-6,
            job.total_work + r.total_overhead + r.total_recovery);
  // Every VM is back and running at the end.
  EXPECT_EQ(runner.cluster().all_vms().size(),
            std::size_t{cc.nodes} * cc.vms_per_node);
  for (vm::VmId vmid : runner.cluster().all_vms())
    EXPECT_EQ(runner.cluster().machine(vmid).state(), vm::VmState::Running);
}

TEST_P(RuntimeFuzz, ReplayIsBitIdentical) {
  const auto [scheme, seed] = GetParam();
  JobConfig job;
  job.total_work = minutes(15);
  job.interval = minutes(2);
  job.lambda = 1.0 / minutes(5);
  job.seed = static_cast<std::uint64_t>(seed) * 7919;

  const ClusterConfig cc = tiny_cluster();
  JobRunner a(job, cc, backend_for(scheme, cc));
  JobRunner b(job, cc, backend_for(scheme, cc));
  const RunResult ra = a.run();
  const RunResult rb = b.run();
  ASSERT_TRUE(ra.finished && rb.finished);
  EXPECT_DOUBLE_EQ(ra.completion, rb.completion);
  EXPECT_EQ(ra.failures, rb.failures);
  EXPECT_EQ(ra.epochs, rb.epochs);
  EXPECT_EQ(ra.job_restarts, rb.job_restarts);
  EXPECT_EQ(ra.bytes_shipped, rb.bytes_shipped);
  EXPECT_DOUBLE_EQ(ra.lost_work, rb.lost_work);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndSchemes, RuntimeFuzz,
    ::testing::Combine(::testing::Values(ParityScheme::Raid5,
                                         ParityScheme::Rs),
                       ::testing::Range(1, 9)));

// --- cascade-heavy regime ---------------------------------------------------
//
// Per-node bursty clocks (infant-mortality Weibull) with repair re-arming:
// nodes keep failing for the whole run and strikes routinely land inside an
// open recovery episode. Across every seed the committed-work watermark
// must be monotone except through the two documented cuts (Rollback,
// Restart) — committed work is never *silently* lost.

class CascadeFuzz : public ::testing::TestWithParam<int> {};

TEST_P(CascadeFuzz, CommittedWorkIsNeverSilentlyLost) {
  const int seed = GetParam();
  JobConfig job;
  job.total_work = minutes(25);
  job.interval = minutes(3);
  job.node_ttf = std::make_shared<failure::WeibullTtf>(0.7, minutes(25));
  job.node_repair_time = 60.0;
  job.seed = static_cast<std::uint64_t>(seed);

  SimTime watermark = 0.0;
  std::uint32_t violations = 0;
  std::uint32_t cascades_seen = 0;
  job.observer = [&](const JobEvent& ev) {
    using Kind = JobEvent::Kind;
    if (ev.kind == Kind::Cascade) ++cascades_seen;
    if (ev.kind == Kind::Rollback || ev.kind == Kind::Restart) {
      watermark = ev.committed_work;  // documented watermark cuts
      return;
    }
    if (ev.committed_work + 1e-9 < watermark) ++violations;
    watermark = std::max(watermark, ev.committed_work);
  };

  const ClusterConfig cc = tiny_cluster();
  JobRunner runner(job, cc, backend_for(ParityScheme::Raid5, cc));
  const RunResult r = runner.run();

  ASSERT_TRUE(r.finished) << "seed " << seed;
  EXPECT_EQ(violations, 0u) << "seed " << seed;
  EXPECT_EQ(r.recovery_cascades, cascades_seen);
  EXPECT_GE(r.failures_during_recovery, r.recovery_cascades);
  auto& metrics = runner.sim().telemetry().metrics();
  EXPECT_EQ(metrics.find("job.failures_ignored"), nullptr);
  EXPECT_EQ(runner.cluster().all_vms().size(),
            std::size_t{cc.nodes} * cc.vms_per_node);
  for (vm::VmId vmid : runner.cluster().all_vms())
    EXPECT_EQ(runner.cluster().machine(vmid).state(), vm::VmState::Running);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CascadeFuzz,
                         ::testing::Range(1, fuzz_seed_count() + 1));

TEST(CascadeFuzzRegime, ActuallyCascades) {
  // Guard against the regime silently going quiet: across a handful of
  // seeds the bursty fleet must force at least one cascaded round, or the
  // CascadeFuzz invariants above are vacuous.
  std::uint32_t cascades = 0;
  for (int seed = 1; seed <= 6; ++seed) {
    JobConfig job;
    job.total_work = minutes(25);
    job.interval = minutes(3);
    job.node_ttf = std::make_shared<failure::WeibullTtf>(0.7, minutes(25));
    job.node_repair_time = 60.0;
    job.seed = static_cast<std::uint64_t>(seed);
    const ClusterConfig cc = tiny_cluster();
    JobRunner runner(job, cc, backend_for(ParityScheme::Raid5, cc));
    const RunResult r = runner.run();
    ASSERT_TRUE(r.finished) << "seed " << seed;
    cascades += r.recovery_cascades;
  }
  EXPECT_GT(cascades, 0u);
}

TEST(RuntimeTrace, TraceDrivenFailuresAreExact) {
  JobConfig job;
  job.total_work = minutes(20);
  job.interval = minutes(4);
  job.lambda = 0.0;
  // Failures at t = 5 min and then +30 min (the second lands after the
  // job completes).
  job.failure_trace = {minutes(5), minutes(30)};
  job.seed = 3;

  const ClusterConfig cc = tiny_cluster();
  JobRunner runner(job, cc, backend_for(ParityScheme::Raid5, cc));
  const RunResult r = runner.run();
  ASSERT_TRUE(r.finished);
  EXPECT_EQ(r.failures, 1u);
  // The failure at 5 min strikes 1 min after the 4-min checkpoint: about
  // a minute of work is lost.
  EXPECT_NEAR(r.lost_work, minutes(1), 10.0);
}

TEST(RuntimeTrace, BackToBackFailures) {
  JobConfig job;
  job.total_work = minutes(10);
  job.interval = minutes(2);
  job.lambda = 0.0;
  // A burst of failures in quick succession (some land during recovery
  // and are absorbed), then quiet.
  job.failure_trace = {minutes(3), 1.0, 1.0, 1.0, hours(10)};
  job.seed = 4;

  const ClusterConfig cc = tiny_cluster();
  JobRunner runner(job, cc, backend_for(ParityScheme::Raid5, cc));
  const RunResult r = runner.run();
  ASSERT_TRUE(r.finished);
  EXPECT_GE(r.failures, 2u);
}

TEST(RuntimeModel, DesTracksRenewalModelUnderManySeeds) {
  // Aggregate DES completion times over seeds and compare with the
  // renewal Monte-Carlo at the same (interval, overhead, repair): the two
  // must agree to within a modest tolerance, closing the loop between
  // the system and the Section V analysis.
  JobConfig job;
  job.total_work = minutes(30);
  job.interval = minutes(5);
  job.lambda = 1.0 / minutes(12);

  const ClusterConfig cc = tiny_cluster();
  RunningStats des;
  SimTime overhead_sum = 0, recovery_sum = 0;
  std::uint32_t epochs = 0, failures = 0;
  for (int seed = 1; seed <= 12; ++seed) {
    job.seed = static_cast<std::uint64_t>(seed);
    JobRunner runner(job, cc, backend_for(ParityScheme::Raid5, cc));
    const RunResult r = runner.run();
    ASSERT_TRUE(r.finished);
    des.add(r.completion);
    overhead_sum += r.total_overhead;
    recovery_sum += r.total_recovery;
    epochs += r.epochs;
    failures += r.failures;
  }

  model::McConfig mc;
  mc.lambda = job.lambda;
  mc.total_work = job.total_work;
  mc.interval = job.interval;
  mc.overhead = epochs ? overhead_sum / epochs : 0.0;
  mc.repair = failures ? recovery_sum / failures : 0.0;
  mc.trials = 20000;
  const auto renewal = model::simulate_completion_times(mc, Rng(99));

  // Within 10%: the DES has detection/restart effects the renewal model
  // folds into a single T_r, so exact agreement is not expected.
  EXPECT_NEAR(des.mean() / renewal.mean(), 1.0, 0.10);
}

}  // namespace
}  // namespace vdc::core
