// Tests for DVDC recovery: byte-exact reconstruction, rollback, target
// placement, double-failure behaviour under RAID-5 vs RDP.

#include <gtest/gtest.h>

#include <map>

#include "core/plan.hpp"
#include "core/protocol.hpp"
#include "core/recovery.hpp"
#include "vm/workload.hpp"

namespace vdc::core {
namespace {

WorkloadFactory idle_factory() {
  return [](vm::VmId) -> std::unique_ptr<vm::Workload> {
    return std::make_unique<vm::IdleWorkload>();
  };
}

struct Rig {
  simkit::Simulator sim;
  cluster::ClusterManager cluster{sim, Rng(1)};
  DvdcState state;
  std::unique_ptr<DvdcCoordinator> coord;
  std::unique_ptr<RecoveryManager> recovery;
  std::optional<PlacedPlan> placed;

  Rig(std::uint32_t nodes, std::uint32_t vms_per_node,
      ParityScheme scheme = ParityScheme::Raid5, std::uint32_t k = 0,
      double write_rate = 100.0, cluster::NodeSpec spec = {},
      RecoveryConfig recovery_config = {}) {
    for (std::uint32_t n = 0; n < nodes; ++n) cluster.add_node(spec);
    for (std::uint32_t n = 0; n < nodes; ++n)
      for (std::uint32_t v = 0; v < vms_per_node; ++v)
        cluster.boot_vm(n, kib(1), 16,
                        write_rate > 0
                            ? std::unique_ptr<vm::Workload>(
                                  std::make_unique<vm::UniformWorkload>(
                                      write_rate))
                            : std::make_unique<vm::IdleWorkload>());
    ProtocolConfig pc;
    pc.scheme = scheme;
    coord = std::make_unique<DvdcCoordinator>(sim, cluster, state, pc);
    recovery = std::make_unique<RecoveryManager>(
        sim, cluster, state, idle_factory(), recovery_config);
    PlannerConfig planner;
    planner.group_size = k;
    placed = PlacedPlan::make(GroupPlanner(planner).plan(cluster), cluster,
                              scheme);
  }

  void checkpoint(checkpoint::Epoch epoch) {
    bool done = false;
    coord->run_epoch(*placed, epoch, [&](const EpochStats&) { done = true; });
    sim.run();
    ASSERT_TRUE(done);
  }

  /// Committed checkpoint payloads keyed by VM.
  std::map<vm::VmId, std::vector<std::byte>> committed_payloads() {
    std::map<vm::VmId, std::vector<std::byte>> out;
    for (vm::VmId vmid : cluster.all_vms()) {
      const auto* cp = state.node_store(*cluster.locate(vmid))
                           .find(vmid, state.committed_epoch());
      if (cp != nullptr) out[vmid] = cp->payload();
    }
    return out;
  }

  RecoveryStats kill_and_recover(cluster::NodeId victim) {
    const auto lost = cluster.node(victim).hypervisor().vm_ids();
    cluster.kill_node(victim);
    state.drop_node(victim);
    std::optional<RecoveryStats> stats;
    recovery->recover(*placed, lost,
                      [&](const RecoveryStats& s) { stats = s; });
    sim.run();
    EXPECT_TRUE(stats.has_value());
    return *stats;
  }
};

TEST(Recovery, LostVmsReconstructedByteExact) {
  Rig rig(4, 3);
  rig.checkpoint(1);
  const auto committed = rig.committed_payloads();
  ASSERT_EQ(committed.size(), 12u);

  const auto lost = rig.cluster.node(1).hypervisor().vm_ids();
  const auto stats = rig.kill_and_recover(1);
  EXPECT_TRUE(stats.success) << stats.reason;
  EXPECT_EQ(stats.vms_recovered, 3u);
  EXPECT_GT(stats.bytes_transferred, 0u);
  EXPECT_GT(stats.duration, 0.0);

  for (vm::VmId vmid : lost) {
    const auto loc = rig.cluster.locate(vmid);
    ASSERT_TRUE(loc.has_value()) << "vm " << vmid << " not re-placed";
    EXPECT_NE(*loc, 1u);
    EXPECT_EQ(rig.cluster.machine(vmid).image().flatten(),
              committed.at(vmid))
        << "vm " << vmid;
  }
}

TEST(Recovery, SurvivorsRollBackToCommittedCut) {
  Rig rig(4, 3, ParityScheme::Raid5, 0, /*write_rate=*/200.0);
  rig.checkpoint(1);
  const auto committed = rig.committed_payloads();

  // Guests compute past the cut, dirtying memory.
  rig.cluster.advance_workloads(2.0);

  rig.kill_and_recover(2);
  for (const auto& [vmid, payload] : committed) {
    if (!rig.cluster.locate(vmid).has_value()) continue;
    EXPECT_EQ(rig.cluster.machine(vmid).image().flatten(), payload)
        << "vm " << vmid << " not rolled back";
  }
}

TEST(Recovery, ClusterResumesRunning) {
  Rig rig(4, 2);
  rig.checkpoint(1);
  rig.kill_and_recover(0);
  for (vm::VmId vmid : rig.cluster.all_vms())
    EXPECT_EQ(rig.cluster.machine(vmid).state(), vm::VmState::Running);
}

TEST(Recovery, RecoveredCheckpointStoredOnNewNode) {
  Rig rig(4, 2);
  rig.checkpoint(1);
  const auto lost = rig.cluster.node(3).hypervisor().vm_ids();
  rig.kill_and_recover(3);
  for (vm::VmId vmid : lost) {
    const auto loc = rig.cluster.locate(vmid);
    ASSERT_TRUE(loc.has_value());
    EXPECT_NE(rig.state.node_store(*loc).find(vmid, 1), nullptr);
  }
}

TEST(Recovery, ParityHolderDeathNeedsNoReconstruction) {
  // Kill a node that holds only parity for some group (no data loss for
  // that group): its VMs (members of other groups) still reconstruct.
  Rig rig(4, 1);  // k=3: one VM per node, 1 group of 3 + 1 singleton? No:
  // 4 VMs, k=3: group0 = 3 VMs, group1 = 1 VM.
  rig.checkpoint(1);
  const auto stats = rig.kill_and_recover(0);
  EXPECT_TRUE(stats.success) << stats.reason;
}

TEST(Recovery, WithoutCommittedEpochFails) {
  Rig rig(3, 1);
  const auto lost = rig.cluster.node(0).hypervisor().vm_ids();
  rig.cluster.kill_node(0);
  rig.state.drop_node(0);
  std::optional<RecoveryStats> stats;
  rig.recovery->recover(*rig.placed, lost,
                        [&](const RecoveryStats& s) { stats = s; });
  rig.sim.run();
  ASSERT_TRUE(stats.has_value());
  EXPECT_FALSE(stats->success);
}

TEST(Recovery, DoubleNodeFailureDefeatsRaid5) {
  Rig rig(5, 2, ParityScheme::Raid5, 4);
  rig.checkpoint(1);
  // Kill two nodes: some group loses two members -> uncorrectable.
  const auto lost0 = rig.cluster.node(0).hypervisor().vm_ids();
  const auto lost1 = rig.cluster.node(1).hypervisor().vm_ids();
  rig.cluster.kill_node(0);
  rig.cluster.kill_node(1);
  rig.state.drop_node(0);
  rig.state.drop_node(1);
  std::vector<vm::VmId> lost = lost0;
  lost.insert(lost.end(), lost1.begin(), lost1.end());
  std::optional<RecoveryStats> stats;
  rig.recovery->recover(*rig.placed, lost,
                        [&](const RecoveryStats& s) { stats = s; });
  rig.sim.run();
  ASSERT_TRUE(stats.has_value());
  EXPECT_FALSE(stats->success);
}

TEST(Recovery, DoubleNodeFailureSurvivedByRdp) {
  Rig rig(6, 1, ParityScheme::Rdp, /*k=*/3);
  rig.checkpoint(1);
  const auto committed = rig.committed_payloads();

  // Find two nodes hosting members of the same group.
  const auto& group = rig.placed->plan.groups[0];
  ASSERT_GE(group.members.size(), 2u);
  const auto n0 = *rig.cluster.locate(group.members[0]);
  const auto n1 = *rig.cluster.locate(group.members[1]);
  auto lost0 = rig.cluster.node(n0).hypervisor().vm_ids();
  auto lost1 = rig.cluster.node(n1).hypervisor().vm_ids();
  rig.cluster.kill_node(n0);
  rig.cluster.kill_node(n1);
  rig.state.drop_node(n0);
  rig.state.drop_node(n1);
  std::vector<vm::VmId> lost = lost0;
  lost.insert(lost.end(), lost1.begin(), lost1.end());

  std::optional<RecoveryStats> stats;
  rig.recovery->recover(*rig.placed, lost,
                        [&](const RecoveryStats& s) { stats = s; });
  rig.sim.run();
  ASSERT_TRUE(stats.has_value());
  EXPECT_TRUE(stats->success) << stats->reason;
  for (vm::VmId vmid : lost) {
    ASSERT_TRUE(rig.cluster.locate(vmid).has_value());
    EXPECT_EQ(rig.cluster.machine(vmid).image().flatten(),
              committed.at(vmid));
  }
}

TEST(Recovery, TargetAvoidsGroupMembersAndHolder) {
  Rig rig(5, 1, ParityScheme::Raid5, /*k=*/3);
  rig.checkpoint(1);
  // Pick the group of the victim's VM; after recovery its new node must
  // host no other member of that group.
  const auto victim_vms = rig.cluster.node(0).hypervisor().vm_ids();
  ASSERT_EQ(victim_vms.size(), 1u);
  const auto gid = rig.placed->plan.group_of(victim_vms[0]);
  rig.kill_and_recover(0);
  if (gid.has_value()) {
    const auto& group = rig.placed->plan.groups[*gid];
    const auto new_loc = rig.cluster.locate(victim_vms[0]);
    ASSERT_TRUE(new_loc.has_value());
    for (vm::VmId m : group.members) {
      if (m == victim_vms[0]) continue;
      EXPECT_NE(rig.cluster.locate(m), new_loc);
    }
  }
}

TEST(Recovery, LostParityBlocksRebuiltDuringRecovery) {
  // A node that held parity dies: recovery must leave every stripe whole
  // (no empty parity blocks), on fresh holders, so a second failure
  // BEFORE the next epoch is still recoverable.
  Rig rig(4, 2);
  rig.checkpoint(1);
  // Find a node that holds at least one parity block.
  cluster::NodeId parity_holder = 0;
  for (const auto& group : rig.placed->plan.groups) {
    const auto* record = rig.state.parity(group.id);
    ASSERT_NE(record, nullptr);
    parity_holder = record->holders.front();
  }
  const auto s1 = rig.kill_and_recover(parity_holder);
  ASSERT_TRUE(s1.success) << s1.reason;

  // Every group's stripe is whole again on alive holders.
  for (const auto& group : rig.placed->plan.groups) {
    const auto* record = rig.state.parity(group.id);
    ASSERT_NE(record, nullptr);
    for (std::size_t hi = 0; hi < record->blocks.size(); ++hi) {
      EXPECT_FALSE(record->blocks[hi].empty())
          << "group " << group.id << " parity " << hi << " still missing";
      EXPECT_TRUE(rig.cluster.node(record->holders[hi]).alive());
      EXPECT_NE(record->holders[hi], parity_holder);
    }
  }

  // Second failure before any new epoch: still recoverable byte-exact.
  rig.cluster.revive_node(parity_holder);
  const auto committed = rig.committed_payloads();
  cluster::NodeId second = 0;
  for (cluster::NodeId nid : rig.cluster.alive_nodes())
    if (rig.cluster.node(nid).hypervisor().vm_count() > 0) second = nid;
  const auto lost = rig.cluster.node(second).hypervisor().vm_ids();
  const auto s2 = rig.kill_and_recover(second);
  EXPECT_TRUE(s2.success) << s2.reason;
  for (vm::VmId vmid : lost)
    EXPECT_EQ(rig.cluster.machine(vmid).image().flatten(),
              committed.at(vmid));
}

TEST(Recovery, RepeatedFailuresRecoverable) {
  // Fail, recover, checkpoint again, fail a different node.
  Rig rig(4, 2);
  rig.checkpoint(1);
  auto s1 = rig.kill_and_recover(1);
  EXPECT_TRUE(s1.success) << s1.reason;
  rig.cluster.revive_node(1);

  // Re-plan (placement changed) and take a fresh epoch.
  rig.placed = PlacedPlan::make(GroupPlanner().plan(rig.cluster),
                                rig.cluster, ParityScheme::Raid5);
  rig.cluster.advance_workloads(1.0);
  rig.checkpoint(2);
  const auto committed = rig.committed_payloads();

  const auto lost = rig.cluster.node(2).hypervisor().vm_ids();
  auto s2 = rig.kill_and_recover(2);
  EXPECT_TRUE(s2.success) << s2.reason;
  for (vm::VmId vmid : lost)
    EXPECT_EQ(rig.cluster.machine(vmid).image().flatten(),
              committed.at(vmid));
}

// Slow NIC + slow XOR: wire time and decode time are both material, so
// the chunked pipeline's wire/decode overlap is visible in the makespan.
cluster::NodeSpec pipelined_spec() {
  cluster::NodeSpec spec;
  spec.nic_rate = mib_per_s(10);
  spec.xor_rate = mib_per_s(10);
  return spec;
}

TEST(Recovery, ChunkedPipelineBeatsSequentialReconstruction) {
  RecoveryConfig sequential;  // chunking off
  RecoveryConfig chunked;
  chunked.chunking.chunk_bytes = kib(2);
  chunked.chunking.pipeline_depth = 2;

  const auto run = [](RecoveryConfig rc) {
    Rig rig(4, 2, ParityScheme::Raid5, 0, /*write_rate=*/0.0,
            pipelined_spec(), rc);
    rig.checkpoint(1);
    const auto committed = rig.committed_payloads();
    const auto lost = rig.cluster.node(1).hypervisor().vm_ids();
    const auto stats = rig.kill_and_recover(1);
    EXPECT_TRUE(stats.success) << stats.reason;
    // Pipelining must never trade correctness: byte-exact either way.
    for (vm::VmId vmid : lost)
      EXPECT_EQ(rig.cluster.machine(vmid).image().flatten(),
                committed.at(vmid));
    return stats;
  };

  const auto seq = run(sequential);
  const auto pipe = run(chunked);
  EXPECT_LT(pipe.duration, seq.duration);
  EXPECT_GT(pipe.pipeline_overlap, 0.0);
  EXPECT_DOUBLE_EQ(seq.pipeline_overlap, 0.0);
}

TEST(Recovery, AbortMidStreamCancelsChunksAndRetrySucceeds) {
  RecoveryConfig rc;
  rc.chunking.chunk_bytes = kib(1);
  rc.chunking.pipeline_depth = 2;
  cluster::NodeSpec spec = pipelined_spec();
  spec.nic_rate = mib_per_s(1);  // stretch the exchange
  Rig rig(4, 2, ParityScheme::Raid5, 0, /*write_rate=*/0.0, spec, rc);
  rig.checkpoint(1);
  const auto committed = rig.committed_payloads();

  const auto lost = rig.cluster.node(1).hypervisor().vm_ids();
  rig.cluster.kill_node(1);
  rig.state.drop_node(1);
  bool first_done = false;
  rig.recovery->recover(*rig.placed, lost,
                        [&](const RecoveryStats&) { first_done = true; });
  auto& metrics = rig.sim.telemetry().metrics();
  rig.sim.run_until(rig.sim.now() + 0.004);
  // Reconstruction streams are on the wire right now; a cascading fault
  // invalidates the attempt.
  EXPECT_GT(metrics.value("stream.inflight"), 0.0);
  EXPECT_TRUE(rig.recovery->abort());
  // Every chunk flow was torn down with the attempt.
  EXPECT_DOUBLE_EQ(metrics.value("stream.inflight"), 0.0);
  EXPECT_DOUBLE_EQ(metrics.value("net.active_flows"), 0.0);
  rig.sim.run();
  EXPECT_FALSE(first_done);  // aborted attempts never report

  // The supervisor's next attempt starts from scratch and lands.
  std::optional<RecoveryStats> stats;
  rig.recovery->recover(*rig.placed, lost,
                        [&](const RecoveryStats& s) { stats = s; });
  rig.sim.run();
  ASSERT_TRUE(stats.has_value());
  EXPECT_TRUE(stats->success) << stats->reason;
  for (vm::VmId vmid : lost) {
    ASSERT_TRUE(rig.cluster.locate(vmid).has_value());
    EXPECT_EQ(rig.cluster.machine(vmid).image().flatten(),
              committed.at(vmid));
  }
  EXPECT_DOUBLE_EQ(metrics.value("net.active_flows"), 0.0);
}

}  // namespace
}  // namespace vdc::core
