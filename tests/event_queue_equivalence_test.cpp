// Queue equivalence: the calendar queue must pop the exact (time, id)
// sequence the binary heap pops — the bit-reproducibility contract that
// lets SimulatorConfig::queue be a pure performance knob.
//
// Two layers: (1) raw EventQueue fuzz over adversarial time patterns
// (bursts of equal times, heavy-tailed gaps, far-future outliers,
// wholesale assign()); (2) whole-Simulator replay of identical randomized
// schedules — nested scheduling, same-time FIFO ties, cancels — asserting
// identical execution traces and clocks.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "simkit/event_queue.hpp"
#include "simkit/simulator.hpp"

namespace vdc::simkit {
namespace {

TEST(EventQueueEquivalence, RandomizedOpsPopIdentically) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    BinaryHeapQueue heap;
    CalendarQueue calendar;
    double now = 0.0;
    EventId next_id = 1;
    for (int op = 0; op < 20000; ++op) {
      const double roll = rng.uniform();
      if (roll < 0.55 || heap.empty()) {
        // Push with a heavy-tailed gap; 10% same-time bursts, 2% far
        // future (the watchdog-timer pattern).
        double t = now;
        const double kind = rng.uniform();
        if (kind < 0.10) {
          // exact tie with a previous push
        } else if (kind < 0.12) {
          t = now + 1e5 * (1.0 + rng.uniform());
        } else {
          t = now + rng.exponential(1.0);
        }
        const QueueEntry e{t, next_id++};
        heap.push(e);
        calendar.push(e);
      } else if (roll < 0.95) {
        const QueueEntry* a = heap.peek();
        const QueueEntry* b = calendar.peek();
        ASSERT_NE(a, nullptr);
        ASSERT_NE(b, nullptr);
        ASSERT_EQ(a->id, b->id) << "seed " << seed << " op " << op;
        ASSERT_EQ(a->t, b->t);
        now = a->t;
        heap.pop();
        calendar.pop();
      } else {
        // Wholesale reassign (tombstone compaction path): drain one
        // queue's contents and hand the same multiset to both.
        std::vector<QueueEntry> entries;
        while (const QueueEntry* top = heap.peek()) {
          entries.push_back(*top);
          heap.pop();
        }
        heap.assign(entries);
        calendar.assign(std::move(entries));
      }
      ASSERT_EQ(heap.size(), calendar.size());
    }
    // Drain: full pop order must match.
    while (!heap.empty()) {
      const QueueEntry* a = heap.peek();
      const QueueEntry* b = calendar.peek();
      ASSERT_EQ(a->id, b->id);
      ASSERT_EQ(a->t, b->t);
      heap.pop();
      calendar.pop();
    }
    EXPECT_TRUE(calendar.empty());
  }
}

// One randomized schedule, replayed verbatim into a simulator: each fired
// event appends (logical id, time) to the trace, schedules children, and
// sometimes cancels a pending sibling. All decisions come from the seeded
// Rng, so both replays make identical choices.
struct Replay {
  explicit Replay(QueueKind kind, std::uint64_t seed) : rng(seed) {
    SimulatorConfig config;
    config.queue = kind;
    sim = std::make_unique<Simulator>(config);
  }

  void fire(int logical) {
    trace.emplace_back(logical, sim->now());
    const int children = static_cast<int>(rng.uniform() * 3.0);
    for (int c = 0; c < children && spawned < 30000; ++c) {
      const int child = spawned++;
      double dt = rng.exponential(1.0);
      if (rng.uniform() < 0.15) dt = 0.0;  // same-instant FIFO ties
      pending.push_back(sim->after(dt, [this, child] { fire(child); }));
    }
    if (!pending.empty() && rng.uniform() < 0.3) {
      const std::size_t victim =
          static_cast<std::size_t>(rng.uniform() * pending.size());
      sim->cancel(pending[victim]);
      pending.erase(pending.begin() + victim);
    }
  }

  void run(std::uint64_t seed) {
    Rng boot(seed ^ 0x9e3779b9);
    for (int i = 0; i < 200; ++i) {
      const int root = spawned++;
      sim->at(boot.uniform() * 10.0, [this, root] { fire(root); });
    }
    sim->run(100000);
  }

  Rng rng;
  std::unique_ptr<Simulator> sim;
  std::vector<EventId> pending;
  int spawned = 0;
  std::vector<std::pair<int, double>> trace;
};

TEST(EventQueueEquivalence, SimulatorReplaysIdentically) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Replay heap(QueueKind::BinaryHeap, seed);
    Replay calendar(QueueKind::Calendar, seed);
    heap.run(seed);
    calendar.run(seed);
    ASSERT_EQ(heap.trace.size(), calendar.trace.size()) << "seed " << seed;
    for (std::size_t i = 0; i < heap.trace.size(); ++i) {
      ASSERT_EQ(heap.trace[i].first, calendar.trace[i].first)
          << "seed " << seed << " step " << i;
      ASSERT_EQ(heap.trace[i].second, calendar.trace[i].second);
    }
    EXPECT_EQ(heap.sim->now(), calendar.sim->now());
    EXPECT_EQ(heap.sim->executed(), calendar.sim->executed());
  }
}

}  // namespace
}  // namespace vdc::simkit
