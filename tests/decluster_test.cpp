// Declustered placement properties (the PlacementMap-driven layout).
//
// The point of declustering: when a node dies, its rebuild partners (the
// other members of every group it touched) should be spread over ALL
// survivors instead of the same k-1 habitual neighbours. These tests pin
// (1) the per-survivor rebuild-load concentration bound for every
// single-node failure, (2) orthogonality and coverage across pool-map
// version bumps (join/drain/failure fuzz), and (3) incremental replan
// reuse of intact groups.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "common/rng.hpp"
#include "core/plan.hpp"
#include "vm/workload.hpp"

namespace vdc::core {
namespace {

struct Rig {
  simkit::Simulator sim;
  cluster::ClusterManager cluster{sim, Rng(1)};

  Rig(std::uint32_t nodes, std::uint32_t vms_per_node) {
    for (std::uint32_t n = 0; n < nodes; ++n) cluster.add_node();
    for (std::uint32_t n = 0; n < nodes; ++n)
      for (std::uint32_t v = 0; v < vms_per_node; ++v)
        cluster.boot_vm(n, kib(4), 4, std::make_unique<vm::IdleWorkload>());
  }

  vm::VmId boot_on(cluster::NodeId n) {
    return cluster.boot_vm(n, kib(4), 4,
                           std::make_unique<vm::IdleWorkload>());
  }
};

/// Per-survivor rebuild load for the failure of `victim`: for every group
/// the victim touches, each surviving member-node contributes one unit
/// (it must serve its checkpoint for the XOR rebuild).
std::map<cluster::NodeId, std::size_t> rebuild_load_checked(
    const GroupPlan& plan, const cluster::ClusterManager& cluster,
    cluster::NodeId victim) {
  std::map<cluster::NodeId, std::size_t> load;
  for (const auto& g : plan.groups) {
    bool hit = false;
    std::vector<cluster::NodeId> peers;
    for (vm::VmId m : g.members) {
      const auto loc = cluster.locate(m);
      EXPECT_TRUE(loc.has_value()) << "member unplaced";
      if (!loc.has_value()) continue;
      if (*loc == victim)
        hit = true;
      else
        peers.push_back(*loc);
    }
    if (!hit) continue;
    for (cluster::NodeId p : peers) ++load[p];
  }
  return load;
}

struct Spread {
  std::size_t max = 0;
  std::size_t loaded_survivors = 0;  // survivors with any rebuild work
  double mean = 0.0;                 // over ALL survivors
};

Spread spread_for(const GroupPlan& plan,
                  const cluster::ClusterManager& cluster,
                  cluster::NodeId victim) {
  const auto load = rebuild_load_checked(plan, cluster, victim);
  Spread s;
  std::size_t total = 0;
  for (const auto& [node, n] : load) {
    s.max = std::max(s.max, n);
    total += n;
  }
  s.loaded_survivors = load.size();
  const std::size_t survivors = cluster.alive_nodes().size() - 1;
  s.mean = survivors ? static_cast<double>(total) / survivors : 0.0;
  return s;
}

// 30 nodes x 10 VMs, k = 5. Under the orthogonal layout equal loads tie
// to the same 5 nodes over and over, so a failure's entire rebuild lands
// on 4 partners (max load = 10 = every group the victim touched). The
// declustered layout must spread each failure over many survivors with a
// provable-style concentration bound: no survivor serves more than
// ceil(3 * mean) + 1 units, for EVERY single-node failure.
TEST(Decluster, RebuildLoadSpreadsOverSurvivors) {
  PlannerConfig ortho;
  ortho.group_size = 5;
  PlannerConfig decl = ortho;
  decl.layout = PlannerConfig::Layout::Declustered;

  Rig rig(30, 10);
  const GroupPlan oplan = GroupPlanner(ortho).plan(rig.cluster);
  const GroupPlan dplan = GroupPlanner(decl).plan(rig.cluster);
  ASSERT_TRUE(GroupPlanner::validate(oplan, rig.cluster));
  ASSERT_TRUE(GroupPlanner::validate(dplan, rig.cluster));
  ASSERT_EQ(dplan.total_members(), 300u);

  std::size_t ortho_worst = 0, decl_worst = 0;
  std::size_t decl_min_breadth = SIZE_MAX;
  for (cluster::NodeId victim = 0; victim < 30; ++victim) {
    const Spread o = spread_for(oplan, rig.cluster, victim);
    const Spread d = spread_for(dplan, rig.cluster, victim);
    ortho_worst = std::max(ortho_worst, o.max);
    decl_worst = std::max(decl_worst, d.max);
    decl_min_breadth = std::min(decl_min_breadth, d.loaded_survivors);
    // Concentration bound, every failure: max <= ceil(3*mean) + 1.
    const auto bound =
        static_cast<std::size_t>(std::ceil(3.0 * d.mean)) + 1;
    EXPECT_LE(d.max, bound) << "victim " << victim;
  }
  // The orthogonal layout concentrates: some victim's whole rebuild (10
  // groups) lands on each of its 4 partners.
  EXPECT_GE(ortho_worst, 10u);
  // Declustering spreads it: worst survivor strictly better than half the
  // orthogonal worst, and every failure touches a broad survivor set.
  EXPECT_LE(decl_worst, ortho_worst / 2);
  EXPECT_GE(decl_min_breadth, 15u);
}

// Orthogonality (validate) holds across pool-map version bumps under a
// join/drain/failure fuzz, replanning incrementally at every bump; the
// map version recorded in the plan always tracks the cluster's.
TEST(Decluster, OrthogonalityHoldsAcrossMapVersionBumps) {
  PlannerConfig config;
  config.group_size = 4;
  config.layout = PlannerConfig::Layout::Declustered;
  // Failures destroy VMs (no recovery wired here), so full coverage of
  // the survivors is still required — but group count shrinks.
  GroupPlanner planner(config);

  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Rig rig(12, 4);
    Rng rng(seed);
    GroupPlan plan = planner.plan(rig.cluster);
    auto version = rig.cluster.placement_map().version();
    EXPECT_EQ(plan.map_version, version);

    for (int step = 0; step < 30; ++step) {
      const double roll = rng.uniform();
      const auto alive = rig.cluster.alive_nodes();
      if (roll < 0.35 && alive.size() > 6) {
        // Drain: node failure loses its VMs.
        rig.cluster.kill_node(alive[rng.uniform_u64(alive.size())]);
      } else if (roll < 0.55) {
        // Join: fresh node plus a few booted VMs.
        const auto nid = rig.cluster.add_node();
        for (int v = 0; v < 3; ++v) rig.boot_on(nid);
      } else if (roll < 0.75) {
        // Revive a dead node, if any.
        std::vector<cluster::NodeId> dead;
        for (cluster::NodeId n = 0; n < rig.cluster.node_count(); ++n)
          if (!rig.cluster.node(n).alive()) dead.push_back(n);
        if (dead.empty()) continue;
        const auto nid = dead[rng.uniform_u64(dead.size())];
        rig.cluster.revive_node(nid);
        for (int v = 0; v < 2; ++v) rig.boot_on(nid);
      } else {
        // Placement churn without a version bump: boot on a random
        // alive node.
        rig.boot_on(alive[rng.uniform_u64(alive.size())]);
      }

      const auto now_version = rig.cluster.placement_map().version();
      EXPECT_GE(now_version, version);
      version = now_version;
      plan = planner.replan(plan, rig.cluster);
      EXPECT_EQ(plan.map_version, version);
      ASSERT_TRUE(GroupPlanner::validate(plan, rig.cluster))
          << "seed " << seed << " step " << step;
      // Full coverage after every bump.
      ASSERT_EQ(plan.total_members(), rig.cluster.all_vms().size());
      // O(1) index stays consistent with membership.
      for (const auto& g : plan.groups)
        for (vm::VmId m : g.members) ASSERT_EQ(plan.group_of(m), g.id);
    }
  }
}

// Incremental replan keeps intact groups verbatim: killing one node must
// not dissolve groups that had no member there.
TEST(Decluster, ReplanKeepsIntactGroups) {
  PlannerConfig config;
  config.group_size = 4;
  config.layout = PlannerConfig::Layout::Declustered;
  GroupPlanner planner(config);

  Rig rig(16, 4);
  const GroupPlan before = planner.plan(rig.cluster);
  ASSERT_TRUE(GroupPlanner::validate(before, rig.cluster));

  const cluster::NodeId victim = 3;
  std::set<std::vector<vm::VmId>> untouched;
  for (const auto& g : before.groups) {
    bool hit = false;
    for (vm::VmId m : g.members)
      if (rig.cluster.locate(m) == victim) hit = true;
    if (!hit) untouched.insert(g.members);
  }
  ASSERT_FALSE(untouched.empty());

  rig.cluster.kill_node(victim);
  const GroupPlan after = planner.replan(before, rig.cluster);
  ASSERT_TRUE(GroupPlanner::validate(after, rig.cluster));

  std::set<std::vector<vm::VmId>> kept;
  for (const auto& g : after.groups) kept.insert(g.members);
  for (const auto& members : untouched)
    EXPECT_TRUE(kept.count(members))
        << "intact group dissolved by incremental replan";
  EXPECT_EQ(after.map_version, rig.cluster.placement_map().version());
}

// The declustered layout is a pure function of (seed, map version):
// replanning the same cluster state twice gives the identical plan, and
// different seeds give different group memberships.
TEST(Decluster, LayoutIsDeterministicInSeedAndVersion) {
  PlannerConfig config;
  config.group_size = 4;
  config.layout = PlannerConfig::Layout::Declustered;

  Rig rig(12, 4);
  const GroupPlan a = GroupPlanner(config).plan(rig.cluster);
  const GroupPlan b = GroupPlanner(config).plan(rig.cluster);
  ASSERT_EQ(a.groups.size(), b.groups.size());
  for (std::size_t i = 0; i < a.groups.size(); ++i)
    EXPECT_EQ(a.groups[i].members, b.groups[i].members);

  rig.cluster.placement_map().set_seed(0xfeedface);
  const GroupPlan c = GroupPlanner(config).plan(rig.cluster);
  bool any_diff = false;
  for (std::size_t i = 0; i < std::min(a.groups.size(), c.groups.size()); ++i)
    if (a.groups[i].members != c.groups[i].members) any_diff = true;
  EXPECT_TRUE(any_diff) << "seed change did not move the layout";
  EXPECT_TRUE(GroupPlanner::validate(c, rig.cluster));
}

}  // namespace
}  // namespace vdc::core
