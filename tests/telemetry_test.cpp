// Tests for the telemetry layer: registry semantics (labels, counters,
// gauges, histograms), span nesting and ordering, JSON escaping, the file
// sinks, and the end-to-end JobRunner integration (six epoch phases, four
// recovery phases, durations reconciling with RunResult).

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/runtime.hpp"
#include "telemetry/sinks.hpp"
#include "telemetry/telemetry.hpp"

namespace vdc::telemetry {
namespace {

TEST(MetricsRegistry, CountersAccumulate) {
  MetricsRegistry reg;
  reg.add("hits", 1.0);
  reg.add("hits", 2.5);
  EXPECT_DOUBLE_EQ(reg.value("hits"), 3.5);
  EXPECT_DOUBLE_EQ(reg.value("absent"), 0.0);
  EXPECT_EQ(reg.find("absent"), nullptr);
}

TEST(MetricsRegistry, LabelsAreOrderInsensitive) {
  MetricsRegistry reg;
  reg.add("bytes", 10.0, {{"kind", "host"}, {"dir", "tx"}});
  reg.add("bytes", 5.0, {{"dir", "tx"}, {"kind", "host"}});
  EXPECT_DOUBLE_EQ(reg.value("bytes", {{"kind", "host"}, {"dir", "tx"}}),
                   15.0);
  // A different label value is a different series.
  reg.add("bytes", 100.0, {{"kind", "host"}, {"dir", "rx"}});
  EXPECT_DOUBLE_EQ(reg.value("bytes", {{"dir", "rx"}, {"kind", "host"}}),
                   100.0);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(MetricsRegistry, GaugeTracksPeak) {
  MetricsRegistry reg;
  reg.set("depth", 3.0);
  reg.set("depth", 9.0);
  reg.set("depth", 2.0);
  EXPECT_DOUBLE_EQ(reg.value("depth"), 2.0);
  EXPECT_DOUBLE_EQ(reg.peak("depth"), 9.0);
}

TEST(MetricsRegistry, HistogramObservations) {
  MetricsRegistry reg;
  for (double v : {1.0, 2.0, 3.0, 4.0}) reg.observe("wait", v);
  const Metric* metric = reg.find("wait");
  ASSERT_NE(metric, nullptr);
  EXPECT_EQ(metric->kind, MetricKind::Histogram);
  EXPECT_EQ(metric->samples.count(), 4u);
  EXPECT_DOUBLE_EQ(metric->samples.mean(), 2.5);
  EXPECT_DOUBLE_EQ(metric->samples.median(), 2.5);
}

TEST(MetricsRegistry, AllIsSortedAndDeterministic) {
  MetricsRegistry reg;
  reg.add("zz", 1.0);
  reg.add("aa", 1.0);
  reg.add("mm", 1.0, {{"x", "1"}});
  const auto rows = reg.all();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0]->name, "aa");
  EXPECT_EQ(rows[1]->name, "mm");
  EXPECT_EQ(rows[2]->name, "zz");
}

TEST(JsonEscape, EscapesSpecials) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(Spans, DisabledTracerEmitsNothing) {
  double clock = 1.0;
  Telemetry tel(&clock);
  auto sink = std::make_shared<InMemorySink>();
  tel.add_sink(sink);
  ASSERT_FALSE(tel.enabled());
  const SpanId id = tel.begin_span("work");
  EXPECT_EQ(id, kNoSpan);
  tel.end_span(id);
  tel.record_span("pre", 0.0, 1.0);
  EXPECT_TRUE(sink->spans().empty());
  EXPECT_EQ(tel.open_spans(), 0u);
  // Metrics stay live regardless of the tracing gate.
  tel.metrics().add("c", 1.0);
  EXPECT_DOUBLE_EQ(tel.metrics().value("c"), 1.0);
}

TEST(Spans, NestingDefaultsToInnermostOpen) {
  double clock = 0.0;
  Telemetry tel(&clock);
  auto sink = std::make_shared<InMemorySink>();
  tel.add_sink(sink);
  tel.set_enabled(true);

  const SpanId outer = tel.begin_span("outer");
  clock = 1.0;
  const SpanId inner = tel.begin_span("inner");
  EXPECT_EQ(tel.current_span(), inner);
  clock = 2.0;
  tel.end_span(inner);
  clock = 3.0;
  tel.end_span(outer);

  ASSERT_EQ(sink->spans().size(), 2u);
  const SpanRecord& first = sink->spans()[0];
  const SpanRecord& second = sink->spans()[1];
  EXPECT_EQ(first.name, "inner");
  EXPECT_EQ(first.parent, outer);
  EXPECT_DOUBLE_EQ(first.start, 1.0);
  EXPECT_DOUBLE_EQ(first.end, 2.0);
  EXPECT_EQ(second.name, "outer");
  EXPECT_EQ(second.parent, kNoSpan);
  EXPECT_DOUBLE_EQ(second.duration(), 3.0);
}

TEST(Spans, OutOfOrderEndsAreAllowed) {
  double clock = 0.0;
  Telemetry tel(&clock);
  auto sink = std::make_shared<InMemorySink>();
  tel.add_sink(sink);
  tel.set_enabled(true);

  const SpanId a = tel.begin_span("a");
  const SpanId b = tel.begin_span("b");
  clock = 5.0;
  tel.end_span(a);  // ends the OUTER span first
  EXPECT_EQ(tel.current_span(), b);
  tel.end_span(b);
  tel.end_span(b);  // double-end is a no-op
  ASSERT_EQ(sink->spans().size(), 2u);
  EXPECT_EQ(sink->spans()[0].name, "a");
  EXPECT_EQ(sink->spans()[1].name, "b");
}

TEST(Spans, RecordSpanNestsUnderOpenSpan) {
  double clock = 0.0;
  Telemetry tel(&clock);
  auto sink = std::make_shared<InMemorySink>();
  tel.add_sink(sink);
  tel.set_enabled(true);

  const SpanId root = tel.begin_span("root");
  tel.record_span("phase", 1.0, 2.0, {{"k", "v"}});
  tel.end_span(root);
  ASSERT_EQ(sink->spans().size(), 2u);
  EXPECT_EQ(sink->spans()[0].name, "phase");
  EXPECT_EQ(sink->spans()[0].parent, root);
  ASSERT_EQ(sink->spans()[0].labels.size(), 1u);
  EXPECT_EQ(sink->spans()[0].labels[0].key, "k");
}

TEST(Spans, ScopedSpanIsRaii) {
  double clock = 0.0;
  Telemetry tel(&clock);
  auto sink = std::make_shared<InMemorySink>();
  tel.add_sink(sink);
  tel.set_enabled(true);
  {
    ScopedSpan span(tel, "scope");
    EXPECT_EQ(tel.current_span(), span.id());
  }
  EXPECT_EQ(tel.open_spans(), 0u);
  ASSERT_EQ(sink->spans().size(), 1u);
  EXPECT_EQ(sink->spans()[0].name, "scope");
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(Sinks, JsonlWritesSpansAndMetrics) {
  const std::string path = "telemetry_test_out.jsonl";
  double clock = 0.0;
  Telemetry tel(&clock);
  auto sink = std::make_shared<JsonlSink>(path);
  ASSERT_TRUE(sink->ok());
  tel.add_sink(sink);
  tel.set_enabled(true);

  const SpanId id = tel.begin_span("epoch", {{"epoch", "1"}});
  clock = 0.25;
  tel.end_span(id);
  tel.metrics().add("job.epochs", 1.0);
  tel.metrics().set("nas.queue_depth", 4.0);
  tel.metrics().observe("wait", 0.5);
  tel.flush();

  const std::string text = slurp(path);
  EXPECT_NE(text.find("\"type\":\"span\",\"name\":\"epoch\""),
            std::string::npos);
  EXPECT_NE(text.find("\"labels\":{\"epoch\":\"1\"}"), std::string::npos);
  EXPECT_NE(text.find("\"type\":\"counter\",\"name\":\"job.epochs\""),
            std::string::npos);
  EXPECT_NE(text.find("\"type\":\"gauge\",\"name\":\"nas.queue_depth\""),
            std::string::npos);
  EXPECT_NE(text.find("\"peak\":4"), std::string::npos);
  EXPECT_NE(text.find("\"type\":\"histogram\",\"name\":\"wait\""),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(Sinks, ChromeTraceWritesCompleteEvents) {
  const std::string path = "telemetry_test_trace.json";
  double clock = 0.0;
  Telemetry tel(&clock);
  auto sink = std::make_shared<ChromeTraceSink>(path, "vdc-test");
  tel.add_sink(sink);
  tel.set_enabled(true);
  tel.record_span("epoch.quiesce", 0.0, 0.040, {{"epoch", "1"}});
  tel.metrics().add("dvdc.epochs_committed", 1.0);
  tel.flush();

  const std::string text = slurp(path);
  EXPECT_NE(text.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"vdc-test\""), std::string::npos);
  // 0.040 sim-seconds -> 40000 trace microseconds.
  EXPECT_NE(text.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(text.find("\"dur\":40000.000"), std::string::npos);
  EXPECT_NE(text.find("\"metrics\":["), std::string::npos);
  EXPECT_NE(text.find("dvdc.epochs_committed"), std::string::npos);
  std::remove(path.c_str());
}

// --- end-to-end: the whole stack through JobRunner ------------------------

core::JobRunner::BackendFactory dvdc_factory(const core::ClusterConfig& cc) {
  return [cc](simkit::Simulator& sim, cluster::ClusterManager& cluster,
              Rng&) -> std::unique_ptr<core::CheckpointBackend> {
    return std::make_unique<core::DvdcBackend>(
        sim, cluster, core::ProtocolConfig{}, core::RecoveryConfig{},
        core::make_workload_factory(cc));
  };
}

core::ClusterConfig small_cluster() {
  core::ClusterConfig cc;
  cc.nodes = 4;
  cc.vms_per_node = 3;
  cc.pages_per_vm = 32;
  cc.page_size = kib(1);
  cc.write_rate = 100.0;
  return cc;
}

TEST(Integration, JobRunEmitsEpochAndRecoveryPhases) {
  core::JobConfig job;
  job.total_work = minutes(30);
  job.interval = minutes(10);
  // The trace cycles, so follow the one mid-run failure with a gap the
  // run can never reach.
  job.failure_trace = {minutes(15), hours(100)};
  core::JobRunner runner(job, small_cluster(), dvdc_factory(small_cluster()));

  auto sink = std::make_shared<InMemorySink>();
  runner.sim().telemetry().set_enabled(true);
  runner.sim().telemetry().add_sink(sink);

  const core::RunResult result = runner.run();
  ASSERT_TRUE(result.finished);
  ASSERT_GE(result.epochs, 2u);
  ASSERT_GE(result.failures, 1u);
  runner.sim().telemetry().flush();

  // Every committed epoch emitted all six phases...
  const char* phases[] = {"epoch.quiesce",  "epoch.capture", "epoch.resume",
                          "epoch.exchange", "epoch.parity",  "epoch.commit"};
  for (const char* phase : phases)
    EXPECT_EQ(sink->named(phase).size(), result.epochs) << phase;
  // ...nested under one root "epoch" span each.
  const auto roots = sink->named("epoch");
  ASSERT_EQ(roots.size(), result.epochs);
  for (const char* phase : phases)
    for (const auto& span : sink->named(phase)) {
      bool under_root = false;
      for (const auto& root : roots)
        if (span.parent == root.id) under_root = true;
      EXPECT_TRUE(under_root) << phase;
    }

  // Phase durations partition the epoch: quiesce+capture == overhead and
  // the six phases together == latency, summed over all epochs.
  double overhead = 0.0, latency = 0.0;
  for (const char* phase : {"epoch.quiesce", "epoch.capture"})
    for (const auto& span : sink->named(phase)) overhead += span.duration();
  for (const char* phase : phases)
    for (const auto& span : sink->named(phase)) latency += span.duration();
  EXPECT_NEAR(overhead, result.total_overhead, 1e-9);
  EXPECT_NEAR(latency, result.checkpoint_latency_sum, 1e-9);

  // The failure produced one full recovery: detect, reconstruct, replace,
  // rollback, nested under the root "recovery" span.
  const auto recoveries = sink->named("recovery");
  ASSERT_EQ(recoveries.size(), 1u);
  for (const char* phase : {"recovery.detect", "recovery.reconstruct",
                            "recovery.replace", "recovery.rollback"}) {
    const auto spans = sink->named(phase);
    ASSERT_EQ(spans.size(), 1u) << phase;
    EXPECT_EQ(spans[0].parent, recoveries[0].id) << phase;
    EXPECT_GE(spans[0].start, recoveries[0].start) << phase;
    EXPECT_LE(spans[0].end, recoveries[0].end + 1e-9) << phase;
  }

  // The façade RunResult agrees with the registry it is derived from.
  const auto& metrics = runner.sim().telemetry().metrics();
  EXPECT_DOUBLE_EQ(metrics.value("job.epochs"),
                   static_cast<double>(result.epochs));
  EXPECT_DOUBLE_EQ(metrics.value("job.failures"),
                   static_cast<double>(result.failures));
  EXPECT_GT(metrics.value("net.bytes", {{"kind", "host"}}), 0.0);
  EXPECT_GT(metrics.peak("dvdc.state_bytes"), 0.0);
  EXPECT_GT(result.peak_state_bytes, 0u);
}

TEST(Integration, DisabledTelemetryStillDerivesResults) {
  core::JobConfig job;
  job.total_work = minutes(20);
  job.interval = minutes(10);
  core::JobRunner runner(job, small_cluster(), dvdc_factory(small_cluster()));
  auto sink = std::make_shared<InMemorySink>();
  runner.sim().telemetry().add_sink(sink);  // tracing left disabled

  const core::RunResult result = runner.run();
  ASSERT_TRUE(result.finished);
  EXPECT_EQ(result.epochs, 1u);
  EXPECT_TRUE(sink->spans().empty());  // no spans when disabled...
  // ...but the registry-backed façade still works.
  EXPECT_GT(result.total_overhead, 0.0);
  EXPECT_GT(result.bytes_shipped, 0u);
}

}  // namespace
}  // namespace vdc::telemetry
