// Byte-exactness property for the epoch data plane: the dirty-page
// zero-copy plane (page-sharing store + in-place undo-logged parity folds
// + pooled kernels) must be observationally identical to the legacy
// flatten+diff reference plane. Two harnesses run the SAME randomized
// schedule — guest execution, committed epochs, aborted epochs, node
// failures with recovery — one per plane, and after every step we compare:
//
//   - committed epoch and VM placement
//   - live VM images, byte for byte
//   - committed checkpoint payloads, byte for byte
//   - parity records (blocks, holders, members, block_size, epoch)
//   - EpochStats of committed epochs (timing + byte accounting)
//   - DvdcState::memory_bytes() (resident accounting)
//
// Seeds: 1..VDC_FUZZ_SEEDS (default 4); schemes: RAID-5, RDP, RS. The
// lossy-fabric twin repeats the property with ambient drops/corruption/
// jitter on every host, proving the VDD1 delta wire path survives an
// unreliable fabric without the planes diverging.

#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <string>

#include "core/recovery.hpp"
#include "net/fault.hpp"
#include "vm/workload.hpp"

namespace vdc::core {
namespace {

int fuzz_seed_count() {
  if (const char* env = std::getenv("VDC_FUZZ_SEEDS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 4;
}

WorkloadFactory workload_factory() {
  return [](vm::VmId) -> std::unique_ptr<vm::Workload> {
    return std::make_unique<vm::HotColdWorkload>(200.0, 0.2, 0.8);
  };
}

struct Harness {
  simkit::Simulator sim;
  cluster::ClusterManager cluster;
  DvdcState state;
  DvdcCoordinator coord;
  RecoveryManager recovery;
  std::optional<PlacedPlan> placed;
  std::optional<PlacedPlan> committed_plan;
  checkpoint::Epoch next_epoch = 1;
  ParityScheme scheme;

  Harness(std::uint64_t seed, ParityScheme scheme, bool reference_plane,
          net::ChunkPolicy chunking = {})
      : cluster(sim, Rng(seed)),
        coord(sim, cluster, state,
              make_config(scheme, reference_plane, chunking)),
        recovery(sim, cluster, state, workload_factory(),
                 make_recovery_config(chunking)),
        scheme(scheme) {
    for (int n = 0; n < 5; ++n) cluster.add_node();
    auto workloads = workload_factory();
    for (int n = 0; n < 5; ++n)
      for (int v = 0; v < 2; ++v)
        cluster.boot_vm(n, kib(1), 16, workloads(0));
    replan();
  }

  static ProtocolConfig make_config(ParityScheme scheme, bool reference,
                                    net::ChunkPolicy chunking) {
    ProtocolConfig config;
    config.scheme = scheme;
    config.rs_parity = 2;
    config.reference_data_plane = reference;
    config.chunking = chunking;
    return config;
  }

  static RecoveryConfig make_recovery_config(net::ChunkPolicy chunking) {
    RecoveryConfig config;
    config.chunking = chunking;
    return config;
  }

  void replan() {
    PlannerConfig pc;
    pc.group_size = 3;
    placed = PlacedPlan::make(GroupPlanner(pc).plan(cluster), cluster,
                              scheme, 2);
  }

  void ensure_plan() {
    if (!placed->still_orthogonal(cluster)) replan();
  }

  /// Run one epoch; with `abort_after` > 0, abort after that many events.
  std::optional<EpochStats> checkpoint(std::uint64_t abort_after) {
    ensure_plan();
    std::optional<EpochStats> stats;
    coord.run_epoch(*placed, next_epoch,
                    [&](const EpochStats& s) { stats = s; });
    if (abort_after > 0) {
      sim.run(abort_after);
      coord.abort();
    }
    sim.run();
    if (stats.has_value()) {
      ++next_epoch;
      committed_plan = placed;
    }
    return stats;
  }

  /// Run one epoch and abort it the moment the exchange puts its first
  /// flow on the wire (guaranteed pre-commit, so two harnesses with
  /// different network timing abort the same logical epoch). Returns the
  /// stats only in the (impossible today) case the epoch committed first.
  std::optional<EpochStats> checkpoint_abort_mid_exchange() {
    ensure_plan();
    std::optional<EpochStats> stats;
    coord.run_epoch(*placed, next_epoch,
                    [&](const EpochStats& s) { stats = s; });
    auto& metrics = sim.telemetry().metrics();
    while (!stats.has_value() &&
           metrics.value("net.active_flows") == 0.0 && sim.step()) {
    }
    if (!stats.has_value()) coord.abort();
    sim.run();
    if (stats.has_value()) {
      ++next_epoch;
      committed_plan = placed;
    }
    return stats;
  }

  bool fail_and_recover(std::size_t victim_index) {
    if (state.committed_epoch() == 0) return true;
    const auto alive = cluster.alive_nodes();
    const auto victim = alive[victim_index % alive.size()];
    const auto lost = cluster.node(victim).hypervisor().vm_ids();
    cluster.kill_node(victim);
    state.drop_node(victim);
    cluster.revive_node(victim);  // repaired replacement (constant n)
    if (lost.empty()) return true;
    bool ok = false;
    recovery.recover(*committed_plan, lost,
                     [&](const RecoveryStats& s) { ok = s.success; });
    sim.run();
    return ok;
  }

  /// Ambient loss on every host's NIC. The injector's Rng is seeded from a
  /// fixed constant, so two harnesses replaying the same event stream see
  /// the same drops/corruptions at the same points.
  void make_lossy() {
    auto& faults = cluster.fabric().faults();
    for (cluster::NodeId n = 0; n < 5; ++n)
      faults.set_host_fault(
          cluster.node(n).host(),
          net::LinkFault{.drop = 0.01, .corrupt = 0.001, .jitter = 200e-6});
  }
};

void expect_equal_stats(const std::optional<EpochStats>& ref,
                        const std::optional<EpochStats>& fast,
                        const std::string& where) {
  ASSERT_EQ(ref.has_value(), fast.has_value()) << where;
  if (!ref.has_value()) return;
  EXPECT_EQ(ref->epoch, fast->epoch) << where;
  EXPECT_DOUBLE_EQ(ref->overhead, fast->overhead) << where;
  EXPECT_DOUBLE_EQ(ref->latency, fast->latency) << where;
  EXPECT_EQ(ref->bytes_shipped, fast->bytes_shipped) << where;
  EXPECT_EQ(ref->delta_bytes, fast->delta_bytes) << where;
  EXPECT_EQ(ref->trim_bytes, fast->trim_bytes) << where;
  EXPECT_EQ(ref->bytes_xored, fast->bytes_xored) << where;
  EXPECT_EQ(ref->raw_dirty_bytes, fast->raw_dirty_bytes) << where;
  EXPECT_EQ(ref->groups, fast->groups) << where;
  EXPECT_EQ(ref->full_exchange, fast->full_exchange) << where;

  // Delta-wire accounting invariants, on top of plane equality. The
  // full-exchange decision is per GROUP (the stat flags "any group went
  // full", e.g. after a recovery re-placed a holder), so VDD1 traffic is
  // always a subset of shipped traffic — and on an all-incremental epoch
  // the two coincide exactly: every shipped byte is a delta frame. Delta
  // traffic is O(dirty): per holder (at most two here) the payload is RLE
  // over the changed pages (worst case a hair over raw) plus 8 bytes per
  // page record and 56 per member frame.
  EXPECT_LE(ref->delta_bytes, ref->bytes_shipped) << where;
  EXPECT_LE(ref->delta_bytes, 3 * ref->raw_dirty_bytes + 16 * 1024)
      << where;
  if (!ref->full_exchange) {
    EXPECT_EQ(ref->delta_bytes, ref->bytes_shipped) << where;
  }
  // Per-record compression picks min(RLE, trim), so the shipped delta
  // bytes can never exceed what a trim-only encoder would have shipped.
  EXPECT_LE(ref->delta_bytes, ref->trim_bytes) << where;
}

void expect_equal_state(Harness& ref, Harness& fast,
                        const std::string& where) {
  ASSERT_EQ(ref.state.committed_epoch(), fast.state.committed_epoch())
      << where;
  // The fast plane may hold a barely-touched page as a shared base chunk
  // plus a sub-page patch; net of that overlay cost its resident bytes
  // must equal the other plane's exactly (same sharing, same GC). The
  // reference plane never builds patches, so for ref-vs-fast pairs this
  // reduces to ref bytes == fast bytes minus overlay; for fast-vs-fast
  // twins both sides carry identical patch sets.
  ASSERT_EQ(ref.state.memory_bytes() - ref.state.patch_bytes(),
            fast.state.memory_bytes() - fast.state.patch_bytes())
      << where;
  const auto epoch = ref.state.committed_epoch();

  for (vm::VmId vmid : ref.cluster.all_vms()) {
    const auto lr = ref.cluster.locate(vmid);
    const auto lf = fast.cluster.locate(vmid);
    ASSERT_EQ(lr.has_value(), lf.has_value()) << where << " vm " << vmid;
    if (!lr.has_value()) continue;
    ASSERT_EQ(*lr, *lf) << where << " vm " << vmid;
    ASSERT_EQ(ref.cluster.machine(vmid).image().flatten(),
              fast.cluster.machine(vmid).image().flatten())
        << where << " image of vm " << vmid;
    const auto* cr = ref.state.node_store(*lr).find(vmid, epoch);
    const auto* cf = fast.state.node_store(*lf).find(vmid, epoch);
    ASSERT_EQ(cr == nullptr, cf == nullptr) << where << " vm " << vmid;
    if (cr != nullptr) {
      ASSERT_EQ(cr->payload(), cf->payload())
          << where << " checkpoint of vm " << vmid;
    }
  }

  ASSERT_EQ(ref.committed_plan.has_value(), fast.committed_plan.has_value())
      << where;
  if (!ref.committed_plan.has_value()) return;
  for (const auto& group : ref.committed_plan->plan.groups) {
    const auto* rr = ref.state.parity(group.id);
    const auto* rf = fast.state.parity(group.id);
    {
      ASSERT_EQ(rr == nullptr, rf == nullptr)
          << where << " group " << group.id;
    }
    if (rr == nullptr) continue;
    ASSERT_EQ(rr->epoch, rf->epoch) << where << " group " << group.id;
    ASSERT_EQ(rr->members, rf->members) << where << " group " << group.id;
    ASSERT_EQ(rr->holders, rf->holders) << where << " group " << group.id;
    ASSERT_EQ(rr->block_size, rf->block_size)
        << where << " group " << group.id;
    ASSERT_EQ(rr->blocks, rf->blocks)
        << where << " parity of group " << group.id;
  }
}

/// The ref-vs-fast property under one chunk policy. Both harnesses use
/// the same policy, so their event streams are identical and event-count
/// aborts cut both at the same point.
void run_planes_equivalence(std::uint64_t seed, net::ChunkPolicy chunking) {
  for (ParityScheme scheme :
       {ParityScheme::Raid5, ParityScheme::Rdp, ParityScheme::Rs}) {
    Harness ref(seed, scheme, /*reference_plane=*/true, chunking);
    Harness fast(seed, scheme, /*reference_plane=*/false, chunking);
    Rng driver(seed * 977 + 13);  // one decision stream for BOTH harnesses

    for (int step = 0; step < 10; ++step) {
      const std::string where = "seed " + std::to_string(seed) + " scheme " +
                                std::to_string(static_cast<int>(scheme)) +
                                " step " + std::to_string(step);
      const double dt = 0.5 + 0.25 * static_cast<double>(
                                         driver.uniform_u64(4));
      ref.cluster.advance_workloads(dt);
      fast.cluster.advance_workloads(dt);

      const auto op = driver.uniform_u64(5);
      if (op == 0 && ref.state.committed_epoch() > 0) {
        const std::uint64_t k = 3 + driver.uniform_u64(5);
        const auto sr = ref.checkpoint(k);
        const auto sf = fast.checkpoint(k);
        expect_equal_stats(sr, sf, where + " (aborted epoch)");
      } else if (op == 1 && ref.state.committed_epoch() > 0) {
        const auto victim = driver.uniform_u64(5);
        ASSERT_EQ(ref.fail_and_recover(victim),
                  fast.fail_and_recover(victim))
            << where;
      } else {
        const auto sr = ref.checkpoint(0);
        const auto sf = fast.checkpoint(0);
        expect_equal_stats(sr, sf, where);
      }
      expect_equal_state(ref, fast, where);
    }
  }
}

class DataPlaneEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(DataPlaneEquivalence, PlanesAreByteIdentical) {
  run_planes_equivalence(static_cast<std::uint64_t>(GetParam()), {});
}

TEST_P(DataPlaneEquivalence, ChunkedPlanesAreByteIdentical) {
  net::ChunkPolicy chunking;
  chunking.chunk_bytes = kib(1);
  chunking.pipeline_depth = 3;
  run_planes_equivalence(static_cast<std::uint64_t>(GetParam()), chunking);
}

// The delta-plane twin of the lossy fuzz regime: the same randomized
// ref-vs-fast schedule, but every frame of every host rides an unreliable
// fabric (drops, bit corruption, jittered latency). The reliable-delivery
// layer must carry the VDD1 delta frames through it without the planes
// diverging by a byte — and because both fault injectors replay the same
// seeded decision stream over identical event sequences, even the drop and
// retransmit COUNTS must match across planes.
TEST_P(DataPlaneEquivalence, LossyFabricPlanesAreByteIdentical) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  net::ChunkPolicy chunking;
  chunking.chunk_bytes = kib(1);
  chunking.pipeline_depth = 3;
  for (ParityScheme scheme :
       {ParityScheme::Raid5, ParityScheme::Rdp, ParityScheme::Rs}) {
    Harness ref(seed, scheme, /*reference_plane=*/true, chunking);
    Harness fast(seed, scheme, /*reference_plane=*/false, chunking);
    ref.make_lossy();
    fast.make_lossy();
    Rng driver(seed * 6271 + 101);

    for (int step = 0; step < 10; ++step) {
      const std::string where = "seed " + std::to_string(seed) + " scheme " +
                                std::to_string(static_cast<int>(scheme)) +
                                " step " + std::to_string(step) +
                                " (lossy fabric)";
      const double dt = 0.5 + 0.25 * static_cast<double>(
                                         driver.uniform_u64(4));
      ref.cluster.advance_workloads(dt);
      fast.cluster.advance_workloads(dt);

      const auto op = driver.uniform_u64(5);
      if (op == 0 && ref.state.committed_epoch() > 0) {
        const std::uint64_t k = 3 + driver.uniform_u64(5);
        const auto sr = ref.checkpoint(k);
        const auto sf = fast.checkpoint(k);
        expect_equal_stats(sr, sf, where + " (aborted epoch)");
      } else if (op == 1 && ref.state.committed_epoch() > 0) {
        const auto victim = driver.uniform_u64(5);
        ASSERT_EQ(ref.fail_and_recover(victim),
                  fast.fail_and_recover(victim))
            << where;
      } else {
        const auto sr = ref.checkpoint(0);
        const auto sf = fast.checkpoint(0);
        expect_equal_stats(sr, sf, where);
      }
      expect_equal_state(ref, fast, where);
    }

    // The regime was not vacuous, and the fabric treated both planes to
    // the exact same weather.
    const auto& mr = ref.sim.telemetry().metrics();
    const auto& mf = fast.sim.telemetry().metrics();
    EXPECT_GT(mr.value("net.drops"), 0.0) << "seed " << seed;
    EXPECT_GT(mr.value("net.retransmits"), 0.0) << "seed " << seed;
    EXPECT_DOUBLE_EQ(mr.value("net.drops"), mf.value("net.drops"))
        << "seed " << seed;
    EXPECT_DOUBLE_EQ(mr.value("net.retransmits"), mf.value("net.retransmits"))
        << "seed " << seed;
  }
}

// Chunking must be a pure scheduling change: with the SAME logical
// schedule — including epochs aborted mid-exchange and node failures with
// recovery — a chunked and an unchunked harness must land on byte-identical
// committed state, even though their wall-clock timelines differ.
TEST_P(DataPlaneEquivalence, ChunkedContentMatchesUnchunked) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  for (ParityScheme scheme :
       {ParityScheme::Raid5, ParityScheme::Rdp, ParityScheme::Rs}) {
    net::ChunkPolicy chunking;
    chunking.chunk_bytes = kib(1);
    chunking.pipeline_depth = 2;
    Harness plain(seed, scheme, /*reference_plane=*/false);
    Harness chunked(seed, scheme, /*reference_plane=*/false, chunking);
    Rng driver(seed * 7919 + 29);

    for (int step = 0; step < 10; ++step) {
      const std::string where = "seed " + std::to_string(seed) + " scheme " +
                                std::to_string(static_cast<int>(scheme)) +
                                " step " + std::to_string(step) +
                                " (chunked vs unchunked)";
      const double dt = 0.5 + 0.25 * static_cast<double>(
                                         driver.uniform_u64(4));
      plain.cluster.advance_workloads(dt);
      chunked.cluster.advance_workloads(dt);

      const auto op = driver.uniform_u64(5);
      if (op == 0 && plain.state.committed_epoch() > 0) {
        const auto sp = plain.checkpoint_abort_mid_exchange();
        const auto sc = chunked.checkpoint_abort_mid_exchange();
        ASSERT_EQ(sp.has_value(), sc.has_value()) << where;
      } else if (op == 1 && plain.state.committed_epoch() > 0) {
        const auto victim = driver.uniform_u64(5);
        ASSERT_EQ(plain.fail_and_recover(victim),
                  chunked.fail_and_recover(victim))
            << where;
      } else {
        const auto sp = plain.checkpoint(0);
        const auto sc = chunked.checkpoint(0);
        // Timing differs by design; the byte accounting must not.
        ASSERT_EQ(sp.has_value(), sc.has_value()) << where;
        if (sp.has_value()) {
          EXPECT_EQ(sp->bytes_shipped, sc->bytes_shipped) << where;
          EXPECT_EQ(sp->raw_dirty_bytes, sc->raw_dirty_bytes) << where;
          EXPECT_EQ(sp->groups, sc->groups) << where;
        }
      }
      expect_equal_state(plain, chunked, where);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DataPlaneEquivalence,
                         ::testing::Range(1, 1 + fuzz_seed_count()));

}  // namespace
}  // namespace vdc::core
