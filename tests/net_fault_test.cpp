// Tests for the unreliable-fabric model: the LinkFaultInjector fault
// plane (drops, corruption, latency/jitter, partitions, degraded rate)
// and the reliable-delivery layer of ChunkedStream (CRC rejection,
// ACK/timeout retransmission with backoff, attempt budgets, deadlines).

#include <gtest/gtest.h>

#include <cstddef>
#include <cstring>
#include <string>
#include <vector>

#include "common/crc32.hpp"
#include "net/chunked_stream.hpp"
#include "net/fabric.hpp"
#include "net/fault.hpp"

namespace vdc::net {
namespace {

TEST(LinkFaultInjector, DisabledUntilFirstFaultAndStickyAfterHeal) {
  simkit::Simulator sim;
  Fabric fabric(sim, 0.0);
  const HostId a = fabric.add_host(100.0);
  const HostId b = fabric.add_host(100.0);
  EXPECT_FALSE(fabric.faults_active());
  // Merely touching the plane does not enable it.
  fabric.faults();
  EXPECT_FALSE(fabric.faults_active());
  fabric.faults().set_host_fault(a, LinkFault{.drop = 0.5});
  EXPECT_TRUE(fabric.faults_active());
  fabric.faults().heal_all();
  // Sticky: once faults have existed, the judged path stays on.
  EXPECT_TRUE(fabric.faults_active());
  // ...but a healed plane delivers everything cleanly.
  for (int i = 0; i < 32; ++i) {
    const Judgement j = fabric.faults().judge(a, b);
    EXPECT_EQ(j.outcome, Delivery::kDelivered);
    EXPECT_DOUBLE_EQ(j.extra_latency, 0.0);
  }
}

TEST(LinkFaultInjector, EffectiveComposesNicAndLinkFaults) {
  simkit::Simulator sim;
  Fabric fabric(sim, 0.0);
  const HostId a = fabric.add_host(100.0);
  const HostId b = fabric.add_host(100.0);
  auto& faults = fabric.faults();
  faults.set_host_fault(a, LinkFault{.drop = 0.5, .extra_latency = 1.0,
                                     .jitter = 0.25});
  faults.set_host_fault(b, LinkFault{.drop = 0.5, .extra_latency = 2.0,
                                     .jitter = 0.75});
  faults.set_link_fault(a, b, LinkFault{.corrupt = 0.5});
  const LinkFault eff = faults.effective(a, b);
  // Independent composition: p = 1 - (1-.5)(1-.5).
  EXPECT_DOUBLE_EQ(eff.drop, 0.75);
  EXPECT_DOUBLE_EQ(eff.corrupt, 0.5);
  EXPECT_DOUBLE_EQ(eff.extra_latency, 3.0);  // latencies add
  EXPECT_DOUBLE_EQ(eff.jitter, 0.75);        // jitter takes the max
  // The directed override is asymmetric: b -> a never corrupts.
  EXPECT_DOUBLE_EQ(faults.effective(b, a).corrupt, 0.0);
}

TEST(LinkFaultInjector, CertainDropAlwaysDropsAndCounts) {
  simkit::Simulator sim;
  Fabric fabric(sim, 0.0);
  const HostId a = fabric.add_host(100.0);
  const HostId b = fabric.add_host(100.0);
  fabric.faults().set_link_fault(a, b, LinkFault{.drop = 1.0});
  for (int i = 0; i < 16; ++i)
    EXPECT_EQ(fabric.faults().judge(a, b).outcome, Delivery::kDropped);
  EXPECT_DOUBLE_EQ(sim.telemetry().metrics().value("net.drops"), 16.0);
  // The reverse direction is clean.
  EXPECT_EQ(fabric.faults().judge(b, a).outcome, Delivery::kDelivered);
}

TEST(LinkFaultInjector, PartitionCutsBothDirectionsUntilHealed) {
  simkit::Simulator sim;
  Fabric fabric(sim, 0.0);
  const HostId a = fabric.add_host(100.0);
  const HostId b = fabric.add_host(100.0);
  const HostId c = fabric.add_host(100.0);
  auto& faults = fabric.faults();
  faults.set_partition_group(a, 1);
  EXPECT_TRUE(faults.partitioned(a, b));
  EXPECT_TRUE(faults.partitioned(b, a));
  EXPECT_FALSE(faults.partitioned(b, c));
  EXPECT_EQ(faults.judge(a, b).outcome, Delivery::kDropped);
  EXPECT_EQ(faults.judge(b, a).outcome, Delivery::kDropped);
  // Same group on the far side reconnects them.
  faults.set_partition_group(b, 1);
  EXPECT_FALSE(faults.partitioned(a, b));
  EXPECT_TRUE(faults.partitioned(a, c));
  faults.heal(a);
  faults.heal(b);
  EXPECT_FALSE(faults.partitioned(a, c));
  EXPECT_EQ(faults.judge(a, c).outcome, Delivery::kDelivered);
}

TEST(LinkFaultInjector, CrcCatchesEverySingleBitFlip) {
  std::vector<std::byte> frame(24);
  for (std::size_t i = 0; i < frame.size(); ++i)
    frame[i] = static_cast<std::byte>(i * 37 + 5);
  const std::uint32_t crc = vdc::crc32(frame);
  for (std::uint64_t bit = 0; bit < frame.size() * 8; ++bit)
    EXPECT_TRUE(crc_catches_flip(frame, crc, bit)) << "bit " << bit;
  // Bits beyond the frame reduce modulo its length.
  EXPECT_TRUE(crc_catches_flip(frame, crc, frame.size() * 8 + 3));
}

TEST(Fabric, JudgedTransferWithoutFaultsMatchesPlainTransfer) {
  double plain_done = -1, judged_done = -1;
  {
    simkit::Simulator sim;
    Fabric fabric(sim, 1e-3);
    const HostId a = fabric.add_host(100.0);
    const HostId b = fabric.add_host(100.0);
    fabric.transfer(a, b, 1000, [&] { plain_done = sim.now(); });
    sim.run();
  }
  {
    simkit::Simulator sim;
    Fabric fabric(sim, 1e-3);
    const HostId a = fabric.add_host(100.0);
    const HostId b = fabric.add_host(100.0);
    fabric.transfer_judged(a, b, 1000, [&](const Judgement& j) {
      EXPECT_EQ(j.outcome, Delivery::kDelivered);
      judged_done = sim.now();
    });
    sim.run();
  }
  EXPECT_DOUBLE_EQ(plain_done, judged_done);
}

TEST(Fabric, ExtraLatencyDelaysJudgedDelivery) {
  simkit::Simulator sim;
  Fabric fabric(sim, 0.0);
  const HostId a = fabric.add_host(100.0);
  const HostId b = fabric.add_host(100.0);
  fabric.faults().set_host_fault(a, LinkFault{.extra_latency = 1.5});
  double done = -1;
  fabric.transfer_judged(a, b, 100, [&](const Judgement&) {
    done = sim.now();
  });
  sim.run();
  // 100 B at 100 B/s = 1 s, plus 1.5 s of injected head latency.
  EXPECT_NEAR(done, 2.5, 1e-9);
}

TEST(Fabric, JitterAddsBoundedLatency) {
  simkit::Simulator sim;
  Fabric fabric(sim, 0.0);
  const HostId a = fabric.add_host(100.0);
  const HostId b = fabric.add_host(100.0);
  fabric.faults().set_host_fault(a, LinkFault{.jitter = 0.5});
  std::vector<double> done;
  for (int i = 0; i < 8; ++i) {
    sim.at(10.0 * i, [&] {
      fabric.transfer_judged(a, b, 100, [&](const Judgement&) {
        done.push_back(sim.now() - 10.0 * (done.size()));
      });
    });
  }
  sim.run();
  ASSERT_EQ(done.size(), 8u);
  bool any_jitter = false;
  for (const double d : done) {
    EXPECT_GE(d, 1.0 - 1e-9);
    EXPECT_LT(d, 1.5);
    if (d > 1.0 + 1e-9) any_jitter = true;
  }
  EXPECT_TRUE(any_jitter);
}

TEST(Fabric, HostRateFactorDegradesThroughput) {
  simkit::Simulator sim;
  Fabric fabric(sim, 0.0);
  const HostId a = fabric.add_host(100.0);
  const HostId b = fabric.add_host(100.0);
  fabric.set_host_rate_factor(a, 0.5);
  double done = -1;
  fabric.transfer(a, b, 100, [&] { done = sim.now(); });
  sim.run();
  EXPECT_NEAR(done, 2.0, 1e-9);  // half the NIC, twice the time
  fabric.set_host_rate_factor(a, 1.0);
  done = -1;
  fabric.transfer(a, b, 100, [&] { done = sim.now(); });
  sim.run();
  EXPECT_NEAR(done - 2.0, 1.0, 1e-9);
}

TEST(ChunkedStream, LossyLinkRetransmitsUntilComplete) {
  simkit::Simulator sim;
  Fabric fabric(sim, 0.0);
  const HostId a = fabric.add_host(100.0);
  const HostId b = fabric.add_host(100.0);
  fabric.faults().set_link_fault(a, b, LinkFault{.drop = 0.3});
  ChunkPolicy p{.chunk_bytes = 100, .pipeline_depth = 4};
  std::size_t delivered = 0;
  bool done = false;
  auto stream = ChunkedStream::start(
      fabric, a, b, 1000, p,
      [&](const ChunkedStream::Chunk&) { ++delivered; }, [&] { done = true; });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_FALSE(stream->failed());
  EXPECT_EQ(delivered, 10u);
  EXPECT_GT(sim.telemetry().metrics().value("net.retransmits"), 0.0);
  EXPECT_GT(sim.telemetry().metrics().value("net.drops"), 0.0);
  EXPECT_EQ(fabric.stream_chunks_inflight(), 0u);
}

TEST(ChunkedStream, CorruptedChunksAreCrcRejectedAndRetransmitted) {
  simkit::Simulator sim;
  Fabric fabric(sim, 0.0);
  const HostId a = fabric.add_host(100.0);
  const HostId b = fabric.add_host(100.0);
  fabric.faults().set_link_fault(a, b, LinkFault{.corrupt = 0.3});
  ChunkPolicy p{.chunk_bytes = 100, .pipeline_depth = 4};
  std::size_t delivered = 0;
  bool done = false;
  ChunkedStream::start(fabric, a, b, 1000, p,
                       [&](const ChunkedStream::Chunk&) { ++delivered; },
                       [&] { done = true; });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_EQ(delivered, 10u);
  const double corrupt = sim.telemetry().metrics().value("net.corrupt_frames");
  EXPECT_GT(corrupt, 0.0);
  // Every CRC-rejected frame forces a retransmission.
  EXPECT_GE(sim.telemetry().metrics().value("net.retransmits"), corrupt);
}

TEST(ChunkedStream, AttemptBudgetExhaustionFailsTheStream) {
  simkit::Simulator sim;
  Fabric fabric(sim, 0.0);
  const HostId a = fabric.add_host(100.0);
  const HostId b = fabric.add_host(100.0);
  fabric.faults().set_link_fault(a, b, LinkFault{.drop = 1.0});
  ChunkPolicy p{.chunk_bytes = 100, .pipeline_depth = 2,
                .retransmit_timeout = 0.01, .max_attempts = 3,
                .transfer_deadline = 0.0};
  std::size_t delivered = 0;
  bool done = false;
  int failures = 0;
  std::string reason;
  auto stream = ChunkedStream::start(
      fabric, a, b, 1000, p,
      [&](const ChunkedStream::Chunk&) { ++delivered; }, [&] { done = true; });
  stream->set_on_fail([&](const std::string& why) {
    ++failures;
    reason = why;
  });
  sim.run();
  EXPECT_FALSE(done);
  EXPECT_EQ(delivered, 0u);
  EXPECT_EQ(failures, 1);  // exactly once, even with 2 chunks in flight
  EXPECT_TRUE(stream->failed());
  EXPECT_NE(reason.find("attempts"), std::string::npos) << reason;
  EXPECT_EQ(fabric.stream_chunks_inflight(), 0u);
  EXPECT_DOUBLE_EQ(sim.telemetry().metrics().value("stream.inflight"), 0.0);
}

TEST(ChunkedStream, TransferDeadlineFailsTheStream) {
  simkit::Simulator sim;
  Fabric fabric(sim, 0.0);
  const HostId a = fabric.add_host(100.0);
  const HostId b = fabric.add_host(100.0);
  fabric.faults().set_link_fault(a, b, LinkFault{.drop = 1.0});
  ChunkPolicy p{.chunk_bytes = 100, .pipeline_depth = 2,
                .retransmit_timeout = 0.05, .max_attempts = 1000,
                .transfer_deadline = 0.5};
  bool done = false;
  int failures = 0;
  std::string reason;
  auto stream = ChunkedStream::start(fabric, a, b, 1000, p, {},
                                     [&] { done = true; });
  stream->set_on_fail([&](const std::string& why) {
    ++failures;
    reason = why;
  });
  sim.run();
  EXPECT_FALSE(done);
  EXPECT_EQ(failures, 1);
  EXPECT_TRUE(stream->failed());
  EXPECT_NE(reason.find("deadline"), std::string::npos) << reason;
  // The stream gave up within a few backoff rounds of the deadline
  // instead of hanging forever (or burning all 1000 attempts).
  EXPECT_LE(sim.now(), 2.0);
  EXPECT_EQ(fabric.stream_chunks_inflight(), 0u);
}

TEST(ChunkedStream, HealedLinkRecoversInFlightStream) {
  simkit::Simulator sim;
  Fabric fabric(sim, 0.0);
  const HostId a = fabric.add_host(100.0);
  const HostId b = fabric.add_host(100.0);
  fabric.faults().set_partition_group(b, 1);
  ChunkPolicy p{.chunk_bytes = 100, .pipeline_depth = 2,
                .retransmit_timeout = 0.5, .max_attempts = 64,
                .transfer_deadline = 1000.0};
  bool done = false;
  auto stream = ChunkedStream::start(fabric, a, b, 400, p, {},
                                     [&] { done = true; });
  stream->set_on_fail([&](const std::string&) { ADD_FAILURE(); });
  sim.at(3.0, [&] { fabric.faults().heal(b); });
  sim.run();
  EXPECT_TRUE(done);
  EXPECT_GT(sim.telemetry().metrics().value("net.retransmits"), 0.0);
}

}  // namespace
}  // namespace vdc::net
