// Tests for memory images (dirty tracking, COW snapshots), guest
// workloads, virtual machines and the hypervisor.

#include <gtest/gtest.h>

#include <cstring>

#include "vm/machine.hpp"
#include "vm/memory_image.hpp"
#include "vm/workload.hpp"

namespace vdc::vm {
namespace {

std::vector<std::byte> bytes_of(std::initializer_list<int> xs) {
  std::vector<std::byte> out;
  for (int x : xs) out.push_back(static_cast<std::byte>(x));
  return out;
}

TEST(MemoryImage, StartsCleanAndZeroed) {
  MemoryImage img(16, 4);
  EXPECT_EQ(img.size_bytes(), 64u);
  EXPECT_EQ(img.dirty_count(), 0u);
  for (std::size_t p = 0; p < 4; ++p)
    for (std::byte b : img.page(p)) EXPECT_EQ(b, std::byte{0});
}

TEST(MemoryImage, WriteMarksDirtyOnce) {
  MemoryImage img(16, 4);
  const auto data = bytes_of({1, 2, 3});
  img.write(2, 5, data);
  EXPECT_TRUE(img.is_dirty(2));
  EXPECT_FALSE(img.is_dirty(0));
  EXPECT_EQ(img.dirty_count(), 1u);
  img.write(2, 0, data);  // same page again
  EXPECT_EQ(img.dirty_count(), 1u);
  EXPECT_EQ(img.dirty_pages(), (std::vector<PageIndex>{2}));
  EXPECT_EQ(static_cast<int>(img.page(2)[5]), 1);
  EXPECT_EQ(static_cast<int>(img.page(2)[7]), 3);
}

TEST(MemoryImage, ClearDirtyResets) {
  MemoryImage img(16, 4);
  img.write(1, 0, bytes_of({9}));
  img.clear_dirty();
  EXPECT_EQ(img.dirty_count(), 0u);
  EXPECT_FALSE(img.is_dirty(1));
  // Content survives.
  EXPECT_EQ(static_cast<int>(img.page(1)[0]), 9);
}

TEST(MemoryImage, OutOfBoundsWriteThrows) {
  MemoryImage img(16, 4);
  EXPECT_THROW(img.write(4, 0, bytes_of({1})), InvariantError);
  std::vector<std::byte> big(17);
  EXPECT_THROW(img.write(0, 0, big), InvariantError);
  EXPECT_THROW(img.write(0, 10, bytes_of({1, 2, 3, 4, 5, 6, 7})),
               InvariantError);
}

TEST(MemoryImage, FillRandomIsDeterministic) {
  MemoryImage a(64, 8), b(64, 8);
  Rng ra(42), rb(42);
  a.fill_random(ra);
  b.fill_random(rb);
  EXPECT_EQ(a.flatten(), b.flatten());
  EXPECT_EQ(a.dirty_count(), 8u);
}

TEST(MemoryImage, SparseFillLeavesZeroPages) {
  MemoryImage img(64, 1000);
  Rng rng(99);
  img.fill_random(rng, /*zero_fraction=*/0.5);
  std::size_t zero_pages = 0;
  for (PageIndex p = 0; p < 1000; ++p) {
    bool all_zero = true;
    for (std::byte b : img.page(p))
      if (b != std::byte{0}) all_zero = false;
    if (all_zero) ++zero_pages;
  }
  EXPECT_GT(zero_pages, 400u);
  EXPECT_LT(zero_pages, 600u);
  EXPECT_THROW(img.fill_random(rng, 1.5), ConfigError);
}

TEST(MemoryImage, RestoreReplacesContent) {
  MemoryImage img(16, 2);
  img.write(0, 0, bytes_of({1}));
  std::vector<std::byte> replacement(32, std::byte{7});
  img.restore(replacement);
  EXPECT_EQ(img.flatten(), replacement);
  EXPECT_EQ(img.dirty_count(), 2u);  // restore marks everything dirty
  EXPECT_THROW(img.restore(std::vector<std::byte>(31)), ConfigError);
}

TEST(CowSnapshot, FrozenViewSurvivesWrites) {
  MemoryImage img(16, 4);
  img.write(1, 0, bytes_of({11}));
  auto snap = img.fork_cow();
  img.write(1, 0, bytes_of({99}));
  img.write(3, 2, bytes_of({55}));
  // Live image sees the new bytes; the snapshot sees the old ones.
  EXPECT_EQ(static_cast<int>(img.page(1)[0]), 99);
  EXPECT_EQ(static_cast<int>(snap->page(1)[0]), 11);
  EXPECT_EQ(static_cast<int>(snap->page(3)[2]), 0);
  EXPECT_EQ(snap->preserved_page_count(), 2u);
}

TEST(CowSnapshot, UntouchedPagesAreNotCopied) {
  MemoryImage img(16, 8);
  auto snap = img.fork_cow();
  img.write(0, 0, bytes_of({1}));
  img.write(0, 1, bytes_of({2}));  // same page: one preservation
  EXPECT_EQ(snap->preserved_page_count(), 1u);
}

TEST(CowSnapshot, MaterializeEqualsForkTimeContent) {
  MemoryImage img(32, 4);
  Rng rng(7);
  img.fill_random(rng);
  const auto before = img.flatten();
  auto snap = img.fork_cow();
  img.write(2, 3, bytes_of({1, 2, 3}));
  EXPECT_EQ(snap->materialize(), before);
  EXPECT_NE(img.flatten(), before);
}

TEST(CowSnapshot, OnlyOneAtATime) {
  MemoryImage img(16, 2);
  auto snap = img.fork_cow();
  EXPECT_THROW(img.fork_cow(), ConfigError);
  snap.reset();
  EXPECT_NO_THROW(img.fork_cow());
}

TEST(CowSnapshot, RestorePreservesSnapshotView) {
  MemoryImage img(16, 2);
  img.write(0, 0, bytes_of({42}));
  auto snap = img.fork_cow();
  img.restore(std::vector<std::byte>(32, std::byte{9}));
  EXPECT_EQ(static_cast<int>(snap->page(0)[0]), 42);
}

TEST(Workload, UniformHitsTargetRate) {
  MemoryImage img(64, 100);
  Rng rng(1);
  UniformWorkload w(100.0);  // writes/sec
  w.advance(img, 2.0, rng);
  // 200 writes over 100 pages: most pages dirty, content changed.
  EXPECT_GT(img.dirty_count(), 50u);
}

TEST(Workload, FractionalRateAccumulates) {
  MemoryImage img(64, 10);
  Rng rng(2);
  UniformWorkload w(0.5);
  for (int i = 0; i < 10; ++i) w.advance(img, 1.0, rng);  // 5 writes total
  EXPECT_GE(img.dirty_count(), 1u);
  EXPECT_LE(img.dirty_count(), 5u);
}

TEST(Workload, HotColdConcentratesWrites) {
  MemoryImage img(64, 1000);
  Rng rng(3);
  HotColdWorkload w(1000.0, /*hot_fraction=*/0.1, /*hot_probability=*/0.9);
  w.advance(img, 5.0, rng);  // 5000 writes
  // Count dirty pages inside and outside the hot set (first 100 pages).
  std::size_t hot = 0, cold = 0;
  for (PageIndex p = 0; p < 1000; ++p) {
    if (!img.is_dirty(p)) continue;
    (p < 100 ? hot : cold) += 1;
  }
  EXPECT_EQ(hot, 100u);  // hot set saturates
  EXPECT_LT(cold, 450u); // ~500 cold writes over 900 pages
}

TEST(Workload, SequentialWalksInOrder) {
  MemoryImage img(64, 10);
  Rng rng(4);
  SequentialWorkload w(1.0);
  w.advance(img, 3.0, rng);
  EXPECT_EQ(img.dirty_pages(), (std::vector<PageIndex>{0, 1, 2}));
  w.advance(img, 9.0, rng);  // wraps past page 9
  EXPECT_EQ(img.dirty_count(), 10u);
}

TEST(Workload, IdleWritesNothing) {
  MemoryImage img(64, 10);
  Rng rng(5);
  IdleWorkload w;
  w.advance(img, 100.0, rng);
  EXPECT_EQ(img.dirty_count(), 0u);
}

TEST(Workload, InvalidParamsRejected) {
  EXPECT_THROW(UniformWorkload(-1.0), ConfigError);
  EXPECT_THROW(HotColdWorkload(1.0, 0.0, 0.5), ConfigError);
  EXPECT_THROW(HotColdWorkload(1.0, 0.5, 1.5), ConfigError);
}

TEST(VirtualMachine, AdvanceOnlyWhileRunning) {
  VirtualMachine machine(1, "vm1", 64, 10,
                         std::make_unique<UniformWorkload>(10.0));
  Rng rng(6);
  machine.advance(1.0, rng);
  EXPECT_DOUBLE_EQ(machine.cpu_time(), 1.0);
  machine.pause();
  machine.advance(1.0, rng);
  EXPECT_DOUBLE_EQ(machine.cpu_time(), 1.0);  // paused: no progress
  machine.resume();
  machine.advance(0.5, rng);
  EXPECT_DOUBLE_EQ(machine.cpu_time(), 1.5);
}

TEST(VirtualMachine, FailedVmRejectsTransitions) {
  VirtualMachine machine(1, "vm1", 64, 10,
                         std::make_unique<IdleWorkload>());
  machine.mark_failed();
  EXPECT_THROW(machine.pause(), InvariantError);
  EXPECT_THROW(machine.resume(), InvariantError);
}

TEST(Hypervisor, CreateBootsWithRandomImage) {
  Hypervisor hv(Rng(7));
  auto& machine =
      hv.create_vm(1, "a", 64, 10, std::make_unique<IdleWorkload>());
  EXPECT_EQ(hv.vm_count(), 1u);
  EXPECT_EQ(machine.image().dirty_count(), 0u);  // booted clean
  // Booted content is non-trivial.
  bool nonzero = false;
  for (std::byte b : machine.image().page(0))
    if (b != std::byte{0}) nonzero = true;
  EXPECT_TRUE(nonzero);
  EXPECT_THROW(
      hv.create_vm(1, "dup", 64, 10, std::make_unique<IdleWorkload>()),
      ConfigError);
}

TEST(Hypervisor, EvictAdoptMovesOwnership) {
  Hypervisor a(Rng(8)), b(Rng(9));
  a.create_vm(1, "a", 64, 4, std::make_unique<IdleWorkload>());
  const auto content = a.get(1).image().flatten();
  auto machine = a.evict(1);
  EXPECT_EQ(a.vm_count(), 0u);
  EXPECT_THROW(a.get(1), ConfigError);
  b.adopt(std::move(machine));
  EXPECT_TRUE(b.hosts(1));
  EXPECT_EQ(b.get(1).image().flatten(), content);
}

TEST(Hypervisor, PauseResumeAll) {
  Hypervisor hv(Rng(10));
  hv.create_vm(1, "a", 64, 4, std::make_unique<IdleWorkload>());
  hv.create_vm(2, "b", 64, 4, std::make_unique<IdleWorkload>());
  hv.pause_all();
  EXPECT_EQ(hv.get(1).state(), VmState::Paused);
  EXPECT_EQ(hv.get(2).state(), VmState::Paused);
  hv.resume_all();
  EXPECT_EQ(hv.get(1).state(), VmState::Running);
}

TEST(Hypervisor, VmIdsSorted) {
  Hypervisor hv(Rng(11));
  hv.create_vm(5, "a", 64, 2, std::make_unique<IdleWorkload>());
  hv.create_vm(1, "b", 64, 2, std::make_unique<IdleWorkload>());
  hv.create_vm(3, "c", 64, 2, std::make_unique<IdleWorkload>());
  EXPECT_EQ(hv.vm_ids(), (std::vector<VmId>{1, 3, 5}));
}

TEST(Hypervisor, SnapshotAndForkMatchImage) {
  Hypervisor hv(Rng(12));
  hv.create_vm(1, "a", 64, 8, std::make_unique<IdleWorkload>());
  const auto snap = hv.snapshot(1);
  EXPECT_EQ(snap, hv.get(1).image().flatten());
  auto fork = hv.fork(1);
  EXPECT_EQ(fork->materialize(), snap);
}

}  // namespace
}  // namespace vdc::vm
