// Differential kernel-conformance suite.
//
// Every runtime-dispatched parity kernel (blocked / AVX2 / NEON) must be
// bit-exact against the scalar reference for xor_into and gf256 mul_add,
// across random inputs, adversarial contents, every misalignment of src
// and dst, vector-boundary-straddling tails, and zero-length calls. The
// suite runs cleanly under ASan/UBSan (the sanitizer CI job) and scales
// its random coverage with VDC_FUZZ_SEEDS, like the other fuzz regimes.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "parity/gf256.hpp"
#include "parity/kernels.hpp"
#include "parity/xor.hpp"

namespace vdc::parity {
namespace {

int fuzz_seed_count() {
  if (const char* env = std::getenv("VDC_FUZZ_SEEDS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 4;
}

std::vector<std::uint8_t> random_buf(Rng& rng, std::size_t n) {
  std::vector<std::uint8_t> out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.next() & 0xff);
  return out;
}

// Sizes chosen to straddle the 32-byte AVX2 lane, the 128-byte unrolled
// body, and the 8-byte blocked word, plus large buffers.
const std::vector<std::size_t>& coverage_sizes() {
  static const std::vector<std::size_t> sizes = [] {
    std::vector<std::size_t> s;
    for (std::size_t n = 0; n <= 40; ++n) s.push_back(n);
    for (std::size_t anchor : {64u, 96u, 128u, 160u, 256u, 4096u}) {
      s.push_back(anchor - 1);
      s.push_back(anchor);
      s.push_back(anchor + 1);
    }
    s.push_back(std::size_t{1} << 20);
    return s;
  }();
  return sizes;
}

// Coefficients hitting the mul_add special cases (0 skip, 1 == xor) and
// both nibble-table halves.
constexpr std::uint8_t kCoefficients[] = {0, 1, 2, 3, 0x0f, 0x10,
                                          0x1d, 0x80, 0xfe, 0xff};

void reference_xor(std::uint8_t* dst, const std::uint8_t* src, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] ^= src[i];
}

void reference_mul_add(std::uint8_t c, const std::uint8_t* src,
                       std::uint8_t* dst, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] ^= gf256::mul(c, src[i]);
}

class KernelConformance : public ::testing::TestWithParam<KernelTier> {
 protected:
  const KernelOps& ops() { return kernel_for(GetParam()); }
};

TEST_P(KernelConformance, XorMatchesScalarOnRandomBuffers) {
  for (int seed = 1; seed <= fuzz_seed_count(); ++seed) {
    Rng rng(static_cast<std::uint64_t>(seed) * 7919 + 11);
    for (std::size_t n : coverage_sizes()) {
      auto src = random_buf(rng, n);
      auto dst = random_buf(rng, n);
      auto expect = dst;
      reference_xor(expect.data(), src.data(), n);
      ops().xor_into(reinterpret_cast<std::byte*>(dst.data()),
                     reinterpret_cast<const std::byte*>(src.data()), n);
      ASSERT_EQ(dst, expect) << "tier " << ops().name << " size " << n
                             << " seed " << seed;
    }
  }
}

TEST_P(KernelConformance, MulAddMatchesScalarOnRandomBuffers) {
  for (int seed = 1; seed <= fuzz_seed_count(); ++seed) {
    Rng rng(static_cast<std::uint64_t>(seed) * 6271 + 17);
    for (std::size_t n : coverage_sizes()) {
      auto src = random_buf(rng, n);
      for (std::uint8_t c : kCoefficients) {
        auto dst = random_buf(rng, n);
        auto expect = dst;
        reference_mul_add(c, src.data(), expect.data(), n);
        ops().gf256_mul_add(c, src.data(), dst.data(), n);
        ASSERT_EQ(dst, expect) << "tier " << ops().name << " size " << n
                               << " c " << int(c) << " seed " << seed;
      }
    }
  }
}

// Every (src misalignment, dst misalignment) pair over a vector width —
// vector kernels use unaligned loads/stores, so no pair may differ.
TEST_P(KernelConformance, EveryMisalignmentPairMatchesScalar) {
  Rng rng(41);
  constexpr std::size_t kAlign = 64;
  constexpr std::size_t kLen = 200;  // spans unrolled body + vector + tail
  auto src_base = random_buf(rng, kAlign + kLen);
  auto dst_base = random_buf(rng, kAlign + kLen);
  for (std::size_t so = 0; so < kAlign; ++so) {
    for (std::size_t dz = 0; dz < kAlign; dz += 7) {  // sampled dst offsets
      auto dst = dst_base;
      auto expect = dst_base;
      reference_xor(expect.data() + dz, src_base.data() + so, kLen);
      ops().xor_into(reinterpret_cast<std::byte*>(dst.data() + dz),
                     reinterpret_cast<const std::byte*>(src_base.data() + so),
                     kLen);
      ASSERT_EQ(dst, expect) << "tier " << ops().name << " src+" << so
                             << " dst+" << dz;

      dst = dst_base;
      expect = dst_base;
      reference_mul_add(0x1d, src_base.data() + so, expect.data() + dz, kLen);
      ops().gf256_mul_add(0x1d, src_base.data() + so, dst.data() + dz, kLen);
      ASSERT_EQ(dst, expect) << "mul_add tier " << ops().name << " src+" << so
                             << " dst+" << dz;
    }
  }
}

TEST_P(KernelConformance, ZeroLengthIsANoOp) {
  std::vector<std::uint8_t> src{0xab}, dst{0xcd};
  ops().xor_into(reinterpret_cast<std::byte*>(dst.data()),
                 reinterpret_cast<const std::byte*>(src.data()), 0);
  EXPECT_EQ(dst[0], 0xcd);
  ops().gf256_mul_add(0x55, src.data(), dst.data(), 0);
  EXPECT_EQ(dst[0], 0xcd);
}

// Adversarial contents: all-zero, all-0xff, and a single set bit walked
// across every byte of a vector-width window at each boundary region.
TEST_P(KernelConformance, AdversarialPatternsMatchScalar) {
  constexpr std::size_t kLen = 160;
  std::vector<std::vector<std::uint8_t>> patterns;
  patterns.emplace_back(kLen, std::uint8_t{0});
  patterns.emplace_back(kLen, std::uint8_t{0xff});
  for (std::size_t pos : {0u, 31u, 32u, 63u, 64u, 127u, 128u, 159u}) {
    std::vector<std::uint8_t> p(kLen, 0);
    p[pos] = 0x80;
    patterns.push_back(std::move(p));
  }
  for (const auto& src : patterns) {
    for (const auto& base : patterns) {
      for (std::uint8_t c : kCoefficients) {
        auto dst = base;
        auto expect = base;
        reference_mul_add(c, src.data(), expect.data(), kLen);
        ops().gf256_mul_add(c, src.data(), dst.data(), kLen);
        ASSERT_EQ(dst, expect) << "tier " << ops().name << " c " << int(c);
      }
      auto dst = base;
      auto expect = base;
      reference_xor(expect.data(), src.data(), kLen);
      ops().xor_into(reinterpret_cast<std::byte*>(dst.data()),
                     reinterpret_cast<const std::byte*>(src.data()), kLen);
      ASSERT_EQ(dst, expect) << "xor tier " << ops().name;
    }
  }
}

// mul_add by 1 must equal xor; by 0 must leave dst untouched. These are
// the fast paths the vector kernels special-case.
TEST_P(KernelConformance, CoefficientIdentities) {
  Rng rng(97);
  for (std::size_t n : {0u, 1u, 33u, 150u, 4096u}) {
    auto src = random_buf(rng, n);
    auto dst = random_buf(rng, n);
    auto xored = dst;
    ops().gf256_mul_add(1, src.data(), dst.data(), n);
    ops().xor_into(reinterpret_cast<std::byte*>(xored.data()),
                   reinterpret_cast<const std::byte*>(src.data()), n);
    EXPECT_EQ(dst, xored) << "tier " << ops().name << " size " << n;

    auto frozen = dst;
    ops().gf256_mul_add(0, src.data(), dst.data(), n);
    EXPECT_EQ(dst, frozen) << "tier " << ops().name << " size " << n;
  }
}

INSTANTIATE_TEST_SUITE_P(AllTiers, KernelConformance,
                         ::testing::ValuesIn(supported_tiers()),
                         [](const auto& info) {
                           return std::string(tier_name(info.param));
                         });

TEST(KernelDispatch, ScalarAndBlockedAlwaysSupported) {
  EXPECT_TRUE(tier_supported(KernelTier::Scalar));
  EXPECT_TRUE(tier_supported(KernelTier::Blocked));
  EXPECT_GE(supported_tiers().size(), 2u);
}

TEST(KernelDispatch, SetActiveTierRoutesPublicEntryPoints) {
  const KernelOps& before = active_kernel();
  for (KernelTier tier : supported_tiers()) {
    set_active_tier(tier);
    EXPECT_EQ(&active_kernel(), &kernel_for(tier));
    // The public entry points observe the switch.
    std::vector<std::byte> a(100, std::byte{0x5a}), b(100, std::byte{0xa5});
    xor_into(a, b);
    EXPECT_EQ(a[0], std::byte{0xff});
    std::vector<std::uint8_t> s(100, 2), d(100, 0);
    gf256::mul_add(3, s.data(), d.data(), 100);
    EXPECT_EQ(d[0], gf256::mul(3, 2));
  }
  set_active_tier(before.tier);
}

TEST(KernelDispatch, UnsupportedTierThrows) {
#if !defined(__aarch64__)
  EXPECT_FALSE(tier_supported(KernelTier::Neon));
  EXPECT_THROW(kernel_for(KernelTier::Neon), ConfigError);
  EXPECT_THROW(set_active_tier(KernelTier::Neon), ConfigError);
#else
  EXPECT_FALSE(tier_supported(KernelTier::Avx2));
  EXPECT_THROW(kernel_for(KernelTier::Avx2), ConfigError);
#endif
}

TEST(KernelDispatch, ParseTierNames) {
  EXPECT_EQ(parse_tier("scalar"), KernelTier::Scalar);
  EXPECT_EQ(parse_tier("blocked"), KernelTier::Blocked);
  EXPECT_EQ(parse_tier("avx2"), KernelTier::Avx2);
  EXPECT_EQ(parse_tier("neon"), KernelTier::Neon);
  EXPECT_EQ(parse_tier("bogus"), std::nullopt);
  EXPECT_EQ(parse_tier(""), std::nullopt);
}

TEST(KernelDispatch, TierNamesRoundTrip) {
  for (KernelTier tier : supported_tiers())
    EXPECT_EQ(parse_tier(tier_name(tier)), tier);
}

}  // namespace
}  // namespace vdc::parity
