// Replicated control plane: wire format, applied view, raft safety, and
// the JobRunner integration (quorum-gated epoch commit, leader-targeted
// fault grammar, takeover state rebuild, zero-fault bit-identity).

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "controlplane/log.hpp"
#include "controlplane/raft.hpp"
#include "core/runtime.hpp"
#include "failure/injector.hpp"
#include "net/fault.hpp"

namespace vdc::controlplane {
namespace {

using Kind = ControlEntry::Kind;

ControlEntry entry(Kind kind, std::uint64_t value = 0,
                   std::uint64_t arg = 0) {
  ControlEntry e;
  e.kind = kind;
  e.value = value;
  e.arg = arg;
  return e;
}

// --- wire format -------------------------------------------------------------

Frame sample_append_frame() {
  Frame f;
  f.type = Frame::Type::kAppend;
  f.from = 2;
  f.to = 0;
  f.term = 7;
  f.prev_index = 11;
  f.prev_term = 6;
  f.leader_commit = 9;
  f.entries.push_back(LogRecord{6, entry(Kind::kEpochCut, 41)});
  f.entries.push_back(LogRecord{7, entry(Kind::kEpochCommit, 41, 1)});
  f.entries.push_back(LogRecord{7, entry(Kind::kNodeFenced, 3, 42)});
  return f;
}

TEST(ControlFrame, RoundTripsAllMessageTypes) {
  std::vector<Frame> frames;
  Frame rv;
  rv.type = Frame::Type::kRequestVote;
  rv.from = 1;
  rv.to = 2;
  rv.term = 3;
  rv.last_log_index = 17;
  rv.last_log_term = 2;
  frames.push_back(rv);
  Frame vote;
  vote.type = Frame::Type::kVote;
  vote.from = 2;
  vote.to = 1;
  vote.term = 3;
  vote.granted = true;
  frames.push_back(vote);
  frames.push_back(sample_append_frame());
  Frame ack;
  ack.type = Frame::Type::kAck;
  ack.from = 0;
  ack.to = 2;
  ack.term = 7;
  ack.success = true;
  ack.match_index = 14;
  frames.push_back(ack);

  for (const Frame& f : frames) {
    const auto wire = encode_frame(f);
    Frame back;
    ASSERT_TRUE(decode_frame(wire, back));
    EXPECT_EQ(back, f);
  }
}

TEST(ControlFrame, EveryBitFlipIsRejected) {
  const auto wire = encode_frame(sample_append_frame());
  for (std::size_t bit = 0; bit < wire.size() * 8; ++bit) {
    auto bad = wire;
    bad[bit / 8] ^= std::byte{1} << (bit % 8);
    Frame out;
    EXPECT_FALSE(decode_frame(bad, out)) << "bit " << bit;
    // The judged-corrupt delivery path uses the same arithmetic.
    EXPECT_TRUE(net::crc_catches_flip(frame_payload(wire), frame_crc(wire),
                                      bit));
  }
}

TEST(ControlFrame, RejectsShapeViolations) {
  Frame out;
  EXPECT_FALSE(decode_frame({}, out));
  const auto wire = encode_frame(sample_append_frame());
  // Truncated and padded buffers.
  EXPECT_FALSE(
      decode_frame(std::span<const std::byte>(wire).first(wire.size() - 1),
                   out));
  auto padded = wire;
  padded.push_back(std::byte{0});
  EXPECT_FALSE(decode_frame(padded, out));
}

// --- applied view ------------------------------------------------------------

TEST(CoordinatorView, EpochSequenceIsGapFreeAndIdempotent) {
  CoordinatorView view;
  view.apply(entry(Kind::kEpochCut, 1));
  view.apply(entry(Kind::kEpochCommit, 1));
  view.apply(entry(Kind::kEpochCommit, 2));
  EXPECT_EQ(view.committed_epoch, 2u);
  EXPECT_TRUE(view.epoch_sequence_ok);
  // Re-proposal of an orphaned commit record: idempotent, not a gap.
  view.apply(entry(Kind::kEpochCommit, 2));
  EXPECT_EQ(view.committed_epoch, 2u);
  EXPECT_TRUE(view.epoch_sequence_ok);
  // Skipping forward IS a gap — the latch trips.
  view.apply(entry(Kind::kEpochCommit, 5));
  EXPECT_FALSE(view.epoch_sequence_ok);
}

TEST(CoordinatorView, TracksMembershipAndRestart) {
  CoordinatorView view;
  view.apply(entry(Kind::kEpochCommit, 1));
  view.apply(entry(Kind::kNodeFailed, 3));
  view.apply(entry(Kind::kNodeFenced, 3, 2));
  view.apply(entry(Kind::kRecoveryBegin, 3));
  EXPECT_TRUE(view.episode_open);
  EXPECT_EQ(view.failed.count(3), 1u);
  EXPECT_EQ(view.fences.at(3), 2u);
  view.apply(entry(Kind::kNodeRejoined, 3));
  view.apply(entry(Kind::kRecoverySettled, 1, 1));
  EXPECT_FALSE(view.episode_open);
  EXPECT_EQ(view.failed.count(3), 0u);
  EXPECT_EQ(view.fences.count(3), 0u);
  view.apply(entry(Kind::kPlanVersion, 4));
  EXPECT_EQ(view.plan_version, 4u);
  // Restart: epoch numbering starts over; epoch 1 is again in sequence.
  view.apply(entry(Kind::kJobRestart));
  EXPECT_EQ(view.restarts, 1u);
  view.apply(entry(Kind::kEpochCommit, 1));
  EXPECT_EQ(view.committed_epoch, 1u);
  EXPECT_TRUE(view.epoch_sequence_ok);
}

// --- raft plane --------------------------------------------------------------

struct PlaneFixture {
  simkit::Simulator sim;
  Rng rng{1234};
  cluster::ClusterManager cluster{sim, Rng(99)};
  std::optional<ControlPlane> plane;

  explicit PlaneFixture(std::uint32_t nodes = 5,
                        ControlPlaneConfig config = {}) {
    for (std::uint32_t n = 0; n < nodes; ++n) cluster.add_node();
    plane.emplace(sim, cluster, config, rng);
  }
};

TEST(ControlPlane, BootstrapsNodeZeroAsLeaderWithoutAnElection) {
  PlaneFixture fx;
  fx.plane->start();
  ASSERT_TRUE(fx.plane->leader().has_value());
  EXPECT_EQ(*fx.plane->leader(), 0u);
  EXPECT_EQ(fx.plane->term(), 1u);
  EXPECT_EQ(fx.plane->elections(), 0u);
  fx.sim.run_until(1.0);
  // Still the bootstrap leader; a fault-free plane never elects.
  EXPECT_EQ(*fx.plane->leader(), 0u);
  EXPECT_EQ(fx.plane->elections(), 0u);
  EXPECT_TRUE(fx.plane->election_safety_ok());
  fx.plane->stop();
}

TEST(ControlPlane, AppendCommitsThroughQuorumAndAppliesEverywhere) {
  PlaneFixture fx;
  fx.plane->start();
  int commits = 0;
  ASSERT_TRUE(fx.plane->append(entry(Kind::kEpochCut, 1),
                               [&](bool ok) { commits += ok; }));
  ASSERT_TRUE(fx.plane->append(entry(Kind::kEpochCommit, 1),
                               [&](bool ok) { commits += ok; }));
  fx.sim.run_until(1.0);
  EXPECT_EQ(commits, 2);
  ASSERT_NE(fx.plane->leader_view(), nullptr);
  EXPECT_EQ(fx.plane->leader_view()->committed_epoch, 1u);
  // Every replica's applied view converges (heartbeats carry the
  // commit watermark to all followers).
  for (NodeId n = 0; n < fx.plane->replica_count(); ++n)
    EXPECT_EQ(fx.plane->view(n).committed_epoch, 1u) << "replica " << n;
  EXPECT_TRUE(fx.plane->logs_consistent());
  EXPECT_TRUE(fx.plane->epoch_sequence_ok());
  fx.plane->stop();
}

TEST(ControlPlane, LeaderDeathElectsSuccessorAndFailsOrphanedAppends) {
  PlaneFixture fx;
  fx.plane->start();
  fx.sim.run_until(0.5);
  // Kill the leader with a record in flight: the waiter must resolve
  // false (abandoned), never hang, never double-commit.
  bool resolved = false, committed = false;
  ASSERT_TRUE(fx.plane->append(entry(Kind::kEpochCommit, 1), [&](bool ok) {
    resolved = true;
    committed = ok;
  }));
  fx.cluster.kill_node(0);
  fx.plane->on_node_death(0);
  fx.sim.run_until(2.0);
  EXPECT_TRUE(resolved);
  EXPECT_FALSE(committed);
  ASSERT_TRUE(fx.plane->leader().has_value());
  EXPECT_NE(*fx.plane->leader(), 0u);
  EXPECT_GE(fx.plane->elections(), 1u);
  EXPECT_GE(fx.plane->term(), 2u);
  // The new leader still commits records.
  bool ok2 = false;
  ASSERT_TRUE(fx.plane->append(entry(Kind::kEpochCommit, 1),
                               [&](bool ok) { ok2 = ok; }));
  fx.sim.run_until(3.0);
  EXPECT_TRUE(ok2);
  EXPECT_TRUE(fx.plane->election_safety_ok());
  EXPECT_TRUE(fx.plane->logs_consistent());
  fx.plane->stop();
}

TEST(ControlPlane, RejoinedReplicaCatchesUpUnsynced) {
  PlaneFixture fx;
  fx.plane->start();
  ASSERT_TRUE(fx.plane->append(entry(Kind::kEpochCut, 1)));
  ASSERT_TRUE(fx.plane->append(entry(Kind::kEpochCommit, 1)));
  fx.sim.run_until(0.5);
  fx.cluster.kill_node(2);
  fx.plane->on_node_death(2);
  fx.sim.run_until(1.0);
  fx.cluster.revive_node(2);
  fx.plane->on_node_rejoin(2);
  // The leader's regular heartbeats find and catch up the empty replica.
  fx.sim.run_until(2.0);
  EXPECT_EQ(fx.plane->view(2).committed_epoch, 1u);
  EXPECT_EQ(fx.plane->log(2).size(), fx.plane->log(0).size());
  EXPECT_TRUE(fx.plane->logs_consistent());
  fx.plane->stop();
}

TEST(ControlPlane, FencedDeposedLeaderCannotCommitLateRecords) {
  PlaneFixture fx;
  fx.plane->start();
  fx.sim.run_until(0.5);
  // The cluster declares the (alive) leader dead and fences it — the
  // partitioned-zombie scenario. Its late appends must be rejected by
  // followers, and a real election must depose it.
  fx.cluster.fence_node(0, /*token=*/2);
  ASSERT_TRUE(fx.plane->append(entry(Kind::kEpochCommit, 1)));
  fx.sim.run_until(3.0);
  const auto& metrics = fx.sim.telemetry().metrics();
  EXPECT_GT(metrics.value("cp.fenced_rejects"), 0.0);
  ASSERT_TRUE(fx.plane->leader().has_value());
  EXPECT_NE(*fx.plane->leader(), 0u);
  // The zombie's uncommitted record never reached the quorum: no replica
  // other than the zombie applied epoch 1.
  for (NodeId n = 1; n < fx.plane->replica_count(); ++n)
    EXPECT_EQ(fx.plane->view(n).committed_epoch, 0u) << "replica " << n;
  EXPECT_TRUE(fx.plane->election_safety_ok());
  fx.plane->stop();
}

}  // namespace
}  // namespace vdc::controlplane

// --- JobRunner integration ---------------------------------------------------

namespace vdc::core {
namespace {

JobRunner::BackendFactory dvdc_factory(ProtocolConfig protocol = {},
                                       RecoveryConfig recovery = {},
                                       ClusterConfig cc = {}) {
  return [protocol, recovery, cc](simkit::Simulator& sim,
                                  cluster::ClusterManager& cluster,
                                  Rng&) -> std::unique_ptr<CheckpointBackend> {
    return std::make_unique<DvdcBackend>(sim, cluster, protocol, recovery,
                                         make_workload_factory(cc));
  };
}

ClusterConfig small_cluster() {
  ClusterConfig cc;
  cc.nodes = 6;
  cc.vms_per_node = 2;
  cc.pages_per_vm = 32;
  cc.page_size = kib(1);
  cc.write_rate = 100.0;
  return cc;
}

TEST(ControlPlaneRuntime, ZeroFaultRunBitIdenticalToBaseline) {
  // The acceptance invariant: enabling the control plane with zero
  // coordinator faults must leave the job — epochs, wire bytes, fault
  // schedule, serving metrics — bit-identical to the single-coordinator
  // baseline.
  JobConfig base;
  base.total_work = minutes(4);
  base.interval = minutes(1);
  base.traffic = workload::TrafficConfig{};
  base.traffic->streams_per_guest = 2;
  base.traffic->clients_per_guest = 10;
  JobConfig gated = base;
  gated.control = controlplane::ControlPlaneConfig{};

  JobRunner a(base, small_cluster(), dvdc_factory());
  const RunResult ra = a.run();
  JobRunner b(gated, small_cluster(), dvdc_factory());
  const RunResult rb = b.run();

  ASSERT_TRUE(ra.finished && rb.finished);
  EXPECT_DOUBLE_EQ(ra.completion, rb.completion);
  EXPECT_EQ(ra.epochs, rb.epochs);
  EXPECT_EQ(ra.bytes_shipped, rb.bytes_shipped);
  EXPECT_EQ(ra.failures, rb.failures);

  const auto sa = a.traffic()->summary();
  const auto sb = b.traffic()->summary();
  EXPECT_EQ(sa.requests, sb.requests);
  EXPECT_EQ(sa.delivered, sb.delivered);
  EXPECT_DOUBLE_EQ(sa.latency_p50, sb.latency_p50);
  EXPECT_DOUBLE_EQ(sa.latency_p99, sb.latency_p99);
  EXPECT_EQ(sa.held_bytes_peak, sb.held_bytes_peak);

  // The gated run really did route every epoch through the quorum...
  ASSERT_NE(b.control(), nullptr);
  EXPECT_EQ(b.control()->leader_view()->committed_epoch,
            static_cast<std::uint64_t>(rb.epochs));
  // ...with node 0 the bootstrap leader throughout (no elections).
  EXPECT_EQ(b.control()->elections(), 0u);
  EXPECT_TRUE(b.control()->election_safety_ok());
  EXPECT_TRUE(b.control()->epoch_sequence_ok());
  EXPECT_TRUE(b.control()->logs_consistent());
}

TEST(ControlPlaneRuntime, LeaderKillMidEpochCompletesAfterReElection) {
  // The headline drill: schedule a coordinator kill squarely inside an
  // epoch capture. The quorum elects a successor; the job completes with
  // gap-free committed epochs; a follower's rebuilt view agrees with the
  // backend about what committed.
  JobConfig job;
  job.total_work = minutes(4);
  job.interval = minutes(1);
  job.control = controlplane::ControlPlaneConfig{};
  // Stretch each epoch to a 0.5 s stall so the second capture (epoch 2,
  // cut at work 120 = sim ~120.5) is reliably in flight when the kill
  // fires — epoch 1 is committed by then, so recovery rolls back to it
  // instead of escalating to a restart.
  ProtocolConfig protocol;
  protocol.base_overhead = 0.5;
  job.failure_schedule = failure::ScheduledFailureInjector::parse(
      "kill-leader at 120.8\n");

  JobRunner runner(job, small_cluster(), dvdc_factory(protocol));
  const RunResult result = runner.run();

  ASSERT_TRUE(result.finished);
  EXPECT_EQ(result.failures, 1u);
  EXPECT_EQ(result.job_restarts, 0u);
  auto* cp = runner.control();
  ASSERT_NE(cp, nullptr);
  EXPECT_GE(cp->elections(), 1u);
  ASSERT_TRUE(cp->leader().has_value());
  EXPECT_NE(*cp->leader(), 0u);
  EXPECT_TRUE(cp->election_safety_ok());
  EXPECT_TRUE(cp->epoch_sequence_ok());
  EXPECT_TRUE(cp->logs_consistent());
  // The new leader's replayed view has exactly the backend's epochs.
  EXPECT_EQ(cp->leader_view()->committed_epoch,
            runner.backend()->committed_epoch());
  EXPECT_EQ(result.epochs,
            static_cast<std::uint32_t>(runner.backend()->committed_epoch()));
  // The log recorded the episode (membership + recovery transitions).
  EXPECT_EQ(cp->leader_view()->failed.count(0), 0u);  // rejoined (oracle)
  EXPECT_FALSE(cp->leader_view()->episode_open);
  // The kill really interrupted epoch 2 in flight: its cut was logged
  // once through the old leader and again when it was re-captured.
  int epoch2_cuts = 0;
  for (const auto& rec : cp->log(*cp->leader()))
    if (rec.entry.kind == controlplane::ControlEntry::Kind::kEpochCut &&
        rec.entry.value == 2)
      ++epoch2_cuts;
  EXPECT_EQ(epoch2_cuts, 2);
}

TEST(ControlPlaneRuntime, KillLeaderWithoutControlPlaneStrikesNodeZero) {
  // Without a control plane the implicit coordinator is node 0; the
  // leader-targeted grammar still works and kills it.
  JobConfig job;
  job.total_work = minutes(3);
  job.interval = minutes(1);
  job.failure_schedule =
      failure::ScheduledFailureInjector::parse("kill-leader at 70\n");
  std::vector<cluster::NodeId> victims;
  job.observer = [&](const JobEvent& ev) {
    if (ev.kind == JobEvent::Kind::Failure) victims.push_back(ev.node);
  };
  JobRunner runner(job, small_cluster(), dvdc_factory());
  const RunResult result = runner.run();
  ASSERT_TRUE(result.finished);
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0], 0u);
}

TEST(ControlPlaneRuntime, LeaderPartitionedThenHealsKeepsCommitsSafe) {
  // Wire mode: partition the leader mid-run. The bootstrap leader is node
  // 0, which is ALSO the heartbeat observer — isolating it cuts the
  // detector off from every other node, so the cluster mass-suspects the
  // far side, fences it, and the cascade correctly escalates to a job
  // restart. The point of the drill is what must survive that chaos: the
  // job still completes all its work, no term ever sees two leaders, the
  // committed epoch sequence stays gap-free, every replica's log agrees,
  // and once the partition heals the suspected zombies rejoin WITH their
  // intact replica state (a zombie's raft log never died with the
  // cluster's belief — wiping it could strand the quorum with no electable
  // majority).
  JobConfig quiet;
  quiet.total_work = minutes(5);
  quiet.interval = minutes(1);
  quiet.heartbeat = cluster::HeartbeatConfig{};
  quiet.control = controlplane::ControlPlaneConfig{};
  JobConfig drill = quiet;
  drill.failure_schedule = failure::ScheduledFailureInjector::parse(
      "partition-leader at 70 1\n"
      "heal 85 all\n");

  JobRunner a(quiet, small_cluster(), dvdc_factory());
  const RunResult ra = a.run();
  JobRunner b(drill, small_cluster(), dvdc_factory());
  const RunResult rb = b.run();

  ASSERT_TRUE(ra.finished);
  ASSERT_TRUE(rb.finished);
  // Same job completed either way (the drill just takes longer).
  EXPECT_DOUBLE_EQ(rb.total_work, ra.total_work);
  auto* cp = b.control();
  ASSERT_NE(cp, nullptr);
  EXPECT_GE(cp->elections(), 1u);
  EXPECT_TRUE(cp->election_safety_ok());
  EXPECT_TRUE(cp->epoch_sequence_ok());
  EXPECT_TRUE(cp->logs_consistent());
  EXPECT_EQ(cp->leader_view()->committed_epoch,
            b.backend()->committed_epoch());
  // Every suspicion was a false positive; all of them were discovered
  // (fenced stale writes) and every zombie rejoined with state intact.
  const auto& metrics = b.sim().telemetry().metrics();
  EXPECT_GE(metrics.value("job.suspected_failures"), 1.0);
  EXPECT_EQ(metrics.value("recovery.fenced"),
            metrics.value("job.suspected_failures"));
  for (controlplane::NodeId n = 0; n < cp->replica_count(); ++n) {
    EXPECT_TRUE(cp->replica_synced(n)) << "replica " << n;
    EXPECT_TRUE(b.cluster().node(n).alive()) << "replica " << n;
  }
}

}  // namespace
}  // namespace vdc::core
