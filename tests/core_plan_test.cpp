// Tests for the orthogonal RAID-group planner.

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "core/plan.hpp"
#include "core/protocol.hpp"
#include "vm/workload.hpp"

namespace vdc::core {
namespace {

struct Rig {
  simkit::Simulator sim;
  cluster::ClusterManager cluster{sim, Rng(1)};

  Rig(std::uint32_t nodes, std::uint32_t vms_per_node) {
    for (std::uint32_t n = 0; n < nodes; ++n) cluster.add_node();
    for (std::uint32_t n = 0; n < nodes; ++n)
      for (std::uint32_t v = 0; v < vms_per_node; ++v)
        cluster.boot_vm(n, kib(4), 4, std::make_unique<vm::IdleWorkload>());
  }
};

TEST(Planner, Figure4Layout) {
  // 4 nodes x 3 VMs, k = 3: exactly 4 groups, all VMs covered.
  Rig rig(4, 3);
  GroupPlanner planner;
  GroupPlan plan = planner.plan(rig.cluster);
  EXPECT_EQ(plan.groups.size(), 4u);
  EXPECT_EQ(plan.total_members(), 12u);
  for (const auto& g : plan.groups) EXPECT_EQ(g.members.size(), 3u);
  EXPECT_TRUE(GroupPlanner::validate(plan, rig.cluster));
}

TEST(Planner, EveryVmInExactlyOneGroup) {
  Rig rig(5, 4);
  GroupPlan plan = GroupPlanner().plan(rig.cluster);
  std::set<vm::VmId> seen;
  for (const auto& g : plan.groups)
    for (vm::VmId m : g.members) EXPECT_TRUE(seen.insert(m).second);
  EXPECT_EQ(seen.size(), 20u);
}

TEST(Planner, GroupOfLookup) {
  Rig rig(3, 2);
  GroupPlan plan = GroupPlanner().plan(rig.cluster);
  for (const auto& g : plan.groups)
    for (vm::VmId m : g.members) EXPECT_EQ(plan.group_of(m), g.id);
  EXPECT_FALSE(plan.group_of(9999).has_value());
}

class PlannerShapes
    : public ::testing::TestWithParam<std::tuple<std::uint32_t, std::uint32_t,
                                                 std::uint32_t>> {};

TEST_P(PlannerShapes, OrthogonalityHoldsAcrossShapes) {
  const auto [nodes, vms, k] = GetParam();
  Rig rig(nodes, vms);
  PlannerConfig config;
  config.group_size = k;
  GroupPlan plan = GroupPlanner(config).plan(rig.cluster);
  EXPECT_TRUE(GroupPlanner::validate(plan, rig.cluster));
  EXPECT_EQ(plan.total_members(), std::size_t{nodes} * vms);
  // No group exceeds k members and every group's nodes are distinct.
  for (const auto& g : plan.groups) {
    EXPECT_LE(g.members.size(), std::size_t{k});
    std::set<cluster::NodeId> group_nodes;
    for (vm::VmId m : g.members)
      EXPECT_TRUE(group_nodes.insert(*rig.cluster.locate(m)).second);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PlannerShapes,
    ::testing::Values(std::make_tuple(2u, 1u, 1u), std::make_tuple(3u, 1u, 2u),
                      std::make_tuple(4u, 3u, 3u), std::make_tuple(4u, 3u, 2u),
                      std::make_tuple(5u, 7u, 4u), std::make_tuple(8u, 2u, 7u),
                      std::make_tuple(6u, 5u, 3u),
                      std::make_tuple(16u, 4u, 15u)));

TEST(Planner, UnevenVmCountsStillCovered) {
  Rig rig(4, 0);
  // 5, 3, 1, 0 VMs per node.
  for (int i = 0; i < 5; ++i)
    rig.cluster.boot_vm(0, kib(4), 4, std::make_unique<vm::IdleWorkload>());
  for (int i = 0; i < 3; ++i)
    rig.cluster.boot_vm(1, kib(4), 4, std::make_unique<vm::IdleWorkload>());
  rig.cluster.boot_vm(2, kib(4), 4, std::make_unique<vm::IdleWorkload>());
  GroupPlan plan = GroupPlanner().plan(rig.cluster);
  EXPECT_EQ(plan.total_members(), 9u);
  EXPECT_TRUE(GroupPlanner::validate(plan, rig.cluster));
}

TEST(Planner, GroupSizeEqualToNodesRejected) {
  Rig rig(3, 2);
  PlannerConfig config;
  config.group_size = 3;  // no node left for parity
  EXPECT_THROW(GroupPlanner(config).plan(rig.cluster), ConfigError);
}

TEST(Planner, SingleNodeRejected) {
  Rig rig(1, 3);
  EXPECT_THROW(GroupPlanner().plan(rig.cluster), ConfigError);
}

TEST(Planner, DeadNodesExcluded) {
  Rig rig(5, 2);
  rig.cluster.kill_node(4);
  GroupPlan plan = GroupPlanner().plan(rig.cluster);
  EXPECT_EQ(plan.total_members(), 8u);  // node 4's VMs are gone
  EXPECT_TRUE(GroupPlanner::validate(plan, rig.cluster));
  for (const auto& g : plan.groups)
    for (vm::VmId m : g.members)
      EXPECT_NE(rig.cluster.locate(m), 4u);
}

TEST(Planner, EligibleParityNodesExcludeMembers) {
  Rig rig(4, 3);
  GroupPlan plan = GroupPlanner().plan(rig.cluster);
  for (const auto& g : plan.groups) {
    const auto eligible =
        GroupPlanner::eligible_parity_nodes(g, rig.cluster);
    ASSERT_EQ(eligible.size(), 1u);  // k=3 members on 3 of 4 nodes
    for (vm::VmId m : g.members)
      EXPECT_NE(*rig.cluster.locate(m), eligible[0]);
  }
}

TEST(Planner, ParityHolderDeterministic) {
  Rig rig(4, 3);
  GroupPlan plan = GroupPlanner().plan(rig.cluster);
  for (const auto& g : plan.groups) {
    const auto h1 = GroupPlanner::parity_holder(g, 0, rig.cluster);
    const auto h2 = GroupPlanner::parity_holder(g, 0, rig.cluster);
    EXPECT_EQ(h1, h2);
  }
}

TEST(Planner, ValidateCatchesCollocatedMembers) {
  Rig rig(3, 2);
  GroupPlan plan = GroupPlanner().plan(rig.cluster);
  // Force two members of group 0 onto the same node.
  auto& g = plan.groups[0];
  ASSERT_GE(g.members.size(), 2u);
  const auto loc0 = *rig.cluster.locate(g.members[0]);
  auto machine =
      rig.cluster.node(*rig.cluster.locate(g.members[1])).hypervisor().evict(
          g.members[1]);
  rig.cluster.place(std::move(machine), loc0);
  EXPECT_FALSE(GroupPlanner::validate(plan, rig.cluster));
}

TEST(Planner, ValidateCatchesMissingVm) {
  Rig rig(3, 2);
  GroupPlan plan = GroupPlanner().plan(rig.cluster);
  rig.cluster.destroy_vm(plan.groups[0].members[0]);
  EXPECT_FALSE(GroupPlanner::validate(plan, rig.cluster));
}

TEST(PlacedPlan, HoldersAvoidMemberNodes) {
  Rig rig(4, 3);
  auto placed = PlacedPlan::make(GroupPlanner().plan(rig.cluster),
                                 rig.cluster, ParityScheme::Raid5);
  ASSERT_EQ(placed.holders.size(), placed.plan.groups.size());
  for (std::size_t gi = 0; gi < placed.plan.groups.size(); ++gi) {
    ASSERT_EQ(placed.holders[gi].size(), 1u);
    for (vm::VmId m : placed.plan.groups[gi].members)
      EXPECT_NE(*rig.cluster.locate(m), placed.holders[gi][0]);
  }
}

TEST(PlacedPlan, ParityDutySpreadAcrossNodes) {
  // Figure 4's point: with rotation, no single node holds all parity.
  Rig rig(4, 3);
  auto placed = PlacedPlan::make(GroupPlanner().plan(rig.cluster),
                                 rig.cluster, ParityScheme::Raid5);
  std::set<cluster::NodeId> holders;
  for (const auto& hs : placed.holders) holders.insert(hs[0]);
  EXPECT_GT(holders.size(), 1u);
}

TEST(PlacedPlan, RdpNeedsTwoEligibleNodes) {
  Rig small(3, 1);  // k = 2 -> only 1 eligible parity node
  auto plan = GroupPlanner().plan(small.cluster);
  EXPECT_THROW(PlacedPlan::make(plan, small.cluster, ParityScheme::Rdp),
               ConfigError);

  Rig ok(4, 1);
  PlannerConfig config;
  config.group_size = 2;  // leaves 2 nodes eligible
  auto plan2 = GroupPlanner(config).plan(ok.cluster);
  auto placed = PlacedPlan::make(plan2, ok.cluster, ParityScheme::Rdp);
  for (const auto& hs : placed.holders) {
    ASSERT_EQ(hs.size(), 2u);
    EXPECT_NE(hs[0], hs[1]);
  }
}

}  // namespace
}  // namespace vdc::core
