// Tests for GF(256) arithmetic and the Cauchy Reed-Solomon codec:
// field axioms, MDS property across erasure patterns, and equivalence of
// incremental (delta) parity updates with re-encoding.

#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.hpp"
#include "parity/gf256.hpp"
#include "parity/reed_solomon.hpp"

namespace vdc::parity {
namespace {

Block random_block(Rng& rng, std::size_t n) {
  Block out(n);
  for (auto& b : out) b = static_cast<std::byte>(rng.next() & 0xff);
  return out;
}

TEST(Gf256, AdditionIsXor) {
  EXPECT_EQ(gf256::add(0x57, 0x83), 0x57 ^ 0x83);
  EXPECT_EQ(gf256::sub(0x57, 0x83), 0x57 ^ 0x83);
}

TEST(Gf256, MultiplicationIdentityAndZero) {
  for (int a = 0; a < 256; ++a) {
    EXPECT_EQ(gf256::mul(static_cast<std::uint8_t>(a), 1), a);
    EXPECT_EQ(gf256::mul(1, static_cast<std::uint8_t>(a)), a);
    EXPECT_EQ(gf256::mul(static_cast<std::uint8_t>(a), 0), 0);
  }
}

TEST(Gf256, MultiplicationCommutesAndAssociates) {
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.next());
    const auto b = static_cast<std::uint8_t>(rng.next());
    const auto c = static_cast<std::uint8_t>(rng.next());
    EXPECT_EQ(gf256::mul(a, b), gf256::mul(b, a));
    EXPECT_EQ(gf256::mul(gf256::mul(a, b), c),
              gf256::mul(a, gf256::mul(b, c)));
    // Distributivity over XOR.
    EXPECT_EQ(gf256::mul(a, gf256::add(b, c)),
              gf256::add(gf256::mul(a, b), gf256::mul(a, c)));
  }
}

TEST(Gf256, EveryNonzeroElementHasInverse) {
  for (int a = 1; a < 256; ++a) {
    const auto inv = gf256::inv(static_cast<std::uint8_t>(a));
    EXPECT_EQ(gf256::mul(static_cast<std::uint8_t>(a), inv), 1)
        << "a=" << a;
  }
  EXPECT_THROW(gf256::inv(0), InvariantError);
}

TEST(Gf256, DivisionInvertsMultiplication) {
  Rng rng(2);
  for (int i = 0; i < 2000; ++i) {
    const auto a = static_cast<std::uint8_t>(rng.next());
    auto b = static_cast<std::uint8_t>(rng.next());
    if (b == 0) b = 1;
    EXPECT_EQ(gf256::div(gf256::mul(a, b), b), a);
  }
}

TEST(Gf256, PowMatchesRepeatedMul) {
  const std::uint8_t g = 2;
  std::uint8_t acc = 1;
  for (unsigned e = 0; e < 300; ++e) {
    EXPECT_EQ(gf256::pow(g, e), acc) << "e=" << e;
    acc = gf256::mul(acc, g);
  }
}

TEST(Gf256, MulAddMatchesScalarLoop) {
  Rng rng(3);
  for (std::uint8_t c : {std::uint8_t{0}, std::uint8_t{1}, std::uint8_t{7},
                         std::uint8_t{0xd3}}) {
    auto src = random_block(rng, 333);
    auto dst = random_block(rng, 333);
    auto expect = dst;
    for (std::size_t i = 0; i < 333; ++i)
      expect[i] = static_cast<std::byte>(
          static_cast<std::uint8_t>(expect[i]) ^
          gf256::mul(c, static_cast<std::uint8_t>(src[i])));
    gf256::mul_add(c, reinterpret_cast<const std::uint8_t*>(src.data()),
                   reinterpret_cast<std::uint8_t*>(dst.data()), 333);
    EXPECT_EQ(dst, expect) << "c=" << int(c);
  }
}

TEST(ReedSolomon, ConstructionValidation) {
  EXPECT_THROW(ReedSolomonCodec(0, 1), ConfigError);
  EXPECT_THROW(ReedSolomonCodec(1, 0), ConfigError);
  EXPECT_THROW(ReedSolomonCodec(200, 100), ConfigError);
  EXPECT_NO_THROW(ReedSolomonCodec(3, 3));
}

TEST(ReedSolomon, CoefficientsAreNonzeroAndDistinctPerRow) {
  ReedSolomonCodec codec(8, 4);
  for (std::size_t j = 0; j < 4; ++j)
    for (std::size_t i = 0; i < 8; ++i)
      EXPECT_NE(codec.coefficient(j, i), 0);
}

// Exhaustive MDS check: every erasure pattern of size <= m recovers.
class RsErasureSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t>> {
};

TEST_P(RsErasureSweep, EveryPatternUpToMRecovers) {
  const auto [k, m] = GetParam();
  Rng rng(10 + k * 31 + m);
  ReedSolomonCodec codec(k, m);
  const std::size_t size = 96;

  std::vector<Block> data;
  for (std::size_t i = 0; i < k; ++i) data.push_back(random_block(rng, size));
  std::vector<BlockView> views(data.begin(), data.end());
  auto parity = codec.encode(views);
  ASSERT_EQ(parity.size(), m);

  std::vector<Block> all = data;
  for (auto& p : parity) all.push_back(p);
  const std::size_t width = k + m;

  // Enumerate all subsets of erasures with |S| <= m via bitmask (width is
  // small in the parameterisation).
  for (std::uint32_t mask = 1; mask < (1u << width); ++mask) {
    const auto popcount = __builtin_popcount(mask);
    if (popcount > static_cast<int>(m)) continue;
    std::vector<std::optional<Block>> stripe(all.begin(), all.end());
    for (std::size_t i = 0; i < width; ++i)
      if (mask & (1u << i)) stripe[i] = std::nullopt;
    ASSERT_NO_THROW(codec.reconstruct(stripe)) << "mask=" << mask;
    for (std::size_t i = 0; i < width; ++i)
      ASSERT_EQ(*stripe[i], all[i]) << "mask=" << mask << " slot " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Widths, RsErasureSweep,
    ::testing::Values(std::make_tuple(1u, 1u), std::make_tuple(2u, 1u),
                      std::make_tuple(3u, 2u), std::make_tuple(4u, 3u),
                      std::make_tuple(5u, 2u), std::make_tuple(6u, 4u)));

TEST(ReedSolomon, TooManyErasuresThrows) {
  Rng rng(4);
  ReedSolomonCodec codec(4, 2);
  std::vector<Block> data;
  for (int i = 0; i < 4; ++i) data.push_back(random_block(rng, 64));
  std::vector<BlockView> views(data.begin(), data.end());
  auto parity = codec.encode(views);
  std::vector<std::optional<Block>> stripe;
  for (auto& d : data) stripe.emplace_back(d);
  for (auto& p : parity) stripe.emplace_back(p);
  stripe[0] = stripe[1] = stripe[2] = std::nullopt;
  EXPECT_THROW(codec.reconstruct(stripe), DataLossError);
}

TEST(ReedSolomon, DeltaUpdateEqualsReencode) {
  // Linearity: parity_j ^= c_{j,i} * (new_i ^ old_i) must equal a full
  // re-encode — this is what the DVDC protocol's incremental RS path does.
  Rng rng(5);
  const std::size_t k = 4, m = 3, size = 256;
  ReedSolomonCodec codec(k, m);
  std::vector<Block> data;
  for (std::size_t i = 0; i < k; ++i) data.push_back(random_block(rng, size));
  std::vector<BlockView> views(data.begin(), data.end());
  auto parity = codec.encode(views);

  // Mutate member 2.
  Block old2 = data[2];
  data[2] = random_block(rng, size);
  Block delta = data[2];
  for (std::size_t i = 0; i < size; ++i) delta[i] ^= old2[i];

  for (std::size_t j = 0; j < m; ++j)
    gf256::mul_add(codec.coefficient(j, 2),
                   reinterpret_cast<const std::uint8_t*>(delta.data()),
                   reinterpret_cast<std::uint8_t*>(parity[j].data()), size);

  std::vector<BlockView> views2(data.begin(), data.end());
  EXPECT_EQ(parity, codec.encode(views2));
}

TEST(ReedSolomon, LargeStripe) {
  // A wide stripe exercising table arithmetic across many coefficients.
  Rng rng(6);
  const std::size_t k = 20, m = 5, size = 64;
  ReedSolomonCodec codec(k, m);
  std::vector<Block> data;
  for (std::size_t i = 0; i < k; ++i) data.push_back(random_block(rng, size));
  std::vector<BlockView> views(data.begin(), data.end());
  auto parity = codec.encode(views);

  std::vector<std::optional<Block>> stripe;
  for (auto& d : data) stripe.emplace_back(d);
  for (auto& p : parity) stripe.emplace_back(p);
  // Erase 5 spread-out slots (3 data + 2 parity).
  const Block d0 = data[0], d7 = data[7], d19 = data[19];
  stripe[0] = stripe[7] = stripe[19] = std::nullopt;
  stripe[k + 1] = stripe[k + 4] = std::nullopt;
  codec.reconstruct(stripe);
  EXPECT_EQ(*stripe[0], d0);
  EXPECT_EQ(*stripe[7], d7);
  EXPECT_EQ(*stripe[19], d19);
  EXPECT_EQ(*stripe[k + 1], parity[1]);
  EXPECT_EQ(*stripe[k + 4], parity[4]);
}

}  // namespace
}  // namespace vdc::parity
