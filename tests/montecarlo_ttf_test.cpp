// Tests for the generalized (renewal-process) Monte-Carlo: exponential
// gaps must reproduce the closed form, non-exponential gaps probe the
// paper's Poisson-assumption caveat.

#include <gtest/gtest.h>

#include <cmath>

#include "failure/distributions.hpp"
#include "model/analytic.hpp"
#include "model/montecarlo.hpp"

namespace vdc::model {
namespace {

TEST(McTtf, ExponentialMatchesClosedForm) {
  McConfig config;
  config.total_work = hours(3);
  config.interval = minutes(15);
  config.overhead = 20.0;
  config.repair = 60.0;
  config.trials = 20000;
  const double lambda = 1.0 / 1800.0;

  failure::ExponentialTtf ttf(lambda);
  auto stats = simulate_completion_times_ttf(config, ttf, Rng(1));
  const double analytic = expected_time_checkpoint_overhead(
      lambda, config.total_work, config.interval, config.overhead,
      config.repair);
  EXPECT_NEAR(stats.mean(), analytic, 4 * stats.ci95_halfwidth());
}

TEST(McTtf, ExponentialMatchesMemorylessSampler) {
  // The generic renewal sampler and the memoryless-subtraction sampler
  // must agree in distribution for exponential gaps.
  McConfig config;
  config.lambda = 1.0 / 900.0;
  config.total_work = hours(1);
  config.interval = minutes(10);
  config.overhead = 10.0;
  config.repair = 30.0;
  config.trials = 20000;

  failure::ExponentialTtf ttf(config.lambda);
  auto generic = simulate_completion_times_ttf(config, ttf, Rng(2));
  auto memoryless = simulate_completion_times(config, Rng(3));
  EXPECT_NEAR(generic.mean(), memoryless.mean(),
              4 * (generic.ci95_halfwidth() + memoryless.ci95_halfwidth()));
}

TEST(McTtf, WeibullShapeMattersAtEqualMtbf) {
  // Same MTBF, different hazard shapes: completion times differ, which is
  // exactly why the paper flags the bathtub curve as a caveat.
  McConfig config;
  config.total_work = hours(4);
  config.interval = minutes(20);
  config.overhead = 30.0;
  config.repair = 60.0;
  config.trials = 8000;
  const double mtbf = 1800.0;

  failure::ExponentialTtf expo(1.0 / mtbf);
  // Weibull with shape 0.6 and matched mean.
  const double shape = 0.6;
  const double scale = mtbf / std::tgamma(1.0 + 1.0 / shape);
  failure::WeibullTtf weib(shape, scale);
  ASSERT_NEAR(weib.mtbf(), mtbf, 1.0);

  auto e = simulate_completion_times_ttf(config, expo, Rng(4));
  auto w = simulate_completion_times_ttf(config, weib, Rng(5));
  // Heavy-tailed gaps (shape < 1) leave long quiet windows: at equal MTBF
  // the job completes faster than under Poisson failures.
  EXPECT_LT(w.mean(), e.mean() * 0.97);
}

TEST(McTtf, TraceGapsReplayDeterministically) {
  McConfig config;
  config.total_work = hours(1);
  config.interval = minutes(30);
  config.overhead = 0.0;
  config.repair = 100.0;
  config.trials = 1;

  // One failure at 45 min (mid second segment), then silence.
  failure::TraceTtf trace({minutes(45), hours(100)});
  Rng rng(6);
  const SimTime t = sample_completion_time_ttf(config, trace, rng);
  // Timeline: segment1 commits at 30 min; segment2 fails at 45 min
  // (15 min lost) + 100 s repair; segment2 redone in 30 min.
  EXPECT_NEAR(t, minutes(45) + 100.0 + minutes(30), 1.0);
}

TEST(McTtf, NoFailuresWithinHorizonIsFaultFree) {
  McConfig config;
  config.total_work = hours(1);
  config.interval = minutes(10);
  config.overhead = 5.0;
  config.repair = 60.0;
  config.trials = 1;
  failure::TraceTtf trace({hours(1000)});
  Rng rng(7);
  const SimTime t = sample_completion_time_ttf(config, trace, rng);
  // 6 segments, 5 paying overhead (the final stretch needs no trailing
  // checkpoint in the runtime, but the renewal model charges all 6).
  EXPECT_NEAR(t, hours(1) + 6 * 5.0, 1e-6);
}

}  // namespace
}  // namespace vdc::model
