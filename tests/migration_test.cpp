// Tests for live migration (pre-copy, stop-and-copy) and the Remus-style
// replicator.

#include <gtest/gtest.h>

#include "migration/precopy.hpp"
#include "migration/remus.hpp"

namespace vdc::migration {
namespace {

struct MigrationRig {
  simkit::Simulator sim;
  net::Fabric fabric{sim, 0.0};
  net::HostId host_a, host_b;
  vm::Hypervisor hv_a{Rng(1)}, hv_b{Rng(2)};

  MigrationRig(Rate nic = mib_per_s(100)) {
    host_a = fabric.add_host(nic, "a");
    host_b = fabric.add_host(nic, "b");
  }

  vm::VirtualMachine& boot(double write_rate, std::size_t pages = 64) {
    std::unique_ptr<vm::Workload> w;
    if (write_rate <= 0)
      w = std::make_unique<vm::IdleWorkload>();
    else
      w = std::make_unique<vm::UniformWorkload>(write_rate);
    return hv_a.create_vm(1, "vm1", kib(4), pages, std::move(w));
  }
};

TEST(PreCopy, IdleGuestMigratesInOneRoundPlusResidue) {
  MigrationRig rig;
  rig.boot(0.0);
  PreCopyMigrator migrator(rig.sim, rig.fabric);
  std::optional<MigrationStats> stats;
  migrator.migrate(1, rig.hv_a, rig.host_a, rig.hv_b, rig.host_b,
                   [&](const MigrationStats& s) { stats = s; });
  rig.sim.run();
  ASSERT_TRUE(stats.has_value());
  EXPECT_TRUE(stats->converged);
  EXPECT_EQ(stats->rounds, 1u);  // round 0 only; no dirtying
  EXPECT_EQ(stats->bytes_sent, kib(4) * 64);
  EXPECT_TRUE(rig.hv_b.hosts(1));
  EXPECT_FALSE(rig.hv_a.hosts(1));
  EXPECT_EQ(rig.hv_b.get(1).state(), vm::VmState::Running);
}

TEST(PreCopy, ContentSurvivesMigration) {
  MigrationRig rig;
  auto& machine = rig.boot(0.0);
  const auto content = machine.image().flatten();
  PreCopyMigrator migrator(rig.sim, rig.fabric);
  migrator.migrate(1, rig.hv_a, rig.host_a, rig.hv_b, rig.host_b,
                   [](const MigrationStats&) {});
  rig.sim.run();
  EXPECT_EQ(rig.hv_b.get(1).image().flatten(), content);
}

TEST(PreCopy, DirtyGuestNeedsMoreRoundsButLowDowntime) {
  MigrationRig rig(mib_per_s(1));  // slow link: rounds take long enough
  rig.boot(/*write_rate=*/200.0, /*pages=*/256);  // dirties during rounds
  PreCopyMigrator migrator(rig.sim, rig.fabric);
  std::optional<MigrationStats> stats;
  migrator.migrate(1, rig.hv_a, rig.host_a, rig.hv_b, rig.host_b,
                   [&](const MigrationStats& s) { stats = s; });
  rig.sim.run();
  ASSERT_TRUE(stats.has_value());
  EXPECT_GE(stats->rounds, 2u);
  EXPECT_GT(stats->bytes_sent, kib(4) * 256);  // retransmitted dirty pages
  // Downtime is a small fraction of total time.
  EXPECT_LT(stats->downtime, stats->total_time / 2);
}

TEST(PreCopy, RoundCapForcesStopAndCopy) {
  MigrationRig rig(mib_per_s(1));  // slow link
  rig.boot(/*write_rate=*/5000.0, /*pages=*/128);  // hopelessly dirty
  PreCopyConfig config;
  config.max_rounds = 3;
  PreCopyMigrator migrator(rig.sim, rig.fabric, config);
  std::optional<MigrationStats> stats;
  migrator.migrate(1, rig.hv_a, rig.host_a, rig.hv_b, rig.host_b,
                   [&](const MigrationStats& s) { stats = s; });
  rig.sim.run();
  ASSERT_TRUE(stats.has_value());
  EXPECT_LE(stats->rounds, 3u);
  EXPECT_TRUE(rig.hv_b.hosts(1));
}

TEST(PreCopy, DowntimeBeatsStopAndCopy) {
  // The headline claim of live migration: pre-copy downtime is a tiny
  // fraction of a full stop-and-copy transfer.
  MigrationRig rig1;
  rig1.boot(50.0, 512);
  PreCopyMigrator precopy(rig1.sim, rig1.fabric);
  std::optional<MigrationStats> pre;
  precopy.migrate(1, rig1.hv_a, rig1.host_a, rig1.hv_b, rig1.host_b,
                  [&](const MigrationStats& s) { pre = s; });
  rig1.sim.run();

  MigrationRig rig2;
  rig2.boot(50.0, 512);
  StopAndCopyMigrator snc(rig2.sim, rig2.fabric);
  std::optional<MigrationStats> stop;
  snc.migrate(1, rig2.hv_a, rig2.host_a, rig2.hv_b, rig2.host_b,
              [&](const MigrationStats& s) { stop = s; });
  rig2.sim.run();

  ASSERT_TRUE(pre && stop);
  EXPECT_LT(pre->downtime, stop->downtime / 5);
}

TEST(PreCopy, BusyRejectsSecondMigration) {
  MigrationRig rig;
  rig.boot(0.0);
  PreCopyMigrator migrator(rig.sim, rig.fabric);
  migrator.migrate(1, rig.hv_a, rig.host_a, rig.hv_b, rig.host_b,
                   [](const MigrationStats&) {});
  EXPECT_TRUE(migrator.busy());
  EXPECT_THROW(migrator.migrate(1, rig.hv_a, rig.host_a, rig.hv_b,
                                rig.host_b, [](const MigrationStats&) {}),
               ConfigError);
  rig.sim.run();
  EXPECT_FALSE(migrator.busy());
}

TEST(PreCopy, ForeignDirtyLogClearForcesFullResend) {
  // A checkpoint epoch consumes the shared dirty log mid-round (the
  // coordinator clears it after capture). Pre-fix, the migrator trusted
  // the post-clear log and shipped only the post-clear residue, silently
  // losing the pages dirtied before the clear. It must detect the foreign
  // clear via the dirty generation and fall back to a full-image round.
  MigrationRig rig(mib_per_s(1));  // 256 KiB image -> 0.25 s round 0
  auto& machine = rig.boot(0.0);
  PreCopyMigrator migrator(rig.sim, rig.fabric);
  std::optional<MigrationStats> stats;
  migrator.migrate(1, rig.hv_a, rig.host_a, rig.hv_b, rig.host_b,
                   [&](const MigrationStats& s) { stats = s; });
  // Emulate the epoch boundary in the middle of round 0.
  rig.sim.at(0.1, [&] { machine.image().clear_dirty(); });
  rig.sim.run();
  ASSERT_TRUE(stats.has_value());
  EXPECT_GE(stats->dirty_log_fallbacks, 1u);
  // Round 0 (full) + fallback full round; an idle guest would otherwise
  // send exactly one image.
  EXPECT_GE(stats->bytes_sent, 2 * kib(4) * 64);
  EXPECT_TRUE(rig.hv_b.hosts(1));
  EXPECT_EQ(rig.hv_b.get(1).state(), vm::VmState::Running);
}

TEST(PreCopy, InterleavedEpochClearsStillConverge) {
  // Repeated checkpoint epochs during a long migration: every round that
  // lost its log re-ships the full image, and the migration still lands.
  MigrationRig rig(mib_per_s(1));
  auto& machine = rig.boot(/*write_rate=*/200.0, /*pages=*/128);
  PreCopyMigrator migrator(rig.sim, rig.fabric);
  std::optional<MigrationStats> stats;
  migrator.migrate(1, rig.hv_a, rig.host_a, rig.hv_b, rig.host_b,
                   [&](const MigrationStats& s) { stats = s; });
  for (double t = 0.2; t < 1.5; t += 0.3)
    rig.sim.at(t, [&] {
      if (rig.hv_a.hosts(1)) machine.image().clear_dirty();
    });
  rig.sim.run();
  ASSERT_TRUE(stats.has_value());
  EXPECT_GE(stats->dirty_log_fallbacks, 1u);
  EXPECT_TRUE(rig.hv_b.hosts(1));
  EXPECT_EQ(rig.hv_b.get(1).state(), vm::VmState::Running);
}

TEST(PreCopy, CancelMidRoundResetsBusyAndAllowsRetry) {
  MigrationRig rig(mib_per_s(1));
  rig.boot(0.0);
  PreCopyMigrator migrator(rig.sim, rig.fabric);
  bool completed = false;
  migrator.migrate(1, rig.hv_a, rig.host_a, rig.hv_b, rig.host_b,
                   [&](const MigrationStats&) { completed = true; });
  rig.sim.at(0.1, [&] {
    migrator.cancel();  // e.g. the placement decision was revoked
    EXPECT_FALSE(migrator.busy());
  });
  rig.sim.run();
  EXPECT_FALSE(completed);
  EXPECT_TRUE(rig.hv_a.hosts(1));  // guest stayed home, still running
  EXPECT_EQ(rig.hv_a.get(1).state(), vm::VmState::Running);
  // The migrator is reusable after the abort.
  std::optional<MigrationStats> stats;
  migrator.migrate(1, rig.hv_a, rig.host_a, rig.hv_b, rig.host_b,
                   [&](const MigrationStats& s) { stats = s; });
  rig.sim.run();
  ASSERT_TRUE(stats.has_value());
  EXPECT_TRUE(rig.hv_b.hosts(1));
}

TEST(PreCopy, CancelDuringSwitchOverResumesPausedGuest) {
  MigrationRig rig(mib_per_s(1));
  rig.boot(0.0);
  PreCopyConfig config;
  config.switch_overhead = 1.0;  // wide window to land the cancel in
  PreCopyMigrator migrator(rig.sim, rig.fabric, config);
  bool completed = false;
  migrator.migrate(1, rig.hv_a, rig.host_a, rig.hv_b, rig.host_b,
                   [&](const MigrationStats&) { completed = true; });
  // Round 0 ends at 0.25 s, the guest pauses for stop-and-copy, and the
  // switch-over timer runs until ~1.25 s. Cancel inside that window.
  rig.sim.at(0.75, [&] {
    EXPECT_EQ(rig.hv_a.get(1).state(), vm::VmState::Paused);
    migrator.cancel();
    EXPECT_EQ(rig.hv_a.get(1).state(), vm::VmState::Running);
  });
  rig.sim.run();
  EXPECT_FALSE(completed);
  EXPECT_FALSE(migrator.busy());
  EXPECT_TRUE(rig.hv_a.hosts(1));
}

TEST(PreCopy, CancelAfterSourceFailureLeavesFailedGuestAlone) {
  MigrationRig rig(mib_per_s(1));
  auto& machine = rig.boot(0.0);
  PreCopyMigrator migrator(rig.sim, rig.fabric);
  migrator.migrate(1, rig.hv_a, rig.host_a, rig.hv_b, rig.host_b,
                   [](const MigrationStats&) {});
  rig.sim.at(0.1, [&] {
    machine.mark_failed();  // source node died mid-migration
    migrator.cancel();
  });
  EXPECT_NO_THROW(rig.sim.run());
  EXPECT_FALSE(migrator.busy());
  EXPECT_EQ(rig.hv_a.get(1).state(), vm::VmState::Failed);
  EXPECT_FALSE(rig.hv_b.hosts(1));
}

TEST(StopAndCopy, DowntimeIsWholeTransfer) {
  MigrationRig rig;
  rig.boot(0.0, 100);
  StopAndCopyMigrator migrator(rig.sim, rig.fabric, 0.0);
  std::optional<MigrationStats> stats;
  migrator.migrate(1, rig.hv_a, rig.host_a, rig.hv_b, rig.host_b,
                   [&](const MigrationStats& s) { stats = s; });
  rig.sim.run();
  ASSERT_TRUE(stats.has_value());
  EXPECT_DOUBLE_EQ(stats->downtime, stats->total_time);
  EXPECT_NEAR(stats->total_time,
              static_cast<double>(kib(4) * 100) / mib_per_s(100), 1e-6);
}

TEST(Remus, CommitsEpochsAtConfiguredRate) {
  MigrationRig rig;
  rig.boot(10.0, 64);
  RemusConfig config;
  config.epoch_interval = 0.025;  // 40/s
  RemusReplicator remus(rig.sim, rig.fabric, rig.hv_a, rig.host_a,
                        rig.host_b, 1, config);
  remus.start();
  rig.sim.run_until(1.0);
  remus.stop();
  // ~40 epochs in a second (minus pipeline latency slack).
  EXPECT_GE(remus.stats().epochs_committed, 30u);
  EXPECT_LE(remus.stats().epochs_committed, 41u);
  EXPECT_GT(remus.stats().bytes_shipped, 0u);
}

TEST(Remus, FailoverLosesOnlyUnackedWindow) {
  MigrationRig rig;
  rig.boot(10.0, 64);
  RemusConfig config;
  config.epoch_interval = 0.05;
  RemusReplicator remus(rig.sim, rig.fabric, rig.hv_a, rig.host_a,
                        rig.host_b, 1, config);
  remus.start();
  rig.sim.run_until(1.0);
  auto failover = remus.failover();
  // Lost work is bounded by ~2 epochs (one in flight + one accumulating).
  EXPECT_LT(failover.lost_work, 3 * config.epoch_interval);
  EXPECT_FALSE(failover.image.empty());
}

TEST(Remus, BackupImageMatchesAnAckedState) {
  MigrationRig rig;
  auto& machine = rig.boot(0.0, 32);  // idle: every epoch identical
  const auto content = machine.image().flatten();
  RemusReplicator remus(rig.sim, rig.fabric, rig.hv_a, rig.host_a,
                        rig.host_b, 1);
  remus.start();
  rig.sim.run_until(0.5);
  auto failover = remus.failover();
  EXPECT_EQ(failover.image, content);
}

TEST(Remus, StopDuringStagingPauseResumesGuestAndCancelsCapture) {
  // Pre-fix, stop() cancelled only the epoch timer: the deferred
  // staging-pause event survived, charged its full pause window to
  // total_pause_time, resumed a guest the replicator no longer managed
  // and launched the ship anyway.
  MigrationRig rig(mib_per_s(1));
  rig.boot(0.0);  // 256 KiB image
  RemusConfig config;
  config.epoch_interval = 0.025;
  config.buffer_copy_rate = mib_per_s(1);  // staging pause ~0.25 s
  RemusReplicator remus(rig.sim, rig.fabric, rig.hv_a, rig.host_a,
                        rig.host_b, 1, config);
  remus.start();
  rig.sim.at(0.1, [&] {
    // The first capture froze the guest at t=0.025; we are mid-pause.
    EXPECT_EQ(rig.hv_a.get(1).state(), vm::VmState::Paused);
    remus.stop();
    EXPECT_EQ(rig.hv_a.get(1).state(), vm::VmState::Running);
  });
  rig.sim.run();
  EXPECT_EQ(remus.stats().epochs_committed, 0u);
  EXPECT_DOUBLE_EQ(remus.stats().total_pause_time, 0.0);
  EXPECT_EQ(remus.stats().bytes_shipped, 0u);
  EXPECT_DOUBLE_EQ(
      rig.sim.telemetry().metrics().value("net.active_flows"), 0.0);
}

TEST(Remus, FailoverDuringStagingPauseNeverTouchesDeadGuest) {
  // Pre-fix, the surviving pause event called primary_.get(vm_).resume()
  // on the dead primary's guest — resuming a machine the failover had
  // just promoted away from (an InvariantError once the VM is Failed).
  MigrationRig rig(mib_per_s(1));
  auto& machine = rig.boot(0.0);
  RemusConfig config;
  config.epoch_interval = 0.025;
  config.buffer_copy_rate = mib_per_s(1);
  RemusReplicator remus(rig.sim, rig.fabric, rig.hv_a, rig.host_a,
                        rig.host_b, 1, config);
  remus.start();
  rig.sim.at(0.1, [&] {
    machine.mark_failed();  // the primary node just died
    const auto failover = remus.failover();
    EXPECT_GT(failover.lost_work, 0.0);
  });
  EXPECT_NO_THROW(rig.sim.run());
  EXPECT_EQ(rig.hv_a.get(1).state(), vm::VmState::Failed);
  EXPECT_DOUBLE_EQ(remus.stats().total_pause_time, 0.0);
}

TEST(Remus, StopMidShipCancelsFlowAndCommitsNothing) {
  MigrationRig rig(mib_per_s(1));  // slow link: ship takes ~0.25 s
  rig.boot(0.0);
  RemusConfig config;
  config.epoch_interval = 0.025;
  config.compress = false;  // deterministic wire size
  RemusReplicator remus(rig.sim, rig.fabric, rig.hv_a, rig.host_a,
                        rig.host_b, 1, config);
  remus.start();
  rig.sim.at(0.1, [&] { remus.stop(); });  // epoch 1's ship is in flight
  rig.sim.run();
  EXPECT_EQ(remus.stats().epochs_captured, 1u);
  EXPECT_EQ(remus.stats().epochs_committed, 0u);
  // The cancelled ship no longer occupies the fabric.
  EXPECT_DOUBLE_EQ(
      rig.sim.telemetry().metrics().value("net.active_flows"), 0.0);
}

TEST(Remus, FailoverMidShipReturnsLastAckedImage) {
  // Epoch 1 commits; failover strikes while epoch 2 is on the wire. The
  // promoted image must be exactly the epoch-1 state — pre-fix, the
  // uncancelled ship completion overwrote backup_image_ afterwards.
  MigrationRig rig(mib_per_s(1));
  auto& machine = rig.boot(/*write_rate=*/2000.0);
  RemusConfig config;
  config.epoch_interval = 0.025;
  config.compress = false;
  RemusReplicator remus(rig.sim, rig.fabric, rig.hv_a, rig.host_a,
                        rig.host_b, 1, config);
  remus.start();
  std::vector<std::byte> epoch1;
  // The epoch timer (queued first) fires at the same instant and captures
  // before this snapshot runs; the guest is frozen, so both see the same
  // bytes.
  rig.sim.at(0.025, [&] { epoch1 = machine.image().flatten(); });
  std::optional<RemusReplicator::Failover> failover;
  rig.sim.at(0.35, [&] { failover = remus.failover(); });
  rig.sim.run();
  ASSERT_TRUE(failover.has_value());
  EXPECT_EQ(remus.stats().epochs_committed, 1u);
  EXPECT_EQ(failover->image, epoch1);
  EXPECT_DOUBLE_EQ(
      rig.sim.telemetry().metrics().value("net.active_flows"), 0.0);
}

TEST(Remus, OverheadIsSmallFractionForIdleGuest) {
  MigrationRig rig;
  rig.boot(0.0, 64);
  RemusReplicator remus(rig.sim, rig.fabric, rig.hv_a, rig.host_a,
                        rig.host_b, 1);
  remus.start();
  rig.sim.run_until(2.0);
  remus.stop();
  // Pause time should be well under 10% of wall time for an idle guest.
  EXPECT_LT(remus.stats().total_pause_time, 0.2);
}

}  // namespace
}  // namespace vdc::migration
