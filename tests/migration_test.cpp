// Tests for live migration (pre-copy, stop-and-copy) and the Remus-style
// replicator.

#include <gtest/gtest.h>

#include "migration/precopy.hpp"
#include "migration/remus.hpp"

namespace vdc::migration {
namespace {

struct MigrationRig {
  simkit::Simulator sim;
  net::Fabric fabric{sim, 0.0};
  net::HostId host_a, host_b;
  vm::Hypervisor hv_a{Rng(1)}, hv_b{Rng(2)};

  MigrationRig(Rate nic = mib_per_s(100)) {
    host_a = fabric.add_host(nic, "a");
    host_b = fabric.add_host(nic, "b");
  }

  vm::VirtualMachine& boot(double write_rate, std::size_t pages = 64) {
    std::unique_ptr<vm::Workload> w;
    if (write_rate <= 0)
      w = std::make_unique<vm::IdleWorkload>();
    else
      w = std::make_unique<vm::UniformWorkload>(write_rate);
    return hv_a.create_vm(1, "vm1", kib(4), pages, std::move(w));
  }
};

TEST(PreCopy, IdleGuestMigratesInOneRoundPlusResidue) {
  MigrationRig rig;
  rig.boot(0.0);
  PreCopyMigrator migrator(rig.sim, rig.fabric);
  std::optional<MigrationStats> stats;
  migrator.migrate(1, rig.hv_a, rig.host_a, rig.hv_b, rig.host_b,
                   [&](const MigrationStats& s) { stats = s; });
  rig.sim.run();
  ASSERT_TRUE(stats.has_value());
  EXPECT_TRUE(stats->converged);
  EXPECT_EQ(stats->rounds, 1u);  // round 0 only; no dirtying
  EXPECT_EQ(stats->bytes_sent, kib(4) * 64);
  EXPECT_TRUE(rig.hv_b.hosts(1));
  EXPECT_FALSE(rig.hv_a.hosts(1));
  EXPECT_EQ(rig.hv_b.get(1).state(), vm::VmState::Running);
}

TEST(PreCopy, ContentSurvivesMigration) {
  MigrationRig rig;
  auto& machine = rig.boot(0.0);
  const auto content = machine.image().flatten();
  PreCopyMigrator migrator(rig.sim, rig.fabric);
  migrator.migrate(1, rig.hv_a, rig.host_a, rig.hv_b, rig.host_b,
                   [](const MigrationStats&) {});
  rig.sim.run();
  EXPECT_EQ(rig.hv_b.get(1).image().flatten(), content);
}

TEST(PreCopy, DirtyGuestNeedsMoreRoundsButLowDowntime) {
  MigrationRig rig(mib_per_s(1));  // slow link: rounds take long enough
  rig.boot(/*write_rate=*/200.0, /*pages=*/256);  // dirties during rounds
  PreCopyMigrator migrator(rig.sim, rig.fabric);
  std::optional<MigrationStats> stats;
  migrator.migrate(1, rig.hv_a, rig.host_a, rig.hv_b, rig.host_b,
                   [&](const MigrationStats& s) { stats = s; });
  rig.sim.run();
  ASSERT_TRUE(stats.has_value());
  EXPECT_GE(stats->rounds, 2u);
  EXPECT_GT(stats->bytes_sent, kib(4) * 256);  // retransmitted dirty pages
  // Downtime is a small fraction of total time.
  EXPECT_LT(stats->downtime, stats->total_time / 2);
}

TEST(PreCopy, RoundCapForcesStopAndCopy) {
  MigrationRig rig(mib_per_s(1));  // slow link
  rig.boot(/*write_rate=*/5000.0, /*pages=*/128);  // hopelessly dirty
  PreCopyConfig config;
  config.max_rounds = 3;
  PreCopyMigrator migrator(rig.sim, rig.fabric, config);
  std::optional<MigrationStats> stats;
  migrator.migrate(1, rig.hv_a, rig.host_a, rig.hv_b, rig.host_b,
                   [&](const MigrationStats& s) { stats = s; });
  rig.sim.run();
  ASSERT_TRUE(stats.has_value());
  EXPECT_LE(stats->rounds, 3u);
  EXPECT_TRUE(rig.hv_b.hosts(1));
}

TEST(PreCopy, DowntimeBeatsStopAndCopy) {
  // The headline claim of live migration: pre-copy downtime is a tiny
  // fraction of a full stop-and-copy transfer.
  MigrationRig rig1;
  rig1.boot(50.0, 512);
  PreCopyMigrator precopy(rig1.sim, rig1.fabric);
  std::optional<MigrationStats> pre;
  precopy.migrate(1, rig1.hv_a, rig1.host_a, rig1.hv_b, rig1.host_b,
                  [&](const MigrationStats& s) { pre = s; });
  rig1.sim.run();

  MigrationRig rig2;
  rig2.boot(50.0, 512);
  StopAndCopyMigrator snc(rig2.sim, rig2.fabric);
  std::optional<MigrationStats> stop;
  snc.migrate(1, rig2.hv_a, rig2.host_a, rig2.hv_b, rig2.host_b,
              [&](const MigrationStats& s) { stop = s; });
  rig2.sim.run();

  ASSERT_TRUE(pre && stop);
  EXPECT_LT(pre->downtime, stop->downtime / 5);
}

TEST(PreCopy, BusyRejectsSecondMigration) {
  MigrationRig rig;
  rig.boot(0.0);
  PreCopyMigrator migrator(rig.sim, rig.fabric);
  migrator.migrate(1, rig.hv_a, rig.host_a, rig.hv_b, rig.host_b,
                   [](const MigrationStats&) {});
  EXPECT_TRUE(migrator.busy());
  EXPECT_THROW(migrator.migrate(1, rig.hv_a, rig.host_a, rig.hv_b,
                                rig.host_b, [](const MigrationStats&) {}),
               ConfigError);
  rig.sim.run();
  EXPECT_FALSE(migrator.busy());
}

TEST(StopAndCopy, DowntimeIsWholeTransfer) {
  MigrationRig rig;
  rig.boot(0.0, 100);
  StopAndCopyMigrator migrator(rig.sim, rig.fabric, 0.0);
  std::optional<MigrationStats> stats;
  migrator.migrate(1, rig.hv_a, rig.host_a, rig.hv_b, rig.host_b,
                   [&](const MigrationStats& s) { stats = s; });
  rig.sim.run();
  ASSERT_TRUE(stats.has_value());
  EXPECT_DOUBLE_EQ(stats->downtime, stats->total_time);
  EXPECT_NEAR(stats->total_time,
              static_cast<double>(kib(4) * 100) / mib_per_s(100), 1e-6);
}

TEST(Remus, CommitsEpochsAtConfiguredRate) {
  MigrationRig rig;
  rig.boot(10.0, 64);
  RemusConfig config;
  config.epoch_interval = 0.025;  // 40/s
  RemusReplicator remus(rig.sim, rig.fabric, rig.hv_a, rig.host_a,
                        rig.host_b, 1, config);
  remus.start();
  rig.sim.run_until(1.0);
  remus.stop();
  // ~40 epochs in a second (minus pipeline latency slack).
  EXPECT_GE(remus.stats().epochs_committed, 30u);
  EXPECT_LE(remus.stats().epochs_committed, 41u);
  EXPECT_GT(remus.stats().bytes_shipped, 0u);
}

TEST(Remus, FailoverLosesOnlyUnackedWindow) {
  MigrationRig rig;
  rig.boot(10.0, 64);
  RemusConfig config;
  config.epoch_interval = 0.05;
  RemusReplicator remus(rig.sim, rig.fabric, rig.hv_a, rig.host_a,
                        rig.host_b, 1, config);
  remus.start();
  rig.sim.run_until(1.0);
  auto failover = remus.failover();
  // Lost work is bounded by ~2 epochs (one in flight + one accumulating).
  EXPECT_LT(failover.lost_work, 3 * config.epoch_interval);
  EXPECT_FALSE(failover.image.empty());
}

TEST(Remus, BackupImageMatchesAnAckedState) {
  MigrationRig rig;
  auto& machine = rig.boot(0.0, 32);  // idle: every epoch identical
  const auto content = machine.image().flatten();
  RemusReplicator remus(rig.sim, rig.fabric, rig.hv_a, rig.host_a,
                        rig.host_b, 1);
  remus.start();
  rig.sim.run_until(0.5);
  auto failover = remus.failover();
  EXPECT_EQ(failover.image, content);
}

TEST(Remus, OverheadIsSmallFractionForIdleGuest) {
  MigrationRig rig;
  rig.boot(0.0, 64);
  RemusReplicator remus(rig.sim, rig.fabric, rig.hv_a, rig.host_a,
                        rig.host_b, 1);
  remus.start();
  rig.sim.run_until(2.0);
  remus.stop();
  // Pause time should be well under 10% of wall time for an idle guest.
  EXPECT_LT(remus.stats().total_pause_time, 0.2);
}

}  // namespace
}  // namespace vdc::migration
