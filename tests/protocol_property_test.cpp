// Interleaving property test: under randomized sequences of operations —
// guest execution, checkpoint epochs, aborted epochs, node failures with
// recovery, parity corruption with scrub-repair, rebalancing — the DVDC
// invariants must hold after every step:
//
//   I1  every committed stripe decodes: parity == encode(member
//       checkpoints at the committed epoch)
//   I2  a node failure at any quiescent point is recoverable and
//       byte-exact (checked by actually performing one at the end)
//   I3  the committed epoch never regresses
//   I4  every VM exists exactly once and runs on an alive node

#include <gtest/gtest.h>

#include <map>

#include "cluster/rebalance.hpp"
#include "core/recovery.hpp"
#include "core/scrub.hpp"
#include "vm/workload.hpp"

namespace vdc::core {
namespace {

WorkloadFactory workload_factory() {
  return [](vm::VmId) -> std::unique_ptr<vm::Workload> {
    return std::make_unique<vm::HotColdWorkload>(200.0, 0.2, 0.8);
  };
}

struct Harness {
  simkit::Simulator sim;
  cluster::ClusterManager cluster;
  DvdcState state;
  DvdcCoordinator coord;
  RecoveryManager recovery;
  ParityScrubber scrubber;
  cluster::MigrationService migrations;
  cluster::Rebalancer rebalancer;
  std::optional<PlacedPlan> placed;
  // The plan matching the committed stripes: recovery, scrubbing and the
  // stripe invariant all run against THIS plan (mirrors DvdcBackend).
  std::optional<PlacedPlan> committed_plan;
  checkpoint::Epoch next_epoch = 1;
  Rng rng;

  explicit Harness(std::uint64_t seed)
      : cluster(sim, Rng(seed)),
        coord(sim, cluster, state),
        recovery(sim, cluster, state, workload_factory()),
        scrubber(sim, cluster, state),
        migrations(sim, cluster),
        rebalancer(sim, cluster, migrations),
        rng(seed * 31 + 7) {
    for (int n = 0; n < 5; ++n) cluster.add_node();
    auto workloads = workload_factory();
    for (int n = 0; n < 5; ++n)
      for (int v = 0; v < 2; ++v)
        cluster.boot_vm(n, kib(1), 16, workloads(0));
    replan();
  }

  void replan() {
    PlannerConfig pc;
    pc.group_size = 3;
    placed = PlacedPlan::make(GroupPlanner(pc).plan(cluster), cluster,
                              ParityScheme::Raid5);
  }

  void ensure_plan() {
    if (!placed->still_orthogonal(cluster)) replan();
  }

  bool checkpoint(bool abort_midway) {
    ensure_plan();
    bool committed = false;
    coord.run_epoch(*placed, next_epoch,
                    [&](const EpochStats&) { committed = true; });
    if (abort_midway) {
      sim.run(3 + rng.uniform_u64(5));
      coord.abort();
    }
    sim.run();
    if (committed) {
      ++next_epoch;
      committed_plan = placed;
    }
    return committed;
  }

  bool fail_and_recover() {
    if (state.committed_epoch() == 0) return true;  // nothing to do yet
    const auto alive = cluster.alive_nodes();
    const auto victim = alive[rng.uniform_u64(alive.size())];
    const auto lost = cluster.node(victim).hypervisor().vm_ids();
    cluster.kill_node(victim);
    state.drop_node(victim);
    cluster.revive_node(victim);  // repaired replacement (constant n)
    if (lost.empty()) return true;
    bool ok = false;
    recovery.recover(*committed_plan, lost,
                     [&](const RecoveryStats& s) { ok = s.success; });
    sim.run();
    return ok;
  }

  void corrupt_and_scrub() {
    if (state.committed_epoch() == 0) return;
    const auto gid = static_cast<GroupId>(
        rng.uniform_u64(committed_plan->plan.groups.size()));
    scrubber.inject_corruption(gid, 0, rng.uniform_u64(kib(1) * 16));
    scrubber.scrub(*committed_plan, /*repair=*/true,
                   [](const ScrubReport&) {});
    sim.run();
  }

  void rebalance() {
    rebalancer.rebalance([](const cluster::RebalanceStats&) {});
    sim.run();
  }

  // --- invariants ----------------------------------------------------------
  void check_stripes() const {
    if (state.committed_epoch() == 0) return;
    auto& mutable_state = const_cast<DvdcState&>(state);
    for (const auto& group : committed_plan->plan.groups) {
      const auto* record = state.parity(group.id);
      if (record == nullptr || record->members != group.members ||
          record->epoch != state.committed_epoch())
        continue;  // stripe pending rebuild at the next epoch
      auto codec = make_codec(record->scheme, group.members.size(),
                              record->blocks.size());
      std::vector<parity::Block> padded;
      std::vector<parity::BlockView> views;
      bool complete = true;
      for (vm::VmId m : group.members) {
        const auto loc = cluster.locate(m);
        if (!loc.has_value()) {
          complete = false;
          break;
        }
        const auto* cp = mutable_state.node_store(*loc).find(
            m, state.committed_epoch());
        if (cp == nullptr) {
          complete = false;
          break;
        }
        padded.push_back(cp->padded_payload(record->block_size));
      }
      ASSERT_TRUE(complete) << "group " << group.id
                            << " lost a member checkpoint";
      for (const auto& p : padded) views.emplace_back(p);
      ASSERT_EQ(codec->encode(views), record->blocks)
          << "group " << group.id << " stripe does not decode";
    }
  }

  void check_vms() const {
    const auto vms = cluster.all_vms();
    ASSERT_EQ(vms.size(), 10u);
    for (vm::VmId vmid : vms) {
      const auto loc = cluster.locate(vmid);
      ASSERT_TRUE(loc.has_value());
      ASSERT_TRUE(cluster.node(*loc).alive());
    }
  }
};

class ProtocolInterleavings : public ::testing::TestWithParam<int> {};

TEST_P(ProtocolInterleavings, InvariantsHoldUnderRandomOps) {
  Harness h(static_cast<std::uint64_t>(GetParam()));
  checkpoint::Epoch last_committed = 0;

  for (int step = 0; step < 24; ++step) {
    switch (h.rng.uniform_u64(6)) {
      case 0:
      case 1:
        h.cluster.advance_workloads(h.rng.uniform(0.1, 3.0));
        break;
      case 2:
        h.checkpoint(/*abort_midway=*/false);
        break;
      case 3:
        h.checkpoint(/*abort_midway=*/true);
        break;
      case 4:
        ASSERT_TRUE(h.fail_and_recover()) << "step " << step;
        break;
      case 5:
        h.corrupt_and_scrub();
        break;
    }
    // I3: committed epoch is monotone.
    ASSERT_GE(h.state.committed_epoch(), last_committed);
    last_committed = h.state.committed_epoch();
    // I1 + I4 after every step.
    h.check_stripes();
    h.check_vms();
  }

  // I2: end with a real failure + byte-exact recovery (after making sure
  // at least one epoch is committed).
  if (h.state.committed_epoch() == 0) {
    ASSERT_TRUE(h.checkpoint(false));
  }
  h.ensure_plan();
  ASSERT_TRUE(h.checkpoint(false));
  std::map<vm::VmId, std::vector<std::byte>> committed;
  for (vm::VmId vmid : h.cluster.all_vms())
    committed[vmid] = h.state.node_store(*h.cluster.locate(vmid))
                          .find(vmid, h.state.committed_epoch())
                          ->payload();
  const auto victim = h.cluster.alive_nodes()[2];
  const auto lost = h.cluster.node(victim).hypervisor().vm_ids();
  h.cluster.kill_node(victim);
  h.state.drop_node(victim);
  h.cluster.revive_node(victim);
  if (!lost.empty()) {
    bool ok = false;
    h.recovery.recover(*h.committed_plan, lost,
                       [&](const RecoveryStats& s) { ok = s.success; });
    h.sim.run();
    ASSERT_TRUE(ok);
    for (vm::VmId vmid : lost)
      ASSERT_EQ(h.cluster.machine(vmid).image().flatten(),
                committed.at(vmid));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtocolInterleavings,
                         ::testing::Range(1, 13));

// --- loss-pattern enumeration -----------------------------------------------
//
// Exhaustive survivability property over node-level loss patterns: every
// subset of one or two nodes either keeps each committed RAID group within
// the code's tolerance (RAID-5: one erasure per stripe, members + parity)
// and must reconstruct byte-exact, or exceeds it somewhere and must settle
// with success == false and a machine-readable reason — never a silent
// wrong answer in either direction.

TEST(LossPatterns, SurvivableDecodeByteExactUnsurvivableAreReported) {
  // Enumerate the patterns against one probe harness; the seed is fixed so
  // every per-pattern harness below sees the same plan.
  std::vector<std::vector<cluster::NodeId>> patterns;
  for (cluster::NodeId a = 0; a < 5; ++a) {
    patterns.push_back({a});
    for (cluster::NodeId b = a + 1; b < 5; ++b) patterns.push_back({a, b});
  }

  int survivable_seen = 0, unsurvivable_seen = 0;
  for (const auto& pattern : patterns) {
    Harness h(7);
    h.cluster.advance_workloads(2.0);
    ASSERT_TRUE(h.checkpoint(false));

    // Committed payload per VM, and per-group erasure counts this pattern
    // would cause (member shards on killed nodes + parity holders killed).
    std::map<vm::VmId, std::vector<std::byte>> committed;
    for (vm::VmId vmid : h.cluster.all_vms())
      committed[vmid] = h.state.node_store(*h.cluster.locate(vmid))
                            .find(vmid, h.state.committed_epoch())
                            ->payload();
    const auto killed = [&](cluster::NodeId n) {
      return std::find(pattern.begin(), pattern.end(), n) != pattern.end();
    };
    bool survivable = true;
    const auto& plan = *h.committed_plan;
    for (std::size_t gi = 0; gi < plan.plan.groups.size(); ++gi) {
      std::size_t erasures = 0;
      for (vm::VmId m : plan.plan.groups[gi].members)
        if (killed(*h.cluster.locate(m))) ++erasures;
      for (cluster::NodeId holder : plan.holders[gi])
        if (killed(holder)) ++erasures;
      if (erasures > 1) survivable = false;  // RAID-5 tolerance
    }

    std::vector<vm::VmId> lost;
    for (cluster::NodeId n : pattern) {
      const auto on_node = h.cluster.node(n).hypervisor().vm_ids();
      lost.insert(lost.end(), on_node.begin(), on_node.end());
      h.cluster.kill_node(n);
      h.state.drop_node(n);
      h.cluster.revive_node(n);
    }
    std::optional<RecoveryStats> stats;
    h.recovery.recover(*h.committed_plan, lost,
                       [&](const RecoveryStats& s) { stats = s; });
    h.sim.run();
    ASSERT_TRUE(stats.has_value());

    std::string label = "pattern {";
    for (cluster::NodeId n : pattern) {
      label += ' ';
      label += std::to_string(n);  // two appends: GCC 12 -Wrestrict FP on
    }                              // `const char* + std::string&&` (PR105329)
    label += " }";
    if (survivable) {
      ++survivable_seen;
      ASSERT_TRUE(stats->success) << label << ": " << stats->reason;
      for (vm::VmId vmid : lost)
        ASSERT_EQ(h.cluster.machine(vmid).image().flatten(),
                  committed.at(vmid))
            << label << " vm " << vmid;
    } else {
      ++unsurvivable_seen;
      ASSERT_FALSE(stats->success) << label;
      ASSERT_FALSE(stats->reason.empty()) << label;
    }
  }
  // Both branches of the property must actually have been exercised.
  EXPECT_GT(survivable_seen, 0);
  EXPECT_GT(unsurvivable_seen, 0);
}

}  // namespace
}  // namespace vdc::core
