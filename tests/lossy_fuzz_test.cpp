// Lossy-network fuzz regime: every seed runs a checkpointed job over an
// ambient unreliable fabric (drops, bit corruption, jittered latency on
// every host) with chunked exchange/recovery streams. The invariants:
// the job always finishes, the committed-work watermark never silently
// regresses, and the reliable-delivery layer actually earned its keep
// (retransmissions happened). Rides the `slow` label; the nightly
// sanitizer job widens the sweep with VDC_FUZZ_SEEDS.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "core/runtime.hpp"

namespace vdc::core {
namespace {

int fuzz_seed_count() {
  if (const char* env = std::getenv("VDC_FUZZ_SEEDS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 8;
}

ClusterConfig lossy_cluster() {
  ClusterConfig cc;
  cc.nodes = 4;
  cc.vms_per_node = 2;
  cc.page_size = kib(1);
  cc.pages_per_vm = 16;
  cc.write_rate = 150.0;
  return cc;
}

JobRunner::BackendFactory chunked_backend(ClusterConfig cc) {
  return [cc](simkit::Simulator& sim, cluster::ClusterManager& cluster,
              Rng&) -> std::unique_ptr<CheckpointBackend> {
    ProtocolConfig pc;
    pc.chunking.chunk_bytes = kib(4);  // judged frames on the wire
    pc.chunking.pipeline_depth = 4;
    RecoveryConfig rc;
    rc.chunking = pc.chunking;
    return std::make_unique<DvdcBackend>(sim, cluster, pc, rc,
                                         make_workload_factory(cc));
  };
}

class LossyFuzz : public ::testing::TestWithParam<int> {};

TEST_P(LossyFuzz, FinishesWithMonotoneCommittedWork) {
  const int seed = GetParam();
  JobConfig job;
  job.total_work = minutes(20);
  job.interval = minutes(3);
  job.lambda = 1.0 / minutes(8);  // real failures on top of the loss
  job.seed = static_cast<std::uint64_t>(seed);
  // The lossy regime: 1% drops, 0.1% corruption, jittered latency, on
  // every frame of every host (probabilities compose per path).
  job.ambient_link_fault = net::LinkFault{
      .drop = 0.01, .corrupt = 0.001, .jitter = 200e-6};

  double watermark = 0.0;
  job.observer = [&watermark](const JobEvent& ev) {
    if (ev.kind == JobEvent::Kind::Rollback ||
        ev.kind == JobEvent::Kind::Restart) {
      watermark = ev.committed_work;
    } else {
      EXPECT_GE(ev.committed_work, watermark - 1e-9)
          << "watermark silently regressed";
      watermark = std::max(watermark, ev.committed_work);
    }
  };

  const ClusterConfig cc = lossy_cluster();
  JobRunner runner(job, cc, chunked_backend(cc));
  const RunResult r = runner.run();
  const auto& metrics = runner.sim().telemetry().metrics();

  ASSERT_TRUE(r.finished) << "seed " << seed;
  EXPECT_GE(r.time_ratio, 1.0 - 1e-9);
  // The fabric really was lossy, and the reliable-delivery layer carried
  // the checkpoints through it.
  EXPECT_GT(metrics.value("net.drops"), 0.0) << "seed " << seed;
  EXPECT_GT(metrics.value("net.retransmits"), 0.0) << "seed " << seed;
  // Every VM is back and running at the end.
  EXPECT_EQ(runner.cluster().all_vms().size(),
            std::size_t{cc.nodes} * cc.vms_per_node);
  for (vm::VmId vmid : runner.cluster().all_vms())
    EXPECT_EQ(runner.cluster().machine(vmid).state(), vm::VmState::Running);
}

TEST_P(LossyFuzz, ReplayIsBitIdentical) {
  const int seed = GetParam();
  JobConfig job;
  job.total_work = minutes(12);
  job.interval = minutes(2);
  job.lambda = 1.0 / minutes(6);
  job.seed = static_cast<std::uint64_t>(seed) * 6007;
  job.ambient_link_fault = net::LinkFault{
      .drop = 0.01, .corrupt = 0.001, .jitter = 200e-6};

  const ClusterConfig cc = lossy_cluster();
  JobRunner a(job, cc, chunked_backend(cc));
  JobRunner b(job, cc, chunked_backend(cc));
  const RunResult ra = a.run();
  const RunResult rb = b.run();
  ASSERT_TRUE(ra.finished && rb.finished) << "seed " << seed;
  EXPECT_DOUBLE_EQ(ra.completion, rb.completion);
  EXPECT_EQ(ra.failures, rb.failures);
  EXPECT_EQ(ra.epochs, rb.epochs);
  EXPECT_EQ(ra.bytes_shipped, rb.bytes_shipped);
  EXPECT_DOUBLE_EQ(a.sim().telemetry().metrics().value("net.retransmits"),
                   b.sim().telemetry().metrics().value("net.retransmits"));
}

std::vector<int> seeds() {
  std::vector<int> out;
  for (int i = 1; i <= fuzz_seed_count(); ++i) out.push_back(i);
  return out;
}

INSTANTIATE_TEST_SUITE_P(Seeds, LossyFuzz, ::testing::ValuesIn(seeds()));

}  // namespace
}  // namespace vdc::core
